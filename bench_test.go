// Package whisper_test holds the benchmark harness that regenerates every
// table and figure of the paper (see DESIGN.md's per-experiment index and
// EXPERIMENTS.md for paper-vs-measured numbers). Run with:
//
//	go test -bench=. -benchmem .
//
// Benchmarks publish their headline numbers (B/s, seconds, error rates,
// matrix agreement) as custom metrics so the shape comparison with the
// paper is visible straight from the bench output.
package whisper_test

import (
	"context"
	"io"
	"log/slog"
	"testing"

	"whisper/internal/baseline"
	"whisper/internal/core"
	"whisper/internal/cpu"
	"whisper/internal/experiments"
	"whisper/internal/kernel"
	"whisper/internal/obs"
	"whisper/internal/obs/logging"
	"whisper/internal/smt"
	"whisper/internal/snapshot"
	"whisper/internal/stats"
)

func bootBench(b *testing.B, model cpu.Model, cfg kernel.Config, seed int64) *kernel.Kernel {
	b.Helper()
	m, err := cpu.NewMachine(model, seed)
	if err != nil {
		b.Fatal(err)
	}
	k, err := kernel.Boot(m, cfg)
	if err != nil {
		b.Fatal(err)
	}
	return k
}

// rebootBench re-boots an existing machine in place — the machine-reuse path
// the per-iteration benchmarks exercise (bit-identical to a fresh boot).
func rebootBench(b *testing.B, m *cpu.Machine, cfg kernel.Config, seed int64) *kernel.Kernel {
	b.Helper()
	k, err := kernel.Reboot(m, cfg, seed)
	if err != nil {
		b.Fatal(err)
	}
	return k
}

// BenchmarkFig1bToTE regenerates Figure 1b (E1): the per-test-value ToTE
// sweep and argmax decode on the i7-7700.
func BenchmarkFig1bToTE(b *testing.B) {
	b.ReportAllocs()
	hits := 0
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig1b(experiments.Serial(), 5, experiments.DefaultSeed+int64(i))
		if err != nil {
			b.Fatal(err)
		}
		if r.Decoded == r.Secret {
			hits++
		}
	}
	b.ReportMetric(float64(hits)/float64(b.N), "decode-rate")
}

// BenchmarkTable2Matrix regenerates Table 2 (E2): all five attacks across
// all five CPU models, checked against the paper's ✓/✗ cells.
func BenchmarkTable2Matrix(b *testing.B) {
	b.ReportAllocs()
	agree := 0
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table2(experiments.Serial(), experiments.DefaultTable2Params(), experiments.DefaultSeed+int64(i))
		if err != nil {
			b.Fatal(err)
		}
		if ok, _ := experiments.Table2Agrees(rows); ok {
			agree++
		}
	}
	b.ReportMetric(float64(agree)/float64(b.N), "paper-agreement")
}

// BenchmarkTable3PMU regenerates Table 3 (E3): the PMU toolset's paired
// scenes and differential analysis.
func BenchmarkTable3PMU(b *testing.B) {
	b.ReportAllocs()
	matches, total := 0, 0
	for i := 0; i < b.N; i++ {
		scenes, err := experiments.Table3(experiments.Serial(), experiments.DefaultSeed+int64(i))
		if err != nil {
			b.Fatal(err)
		}
		for _, s := range scenes {
			for _, k := range s.KeyEvents {
				total++
				if k.Match {
					matches++
				}
			}
		}
	}
	b.ReportMetric(float64(matches)/float64(total), "direction-match")
}

// BenchmarkTETCCThroughput measures the TET covert channel (E4; paper:
// 500 B/s, <5 % error on the i7-7700).
func BenchmarkTETCCThroughput(b *testing.B) {
	k := bootBench(b, cpu.I7_7700(), kernel.Config{KASLR: true}, 1)
	cc, err := core.NewTETCovertChannel(k)
	if err != nil {
		b.Fatal(err)
	}
	payload := []byte("whisper covert channel payload..")
	var last core.LeakResult
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		last, err = cc.Transfer(payload)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(last.Bps, "sim-B/s")
	b.ReportMetric(stats.ByteErrorRate(last.Data, payload), "err-rate")
}

// BenchmarkTETMDThroughput measures TET-Meltdown (E5; paper: 50 B/s, <3 %
// error on the i7-7700).
func BenchmarkTETMDThroughput(b *testing.B) {
	k := bootBench(b, cpu.I7_7700(), kernel.Config{KASLR: true}, 2)
	secret := []byte("md-secret")
	k.WriteSecret(secret)
	md, err := core.NewTETMeltdown(k)
	if err != nil {
		b.Fatal(err)
	}
	var last core.LeakResult
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		last, err = md.Leak(k.SecretVA(), len(secret))
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(last.Bps, "sim-B/s")
	b.ReportMetric(stats.ByteErrorRate(last.Data, secret), "err-rate")
}

// BenchmarkTETZBLThroughput measures TET-Zombieload (Table 2 column; the
// paper reports success without a rate).
func BenchmarkTETZBLThroughput(b *testing.B) {
	k := bootBench(b, cpu.I7_7700(), kernel.Config{KASLR: true}, 3)
	secret := []byte("zbl-data")
	k.WriteSecret(secret)
	z, err := core.NewTETZombieload(k)
	if err != nil {
		b.Fatal(err)
	}
	var last core.LeakResult
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		last, err = z.Leak(len(secret))
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(last.Bps, "sim-B/s")
	b.ReportMetric(stats.ByteErrorRate(last.Data, secret), "err-rate")
}

// BenchmarkTETRSBThroughput measures TET-Spectre-V5-RSB (E6; paper:
// 21.5 KB/s, <0.1 % error on the i9-13900K).
func BenchmarkTETRSBThroughput(b *testing.B) {
	k := bootBench(b, cpu.I9_13900K(), kernel.Config{KASLR: true}, 4)
	m := k.Machine()
	secret := []byte("rsb-secret-data!")
	secretVA := uint64(kernel.UserDataBase + 0x600)
	pa, ok := k.UserAS().Translate(secretVA)
	if !ok {
		b.Fatal("secret VA unmapped")
	}
	m.Phys.StoreBytes(pa, secret)
	rsb, err := core.NewTETRSB(k)
	if err != nil {
		b.Fatal(err)
	}
	var last core.LeakResult
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		last, err = rsb.Leak(secretVA, len(secret))
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(last.Bps, "sim-B/s")
	b.ReportMetric(stats.ByteErrorRate(last.Data, secret), "err-rate")
}

// BenchmarkSMTChannel measures the §4.4 SMT covert channel in both
// operating points (E8; paper: 1 B/s <5 % and 268 KB/s @ 28 %).
func BenchmarkSMTChannel(b *testing.B) {
	for _, bc := range []struct {
		name string
		mode smt.Mode
		data []byte
	}{
		{"Reliable", smt.ModeReliable, []byte{0xA5, 0x3C}},
		{"SecSMT", smt.ModeSecSMT, []byte("secsmt-burst-payload")},
	} {
		bc := bc
		b.Run(bc.name, func(b *testing.B) {
			k := bootBench(b, cpu.I7_7700(), kernel.Config{KASLR: true}, 5)
			ch, err := smt.NewChannel(k, bc.mode)
			if err != nil {
				b.Fatal(err)
			}
			var last core.LeakResult
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				last, err = ch.Transfer(bc.data)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(last.Bps, "sim-B/s")
			b.ReportMetric(stats.BitErrorRate(last.Data, bc.data), "bit-err")
		})
	}
}

// benchKASLR runs one TET-KASLR configuration and reports scan time and
// accuracy (E7).
func benchKASLR(b *testing.B, model cpu.Model, cfg kernel.Config) {
	b.Helper()
	m, err := cpu.NewMachine(model, 6)
	if err != nil {
		b.Fatal(err)
	}
	found := 0
	var seconds float64
	for i := 0; i < b.N; i++ {
		k := rebootBench(b, m, cfg, 6+int64(i))
		a, err := core.NewTETKASLR(k)
		if err != nil {
			b.Fatal(err)
		}
		res, err := a.Locate()
		if err != nil {
			b.Fatal(err)
		}
		if res.Slot == k.BaseSlot() {
			found++
		}
		seconds = res.Seconds
	}
	b.ReportMetric(float64(found)/float64(b.N), "hit-rate")
	b.ReportMetric(seconds, "sim-seconds")
}

// BenchmarkTETKASLR is the plain §4.5 break (paper: 0.8829 s on the
// i9-10980XE).
func BenchmarkTETKASLR(b *testing.B) {
	benchKASLR(b, cpu.I9_10980XE(), kernel.Config{KASLR: true})
}

// BenchmarkTETKASLRKPTI breaks KASLR through the KPTI trampoline (paper:
// within 1 s).
func BenchmarkTETKASLRKPTI(b *testing.B) {
	benchKASLR(b, cpu.I9_10980XE(), kernel.Config{KASLR: true, KPTI: true})
}

// BenchmarkTETKASLRFLARE bypasses the state-of-the-art FLARE defense on top
// of KPTI.
func BenchmarkTETKASLRFLARE(b *testing.B) {
	benchKASLR(b, cpu.I9_10980XE(), kernel.Config{KASLR: true, KPTI: true, FLARE: true})
}

// BenchmarkTETKASLRDocker breaks KASLR from inside a container (§4.5).
func BenchmarkTETKASLRDocker(b *testing.B) {
	benchKASLR(b, cpu.I9_10980XE(), kernel.Config{KASLR: true, KPTI: true, Docker: true})
}

// BenchmarkFGKASLRMitigation is the §6.2 ablation (E13): the base is found
// but function derivation must break.
func BenchmarkFGKASLRMitigation(b *testing.B) {
	m, err := cpu.NewMachine(cpu.I9_10980XE(), 7)
	if err != nil {
		b.Fatal(err)
	}
	mitigated := 0
	for i := 0; i < b.N; i++ {
		k := rebootBench(b, m, kernel.Config{KASLR: true, FGKASLR: true}, 7+int64(i))
		a, err := core.NewTETKASLR(k)
		if err != nil {
			b.Fatal(err)
		}
		res, err := a.Locate()
		if err != nil {
			b.Fatal(err)
		}
		derived := res.Base + kernel.KernelFunctions["commit_creds"]
		actual, err := k.FunctionVA("commit_creds")
		if err != nil {
			b.Fatal(err)
		}
		if res.Slot == k.BaseSlot() && derived != actual {
			mitigated++
		}
	}
	b.ReportMetric(float64(mitigated)/float64(b.N), "mitigation-rate")
}

// BenchmarkSecureTLBAblation is the §6.3 hardware-fix ablation (E14): with
// fill-on-fault removed, TET-KASLR must fail.
func BenchmarkSecureTLBAblation(b *testing.B) {
	model := cpu.I9_10980XE()
	model.Pipe.TLBFillOnFault = false
	defeated := 0
	m, err := cpu.NewMachine(model, 8)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		k := rebootBench(b, m, kernel.Config{KASLR: true}, 8+int64(i))
		a, err := core.NewTETKASLR(k)
		if err != nil {
			b.Fatal(err)
		}
		res, err := a.Locate()
		if err != nil {
			b.Fatal(err)
		}
		if res.Slot != k.BaseSlot() {
			defeated++
		}
	}
	b.ReportMetric(float64(defeated)/float64(b.N), "defense-rate")
}

// BenchmarkAbortableAssistAblation flips the abortable-assist knob DESIGN.md
// calls out: without it, TET-ZBL's argmin signal disappears.
func BenchmarkAbortableAssistAblation(b *testing.B) {
	model := cpu.I7_7700()
	model.Pipe.AbortableAssist = false
	secret := []byte{0x5A}
	broken := 0
	m, err := cpu.NewMachine(model, 9)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		k := rebootBench(b, m, kernel.Config{KASLR: true}, 9+int64(i))
		k.WriteSecret(secret)
		z, err := core.NewTETZombieload(k)
		if err != nil {
			b.Fatal(err)
		}
		z.Batches = 3
		res, err := z.Leak(1)
		if err != nil {
			b.Fatal(err)
		}
		if res.Data[0] != secret[0] {
			broken++
		}
	}
	b.ReportMetric(float64(broken)/float64(b.N), "signal-gone-rate")
}

// BenchmarkBaselineFlushReload measures the classic cache covert channel
// (E15 comparator).
func BenchmarkBaselineFlushReload(b *testing.B) {
	k := bootBench(b, cpu.I7_7700(), kernel.Config{KASLR: true}, 10)
	fr, err := baseline.NewFlushReload(k)
	if err != nil {
		b.Fatal(err)
	}
	payload := []byte("flush+reload baseline...")
	var last core.LeakResult
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		last, err = fr.Transfer(payload)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(last.Bps, "sim-B/s")
}

// BenchmarkBaselineMeltdownFR measures the original Meltdown with a cache
// probe array (E15 comparator).
func BenchmarkBaselineMeltdownFR(b *testing.B) {
	k := bootBench(b, cpu.I7_7700(), kernel.Config{KASLR: true}, 11)
	secret := []byte("fr-md")
	k.WriteSecret(secret)
	md, err := baseline.NewMeltdownFR(k)
	if err != nil {
		b.Fatal(err)
	}
	var last core.LeakResult
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		last, err = md.Leak(k.SecretVA(), len(secret))
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(last.Bps, "sim-B/s")
	b.ReportMetric(stats.ByteErrorRate(last.Data, secret), "err-rate")
}

// BenchmarkBaselinePrefetchKASLR measures the EntryBleed-style probe with
// and without FLARE (E15: FLARE defeats it; TET survives).
func BenchmarkBaselinePrefetchKASLR(b *testing.B) {
	for _, bc := range []struct {
		name  string
		flare bool
	}{
		{"NoFLARE", false},
		{"FLARE", true},
	} {
		bc := bc
		b.Run(bc.name, func(b *testing.B) {
			found := 0
			for i := 0; i < b.N; i++ {
				k := bootBench(b, cpu.I9_10980XE(),
					kernel.Config{KASLR: true, KPTI: true, FLARE: bc.flare}, 12+int64(i))
				a, err := baseline.NewPrefetchKASLR(k)
				if err != nil {
					b.Fatal(err)
				}
				res, err := a.Locate()
				if err != nil {
					b.Fatal(err)
				}
				if res.Slot == k.BaseSlot() {
					found++
				}
			}
			b.ReportMetric(float64(found)/float64(b.N), "hit-rate")
		})
	}
}

// BenchmarkFig3Frontend regenerates the Figure 3 frontend-resteer evidence
// (E10).
func BenchmarkFig3Frontend(b *testing.B) {
	matches, total := 0, 0
	for i := 0; i < b.N; i++ {
		s, err := experiments.Fig3(experiments.DefaultSeed + int64(i))
		if err != nil {
			b.Fatal(err)
		}
		for _, k := range s.KeyEvents {
			total++
			if k.Match {
				matches++
			}
		}
	}
	b.ReportMetric(float64(matches)/float64(total), "direction-match")
}

// BenchmarkFig4UopsIssued regenerates the §5.2.5 fence-distance sweep (E11):
// the UOPS_ISSUED delta must flip sign across the sweep.
func BenchmarkFig4UopsIssued(b *testing.B) {
	flips := 0
	for i := 0; i < b.N; i++ {
		pts, err := experiments.Fig4(experiments.Serial(), experiments.DefaultSeed+int64(i))
		if err != nil {
			b.Fatal(err)
		}
		if pts[0].Delta > 0 && pts[len(pts)-1].Delta < 0 {
			flips++
		}
	}
	b.ReportMetric(float64(flips)/float64(b.N), "sign-flip-rate")
}

// BenchmarkProbe measures raw simulator probe rate (engineering metric).
func BenchmarkProbe(b *testing.B) {
	k := bootBench(b, cpu.I7_7700(), kernel.Config{KASLR: true}, 13)
	pr, err := core.NewProber(k.Machine(), core.SuppressTSX, true)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pr.Probe(core.UnmappedVA, uint64(i%256), 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkProbeTracingOverhead compares the probe hot path with
// observability disabled (the default: Machine.Obs == nil, instrumentation
// collapses to one nil check) and fully enabled (spans + metrics + pipeline
// ring + per-probe PMU samples). The disabled variant is the overhead
// contract: it must stay within noise of BenchmarkProbe, and the allocation
// figure it reports is pure simulator work (the pipeline frontend allocates
// its uop records whether or not anyone is watching) — the instrumentation
// itself adds zero bytes, which internal/obs's
// TestDisabledInstrumentationZeroAlloc pins exactly.
func BenchmarkProbeTracingOverhead(b *testing.B) {
	for _, bc := range []struct {
		name    string
		enabled bool
	}{
		{"Disabled", false},
		{"Enabled", true},
	} {
		bc := bc
		b.Run(bc.name, func(b *testing.B) {
			k := bootBench(b, cpu.I7_7700(), kernel.Config{KASLR: true}, 13)
			if bc.enabled {
				k.Machine().EnableObs()
			}
			pr, err := core.NewProber(k.Machine(), core.SuppressTSX, true)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := pr.Probe(core.UnmappedVA, uint64(i%256), 0); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkServeLoggingOverhead prices the structured-logging layer on the
// serving hot path at its three operating points: no logger on the context
// (every direct CLI run — the guard must collapse to a context lookup plus a
// boolean), a real logger whose level filters the event out (whisperd at the
// default -log-level=info rejecting debug events), and a level-enabled JSON
// event actually encoded and written. EXPERIMENTS.md's observability row
// quotes these numbers.
func BenchmarkServeLoggingOverhead(b *testing.B) {
	enabled, err := logging.New(logging.Options{Level: "info", Format: "json", Output: io.Discard})
	if err != nil {
		b.Fatal(err)
	}
	for _, bc := range []struct {
		name  string
		ctx   context.Context
		level slog.Level
	}{
		{"Disabled", context.Background(), slog.LevelDebug},
		{"LevelFiltered", logging.With(context.Background(), enabled), slog.LevelDebug},
		{"EnabledJSON", logging.With(context.Background(), enabled), slog.LevelInfo},
	} {
		bc := bc
		b.Run(bc.name, func(b *testing.B) {
			ctx := obs.WithRequestID(bc.ctx, "bench-request-1")
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if log := logging.From(ctx); log.Enabled(ctx, bc.level) {
					log.LogAttrs(ctx, bc.level, "request",
						slog.String("experiment", "table2"),
						slog.String(obs.RequestIDAttr, obs.RequestIDFrom(ctx)),
						slog.Int("status", 200),
						slog.Int64("dur_us", int64(i)))
				}
			}
		})
	}
}

// BenchmarkMitigationMatrix regenerates the §6 defense × attack matrix
// (E16): InvisiSpec vs TET/F+R Meltdown, KPTI, VERW scrubbing, microcode.
func BenchmarkMitigationMatrix(b *testing.B) {
	agree := 0
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Mitigations(experiments.Serial(), experiments.DefaultSeed+int64(i))
		if err != nil {
			b.Fatal(err)
		}
		if ok, _ := experiments.MitigationsAgree(rows); ok {
			agree++
		}
	}
	b.ReportMetric(float64(agree)/float64(b.N), "paper-agreement")
}

// BenchmarkStealthDetector runs both Meltdown variants under the HPC
// cache-attack detector (E17): F+R is flagged, TET is not.
func BenchmarkStealthDetector(b *testing.B) {
	asExpected := 0
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Stealth(experiments.Serial(), experiments.DefaultSeed+int64(i))
		if err != nil {
			b.Fatal(err)
		}
		ok := true
		for _, r := range rows {
			if r.Attack == "TET-MD" && r.Detected {
				ok = false
			}
			if r.Attack == "Meltdown-F+R" && !r.Detected {
				ok = false
			}
		}
		if ok {
			asExpected++
		}
	}
	b.ReportMetric(float64(asExpected)/float64(b.N), "stealth-rate")
}

// BenchmarkCondFamily sweeps the whole conditional-jump family (E18): the
// §5 claim that every Jcc flavour carries the TET signal.
func BenchmarkCondFamily(b *testing.B) {
	carrying := 0
	total := 0
	for i := 0; i < b.N; i++ {
		rows, err := experiments.CondFamily(experiments.Serial(), experiments.DefaultSeed+int64(i))
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			total++
			if r.Delta >= 3 {
				carrying++
			}
		}
	}
	b.ReportMetric(float64(carrying)/float64(total), "signal-rate")
}

// BenchmarkTETSpectreV1 measures the repository's extension attack: Spectre
// variant 1 decoded through the TET channel (no fault, no cache probe).
func BenchmarkTETSpectreV1(b *testing.B) {
	k := bootBench(b, cpu.I9_13900K(), kernel.Config{KASLR: true}, 14)
	v1, err := core.NewTETSpectreV1(k)
	if err != nil {
		b.Fatal(err)
	}
	secret := []byte("v1-oob")
	pa, ok := k.UserAS().Translate(v1.ArrayVA() + v1.ArrayLen())
	if !ok {
		b.Fatal("secret region unmapped")
	}
	k.Machine().Phys.StoreBytes(pa, secret)
	var last core.LeakResult
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		last, err = v1.Leak(v1.ArrayLen(), len(secret))
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(last.Bps, "sim-B/s")
	b.ReportMetric(stats.ByteErrorRate(last.Data, secret), "err-rate")
}

// BenchmarkRecoveryDebtAblation zeroes the recovery-debt term DESIGN.md §1
// calls out as the TET-MD mechanism: without it, the triggered probe is no
// longer distinguishable and the leak collapses.
func BenchmarkRecoveryDebtAblation(b *testing.B) {
	model := cpu.I7_7700()
	model.Pipe.DebtFactor = 0
	secret := []byte{0x42}
	broken := 0
	m, err := cpu.NewMachine(model, 15)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		k := rebootBench(b, m, kernel.Config{KASLR: true}, 15+int64(i))
		k.WriteSecret(secret)
		md, err := core.NewTETMeltdown(k)
		if err != nil {
			b.Fatal(err)
		}
		md.Batches = 3
		res, err := md.Leak(k.SecretVA(), 1)
		if err != nil {
			b.Fatal(err)
		}
		if res.Data[0] != secret[0] {
			broken++
		}
	}
	b.ReportMetric(float64(broken)/float64(b.N), "signal-gone-rate")
}

// runAllParams is the workload both RunAll benchmarks share, sized so the
// serial/parallel comparison finishes quickly but still spans every artefact.
func runAllParams(parallel int) experiments.ReportParams {
	p := experiments.DefaultReportParams()
	p.ThroughputBytes = 4
	p.KASLRReps = 3
	p.Fig1bBatches = 3
	p.Parallel = parallel
	return p
}

// BenchmarkRunAllSerial regenerates the full report on one sched worker —
// the reference cost the parallel engine is measured against.
func BenchmarkRunAllSerial(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunAll(runAllParams(1)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRunAllParallel regenerates the same report on four workers; the
// output is byte-identical (TestRunAllParallelByteIdentical), so the entire
// delta vs BenchmarkRunAllSerial is scheduler speedup.
func BenchmarkRunAllParallel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunAll(runAllParams(4)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSnapshotFork prices the snapshot layer's fork-per-cell path
// against the reboot-per-cell baseline it replaces: restoring a warm kernel
// checkpoint into a pooled machine (the steady-state path behind
// experiments' boot memo) versus re-booting the kernel on the same machine.
// The Fork/Reboot ratio is the per-cell saving the EXPERIMENTS.md snapshot
// table aggregates over whole sweeps.
func BenchmarkSnapshotFork(b *testing.B) {
	model, cfg := cpu.I7_7700(), kernel.Config{KASLR: true}
	b.Run("Fork", func(b *testing.B) {
		k := bootBench(b, model, cfg, 16)
		snap, err := snapshot.CaptureKernel(k)
		if err != nil {
			b.Fatal(err)
		}
		pool := cpu.NewPool()
		fk, err := snap.ForkKernel(pool) // warm the pooled target
		if err != nil {
			b.Fatal(err)
		}
		pool.Put(fk.Machine())
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			fk, err := snap.ForkKernel(pool)
			if err != nil {
				b.Fatal(err)
			}
			pool.Put(fk.Machine())
		}
	})
	b.Run("Reboot", func(b *testing.B) {
		m, err := cpu.NewMachine(model, 16)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := kernel.Reboot(m, cfg, 16); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkNoiseSweep measures attack robustness vs timer jitter (the
// transition the NoiseSweep experiment documents: vote decoder up to
// ~signal/3 jitter, median decoder beyond it).
func BenchmarkNoiseSweep(b *testing.B) {
	recovered, total := 0, 0
	for i := 0; i < b.N; i++ {
		pts, err := experiments.NoiseSweep(experiments.Serial(), experiments.DefaultSeed+int64(i))
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range pts {
			total++
			if p.Recovered {
				recovered++
			}
		}
	}
	b.ReportMetric(float64(recovered)/float64(total), "recovered-rate")
}
