// Package paging implements x86-64 4-level page tables, materialised in the
// simulated physical memory so that page walks are real memory traffic: the
// walker reports the physical address of every PTE it reads, and the pipeline
// charges those reads to the cache hierarchy. This is what makes the
// mapped/unmapped timing asymmetry of TET-KASLR emerge rather than being
// scripted.
package paging

import (
	"fmt"

	"whisper/internal/mem"
)

// Page table entry flag bits (x86-64 layout).
const (
	FlagP  uint64 = 1 << 0  // present
	FlagW  uint64 = 1 << 1  // writable
	FlagU  uint64 = 1 << 2  // user-accessible
	FlagPS uint64 = 1 << 7  // page size (2 MiB when set at PD level)
	FlagG  uint64 = 1 << 8  // global (survives address-space switch)
	FlagNX uint64 = 1 << 63 // no-execute
)

const (
	addrMask = uint64(0x000ffffffffff000)
	// PageSize4K and PageSize2M are the supported page sizes.
	PageSize4K = 4096
	PageSize2M = 2 << 20
	entryBytes = 8
	numEntries = 512
)

// FrameAllocator hands out physical frames with a bump pointer.
type FrameAllocator struct {
	base uint64
	next uint64
}

// NewFrameAllocator returns an allocator starting at base (page-aligned).
func NewFrameAllocator(base uint64) *FrameAllocator {
	if base%PageSize4K != 0 {
		panic("paging: allocator base not page-aligned")
	}
	return &FrameAllocator{base: base, next: base}
}

// Reset rewinds the bump pointer to the allocator's original base, so a
// reused machine allocates the exact same frame sequence as a fresh one.
func (a *FrameAllocator) Reset() { a.next = a.base }

// Alloc4K returns a fresh 4 KiB-aligned frame.
func (a *FrameAllocator) Alloc4K() uint64 {
	pa := a.next
	a.next += PageSize4K
	return pa
}

// Alloc2M returns a fresh 2 MiB-aligned frame.
func (a *FrameAllocator) Alloc2M() uint64 {
	if rem := a.next % PageSize2M; rem != 0 {
		a.next += PageSize2M - rem
	}
	pa := a.next
	a.next += PageSize2M
	return pa
}

// Next exposes the bump pointer (tests and accounting).
func (a *FrameAllocator) Next() uint64 { return a.next }

// CopyFrom adopts src's base and bump pointer, so a restored machine
// continues allocating exactly where the captured one would have.
func (a *FrameAllocator) CopyFrom(src *FrameAllocator) {
	a.base = src.base
	a.next = src.next
}

// AddressSpace is one page-table tree rooted at a PML4 frame.
type AddressSpace struct {
	phys  *mem.Physical
	alloc *FrameAllocator
	root  uint64
}

// NewAddressSpace allocates an empty PML4 in phys.
func NewAddressSpace(phys *mem.Physical, alloc *FrameAllocator) *AddressSpace {
	return &AddressSpace{phys: phys, alloc: alloc, root: alloc.Alloc4K()}
}

// Root returns the physical address of the PML4 (the CR3 value).
func (as *AddressSpace) Root() uint64 { return as.root }

// Rebind points as at phys/alloc with an existing PML4 root, reusing the
// struct in place. Snapshot restore uses this to rebuild address spaces whose
// page tables were copied wholesale into phys, without allocating a frame.
func (as *AddressSpace) Rebind(phys *mem.Physical, alloc *FrameAllocator, root uint64) {
	as.phys = phys
	as.alloc = alloc
	as.root = root
}

// Phys returns the backing physical memory.
func (as *AddressSpace) Phys() *mem.Physical { return as.phys }

// Canonical reports whether va is a canonical 48-bit address.
func Canonical(va uint64) bool {
	upper := va >> 47
	return upper == 0 || upper == 0x1ffff
}

// Indices splits a virtual address into its four table indices.
func Indices(va uint64) (pml4, pdpt, pd, pt int) {
	return int(va >> 39 & 0x1ff), int(va >> 30 & 0x1ff),
		int(va >> 21 & 0x1ff), int(va >> 12 & 0x1ff)
}

func (as *AddressSpace) readEntry(tablePA uint64, idx int) uint64 {
	return as.phys.Read(tablePA+uint64(idx)*entryBytes, entryBytes)
}

func (as *AddressSpace) writeEntry(tablePA uint64, idx int, v uint64) {
	as.phys.Write(tablePA+uint64(idx)*entryBytes, entryBytes, v)
}

// ensureTable walks one level down from tablePA[idx], allocating an
// intermediate table if the entry is not present. Intermediate entries carry
// the union of permissive flags (U|W) so leaf flags decide.
func (as *AddressSpace) ensureTable(tablePA uint64, idx int) (uint64, error) {
	e := as.readEntry(tablePA, idx)
	if e&FlagP != 0 {
		if e&FlagPS != 0 {
			return 0, fmt.Errorf("paging: entry %d of table %#x is a huge leaf", idx, tablePA)
		}
		return e & addrMask, nil
	}
	child := as.alloc.Alloc4K()
	as.writeEntry(tablePA, idx, child|FlagP|FlagW|FlagU)
	return child, nil
}

// Map installs a 4 KiB translation va→pa with the given leaf flags
// (FlagP is implied).
func (as *AddressSpace) Map(va, pa uint64, flags uint64) error {
	if !Canonical(va) {
		return fmt.Errorf("paging: non-canonical va %#x", va)
	}
	if va%PageSize4K != 0 || pa%PageSize4K != 0 {
		return fmt.Errorf("paging: unaligned 4K mapping %#x→%#x", va, pa)
	}
	i4, i3, i2, i1 := Indices(va)
	pdpt, err := as.ensureTable(as.root, i4)
	if err != nil {
		return err
	}
	pd, err := as.ensureTable(pdpt, i3)
	if err != nil {
		return err
	}
	pt, err := as.ensureTable(pd, i2)
	if err != nil {
		return err
	}
	as.writeEntry(pt, i1, (pa&addrMask)|flags|FlagP)
	return nil
}

// MapHuge installs a 2 MiB translation va→pa with the given leaf flags.
func (as *AddressSpace) MapHuge(va, pa uint64, flags uint64) error {
	if !Canonical(va) {
		return fmt.Errorf("paging: non-canonical va %#x", va)
	}
	if va%PageSize2M != 0 || pa%PageSize2M != 0 {
		return fmt.Errorf("paging: unaligned 2M mapping %#x→%#x", va, pa)
	}
	i4, i3, i2, _ := Indices(va)
	pdpt, err := as.ensureTable(as.root, i4)
	if err != nil {
		return err
	}
	pd, err := as.ensureTable(pdpt, i3)
	if err != nil {
		return err
	}
	as.writeEntry(pd, i2, (pa&addrMask)|flags|FlagP|FlagPS)
	return nil
}

// MapRange maps [va, va+n) 4 KiB pages to consecutive fresh frames and
// returns the first frame's physical address.
func (as *AddressSpace) MapRange(va uint64, n int, flags uint64) (uint64, error) {
	first := uint64(0)
	for i := 0; i < n; i++ {
		pa := as.alloc.Alloc4K()
		if i == 0 {
			first = pa
		}
		if err := as.Map(va+uint64(i)*PageSize4K, pa, flags); err != nil {
			return 0, err
		}
	}
	return first, nil
}

// Unmap clears the leaf entry for va (4 KiB or 2 MiB), reporting whether a
// mapping existed.
func (as *AddressSpace) Unmap(va uint64) bool {
	i4, i3, i2, i1 := Indices(va)
	e := as.readEntry(as.root, i4)
	if e&FlagP == 0 {
		return false
	}
	pdpt := e & addrMask
	e = as.readEntry(pdpt, i3)
	if e&FlagP == 0 {
		return false
	}
	pd := e & addrMask
	e = as.readEntry(pd, i2)
	if e&FlagP == 0 {
		return false
	}
	if e&FlagPS != 0 {
		as.writeEntry(pd, i2, 0)
		return true
	}
	pt := e & addrMask
	if as.readEntry(pt, i1)&FlagP == 0 {
		return false
	}
	as.writeEntry(pt, i1, 0)
	return true
}

// Walk is the result of a page-table walk. The PTE-read record is a fixed
// inline array (a walk touches at most four levels) so that walks on the
// pipeline's hot path allocate nothing.
type Walk struct {
	VA      uint64
	PA      uint64 // translated physical address (valid if Present)
	Flags   uint64 // leaf flags
	Present bool   // translation exists
	Huge    bool   // 2 MiB leaf

	pteReads [4]uint64
	nPTE     int
}

// PTEReads returns the physical addresses of every PTE read, in order.
func (w *Walk) PTEReads() []uint64 { return w.pteReads[:w.nPTE] }

// Depth returns the number of table levels touched.
func (w Walk) Depth() int { return w.nPTE }

// User reports whether the leaf permits user-mode access.
func (w Walk) User() bool { return w.Present && w.Flags&FlagU != 0 }

// Writable reports whether the leaf permits writes.
func (w Walk) Writable() bool { return w.Present && w.Flags&FlagW != 0 }

// WalkVA performs a full walk of va, recording each PTE read so the caller
// can charge them to the memory hierarchy. A non-canonical address returns a
// zero-depth non-present walk (the hardware faults before walking).
func (as *AddressSpace) WalkVA(va uint64) Walk {
	w := Walk{VA: va}
	if !Canonical(va) {
		return w
	}
	i4, i3, i2, i1 := Indices(va)
	tables := [4]uint64{}
	idxs := [4]int{i4, i3, i2, i1}
	tables[0] = as.root
	for lvl := 0; lvl < 4; lvl++ {
		pteAddr := tables[lvl] + uint64(idxs[lvl])*entryBytes
		w.pteReads[w.nPTE] = pteAddr
		w.nPTE++
		e := as.phys.Read(pteAddr, entryBytes)
		if e&FlagP == 0 {
			return w
		}
		if lvl == 2 && e&FlagPS != 0 { // 2 MiB leaf at PD level
			w.Present = true
			w.Huge = true
			w.Flags = e &^ addrMask
			w.PA = (e & addrMask & ^uint64(PageSize2M-1)) | (va & (PageSize2M - 1))
			return w
		}
		if lvl == 3 {
			w.Present = true
			w.Flags = e &^ addrMask
			w.PA = (e & addrMask) | (va & (PageSize4K - 1))
			return w
		}
		tables[lvl+1] = e & addrMask
	}
	return w
}

// Translate is a convenience wrapper returning pa and presence only.
func (as *AddressSpace) Translate(va uint64) (uint64, bool) {
	w := as.WalkVA(va)
	return w.PA, w.Present
}
