package paging

import (
	"testing"
	"testing/quick"

	"whisper/internal/mem"
)

func newAS() *AddressSpace {
	phys := mem.NewPhysical()
	return NewAddressSpace(phys, NewFrameAllocator(0x100000))
}

func TestCanonical(t *testing.T) {
	cases := []struct {
		va   uint64
		want bool
	}{
		{0, true},
		{0x00007fffffffffff, true},
		{0x0000800000000000, false},
		{0xffff800000000000, true},
		{0xffffffff80000000, true},
		{0xfffe800000000000, false},
	}
	for _, c := range cases {
		if got := Canonical(c.va); got != c.want {
			t.Errorf("Canonical(%#x) = %v, want %v", c.va, got, c.want)
		}
	}
}

func TestMapTranslate4K(t *testing.T) {
	as := newAS()
	va, pa := uint64(0x400000), uint64(0x200000)
	if err := as.Map(va, pa, FlagU|FlagW); err != nil {
		t.Fatal(err)
	}
	got, ok := as.Translate(va + 0x123)
	if !ok || got != pa+0x123 {
		t.Fatalf("Translate = (%#x, %v), want (%#x, true)", got, ok, pa+0x123)
	}
}

func TestMapHugeTranslate(t *testing.T) {
	as := newAS()
	va, pa := uint64(0xffffffff80000000), uint64(0x40000000)
	if err := as.MapHuge(va, pa, FlagG); err != nil {
		t.Fatal(err)
	}
	w := as.WalkVA(va + 0x54321)
	if !w.Present || !w.Huge {
		t.Fatalf("walk = %+v, want present huge", w)
	}
	if w.PA != pa+0x54321 {
		t.Fatalf("PA = %#x, want %#x", w.PA, pa+0x54321)
	}
	if w.Depth() != 3 {
		t.Fatalf("huge walk depth = %d, want 3", w.Depth())
	}
	if w.User() {
		t.Fatal("kernel huge page reported user-accessible")
	}
}

func TestWalkDepths(t *testing.T) {
	as := newAS()
	if err := as.Map(0x400000, 0x200000, FlagU); err != nil {
		t.Fatal(err)
	}
	// Mapped 4K: full 4-level walk.
	if d := as.WalkVA(0x400000).Depth(); d != 4 {
		t.Errorf("mapped 4K depth = %d, want 4", d)
	}
	// Same PML4/PDPT/PD but unmapped PT entry: 4 reads, last not present.
	w := as.WalkVA(0x400000 + PageSize4K)
	if w.Present || w.Depth() != 4 {
		t.Errorf("sibling unmapped = %+v", w)
	}
	// Totally unmapped region: walk stops at first absent level (1 read).
	w = as.WalkVA(0x7f0000000000)
	if w.Present || w.Depth() != 1 {
		t.Errorf("far unmapped depth = %d, present=%v", w.Depth(), w.Present)
	}
	// Non-canonical: no walk at all.
	if d := as.WalkVA(0x1000000000000000).Depth(); d != 0 {
		t.Errorf("non-canonical depth = %d, want 0", d)
	}
}

func TestPermissionFlags(t *testing.T) {
	as := newAS()
	if err := as.Map(0x1000, 0x2000, FlagW); err != nil { // supervisor page
		t.Fatal(err)
	}
	w := as.WalkVA(0x1000)
	if !w.Present || w.User() {
		t.Fatalf("supervisor walk = %+v", w)
	}
	if !w.Writable() {
		t.Fatal("writable flag lost")
	}
}

func TestUnmap(t *testing.T) {
	as := newAS()
	if err := as.Map(0x5000, 0x6000, FlagU); err != nil {
		t.Fatal(err)
	}
	if !as.Unmap(0x5000) {
		t.Fatal("Unmap of mapped page returned false")
	}
	if as.Unmap(0x5000) {
		t.Fatal("double Unmap returned true")
	}
	if _, ok := as.Translate(0x5000); ok {
		t.Fatal("translation survives Unmap")
	}
}

func TestUnmapHuge(t *testing.T) {
	as := newAS()
	if err := as.MapHuge(0x40000000, 0x80000000, 0); err != nil {
		t.Fatal(err)
	}
	if !as.Unmap(0x40000000) {
		t.Fatal("Unmap huge returned false")
	}
	if _, ok := as.Translate(0x40000000); ok {
		t.Fatal("huge translation survives Unmap")
	}
}

func TestMapRejectsUnaligned(t *testing.T) {
	as := newAS()
	if err := as.Map(0x1001, 0x2000, 0); err == nil {
		t.Error("unaligned va accepted")
	}
	if err := as.Map(0x1000, 0x2001, 0); err == nil {
		t.Error("unaligned pa accepted")
	}
	if err := as.MapHuge(0x1000, 0, 0); err == nil {
		t.Error("unaligned huge va accepted")
	}
	if err := as.Map(0x800000000000, 0x2000, 0); err == nil {
		t.Error("non-canonical va accepted")
	}
}

func TestMapRange(t *testing.T) {
	as := newAS()
	first, err := as.MapRange(0x600000, 4, FlagU|FlagW)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 4; i++ {
		pa, ok := as.Translate(0x600000 + i*PageSize4K)
		if !ok {
			t.Fatalf("page %d unmapped", i)
		}
		if i == 0 && pa != first {
			t.Fatalf("first pa = %#x, want %#x", pa, first)
		}
	}
}

func TestTranslateRoundTripProperty(t *testing.T) {
	as := newAS()
	base := uint64(0x10000000)
	f := func(pageSel uint16, off uint16) bool {
		page := uint64(pageSel % 128)
		va := base + page*PageSize4K
		pa := uint64(0x40000000) + page*PageSize4K
		if err := as.Map(va, pa, FlagU); err != nil {
			return false
		}
		got, ok := as.Translate(va + uint64(off)%PageSize4K)
		return ok && got == pa+uint64(off)%PageSize4K
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestHugeAndSmallWalkDepthDiffer(t *testing.T) {
	// The FLARE-bypass mechanism (DESIGN.md §1) rests on this property:
	// huge-page walks are one level shorter than 4K walks.
	as := newAS()
	if err := as.MapHuge(0xffffffff80000000, 0x40000000, 0); err != nil {
		t.Fatal(err)
	}
	if err := as.Map(0xffffffff80200000+0, 0x200000, 0); err != nil {
		t.Fatal(err)
	}
	huge := as.WalkVA(0xffffffff80000000)
	small := as.WalkVA(0xffffffff80200000)
	if !huge.Present || !small.Present {
		t.Fatal("mappings missing")
	}
	if huge.Depth() >= small.Depth() {
		t.Fatalf("huge depth %d >= small depth %d", huge.Depth(), small.Depth())
	}
}

func TestFrameAllocatorAlignment(t *testing.T) {
	a := NewFrameAllocator(0x1000)
	a.Alloc4K()
	pa := a.Alloc2M()
	if pa%PageSize2M != 0 {
		t.Fatalf("Alloc2M returned unaligned %#x", pa)
	}
	if p2 := a.Alloc4K(); p2 < pa+PageSize2M {
		t.Fatalf("allocator overlap: %#x inside previous 2M frame", p2)
	}
}

func TestIndices(t *testing.T) {
	va := uint64(0xffffffff80000000)
	i4, i3, i2, i1 := Indices(va)
	if i4 != 511 || i3 != 510 || i2 != 0 || i1 != 0 {
		t.Fatalf("Indices = %d,%d,%d,%d", i4, i3, i2, i1)
	}
}
