// Package stats provides the statistical machinery the attacks use to decode
// timing measurements: histograms (the paper's Fig. 1b frequency plots),
// argmax/argmin voting, dispersion measures, and throughput/error-rate
// reporting.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Histogram counts occurrences of uint64 samples (cycle counts).
type Histogram struct {
	counts map[uint64]int
	n      int
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	return &Histogram{counts: make(map[uint64]int)}
}

// Add records one sample.
func (h *Histogram) Add(v uint64) {
	h.counts[v]++
	h.n++
}

// N returns the number of samples recorded.
func (h *Histogram) N() int { return h.n }

// Count returns how many times v was recorded.
func (h *Histogram) Count(v uint64) int { return h.counts[v] }

// Mode returns the most frequent sample and its count; ties break toward the
// smaller value for determinism.
func (h *Histogram) Mode() (uint64, int) {
	var best uint64
	bestN := -1
	for v, c := range h.counts {
		if c > bestN || (c == bestN && v < best) {
			best, bestN = v, c
		}
	}
	if bestN < 0 {
		return 0, 0
	}
	return best, bestN
}

// Quantile returns the q-th (0..1) sample value.
func (h *Histogram) Quantile(q float64) uint64 {
	if h.n == 0 {
		return 0
	}
	keys := make([]uint64, 0, len(h.counts))
	for v := range h.counts {
		keys = append(keys, v)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	target := int(q * float64(h.n-1))
	seen := 0
	for _, v := range keys {
		seen += h.counts[v]
		if seen > target {
			return v
		}
	}
	return keys[len(keys)-1]
}

// Render draws an ASCII frequency plot (value, count, bar) of up to maxRows
// most-frequent buckets, sorted by value — the textual form of Fig. 1b.
func (h *Histogram) Render(maxRows int) string {
	type kv struct {
		v uint64
		c int
	}
	all := make([]kv, 0, len(h.counts))
	for v, c := range h.counts {
		all = append(all, kv{v, c})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].c > all[j].c })
	if len(all) > maxRows {
		all = all[:maxRows]
	}
	sort.Slice(all, func(i, j int) bool { return all[i].v < all[j].v })
	var b strings.Builder
	maxC := 1
	for _, e := range all {
		if e.c > maxC {
			maxC = e.c
		}
	}
	for _, e := range all {
		bar := strings.Repeat("#", 1+e.c*40/maxC)
		fmt.Fprintf(&b, "%8d | %6d %s\n", e.v, e.c, bar)
	}
	return b.String()
}

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the sample standard deviation of xs.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)-1))
}

// Median returns the median of xs without mutating it.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	c := append([]float64(nil), xs...)
	sort.Float64s(c)
	m := len(c) / 2
	if len(c)%2 == 1 {
		return c[m]
	}
	return (c[m-1] + c[m]) / 2
}

// MedianU64 returns the median of unsigned samples without mutating them.
func MedianU64(xs []uint64) uint64 {
	if len(xs) == 0 {
		return 0
	}
	c := append([]uint64(nil), xs...)
	sort.Slice(c, func(i, j int) bool { return c[i] < c[j] })
	return c[len(c)/2]
}

// WelchT returns Welch's t statistic for two samples (0 if degenerate).
// Large |t| means the means differ beyond their pooled noise — the filter
// the PMU toolset's offline stage uses.
func WelchT(a, b []float64) float64 {
	if len(a) < 2 || len(b) < 2 {
		return 0
	}
	ma, mb := Mean(a), Mean(b)
	va, vb := StdDev(a), StdDev(b)
	va, vb = va*va, vb*vb
	den := math.Sqrt(va/float64(len(a)) + vb/float64(len(b)))
	if den == 0 {
		if ma == mb {
			return 0
		}
		return math.Inf(1) * sign(ma-mb)
	}
	return (ma - mb) / den
}

func sign(x float64) float64 {
	if x < 0 {
		return -1
	}
	return 1
}

// Argmax returns the index of the largest element (first on ties), -1 if
// empty.
func Argmax(xs []uint64) int {
	best := -1
	for i, x := range xs {
		if best < 0 || x > xs[best] {
			best = i
		}
	}
	return best
}

// Argmin returns the index of the smallest element (first on ties), -1 if
// empty.
func Argmin(xs []uint64) int {
	best := -1
	for i, x := range xs {
		if best < 0 || x < xs[best] {
			best = i
		}
	}
	return best
}

// ArgmaxInt is Argmax for int slices (vote tallies).
func ArgmaxInt(xs []int) int {
	best := -1
	for i, x := range xs {
		if best < 0 || x > xs[best] {
			best = i
		}
	}
	return best
}

// ByteErrorRate returns the fraction of positions where got differs from
// want; lengths must match or the excess counts as errors.
func ByteErrorRate(got, want []byte) float64 {
	n := len(want)
	if len(got) > n {
		n = len(got)
	}
	if n == 0 {
		return 0
	}
	errs := 0
	for i := 0; i < n; i++ {
		var g, w byte
		if i < len(got) {
			g = got[i]
		}
		if i < len(want) {
			w = want[i]
		}
		if g != w {
			errs++
		}
	}
	return float64(errs) / float64(n)
}

// BitErrorRate returns the fraction of differing bits.
func BitErrorRate(got, want []byte) float64 {
	n := len(want)
	if len(got) > n {
		n = len(got)
	}
	if n == 0 {
		return 0
	}
	errs := 0
	for i := 0; i < n; i++ {
		var g, w byte
		if i < len(got) {
			g = got[i]
		}
		if i < len(want) {
			w = want[i]
		}
		d := g ^ w
		for d != 0 {
			errs += int(d & 1)
			d >>= 1
		}
	}
	return float64(errs) / float64(n*8)
}

// Throughput converts a byte count and simulated cycle count at clock hz
// into bytes per second.
func Throughput(bytes int, cycles uint64, hz float64) float64 {
	if cycles == 0 {
		return 0
	}
	return float64(bytes) / (float64(cycles) / hz)
}
