package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram()
	if v, c := h.Mode(); v != 0 || c != 0 {
		t.Fatalf("empty Mode = %d,%d", v, c)
	}
	for _, v := range []uint64{10, 10, 10, 20, 20, 30} {
		h.Add(v)
	}
	if h.N() != 6 {
		t.Fatalf("N = %d", h.N())
	}
	if v, c := h.Mode(); v != 10 || c != 3 {
		t.Fatalf("Mode = %d,%d", v, c)
	}
	if h.Count(20) != 2 {
		t.Fatalf("Count(20) = %d", h.Count(20))
	}
}

func TestHistogramModeTieBreak(t *testing.T) {
	h := NewHistogram()
	h.Add(5)
	h.Add(3)
	if v, _ := h.Mode(); v != 3 {
		t.Fatalf("tie Mode = %d, want smaller value 3", v)
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram()
	for i := uint64(1); i <= 100; i++ {
		h.Add(i)
	}
	if q := h.Quantile(0); q != 1 {
		t.Errorf("Q0 = %d", q)
	}
	if q := h.Quantile(1); q != 100 {
		t.Errorf("Q1 = %d", q)
	}
	med := h.Quantile(0.5)
	if med < 49 || med > 52 {
		t.Errorf("median = %d", med)
	}
}

func TestHistogramRender(t *testing.T) {
	h := NewHistogram()
	for i := 0; i < 5; i++ {
		h.Add(100)
	}
	h.Add(200)
	out := h.Render(10)
	if !strings.Contains(out, "100") || !strings.Contains(out, "#") {
		t.Fatalf("Render output missing content:\n%s", out)
	}
	lines := strings.Count(out, "\n")
	if lines != 2 {
		t.Fatalf("Render lines = %d, want 2", lines)
	}
}

func TestMeanStdMedian(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); m != 5 {
		t.Errorf("Mean = %v", m)
	}
	if s := StdDev(xs); math.Abs(s-2.138) > 0.01 {
		t.Errorf("StdDev = %v", s)
	}
	if m := Median(xs); m != 4.5 {
		t.Errorf("Median = %v", m)
	}
	if m := Median([]float64{3, 1, 2}); m != 2 {
		t.Errorf("odd Median = %v", m)
	}
	if Mean(nil) != 0 || StdDev(nil) != 0 || Median(nil) != 0 {
		t.Error("empty-input moments non-zero")
	}
}

func TestMedianDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Median(xs)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatalf("Median mutated input: %v", xs)
	}
}

func TestMedianU64(t *testing.T) {
	if m := MedianU64([]uint64{9, 1, 5}); m != 5 {
		t.Fatalf("MedianU64 = %d", m)
	}
	if m := MedianU64(nil); m != 0 {
		t.Fatalf("empty MedianU64 = %d", m)
	}
}

func TestWelchT(t *testing.T) {
	a := []float64{10, 11, 9, 10, 10}
	b := []float64{20, 21, 19, 20, 20}
	if tt := WelchT(a, b); tt > -5 {
		t.Errorf("WelchT(a,b) = %v, want strongly negative", tt)
	}
	if tt := WelchT(a, a); tt != 0 {
		t.Errorf("WelchT(a,a) = %v", tt)
	}
	if tt := WelchT(a, nil); tt != 0 {
		t.Errorf("degenerate WelchT = %v", tt)
	}
	// Zero-variance unequal means: +Inf magnitude, correct sign.
	c := []float64{1, 1}
	d := []float64{2, 2}
	if tt := WelchT(d, c); !math.IsInf(tt, 1) {
		t.Errorf("zero-variance WelchT = %v", tt)
	}
}

func TestArgmaxArgmin(t *testing.T) {
	xs := []uint64{3, 9, 1, 9}
	if i := Argmax(xs); i != 1 {
		t.Errorf("Argmax = %d", i)
	}
	if i := Argmin(xs); i != 2 {
		t.Errorf("Argmin = %d", i)
	}
	if Argmax(nil) != -1 || Argmin(nil) != -1 {
		t.Error("empty arg* != -1")
	}
	if i := ArgmaxInt([]int{0, 5, 5}); i != 1 {
		t.Errorf("ArgmaxInt tie = %d", i)
	}
}

func TestErrorRates(t *testing.T) {
	if r := ByteErrorRate([]byte{1, 2, 3}, []byte{1, 2, 3}); r != 0 {
		t.Errorf("identical ByteErrorRate = %v", r)
	}
	if r := ByteErrorRate([]byte{1, 0, 3}, []byte{1, 2, 3}); math.Abs(r-1.0/3) > 1e-9 {
		t.Errorf("ByteErrorRate = %v", r)
	}
	if r := ByteErrorRate([]byte{1, 2}, []byte{1, 2, 3}); math.Abs(r-1.0/3) > 1e-9 {
		t.Errorf("short ByteErrorRate = %v", r)
	}
	if r := ByteErrorRate(nil, nil); r != 0 {
		t.Errorf("empty ByteErrorRate = %v", r)
	}
	if r := BitErrorRate([]byte{0xff}, []byte{0x00}); r != 1 {
		t.Errorf("BitErrorRate = %v", r)
	}
	if r := BitErrorRate([]byte{0x0f}, []byte{0x00}); r != 0.5 {
		t.Errorf("BitErrorRate = %v", r)
	}
}

func TestThroughput(t *testing.T) {
	// 1000 bytes in 3.6e9 cycles at 3.6 GHz = 1000 B/s.
	if th := Throughput(1000, 3_600_000_000, 3.6e9); math.Abs(th-1000) > 1e-6 {
		t.Errorf("Throughput = %v", th)
	}
	if th := Throughput(1000, 0, 3.6e9); th != 0 {
		t.Errorf("zero-cycle Throughput = %v", th)
	}
}

func TestHistogramQuantileMonotoneProperty(t *testing.T) {
	h := NewHistogram()
	f := func(vals []uint16) bool {
		for _, v := range vals {
			h.Add(uint64(v))
		}
		if h.N() == 0 {
			return true
		}
		return h.Quantile(0.25) <= h.Quantile(0.75)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
