// Package tlb implements translation lookaside buffers with separate 4 KiB
// and 2 MiB partitions, matching the structure the paper's TET-KASLR attack
// exploits: on the modelled Intel parts, permission-faulting accesses to
// *mapped* addresses still allocate TLB entries, while unmapped addresses
// cannot be cached at all, so they page-walk on every probe.
package tlb

import "whisper/internal/paging"

// assoc is one set-associative translation array with true-LRU replacement.
type assoc struct {
	nsets int
	ways  int
	ents  []entry
	tick  uint64
}

type entry struct {
	vpn    uint64
	pfn    uint64
	flags  uint64
	global bool
	valid  bool
	used   uint64
}

func newAssoc(entries, ways int) *assoc {
	if entries%ways != 0 {
		panic("tlb: entries not divisible by ways")
	}
	return &assoc{nsets: entries / ways, ways: ways, ents: make([]entry, entries)}
}

func (a *assoc) set(vpn uint64) []entry {
	i := int(vpn % uint64(a.nsets))
	return a.ents[i*a.ways : (i+1)*a.ways]
}

func (a *assoc) lookup(vpn uint64) (entry, bool) {
	a.tick++
	set := a.set(vpn)
	for i := range set {
		if set[i].valid && set[i].vpn == vpn {
			set[i].used = a.tick
			return set[i], true
		}
	}
	return entry{}, false
}

func (a *assoc) insert(e entry) {
	a.tick++
	e.used = a.tick
	e.valid = true
	set := a.set(e.vpn)
	for i := range set {
		if set[i].valid && set[i].vpn == e.vpn {
			set[i] = e
			return
		}
	}
	for i := range set {
		if !set[i].valid {
			set[i] = e
			return
		}
	}
	victim := 0
	for i := range set {
		if set[i].used < set[victim].used {
			victim = i
		}
	}
	set[victim] = e
}

func (a *assoc) invalidate(vpn uint64) bool {
	set := a.set(vpn)
	for i := range set {
		if set[i].valid && set[i].vpn == vpn {
			set[i].valid = false
			return true
		}
	}
	return false
}

func (a *assoc) flush(keepGlobal bool) {
	for i := range a.ents {
		if a.ents[i].valid && !(keepGlobal && a.ents[i].global) {
			a.ents[i].valid = false
		}
	}
}

func (a *assoc) reset() {
	for i := range a.ents {
		a.ents[i] = entry{}
	}
	a.tick = 0
}

func (a *assoc) countValid() int {
	n := 0
	for i := range a.ents {
		if a.ents[i].valid {
			n++
		}
	}
	return n
}

// Config sizes a TLB.
type Config struct {
	Entries4K int
	Ways4K    int
	Entries2M int
	Ways2M    int
}

// DefaultDTLBConfig matches a Skylake-class DTLB.
func DefaultDTLBConfig() Config {
	return Config{Entries4K: 64, Ways4K: 4, Entries2M: 32, Ways2M: 4}
}

// DefaultITLBConfig matches a Skylake-class ITLB.
func DefaultITLBConfig() Config {
	return Config{Entries4K: 128, Ways4K: 8, Entries2M: 8, Ways2M: 8}
}

// TLB is one translation buffer (data- or instruction-side).
type TLB struct {
	name   string
	small  *assoc
	large  *assoc
	hits   uint64
	misses uint64
}

// New builds a TLB with the given geometry.
func New(name string, cfg Config) *TLB {
	return &TLB{
		name:  name,
		small: newAssoc(cfg.Entries4K, cfg.Ways4K),
		large: newAssoc(cfg.Entries2M, cfg.Ways2M),
	}
}

// Result is a successful translation.
type Result struct {
	PA    uint64
	Flags uint64
	Huge  bool
}

// Lookup translates va, checking the 2 MiB partition first (as hardware
// does for huge mappings), then the 4 KiB partition.
func (t *TLB) Lookup(va uint64) (Result, bool) {
	if e, ok := t.large.lookup(va >> 21); ok {
		t.hits++
		return Result{PA: e.pfn<<21 | va&(paging.PageSize2M-1), Flags: e.flags, Huge: true}, true
	}
	if e, ok := t.small.lookup(va >> 12); ok {
		t.hits++
		return Result{PA: e.pfn<<12 | va&(paging.PageSize4K-1), Flags: e.flags}, true
	}
	t.misses++
	return Result{}, false
}

// Insert caches a completed present walk. Non-present walks are never
// cacheable (there is nothing to cache), which is precisely why unmapped
// kernel addresses page-walk on every TET-KASLR probe.
func (t *TLB) Insert(w paging.Walk) {
	if !w.Present {
		return
	}
	e := entry{flags: w.Flags, global: w.Flags&paging.FlagG != 0}
	if w.Huge {
		e.vpn = w.VA >> 21
		e.pfn = w.PA >> 21
		t.large.insert(e)
		return
	}
	e.vpn = w.VA >> 12
	e.pfn = w.PA >> 12
	t.small.insert(e)
}

// InvalidatePage drops any entry translating va (invlpg).
func (t *TLB) InvalidatePage(va uint64) bool {
	s := t.small.invalidate(va >> 12)
	l := t.large.invalidate(va >> 21)
	return s || l
}

// Flush drops entries, keeping global ones if keepGlobal (a CR3 write).
func (t *TLB) Flush(keepGlobal bool) {
	t.small.flush(keepGlobal)
	t.large.flush(keepGlobal)
}

// Flush4K drops every entry in the 4 KiB partition only, modelling a
// capacity-eviction sweep an unprivileged attacker performs by touching one
// page per 4K-partition set. 2 MiB entries survive — the asymmetry the
// FLARE-bypass probe exploits (kernel image pages are 2 MiB, FLARE dummies
// are 4 KiB).
func (t *TLB) Flush4K() {
	t.small.flush(false)
}

// Reset restores the TLB to its freshly-constructed state: both partitions
// emptied, LRU ticks rewound, and statistics cleared (machine reuse). Unlike
// Flush, this also rewinds the replacement state, which LRU victim selection
// depends on.
func (t *TLB) Reset() {
	t.small.reset()
	t.large.reset()
	t.hits = 0
	t.misses = 0
}

// ValidEntries returns the number of live entries across both partitions.
func (t *TLB) ValidEntries() int {
	return t.small.countValid() + t.large.countValid()
}

// Stats returns cumulative hit and miss counts.
func (t *TLB) Stats() (hits, misses uint64) { return t.hits, t.misses }

// Name returns the TLB's name.
func (t *TLB) Name() string { return t.name }

// CopyFrom makes t's entries, LRU ticks, and statistics identical to src.
// Both TLBs must share geometry (same model configuration); no allocations.
func (t *TLB) CopyFrom(src *TLB) {
	t.small.copyFrom(src.small)
	t.large.copyFrom(src.large)
	t.hits = src.hits
	t.misses = src.misses
}

func (a *assoc) copyFrom(src *assoc) {
	if a.nsets != src.nsets || a.ways != src.ways {
		panic("tlb: CopyFrom geometry mismatch")
	}
	copy(a.ents, src.ents)
	a.tick = src.tick
}
