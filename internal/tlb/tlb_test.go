package tlb

import (
	"testing"
	"testing/quick"

	"whisper/internal/paging"
)

func walk4K(va, pa, flags uint64) paging.Walk {
	return paging.Walk{VA: va, PA: pa, Flags: flags | paging.FlagP, Present: true}
}

func walk2M(va, pa, flags uint64) paging.Walk {
	return paging.Walk{VA: va, PA: pa, Flags: flags | paging.FlagP, Present: true, Huge: true}
}

func TestLookupMissThenHit(t *testing.T) {
	tl := New("dtlb", DefaultDTLBConfig())
	va := uint64(0x400000)
	if _, ok := tl.Lookup(va); ok {
		t.Fatal("cold lookup hit")
	}
	tl.Insert(walk4K(va, 0x200000, paging.FlagU))
	r, ok := tl.Lookup(va + 0x123)
	if !ok {
		t.Fatal("lookup after insert missed")
	}
	if r.PA != 0x200000+0x123 {
		t.Fatalf("PA = %#x", r.PA)
	}
	if r.Huge {
		t.Fatal("4K entry reported huge")
	}
	hits, misses := tl.Stats()
	if hits != 1 || misses != 1 {
		t.Fatalf("stats = %d/%d", hits, misses)
	}
}

func TestHugeEntryPartition(t *testing.T) {
	tl := New("dtlb", DefaultDTLBConfig())
	va := uint64(0xffffffff80000000)
	tl.Insert(walk2M(va, 0x40000000, paging.FlagG))
	r, ok := tl.Lookup(va + 0x1fffff)
	if !ok || !r.Huge {
		t.Fatalf("huge lookup = %+v, %v", r, ok)
	}
	if r.PA != 0x40000000+0x1fffff {
		t.Fatalf("PA = %#x", r.PA)
	}
	// A 4K lookup in a different 2M region must miss.
	if _, ok := tl.Lookup(va + paging.PageSize2M); ok {
		t.Fatal("adjacent huge region hit")
	}
}

func TestNonPresentWalkNotCached(t *testing.T) {
	tl := New("dtlb", DefaultDTLBConfig())
	tl.Insert(paging.Walk{VA: 0x1000}) // not present
	if tl.ValidEntries() != 0 {
		t.Fatal("non-present walk cached")
	}
}

func TestInvalidatePage(t *testing.T) {
	tl := New("dtlb", DefaultDTLBConfig())
	tl.Insert(walk4K(0x1000, 0x2000, 0))
	if !tl.InvalidatePage(0x1000) {
		t.Fatal("InvalidatePage of present entry returned false")
	}
	if _, ok := tl.Lookup(0x1000); ok {
		t.Fatal("entry survives invlpg")
	}
	if tl.InvalidatePage(0x1000) {
		t.Fatal("double invalidate returned true")
	}
}

func TestFlushKeepsGlobal(t *testing.T) {
	tl := New("dtlb", DefaultDTLBConfig())
	tl.Insert(walk4K(0x1000, 0x2000, 0))            // non-global
	tl.Insert(walk4K(0x3000, 0x4000, paging.FlagG)) // global
	tl.Insert(walk2M(0x40000000, 0x800000, paging.FlagG))
	tl.Flush(true)
	if _, ok := tl.Lookup(0x1000); ok {
		t.Fatal("non-global entry survives CR3 flush")
	}
	if _, ok := tl.Lookup(0x3000); !ok {
		t.Fatal("global 4K entry lost on CR3 flush")
	}
	if _, ok := tl.Lookup(0x40000000); !ok {
		t.Fatal("global 2M entry lost on CR3 flush")
	}
	tl.Flush(false)
	if tl.ValidEntries() != 0 {
		t.Fatal("full flush left entries")
	}
}

func TestLRUWithinSet(t *testing.T) {
	cfg := Config{Entries4K: 8, Ways4K: 2, Entries2M: 4, Ways2M: 2} // 4 sets
	tl := New("t", cfg)
	sets := uint64(4)
	vaOf := func(i uint64) uint64 { return (i*sets + 0) << 12 } // all in set 0
	tl.Insert(walk4K(vaOf(0), 0x1000, 0))
	tl.Insert(walk4K(vaOf(1), 0x2000, 0))
	tl.Lookup(vaOf(0)) // entry 1 becomes LRU
	tl.Insert(walk4K(vaOf(2), 0x3000, 0))
	if _, ok := tl.Lookup(vaOf(1)); ok {
		t.Fatal("LRU entry survived")
	}
	if _, ok := tl.Lookup(vaOf(0)); !ok {
		t.Fatal("MRU entry evicted")
	}
}

func TestInsertUpdatesExisting(t *testing.T) {
	tl := New("dtlb", DefaultDTLBConfig())
	tl.Insert(walk4K(0x1000, 0x2000, 0))
	tl.Insert(walk4K(0x1000, 0x9000, paging.FlagU)) // remap
	r, ok := tl.Lookup(0x1000)
	if !ok || r.PA != 0x9000 {
		t.Fatalf("updated entry = %+v, %v", r, ok)
	}
	if tl.ValidEntries() != 1 {
		t.Fatalf("duplicate entries: %d", tl.ValidEntries())
	}
}

func TestTranslationConsistencyProperty(t *testing.T) {
	tl := New("dtlb", DefaultDTLBConfig())
	f := func(page uint16, off uint16) bool {
		va := uint64(page) << 12
		pa := uint64(page)<<12 | 0x100000000
		tl.Insert(walk4K(va, pa, paging.FlagU))
		r, ok := tl.Lookup(va | uint64(off)&0xfff)
		return ok && r.PA == pa|uint64(off)&0xfff
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestGeometryValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad geometry did not panic")
		}
	}()
	New("bad", Config{Entries4K: 7, Ways4K: 2, Entries2M: 4, Ways2M: 2})
}
