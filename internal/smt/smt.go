// Package smt implements the paper's §4.4 covert channel between two SMT
// siblings: the Trojan thread triggers suppressed page faults whose pipeline
// flushes stall the shared core, and the spy reads the bit out of its own
// nop-loop iteration count. The sibling pair is modelled as the attacker's
// pipeline (which produces a real machine-clear trace) plus an analytic spy
// whose iteration count over a window is the window length minus the
// co-resident stall, with window-scaled measurement noise.
package smt

import (
	"errors"
	"fmt"
	"math"

	"whisper/internal/core"
	"whisper/internal/kernel"
	"whisper/internal/pipeline"
)

// Mode selects the channel's operating point.
type Mode int

// Operating points from §4.4.
const (
	// ModeReliable is the paper's prototype: ~1 B/s with <5 % error on the
	// i7-7700 — second-scale bit windows, bursts of suppressed faults.
	ModeReliable Mode = iota
	// ModeSecSMT is the SecSMT-evaluation configuration: ~268 KB/s at ~28 %
	// error — one fault per two-kilocycle window.
	ModeSecSMT
)

// spyNoiseCoeff scales the spy's iteration-count noise with √window.
const spyNoiseCoeff = 0.9

// Channel is one Trojan/spy SMT pair.
type Channel struct {
	k    *kernel.Kernel
	pr   *core.Prober
	mode Mode

	BitWindow  uint64 // cycles per bit window
	BurstSize  int    // faults the Trojan issues (and we simulate) per '1'
	threshold  float64
	calibrated bool
}

// NewChannel builds the channel in the given mode on a booted kernel.
func NewChannel(k *kernel.Kernel, mode Mode) (*Channel, error) {
	if k == nil {
		return nil, errors.New("smt: nil kernel")
	}
	var (
		pr  *core.Prober
		err error
	)
	c := &Channel{k: k, mode: mode}
	switch mode {
	case ModeReliable:
		pr, err = core.NewProber(k.Machine(), core.SuppressSignal, false)
		c.BitWindow = 450_000_000 // second-scale windows
		c.BurstSize = 48
	case ModeSecSMT:
		pr, err = core.NewProber(k.Machine(), core.SuppressTSX, false)
		c.BitWindow = 2_000
		c.BurstSize = 1
	default:
		return nil, fmt.Errorf("smt: unknown mode %d", mode)
	}
	if err != nil {
		return nil, err
	}
	c.pr = pr
	return c, nil
}

// sendWindow runs one bit window on the Trojan side and returns the spy's
// iteration count for that window.
func (c *Channel) sendWindow(bit bool) (float64, error) {
	m := c.k.Machine()
	p := m.Pipe
	start := p.Cycle()
	var stall uint64
	if bit {
		for i := 0; i < c.BurstSize; i++ {
			if _, err := c.pr.Probe(core.UnmappedVA, 1, 1); err != nil {
				return 0, err
			}
			for _, ev := range p.Clears() {
				if ev.Kind == pipeline.ClearFault {
					stall += ev.Cost
				}
			}
		}
	}
	spent := p.Cycle() - start
	if spent < c.BitWindow {
		p.Skip(c.BitWindow - spent)
	}
	// In the reliable mode the Trojan keeps bursting for the whole
	// second-scale window; extrapolate the measured per-burst stall across
	// it. The SecSMT operating point already saturates the window with its
	// single fault.
	if c.mode == ModeReliable && bit && spent > 0 && c.BitWindow > spent {
		stall = uint64(float64(stall) * float64(c.BitWindow) / float64(spent))
	}
	if stall > c.BitWindow {
		stall = c.BitWindow
	}
	noise := m.Rand.NormFloat64() * spyNoiseCoeff * math.Sqrt(float64(c.BitWindow))
	return float64(c.BitWindow) - float64(stall) + noise, nil
}

// Calibrate trains the spy's decision threshold with a known preamble.
func (c *Channel) Calibrate(reps int) error {
	var ones, zeros float64
	for i := 0; i < reps; i++ {
		it1, err := c.sendWindow(true)
		if err != nil {
			return err
		}
		it0, err := c.sendWindow(false)
		if err != nil {
			return err
		}
		ones += it1
		zeros += it0
	}
	ones /= float64(reps)
	zeros /= float64(reps)
	if ones >= zeros {
		return errors.New("smt: no stall signal between siblings")
	}
	c.threshold = (ones + zeros) / 2
	c.calibrated = true
	return nil
}

// Transfer sends data Trojan→spy and returns the spy's decoding with
// throughput accounting.
func (c *Channel) Transfer(data []byte) (core.LeakResult, error) {
	if !c.calibrated {
		if err := c.Calibrate(8); err != nil {
			return core.LeakResult{}, err
		}
	}
	m := c.k.Machine()
	start := m.Pipe.Cycle()
	out := make([]byte, len(data))
	for i, by := range data {
		var got byte
		for bit := 7; bit >= 0; bit-- {
			iters, err := c.sendWindow(by>>uint(bit)&1 == 1)
			if err != nil {
				return core.LeakResult{}, fmt.Errorf("smt: byte %d: %w", i, err)
			}
			if iters < c.threshold {
				got |= 1 << uint(bit)
			}
		}
		out[i] = got
	}
	cycles := m.Pipe.Cycle() - start
	return core.LeakResult{Data: out, Cycles: cycles, Bps: m.Bps(len(data), cycles)}, nil
}
