package smt

import (
	"errors"
	"fmt"

	"whisper/internal/core"
	"whisper/internal/isa"
	"whisper/internal/kernel"
)

// MechanicalChannel is the §4.4 covert channel running end to end on the
// DualCore substrate: the Trojan thread really executes its fault loop on
// one pipeline while the spy's timed nop loop runs on the sibling, with the
// interference carried purely by the co-scheduler's cross-thread flush
// stalls. Unlike Channel (which is calibrated to the paper's reported
// operating points), nothing here is parameterised to hit a number — it is
// the mechanism itself.
type MechanicalChannel struct {
	k *kernel.Kernel
	d *DualCore

	trojan  *isa.Program
	idle    *isa.Program
	spy     *isa.Program
	handler int

	threshold  uint64
	calibrated bool
}

// Mechanical channel geometry: the spy window must cover several
// fault+delivery rounds of the Trojan.
const (
	mechTrojanFaults = 8
	mechSpyIters     = 55_000
	mechTrojanCode   = kernel.UserCodeBase + 0x58000
	mechIdleCode     = kernel.UserCodeBase + 0x60000
	mechSpyCode      = kernel.UserCodeBase + 0x68000
	mechBudget       = 5_000_000
)

// NewMechanicalChannel builds the channel on a booted kernel.
func NewMechanicalChannel(k *kernel.Kernel, seed int64) (*MechanicalChannel, error) {
	d, err := NewDualCore(k, seed)
	if err != nil {
		return nil, err
	}
	trojan, handler, err := TrojanProgram(mechTrojanCode, mechTrojanFaults)
	if err != nil {
		return nil, fmt.Errorf("smt: trojan: %w", err)
	}
	idle, err := IdleProgram(mechIdleCode, mechTrojanFaults)
	if err != nil {
		return nil, fmt.Errorf("smt: idle: %w", err)
	}
	spy, err := SpyProgram(mechSpyCode, mechSpyIters)
	if err != nil {
		return nil, fmt.Errorf("smt: spy: %w", err)
	}
	return &MechanicalChannel{k: k, d: d, trojan: trojan, idle: idle, spy: spy, handler: handler}, nil
}

// sendBit transmits one bit and returns the spy's loop time.
func (c *MechanicalChannel) sendBit(bit bool) (uint64, error) {
	t0 := c.idle
	handler := -1
	if bit {
		t0 = c.trojan
		handler = c.handler
	}
	c.d.T0.SetSignalHandler(handler)
	defer c.d.T0.SetSignalHandler(-1)
	if _, _, err := c.d.RunConcurrent(t0, mechBudget, c.spy, mechBudget); err != nil {
		return 0, err
	}
	t1, t2 := c.d.T1.Reg(isa.RSI), c.d.T1.Reg(isa.RDI)
	if t2 < t1 {
		return 0, errors.New("smt: spy timer inverted")
	}
	return t2 - t1, nil
}

// Calibrate learns the spy's decision threshold from a known preamble.
func (c *MechanicalChannel) Calibrate(reps int) error {
	// Warm both threads' code paths first.
	if _, err := c.sendBit(false); err != nil {
		return err
	}
	var ones, zeros uint64
	for i := 0; i < reps; i++ {
		t, err := c.sendBit(true)
		if err != nil {
			return err
		}
		ones += t
		t, err = c.sendBit(false)
		if err != nil {
			return err
		}
		zeros += t
	}
	ones /= uint64(reps)
	zeros /= uint64(reps)
	if ones <= zeros {
		return errors.New("smt: no mechanical interference signal")
	}
	c.threshold = (ones + zeros) / 2
	c.calibrated = true
	return nil
}

// Transfer sends data Trojan→spy over the mechanical substrate.
func (c *MechanicalChannel) Transfer(data []byte) (core.LeakResult, error) {
	if !c.calibrated {
		if err := c.Calibrate(4); err != nil {
			return core.LeakResult{}, err
		}
	}
	startT1 := c.d.T1.Cycle()
	out := make([]byte, len(data))
	for i, by := range data {
		var got byte
		for bit := 7; bit >= 0; bit-- {
			t, err := c.sendBit(by>>uint(bit)&1 == 1)
			if err != nil {
				return core.LeakResult{}, fmt.Errorf("smt: byte %d: %w", i, err)
			}
			if t > c.threshold {
				got |= 1 << uint(bit)
			}
		}
		out[i] = got
	}
	cycles := c.d.T1.Cycle() - startT1
	return core.LeakResult{
		Data:   out,
		Cycles: cycles,
		Bps:    c.k.Machine().Bps(len(data), cycles),
	}, nil
}
