package smt

import (
	"errors"
	"fmt"
	"math/rand"

	"whisper/internal/bpu"
	"whisper/internal/isa"
	"whisper/internal/kernel"
	"whisper/internal/pipeline"
	"whisper/internal/pmu"
	"whisper/internal/tlb"
)

// DualCore co-schedules two hardware threads on one physical core: both
// pipelines share the cache hierarchy, fill buffers and physical memory,
// while architectural and most front-end state (TLBs, predictors, PMU) is
// private, as on real SMT. The §4.4 interference channel is modelled
// mechanically: a machine clear on either thread freezes its sibling for
// the flush duration.
type DualCore struct {
	T0 *pipeline.Pipeline // the machine's primary thread
	T1 *pipeline.Pipeline // the sibling hardware thread

	seenClears0 int
	seenClears1 int
}

// NewDualCore attaches a sibling hardware thread to a booted machine.
func NewDualCore(k *kernel.Kernel, seed int64) (*DualCore, error) {
	if k == nil {
		return nil, errors.New("smt: nil kernel")
	}
	m := k.Machine()
	cfg := m.Model.Pipe
	sibling, err := pipeline.New(cfg, pipeline.Resources{
		Hier: m.Hier, // shared with the sibling
		LFB:  m.LFB,  // shared: the MDS surface
		AS:   k.UserAS(),
		DTLB: tlb.New("DTLB#1", m.Model.DTLB),
		ITLB: tlb.New("ITLB#1", m.Model.ITLB),
		BPU:  bpu.New(m.Model.BPU),
		PMU:  pmu.New(),
		Rand: rand.New(rand.NewSource(seed ^ 0x5bd1e995)),
	})
	if err != nil {
		return nil, fmt.Errorf("smt: sibling thread: %w", err)
	}
	return &DualCore{T0: m.Pipe, T1: sibling}, nil
}

// propagate freezes each thread for the flush cost of any *new* machine
// clear raised by its sibling.
func (d *DualCore) propagate() {
	c0 := d.T0.Clears()
	for _, ev := range c0[d.seenClears0:] {
		if ev.Kind == pipeline.ClearFault {
			d.T1.InjectStall(ev.Cost)
		}
	}
	d.seenClears0 = len(c0)
	c1 := d.T1.Clears()
	for _, ev := range c1[d.seenClears1:] {
		if ev.Kind == pipeline.ClearFault {
			d.T0.InjectStall(ev.Cost)
		}
	}
	d.seenClears1 = len(c1)
}

// RunConcurrent executes one program per thread in cycle lockstep until both
// halt (or a budget/error stops one; the sibling then runs out alone).
func (d *DualCore) RunConcurrent(p0 *isa.Program, max0 uint64, p1 *isa.Program, max1 uint64) (pipeline.Result, pipeline.Result, error) {
	d.T0.BeginExec(p0, max0)
	d.T1.BeginExec(p1, max1)
	d.seenClears0 = 0
	d.seenClears1 = 0
	done0, done1 := false, false
	for !done0 || !done1 {
		var err error
		if !done0 {
			done0, err = d.T0.StepCycle()
			if err != nil {
				return d.T0.ExecResult(), d.T1.ExecResult(), fmt.Errorf("smt: thread 0: %w", err)
			}
		}
		if !done1 {
			done1, err = d.T1.StepCycle()
			if err != nil {
				return d.T0.ExecResult(), d.T1.ExecResult(), fmt.Errorf("smt: thread 1: %w", err)
			}
		}
		d.propagate()
	}
	return d.T0.ExecResult(), d.T1.ExecResult(), nil
}

// Programs for the mechanism demonstration.

// TrojanProgram builds a loop of `faults` suppressed wild loads at base
// (the §4.4 sender's "1" symbol). The returned handler index must be
// installed as the thread's signal handler.
func TrojanProgram(codeVA uint64, faults int64) (*isa.Program, int, error) {
	b := isa.NewBuilder(codeVA)
	b.MovImm(isa.R10, faults)
	b.MovImm(isa.RBX, 0x1310000000) // unmapped
	b.Label("again")
	b.LoadB(isa.RAX, isa.RBX, 0) // faults; handler resumes below
	b.Halt()                     // unreachable
	handler := b.Pos()
	b.Label("handler")
	b.SubImm(isa.R10, isa.R10, 1)
	b.CmpImm(isa.R10, 0)
	b.Jcc(isa.CondNE, "again")
	b.Halt()
	p, err := b.Assemble()
	return p, handler, err
}

// IdleProgram builds a trojan-shaped program that sends nothing (the "0"
// symbol): it spins the same number of loop iterations without faulting.
func IdleProgram(codeVA uint64, iters int64) (*isa.Program, error) {
	b := isa.NewBuilder(codeVA)
	b.MovImm(isa.R10, iters)
	b.Label("again")
	b.SubImm(isa.R10, isa.R10, 1)
	b.CmpImm(isa.R10, 0)
	b.Jcc(isa.CondNE, "again")
	b.Halt()
	return b.Assemble()
}

// SpyProgram builds the receiver's timed nop loop: RSI/RDI carry the RDTSC
// pair around `iters` iterations.
func SpyProgram(codeVA uint64, iters int64) (*isa.Program, error) {
	b := isa.NewBuilder(codeVA)
	b.Rdtsc(isa.RSI)
	b.Lfence()
	b.MovImm(isa.R11, iters)
	b.Label("loop")
	b.Nop()
	b.SubImm(isa.R11, isa.R11, 1)
	b.CmpImm(isa.R11, 0)
	b.Jcc(isa.CondNE, "loop")
	b.Lfence()
	b.Rdtsc(isa.RDI)
	b.Halt()
	return b.Assemble()
}
