package smt

import (
	"testing"

	"whisper/internal/cpu"
	"whisper/internal/kernel"
	"whisper/internal/stats"
)

func boot(t *testing.T, seed int64) *kernel.Kernel {
	t.Helper()
	m := cpu.MustMachine(cpu.I7_7700(), seed)
	k, err := kernel.Boot(m, kernel.Config{KASLR: true})
	if err != nil {
		t.Fatal(err)
	}
	return k
}

func TestReliableModeTransfer(t *testing.T) {
	k := boot(t, 201)
	c, err := NewChannel(k, ModeReliable)
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte{0xC3, 0x5A}
	res, err := c.Transfer(payload)
	if err != nil {
		t.Fatal(err)
	}
	if er := stats.BitErrorRate(res.Data, payload); er >= 0.05 {
		t.Fatalf("reliable mode bit error rate %.3f, want <5%%", er)
	}
	// Second-scale windows: throughput in the ~1 B/s regime.
	if res.Bps < 0.2 || res.Bps > 10 {
		t.Fatalf("reliable mode throughput %.2f B/s, want ~1 B/s", res.Bps)
	}
}

func TestSecSMTModeFastButNoisy(t *testing.T) {
	k := boot(t, 202)
	c, err := NewChannel(k, ModeSecSMT)
	if err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, 64)
	for i := range payload {
		payload[i] = byte(i*37 + 11)
	}
	res, err := c.Transfer(payload)
	if err != nil {
		t.Fatal(err)
	}
	er := stats.BitErrorRate(res.Data, payload)
	if er < 0.05 || er > 0.45 {
		t.Fatalf("SecSMT mode bit error rate %.3f, want noisy (~28%%)", er)
	}
	// Hundreds of KB/s regime.
	if res.Bps < 50_000 || res.Bps > 2_000_000 {
		t.Fatalf("SecSMT throughput %.0f B/s, want ~268 KB/s regime", res.Bps)
	}
}

func TestModesOrdering(t *testing.T) {
	k := boot(t, 203)
	slow, err := NewChannel(k, ModeReliable)
	if err != nil {
		t.Fatal(err)
	}
	fast, err := NewChannel(k, ModeSecSMT)
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte{0xAA}
	rs, err := slow.Transfer(payload)
	if err != nil {
		t.Fatal(err)
	}
	rf, err := fast.Transfer(payload)
	if err != nil {
		t.Fatal(err)
	}
	if rf.Bps <= rs.Bps {
		t.Fatalf("SecSMT (%.1f B/s) should be faster than reliable (%.1f B/s)", rf.Bps, rs.Bps)
	}
}

func TestNewChannelValidation(t *testing.T) {
	if _, err := NewChannel(nil, ModeReliable); err == nil {
		t.Fatal("nil kernel accepted")
	}
	k := boot(t, 204)
	if _, err := NewChannel(k, Mode(99)); err == nil {
		t.Fatal("bogus mode accepted")
	}
}

func TestCalibrateFindsSignal(t *testing.T) {
	k := boot(t, 205)
	c, err := NewChannel(k, ModeReliable)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Calibrate(4); err != nil {
		t.Fatalf("Calibrate: %v", err)
	}
	if c.threshold <= 0 || c.threshold >= float64(c.BitWindow) {
		t.Fatalf("threshold %v outside window", c.threshold)
	}
}
