package smt

import (
	"testing"

	"whisper/internal/isa"
	"whisper/internal/kernel"
)

const (
	trojanCode = kernel.UserCodeBase + 0x48000
	spyCode    = kernel.UserCodeBase + 0x50000
)

// spyTime runs the spy loop on thread 1 while thread 0 runs the given
// program, returning the spy's measured loop time.
func spyTime(t *testing.T, d *DualCore, t0 *isa.Program, t0Handler int) uint64 {
	t.Helper()
	spy, err := SpyProgram(spyCode, 55_000)
	if err != nil {
		t.Fatal(err)
	}
	d.T0.SetSignalHandler(t0Handler)
	defer d.T0.SetSignalHandler(-1)
	if _, _, err := d.RunConcurrent(t0, 5_000_000, spy, 5_000_000); err != nil {
		t.Fatal(err)
	}
	return d.T1.Reg(isa.RDI) - d.T1.Reg(isa.RSI)
}

func TestSiblingFlushSlowsSpy(t *testing.T) {
	k := boot(t, 301)
	d, err := NewDualCore(k, 301)
	if err != nil {
		t.Fatal(err)
	}
	trojan, handler, err := TrojanProgram(trojanCode, 8)
	if err != nil {
		t.Fatal(err)
	}
	idle, err := IdleProgram(trojanCode+0x1000, 8)
	if err != nil {
		t.Fatal(err)
	}
	// Warm both threads' code paths.
	spyTime(t, d, idle, -1)
	quiet := spyTime(t, d, idle, -1)
	noisy := spyTime(t, d, trojan, handler)
	if noisy <= quiet+100 {
		t.Fatalf("sibling flushes invisible to the spy: quiet=%d noisy=%d", quiet, noisy)
	}
}

func TestDualCoreBitsDistinguishable(t *testing.T) {
	// The §4.4 channel end to end on the mechanical substrate: the spy's
	// loop time separates fault-burst windows from idle windows.
	k := boot(t, 302)
	d, err := NewDualCore(k, 302)
	if err != nil {
		t.Fatal(err)
	}
	trojan, handler, err := TrojanProgram(trojanCode, 8)
	if err != nil {
		t.Fatal(err)
	}
	idle, err := IdleProgram(trojanCode+0x1000, 8)
	if err != nil {
		t.Fatal(err)
	}
	spyTime(t, d, idle, -1) // warm
	var ones, zeros []uint64
	for i := 0; i < 6; i++ {
		ones = append(ones, spyTime(t, d, trojan, handler))
		zeros = append(zeros, spyTime(t, d, idle, -1))
	}
	maxZero, minOne := uint64(0), ^uint64(0)
	for _, z := range zeros {
		if z > maxZero {
			maxZero = z
		}
	}
	for _, o := range ones {
		if o < minOne {
			minOne = o
		}
	}
	if minOne <= maxZero {
		t.Fatalf("bit distributions overlap: ones min %d, zeros max %d (ones=%v zeros=%v)",
			minOne, maxZero, ones, zeros)
	}
}

func TestDualCoreIsolatesArchitecturalState(t *testing.T) {
	k := boot(t, 303)
	d, err := NewDualCore(k, 303)
	if err != nil {
		t.Fatal(err)
	}
	p0, err := IdleProgram(trojanCode, 5)
	if err != nil {
		t.Fatal(err)
	}
	p1, err := SpyProgram(spyCode, 50)
	if err != nil {
		t.Fatal(err)
	}
	d.T0.SetReg(isa.RAX, 111)
	d.T1.SetReg(isa.RAX, 222)
	if _, _, err := d.RunConcurrent(p0, 1_000_000, p1, 1_000_000); err != nil {
		t.Fatal(err)
	}
	if d.T0.Reg(isa.RAX) != 111 || d.T1.Reg(isa.RAX) != 222 {
		t.Fatalf("architectural state leaked between threads: %d, %d",
			d.T0.Reg(isa.RAX), d.T1.Reg(isa.RAX))
	}
}

func TestNewDualCoreValidation(t *testing.T) {
	if _, err := NewDualCore(nil, 1); err == nil {
		t.Fatal("nil kernel accepted")
	}
}

func TestMechanicalChannelTransfer(t *testing.T) {
	k := boot(t, 304)
	c, err := NewMechanicalChannel(k, 304)
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte{0xC3, 0x2E}
	res, err := c.Transfer(payload)
	if err != nil {
		t.Fatal(err)
	}
	if res.Data[0] != payload[0] || res.Data[1] != payload[1] {
		t.Fatalf("mechanical channel decoded %x, want %x", res.Data, payload)
	}
	if res.Bps <= 0 {
		t.Fatal("no throughput accounted")
	}
}
