package trace_test

import (
	"strings"
	"testing"

	"whisper/internal/core"
	"whisper/internal/cpu"
	"whisper/internal/kernel"
	"whisper/internal/trace"
)

func bootTraced(t *testing.T) (*kernel.Kernel, *trace.Collector) {
	t.Helper()
	m := cpu.MustMachine(cpu.I7_7700(), 5)
	k, err := kernel.Boot(m, kernel.Config{KASLR: true})
	if err != nil {
		t.Fatal(err)
	}
	c := trace.NewCollector(0)
	c.Attach(m.Pipe)
	return k, c
}

func TestCollectorCapturesTransientWindow(t *testing.T) {
	k, c := bootTraced(t)
	pr, err := core.NewProber(k.Machine(), core.SuppressTSX, true)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pr.Probe(core.UnmappedVA, 0, 0); err != nil {
		t.Fatal(err)
	}
	s := c.Summarise()
	if s.Total == 0 {
		t.Fatal("no records collected")
	}
	if s.Squashed == 0 {
		t.Fatal("probe produced no transient (squashed) uops")
	}
	if s.Retired == 0 {
		t.Fatal("probe retired nothing")
	}
	if s.Faults == 0 {
		t.Fatal("faulting load not recorded")
	}
	// Timestamps must be ordered within each record (IssueAt is zero for
	// uops squashed straight out of the IDQ).
	for _, r := range c.Records() {
		if r.IssueAt != 0 && r.IssueAt < r.FetchAt {
			t.Fatalf("issue before fetch: %+v", r)
		}
		if r.EndAt < r.FetchAt {
			t.Fatalf("end before fetch: %+v", r)
		}
	}
}

func TestRenderShowsLanes(t *testing.T) {
	k, c := bootTraced(t)
	pr, err := core.NewProber(k.Machine(), core.SuppressTSX, true)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pr.Probe(core.UnmappedVA, 0, 0); err != nil {
		t.Fatal(err)
	}
	out := trace.Render(c.Records(), 80)
	for _, want := range []string{"pipeline trace", "transient", "not-present fault", "R"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
	// Every record gets a row (+1 header line).
	if got := strings.Count(out, "\n"); got != len(c.Records())+1 {
		t.Fatalf("rows = %d, want %d", got, len(c.Records())+1)
	}
}

func TestRenderEmpty(t *testing.T) {
	if out := trace.Render(nil, 40); !strings.Contains(out, "no trace") {
		t.Fatalf("empty render = %q", out)
	}
}

func TestTracerDoesNotPerturbTiming(t *testing.T) {
	measure := func(attach bool) uint64 {
		m := cpu.MustMachine(cpu.I7_7700(), 5)
		k, err := kernel.Boot(m, kernel.Config{KASLR: true})
		if err != nil {
			t.Fatal(err)
		}
		if attach {
			trace.NewCollector(0).Attach(m.Pipe)
		}
		pr, err := core.NewProber(k.Machine(), core.SuppressTSX, true)
		if err != nil {
			t.Fatal(err)
		}
		var last uint64
		for i := 0; i < 5; i++ {
			last, err = pr.Probe(core.UnmappedVA, 0, 0)
			if err != nil {
				t.Fatal(err)
			}
		}
		return last
	}
	if a, b := measure(false), measure(true); a != b {
		t.Fatalf("tracing changed timing: %d vs %d", a, b)
	}
}
