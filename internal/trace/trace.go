// Package trace collects uop lifetime records from a pipeline and renders
// them as ASCII pipeline (Gantt) diagrams — the visual form of the transient
// window the Whisper channel times. Squashed rows are the transient
// execution the architecture pretends never happened.
package trace

import (
	"fmt"
	"strings"

	"whisper/internal/pipeline"
)

// Collector buffers trace records in machine order. A capped collector is a
// ring: once full, each new record overwrites the oldest in O(1) (head marks
// the oldest slot), keeping the newest cap records.
type Collector struct {
	recs []pipeline.TraceRecord
	cap  int
	head int // index of the oldest record once the ring is full
}

// NewCollector returns a collector keeping at most capacity records
// (0 = unbounded).
func NewCollector(capacity int) *Collector {
	return &Collector{cap: capacity}
}

// Attach installs the collector on a pipeline; detach with
// p.SetTracer(nil).
func (c *Collector) Attach(p *pipeline.Pipeline) {
	p.SetTracer(c.add)
}

func (c *Collector) add(r pipeline.TraceRecord) {
	if c.cap > 0 && len(c.recs) >= c.cap {
		c.recs[c.head] = r
		c.head++
		if c.head == len(c.recs) {
			c.head = 0
		}
		return
	}
	c.recs = append(c.recs, r)
}

// Reset drops all buffered records.
func (c *Collector) Reset() {
	c.recs = c.recs[:0]
	c.head = 0
}

// Len returns the number of buffered records.
func (c *Collector) Len() int { return len(c.recs) }

// Records returns the buffered records in emission order. Until the ring
// wraps this is the internal buffer; after wraparound a rotated copy is
// returned so callers still see oldest-first order.
func (c *Collector) Records() []pipeline.TraceRecord {
	if c.head == 0 {
		return c.recs
	}
	out := make([]pipeline.TraceRecord, 0, len(c.recs))
	out = append(out, c.recs[c.head:]...)
	out = append(out, c.recs[:c.head]...)
	return out
}

// Stats summarises a record buffer.
type Stats struct {
	Total    int
	Retired  int
	Squashed int // transient uops
	Faults   int
}

// Summarise computes Stats over the buffer.
func (c *Collector) Summarise() Stats {
	var s Stats
	for _, r := range c.recs {
		s.Total++
		if r.Retired {
			s.Retired++
		} else {
			s.Squashed++
		}
		if r.Fault != "" {
			s.Faults++
		}
	}
	return s
}

// Render draws the records as a pipeline diagram. Lanes (per cycle, one
// column): F fetch, I issue, E execute start, = in execution, C complete,
// R retire, X squash. Rows are uops in fetch order; width columns cover the
// span from the first fetch to the last end (clamped).
//
//	0: rdtsc rsi      FI E=========C R
//	3: load1 rax,...  .FI E======================X   (transient)
func Render(recs []pipeline.TraceRecord, width int) string {
	if len(recs) == 0 {
		return "(no trace)\n"
	}
	if width <= 0 {
		width = 96
	}
	start := recs[0].FetchAt
	end := recs[0].EndAt
	for _, r := range recs {
		if r.FetchAt < start {
			start = r.FetchAt
		}
		if r.EndAt > end {
			end = r.EndAt
		}
	}
	span := end - start + 1
	scale := 1.0
	if span > uint64(width) {
		scale = float64(width) / float64(span)
	}
	col := func(cycle uint64) int {
		c := int(float64(cycle-start) * scale)
		if c >= width {
			c = width - 1
		}
		return c
	}

	var b strings.Builder
	fmt.Fprintf(&b, "pipeline trace: cycles %d..%d (%d uops; 1 col ≈ %.1f cycles)\n",
		start, end, len(recs), 1/scale)
	for _, r := range recs {
		lane := make([]byte, width)
		for i := range lane {
			lane[i] = ' '
		}
		mark := func(cycle uint64, ch byte) {
			if cycle < start || cycle > end {
				return
			}
			c := col(cycle)
			if lane[c] == ' ' || lane[c] == '=' {
				lane[c] = ch
			}
		}
		if r.StartAt != 0 && r.DoneAt > r.StartAt {
			for cy := r.StartAt; cy <= r.DoneAt && cy <= end; cy++ {
				lane[col(cy)] = '='
			}
		}
		mark(r.FetchAt, 'F')
		mark(r.IssueAt, 'I')
		if r.StartAt != 0 {
			mark(r.StartAt, 'E')
		}
		if r.DoneAt != 0 {
			mark(r.DoneAt, 'C')
		}
		if r.Retired {
			mark(r.EndAt, 'R')
		} else {
			mark(r.EndAt, 'X')
		}
		tag := ""
		if !r.Retired {
			tag = "  (transient"
			if r.Fault != "" {
				tag += ", " + r.Fault + " fault"
			}
			tag += ")"
		}
		fmt.Fprintf(&b, "%4d: %-22s %s%s\n", r.Seq, clip(r.Text, 22), string(lane), tag)
	}
	return b.String()
}

func clip(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-1] + "…"
}
