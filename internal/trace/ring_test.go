package trace

import (
	"strings"
	"testing"

	"whisper/internal/pipeline"
)

func TestCollectorCapacity(t *testing.T) {
	c := NewCollector(3)
	for i := 0; i < 10; i++ {
		c.add(pipeline.TraceRecord{Seq: uint64(i)})
	}
	recs := c.Records()
	if len(recs) != 3 {
		t.Fatalf("len = %d", len(recs))
	}
	if recs[0].Seq != 7 || recs[2].Seq != 9 {
		t.Fatalf("ring kept wrong records: %+v", recs)
	}
	c.Reset()
	if len(c.Records()) != 0 {
		t.Fatal("Reset did not clear")
	}
}

// TestRingWraparoundOrder drives the ring through several partial
// wraparounds and checks Records() always returns emission order, with the
// head in an arbitrary mid-buffer position.
func TestRingWraparoundOrder(t *testing.T) {
	const cap = 5
	c := NewCollector(cap)
	for n := 1; n <= 3*cap+2; n++ {
		c.add(pipeline.TraceRecord{Seq: uint64(n - 1)})
		recs := c.Records()
		want := n
		if want > cap {
			want = cap
		}
		if len(recs) != want {
			t.Fatalf("after %d adds: len = %d, want %d", n, len(recs), want)
		}
		for i, r := range recs {
			if wantSeq := uint64(n - want + i); r.Seq != wantSeq {
				t.Fatalf("after %d adds: recs[%d].Seq = %d, want %d (%+v)",
					n, i, r.Seq, wantSeq, recs)
			}
		}
	}
}

func TestRingResetMidWrap(t *testing.T) {
	c := NewCollector(4)
	for i := 0; i < 6; i++ { // head is mid-buffer
		c.add(pipeline.TraceRecord{Seq: uint64(i)})
	}
	c.Reset()
	if c.Len() != 0 {
		t.Fatalf("Len after Reset = %d", c.Len())
	}
	c.add(pipeline.TraceRecord{Seq: 100})
	recs := c.Records()
	if len(recs) != 1 || recs[0].Seq != 100 {
		t.Fatalf("post-Reset records wrong: %+v", recs)
	}
}

func TestRenderSingleRecord(t *testing.T) {
	out := Render([]pipeline.TraceRecord{{
		Seq: 0, Text: "rdtsc rsi",
		FetchAt: 10, IssueAt: 11, StartAt: 12, DoneAt: 14, EndAt: 15,
		Retired: true,
	}}, 40)
	if !strings.Contains(out, "cycles 10..15") {
		t.Fatalf("header wrong:\n%s", out)
	}
	for _, mark := range []string{"F", "I", "E", "C", "R"} {
		if !strings.Contains(out, mark) {
			t.Fatalf("missing lane mark %q:\n%s", mark, out)
		}
	}
	if strings.Contains(out, "transient") {
		t.Fatalf("retired uop tagged transient:\n%s", out)
	}
}

// TestRenderNarrowWidth forces scale < 1 (span wider than the diagram):
// every column index must stay in-bounds and the scale is reported.
func TestRenderNarrowWidth(t *testing.T) {
	recs := []pipeline.TraceRecord{
		{Seq: 0, Text: "load1", FetchAt: 0, IssueAt: 5, StartAt: 10, DoneAt: 900, EndAt: 1000, Retired: true},
		{Seq: 1, Text: "load2", FetchAt: 500, IssueAt: 505, StartAt: 510, DoneAt: 950, EndAt: 999},
	}
	out := Render(recs, 10) // span 1001 cycles into 10 columns
	if !strings.Contains(out, "1 col ≈ 100.1 cycles") {
		t.Fatalf("scale not reported:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("want header + 2 rows, got %d lines:\n%s", len(lines), out)
	}
}

// TestRenderNeverExecuted covers StartAt == 0 (fetched but squashed before
// execution started): no E mark, no '=' fill, an X at the squash cycle.
func TestRenderNeverExecuted(t *testing.T) {
	recs := []pipeline.TraceRecord{
		{Seq: 0, Text: "cmp", FetchAt: 1, IssueAt: 2, StartAt: 3, DoneAt: 4, EndAt: 9, Retired: true},
		{Seq: 1, Text: "never", FetchAt: 2, IssueAt: 0, StartAt: 0, DoneAt: 0, EndAt: 8},
	}
	out := Render(recs, 40)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	row := lines[2]
	if strings.ContainsAny(row, "E=C") {
		t.Fatalf("never-executed uop shows execution lanes: %q", row)
	}
	if !strings.Contains(row, "X") || !strings.Contains(row, "(transient)") {
		t.Fatalf("squash mark or tag missing: %q", row)
	}
}

// TestRenderWrappedRing renders straight out of a wrapped ring: the rows
// must follow emission order, not internal buffer order.
func TestRenderWrappedRing(t *testing.T) {
	c := NewCollector(3)
	for i := 0; i < 5; i++ {
		c.add(pipeline.TraceRecord{
			Seq: uint64(i), Text: "nop",
			FetchAt: uint64(10 * (i + 1)), EndAt: uint64(10*(i+1) + 5), Retired: true,
		})
	}
	out := Render(c.Records(), 60)
	i2, i3, i4 := strings.Index(out, "   2: nop"), strings.Index(out, "   3: nop"), strings.Index(out, "   4: nop")
	if i2 < 0 || i3 < 0 || i4 < 0 || !(i2 < i3 && i3 < i4) {
		t.Fatalf("wrapped ring rendered out of order:\n%s", out)
	}
	if !strings.Contains(out, "cycles 30..55") {
		t.Fatalf("span should cover only the retained records:\n%s", out)
	}
}
