package bpu

import (
	"testing"
	"testing/quick"
)

func TestPHTTraining(t *testing.T) {
	b := New(DefaultConfig())
	pc := uint64(0x400)
	if b.PredictCond(pc) {
		t.Fatal("initial prediction should be not-taken")
	}
	b.UpdateCond(pc, true, true)
	if !b.PredictCond(pc) {
		t.Fatal("one taken update should reach weakly-taken")
	}
	b.UpdateCond(pc, false, true)
	if b.PredictCond(pc) {
		t.Fatal("counter should fall back to not-taken")
	}
}

func TestPHTSaturation(t *testing.T) {
	b := New(DefaultConfig())
	pc := uint64(0x80)
	for i := 0; i < 10; i++ {
		b.UpdateCond(pc, true, false)
	}
	// One not-taken outcome must not flip a saturated taken counter.
	b.UpdateCond(pc, false, true)
	if !b.PredictCond(pc) {
		t.Fatal("saturated counter flipped after single opposite outcome")
	}
	for i := 0; i < 10; i++ {
		b.UpdateCond(pc, false, false)
	}
	b.UpdateCond(pc, true, false)
	if b.PredictCond(pc) {
		t.Fatal("saturated not-taken counter flipped after single taken")
	}
}

func TestBTB(t *testing.T) {
	b := New(DefaultConfig())
	pc, target := uint64(0x1000), uint64(0x2000)
	if _, ok := b.PredictTarget(pc); ok {
		t.Fatal("cold BTB predicted a target")
	}
	b.UpdateTarget(pc, target)
	got, ok := b.PredictTarget(pc)
	if !ok || got != target {
		t.Fatalf("PredictTarget = (%#x, %v)", got, ok)
	}
	// A different pc aliasing the same index must not match (tag check).
	alias := pc + uint64(len(b.btb))*4
	if _, ok := b.PredictTarget(alias); ok {
		t.Fatal("aliasing pc matched BTB entry")
	}
}

func TestRSBLIFO(t *testing.T) {
	b := New(DefaultConfig())
	b.PushRSB(0x100)
	b.PushRSB(0x200)
	if v, ok := b.PopRSB(); !ok || v != 0x200 {
		t.Fatalf("first pop = (%#x, %v)", v, ok)
	}
	if v, ok := b.PopRSB(); !ok || v != 0x100 {
		t.Fatalf("second pop = (%#x, %v)", v, ok)
	}
	if _, ok := b.PopRSB(); ok {
		t.Fatal("empty RSB predicted")
	}
}

func TestRSBCircularOverflow(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RSBEntries = 4
	b := New(cfg)
	for i := 1; i <= 6; i++ { // overflows a 4-entry stack
		b.PushRSB(uint64(i * 0x10))
	}
	// Deepest two entries were overwritten; pops yield 6,5,4,3 then wrap to
	// the stale 6,5 (circular semantics).
	want := []uint64{0x60, 0x50, 0x40, 0x30, 0x60, 0x50}
	for i, w := range want {
		v, ok := b.PopRSB()
		if !ok || v != w {
			t.Fatalf("pop %d = (%#x, %v), want %#x", i, v, ok, w)
		}
	}
}

func TestRSBMispredictionScenario(t *testing.T) {
	// Spectre-V5: push the architectural return address, then the attacker
	// rewrites the stack slot; the RSB still predicts the original address.
	b := New(DefaultConfig())
	arch := uint64(0x401000)
	b.PushRSB(arch)
	predicted, ok := b.PopRSB()
	if !ok || predicted != arch {
		t.Fatal("RSB lost the speculated return address")
	}
	actual := uint64(0x402000) // overwritten in memory
	if predicted == actual {
		t.Fatal("test is vacuous")
	}
}

func TestFlushRSB(t *testing.T) {
	b := New(DefaultConfig())
	b.PushRSB(0x123)
	b.FlushRSB()
	if _, ok := b.PopRSB(); ok {
		t.Fatal("flushed RSB still predicts")
	}
}

func TestStats(t *testing.T) {
	b := New(DefaultConfig())
	b.PredictCond(0)
	b.UpdateCond(0, true, true)
	b.PopRSB()
	lk, mp, rp, uf := b.Stats()
	if lk != 1 || mp != 1 || rp != 1 || uf != 1 {
		t.Fatalf("Stats = %d,%d,%d,%d", lk, mp, rp, uf)
	}
}

func TestPHTCounterBoundsProperty(t *testing.T) {
	b := New(DefaultConfig())
	f := func(pcSel uint16, outcomes []bool) bool {
		pc := uint64(pcSel) << 2
		for _, taken := range outcomes {
			b.UpdateCond(pc, taken, false)
		}
		c := b.pht[b.phtIndex(pc)]
		return c <= 3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestNewValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero-size BPU did not panic")
		}
	}()
	New(Config{})
}
