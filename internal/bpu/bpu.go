// Package bpu implements the branch prediction unit: a 2-bit-counter pattern
// history table for conditional direction, a direct-mapped BTB for targets,
// and the return stack buffer whose mispredictions power Spectre-V5-RSB.
package bpu

// Config sizes the predictor structures.
type Config struct {
	PHTEntries int
	BTBEntries int
	RSBEntries int
}

// DefaultConfig matches a Skylake-class client core.
func DefaultConfig() Config {
	return Config{PHTEntries: 4096, BTBEntries: 512, RSBEntries: 16}
}

// BPU is one core's branch prediction unit.
type BPU struct {
	pht []uint8 // 2-bit saturating counters; >=2 predicts taken
	btb []btbEntry
	rsb []uint64
	top int // index of next push slot

	condLookups   uint64
	condMispreds  uint64
	retPredicts   uint64
	rsbUnderflows uint64
}

type btbEntry struct {
	tag    uint64
	target uint64
	valid  bool
}

// New returns a BPU with all counters weakly-not-taken and an empty RSB.
func New(cfg Config) *BPU {
	if cfg.PHTEntries <= 0 || cfg.BTBEntries <= 0 || cfg.RSBEntries <= 0 {
		panic("bpu: non-positive structure size")
	}
	b := &BPU{
		pht: make([]uint8, cfg.PHTEntries),
		btb: make([]btbEntry, cfg.BTBEntries),
		rsb: make([]uint64, cfg.RSBEntries),
	}
	for i := range b.pht {
		b.pht[i] = 1 // weakly not-taken
	}
	return b
}

func (b *BPU) phtIndex(pc uint64) int {
	return int((pc >> 2) % uint64(len(b.pht)))
}

func (b *BPU) btbIndex(pc uint64) int {
	return int((pc >> 2) % uint64(len(b.btb)))
}

// PredictCond returns the predicted direction for the conditional branch
// at pc.
func (b *BPU) PredictCond(pc uint64) bool {
	b.condLookups++
	return b.pht[b.phtIndex(pc)] >= 2
}

// UpdateCond trains the direction predictor with the resolved outcome and
// records whether the prediction was wrong.
func (b *BPU) UpdateCond(pc uint64, taken, mispredicted bool) {
	i := b.phtIndex(pc)
	if taken {
		if b.pht[i] < 3 {
			b.pht[i]++
		}
	} else if b.pht[i] > 0 {
		b.pht[i]--
	}
	if mispredicted {
		b.condMispreds++
	}
}

// PredictTarget returns the BTB's target for the branch at pc, if any.
func (b *BPU) PredictTarget(pc uint64) (uint64, bool) {
	e := b.btb[b.btbIndex(pc)]
	if e.valid && e.tag == pc {
		return e.target, true
	}
	return 0, false
}

// UpdateTarget installs the resolved target of the branch at pc.
func (b *BPU) UpdateTarget(pc, target uint64) {
	b.btb[b.btbIndex(pc)] = btbEntry{tag: pc, target: target, valid: true}
}

// PushRSB records a call's return address.
func (b *BPU) PushRSB(retAddr uint64) {
	b.rsb[b.top] = retAddr
	b.top = (b.top + 1) % len(b.rsb)
}

// PopRSB returns the predicted return address for a ret. The RSB is a
// circular stack: underflow wraps and returns stale data rather than
// failing, exactly the behaviour ret2spec-style attacks rely on.
func (b *BPU) PopRSB() (uint64, bool) {
	b.retPredicts++
	b.top = (b.top - 1 + len(b.rsb)) % len(b.rsb)
	v := b.rsb[b.top]
	if v == 0 {
		b.rsbUnderflows++
		return 0, false
	}
	return v, true
}

// Reset restores the BPU to its freshly-constructed state: all PHT counters
// weakly-not-taken, BTB and RSB emptied, statistics cleared (machine reuse).
func (b *BPU) Reset() {
	for i := range b.pht {
		b.pht[i] = 1
	}
	for i := range b.btb {
		b.btb[i] = btbEntry{}
	}
	for i := range b.rsb {
		b.rsb[i] = 0
	}
	b.top = 0
	b.condLookups = 0
	b.condMispreds = 0
	b.retPredicts = 0
	b.rsbUnderflows = 0
}

// FlushRSB clears the return stack (context-switch / IBPB model).
func (b *BPU) FlushRSB() {
	for i := range b.rsb {
		b.rsb[i] = 0
	}
	b.top = 0
}

// Stats returns cumulative predictor statistics.
func (b *BPU) Stats() (condLookups, condMispreds, retPredicts, rsbUnderflows uint64) {
	return b.condLookups, b.condMispreds, b.retPredicts, b.rsbUnderflows
}

// CopyFrom makes b's predictor tables, RSB, and statistics identical to src.
// Both BPUs must share geometry (same model configuration); no allocations.
func (b *BPU) CopyFrom(src *BPU) {
	if len(b.pht) != len(src.pht) || len(b.btb) != len(src.btb) || len(b.rsb) != len(src.rsb) {
		panic("bpu: CopyFrom geometry mismatch")
	}
	copy(b.pht, src.pht)
	copy(b.btb, src.btb)
	copy(b.rsb, src.rsb)
	b.top = src.top
	b.condLookups = src.condLookups
	b.condMispreds = src.condMispreds
	b.retPredicts = src.retPredicts
	b.rsbUnderflows = src.rsbUnderflows
}
