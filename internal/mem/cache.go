package mem

import "fmt"

// Cache is one set-associative cache level with true-LRU replacement. It
// tracks tags only; data is served by Physical so functional correctness
// never depends on the timing model.
//
// Line validity is generational: a line is valid iff its gen matches the
// cache's. Bumping the cache generation therefore invalidates every line in
// O(1), which turns Reset and FlushAll — megabytes of line metadata on an
// LLC — into counter updates. Bulk-state operations (machine reuse, snapshot
// restore, context-switch flushes) hit these paths once per sweep cell, and
// at LLC sizes the O(lines) clear was a measurable share of cell runtime.
type Cache struct {
	name   string
	nsets  int
	ways   int
	shift  uint // log2(LineSize)
	lines  []cacheLine
	gen    uint64 // current generation; lines with a different gen are invalid
	tick   uint64
	hits   uint64
	misses uint64
}

type cacheLine struct {
	tag  uint64
	gen  uint64 // valid iff == Cache.gen (0 = never valid: gens start at 1)
	used uint64 // LRU timestamp
}

// NewCache builds a cache with the given total size in bytes and
// associativity. Size must be a multiple of ways*LineSize.
func NewCache(name string, sizeBytes, ways int) *Cache {
	if sizeBytes%(ways*LineSize) != 0 {
		panic(fmt.Sprintf("mem: cache %s size %d not divisible by ways*line", name, sizeBytes))
	}
	nsets := sizeBytes / (ways * LineSize)
	return &Cache{
		name:  name,
		nsets: nsets,
		ways:  ways,
		shift: 6,
		lines: make([]cacheLine, nsets*ways),
		gen:   1,
	}
}

func (c *Cache) set(pa uint64) []cacheLine {
	idx := int((pa >> c.shift) % uint64(c.nsets))
	return c.lines[idx*c.ways : (idx+1)*c.ways]
}

func (c *Cache) tag(pa uint64) uint64 { return pa >> c.shift }

// Lookup probes for the line containing pa, updating LRU state and hit/miss
// counters. It reports whether the line was present.
func (c *Cache) Lookup(pa uint64) bool {
	c.tick++
	tag := c.tag(pa)
	set := c.set(pa)
	for i := range set {
		if set[i].gen == c.gen && set[i].tag == tag {
			set[i].used = c.tick
			c.hits++
			return true
		}
	}
	c.misses++
	return false
}

// Contains probes without touching LRU or counters (for tests/inspection).
func (c *Cache) Contains(pa uint64) bool {
	tag := c.tag(pa)
	for _, l := range c.set(pa) {
		if l.gen == c.gen && l.tag == tag {
			return true
		}
	}
	return false
}

// Fill inserts the line containing pa, evicting the LRU way if needed. It
// returns the physical address of the evicted line and whether an eviction
// of a valid line occurred.
func (c *Cache) Fill(pa uint64) (evicted uint64, hadVictim bool) {
	c.tick++
	tag := c.tag(pa)
	set := c.set(pa)
	for i := range set {
		if set[i].gen == c.gen && set[i].tag == tag {
			set[i].used = c.tick
			return 0, false // already present
		}
	}
	for i := range set {
		if set[i].gen != c.gen {
			set[i] = cacheLine{tag: tag, gen: c.gen, used: c.tick}
			return 0, false
		}
	}
	victim := 0
	for i := range set {
		if set[i].used < set[victim].used {
			victim = i
		}
	}
	evicted = set[victim].tag << c.shift
	set[victim] = cacheLine{tag: tag, gen: c.gen, used: c.tick}
	return evicted, true
}

// Evict removes the line containing pa if present, reporting whether it was.
func (c *Cache) Evict(pa uint64) bool {
	tag := c.tag(pa)
	set := c.set(pa)
	for i := range set {
		if set[i].gen == c.gen && set[i].tag == tag {
			set[i].gen = 0 // gens start at 1 and only grow, so 0 never matches
			return true
		}
	}
	return false
}

// FlushAll invalidates every line in O(1) by advancing the generation.
func (c *Cache) FlushAll() {
	c.gen++
}

// Reset restores the cache to its freshly-constructed state: every line
// invalid (generation bump), the LRU tick rewound, and the hit/miss
// statistics cleared. The tick rewind matters for machine reuse — LRU victim
// choice depends on it, so a reused cache must replay the exact tick
// sequence of a fresh one. Stale tags and timestamps in invalidated lines
// are unreachable: every read is gated on the line's generation, and the
// LRU victim scan only runs in all-valid sets.
func (c *Cache) Reset() {
	c.gen++
	c.tick = 0
	c.hits = 0
	c.misses = 0
}

// Stats returns cumulative hit and miss counts.
func (c *Cache) Stats() (hits, misses uint64) { return c.hits, c.misses }

// Name returns the cache's name (e.g. "L1D").
func (c *Cache) Name() string { return c.name }

// Sets and Ways expose geometry for eviction-set construction.
func (c *Cache) Sets() int { return c.nsets }

// Ways returns the associativity.
func (c *Cache) Ways() int { return c.ways }
