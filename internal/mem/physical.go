// Package mem implements the simulated memory subsystem: sparse physical
// memory, a set-associative write-back cache hierarchy (L1D/L1I/L2/LLC), and
// the line fill buffer whose stale-data retention is the Zombieload
// substrate. Caches model timing and presence only; data always lives in
// Physical, which keeps the functional and timing models independent.
package mem

import (
	"fmt"
	"slices"
)

// PageSize is the smallest physical allocation unit.
const PageSize = 4096

// LineSize is the cache line size in bytes.
const LineSize = 64

// Physical is a sparse 64-bit physical address space. It can be layered
// copy-on-write over another Physical's page image (AliasBase): reads of
// frames this space has not written fall through to the base image, and the
// first write to such a frame copies it into a private frame. Snapshot forks
// use this to make restoring a machine O(dirty set) instead of O(image).
type Physical struct {
	pages map[uint64]*[PageSize]byte
	// base is the read-only copy-on-write underlay (nil when unlayered).
	// It is shared with the Physical it came from and must never be
	// written through.
	base map[uint64]*[PageSize]byte
	// free parks page frames dropped by Reset/CopyFrom so steady-state
	// reuse (machine pools, snapshot forks) never allocates.
	free []*[PageSize]byte
	// One-entry lookup memo: page walks and line-sized accesses hammer the
	// same few pages, and the memo turns most map probes into one compare.
	// lastRO marks a memoized base frame, which a write must not reuse.
	lastKey uint64
	lastPg  *[PageSize]byte
	lastRO  bool
}

// NewPhysical returns an empty physical memory.
func NewPhysical() *Physical {
	return &Physical{pages: make(map[uint64]*[PageSize]byte)}
}

func (p *Physical) page(pa uint64, create bool) *[PageSize]byte {
	key := pa / PageSize
	if p.lastPg != nil && key == p.lastKey && (!create || !p.lastRO) {
		return p.lastPg
	}
	pg, ro := p.pages[key], false
	if pg == nil {
		if bpg := p.base[key]; bpg != nil {
			if create {
				// COW fault: copy the base frame up before the write.
				pg = p.rawFrame()
				*pg = *bpg
				p.pages[key] = pg
			} else {
				pg, ro = bpg, true
			}
		}
	}
	if pg == nil {
		if !create {
			return nil
		}
		pg = p.takeFrame()
		p.pages[key] = pg
	}
	p.lastKey, p.lastPg, p.lastRO = key, pg, ro
	return pg
}

// rawFrame returns a page frame with unspecified contents, preferring the
// freelist; callers must fully overwrite it.
func (p *Physical) rawFrame() *[PageSize]byte {
	if n := len(p.free); n > 0 {
		pg := p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
		return pg
	}
	return new([PageSize]byte)
}

// takeFrame returns a zeroed page frame, preferring the freelist.
func (p *Physical) takeFrame() *[PageSize]byte {
	if n := len(p.free); n > 0 {
		pg := p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
		*pg = [PageSize]byte{}
		return pg
	}
	return new([PageSize]byte)
}

// parkAll moves every owned frame onto the freelist and clears the index and
// the copy-on-write underlay.
func (p *Physical) parkAll() {
	for _, pg := range p.pages {
		p.free = append(p.free, pg)
	}
	clear(p.pages)
	p.base = nil
	p.lastPg = nil
}

// LoadByte reads one byte; unbacked memory reads as zero.
func (p *Physical) LoadByte(pa uint64) byte {
	if pg := p.page(pa, false); pg != nil {
		return pg[pa%PageSize]
	}
	return 0
}

// StoreByte writes one byte, allocating the backing page if needed.
func (p *Physical) StoreByte(pa uint64, v byte) {
	p.page(pa, true)[pa%PageSize] = v
}

// Read reads a little-endian value of size bytes (1..8).
func (p *Physical) Read(pa uint64, size int) uint64 {
	var v uint64
	if off := pa % PageSize; off+uint64(size) <= PageSize {
		// Single-page access (every aligned read): one page lookup.
		pg := p.page(pa, false)
		if pg == nil {
			return 0
		}
		for i := 0; i < size; i++ {
			v |= uint64(pg[off+uint64(i)]) << (8 * i)
		}
		return v
	}
	for i := 0; i < size; i++ {
		v |= uint64(p.LoadByte(pa+uint64(i))) << (8 * i)
	}
	return v
}

// Write writes a little-endian value of size bytes (1..8).
func (p *Physical) Write(pa uint64, size int, v uint64) {
	if off := pa % PageSize; off+uint64(size) <= PageSize {
		pg := p.page(pa, true)
		for i := 0; i < size; i++ {
			pg[off+uint64(i)] = byte(v >> (8 * i))
		}
		return
	}
	for i := 0; i < size; i++ {
		p.StoreByte(pa+uint64(i), byte(v>>(8*i)))
	}
}

// LoadBytes copies n bytes starting at pa.
func (p *Physical) LoadBytes(pa uint64, n int) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = p.LoadByte(pa + uint64(i))
	}
	return out
}

// StoreBytes copies b into memory starting at pa.
func (p *Physical) StoreBytes(pa uint64, b []byte) {
	for i, v := range b {
		p.StoreByte(pa+uint64(i), v)
	}
}

// Reset drops every backed page, returning the memory to its
// freshly-constructed all-zero state while keeping the page index's storage
// and the page frames themselves for reuse.
func (p *Physical) Reset() {
	p.parkAll()
}

// CopyFrom makes p's contents byte-identical to src, recycling p's existing
// page frames: once the freelist covers src's working set, the copy performs
// no allocations. The result is flat — src's copy-on-write layering, if any,
// is materialized, so the copy stays correct even after src's underlay is
// reused elsewhere.
func (p *Physical) CopyFrom(src *Physical) {
	p.parkAll()
	for key, spg := range src.pages {
		// The frame is fully overwritten, so skip takeFrame's zeroing.
		pg := p.rawFrame()
		*pg = *spg
		p.pages[key] = pg
	}
	for key, spg := range src.base {
		if _, shadowed := p.pages[key]; shadowed {
			continue
		}
		pg := p.rawFrame()
		*pg = *spg
		p.pages[key] = pg
	}
}

// AliasBase layers p copy-on-write over src's page image: reads fall through
// to src's frames until p writes them, and the first write copies the frame
// up into p. The caller must guarantee src's image is immutable while any
// alias is alive — snapshot forks satisfy this by aliasing only the frozen
// replica, which is never executed. A layered src is first flattened with a
// full copy.
func (p *Physical) AliasBase(src *Physical) {
	if src.base != nil {
		p.CopyFrom(src)
		return
	}
	p.parkAll()
	p.base = src.pages
}

// DigestFNV folds every backed page (frame number and contents) into an
// FNV-1a-style digest, visiting pages in ascending frame order so the result
// is independent of map iteration. The snapshot layer uses it for
// content-addressed checkpoint IDs.
func (p *Physical) DigestFNV(h uint64) uint64 {
	const prime = 1099511628211
	keys := make([]uint64, 0, len(p.pages)+len(p.base))
	for k := range p.pages {
		keys = append(keys, k)
	}
	for k := range p.base {
		if _, shadowed := p.pages[k]; !shadowed {
			keys = append(keys, k)
		}
	}
	slices.Sort(keys)
	for _, k := range keys {
		for s := 0; s < 64; s += 8 {
			h = (h ^ (k >> s & 0xff)) * prime
		}
		// Fold the page 8 bytes at a time; pages are always word-multiple.
		pg := p.pages[k]
		if pg == nil {
			pg = p.base[k]
		}
		for off := 0; off < PageSize; off += 8 {
			var w uint64
			for i := 0; i < 8; i++ {
				w |= uint64(pg[off+i]) << (8 * i)
			}
			h = (h ^ w) * prime
		}
	}
	return h
}

// PageCount returns the number of backed pages — owned plus un-shadowed base
// frames (for tests and accounting).
func (p *Physical) PageCount() int {
	n := len(p.pages)
	for k := range p.base {
		if _, shadowed := p.pages[k]; !shadowed {
			n++
		}
	}
	return n
}

func (p *Physical) String() string {
	return fmt.Sprintf("physical{%d pages}", p.PageCount())
}
