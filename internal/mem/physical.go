// Package mem implements the simulated memory subsystem: sparse physical
// memory, a set-associative write-back cache hierarchy (L1D/L1I/L2/LLC), and
// the line fill buffer whose stale-data retention is the Zombieload
// substrate. Caches model timing and presence only; data always lives in
// Physical, which keeps the functional and timing models independent.
package mem

import "fmt"

// PageSize is the smallest physical allocation unit.
const PageSize = 4096

// LineSize is the cache line size in bytes.
const LineSize = 64

// Physical is a sparse 64-bit physical address space.
type Physical struct {
	pages map[uint64]*[PageSize]byte
}

// NewPhysical returns an empty physical memory.
func NewPhysical() *Physical {
	return &Physical{pages: make(map[uint64]*[PageSize]byte)}
}

func (p *Physical) page(pa uint64, create bool) *[PageSize]byte {
	key := pa / PageSize
	pg := p.pages[key]
	if pg == nil && create {
		pg = new([PageSize]byte)
		p.pages[key] = pg
	}
	return pg
}

// LoadByte reads one byte; unbacked memory reads as zero.
func (p *Physical) LoadByte(pa uint64) byte {
	if pg := p.page(pa, false); pg != nil {
		return pg[pa%PageSize]
	}
	return 0
}

// StoreByte writes one byte, allocating the backing page if needed.
func (p *Physical) StoreByte(pa uint64, v byte) {
	p.page(pa, true)[pa%PageSize] = v
}

// Read reads a little-endian value of size bytes (1..8).
func (p *Physical) Read(pa uint64, size int) uint64 {
	var v uint64
	for i := 0; i < size; i++ {
		v |= uint64(p.LoadByte(pa+uint64(i))) << (8 * i)
	}
	return v
}

// Write writes a little-endian value of size bytes (1..8).
func (p *Physical) Write(pa uint64, size int, v uint64) {
	for i := 0; i < size; i++ {
		p.StoreByte(pa+uint64(i), byte(v>>(8*i)))
	}
}

// LoadBytes copies n bytes starting at pa.
func (p *Physical) LoadBytes(pa uint64, n int) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = p.LoadByte(pa + uint64(i))
	}
	return out
}

// StoreBytes copies b into memory starting at pa.
func (p *Physical) StoreBytes(pa uint64, b []byte) {
	for i, v := range b {
		p.StoreByte(pa+uint64(i), v)
	}
}

// Reset drops every backed page, returning the memory to its
// freshly-constructed all-zero state while keeping the page index's storage
// for reuse.
func (p *Physical) Reset() {
	clear(p.pages)
}

// PageCount returns the number of backed pages (for tests and accounting).
func (p *Physical) PageCount() int { return len(p.pages) }

func (p *Physical) String() string {
	return fmt.Sprintf("physical{%d pages}", len(p.pages))
}
