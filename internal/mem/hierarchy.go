package mem

// Latencies gives the load-to-use latency (in cycles) of each level of the
// hierarchy. The defaults approximate a Skylake-class client part.
type Latencies struct {
	L1   uint64
	L2   uint64
	L3   uint64
	DRAM uint64
}

// DefaultLatencies returns Skylake-class latencies.
func DefaultLatencies() Latencies {
	return Latencies{L1: 4, L2: 12, L3: 42, DRAM: 220}
}

// HierarchyConfig sizes the cache hierarchy.
type HierarchyConfig struct {
	L1DSize, L1DWays int
	L1ISize, L1IWays int
	L2Size, L2Ways   int
	L3Size, L3Ways   int
	Lat              Latencies
}

// DefaultHierarchyConfig returns a Skylake-class configuration.
func DefaultHierarchyConfig() HierarchyConfig {
	return HierarchyConfig{
		L1DSize: 32 << 10, L1DWays: 8,
		L1ISize: 32 << 10, L1IWays: 8,
		L2Size: 256 << 10, L2Ways: 4,
		L3Size: 8 << 20, L3Ways: 16,
		Lat: DefaultLatencies(),
	}
}

// Level identifies where an access hit.
type Level int

// Hit levels, from fastest to slowest.
const (
	LevelL1 Level = iota
	LevelL2
	LevelL3
	LevelDRAM
)

func (l Level) String() string {
	switch l {
	case LevelL1:
		return "L1"
	case LevelL2:
		return "L2"
	case LevelL3:
		return "L3"
	}
	return "DRAM"
}

// Hierarchy is the full cache hierarchy over a Physical memory.
type Hierarchy struct {
	Phys *Physical
	L1D  *Cache
	L1I  *Cache
	L2   *Cache
	L3   *Cache
	lat  Latencies
}

// NewHierarchy builds a hierarchy with the given configuration.
func NewHierarchy(phys *Physical, cfg HierarchyConfig) *Hierarchy {
	return &Hierarchy{
		Phys: phys,
		L1D:  NewCache("L1D", cfg.L1DSize, cfg.L1DWays),
		L1I:  NewCache("L1I", cfg.L1ISize, cfg.L1IWays),
		L2:   NewCache("L2", cfg.L2Size, cfg.L2Ways),
		L3:   NewCache("L3", cfg.L3Size, cfg.L3Ways),
		lat:  cfg.Lat,
	}
}

// Latency returns the configured latency of a level.
func (h *Hierarchy) Latency(l Level) uint64 {
	switch l {
	case LevelL1:
		return h.lat.L1
	case LevelL2:
		return h.lat.L2
	case LevelL3:
		return h.lat.L3
	}
	return h.lat.DRAM
}

// AccessData simulates a data-side access to physical address pa, filling
// lines on the way in, and returns the latency and the level that served it.
func (h *Hierarchy) AccessData(pa uint64) (uint64, Level) {
	return h.access(h.L1D, pa)
}

// AccessInst simulates an instruction-side access.
func (h *Hierarchy) AccessInst(pa uint64) (uint64, Level) {
	return h.access(h.L1I, pa)
}

func (h *Hierarchy) access(l1 *Cache, pa uint64) (uint64, Level) {
	if l1.Lookup(pa) {
		return h.lat.L1, LevelL1
	}
	if h.L2.Lookup(pa) {
		l1.Fill(pa)
		return h.lat.L2, LevelL2
	}
	if h.L3.Lookup(pa) {
		h.L2.Fill(pa)
		l1.Fill(pa)
		return h.lat.L3, LevelL3
	}
	h.L3.Fill(pa)
	h.L2.Fill(pa)
	l1.Fill(pa)
	return h.lat.DRAM, LevelDRAM
}

// AccessDataInvisible services a data access without installing any new
// cache state: hits are served normally (without LRU update), misses are
// charged the full latency of the level that would serve them but fill
// nothing. This is the InvisiSpec-style "invisible speculation" service mode
// the §6.1 mitigation study uses.
func (h *Hierarchy) AccessDataInvisible(pa uint64) (uint64, Level) {
	lvl := h.Probe(pa)
	return h.Latency(lvl), lvl
}

// Probe reports the level pa would hit without perturbing any state.
func (h *Hierarchy) Probe(pa uint64) Level {
	switch {
	case h.L1D.Contains(pa):
		return LevelL1
	case h.L2.Contains(pa):
		return LevelL2
	case h.L3.Contains(pa):
		return LevelL3
	}
	return LevelDRAM
}

// Flush removes the line containing pa from every level (clflush).
func (h *Hierarchy) Flush(pa uint64) {
	h.L1D.Evict(pa)
	h.L1I.Evict(pa)
	h.L2.Evict(pa)
	h.L3.Evict(pa)
}

// Reset restores every level to its freshly-constructed state (lines, LRU
// ticks, and statistics), for machine reuse.
func (h *Hierarchy) Reset() {
	h.L1D.Reset()
	h.L1I.Reset()
	h.L2.Reset()
	h.L3.Reset()
}

// FlushAll empties every cache (used when modelling context switches).
func (h *Hierarchy) FlushAll() {
	h.L1D.FlushAll()
	h.L1I.FlushAll()
	h.L2.FlushAll()
	h.L3.FlushAll()
}

// Prefetch pulls the line containing pa into every data level without
// reporting a latency to the requester (software prefetch semantics).
func (h *Hierarchy) Prefetch(pa uint64) {
	h.L3.Fill(pa)
	h.L2.Fill(pa)
	h.L1D.Fill(pa)
}
