package mem

import "fmt"

// CopyFrom makes c observationally identical to src: the same lines valid
// with the same tags and LRU timestamps, the same tick and statistics. Both
// caches must share geometry (same model configuration); the copy performs
// no allocations. It is sparse: c's generation bump invalidates everything,
// then only src's valid lines — a small fraction after a boot — are written,
// so the cost is one sequential read of src's metadata rather than a full
// memmove of it.
func (c *Cache) CopyFrom(src *Cache) {
	if c.nsets != src.nsets || c.ways != src.ways || c.shift != src.shift {
		panic(fmt.Sprintf("mem: CopyFrom geometry mismatch %s: %dx%d vs %dx%d",
			c.name, c.nsets, c.ways, src.nsets, src.ways))
	}
	c.gen++
	for i := range src.lines {
		if src.lines[i].gen == src.gen {
			c.lines[i] = cacheLine{tag: src.lines[i].tag, gen: c.gen, used: src.lines[i].used}
		}
	}
	c.tick = src.tick
	c.hits = src.hits
	c.misses = src.misses
}

// CopyFrom makes l's entries, allocation cursor, and fill count identical to
// src. Both buffers must have the same size; no allocations.
func (l *LFB) CopyFrom(src *LFB) {
	if len(l.entries) != len(src.entries) {
		panic(fmt.Sprintf("mem: LFB CopyFrom size mismatch %d vs %d",
			len(l.entries), len(src.entries)))
	}
	copy(l.entries, src.entries)
	l.next = src.next
	l.filled = src.filled
}

// CopyFrom copies every cache level from src. Physical memory is copied
// separately (the hierarchies may share or not share a Physical).
func (h *Hierarchy) CopyFrom(src *Hierarchy) {
	h.L1D.CopyFrom(src.L1D)
	h.L1I.CopyFrom(src.L1I)
	h.L2.CopyFrom(src.L2)
	h.L3.CopyFrom(src.L3)
	h.lat = src.lat
}

// CacheImage is a compact record of a cache's valid lines, captured once and
// replayed many times. LoadImage costs O(valid lines) regardless of geometry,
// where even a generation-sparse CopyFrom still scans every line's metadata —
// megabytes at LLC sizes, the term that dominated snapshot forks.
type CacheImage struct {
	idx                []int32
	lines              []cacheLine
	tick, hits, misses uint64
}

// Image captures the cache's current valid lines and statistics.
func (c *Cache) Image() *CacheImage {
	img := &CacheImage{tick: c.tick, hits: c.hits, misses: c.misses}
	for i := range c.lines {
		if c.lines[i].gen == c.gen {
			img.idx = append(img.idx, int32(i))
			img.lines = append(img.lines, c.lines[i])
		}
	}
	return img
}

// LoadImage makes c observationally identical to the cache Image was taken
// from. The geometries must match (same model configuration); no allocations.
func (c *Cache) LoadImage(img *CacheImage) {
	c.gen++
	for k, i := range img.idx {
		c.lines[i] = cacheLine{tag: img.lines[k].tag, gen: c.gen, used: img.lines[k].used}
	}
	c.tick, c.hits, c.misses = img.tick, img.hits, img.misses
}

// HierImage is a CacheImage per level — the hierarchy half of a snapshot.
type HierImage struct {
	l1d, l1i, l2, l3 *CacheImage
	lat              Latencies
}

// Lines returns the total number of valid lines across all levels (resident
// accounting for snapshots).
func (img *HierImage) Lines() int {
	return len(img.l1d.idx) + len(img.l1i.idx) + len(img.l2.idx) + len(img.l3.idx)
}

// Image captures every level's valid lines.
func (h *Hierarchy) Image() *HierImage {
	return &HierImage{
		l1d: h.L1D.Image(), l1i: h.L1I.Image(),
		l2: h.L2.Image(), l3: h.L3.Image(),
		lat: h.lat,
	}
}

// LoadImage restores every level from the image, as CopyFrom would from the
// hierarchy it was captured on.
func (h *Hierarchy) LoadImage(img *HierImage) {
	h.L1D.LoadImage(img.l1d)
	h.L1I.LoadImage(img.l1i)
	h.L2.LoadImage(img.l2)
	h.L3.LoadImage(img.l3)
	h.lat = img.lat
}
