package mem

// LFB models the line fill buffer. Real LFBs track in-flight cache line
// transfers; Zombieload exploits the fact that entries are not scrubbed
// between uses, so a faulting load serviced by a microcode assist can
// transiently forward *stale* data belonging to another context. We model
// exactly that: a FIFO of entries carrying the last data value that moved
// through them, readable by the pipeline when a vulnerable CPU performs an
// assisted faulting load.
type LFB struct {
	entries []lfbEntry
	next    int
	filled  uint64
}

type lfbEntry struct {
	pa    uint64
	data  uint64
	valid bool
}

// NewLFB returns a line fill buffer with n entries (10 on Skylake).
func NewLFB(n int) *LFB {
	return &LFB{entries: make([]lfbEntry, n)}
}

// Record notes that a line transfer for pa carrying data moved through the
// buffer, overwriting the oldest entry (round-robin, as allocation is).
func (l *LFB) Record(pa uint64, data uint64) {
	l.entries[l.next] = lfbEntry{pa: pa, data: data, valid: true}
	l.next = (l.next + 1) % len(l.entries)
	l.filled++
}

// StaleData returns the most recently recorded entry's data — what an
// MDS-style assisted load would transiently forward — and whether any entry
// is valid.
func (l *LFB) StaleData() (uint64, bool) {
	idx := (l.next - 1 + len(l.entries)) % len(l.entries)
	e := l.entries[idx]
	return e.data, e.valid
}

// Scrub clears all entries (VERW-style mitigation).
func (l *LFB) Scrub() {
	for i := range l.entries {
		l.entries[i] = lfbEntry{}
	}
}

// Reset restores the buffer to its freshly-constructed state, including the
// allocation cursor and fill statistics (machine reuse).
func (l *LFB) Reset() {
	l.Scrub()
	l.next = 0
	l.filled = 0
}

// Size returns the number of entries.
func (l *LFB) Size() int { return len(l.entries) }

// Fills returns the cumulative number of Record calls.
func (l *LFB) Fills() uint64 { return l.filled }
