package mem

import (
	"testing"
	"testing/quick"
)

func TestPhysicalReadWriteRoundTrip(t *testing.T) {
	p := NewPhysical()
	f := func(pa uint64, v uint64, szSel uint8) bool {
		size := 1 + int(szSel)%8
		pa %= 1 << 40
		p.Write(pa, size, v)
		got := p.Read(pa, size)
		mask := uint64(1)<<(8*size) - 1
		if size == 8 {
			mask = ^uint64(0)
		}
		return got == v&mask
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPhysicalUnbackedReadsZero(t *testing.T) {
	p := NewPhysical()
	if v := p.Read(0xdeadbeef000, 8); v != 0 {
		t.Errorf("unbacked read = %#x, want 0", v)
	}
	if p.PageCount() != 0 {
		t.Errorf("read allocated pages: %d", p.PageCount())
	}
}

func TestPhysicalCrossPageAccess(t *testing.T) {
	p := NewPhysical()
	pa := uint64(PageSize - 4)
	p.Write(pa, 8, 0x1122334455667788)
	if got := p.Read(pa, 8); got != 0x1122334455667788 {
		t.Errorf("cross-page read = %#x", got)
	}
	if p.PageCount() != 2 {
		t.Errorf("PageCount = %d, want 2", p.PageCount())
	}
}

func TestPhysicalBytes(t *testing.T) {
	p := NewPhysical()
	data := []byte("whisper secret")
	p.StoreBytes(0x1000, data)
	if got := string(p.LoadBytes(0x1000, len(data))); got != string(data) {
		t.Errorf("LoadBytes = %q", got)
	}
}

func TestCacheHitAfterFill(t *testing.T) {
	c := NewCache("test", 4096, 4)
	pa := uint64(0x12340)
	if c.Lookup(pa) {
		t.Fatal("cold lookup hit")
	}
	c.Fill(pa)
	if !c.Lookup(pa) {
		t.Fatal("lookup after fill missed")
	}
	// Same line, different offset within the line, must also hit.
	if !c.Lookup(pa + LineSize - 1) {
		t.Fatal("same-line offset missed")
	}
	if c.Lookup(pa + LineSize) {
		t.Fatal("adjacent line hit")
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := NewCache("test", 2*LineSize*4, 2) // 4 sets, 2 ways
	setStride := uint64(c.Sets() * LineSize)
	a, b, d := uint64(0), setStride, 2*setStride // all map to set 0
	c.Fill(a)
	c.Fill(b)
	c.Lookup(a) // make b the LRU way
	if evicted, had := c.Fill(d); !had || evicted != b {
		t.Fatalf("Fill evicted %#x (had=%v), want %#x", evicted, had, b)
	}
	if !c.Contains(a) || c.Contains(b) || !c.Contains(d) {
		t.Fatalf("post-eviction contents wrong: a=%v b=%v d=%v",
			c.Contains(a), c.Contains(b), c.Contains(d))
	}
}

func TestCacheFillIdempotent(t *testing.T) {
	c := NewCache("test", 4096, 4)
	c.Fill(0x40)
	if _, had := c.Fill(0x40); had {
		t.Fatal("refill of present line evicted something")
	}
}

func TestCacheEvictAndFlush(t *testing.T) {
	c := NewCache("test", 4096, 4)
	c.Fill(0x80)
	if !c.Evict(0x80) {
		t.Fatal("Evict of present line reported false")
	}
	if c.Evict(0x80) {
		t.Fatal("Evict of absent line reported true")
	}
	c.Fill(0x80)
	c.Fill(0x1080)
	c.FlushAll()
	if c.Contains(0x80) || c.Contains(0x1080) {
		t.Fatal("FlushAll left lines valid")
	}
}

func TestCacheStats(t *testing.T) {
	c := NewCache("test", 4096, 4)
	c.Lookup(0) // miss
	c.Fill(0)
	c.Lookup(0) // hit
	hits, misses := c.Stats()
	if hits != 1 || misses != 1 {
		t.Errorf("Stats = (%d, %d), want (1, 1)", hits, misses)
	}
}

func TestCacheGeometryValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewCache with bad geometry did not panic")
		}
	}()
	NewCache("bad", 1000, 3)
}

func TestHierarchyLatencyOrdering(t *testing.T) {
	h := NewHierarchy(NewPhysical(), DefaultHierarchyConfig())
	pa := uint64(0x5000)
	lat1, lvl1 := h.AccessData(pa)
	if lvl1 != LevelDRAM {
		t.Fatalf("cold access level = %v", lvl1)
	}
	lat2, lvl2 := h.AccessData(pa)
	if lvl2 != LevelL1 {
		t.Fatalf("warm access level = %v", lvl2)
	}
	if lat2 >= lat1 {
		t.Fatalf("warm latency %d >= cold latency %d", lat2, lat1)
	}
}

func TestHierarchyFlushForcesDRAM(t *testing.T) {
	h := NewHierarchy(NewPhysical(), DefaultHierarchyConfig())
	pa := uint64(0x9000)
	h.AccessData(pa)
	h.Flush(pa)
	if _, lvl := h.AccessData(pa); lvl != LevelDRAM {
		t.Fatalf("post-flush level = %v, want DRAM", lvl)
	}
}

func TestHierarchyL2Refill(t *testing.T) {
	h := NewHierarchy(NewPhysical(), DefaultHierarchyConfig())
	pa := uint64(0x40)
	h.AccessData(pa)
	h.L1D.Evict(pa) // still in L2/L3
	_, lvl := h.AccessData(pa)
	if lvl != LevelL2 {
		t.Fatalf("level after L1 eviction = %v, want L2", lvl)
	}
	if !h.L1D.Contains(pa) {
		t.Fatal("L2 hit did not refill L1")
	}
}

func TestHierarchyInstVsDataSplit(t *testing.T) {
	h := NewHierarchy(NewPhysical(), DefaultHierarchyConfig())
	pa := uint64(0x7000)
	h.AccessInst(pa)
	if h.L1D.Contains(pa) {
		t.Fatal("inst access filled L1D")
	}
	if !h.L1I.Contains(pa) {
		t.Fatal("inst access did not fill L1I")
	}
	// Second inst access should be L1.
	if _, lvl := h.AccessInst(pa); lvl != LevelL1 {
		t.Fatalf("warm inst access = %v", lvl)
	}
}

func TestHierarchyPrefetch(t *testing.T) {
	h := NewHierarchy(NewPhysical(), DefaultHierarchyConfig())
	pa := uint64(0x11000)
	h.Prefetch(pa)
	if _, lvl := h.AccessData(pa); lvl != LevelL1 {
		t.Fatalf("access after prefetch = %v, want L1", lvl)
	}
}

func TestHierarchyProbeNonDestructive(t *testing.T) {
	h := NewHierarchy(NewPhysical(), DefaultHierarchyConfig())
	pa := uint64(0x13000)
	if lvl := h.Probe(pa); lvl != LevelDRAM {
		t.Fatalf("cold probe = %v", lvl)
	}
	// Probe must not have filled anything.
	if h.L1D.Contains(pa) || h.L2.Contains(pa) || h.L3.Contains(pa) {
		t.Fatal("Probe perturbed cache state")
	}
	h.AccessData(pa)
	if lvl := h.Probe(pa); lvl != LevelL1 {
		t.Fatalf("warm probe = %v", lvl)
	}
}

func TestLFBStaleDataRetention(t *testing.T) {
	l := NewLFB(10)
	if _, ok := l.StaleData(); ok {
		t.Fatal("empty LFB returned stale data")
	}
	l.Record(0x1000, 0x53) // 'S'
	got, ok := l.StaleData()
	if !ok || got != 0x53 {
		t.Fatalf("StaleData = (%#x, %v), want (0x53, true)", got, ok)
	}
	l.Record(0x2000, 0x41)
	if got, _ := l.StaleData(); got != 0x41 {
		t.Fatalf("StaleData after second record = %#x, want 0x41", got)
	}
}

func TestLFBRoundRobinAndScrub(t *testing.T) {
	l := NewLFB(2)
	for i := uint64(0); i < 5; i++ {
		l.Record(i<<12, i)
	}
	if got, _ := l.StaleData(); got != 4 {
		t.Fatalf("StaleData = %d, want 4", got)
	}
	if l.Fills() != 5 {
		t.Fatalf("Fills = %d", l.Fills())
	}
	l.Scrub()
	if _, ok := l.StaleData(); ok {
		t.Fatal("scrubbed LFB still returns stale data")
	}
}

func TestAccessorsAndStringers(t *testing.T) {
	c := NewCache("L1D", 4096, 4)
	if c.Name() != "L1D" {
		t.Errorf("Name = %q", c.Name())
	}
	if c.Ways() != 4 {
		t.Errorf("Ways = %d", c.Ways())
	}
	h := NewHierarchy(NewPhysical(), DefaultHierarchyConfig())
	for lvl, want := range map[Level]uint64{LevelL1: 4, LevelL2: 12, LevelL3: 42, LevelDRAM: 220} {
		if got := h.Latency(lvl); got != want {
			t.Errorf("Latency(%v) = %d, want %d", lvl, got, want)
		}
	}
	for _, lvl := range []Level{LevelL1, LevelL2, LevelL3, LevelDRAM} {
		if lvl.String() == "" {
			t.Errorf("Level(%d) has no name", lvl)
		}
	}
	p := NewPhysical()
	p.StoreByte(0, 1)
	if p.String() == "" {
		t.Error("Physical String empty")
	}
	if NewLFB(10).Size() != 10 {
		t.Error("LFB Size wrong")
	}
}

func TestHierarchyFlushAll(t *testing.T) {
	h := NewHierarchy(NewPhysical(), DefaultHierarchyConfig())
	h.AccessData(0x1000)
	h.AccessInst(0x2000)
	h.FlushAll()
	if h.Probe(0x1000) != LevelDRAM {
		t.Error("FlushAll left data lines")
	}
	if h.L1I.Contains(0x2000) {
		t.Error("FlushAll left inst lines")
	}
}

func TestAccessDataInvisible(t *testing.T) {
	h := NewHierarchy(NewPhysical(), DefaultHierarchyConfig())
	pa := uint64(0x3000)
	lat, lvl := h.AccessDataInvisible(pa)
	if lvl != LevelDRAM || lat != h.Latency(LevelDRAM) {
		t.Fatalf("cold invisible access = (%d, %v)", lat, lvl)
	}
	// Invisible access must not have filled anything.
	if h.Probe(pa) != LevelDRAM {
		t.Fatal("invisible access installed cache state")
	}
	// After a real access, the invisible one sees (and charges) the hit
	// level — L2 and L3 probes included.
	h.AccessData(pa)
	h.L1D.Evict(pa)
	if _, lvl := h.AccessDataInvisible(pa); lvl != LevelL2 {
		t.Fatalf("invisible L2 probe = %v", lvl)
	}
	h.L2.Evict(pa)
	if _, lvl := h.AccessDataInvisible(pa); lvl != LevelL3 {
		t.Fatalf("invisible L3 probe = %v", lvl)
	}
}
