package cli

import (
	"context"
	"syscall"
	"testing"
	"time"
)

// TestFirstSignalCancelsSecondExits pins the drain-then-die contract: the
// first SIGINT only cancels the context (the graceful path), the second
// hard-exits with 128+SIGINT.
func TestFirstSignalCancelsSecondExits(t *testing.T) {
	exited := make(chan int, 1)
	old := exit
	exit = func(code int) { exited <- code }
	defer func() { exit = old }()

	ctx, stop := SignalContext(context.Background())
	defer stop()

	if err := syscall.Kill(syscall.Getpid(), syscall.SIGINT); err != nil {
		t.Fatal(err)
	}
	select {
	case <-ctx.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("first SIGINT did not cancel the context")
	}
	select {
	case code := <-exited:
		t.Fatalf("first SIGINT exited with %d; it must only cancel", code)
	case <-time.After(50 * time.Millisecond):
	}

	if err := syscall.Kill(syscall.Getpid(), syscall.SIGINT); err != nil {
		t.Fatal(err)
	}
	select {
	case code := <-exited:
		if code != HardExitCode {
			t.Fatalf("second SIGINT exited with %d, want %d", code, HardExitCode)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("second SIGINT did not hard-exit")
	}
}

// TestStopReleasesWatcher checks stop() ends the watcher goroutine and
// cancels the context without involving a signal.
func TestStopReleasesWatcher(t *testing.T) {
	exited := make(chan int, 1)
	old := exit
	exit = func(code int) { exited <- code }
	defer func() { exit = old }()

	ctx, stop := SignalContext(context.Background())
	stop()
	select {
	case <-ctx.Done():
	case <-time.After(time.Second):
		t.Fatal("stop did not cancel the context")
	}
	stop() // idempotent
	select {
	case code := <-exited:
		t.Fatalf("stop exited with %d", code)
	case <-time.After(20 * time.Millisecond):
	}
}
