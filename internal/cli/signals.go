// Package cli holds the small pieces the cmd/ front-ends share: signal
// wiring with a drain-then-die contract.
package cli

import (
	"context"
	"fmt"
	"os"
	"os/signal"
	"sync"
	"syscall"
)

// HardExitCode is the status a second interrupt exits with: 128+SIGINT, the
// shell convention for death-by-signal.
const HardExitCode = 130

// exit is swapped out by tests.
var exit = os.Exit

// SignalContext returns a context that is cancelled on the first SIGINT or
// SIGTERM — the graceful path: in-flight sweeps drain, deferred writers run.
// A *second* signal hard-exits the process immediately (status 130) instead
// of leaving an impatient user waiting on the drain. The returned stop
// function releases the signal handlers and the watcher goroutine.
func SignalContext(parent context.Context) (context.Context, context.CancelFunc) {
	ctx, cancel := context.WithCancel(parent)
	ch := make(chan os.Signal, 2)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	done := make(chan struct{})
	go func() {
		defer signal.Stop(ch)
		select {
		case <-done:
			return
		case sig := <-ch:
			cancel() // graceful: callers see ctx.Done and drain
			select {
			case <-done:
			case sig = <-ch:
				fmt.Fprintf(os.Stderr, "second %v: exiting immediately\n", sig)
				exit(HardExitCode)
			}
		}
	}()
	var once sync.Once
	stop := func() {
		once.Do(func() { close(done) })
		cancel()
	}
	return ctx, stop
}
