package sched

// DeriveSeed maps (rootSeed, jobKey) to the RNG seed a job's simulation must
// boot with. The derivation is a fixed arithmetic pipeline — FNV-1a over the
// key bytes, the root seed folded in with the 64-bit golden ratio, then the
// splitmix64 finalizer — so it is stable across Go versions, platforms and
// worker schedules: a job's seed depends only on its identity, never on which
// worker ran it or when. This is what makes parallel sweep output
// byte-identical to serial output at any worker count.
func DeriveSeed(rootSeed int64, jobKey string) int64 {
	const (
		fnvOffset = 14695981039346656037
		fnvPrime  = 1099511628211
		golden    = 0x9E3779B97F4A7C15
	)
	h := uint64(fnvOffset)
	for i := 0; i < len(jobKey); i++ {
		h ^= uint64(jobKey[i])
		h *= fnvPrime
	}
	x := h ^ (uint64(rootSeed) * golden)
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return int64(x)
}
