package sched_test

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"log/slog"
	"testing"

	"whisper/internal/obs"
	"whisper/internal/obs/logging"
	"whisper/internal/sched"
)

// TestJobSpansCarryRequestID checks every job span inherits the request ID
// riding on the Map context — the link obsreport uses to attribute scheduler
// work to the serving request that caused it.
func TestJobSpansCarryRequestID(t *testing.T) {
	reg := obs.NewRegistry()
	ctx := obs.WithRequestID(context.Background(), "sched-req-1")
	jobs := []sched.Job[int]{
		{Key: "a", Run: func(ctx context.Context, seed int64) (int, error) { return 1, nil }},
		{Key: "b", Run: func(ctx context.Context, seed int64) (int, error) { return 2, nil }},
	}
	if _, err := sched.Map(ctx, sched.Options{Name: "pool", Parallel: 2, Obs: reg}, jobs); err != nil {
		t.Fatal(err)
	}
	tf := reg.BuildTrace(nil)
	var tagged int
	for _, ev := range tf.TraceEvents {
		if ev.Cat == "span" && ev.Args[obs.RequestIDAttr] == "sched-req-1" {
			tagged++
		}
	}
	if tagged != len(jobs) {
		t.Fatalf("%d spans carry the request ID, want %d", tagged, len(jobs))
	}

	// Without an ID on the context, spans must not grow an empty attribute.
	reg2 := obs.NewRegistry()
	sched.Map(context.Background(), sched.Options{Name: "pool", Obs: reg2}, jobs)
	for _, ev := range reg2.BuildTrace(nil).TraceEvents {
		if ev.Cat != "span" {
			continue
		}
		if _, ok := ev.Args[obs.RequestIDAttr]; ok {
			t.Fatal("untagged run produced a request_id span attribute")
		}
	}
}

// TestPanicAndCancellationLogged checks worker panics and pool cancellation
// surface as structured log events keyed by the context's request ID.
func TestPanicAndCancellationLogged(t *testing.T) {
	var buf bytes.Buffer
	log := slog.New(slog.NewJSONHandler(&buf, nil))
	ctx := logging.WithRequestID(context.Background(), log, "sched-req-2")

	jobs := []sched.Job[int]{
		{Key: "boom", Run: func(ctx context.Context, seed int64) (int, error) { panic("kaput") }},
	}
	if _, err := sched.Map(ctx, sched.Options{Name: "pool"}, jobs); err == nil {
		t.Fatal("panicking job did not surface an error")
	}
	line := decodeLogLine(t, &buf, "sched job panicked")
	if line["pool"] != "pool" || line["job"] != "boom" || line[obs.RequestIDAttr] != "sched-req-2" {
		t.Fatalf("panic event = %v", line)
	}

	buf.Reset()
	cctx, cancel := context.WithCancel(ctx)
	cancel()
	many := make([]sched.Job[int], 8)
	for i := range many {
		i := i
		many[i] = sched.Job[int]{Key: string(rune('a' + i)), Run: func(ctx context.Context, seed int64) (int, error) { return i, nil }}
	}
	if _, err := sched.Map(cctx, sched.Options{Name: "pool"}, many); err == nil {
		t.Fatal("cancelled Map reported success")
	}
	line = decodeLogLine(t, &buf, "sched pool cancelled")
	if line["pool"] != "pool" || line[obs.RequestIDAttr] != "sched-req-2" {
		t.Fatalf("cancellation event = %v", line)
	}
	if line["dropped"].(float64) <= 0 {
		t.Fatalf("cancellation event reports no dropped jobs: %v", line)
	}
}

// decodeLogLine scans buf for the JSON line with the given msg.
func decodeLogLine(t *testing.T, buf *bytes.Buffer, msg string) map[string]any {
	t.Helper()
	scan := bufio.NewScanner(bytes.NewReader(buf.Bytes()))
	for scan.Scan() {
		var line map[string]any
		if err := json.Unmarshal(scan.Bytes(), &line); err != nil {
			t.Fatalf("log line is not JSON: %q", scan.Text())
		}
		if line["msg"] == msg {
			return line
		}
	}
	t.Fatalf("no %q event in log:\n%s", msg, buf.String())
	return nil
}
