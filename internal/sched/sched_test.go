package sched

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"whisper/internal/obs"
)

// TestDeriveSeedGolden pins the derivation to fixed values: the scheme is
// pure arithmetic, so these must hold on every Go version and platform. A
// failure here means previously published sweep outputs are no longer
// reproducible.
func TestDeriveSeedGolden(t *testing.T) {
	for _, c := range []struct {
		root int64
		key  string
		want int64
	}{
		{7, "table2/Intel Core i7-6700", 6131552234029204365},
		{7, "fig1b/batch/0", -1924748343277846459},
		{0, "", -780787492076525413},
		{-1, "x", 5626447134159687503},
		{12345, "kaslr/TET-KASLR + KPTI", 6777764658688830938},
	} {
		if got := DeriveSeed(c.root, c.key); got != c.want {
			t.Errorf("DeriveSeed(%d, %q) = %d, want %d", c.root, c.key, got, c.want)
		}
	}
}

// TestDeriveSeedSeparates checks that nearby roots and keys land on distinct
// seeds — the property that keeps sibling cells' RNG streams independent.
func TestDeriveSeedSeparates(t *testing.T) {
	seen := make(map[int64]string)
	for root := int64(0); root < 8; root++ {
		for i := 0; i < 64; i++ {
			key := fmt.Sprintf("cell/%d", i)
			s := DeriveSeed(root, key)
			id := fmt.Sprintf("root=%d %s", root, key)
			if prev, dup := seen[s]; dup {
				t.Fatalf("seed collision: %s and %s both derive %d", prev, id, s)
			}
			seen[s] = id
		}
	}
}

// TestMapOrderPreserved runs jobs whose completion order is scrambled (later
// jobs finish first) and checks results land in submission order.
func TestMapOrderPreserved(t *testing.T) {
	const n = 32
	jobs := make([]Job[int], n)
	for i := 0; i < n; i++ {
		i := i
		jobs[i] = Job[int]{
			Key: fmt.Sprintf("job/%d", i),
			Run: func(context.Context, int64) (int, error) {
				time.Sleep(time.Duration(n-i) * time.Millisecond / 4) // invert completion order
				return i * i, nil
			},
		}
	}
	got, err := Map(context.Background(), Options{Name: "order", Parallel: 8}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i*i {
			t.Fatalf("result[%d] = %d, want %d", i, v, i*i)
		}
	}
}

// TestMapSeedsIndependentOfSchedule runs the same job set at several worker
// counts and checks every job saw the identical derived seed.
func TestMapSeedsIndependentOfSchedule(t *testing.T) {
	const n = 16
	collect := func(parallel int) []int64 {
		seeds := make([]int64, n)
		jobs := make([]Job[int64], n)
		for i := 0; i < n; i++ {
			i := i
			jobs[i] = Job[int64]{
				Key: fmt.Sprintf("cell/%d", i),
				Run: func(_ context.Context, seed int64) (int64, error) { return seed, nil },
			}
		}
		got, err := Map(context.Background(), Options{Parallel: parallel, RootSeed: 42}, jobs)
		if err != nil {
			t.Fatal(err)
		}
		copy(seeds, got)
		return seeds
	}
	serial := collect(1)
	for _, p := range []int{2, 8} {
		par := collect(p)
		for i := range serial {
			if serial[i] != par[i] {
				t.Fatalf("parallel=%d: job %d seed %d, serial saw %d", p, i, par[i], serial[i])
			}
		}
	}
	for i := range serial {
		if want := DeriveSeed(42, fmt.Sprintf("cell/%d", i)); serial[i] != want {
			t.Fatalf("job %d seed %d, want DeriveSeed %d", i, serial[i], want)
		}
	}
}

// TestMapPanicRecovered checks a panicking job surfaces as an error naming
// the job, with the other jobs unaffected and no crash.
func TestMapPanicRecovered(t *testing.T) {
	jobs := []Job[int]{
		{Key: "fine", Run: func(context.Context, int64) (int, error) { return 1, nil }},
		{Key: "bomb", Run: func(context.Context, int64) (int, error) { panic("boom") }},
		{Key: "also-fine", Run: func(context.Context, int64) (int, error) { return 3, nil }},
	}
	_, err := Map(context.Background(), Options{Parallel: 3}, jobs)
	if err == nil {
		t.Fatal("panic not surfaced")
	}
	if !strings.Contains(err.Error(), `"bomb"`) || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("error does not identify the panicking job: %v", err)
	}
}

// TestMapFirstErrorByIndex checks the reported error is the lowest-index
// failure — the one a serial loop would hit — not whichever failed first in
// wall time.
func TestMapFirstErrorByIndex(t *testing.T) {
	errLow := errors.New("low")
	errHigh := errors.New("high")
	jobs := []Job[int]{
		{Key: "0", Run: func(context.Context, int64) (int, error) {
			time.Sleep(20 * time.Millisecond) // fails last in wall time
			return 0, errLow
		}},
		{Key: "1", Run: func(context.Context, int64) (int, error) { return 1, nil }},
		{Key: "2", Run: func(context.Context, int64) (int, error) { return 0, errHigh }},
	}
	for _, parallel := range []int{1, 3} {
		_, err := Map(context.Background(), Options{Parallel: parallel}, jobs)
		if !errors.Is(err, errLow) {
			t.Fatalf("parallel=%d: got %v, want the lowest-index failure %v", parallel, err, errLow)
		}
	}
}

// TestMapCancelDrains cancels mid-run and checks Map returns ctx.Err() only
// after the pool has fully drained: no worker goroutine survives the call.
func TestMapCancelDrains(t *testing.T) {
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var ran atomic.Int64
	const n = 64
	jobs := make([]Job[int], n)
	for i := 0; i < n; i++ {
		i := i
		jobs[i] = Job[int]{
			Key: fmt.Sprintf("job/%d", i),
			Run: func(ctx context.Context, _ int64) (int, error) {
				ran.Add(1)
				if i == 2 {
					cancel()
				}
				time.Sleep(time.Millisecond)
				return i, nil
			},
		}
	}
	_, err := Map(ctx, Options{Parallel: 4}, jobs)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if got := ran.Load(); got >= n {
		t.Fatalf("cancellation did not drop pending jobs: %d of %d ran", got, n)
	}
	// The pool must not leak goroutines; allow the runtime a moment to
	// retire the drained workers.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if g := runtime.NumGoroutine(); g <= before {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before Map, %d after drain", before, runtime.NumGoroutine())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestMapCompletedRunStaysValidAfterLateCancel checks a cancellation that
// lands after every job was picked up still yields the full result set.
func TestMapCompletedRunStaysValidAfterLateCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	jobs := []Job[int]{
		{Key: "a", Run: func(context.Context, int64) (int, error) { return 1, nil }},
		{Key: "b", Run: func(context.Context, int64) (int, error) {
			cancel() // fires once every job has been started (Parallel=2)
			return 2, nil
		}},
	}
	got, err := Map(ctx, Options{Parallel: 2}, jobs)
	if err != nil {
		t.Fatalf("fully-started run reported %v", err)
	}
	if got[0] != 1 || got[1] != 2 {
		t.Fatalf("results = %v", got)
	}
}

// TestMapEmptyAndNilContext covers the degenerate inputs.
func TestMapEmptyAndNilContext(t *testing.T) {
	got, err := Map(nil, Options{}, []Job[int]{ //nolint:staticcheck // nil ctx is part of the contract
		{Key: "only", Run: func(context.Context, int64) (int, error) { return 9, nil }},
	})
	if err != nil || len(got) != 1 || got[0] != 9 {
		t.Fatalf("got %v, %v", got, err)
	}
	empty, err := Map[int](context.Background(), Options{}, nil)
	if err != nil || len(empty) != 0 {
		t.Fatalf("empty job set: %v, %v", empty, err)
	}
}

// TestMapMetrics checks the scheduler's telemetry lands in the registry.
func TestMapMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	jobs := []Job[int]{
		{Key: "ok/0", Run: func(context.Context, int64) (int, error) { return 0, nil }},
		{Key: "ok/1", Run: func(context.Context, int64) (int, error) { return 1, nil }},
		{Key: "bad", Run: func(context.Context, int64) (int, error) { return 0, errors.New("nope") }},
	}
	if _, err := Map(context.Background(), Options{Name: "mtest", Parallel: 2, Obs: reg}, jobs); err == nil {
		t.Fatal("expected the failing job's error")
	}
	s := reg.Snapshot()
	for key, want := range map[string]uint64{
		"sched.jobs.queued{pool=mtest}": 3,
		"sched.jobs.done{pool=mtest}":   2,
		"sched.jobs.failed{pool=mtest}": 1,
	} {
		if got := s.Counters[key]; got != want {
			t.Errorf("%s = %d, want %d (snapshot %+v)", key, got, want, s.Counters)
		}
	}
	if s.Histograms["sched.job.run.us{pool=mtest}"].N != 3 {
		t.Errorf("run-latency histogram n = %d, want 3", s.Histograms["sched.job.run.us{pool=mtest}"].N)
	}
	if s.Histograms["sched.queue.latency.us{pool=mtest}"].N != 3 {
		t.Errorf("queue-latency histogram n = %d, want 3", s.Histograms["sched.queue.latency.us{pool=mtest}"].N)
	}
	// Every job got a detached span, and ending one span never force-closed
	// a concurrent sibling.
	var jobSpans int
	for _, sp := range reg.Spans() {
		if strings.HasPrefix(sp.Name, "mtest.") {
			jobSpans++
			if sp.Parent != -1 {
				t.Errorf("job span %s has parent %d, want detached", sp.Name, sp.Parent)
			}
		}
	}
	if jobSpans != 3 {
		t.Errorf("job spans = %d, want 3", jobSpans)
	}
}

// TestMapParallelDefaultsToGOMAXPROCS pins the default worker count.
func TestMapParallelDefaultsToGOMAXPROCS(t *testing.T) {
	n := runtime.GOMAXPROCS(0) + 4
	jobs := make([]Job[int], n)
	var peak, cur atomic.Int64
	for i := range jobs {
		jobs[i] = Job[int]{
			Key: fmt.Sprintf("j/%d", i),
			Run: func(context.Context, int64) (int, error) {
				c := cur.Add(1)
				for {
					p := peak.Load()
					if c <= p || peak.CompareAndSwap(p, c) {
						break
					}
				}
				time.Sleep(10 * time.Millisecond)
				cur.Add(-1)
				return 0, nil
			},
		}
	}
	if _, err := Map(context.Background(), Options{}, jobs); err != nil {
		t.Fatal(err)
	}
	if int(peak.Load()) > runtime.GOMAXPROCS(0) {
		t.Fatalf("concurrency peaked at %d, above the GOMAXPROCS default %d",
			peak.Load(), runtime.GOMAXPROCS(0))
	}
}

// TestMapCancelReturnsPromptly pins the serving-layer requirement: when jobs
// honour their context (as every sweep cell does), cancelling mid-Map makes
// Map return well before the jobs' natural runtime, with the partial-result
// cancellation error — not the partial results.
func TestMapCancelReturnsPromptly(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	const n = 16
	jobs := make([]Job[int], n)
	for i := 0; i < n; i++ {
		i := i
		jobs[i] = Job[int]{
			Key: fmt.Sprintf("cell/%d", i),
			Run: func(jctx context.Context, _ int64) (int, error) {
				select {
				case <-jctx.Done(): // a well-behaved long cell
					return 0, jctx.Err()
				case <-time.After(30 * time.Second):
					return i, nil
				}
			},
		}
	}
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	res, err := Map(ctx, Options{Parallel: 4}, jobs)
	if took := time.Since(start); took > 5*time.Second {
		t.Fatalf("Map took %v to notice the cancellation", took)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res != nil {
		t.Fatalf("cancelled Map leaked partial results: %v", res)
	}
}

// TestMapPanicRecordsJobKey checks the panic-recovery path attributes the
// failure to the job: the key appears in the returned error, the panicked
// counter, and the job's telemetry span.
func TestMapPanicRecordsJobKey(t *testing.T) {
	reg := obs.NewRegistry()
	jobs := []Job[int]{
		{Key: "steady", Run: func(context.Context, int64) (int, error) { return 1, nil }},
		{Key: "kaboom", Run: func(context.Context, int64) (int, error) { panic("blew a fuse") }},
	}
	_, err := Map(context.Background(), Options{Name: "p", Parallel: 2, Obs: reg}, jobs)
	if err == nil || !strings.Contains(err.Error(), `"kaboom"`) || !strings.Contains(err.Error(), "blew a fuse") {
		t.Fatalf("error does not attribute the panic to the job: %v", err)
	}
	lbl := obs.L("pool", "p")
	if got := reg.Counter("sched.jobs.panicked", lbl).Value(); got != 1 {
		t.Fatalf("panicked counter = %d, want 1", got)
	}
	if got := reg.Counter("sched.jobs.failed", lbl).Value(); got != 1 {
		t.Fatalf("failed counter = %d, want 1", got)
	}
	found := false
	for _, sp := range reg.Spans() {
		if sp.Name != "p.kaboom" {
			continue
		}
		found = true
		hasErr := false
		for _, a := range sp.Attrs {
			if a.Key == "error" && strings.Contains(a.Value, "blew a fuse") {
				hasErr = true
			}
		}
		if !hasErr {
			t.Fatalf("span %q lacks the panic error attr: %+v", sp.Name, sp.Attrs)
		}
	}
	if !found {
		t.Fatal("no telemetry span recorded for the panicking job")
	}
}
