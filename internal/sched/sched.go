// Package sched is the deterministic parallel experiment engine: a
// worker-pool scheduler that shards independent simulation cells — one
// (model, seed, trial) per job — across goroutines while guaranteeing that
// the collected output is byte-identical to a serial run at any worker
// count.
//
// Three properties carry that guarantee:
//
//   - Seed derivation is positional, not temporal: every job's RNG seed is
//     DeriveSeed(rootSeed, job.Key), a stable hash of the job's identity.
//     Worker identity, completion order and pool size never touch a seed.
//   - Result collection is order-preserving: results land in a slice indexed
//     by job position, so callers iterate submission order regardless of
//     completion order.
//   - Error selection is positional too: every job runs (a job failure does
//     not abort its siblings), and Map reports the failure with the lowest
//     job index — exactly the error a serial loop would have hit first.
//
// Context cancellation is the only early exit: pending jobs are dropped, the
// workers drain, and Map returns ctx.Err() after the pool has fully stopped
// (no goroutine outlives the call). A panicking job is recovered and
// surfaced as that job's error with its stack attached.
//
// The pool exports its own telemetry through an internal/obs registry when
// one is supplied: jobs queued/done/failed counters, a worker gauge, queue
// and run latency histograms, and total worker busy time.
package sched

import (
	"context"
	"fmt"
	"log/slog"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"whisper/internal/obs"
	"whisper/internal/obs/logging"
)

// Job is one independent simulation cell.
type Job[T any] struct {
	// Key is the job's stable identity within the pool ("Intel Core
	// i7-7700", "batch/3", ...). It derives the job's seed and labels its
	// telemetry span, so keys should be unique within one Map call.
	Key string
	// Run executes the cell. seed is DeriveSeed(opts.RootSeed, Key); jobs
	// whose cell carries a legacy explicit seed may ignore it.
	Run func(ctx context.Context, seed int64) (T, error)
}

// Options configures one Map call.
type Options struct {
	// Name labels the pool's metrics and spans (e.g. "experiments").
	Name string
	// Parallel is the worker count; values <= 0 mean GOMAXPROCS. The
	// output is identical at every setting — Parallel trades wall-clock
	// for CPU, nothing else.
	Parallel int
	// RootSeed is the sweep's root seed; each job receives
	// DeriveSeed(RootSeed, job.Key).
	RootSeed int64
	// Obs receives scheduler telemetry; nil disables it.
	Obs *obs.Registry
}

// workers resolves the effective worker count for n jobs.
func (o Options) workers(n int) int {
	w := o.Parallel
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// label returns the pool's metric label set.
func (o Options) label() obs.Label {
	name := o.Name
	if name == "" {
		name = "pool"
	}
	return obs.L("pool", name)
}

// Map runs every job on a worker pool and returns their results in job
// order. See the package comment for the determinism contract.
func Map[T any](ctx context.Context, opts Options, jobs []Job[T]) ([]T, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	results := make([]T, len(jobs))
	if len(jobs) == 0 {
		return results, ctx.Err()
	}
	nw := opts.workers(len(jobs))
	lbl := opts.label()
	opts.Obs.Gauge("sched.workers", lbl).Set(float64(nw))
	opts.Obs.Counter("sched.jobs.queued", lbl).Add(uint64(len(jobs)))

	errs := make([]error, len(jobs))
	var started atomic.Int64 // jobs actually picked up (cancellation drops the rest)
	var next atomic.Int64
	queuedAt := time.Now()
	var busy atomic.Int64 // summed worker run time, ns
	var wg sync.WaitGroup
	for w := 0; w < nw; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(jobs) {
					return
				}
				if ctx.Err() != nil {
					return // drain: stop picking up work, keep completed results
				}
				started.Add(1)
				opts.Obs.Histogram("sched.queue.latency.us", lbl).
					Observe(uint64(time.Since(queuedAt).Microseconds()))
				runOne(ctx, opts, lbl, jobs[i], &results[i], &errs[i], &busy)
			}
		}()
	}
	wg.Wait()
	opts.Obs.Counter("sched.worker.busy.us", lbl).Add(uint64(busy.Load() / 1e3))
	if ctx.Err() != nil && int(started.Load()) < len(jobs) {
		logging.From(ctx).LogAttrs(ctx, slog.LevelWarn, "sched pool cancelled",
			slog.String("pool", opts.Name),
			slog.Int("started", int(started.Load())),
			slog.Int("dropped", len(jobs)-int(started.Load())),
			slog.String("error", ctx.Err().Error()))
	}

	// A serial loop surfaces the first failure it meets; the parallel pool
	// reports the same one — the lowest-index error — so error behaviour is
	// schedule-independent too.
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	if int(started.Load()) < len(jobs) {
		// Cancelled before every job ran; the partial results are not the
		// deterministic full set, so report the cancellation.
		return nil, ctx.Err()
	}
	return results, nil
}

// runOne executes a single job with panic recovery and telemetry. The span
// inherits the request ID riding on ctx (if any), so a served request is
// traceable from its access-log line down to each scheduler job it sharded
// into; worker panics surface as error-level log events the same way.
func runOne[T any](ctx context.Context, opts Options, lbl obs.Label, job Job[T], out *T, errOut *error, busy *atomic.Int64) {
	sp := opts.Obs.StartDetachedWallSpan(spanName(opts.Name, job.Key))
	if id := obs.RequestIDFrom(ctx); id != "" {
		sp.Attr(obs.RequestIDAttr, id)
	}
	start := time.Now()
	defer func() {
		d := time.Since(start)
		busy.Add(int64(d))
		opts.Obs.Histogram("sched.job.run.us", lbl).Observe(uint64(d.Microseconds()))
		if r := recover(); r != nil {
			*errOut = fmt.Errorf("sched: job %q panicked: %v\n%s", job.Key, r, debug.Stack())
			opts.Obs.Counter("sched.jobs.panicked", lbl).Inc()
			logging.From(ctx).LogAttrs(ctx, slog.LevelError, "sched job panicked",
				slog.String("pool", opts.Name), slog.String("job", job.Key),
				slog.String("panic", fmt.Sprint(r)))
		}
		if *errOut != nil {
			sp.Attr("error", (*errOut).Error())
			opts.Obs.Counter("sched.jobs.failed", lbl).Inc()
		} else {
			opts.Obs.Counter("sched.jobs.done", lbl).Inc()
		}
		sp.End(0)
	}()
	v, err := job.Run(ctx, DeriveSeed(opts.RootSeed, job.Key))
	if err != nil {
		*errOut = err
		return
	}
	*out = v
}

// spanName joins the pool name and job key into the telemetry span name.
func spanName(pool, key string) string {
	switch {
	case pool == "":
		return key
	case key == "":
		return pool
	}
	return pool + "." + key
}
