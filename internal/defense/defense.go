// Package defense implements the detection-side of the paper's security
// discussion: an HPC-based cache-attack detector in the style the paper
// cites ([15], Li & Gaudiot) that watches for Flush+Reload probing patterns.
// Table 1 / §3.3 argue that TET attacks are stateless and therefore invisible
// to exactly this class of monitor; the Stealth experiment demonstrates it.
package defense

import "whisper/internal/pmu"

// CacheAnomalyDetector samples PMU windows and flags Flush+Reload-style
// probing: an abnormal rate of retired loads missing the whole cache
// hierarchy (the reload scans) combined with ongoing speculation activity.
type CacheAnomalyDetector struct {
	pm   *pmu.PMU
	prev pmu.Counts

	// MissRateThreshold is the retired-L3-miss per retired-instruction rate
	// above which a window is flagged (Flush+Reload reload scans run near
	// one miss per handful of instructions; benign code sits orders of
	// magnitude lower).
	MissRateThreshold float64

	windows int
	alarms  int
}

// NewCacheAnomalyDetector arms a detector over a machine's PMU.
func NewCacheAnomalyDetector(pm *pmu.PMU) *CacheAnomalyDetector {
	return &CacheAnomalyDetector{
		pm:                pm,
		prev:              pm.Snapshot(),
		MissRateThreshold: 0.02,
	}
}

// Sample closes the current observation window and reports whether it was
// flagged.
func (d *CacheAnomalyDetector) Sample() bool {
	now := d.pm.Snapshot()
	delta := now.Delta(d.prev)
	d.prev = now
	d.windows++

	insts := delta.Get(pmu.InstRetired)
	if insts == 0 {
		return false
	}
	missRate := float64(delta.Get(pmu.MemLoadRetiredL3Miss)) / float64(insts)
	if missRate > d.MissRateThreshold {
		d.alarms++
		return true
	}
	return false
}

// AlarmRate returns the fraction of flagged windows.
func (d *CacheAnomalyDetector) AlarmRate() float64 {
	if d.windows == 0 {
		return 0
	}
	return float64(d.alarms) / float64(d.windows)
}

// Windows returns the number of closed observation windows.
func (d *CacheAnomalyDetector) Windows() int { return d.windows }
