package defense

import (
	"testing"

	"whisper/internal/pmu"
)

func TestDetectorFlagsHighMissRate(t *testing.T) {
	pm := pmu.New()
	d := NewCacheAnomalyDetector(pm)
	// Benign window: many instructions, few misses.
	pm.Add(pmu.InstRetired, 10_000)
	pm.Add(pmu.MemLoadRetiredL3Miss, 5)
	if d.Sample() {
		t.Fatal("benign window flagged")
	}
	// Flush+Reload window: one miss per few instructions.
	pm.Add(pmu.InstRetired, 2_000)
	pm.Add(pmu.MemLoadRetiredL3Miss, 250)
	if !d.Sample() {
		t.Fatal("probing window not flagged")
	}
	if d.Windows() != 2 {
		t.Fatalf("windows = %d", d.Windows())
	}
	if r := d.AlarmRate(); r != 0.5 {
		t.Fatalf("alarm rate = %v", r)
	}
}

func TestDetectorEmptyWindow(t *testing.T) {
	pm := pmu.New()
	d := NewCacheAnomalyDetector(pm)
	if d.Sample() {
		t.Fatal("empty window flagged")
	}
	if d.AlarmRate() != 0 {
		t.Fatal("alarm rate non-zero")
	}
}

func TestDetectorWindowsAreDeltas(t *testing.T) {
	pm := pmu.New()
	// Pre-existing counts must not leak into the first window.
	pm.Add(pmu.InstRetired, 100)
	pm.Add(pmu.MemLoadRetiredL3Miss, 90)
	d := NewCacheAnomalyDetector(pm)
	pm.Add(pmu.InstRetired, 10_000)
	if d.Sample() {
		t.Fatal("pre-arm counts contaminated the window")
	}
}

func TestZeroWindowAlarmRate(t *testing.T) {
	d := NewCacheAnomalyDetector(pmu.New())
	if d.AlarmRate() != 0 {
		t.Fatal("no-window alarm rate non-zero")
	}
}
