// Package cpu defines the CPU models evaluated in the paper's Table 2 and
// assembles them into runnable machines: one pipeline plus its private
// caches, TLBs, predictors, PMU, and physical memory.
package cpu

import (
	"sync"
	"sync/atomic"

	"fmt"
	"math/rand"

	"whisper/internal/bpu"
	"whisper/internal/mem"
	"whisper/internal/obs"
	"whisper/internal/paging"
	"whisper/internal/pipeline"
	"whisper/internal/pmu"
	"whisper/internal/tlb"
)

// Model is one CPU configuration from Table 2.
type Model struct {
	Name      string
	Microarch string
	Microcode string
	Kernel    string // Linux kernel version used in the paper's testbed
	Vendor    pmu.Vendor
	ClockHz   float64
	HasTSX    bool

	Pipe pipeline.Config
	Hier mem.HierarchyConfig
	DTLB tlb.Config
	ITLB tlb.Config
	BPU  bpu.Config
}

func base() Model {
	return Model{
		Vendor: pmu.Intel,
		Pipe:   pipeline.DefaultConfig(),
		Hier:   mem.DefaultHierarchyConfig(),
		DTLB:   tlb.DefaultDTLBConfig(),
		ITLB:   tlb.DefaultITLBConfig(),
		BPU:    bpu.DefaultConfig(),
	}
}

// I7_6700 returns the Skylake Core i7-6700 model: vulnerable to everything.
func I7_6700() Model {
	m := base()
	m.Name = "Intel Core i7-6700"
	m.Microarch = "Skylake"
	m.Microcode = "0xf0"
	m.Kernel = "4.15.0-213"
	m.ClockHz = 3.4e9
	m.HasTSX = true
	return m
}

// I7_7700 returns the Kaby Lake Core i7-7700 model: vulnerable to
// everything; the paper's main throughput testbed.
func I7_7700() Model {
	m := base()
	m.Name = "Intel Core i7-7700"
	m.Microarch = "Kaby Lake"
	m.Microcode = "0x5e"
	m.Kernel = "5.4.0-150"
	m.ClockHz = 3.6e9
	m.HasTSX = true
	return m
}

// I9_10980XE returns the Comet Lake Core i9-10980XE model: Meltdown- and
// MDS-resistant microcode, but the TLB still fills on faulting access, so
// TET-KASLR works (the paper's KASLR testbed).
func I9_10980XE() Model {
	m := base()
	m.Name = "Intel Core i9-10980XE"
	m.Microarch = "Comet Lake"
	m.Microcode = "0x5003303"
	m.Kernel = "5.15.0-72"
	m.ClockHz = 3.0e9
	m.HasTSX = true
	m.Pipe.MeltdownVulnerable = false
	m.Pipe.MDSVulnerable = false
	m.Pipe.ROBSize = 224
	return m
}

// I9_13900K returns the Raptor Lake Core i9-13900K model: Meltdown/MDS
// fixed, wider core, no TSX (removed from client parts); TET-RSB's testbed.
func I9_13900K() Model {
	m := base()
	m.Name = "Intel Core i9-13900K"
	m.Microarch = "Raptor Lake"
	m.Microcode = "0x119"
	m.Kernel = "5.15.0-86"
	m.ClockHz = 5.8e9
	m.HasTSX = false
	m.Pipe.MeltdownVulnerable = false
	m.Pipe.MDSVulnerable = false
	m.Pipe.FetchWidth = 8
	m.Pipe.IssueWidth = 6
	m.Pipe.RetireWidth = 8
	m.Pipe.ROBSize = 512
	m.Pipe.RSSize = 200
	m.Pipe.ALUPorts = 5
	m.Pipe.LoadPorts = 3
	return m
}

// Ryzen5600G returns the Zen 3 Ryzen 5 5600G model: no Meltdown/MDS, and —
// decisive for TET-KASLR — the TLB is only filled when the permission check
// passes.
func Ryzen5600G() Model {
	m := base()
	m.Name = "AMD Ryzen 5 5600G"
	m.Microarch = "Zen 3"
	m.Microcode = "0xA50000D"
	m.Kernel = "5.15.0-76"
	m.Vendor = pmu.AMD
	m.ClockHz = 3.9e9
	m.HasTSX = false
	m.Pipe.MeltdownVulnerable = false
	m.Pipe.MDSVulnerable = false
	m.Pipe.TLBFillOnFault = false
	m.Pipe.ROBSize = 256
	m.Pipe.IssueWidth = 6
	return m
}

// Ryzen5900 returns the second Zen 3 part of Table 2's AMD row ("Ryzen 5
// 5600G & 5900"): identical microarchitectural structure, higher clock and
// a bigger LLC.
func Ryzen5900() Model {
	m := Ryzen5600G()
	m.Name = "AMD Ryzen 9 5900"
	m.ClockHz = 4.7e9
	m.Hier.L3Size = 64 << 20
	return m
}

// AllModels returns every Table 2 model, in the table's order. The AMD row
// lists two parts; Ryzen5600G represents it (Ryzen5900 behaves identically
// modulo clock/LLC, which TestZen3PartsAgree verifies).
func AllModels() []Model {
	return []Model{I7_6700(), I7_7700(), I9_10980XE(), I9_13900K(), Ryzen5600G()}
}

// Machine is a runnable instance of a Model: the pipeline plus all shared
// microarchitectural structures and physical memory.
type Machine struct {
	Model Model
	Pipe  *pipeline.Pipeline
	Phys  *mem.Physical
	Hier  *mem.Hierarchy
	LFB   *mem.LFB
	DTLB  *tlb.TLB
	ITLB  *tlb.TLB
	BPU   *bpu.BPU
	PMU   *pmu.PMU
	Alloc *paging.FrameAllocator
	Rand  *rand.Rand

	// randSrc is the counting source behind Rand; it makes the RNG cursor
	// capturable and replayable for snapshot forks (see state.go).
	randSrc *countingSource

	// asSlots are preallocated address-space structs rebound over the
	// machine's own memory during snapshot restore, so a Fork never
	// allocates page-table walkers. See BindAddressSpace.
	asSlots [2]paging.AddressSpace

	// Obs is the optional observability registry. It is nil by default, and
	// every instrumented call site (probes, sweeps, kernel boot) no-ops on
	// the nil registry, keeping the measurement path allocation-free; enable
	// it with EnableObs.
	Obs *obs.Registry
}

// NewMachine builds a machine for the model with a deterministic seed. The
// returned machine runs with an initial bare address space; kernel.Boot
// installs the OS view.
func NewMachine(m Model, seed int64) (*Machine, error) {
	phys := mem.NewPhysical()
	alloc := paging.NewFrameAllocator(0x100000)
	as := paging.NewAddressSpace(phys, alloc)
	src := newCountingSource(seed)
	mc := &Machine{
		Model: m,
		Phys:  phys,
		Hier:  mem.NewHierarchy(phys, m.Hier),
		LFB:   mem.NewLFB(10),
		DTLB:  tlb.New("DTLB", m.DTLB),
		ITLB:  tlb.New("ITLB", m.ITLB),
		BPU:   bpu.New(m.BPU),
		PMU:   pmu.New(),
		Alloc: alloc,
		Rand:  rand.New(src),
	}
	mc.randSrc = src
	p, err := pipeline.New(m.Pipe, pipeline.Resources{
		Hier: mc.Hier,
		LFB:  mc.LFB,
		AS:   as,
		DTLB: mc.DTLB,
		ITLB: mc.ITLB,
		BPU:  mc.BPU,
		PMU:  mc.PMU,
		Rand: mc.Rand,
	})
	if err != nil {
		return nil, fmt.Errorf("cpu: %w", err)
	}
	mc.Pipe = p
	return mc, nil
}

// NewFrozenMachine builds the minimal machine snapshot capture freezes state
// into: structurally identical to NewMachine(m, 0) except the cache
// hierarchy, which is a one-set-per-level placeholder. Frozen replicas are
// never executed and their hierarchy is never read — snapshots record the
// real hierarchy as a compact valid-line image — so allocating and zeroing
// megabytes of LLC line metadata per capture would be pure waste. The
// returned machine reports the real Model; only its hierarchy storage is
// reduced, which is why it must never enter a Pool.
func NewFrozenMachine(m Model) (*Machine, error) {
	fm := m
	fm.Hier.L1DSize = fm.Hier.L1DWays * mem.LineSize
	fm.Hier.L1ISize = fm.Hier.L1IWays * mem.LineSize
	fm.Hier.L2Size = fm.Hier.L2Ways * mem.LineSize
	fm.Hier.L3Size = fm.Hier.L3Ways * mem.LineSize
	mc, err := NewMachine(fm, 0)
	if err != nil {
		return nil, err
	}
	mc.Model = m
	return mc, nil
}

// MustMachine is NewMachine that panics on error (model tables are static).
func MustMachine(m Model, seed int64) *Machine {
	mc, err := NewMachine(m, seed)
	if err != nil {
		panic(err)
	}
	return mc
}

// Reset restores the machine to the state NewMachine(mc.Model, seed) leaves
// it in, reusing every long-lived allocation: physical pages are dropped, the
// frame allocator rewinds (so the fresh address space's root lands at the
// same frame NewMachine's does), caches, TLBs, predictor, LFB, and PMU return
// to power-on state, and the RNG is re-seeded. Simulation behaviour after
// Reset is bit-identical to a freshly built machine.
func (mc *Machine) Reset(seed int64) {
	mc.Phys.Reset()
	mc.Alloc.Reset()
	as := paging.NewAddressSpace(mc.Phys, mc.Alloc)
	mc.Hier.Reset()
	mc.LFB.Reset()
	mc.DTLB.Reset()
	mc.ITLB.Reset()
	mc.BPU.Reset()
	mc.PMU.Reset()
	mc.Rand.Seed(seed)
	mc.Pipe.Reset(as)
	mc.Obs = nil
}

// Pool recycles Machines by model so hot loops (replica farms, sweep cells)
// amortise machine construction: a recycled machine is Reset to the requested
// seed, which is observationally identical to NewMachine but reuses the
// caches', TLBs', and pipeline's backing storage. Pool is safe for concurrent
// use.
type Pool struct {
	mu   sync.Mutex
	free map[Model][]*Machine

	gets   atomic.Uint64
	reuses atomic.Uint64
}

// PoolStats is one pool's reuse traffic: Gets splits into Reuses (a parked
// machine Reset to the requested seed) and Builds (a fresh NewMachine);
// Idle counts machines currently parked across all models.
type PoolStats struct {
	Gets   uint64
	Reuses uint64
	Builds uint64
	Idle   int
}

// Stats returns the pool's lifetime counters.
func (p *Pool) Stats() PoolStats {
	p.mu.Lock()
	idle := 0
	for _, list := range p.free {
		idle += len(list)
	}
	p.mu.Unlock()
	gets, reuses := p.gets.Load(), p.reuses.Load()
	return PoolStats{Gets: gets, Reuses: reuses, Builds: gets - reuses, Idle: idle}
}

// NewPool returns an empty machine pool.
func NewPool() *Pool {
	return &Pool{free: make(map[Model][]*Machine)}
}

// Get returns a machine equivalent to NewMachine(model, seed): recycled when
// one is available for the model, freshly built otherwise.
func (p *Pool) Get(model Model, seed int64) (*Machine, error) {
	p.gets.Add(1)
	p.mu.Lock()
	list := p.free[model]
	var mc *Machine
	if n := len(list) - 1; n >= 0 {
		mc = list[n]
		p.free[model] = list[:n]
	}
	p.mu.Unlock()
	if mc == nil {
		return NewMachine(model, seed)
	}
	p.reuses.Add(1)
	mc.Reset(seed)
	return mc, nil
}

// Put returns a machine to the pool for later reuse. The caller must not use
// the machine afterwards.
func (p *Pool) Put(mc *Machine) {
	if mc == nil {
		return
	}
	p.mu.Lock()
	p.free[mc.Model] = append(p.free[mc.Model], mc)
	p.mu.Unlock()
}

// EnableObs attaches a fresh observability registry to the machine and
// installs its per-uop record collector as the pipeline tracer. Subsequent
// probes, sweeps, and kernel operations on this machine emit spans, metrics,
// and PMU samples into the returned registry.
func (mc *Machine) EnableObs() *obs.Registry {
	r := obs.NewRegistry()
	r.AttachPipeline(mc.Pipe)
	mc.Obs = r
	return r
}

// Seconds converts a cycle count to seconds at the model's clock.
func (mc *Machine) Seconds(cycles uint64) float64 {
	return float64(cycles) / mc.Model.ClockHz
}

// Bps converts bytes transferred in a cycle span to bytes/second.
func (mc *Machine) Bps(bytes int, cycles uint64) float64 {
	if cycles == 0 {
		return 0
	}
	return float64(bytes) / mc.Seconds(cycles)
}
