package cpu

import (
	"testing"

	"whisper/internal/isa"
	"whisper/internal/paging"
	"whisper/internal/pmu"
)

func TestAllModelsWellFormed(t *testing.T) {
	models := AllModels()
	if len(models) != 5 {
		t.Fatalf("models = %d, want the 5 Table 2 parts", len(models))
	}
	seen := map[string]bool{}
	for _, m := range models {
		if m.Name == "" || m.Microarch == "" || m.Microcode == "" || m.Kernel == "" {
			t.Errorf("model %q missing metadata", m.Name)
		}
		if m.ClockHz < 1e9 || m.ClockHz > 10e9 {
			t.Errorf("model %q clock %v implausible", m.Name, m.ClockHz)
		}
		if seen[m.Name] {
			t.Errorf("duplicate model %q", m.Name)
		}
		seen[m.Name] = true
	}
}

func TestVulnerabilityMatrix(t *testing.T) {
	cases := []struct {
		m        Model
		meltdown bool
		mds      bool
		tlbFill  bool
	}{
		{I7_6700(), true, true, true},
		{I7_7700(), true, true, true},
		{I9_10980XE(), false, false, true},
		{I9_13900K(), false, false, true},
		{Ryzen5600G(), false, false, false},
	}
	for _, c := range cases {
		if c.m.Pipe.MeltdownVulnerable != c.meltdown {
			t.Errorf("%s meltdown = %v", c.m.Name, c.m.Pipe.MeltdownVulnerable)
		}
		if c.m.Pipe.MDSVulnerable != c.mds {
			t.Errorf("%s mds = %v", c.m.Name, c.m.Pipe.MDSVulnerable)
		}
		if c.m.Pipe.TLBFillOnFault != c.tlbFill {
			t.Errorf("%s tlbFill = %v", c.m.Name, c.m.Pipe.TLBFillOnFault)
		}
	}
	if Ryzen5600G().Vendor != pmu.AMD {
		t.Error("Ryzen vendor not AMD")
	}
}

func TestMachineRunsProgram(t *testing.T) {
	for _, model := range AllModels() {
		mc := MustMachine(model, 42)
		// Map a code page in the machine's initial address space.
		if _, err := mc.Pipe.AddressSpace().MapRange(0x400000, 1, paging.FlagU); err != nil {
			t.Fatal(err)
		}
		p := isa.NewBuilder(0x400000).
			MovImm(isa.RAX, 21).
			AddImm(isa.RAX, isa.RAX, 21).
			Halt().
			MustAssemble()
		if _, err := mc.Pipe.Exec(p, 100000); err != nil {
			t.Fatalf("%s: %v", model.Name, err)
		}
		if got := mc.Pipe.Reg(isa.RAX); got != 42 {
			t.Fatalf("%s: rax = %d", model.Name, got)
		}
	}
}

func TestMachineDeterminism(t *testing.T) {
	run := func() uint64 {
		mc := MustMachine(I7_7700(), 7)
		if _, err := mc.Pipe.AddressSpace().MapRange(0x400000, 1, paging.FlagU); err != nil {
			t.Fatal(err)
		}
		p := isa.NewBuilder(0x400000).
			Rdtsc(isa.RAX).
			NopSled(30).
			Rdtsc(isa.RBX).
			Halt().
			MustAssemble()
		if _, err := mc.Pipe.Exec(p, 100000); err != nil {
			t.Fatal(err)
		}
		return mc.Pipe.Reg(isa.RBX) - mc.Pipe.Reg(isa.RAX)
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("same seed, different timing: %d vs %d", a, b)
	}
}

func TestSecondsAndBps(t *testing.T) {
	mc := MustMachine(I7_7700(), 1) // 3.6 GHz
	if s := mc.Seconds(3_600_000_000); s != 1.0 {
		t.Errorf("Seconds = %v", s)
	}
	if bps := mc.Bps(500, 3_600_000_000); bps != 500 {
		t.Errorf("Bps = %v", bps)
	}
	if bps := mc.Bps(500, 0); bps != 0 {
		t.Errorf("zero-cycle Bps = %v", bps)
	}
}

func TestZen3PartsAgree(t *testing.T) {
	a, b := Ryzen5600G(), Ryzen5900()
	if a.Pipe != b.Pipe {
		t.Fatal("Zen 3 parts differ in pipeline config")
	}
	if b.ClockHz <= a.ClockHz {
		t.Fatal("5900 should clock higher")
	}
	if b.Vendor != a.Vendor {
		t.Fatal("vendor mismatch")
	}
}
