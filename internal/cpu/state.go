package cpu

import (
	"fmt"
	"math/rand"

	"whisper/internal/mem"
	"whisper/internal/paging"
)

// countingSource wraps the standard PRNG source and counts draws, making the
// RNG's position a first-class piece of machine state: a snapshot records
// (seed, draws) and a fork replays exactly that many steps. Both Int63 and
// Uint64 advance the underlying generator by exactly one step, so the draw
// count alone pins the stream position regardless of which Rand method
// consumed it.
type countingSource struct {
	src   rand.Source64
	seed  int64
	draws uint64
}

func newCountingSource(seed int64) *countingSource {
	return &countingSource{src: rand.NewSource(seed).(rand.Source64), seed: seed}
}

func (c *countingSource) Int63() int64 {
	c.draws++
	return c.src.Int63()
}

func (c *countingSource) Uint64() uint64 {
	c.draws++
	return c.src.Uint64()
}

func (c *countingSource) Seed(seed int64) {
	c.src.Seed(seed)
	c.seed = seed
	c.draws = 0
}

// RandCursor returns the RNG's position: the seed it was last seeded with and
// the number of draws consumed since.
func (mc *Machine) RandCursor() (seed int64, draws uint64) {
	return mc.randSrc.seed, mc.randSrc.draws
}

// SeekRand re-seeds the RNG and replays draws steps, leaving the generator in
// exactly the state RandCursor() = (seed, draws) describes.
func (mc *Machine) SeekRand(seed int64, draws uint64) {
	mc.Rand.Seed(seed) // resets the counting source and Rand's byte cache
	for i := uint64(0); i < draws; i++ {
		mc.randSrc.Uint64()
	}
}

// BindAddressSpace rebinds one of the machine's preallocated address-space
// slots (slot 0 or 1) over the machine's own memory at the given page-table
// root and returns it. Snapshot forks use it to reconstruct the kernel and
// user views without allocating.
func (mc *Machine) BindAddressSpace(slot int, root uint64) *paging.AddressSpace {
	as := &mc.asSlots[slot]
	as.Rebind(mc.Phys, mc.Alloc, root)
	return as
}

// CopyStateFrom makes mc's simulation-visible state identical to src's; the
// models must match and src must be quiescent (between Execs). Every
// structure is copied into mc's existing backing storage, so once mc's
// physical-page freelist covers src's working set the copy performs no
// allocations. The pipeline's address space is NOT rebound — the caller binds
// one of mc's slots (BindAddressSpace) to the wanted root afterwards, since
// the walker must read mc's page copies, not src's.
func (mc *Machine) CopyStateFrom(src *Machine) error {
	return mc.copyState(src, false, nil, false)
}

// CaptureStateFrom is CopyStateFrom minus the cache hierarchy — the variant
// behind snapshot capture. The hierarchy is recorded separately as a compact
// valid-line image (mem.Hierarchy.Image), so the frozen replica's own
// hierarchy — a placeholder on NewFrozenMachine targets — is never written
// or read.
func (mc *Machine) CaptureStateFrom(src *Machine) error {
	return mc.copyState(src, false, nil, true)
}

// ForkStateFrom is CopyStateFrom tuned for restoring from an immutable
// source many times: the physical image is aliased copy-on-write instead of
// copied (mc reads src's frames until it writes them), and the cache
// hierarchy is replayed from img, a precomputed valid-line image of src.Hier,
// in O(valid lines) instead of rescanning every line's metadata. src must
// stay immutable while mc is alive — snapshot forks guarantee this by only
// ever aliasing the frozen replica, which is never executed. A nil img falls
// back to the full hierarchy copy.
func (mc *Machine) ForkStateFrom(src *Machine, img *mem.HierImage) error {
	return mc.copyState(src, true, img, false)
}

func (mc *Machine) copyState(src *Machine, alias bool, img *mem.HierImage, skipHier bool) error {
	if mc.Model != src.Model {
		return fmt.Errorf("cpu: CopyStateFrom across models: %s <- %s",
			mc.Model.Name, src.Model.Name)
	}
	if alias {
		mc.Phys.AliasBase(src.Phys)
	} else {
		mc.Phys.CopyFrom(src.Phys)
	}
	mc.Alloc.CopyFrom(src.Alloc)
	switch {
	case skipHier:
		// Capture target: the hierarchy travels as a separate image.
	case img != nil:
		mc.Hier.LoadImage(img)
	default:
		mc.Hier.CopyFrom(src.Hier)
	}
	mc.LFB.CopyFrom(src.LFB)
	mc.DTLB.CopyFrom(src.DTLB)
	mc.ITLB.CopyFrom(src.ITLB)
	mc.BPU.CopyFrom(src.BPU)
	mc.PMU.CopyFrom(src.PMU)
	seed, draws := src.RandCursor()
	mc.SeekRand(seed, draws)
	mc.Pipe.CopyStateFrom(src.Pipe)
	mc.Obs = nil
	return nil
}

// GetRaw returns a parked machine for the model without resetting it, or nil
// when none is parked. Snapshot forks use it: CopyStateFrom overwrites every
// piece of state a Reset would clear, so resetting first would be pure waste.
// A non-nil return counts as a reuse in Stats.
func (p *Pool) GetRaw(model Model) *Machine {
	p.mu.Lock()
	list := p.free[model]
	var mc *Machine
	if n := len(list) - 1; n >= 0 {
		mc = list[n]
		p.free[model] = list[:n]
	}
	p.mu.Unlock()
	if mc != nil {
		p.gets.Add(1)
		p.reuses.Add(1)
	}
	return mc
}
