package pmu

import (
	"strings"
	"testing"
)

func TestCounterBasics(t *testing.T) {
	p := New()
	p.Inc(UopsIssuedAny)
	p.Add(UopsIssuedAny, 4)
	if got := p.Read(UopsIssuedAny); got != 5 {
		t.Fatalf("Read = %d", got)
	}
	p.Reset()
	if got := p.Read(UopsIssuedAny); got != 0 {
		t.Fatalf("post-Reset Read = %d", got)
	}
}

func TestSnapshotDelta(t *testing.T) {
	p := New()
	p.Add(CyclesTotal, 100)
	before := p.Snapshot()
	p.Add(CyclesTotal, 42)
	p.Inc(MachineClearsCount)
	d := p.Snapshot().Delta(before)
	if d.Get(CyclesTotal) != 42 || d.Get(MachineClearsCount) != 1 {
		t.Fatalf("delta = %d, %d", d.Get(CyclesTotal), d.Get(MachineClearsCount))
	}
	if d.Get(UopsIssuedAny) != 0 {
		t.Fatal("untouched counter non-zero in delta")
	}
}

func TestEventDescsComplete(t *testing.T) {
	for _, e := range AllEvents() {
		d := e.Desc()
		if d.Name == "" {
			t.Errorf("event %d has no name", e)
		}
		if d.Domain == "" {
			t.Errorf("event %s has no domain", d.Name)
		}
		if d.Help == "" {
			t.Errorf("event %s has no help text", d.Name)
		}
	}
}

func TestEventNamesUniqueAndResolvable(t *testing.T) {
	seen := make(map[string]Event)
	for _, e := range AllEvents() {
		n := e.String()
		if prev, dup := seen[n]; dup {
			t.Fatalf("duplicate event name %q (%d and %d)", n, prev, e)
		}
		seen[n] = e
		got, ok := ByName(n)
		if !ok || got != e {
			t.Fatalf("ByName(%q) = (%v, %v)", n, got, ok)
		}
	}
	if _, ok := ByName("NO_SUCH_EVENT"); ok {
		t.Fatal("ByName resolved a bogus name")
	}
}

func TestEventsForVendor(t *testing.T) {
	intel := EventsForVendor(Intel)
	amd := EventsForVendor(AMD)
	if len(intel) == 0 || len(amd) == 0 {
		t.Fatal("empty vendor event list")
	}
	for _, e := range intel {
		if v := e.Desc().Vendor; v != Intel && v != Common {
			t.Errorf("intel list contains %s (vendor %d)", e, v)
		}
	}
	// Table 3's key events must be present for their vendors.
	mustHave := func(list []Event, name string) {
		e, ok := ByName(name)
		if !ok {
			t.Fatalf("event %q not defined", name)
		}
		for _, x := range list {
			if x == e {
				return
			}
		}
		t.Errorf("event %q missing from vendor list", name)
	}
	mustHave(intel, "BR_MISP_EXEC.INDIRECT")
	mustHave(intel, "DTLB_LOAD_MISSES.WALK_ACTIVE")
	mustHave(intel, "INT_MISC.CLEAR_RESTEER_CYCLES")
	mustHave(amd, "de_dis_dispatch_token_stalls2.retire_token_stall")
	mustHave(amd, "ic_fw32")
}

func TestCollect(t *testing.T) {
	p := New()
	i := 0
	runs := Collect(p, 3, func() {
		i++
		p.Add(UopsIssuedAny, uint64(10*i))
	})
	if len(runs) != 3 {
		t.Fatalf("runs = %d", len(runs))
	}
	for k, want := range []uint64{10, 20, 30} {
		if got := runs[k].Get(UopsIssuedAny); got != want {
			t.Errorf("run %d = %d, want %d", k, got, want)
		}
	}
}

func TestDifferentialFiltersAndSorts(t *testing.T) {
	mk := func(issued, stalls uint64) Run {
		var r Run
		r[UopsIssuedAny] = issued
		r[ResourceStallsAny] = stalls
		r[CyclesTotal] = 100 // identical in both: must be filtered
		return r
	}
	// Scenario A: issued ~300, stalls ~15. Scenario B: issued ~300, stalls ~21.
	a := []Run{mk(300, 15), mk(301, 15), mk(299, 16), mk(300, 15)}
	b := []Run{mk(300, 21), mk(301, 21), mk(299, 22), mk(300, 21)}
	diffs := Differential(a, b, AllEvents(), 4.0)
	if len(diffs) != 1 {
		t.Fatalf("diffs = %+v, want exactly the stalls event", diffs)
	}
	d := diffs[0]
	if d.Event != ResourceStallsAny {
		t.Fatalf("top event = %s", d.Event)
	}
	if d.Delta() < 5 || d.Delta() > 7 {
		t.Fatalf("delta = %v", d.Delta())
	}
	if d.T <= 0 {
		t.Fatalf("t = %v, want positive (B > A)", d.T)
	}
}

func TestDifferentialZeroVarianceSignificant(t *testing.T) {
	mk := func(v uint64) Run {
		var r Run
		r[BrMispExecIndirect] = v
		return r
	}
	a := []Run{mk(0), mk(0), mk(0)}
	b := []Run{mk(1), mk(1), mk(1)}
	diffs := Differential(a, b, []Event{BrMispExecIndirect}, 10)
	if len(diffs) != 1 {
		t.Fatalf("zero-variance difference filtered out: %+v", diffs)
	}
}

func TestReport(t *testing.T) {
	diffs := []Diff{{Event: ResourceStallsAny, MeanA: 15, MeanB: 21, T: 30}}
	out := Report("i7-7700 TET-MD", "not-trigger", "trigger", diffs)
	if !strings.Contains(out, "RESOURCE_STALLS.ANY") ||
		!strings.Contains(out, "not-trigger") ||
		!strings.Contains(out, "+6.0") {
		t.Fatalf("Report output:\n%s", out)
	}
}
