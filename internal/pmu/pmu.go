package pmu

// Counts is one snapshot of every counter.
type Counts [NumEvents]uint64

// Delta returns c - prev, element-wise.
func (c Counts) Delta(prev Counts) Counts {
	var out Counts
	for i := range c {
		out[i] = c[i] - prev[i]
	}
	return out
}

// Get returns the count for e.
func (c Counts) Get(e Event) uint64 { return c[e] }

// PMU is a bank of always-on event counters. Unlike real hardware there is
// no programmable-counter multiplexing: the simulator can afford to count
// everything at once, so the online collection stage reads exact values.
type PMU struct {
	counts Counts
}

// New returns a zeroed PMU.
func New() *PMU { return &PMU{} }

// Inc adds one to e.
func (p *PMU) Inc(e Event) { p.counts[e]++ }

// Add adds n to e.
func (p *PMU) Add(e Event, n uint64) { p.counts[e] += n }

// Read returns the current value of e.
func (p *PMU) Read(e Event) uint64 { return p.counts[e] }

// Snapshot copies all counters.
func (p *PMU) Snapshot() Counts { return p.counts }

// Reset zeroes all counters.
func (p *PMU) Reset() { p.counts = Counts{} }

// CopyFrom makes p's counters identical to src (snapshot restore).
func (p *PMU) CopyFrom(src *PMU) { p.counts = src.counts }
