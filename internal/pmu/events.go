// Package pmu implements the performance monitoring unit and the automated
// analysis toolset of the paper's Figure 2. The pipeline increments event
// counters as the corresponding microarchitectural mechanisms fire; the
// toolset runs paired scenarios, collects per-run counter snapshots, and
// applies the differential filter that surfaces the Table 3 events.
package pmu

// Vendor distinguishes Intel- and AMD-named events.
type Vendor int

// Vendors.
const (
	Intel Vendor = iota
	AMD
	Common // counted on every model
)

// Event identifies one hardware event counter.
type Event int

// Events. Names follow the Intel SDM / AMD PPR spellings used in Table 3.
const (
	// Branch / speculation events.
	BrMispExecIndirect Event = iota
	BrMispExecAllBranches
	BrMispRetiredAllBranches
	MachineClearsCount
	IntMiscRecoveryCycles
	IntMiscRecoveryCyclesAny
	IntMiscClearResteerCycles

	// Issue / backend events.
	UopsIssuedAny
	UopsIssuedStallCycles
	UopsExecutedStallCycles
	UopsExecutedCoreCyclesNone
	UopsRetiredAll
	ResourceStallsAny
	RsEventsEmptyCycles
	CycleActivityStallsTotal
	CycleActivityCyclesMemAny

	// Frontend events.
	IdqDsbUops
	IdqMsDsbCycles
	IdqDsbCyclesOK
	IdqDsbCyclesAny
	IdqMsMiteUops
	IdqAllMiteCyclesAnyUops
	IdqMsUops
	Icache16BIfdataStall

	// Memory subsystem events.
	DtlbLoadMissesMissCausesAWalk
	DtlbLoadMissesWalkActive
	ItlbMissesWalkActive
	MemLoadRetiredL1Miss
	MemLoadRetiredL3Miss
	PageWalkerLoads

	// AMD Zen 3 events.
	BpL1BtbCorrect
	BpL1TlbFetchHit
	DeDisUopQueueEmptyDi0
	DeDisDispatchTokenStalls2Retire
	IcFw32

	// Simulator-global events.
	CyclesTotal
	InstRetired

	NumEvents int = iota
)

// Desc is event metadata for the toolset's preparation stage.
type Desc struct {
	Name   string
	Vendor Vendor
	Domain string // frontend | backend | memory | speculation | global
	Help   string
}

var descs = [NumEvents]Desc{
	BrMispExecIndirect:              {"BR_MISP_EXEC.INDIRECT", Intel, "speculation", "mispredicted indirect branches executed (incl. transient)"},
	BrMispExecAllBranches:           {"BR_MISP_EXEC.ALL_BRANCHES", Intel, "speculation", "all mispredicted branches executed (incl. transient)"},
	BrMispRetiredAllBranches:        {"BR_MISP_RETIRED.ALL_BRANCHES", Intel, "speculation", "mispredicted branches retired"},
	MachineClearsCount:              {"MACHINE_CLEARS.COUNT", Intel, "speculation", "machine clears of any kind"},
	IntMiscRecoveryCycles:           {"INT_MISC.RECOVERY_CYCLES", Intel, "speculation", "cycles the allocator is stalled recovering from a clear"},
	IntMiscRecoveryCyclesAny:        {"INT_MISC.RECOVERY_CYCLES_ANY", Intel, "speculation", "recovery cycles, any thread"},
	IntMiscClearResteerCycles:       {"INT_MISC.CLEAR_RESTEER_CYCLES", Intel, "speculation", "cycles from clear to first new-path uop issue"},
	UopsIssuedAny:                   {"UOPS_ISSUED.ANY", Intel, "backend", "uops issued by the rename/allocate stage"},
	UopsIssuedStallCycles:           {"UOPS_ISSUED.STALL_CYCLES", Intel, "backend", "cycles with no uops issued"},
	UopsExecutedStallCycles:         {"UOPS_EXECUTED.STALL_CYCLES", Intel, "backend", "cycles with no uops executed"},
	UopsExecutedCoreCyclesNone:      {"UOPS_EXECUTED.CORE_CYCLES_NONE", Intel, "backend", "core cycles with no uops executed"},
	UopsRetiredAll:                  {"UOPS_RETIRED.ALL", Intel, "backend", "uops retired"},
	ResourceStallsAny:               {"RESOURCE_STALLS.ANY", Intel, "backend", "allocator stalls for any backend resource"},
	RsEventsEmptyCycles:             {"RS_EVENTS.EMPTY_CYCLES", Intel, "backend", "cycles the reservation station is empty"},
	CycleActivityStallsTotal:        {"CYCLE_ACTIVITY.STALLS_TOTAL", Intel, "backend", "total execution stall cycles"},
	CycleActivityCyclesMemAny:       {"CYCLE_ACTIVITY.CYCLES_MEM_ANY", Intel, "memory", "cycles with an outstanding memory load"},
	IdqDsbUops:                      {"IDQ.DSB_UOPS", Intel, "frontend", "uops delivered from the DSB (uop cache)"},
	IdqMsDsbCycles:                  {"IDQ.MS_DSB_CYCLES", Intel, "frontend", "cycles MS uops delivered while DSB active"},
	IdqDsbCyclesOK:                  {"IDQ.DSB_CYCLES_OK", Intel, "frontend", "cycles DSB delivered full width"},
	IdqDsbCyclesAny:                 {"IDQ.DSB_CYCLES_ANY", Intel, "frontend", "cycles with any DSB delivery"},
	IdqMsMiteUops:                   {"IDQ.MS_MITE_UOPS", Intel, "frontend", "uops delivered from legacy decode (MITE)"},
	IdqAllMiteCyclesAnyUops:         {"IDQ.ALL_MITE_CYCLES_ANY_UOPS", Intel, "frontend", "cycles with any MITE delivery"},
	IdqMsUops:                       {"IDQ.MS_UOPS", Intel, "frontend", "uops delivered by the microcode sequencer"},
	Icache16BIfdataStall:            {"ICACHE_16B.IFDATA_STALL", Intel, "frontend", "cycles fetch stalled on icache data"},
	DtlbLoadMissesMissCausesAWalk:   {"DTLB_LOAD_MISSES.MISS_CAUSES_A_WALK", Intel, "memory", "DTLB load misses that started a page walk"},
	DtlbLoadMissesWalkActive:        {"DTLB_LOAD_MISSES.WALK_ACTIVE", Intel, "memory", "cycles a D-side page walk was active"},
	ItlbMissesWalkActive:            {"ITLB_MISSES.WALK_ACTIVE", Intel, "memory", "cycles an I-side page walk was active"},
	MemLoadRetiredL1Miss:            {"MEM_LOAD_RETIRED.L1_MISS", Intel, "memory", "retired loads that missed L1D"},
	MemLoadRetiredL3Miss:            {"MEM_LOAD_RETIRED.L3_MISS", Intel, "memory", "retired loads that missed L3"},
	PageWalkerLoads:                 {"PAGE_WALKER_LOADS.TOTAL", Intel, "memory", "PTE reads performed by the page walker"},
	BpL1BtbCorrect:                  {"bp_l1_btb_correct", AMD, "speculation", "L1 BTB correct predictions"},
	BpL1TlbFetchHit:                 {"bp_l1_tlb_fetch_hit", AMD, "frontend", "instruction fetches hitting the L1 ITLB"},
	DeDisUopQueueEmptyDi0:           {"de_dis_uop_queue_empty_di0", AMD, "frontend", "cycles the dispatch uop queue is empty"},
	DeDisDispatchTokenStalls2Retire: {"de_dis_dispatch_token_stalls2.retire_token_stall", AMD, "backend", "dispatch stalls waiting for retire tokens"},
	IcFw32:                          {"ic_fw32", AMD, "frontend", "32-byte instruction fetch windows"},
	CyclesTotal:                     {"CPU_CLK_UNHALTED", Common, "global", "core clock cycles"},
	InstRetired:                     {"INST_RETIRED.ANY", Common, "global", "instructions retired"},
}

// Desc returns the event's metadata.
func (e Event) Desc() Desc { return descs[e] }

// String returns the vendor event name.
func (e Event) String() string { return descs[e].Name }

// MarshalJSON encodes the event as its vendor name.
func (e Event) MarshalJSON() ([]byte, error) {
	return []byte(`"` + descs[e].Name + `"`), nil
}

// AllEvents returns every defined event.
func AllEvents() []Event {
	out := make([]Event, NumEvents)
	for i := range out {
		out[i] = Event(i)
	}
	return out
}

// EventsForVendor returns the events a given vendor's PMU exposes (plus the
// common ones). This is the toolset's preparation stage: the analogue of
// harvesting Intel Perfmon / Linux perf event lists.
func EventsForVendor(v Vendor) []Event {
	var out []Event
	for i := 0; i < NumEvents; i++ {
		d := descs[i].Vendor
		if d == v || d == Common {
			out = append(out, Event(i))
		}
	}
	return out
}

// ByName resolves a vendor event name, reporting whether it exists.
func ByName(name string) (Event, bool) {
	for i := 0; i < NumEvents; i++ {
		if descs[i].Name == name {
			return Event(i), true
		}
	}
	return 0, false
}
