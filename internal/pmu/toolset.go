package pmu

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"whisper/internal/stats"
)

// This file implements the three-stage analysis flow of the paper's
// Figure 2: preparation (EventsForVendor in events.go), online collection
// (Collect), and offline differential analysis (Differential).

// Run is the counter delta of a single scenario execution.
type Run = Counts

// Collect executes scenario n times, snapshotting the PMU around each run,
// and returns the per-run deltas. This is the online collection stage.
func Collect(p *PMU, n int, scenario func()) []Run {
	runs := make([]Run, 0, n)
	for i := 0; i < n; i++ {
		before := p.Snapshot()
		scenario()
		runs = append(runs, p.Snapshot().Delta(before))
	}
	return runs
}

// Diff is the offline-analysis verdict for one event across two scenarios.
type Diff struct {
	Event Event
	MeanA float64 // scenario A (e.g. Jcc not triggered)
	MeanB float64 // scenario B (e.g. Jcc triggered)
	T     float64 // Welch's t statistic (B vs A)
}

// Delta returns MeanB - MeanA.
func (d Diff) Delta() float64 { return d.MeanB - d.MeanA }

// Differential compares two scenario collections event-by-event and returns
// the events whose |t| exceeds threshold, sorted by descending |t|. Events
// identical in both scenarios are filtered out — the "simple differential
// methods to filter out the irrelevant parts" of §5.1.
func Differential(a, b []Run, events []Event, threshold float64) []Diff {
	var out []Diff
	for _, e := range events {
		xa := column(a, e)
		xb := column(b, e)
		t := stats.WelchT(xb, xa)
		if math.IsInf(t, 0) {
			// Zero variance on both sides but different means: maximally
			// significant; keep with a large finite score for sorting.
			t = math.Copysign(1e9, t)
		}
		if math.Abs(t) < threshold {
			continue
		}
		out = append(out, Diff{Event: e, MeanA: stats.Mean(xa), MeanB: stats.Mean(xb), T: t})
	}
	sort.Slice(out, func(i, j int) bool {
		ai, aj := math.Abs(out[i].T), math.Abs(out[j].T)
		if ai != aj {
			return ai > aj
		}
		return out[i].Event < out[j].Event
	})
	return out
}

func column(runs []Run, e Event) []float64 {
	xs := make([]float64, len(runs))
	for i, r := range runs {
		xs[i] = float64(r[e])
	}
	return xs
}

// Report renders a Table 3-style report: event name, scenario means, delta.
func Report(title, labelA, labelB string, diffs []Diff) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%-50s %14s %14s %10s\n", "Event", labelA, labelB, "delta")
	for _, d := range diffs {
		fmt.Fprintf(&b, "%-50s %14.1f %14.1f %+10.1f\n",
			d.Event.String(), d.MeanA, d.MeanB, d.Delta())
	}
	return b.String()
}
