package isa

import (
	"testing"
	"testing/quick"
)

func TestCondEval(t *testing.T) {
	cases := []struct {
		c    Cond
		f    Flags
		want bool
	}{
		{CondE, Flags{ZF: true}, true},
		{CondE, Flags{}, false},
		{CondNE, Flags{}, true},
		{CondNE, Flags{ZF: true}, false},
		{CondC, Flags{CF: true}, true},
		{CondC, Flags{}, false},
		{CondNC, Flags{}, true},
		{CondS, Flags{SF: true}, true},
		{CondNS, Flags{SF: true}, false},
		{CondLE, Flags{ZF: true}, true},
		{CondLE, Flags{SF: true, OF: false}, true},
		{CondLE, Flags{SF: true, OF: true}, false},
		{CondG, Flags{}, true},
		{CondG, Flags{ZF: true}, false},
		{CondG, Flags{SF: true}, false},
	}
	for _, c := range cases {
		if got := c.c.Eval(c.f); got != c.want {
			t.Errorf("Cond %v Eval(%+v) = %v, want %v", c.c, c.f, got, c.want)
		}
	}
}

func TestCondComplementarity(t *testing.T) {
	// E/NE, C/NC, S/NS, LE/G must be complementary for every flag state.
	pairs := [][2]Cond{{CondE, CondNE}, {CondC, CondNC}, {CondS, CondNS}, {CondLE, CondG}}
	f := func(zf, cf, sf, of bool) bool {
		fl := Flags{ZF: zf, CF: cf, SF: sf, OF: of}
		for _, p := range pairs {
			if p[0].Eval(fl) == p[1].Eval(fl) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBuilderLabelResolution(t *testing.T) {
	b := NewBuilder(0x400000)
	b.MovImm(RAX, 1)
	b.Label("loop")
	b.SubImm(RAX, RAX, 1)
	b.Jcc(CondNE, "loop")
	b.Jmp("end")
	b.Nop()
	b.Label("end")
	b.Halt()
	p, err := b.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() != 6 {
		t.Fatalf("Len = %d, want 6", p.Len())
	}
	if got := p.Insts[2].Target; got != 1 {
		t.Errorf("jcc target = %d, want 1", got)
	}
	if got := p.Insts[3].Target; got != 5 {
		t.Errorf("jmp target = %d, want 5", got)
	}
}

func TestBuilderUndefinedLabel(t *testing.T) {
	b := NewBuilder(0)
	b.Jmp("missing")
	if _, err := b.Assemble(); err == nil {
		t.Fatal("Assemble with undefined label: want error, got nil")
	}
}

func TestBuilderDuplicateLabel(t *testing.T) {
	b := NewBuilder(0)
	b.Label("x").Nop().Label("x").Nop()
	if _, err := b.Assemble(); err == nil {
		t.Fatal("Assemble with duplicate label: want error, got nil")
	}
}

func TestProgramAddressing(t *testing.T) {
	p := NewBuilder(0x1000).Nop().Nop().Nop().MustAssemble()
	if va := p.VA(2); va != 0x1000+2*InstBytes {
		t.Errorf("VA(2) = %#x", va)
	}
	if idx := p.Index(0x1000 + InstBytes); idx != 1 {
		t.Errorf("Index = %d, want 1", idx)
	}
	if idx := p.Index(0xfff); idx != -1 {
		t.Errorf("Index below base = %d, want -1", idx)
	}
	if idx := p.Index(0x1000 + 100*InstBytes); idx != -1 {
		t.Errorf("Index beyond end = %d, want -1", idx)
	}
}

func TestProgramVAIndexRoundTrip(t *testing.T) {
	p := NewBuilder(0x7f0000).NopSled(64).MustAssemble()
	f := func(i uint8) bool {
		idx := int(i) % p.Len()
		return p.Index(p.VA(idx)) == idx
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLoadStoreDefaultSize(t *testing.T) {
	p := NewBuilder(0).
		Load(RAX, RBX, 0, 0). // size 0 should default to 8
		Store(RBX, 0, RAX, 0).
		MustAssemble()
	for i, in := range p.Insts {
		if in.Size != 8 {
			t.Errorf("inst %d size = %d, want 8", i, in.Size)
		}
	}
}

func TestInstClassification(t *testing.T) {
	cases := []struct {
		in      Inst
		branch  bool
		memRead bool
		fence   bool
		wrFlags bool
		rdFlags bool
	}{
		{Inst{Op: OpJcc}, true, false, false, false, true},
		{Inst{Op: OpJmp}, true, false, false, false, false},
		{Inst{Op: OpCall}, true, false, false, false, false},
		{Inst{Op: OpRet}, true, false, false, false, false},
		{Inst{Op: OpLoad}, false, true, false, false, false},
		{Inst{Op: OpMfence}, false, false, true, false, false},
		{Inst{Op: OpLfence}, false, false, true, false, false},
		{Inst{Op: OpCmp}, false, false, false, true, false},
		{Inst{Op: OpCmpImm}, false, false, false, true, false},
		{Inst{Op: OpSub}, false, false, false, true, false},
		{Inst{Op: OpNop}, false, false, false, false, false},
	}
	for _, c := range cases {
		if got := c.in.IsBranch(); got != c.branch {
			t.Errorf("%v IsBranch = %v", c.in.Op, got)
		}
		if got := c.in.IsMemRead(); got != c.memRead {
			t.Errorf("%v IsMemRead = %v", c.in.Op, got)
		}
		if got := c.in.IsFence(); got != c.fence {
			t.Errorf("%v IsFence = %v", c.in.Op, got)
		}
		if got := c.in.WritesFlags(); got != c.wrFlags {
			t.Errorf("%v WritesFlags = %v", c.in.Op, got)
		}
		if got := c.in.ReadsFlags(); got != c.rdFlags {
			t.Errorf("%v ReadsFlags = %v", c.in.Op, got)
		}
	}
}

func TestSrcDstRegs(t *testing.T) {
	in := Inst{Op: OpStore, Src1: RBX, Src2: RCX}
	srcs := in.SrcRegs()
	if len(srcs) != 2 || srcs[0] != RBX || srcs[1] != RCX {
		t.Errorf("store SrcRegs = %v", srcs)
	}
	if in.DstReg() != RZERO {
		t.Errorf("store DstReg = %v, want rzero", in.DstReg())
	}
	ld := Inst{Op: OpLoad, Dst: RAX, Src1: RBX}
	if ld.DstReg() != RAX {
		t.Errorf("load DstReg = %v", ld.DstReg())
	}
	call := Inst{Op: OpCall}
	if call.DstReg() != RSP {
		t.Errorf("call DstReg = %v, want rsp", call.DstReg())
	}
	ret := Inst{Op: OpRet}
	if got := ret.SrcRegs(); len(got) != 1 || got[0] != RSP {
		t.Errorf("ret SrcRegs = %v, want [rsp]", got)
	}
}

func TestStringerCoverage(t *testing.T) {
	// Stringers must not return empty strings for any defined value.
	for o := Op(0); o < numOps; o++ {
		if o.String() == "" {
			t.Errorf("Op(%d).String() empty", o)
		}
	}
	for r := RZERO; r < NumRegs; r++ {
		if r.String() == "" {
			t.Errorf("Reg(%d).String() empty", r)
		}
	}
	insts := []Inst{
		{Op: OpMovImm, Dst: RAX, Imm: 5},
		{Op: OpLoad, Dst: RAX, Src1: RBX, Imm: -8, Size: 1},
		{Op: OpStore, Src1: RBX, Src2: RCX, Size: 8},
		{Op: OpJcc, Cond: CondNE, Target: 3},
		{Op: OpJmp, Target: 0},
		{Op: OpCmp, Src1: RAX, Src2: RBX},
		{Op: OpCmpImm, Src1: RAX, Imm: 1},
		{Op: OpNop},
	}
	for _, in := range insts {
		if in.String() == "" {
			t.Errorf("Inst %v String() empty", in.Op)
		}
	}
}
