// Package isa defines the x86-flavoured micro-operation instruction set used
// by the pipeline simulator. Instructions are structured values rather than
// encoded bytes, but every instruction still has a 64-bit virtual address so
// that instruction-side structures (ITLB, icache, DSB) behave realistically.
package isa

import "fmt"

// Reg names an architectural general-purpose register.
type Reg uint8

// Architectural registers. RZERO always reads as zero and ignores writes,
// which keeps instruction constructors regular.
const (
	RZERO Reg = iota
	RAX
	RBX
	RCX
	RDX
	RSI
	RDI
	RBP
	RSP
	R8
	R9
	R10
	R11
	R12
	R13
	R14
	R15
	NumRegs
)

var regNames = [...]string{
	"rzero", "rax", "rbx", "rcx", "rdx", "rsi", "rdi", "rbp", "rsp",
	"r8", "r9", "r10", "r11", "r12", "r13", "r14", "r15",
}

func (r Reg) String() string {
	if int(r) < len(regNames) {
		return regNames[r]
	}
	return fmt.Sprintf("reg(%d)", uint8(r))
}

// Cond is a Jcc condition code.
type Cond uint8

// Condition codes implemented by the simulator. The paper demonstrates the
// TET effect with JE/JZ, JNE/JNZ, and JC; the remaining codes exist so the
// property holds for the whole conditional-jump family.
const (
	CondE  Cond = iota // ZF=1 (JE/JZ)
	CondNE             // ZF=0 (JNE/JNZ)
	CondC              // CF=1 (JC/JB)
	CondNC             // CF=0 (JNC/JAE)
	CondS              // SF=1 (JS)
	CondNS             // SF=0 (JNS)
	CondLE             // ZF=1 or SF!=OF (JLE)
	CondG              // ZF=0 and SF=OF (JG)
)

var condNames = [...]string{"e", "ne", "c", "nc", "s", "ns", "le", "g"}

func (c Cond) String() string {
	if int(c) < len(condNames) {
		return condNames[c]
	}
	return fmt.Sprintf("cond(%d)", uint8(c))
}

// Flags is the architectural flags register (subset).
type Flags struct {
	ZF bool
	CF bool
	SF bool
	OF bool
}

// Eval reports whether the condition holds under f.
func (c Cond) Eval(f Flags) bool {
	switch c {
	case CondE:
		return f.ZF
	case CondNE:
		return !f.ZF
	case CondC:
		return f.CF
	case CondNC:
		return !f.CF
	case CondS:
		return f.SF
	case CondNS:
		return !f.SF
	case CondLE:
		return f.ZF || f.SF != f.OF
	case CondG:
		return !f.ZF && f.SF == f.OF
	}
	return false
}

// Op is an operation code.
type Op uint8

const (
	OpNop Op = iota
	OpMovImm
	OpMov
	OpAdd
	OpAddImm
	OpSub
	OpSubImm
	OpAnd
	OpAndImm
	OpOr
	OpXor
	OpShlImm
	OpShrImm
	OpImul
	OpLoad    // Dst = mem[Src1+Imm]
	OpStore   // mem[Src1+Imm] = Src2
	OpCmp     // flags from Src1 - Src2
	OpCmpImm  // flags from Src1 - Imm
	OpJmp     // unconditional, Target
	OpJcc     // conditional, Cond + Target
	OpCall    // push return address, jump to Target
	OpRet     // pop return address, jump
	OpRdtsc   // Dst = cycle counter
	OpClflush // flush cache line at Src1+Imm
	OpPrefetch
	OpMfence
	OpLfence
	OpSfence
	OpXbegin // begin transaction; abort handler at Target
	OpXend
	OpHalt
	numOps
)

var opNames = [...]string{
	"nop", "movimm", "mov", "add", "addimm", "sub", "subimm", "and",
	"andimm", "or", "xor", "shlimm", "shrimm", "imul", "load", "store",
	"cmp", "cmpimm", "jmp", "jcc", "call", "ret", "rdtsc", "clflush",
	"prefetch", "mfence", "lfence", "sfence", "xbegin", "xend", "halt",
}

func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// InstBytes is the nominal encoded size of every instruction; instruction i
// of a program based at B lives at virtual address B + i*InstBytes.
const InstBytes = 4

// Inst is one instruction.
type Inst struct {
	Op     Op
	Dst    Reg
	Src1   Reg
	Src2   Reg
	Imm    int64
	Cond   Cond
	Target int // instruction index for Jmp/Jcc/Call/Xbegin
	Size   int // access size in bytes for Load/Store (1..8)

	label string // unresolved branch target, consumed by Assemble
}

// IsBranch reports whether the instruction redirects control flow.
func (in Inst) IsBranch() bool {
	switch in.Op {
	case OpJmp, OpJcc, OpCall, OpRet:
		return true
	}
	return false
}

// IsMemRead reports whether the instruction reads data memory.
func (in Inst) IsMemRead() bool { return in.Op == OpLoad }

// IsFence reports whether the instruction serialises execution.
func (in Inst) IsFence() bool {
	switch in.Op {
	case OpMfence, OpLfence, OpSfence:
		return true
	}
	return false
}

// ReadsFlags reports whether the instruction consumes RFLAGS.
func (in Inst) ReadsFlags() bool { return in.Op == OpJcc }

// WritesFlags reports whether the instruction produces RFLAGS.
func (in Inst) WritesFlags() bool {
	switch in.Op {
	case OpCmp, OpCmpImm, OpAdd, OpSub, OpAnd, OpOr, OpXor, OpAddImm, OpSubImm, OpAndImm:
		return true
	}
	return false
}

// SrcRegs returns the architectural source registers read by the instruction.
func (in Inst) SrcRegs() []Reg {
	switch in.Op {
	case OpNop, OpMovImm, OpJmp, OpCall, OpRdtsc, OpMfence, OpLfence,
		OpSfence, OpXbegin, OpXend, OpHalt, OpJcc:
		return nil
	case OpMov, OpAddImm, OpSubImm, OpAndImm, OpShlImm, OpShrImm,
		OpLoad, OpCmpImm, OpClflush, OpPrefetch:
		return []Reg{in.Src1}
	case OpStore:
		return []Reg{in.Src1, in.Src2}
	case OpRet:
		return []Reg{RSP}
	default: // three-operand ALU
		return []Reg{in.Src1, in.Src2}
	}
}

// DstReg returns the architectural destination register, or RZERO if none.
func (in Inst) DstReg() Reg {
	switch in.Op {
	case OpMovImm, OpMov, OpAdd, OpAddImm, OpSub, OpSubImm, OpAnd,
		OpAndImm, OpOr, OpXor, OpShlImm, OpShrImm, OpImul, OpLoad, OpRdtsc:
		return in.Dst
	case OpCall, OpRet:
		return RSP
	}
	return RZERO
}

func (in Inst) String() string {
	switch in.Op {
	case OpMovImm:
		return fmt.Sprintf("mov %s, %#x", in.Dst, in.Imm)
	case OpLoad:
		return fmt.Sprintf("load%d %s, [%s%+d]", in.Size, in.Dst, in.Src1, in.Imm)
	case OpStore:
		return fmt.Sprintf("store%d [%s%+d], %s", in.Size, in.Src1, in.Imm, in.Src2)
	case OpJcc:
		return fmt.Sprintf("j%s %d", in.Cond, in.Target)
	case OpJmp, OpCall, OpXbegin:
		return fmt.Sprintf("%s %d", in.Op, in.Target)
	case OpCmpImm:
		return fmt.Sprintf("cmp %s, %#x", in.Src1, in.Imm)
	case OpCmp:
		return fmt.Sprintf("cmp %s, %s", in.Src1, in.Src2)
	default:
		return in.Op.String()
	}
}

// Program is an assembled instruction sequence with a code base address.
type Program struct {
	Base  uint64
	Insts []Inst
}

// Len returns the number of instructions.
func (p *Program) Len() int { return len(p.Insts) }

// VA returns the virtual address of instruction idx.
func (p *Program) VA(idx int) uint64 { return p.Base + uint64(idx)*InstBytes }

// Index returns the instruction index holding virtual address va, or -1.
func (p *Program) Index(va uint64) int {
	if va < p.Base {
		return -1
	}
	idx := int((va - p.Base) / InstBytes)
	if idx >= len(p.Insts) {
		return -1
	}
	return idx
}

// At returns instruction idx; it panics on out-of-range indices because the
// frontend must bound-check before fetching.
func (p *Program) At(idx int) Inst { return p.Insts[idx] }
