package isa

import "fmt"

// Builder assembles a Program, resolving symbolic labels to instruction
// indices. The zero value is not usable; call NewBuilder.
type Builder struct {
	base   uint64
	insts  []Inst
	labels map[string]int
	errs   []error
}

// NewBuilder returns a Builder for a program based at the given code address.
func NewBuilder(base uint64) *Builder {
	return &Builder{base: base, labels: make(map[string]int)}
}

// Label binds name to the index of the next emitted instruction.
func (b *Builder) Label(name string) *Builder {
	if _, dup := b.labels[name]; dup {
		b.errs = append(b.errs, fmt.Errorf("isa: duplicate label %q", name))
	}
	b.labels[name] = len(b.insts)
	return b
}

// Pos returns the index the next emitted instruction will have.
func (b *Builder) Pos() int { return len(b.insts) }

func (b *Builder) emit(in Inst) *Builder {
	if in.Size == 0 && (in.Op == OpLoad || in.Op == OpStore) {
		in.Size = 8
	}
	b.insts = append(b.insts, in)
	return b
}

// Nop emits a no-op.
func (b *Builder) Nop() *Builder { return b.emit(Inst{Op: OpNop}) }

// NopSled emits n consecutive no-ops.
func (b *Builder) NopSled(n int) *Builder {
	for i := 0; i < n; i++ {
		b.Nop()
	}
	return b
}

// MovImm emits dst = imm.
func (b *Builder) MovImm(dst Reg, imm int64) *Builder {
	return b.emit(Inst{Op: OpMovImm, Dst: dst, Imm: imm})
}

// Mov emits dst = src.
func (b *Builder) Mov(dst, src Reg) *Builder {
	return b.emit(Inst{Op: OpMov, Dst: dst, Src1: src})
}

// Add emits dst = s1 + s2.
func (b *Builder) Add(dst, s1, s2 Reg) *Builder {
	return b.emit(Inst{Op: OpAdd, Dst: dst, Src1: s1, Src2: s2})
}

// AddImm emits dst = src + imm.
func (b *Builder) AddImm(dst, src Reg, imm int64) *Builder {
	return b.emit(Inst{Op: OpAddImm, Dst: dst, Src1: src, Imm: imm})
}

// Sub emits dst = s1 - s2.
func (b *Builder) Sub(dst, s1, s2 Reg) *Builder {
	return b.emit(Inst{Op: OpSub, Dst: dst, Src1: s1, Src2: s2})
}

// SubImm emits dst = src - imm.
func (b *Builder) SubImm(dst, src Reg, imm int64) *Builder {
	return b.emit(Inst{Op: OpSubImm, Dst: dst, Src1: src, Imm: imm})
}

// And emits dst = s1 & s2.
func (b *Builder) And(dst, s1, s2 Reg) *Builder {
	return b.emit(Inst{Op: OpAnd, Dst: dst, Src1: s1, Src2: s2})
}

// AndImm emits dst = src & imm.
func (b *Builder) AndImm(dst, src Reg, imm int64) *Builder {
	return b.emit(Inst{Op: OpAndImm, Dst: dst, Src1: src, Imm: imm})
}

// Or emits dst = s1 | s2.
func (b *Builder) Or(dst, s1, s2 Reg) *Builder {
	return b.emit(Inst{Op: OpOr, Dst: dst, Src1: s1, Src2: s2})
}

// Xor emits dst = s1 ^ s2.
func (b *Builder) Xor(dst, s1, s2 Reg) *Builder {
	return b.emit(Inst{Op: OpXor, Dst: dst, Src1: s1, Src2: s2})
}

// ShlImm emits dst = src << imm.
func (b *Builder) ShlImm(dst, src Reg, imm int64) *Builder {
	return b.emit(Inst{Op: OpShlImm, Dst: dst, Src1: src, Imm: imm})
}

// ShrImm emits dst = src >> imm (logical).
func (b *Builder) ShrImm(dst, src Reg, imm int64) *Builder {
	return b.emit(Inst{Op: OpShrImm, Dst: dst, Src1: src, Imm: imm})
}

// Imul emits dst = s1 * s2.
func (b *Builder) Imul(dst, s1, s2 Reg) *Builder {
	return b.emit(Inst{Op: OpImul, Dst: dst, Src1: s1, Src2: s2})
}

// Load emits dst = mem[base+disp] with the given access size in bytes.
func (b *Builder) Load(dst, base Reg, disp int64, size int) *Builder {
	return b.emit(Inst{Op: OpLoad, Dst: dst, Src1: base, Imm: disp, Size: size})
}

// LoadB emits a 1-byte load dst = mem[base+disp].
func (b *Builder) LoadB(dst, base Reg, disp int64) *Builder {
	return b.Load(dst, base, disp, 1)
}

// LoadQ emits an 8-byte load dst = mem[base+disp].
func (b *Builder) LoadQ(dst, base Reg, disp int64) *Builder {
	return b.Load(dst, base, disp, 8)
}

// Store emits mem[base+disp] = src with the given access size in bytes.
func (b *Builder) Store(base Reg, disp int64, src Reg, size int) *Builder {
	return b.emit(Inst{Op: OpStore, Src1: base, Imm: disp, Src2: src, Size: size})
}

// StoreQ emits an 8-byte store mem[base+disp] = src.
func (b *Builder) StoreQ(base Reg, disp int64, src Reg) *Builder {
	return b.Store(base, disp, src, 8)
}

// Cmp emits flags = compare(s1, s2).
func (b *Builder) Cmp(s1, s2 Reg) *Builder {
	return b.emit(Inst{Op: OpCmp, Src1: s1, Src2: s2})
}

// CmpImm emits flags = compare(src, imm).
func (b *Builder) CmpImm(src Reg, imm int64) *Builder {
	return b.emit(Inst{Op: OpCmpImm, Src1: src, Imm: imm})
}

// Jmp emits an unconditional jump to label.
func (b *Builder) Jmp(label string) *Builder {
	return b.emit(Inst{Op: OpJmp, label: label})
}

// Jcc emits a conditional jump to label.
func (b *Builder) Jcc(c Cond, label string) *Builder {
	return b.emit(Inst{Op: OpJcc, Cond: c, label: label})
}

// Call emits a call to label (pushes the return address on the stack).
func (b *Builder) Call(label string) *Builder {
	return b.emit(Inst{Op: OpCall, label: label})
}

// Ret emits a return (pops the return address from the stack).
func (b *Builder) Ret() *Builder { return b.emit(Inst{Op: OpRet}) }

// Rdtsc emits dst = current cycle count.
func (b *Builder) Rdtsc(dst Reg) *Builder {
	return b.emit(Inst{Op: OpRdtsc, Dst: dst})
}

// Clflush emits a cache-line flush of mem[base+disp].
func (b *Builder) Clflush(base Reg, disp int64) *Builder {
	return b.emit(Inst{Op: OpClflush, Src1: base, Imm: disp})
}

// Prefetch emits a software prefetch of mem[base+disp].
func (b *Builder) Prefetch(base Reg, disp int64) *Builder {
	return b.emit(Inst{Op: OpPrefetch, Src1: base, Imm: disp})
}

// Mfence emits a full memory fence.
func (b *Builder) Mfence() *Builder { return b.emit(Inst{Op: OpMfence}) }

// Lfence emits a load fence (serialises instruction issue, as on x86).
func (b *Builder) Lfence() *Builder { return b.emit(Inst{Op: OpLfence}) }

// Sfence emits a store fence.
func (b *Builder) Sfence() *Builder { return b.emit(Inst{Op: OpSfence}) }

// Xbegin emits a transaction begin whose abort handler is at label.
func (b *Builder) Xbegin(abortLabel string) *Builder {
	return b.emit(Inst{Op: OpXbegin, label: abortLabel})
}

// Xend emits a transaction commit.
func (b *Builder) Xend() *Builder { return b.emit(Inst{Op: OpXend}) }

// Halt emits a halt, which stops simulation.
func (b *Builder) Halt() *Builder { return b.emit(Inst{Op: OpHalt}) }

// Assemble resolves labels and returns the finished Program.
func (b *Builder) Assemble() (*Program, error) {
	if len(b.errs) > 0 {
		return nil, b.errs[0]
	}
	insts := make([]Inst, len(b.insts))
	copy(insts, b.insts)
	for i := range insts {
		if insts[i].label == "" {
			continue
		}
		tgt, ok := b.labels[insts[i].label]
		if !ok {
			return nil, fmt.Errorf("isa: undefined label %q at inst %d", insts[i].label, i)
		}
		insts[i].Target = tgt
		insts[i].label = ""
	}
	return &Program{Base: b.base, Insts: insts}, nil
}

// MustAssemble is Assemble that panics on error; for tests and fixed gadgets.
func (b *Builder) MustAssemble() *Program {
	p, err := b.Assemble()
	if err != nil {
		panic(err)
	}
	return p
}
