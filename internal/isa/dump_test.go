package isa

import (
	"strings"
	"testing"
)

func TestDumpDistinguishesPrograms(t *testing.T) {
	p1 := NewBuilder(0x400000).MovImm(RAX, 1).Halt().MustAssemble()
	p2 := NewBuilder(0x400000).MovImm(RAX, 2).Halt().MustAssemble()
	p3 := NewBuilder(0x401000).MovImm(RAX, 1).Halt().MustAssemble()

	if p1.Dump() == p2.Dump() {
		t.Fatal("programs differing in an immediate dump identically")
	}
	if p1.Dump() == p3.Dump() {
		t.Fatal("programs differing in base dump identically")
	}
	if !strings.Contains(p1.Dump(), "op=movimm") || !strings.Contains(p1.Dump(), "op=halt") {
		t.Fatalf("dump missing ops:\n%s", p1.Dump())
	}
}

func TestFingerprintStableAndContentKeyed(t *testing.T) {
	build := func(imm int64) *Program {
		return NewBuilder(0x400000).MovImm(RBX, imm).StoreQ(RBX, 0, RAX).Halt().MustAssemble()
	}
	a, b := build(7), build(7)
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("identical programs fingerprint differently")
	}
	if a.Fingerprint() != a.Fingerprint() {
		t.Fatal("fingerprint not stable across calls")
	}
	if a.Fingerprint() == build(8).Fingerprint() {
		t.Fatal("distinct programs collide")
	}
}
