package isa

import "testing"

// TestBuilderEmitsEveryOp drives each emitter once and checks the emitted
// opcode, operands and sizes — the builder is the only assembler in the
// repository, so its encodings are load-bearing for everything above it.
func TestBuilderEmitsEveryOp(t *testing.T) {
	b := NewBuilder(0x1000)
	b.Label("start")
	b.Nop()
	b.MovImm(RAX, 7)
	b.Mov(RBX, RAX)
	b.Add(RCX, RAX, RBX)
	b.AddImm(RCX, RCX, 1)
	b.Sub(RDX, RCX, RAX)
	b.SubImm(RDX, RDX, 2)
	b.And(RSI, RAX, RBX)
	b.AndImm(RSI, RSI, 0xff)
	b.Or(RDI, RAX, RBX)
	b.Xor(R8, RAX, RBX)
	b.ShlImm(R9, RAX, 3)
	b.ShrImm(R10, RAX, 4)
	b.Imul(R11, RAX, RBX)
	b.LoadB(R12, RAX, 8)
	b.LoadQ(R13, RAX, 16)
	b.Load(R14, RAX, 24, 4)
	b.StoreQ(RAX, 0, RBX)
	b.Store(RAX, 8, RBX, 2)
	b.Cmp(RAX, RBX)
	b.CmpImm(RAX, 9)
	b.Jmp("start")
	b.Jcc(CondE, "start")
	b.Call("start")
	b.Ret()
	b.Rdtsc(R15)
	b.Clflush(RAX, 0)
	b.Prefetch(RAX, 64)
	b.Mfence()
	b.Lfence()
	b.Sfence()
	b.Xbegin("start")
	b.Xend()
	b.NopSled(2)
	if b.Pos() != 35 {
		t.Fatalf("Pos = %d, want 35", b.Pos())
	}
	b.Halt()
	p, err := b.Assemble()
	if err != nil {
		t.Fatal(err)
	}

	want := []struct {
		op   Op
		size int
	}{
		{OpNop, 0}, {OpMovImm, 0}, {OpMov, 0}, {OpAdd, 0}, {OpAddImm, 0},
		{OpSub, 0}, {OpSubImm, 0}, {OpAnd, 0}, {OpAndImm, 0}, {OpOr, 0},
		{OpXor, 0}, {OpShlImm, 0}, {OpShrImm, 0}, {OpImul, 0},
		{OpLoad, 1}, {OpLoad, 8}, {OpLoad, 4}, {OpStore, 8}, {OpStore, 2},
		{OpCmp, 0}, {OpCmpImm, 0}, {OpJmp, 0}, {OpJcc, 0}, {OpCall, 0},
		{OpRet, 0}, {OpRdtsc, 0}, {OpClflush, 0}, {OpPrefetch, 0},
		{OpMfence, 0}, {OpLfence, 0}, {OpSfence, 0}, {OpXbegin, 0},
		{OpXend, 0}, {OpNop, 0}, {OpNop, 0}, {OpHalt, 0},
	}
	if p.Len() != len(want) {
		t.Fatalf("program len = %d, want %d", p.Len(), len(want))
	}
	for i, w := range want {
		in := p.At(i)
		if in.Op != w.op {
			t.Errorf("inst %d op = %v, want %v", i, in.Op, w.op)
		}
		if w.size != 0 && in.Size != w.size {
			t.Errorf("inst %d size = %d, want %d", i, in.Size, w.size)
		}
	}
	// Branch targets all resolved to "start" (index 0).
	for _, idx := range []int{21, 22, 23, 31} {
		if p.At(idx).Target != 0 {
			t.Errorf("inst %d target = %d, want 0", idx, p.At(idx).Target)
		}
	}
	// Operand plumbing spot checks.
	if in := p.At(1); in.Dst != RAX || in.Imm != 7 {
		t.Errorf("movimm wrong: %+v", in)
	}
	if in := p.At(3); in.Dst != RCX || in.Src1 != RAX || in.Src2 != RBX {
		t.Errorf("add wrong: %+v", in)
	}
	if in := p.At(14); in.Dst != R12 || in.Src1 != RAX || in.Imm != 8 {
		t.Errorf("loadb wrong: %+v", in)
	}
	if in := p.At(18); in.Src1 != RAX || in.Imm != 8 || in.Src2 != RBX {
		t.Errorf("store wrong: %+v", in)
	}
}
