package isa

import (
	"fmt"
	"hash/fnv"
	"strings"
)

// Dump returns a deterministic, field-exhaustive listing of the program: one
// line per instruction carrying every Inst field, plus the code base. Unlike
// Inst.String (a human-oriented rendering that elides operands irrelevant to
// each op), Dump distinguishes any two programs that differ in any field, so
// the fuzz generator's determinism tests can compare programs byte-for-byte
// and corpus tools can deduplicate by content.
func (p *Program) Dump() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "base %#x insts %d\n", p.Base, len(p.Insts))
	for i, in := range p.Insts {
		fmt.Fprintf(&sb, "%4d: op=%s dst=%s src1=%s src2=%s imm=%#x cond=%s target=%d size=%d\n",
			i, in.Op, in.Dst, in.Src1, in.Src2, uint64(in.Imm), in.Cond, in.Target, in.Size)
	}
	return sb.String()
}

// Fingerprint returns a 64-bit FNV-1a hash of Dump: a cheap content identity
// for assembled programs. Two programs fingerprint equal iff they dump equal.
func (p *Program) Fingerprint() uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(p.Dump()))
	return h.Sum64()
}
