// Package interp is a plain sequential interpreter for the simulator's ISA.
// It defines the architectural semantics the out-of-order pipeline must
// preserve and serves as the oracle for differential testing: any program
// without timing-dependent instructions must leave identical architectural
// state behind on both engines, whatever speculation the pipeline performed.
package interp

import (
	"errors"
	"fmt"

	"whisper/internal/isa"
	"whisper/internal/mem"
	"whisper/internal/paging"
)

// ErrFault is returned when a memory access has no valid user translation.
var ErrFault = errors.New("interp: memory fault")

// ErrBudget is returned when a program exceeds its instruction budget.
var ErrBudget = errors.New("interp: instruction budget exceeded")

// Machine is the interpreter's architectural state.
type Machine struct {
	AS    *paging.AddressSpace
	Phys  *mem.Physical
	Regs  [isa.NumRegs]uint64
	Flags isa.Flags

	tsc        uint64
	inTxn      bool
	txnRegs    [isa.NumRegs]uint64
	txnFlags   isa.Flags
	txnAbort   int
	sigHandler int
}

// New returns an interpreter over an address space.
func New(as *paging.AddressSpace) *Machine {
	return &Machine{AS: as, Phys: as.Phys(), sigHandler: -1}
}

// SetSignalHandler mirrors the pipeline's fault-suppression hook.
func (m *Machine) SetSignalHandler(idx int) { m.sigHandler = idx }

func (m *Machine) translate(va uint64, write bool) (uint64, error) {
	w := m.AS.WalkVA(va)
	if !w.Present || !w.User() {
		return 0, fmt.Errorf("%w: va %#x", ErrFault, va)
	}
	if write && !w.Writable() {
		return 0, fmt.Errorf("%w: write to read-only va %#x", ErrFault, va)
	}
	return w.PA, nil
}

func (m *Machine) get(r isa.Reg) uint64 { return m.Regs[r] }

func (m *Machine) set(r isa.Reg, v uint64) {
	if r != isa.RZERO {
		m.Regs[r] = v
	}
}

// fault handles a memory fault: TSX abort, signal handler, or error.
// It returns the next instruction index, or -1 with err set.
func (m *Machine) fault(cause error) (int, error) {
	if m.inTxn {
		m.Regs = m.txnRegs
		m.Flags = m.txnFlags
		m.inTxn = false
		return m.txnAbort, nil
	}
	if m.sigHandler >= 0 {
		return m.sigHandler, nil
	}
	return -1, cause
}

// Run executes prog until Halt, a budget overrun, or an unsuppressed fault.
func (m *Machine) Run(prog *isa.Program, maxInsts int) error {
	pc := 0
	for executed := 0; ; executed++ {
		if executed >= maxInsts {
			return ErrBudget
		}
		if pc < 0 || pc >= prog.Len() {
			return fmt.Errorf("interp: pc %d out of program", pc)
		}
		in := prog.At(pc)
		next := pc + 1
		switch in.Op {
		case isa.OpNop, isa.OpMfence, isa.OpLfence, isa.OpSfence:
			// architectural no-ops
		case isa.OpMovImm:
			m.set(in.Dst, uint64(in.Imm))
		case isa.OpMov:
			m.set(in.Dst, m.get(in.Src1))
		case isa.OpAdd, isa.OpSub, isa.OpAnd, isa.OpOr, isa.OpXor, isa.OpImul, isa.OpCmp:
			r, f := aluOp(in.Op, m.get(in.Src1), m.get(in.Src2))
			if in.Op != isa.OpCmp {
				m.set(in.Dst, r)
			}
			if in.WritesFlags() {
				m.Flags = f
			}
		case isa.OpAddImm, isa.OpSubImm, isa.OpAndImm, isa.OpShlImm, isa.OpShrImm, isa.OpCmpImm:
			r, f := aluImmOp(in.Op, m.get(in.Src1), uint64(in.Imm))
			if in.Op != isa.OpCmpImm {
				m.set(in.Dst, r)
			}
			if in.WritesFlags() {
				m.Flags = f
			}
		case isa.OpLoad:
			pa, err := m.translate(m.get(in.Src1)+uint64(in.Imm), false)
			if err != nil {
				if next, err = m.fault(err); err != nil {
					return err
				}
				pc = next
				continue
			}
			m.set(in.Dst, m.Phys.Read(pa, in.Size))
		case isa.OpStore:
			pa, err := m.translate(m.get(in.Src1)+uint64(in.Imm), true)
			if err != nil {
				if next, err = m.fault(err); err != nil {
					return err
				}
				pc = next
				continue
			}
			m.Phys.Write(pa, in.Size, m.get(in.Src2))
		case isa.OpJmp:
			next = in.Target
		case isa.OpJcc:
			if in.Cond.Eval(m.Flags) {
				next = in.Target
			}
		case isa.OpCall:
			rsp := m.get(isa.RSP) - 8
			pa, err := m.translate(rsp, true)
			if err != nil {
				if next, err = m.fault(err); err != nil {
					return err
				}
				pc = next
				continue
			}
			m.Phys.Write(pa, 8, prog.VA(pc+1))
			m.set(isa.RSP, rsp)
			next = in.Target
		case isa.OpRet:
			rsp := m.get(isa.RSP)
			pa, err := m.translate(rsp, false)
			if err != nil {
				if next, err = m.fault(err); err != nil {
					return err
				}
				pc = next
				continue
			}
			target := m.Phys.Read(pa, 8)
			m.set(isa.RSP, rsp+8)
			idx := prog.Index(target)
			if idx < 0 {
				return fmt.Errorf("interp: ret to %#x outside program", target)
			}
			next = idx
		case isa.OpRdtsc:
			m.tsc += 16
			m.set(in.Dst, m.tsc)
		case isa.OpClflush, isa.OpPrefetch:
			// microarchitectural only
		case isa.OpXbegin:
			m.inTxn = true
			m.txnRegs = m.Regs
			m.txnFlags = m.Flags
			m.txnAbort = in.Target
		case isa.OpXend:
			m.inTxn = false
		case isa.OpHalt:
			return nil
		default:
			return fmt.Errorf("interp: unknown op %v", in.Op)
		}
		pc = next
	}
}

func aluOp(op isa.Op, a, b uint64) (uint64, isa.Flags) {
	var r uint64
	var f isa.Flags
	switch op {
	case isa.OpAdd:
		r = a + b
		f.CF = r < a
	case isa.OpSub, isa.OpCmp:
		r = a - b
		f.CF = a < b
	case isa.OpAnd:
		r = a & b
	case isa.OpOr:
		r = a | b
	case isa.OpXor:
		r = a ^ b
	case isa.OpImul:
		r = a * b
	}
	f.ZF = r == 0
	f.SF = r>>63 != 0
	if op == isa.OpCmp {
		return a, f
	}
	return r, f
}

func aluImmOp(op isa.Op, a, imm uint64) (uint64, isa.Flags) {
	switch op {
	case isa.OpAddImm:
		return aluOp(isa.OpAdd, a, imm)
	case isa.OpSubImm:
		return aluOp(isa.OpSub, a, imm)
	case isa.OpAndImm:
		return aluOp(isa.OpAnd, a, imm)
	case isa.OpCmpImm:
		return aluOp(isa.OpCmp, a, imm)
	case isa.OpShlImm:
		return a << (imm & 63), isa.Flags{ZF: a<<(imm&63) == 0}
	case isa.OpShrImm:
		return a >> (imm & 63), isa.Flags{ZF: a>>(imm&63) == 0}
	}
	return 0, isa.Flags{}
}
