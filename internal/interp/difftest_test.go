package interp

import (
	"fmt"
	"math/rand"
	"testing"

	"whisper/internal/bpu"
	"whisper/internal/cpu"
	"whisper/internal/isa"
	"whisper/internal/mem"
	"whisper/internal/paging"
	"whisper/internal/pipeline"
	"whisper/internal/pmu"
	"whisper/internal/tlb"
)

// Differential testing: random programs must leave identical architectural
// state on the sequential interpreter and the out-of-order pipeline,
// whatever speculation the pipeline performed along the way.

const (
	dtCodeBase  = 0x400000
	dtDataBase  = 0x500000
	dtDataPages = 8
	dtStackBase = 0x7f0000
)

// genRegs are the registers random programs may touch (RSP is reserved for
// the stack discipline).
var genRegs = []isa.Reg{isa.RAX, isa.RBX, isa.RCX, isa.RDX, isa.RSI, isa.RDI, isa.R8, isa.R9}

type env struct {
	as   *paging.AddressSpace
	phys *mem.Physical
}

func newDiffEnv(t *testing.T) env {
	t.Helper()
	phys := mem.NewPhysical()
	as := paging.NewAddressSpace(phys, paging.NewFrameAllocator(0x100000))
	for _, m := range []struct {
		va    uint64
		n     int
		flags uint64
	}{
		{dtCodeBase, 16, paging.FlagU},
		{dtDataBase, dtDataPages, paging.FlagU | paging.FlagW},
		{dtStackBase, 4, paging.FlagU | paging.FlagW},
	} {
		if _, err := as.MapRange(m.va, m.n, m.flags); err != nil {
			t.Fatal(err)
		}
	}
	return env{as: as, phys: phys}
}

func (e env) seedData(r *rand.Rand) {
	buf := make([]byte, dtDataPages*paging.PageSize4K)
	r.Read(buf)
	pa, _ := e.as.Translate(dtDataBase)
	e.phys.StoreBytes(pa, buf)
}

func (e env) dataBytes() []byte {
	pa, _ := e.as.Translate(dtDataBase)
	return e.phys.LoadBytes(pa, dtDataPages*paging.PageSize4K)
}

// genProgram emits a random but always-terminating program: straight-line
// ALU/memory blocks, forward branches, bounded countdown loops, and calls to
// leaf functions.
func genProgram(r *rand.Rand) *isa.Program {
	b := isa.NewBuilder(dtCodeBase)
	b.MovImm(isa.RSP, dtStackBase+0x2000)
	for _, reg := range genRegs {
		b.MovImm(reg, int64(r.Uint64()>>16))
	}
	labels := 0
	newLabel := func() string {
		labels++
		return "L" + string(rune('a'+labels%26)) + string(rune('0'+labels/26%10)) + string(rune('0'+labels/260))
	}
	reg := func() isa.Reg { return genRegs[r.Intn(len(genRegs))] }
	dataAddr := func(dst isa.Reg) {
		off := int64(r.Intn(dtDataPages*paging.PageSize4K/8)) * 8
		b.MovImm(dst, dtDataBase+off)
	}
	emitBlock := func(n int) {
		for i := 0; i < n; i++ {
			switch r.Intn(12) {
			case 0:
				b.MovImm(reg(), int64(int32(r.Uint32())))
			case 1:
				b.Mov(reg(), reg())
			case 2:
				b.Add(reg(), reg(), reg())
			case 3:
				b.Sub(reg(), reg(), reg())
			case 4:
				b.Xor(reg(), reg(), reg())
			case 5:
				b.Imul(reg(), reg(), reg())
			case 6:
				b.AndImm(reg(), reg(), int64(r.Uint32()))
			case 7:
				b.ShlImm(reg(), reg(), int64(r.Intn(63)))
			case 8:
				b.ShrImm(reg(), reg(), int64(r.Intn(63)))
			case 9: // load
				a := reg()
				dataAddr(a)
				d := reg()
				if d == a {
					d = isa.RAX
				}
				b.Load(d, a, 0, []int{1, 2, 4, 8}[r.Intn(4)])
			case 10: // store
				a := reg()
				dataAddr(a)
				s := reg()
				b.Store(a, 0, s, []int{1, 2, 4, 8}[r.Intn(4)])
			case 11: // forward branch over a couple of instructions
				skip := newLabel()
				b.CmpImm(reg(), int64(r.Intn(16)))
				b.Jcc(isa.Cond(r.Intn(8)), skip)
				b.Add(reg(), reg(), reg())
				b.Xor(reg(), reg(), reg())
				b.Label(skip)
			}
		}
	}
	// Main body: blocks, a bounded loop, a call.
	emitBlock(10 + r.Intn(20))
	loop := newLabel()
	b.MovImm(isa.R15, int64(2+r.Intn(6)))
	b.Label(loop)
	emitBlock(4 + r.Intn(8))
	b.SubImm(isa.R15, isa.R15, 1)
	b.CmpImm(isa.R15, 0)
	b.Jcc(isa.CondNE, loop)
	b.Call("fn")
	emitBlock(6 + r.Intn(10))
	b.Call("fn")
	b.Jmp("end")
	// Leaf function.
	b.Label("fn")
	emitBlock(3 + r.Intn(6))
	b.Ret()
	b.Label("end")
	b.Halt()
	return b.MustAssemble()
}

func newDiffPipeline(t *testing.T, e env) *pipeline.Pipeline {
	t.Helper()
	cfg := pipeline.DefaultConfig()
	cfg.NoiseSigma = 0
	cfg.InterruptProb = 0
	p, err := pipeline.New(cfg, pipeline.Resources{
		Hier: mem.NewHierarchy(e.phys, mem.DefaultHierarchyConfig()),
		LFB:  mem.NewLFB(10),
		AS:   e.as,
		DTLB: tlb.New("dtlb", tlb.DefaultDTLBConfig()),
		ITLB: tlb.New("itlb", tlb.DefaultITLBConfig()),
		BPU:  bpu.New(bpu.DefaultConfig()),
		PMU:  pmu.New(),
		Rand: rand.New(rand.NewSource(1)),
	})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestDifferentialPipelineVsInterpreter(t *testing.T) {
	const programs = 120
	for i := 0; i < programs; i++ {
		seed := int64(1000 + i)
		gen := rand.New(rand.NewSource(seed))
		prog := genProgram(gen)

		// Interpreter world.
		ei := newDiffEnv(t)
		ei.seedData(rand.New(rand.NewSource(seed * 7)))
		im := New(ei.as)
		if err := im.Run(prog, 1_000_000); err != nil {
			t.Fatalf("seed %d: interp: %v", seed, err)
		}

		// Pipeline world (identical initial memory).
		ep := newDiffEnv(t)
		ep.seedData(rand.New(rand.NewSource(seed * 7)))
		pp := newDiffPipeline(t, ep)
		if _, err := pp.Exec(prog, 10_000_000); err != nil {
			t.Fatalf("seed %d: pipeline: %v", seed, err)
		}

		for _, r := range append(append([]isa.Reg{}, genRegs...), isa.RSP, isa.R15) {
			if got, want := pp.Reg(r), im.Regs[r]; got != want {
				t.Fatalf("seed %d: reg %v: pipeline %#x, interp %#x", seed, r, got, want)
			}
		}
		gotMem, wantMem := ep.dataBytes(), ei.dataBytes()
		for j := range wantMem {
			if gotMem[j] != wantMem[j] {
				t.Fatalf("seed %d: memory diverges at +%#x: pipeline %#x, interp %#x",
					seed, j, gotMem[j], wantMem[j])
			}
		}
	}
}

// diffModel is the CPU model the Reset-reuse difftest runs on: the default
// configuration with measurement noise pinned off, matching newDiffPipeline.
func diffModel() cpu.Model {
	m := cpu.I7_7700()
	m.Pipe.NoiseSigma = 0
	m.Pipe.InterruptProb = 0
	return m
}

// mapDiffEnv installs the difftest memory layout into a machine's address
// space and seeds the data pages, mirroring newDiffEnv on a cpu.Machine.
func mapDiffEnv(t *testing.T, m *cpu.Machine, r *rand.Rand) {
	t.Helper()
	as := m.Pipe.AddressSpace()
	for _, rg := range []struct {
		va    uint64
		n     int
		flags uint64
	}{
		{dtCodeBase, 16, paging.FlagU},
		{dtDataBase, dtDataPages, paging.FlagU | paging.FlagW},
		{dtStackBase, 4, paging.FlagU | paging.FlagW},
	} {
		if _, err := as.MapRange(rg.va, rg.n, rg.flags); err != nil {
			t.Fatal(err)
		}
	}
	buf := make([]byte, dtDataPages*paging.PageSize4K)
	r.Read(buf)
	pa, _ := as.Translate(dtDataBase)
	m.Phys.StoreBytes(pa, buf)
}

// TestDifferentialResetReuse pins the machine-reuse contract the experiment
// pool relies on: running a program on a machine recycled with Machine.Reset
// is bit-identical — same architectural state, same cycle count — to running
// it on a freshly constructed pipeline, and a second Reset+run on the same
// machine reproduces the first exactly.
func TestDifferentialResetReuse(t *testing.T) {
	const programs = 40
	reused := cpu.MustMachine(diffModel(), 1)
	for i := 0; i < programs; i++ {
		seed := int64(9000 + i)
		prog := genProgram(rand.New(rand.NewSource(seed)))

		// Reference world: fresh environment, fresh pipeline.
		ef := newDiffEnv(t)
		ef.seedData(rand.New(rand.NewSource(seed * 11)))
		pf := newDiffPipeline(t, ef)
		if _, err := pf.Exec(prog, 10_000_000); err != nil {
			t.Fatalf("seed %d: fresh: %v", seed, err)
		}
		wantMem := ef.dataBytes()

		// Reused world: one machine, Reset before every run, each program run
		// twice on it.
		for round := 0; round < 2; round++ {
			reused.Reset(1)
			mapDiffEnv(t, reused, rand.New(rand.NewSource(seed*11)))
			if _, err := reused.Pipe.Exec(prog, 10_000_000); err != nil {
				t.Fatalf("seed %d round %d: reused: %v", seed, round, err)
			}
			if got, want := reused.Pipe.Cycle(), pf.Cycle(); got != want {
				t.Fatalf("seed %d round %d: cycles %d, fresh %d", seed, round, got, want)
			}
			for _, r := range append(append([]isa.Reg{}, genRegs...), isa.RSP, isa.R15) {
				if got, want := reused.Pipe.Reg(r), pf.Reg(r); got != want {
					t.Fatalf("seed %d round %d: reg %v: reused %#x, fresh %#x",
						seed, round, r, got, want)
				}
			}
			as := reused.Pipe.AddressSpace()
			pa, _ := as.Translate(dtDataBase)
			gotMem := reused.Phys.LoadBytes(pa, dtDataPages*paging.PageSize4K)
			for j := range wantMem {
				if gotMem[j] != wantMem[j] {
					t.Fatalf("seed %d round %d: memory diverges at +%#x", seed, round, j)
				}
			}
		}
	}
}

func TestInterpFaultPaths(t *testing.T) {
	e := newDiffEnv(t)
	m := New(e.as)
	// Unsuppressed fault errors out.
	p := isa.NewBuilder(dtCodeBase).
		MovImm(isa.RBX, 0x40000000).
		LoadQ(isa.RAX, isa.RBX, 0).
		Halt().
		MustAssemble()
	if err := m.Run(p, 1000); err == nil {
		t.Fatal("unsuppressed fault did not error")
	}
	// Signal handler suppresses.
	p2 := isa.NewBuilder(dtCodeBase).
		MovImm(isa.RBX, 0x40000000).
		LoadQ(isa.RAX, isa.RBX, 0).
		Halt().
		Label("h").
		MovImm(isa.RCX, 9).
		Halt().
		MustAssemble()
	m2 := New(e.as)
	m2.SetSignalHandler(3)
	if err := m2.Run(p2, 1000); err != nil {
		t.Fatal(err)
	}
	if m2.Regs[isa.RCX] != 9 {
		t.Fatal("handler did not run")
	}
	// TSX abort restores registers.
	p3 := isa.NewBuilder(dtCodeBase).
		MovImm(isa.RAX, 5).
		Xbegin("abort").
		MovImm(isa.RAX, 6).
		MovImm(isa.RBX, 0x40000000).
		LoadQ(isa.RCX, isa.RBX, 0).
		Xend().
		Halt().
		Label("abort").
		MovImm(isa.RDX, 1).
		Halt().
		MustAssemble()
	m3 := New(e.as)
	if err := m3.Run(p3, 1000); err != nil {
		t.Fatal(err)
	}
	if m3.Regs[isa.RAX] != 5 || m3.Regs[isa.RDX] != 1 {
		t.Fatalf("txn rollback wrong: rax=%d rdx=%d", m3.Regs[isa.RAX], m3.Regs[isa.RDX])
	}
	// Write to read-only page faults.
	ro := isa.NewBuilder(dtCodeBase).
		MovImm(isa.RBX, dtCodeBase). // code is mapped read-only user
		StoreQ(isa.RBX, 0, isa.RAX).
		Halt().
		MustAssemble()
	if err := New(e.as).Run(ro, 1000); err == nil {
		t.Fatal("read-only store did not fault")
	}
}

func TestInterpBudget(t *testing.T) {
	e := newDiffEnv(t)
	p := isa.NewBuilder(dtCodeBase).Label("x").Jmp("x").MustAssemble()
	if err := New(e.as).Run(p, 100); err != ErrBudget {
		t.Fatalf("err = %v, want ErrBudget", err)
	}
}

// genTransientProgram extends the generator with suppressed-fault transient
// blocks: TSX sections and signal-handled wild loads whose transient
// side effects must never become architectural.
func genTransientProgram(r *rand.Rand) (*isa.Program, int) {
	b := isa.NewBuilder(dtCodeBase)
	b.MovImm(isa.RSP, dtStackBase+0x2000)
	for _, reg := range genRegs {
		b.MovImm(reg, int64(r.Uint64()>>16))
	}
	reg := func() isa.Reg { return genRegs[r.Intn(len(genRegs))] }
	label := 0
	newLabel := func() string {
		label++
		return fmt.Sprintf("t%d", label)
	}
	block := func(n int) {
		for i := 0; i < n; i++ {
			switch r.Intn(4) {
			case 0:
				b.Add(reg(), reg(), reg())
			case 1:
				b.MovImm(reg(), int64(int32(r.Uint32())))
			case 2:
				a := reg()
				b.MovImm(a, dtDataBase+int64(r.Intn(64))*8)
				d := reg()
				if d == a {
					d = isa.RAX
				}
				b.LoadQ(d, a, 0)
			case 3:
				a := reg()
				b.MovImm(a, dtDataBase+int64(r.Intn(64))*8)
				b.StoreQ(a, 0, reg())
			}
		}
	}
	block(4 + r.Intn(6))
	// TSX transient block: wild load + dependent work, always aborts.
	abort := newLabel()
	end := newLabel()
	b.Xbegin(abort)
	block(1 + r.Intn(3))
	wild := reg()
	b.MovImm(wild, 0x40000000+int64(r.Intn(1<<20))*4096)
	b.LoadB(isa.RAX, wild, 0) // faults; forwards transiently
	block(1 + r.Intn(3))      // transient-only work
	b.Xend()
	b.Jmp(end)
	b.Label(abort)
	b.MovImm(isa.R14, 0xAB)
	b.Label(end)
	block(3 + r.Intn(4))
	// Signal-suppressed transient block.
	hLabel := newLabel()
	done := newLabel()
	b.MovImm(wild, 0x50000000+int64(r.Intn(1<<20))*4096)
	b.LoadB(isa.RBX, wild, 0) // faults → handler
	block(1 + r.Intn(3))      // transient-only
	b.Jmp(done)
	handlerIdx := b.Pos()
	b.Label(hLabel)
	b.MovImm(isa.R13, 0xCD)
	b.Label(done)
	block(2 + r.Intn(4))
	b.Halt()
	return b.MustAssemble(), handlerIdx
}

func TestDifferentialTransientBlocks(t *testing.T) {
	const programs = 100
	for i := 0; i < programs; i++ {
		seed := int64(5000 + i)
		gen := rand.New(rand.NewSource(seed))
		prog, handler := genTransientProgram(gen)

		ei := newDiffEnv(t)
		ei.seedData(rand.New(rand.NewSource(seed * 3)))
		im := New(ei.as)
		im.SetSignalHandler(handler)
		if err := im.Run(prog, 1_000_000); err != nil {
			t.Fatalf("seed %d: interp: %v", seed, err)
		}

		ep := newDiffEnv(t)
		ep.seedData(rand.New(rand.NewSource(seed * 3)))
		pp := newDiffPipeline(t, ep)
		pp.SetSignalHandler(handler)
		if _, err := pp.Exec(prog, 10_000_000); err != nil {
			t.Fatalf("seed %d: pipeline: %v", seed, err)
		}
		pp.SetSignalHandler(-1)

		regs := append(append([]isa.Reg{}, genRegs...), isa.RSP, isa.R13, isa.R14)
		for _, r := range regs {
			if got, want := pp.Reg(r), im.Regs[r]; got != want {
				t.Fatalf("seed %d: reg %v: pipeline %#x, interp %#x", seed, r, got, want)
			}
		}
		gotMem, wantMem := ep.dataBytes(), ei.dataBytes()
		for j := range wantMem {
			if gotMem[j] != wantMem[j] {
				t.Fatalf("seed %d: memory diverges at +%#x", seed, j)
			}
		}
	}
}
