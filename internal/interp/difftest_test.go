package interp_test

import (
	"bytes"
	"math/rand"
	"testing"

	"whisper/internal/cpu"
	"whisper/internal/fuzzgen"
	"whisper/internal/interp"
	"whisper/internal/isa"
)

// Differential testing: generated programs must leave identical architectural
// state on the sequential interpreter and the out-of-order pipeline, whatever
// speculation the pipeline performed along the way. Program generation, the
// memory layout and the engine comparison all live in internal/fuzzgen — the
// same code the fuzz targets and cmd/whisperfuzz campaigns drive — so a
// divergence found by either shows up here as a seed, and vice versa.

func seedStream(seed int64, n int) []byte {
	buf := make([]byte, n)
	rand.New(rand.NewSource(seed)).Read(buf)
	return buf
}

func TestDifferentialPipelineVsInterpreter(t *testing.T) {
	const programs = 120
	for i := 0; i < programs; i++ {
		seed := int64(1000 + i)
		if err := fuzzgen.CheckInterpVsPipeline(seedStream(seed, 768)); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

// TestDifferentialTransientBlocks hammers a second stream family; the
// generator's TSX and signal-handler sections make suppressed-fault transient
// windows (whose side effects must never become architectural) common here.
func TestDifferentialTransientBlocks(t *testing.T) {
	const programs = 100
	for i := 0; i < programs; i++ {
		seed := int64(5000 + i)
		if err := fuzzgen.CheckInterpVsPipeline(seedStream(seed, 768)); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

// TestDifferentialResetReuse pins the machine-reuse contract the experiment
// pool relies on: running a program on a machine recycled with Machine.Reset
// is bit-identical — same architectural state, same cycle count — to running
// it on a freshly constructed pipeline, and a second Reset+run on the same
// machine reproduces the first exactly.
func TestDifferentialResetReuse(t *testing.T) {
	const programs = 40
	reused := cpu.MustMachine(fuzzgen.Model(), 1)
	for i := 0; i < programs; i++ {
		seed := int64(9000 + i)
		spec := fuzzgen.GenerateSpec(seedStream(seed, 768))

		// Reference world: fresh environment, fresh pipeline.
		ef := fuzzgen.MustEnv()
		ef.SeedData(spec.MemSeed)
		pf, err := ef.NewPipeline()
		if err != nil {
			t.Fatal(err)
		}
		pf.SetSignalHandler(spec.Handler)
		if _, err := pf.Exec(spec.Prog, 50_000_000); err != nil {
			t.Fatalf("seed %d: fresh: %v", seed, err)
		}
		wantMem := ef.DataBytes()

		// Reused world: one machine, Reset before every run, each program run
		// twice on it.
		for round := 0; round < 2; round++ {
			reused.Reset(1)
			if err := fuzzgen.InstallEnv(reused, spec.MemSeed); err != nil {
				t.Fatal(err)
			}
			reused.Pipe.SetSignalHandler(spec.Handler)
			if _, err := reused.Pipe.Exec(spec.Prog, 50_000_000); err != nil {
				t.Fatalf("seed %d round %d: reused: %v", seed, round, err)
			}
			if got, want := reused.Pipe.Cycle(), pf.Cycle(); got != want {
				t.Fatalf("seed %d round %d: cycles %d, fresh %d", seed, round, got, want)
			}
			for _, r := range fuzzgen.CompareRegs() {
				if got, want := reused.Pipe.Reg(r), pf.Reg(r); got != want {
					t.Fatalf("seed %d round %d: reg %v: reused %#x, fresh %#x",
						seed, round, r, got, want)
				}
			}
			if !bytes.Equal(fuzzgen.MachineDataBytes(reused), wantMem) {
				t.Fatalf("seed %d round %d: memory diverges", seed, round)
			}
		}
	}
}

func TestInterpFaultPaths(t *testing.T) {
	e := fuzzgen.MustEnv()
	m := interp.New(e.AS)
	// Unsuppressed fault errors out.
	p := isa.NewBuilder(fuzzgen.CodeBase).
		MovImm(isa.RBX, 0x40000000).
		LoadQ(isa.RAX, isa.RBX, 0).
		Halt().
		MustAssemble()
	if err := m.Run(p, 1000); err == nil {
		t.Fatal("unsuppressed fault did not error")
	}
	// Signal handler suppresses.
	p2 := isa.NewBuilder(fuzzgen.CodeBase).
		MovImm(isa.RBX, 0x40000000).
		LoadQ(isa.RAX, isa.RBX, 0).
		Halt().
		Label("h").
		MovImm(isa.RCX, 9).
		Halt().
		MustAssemble()
	m2 := interp.New(e.AS)
	m2.SetSignalHandler(3)
	if err := m2.Run(p2, 1000); err != nil {
		t.Fatal(err)
	}
	if m2.Regs[isa.RCX] != 9 {
		t.Fatal("handler did not run")
	}
	// TSX abort restores registers.
	p3 := isa.NewBuilder(fuzzgen.CodeBase).
		MovImm(isa.RAX, 5).
		Xbegin("abort").
		MovImm(isa.RAX, 6).
		MovImm(isa.RBX, 0x40000000).
		LoadQ(isa.RCX, isa.RBX, 0).
		Xend().
		Halt().
		Label("abort").
		MovImm(isa.RDX, 1).
		Halt().
		MustAssemble()
	m3 := interp.New(e.AS)
	if err := m3.Run(p3, 1000); err != nil {
		t.Fatal(err)
	}
	if m3.Regs[isa.RAX] != 5 || m3.Regs[isa.RDX] != 1 {
		t.Fatalf("txn rollback wrong: rax=%d rdx=%d", m3.Regs[isa.RAX], m3.Regs[isa.RDX])
	}
	// Write to read-only page faults.
	ro := isa.NewBuilder(fuzzgen.CodeBase).
		MovImm(isa.RBX, fuzzgen.CodeBase). // code is mapped read-only user
		StoreQ(isa.RBX, 0, isa.RAX).
		Halt().
		MustAssemble()
	if err := interp.New(e.AS).Run(ro, 1000); err == nil {
		t.Fatal("read-only store did not fault")
	}
}

func TestInterpBudget(t *testing.T) {
	e := fuzzgen.MustEnv()
	p := isa.NewBuilder(fuzzgen.CodeBase).Label("x").Jmp("x").MustAssemble()
	if err := interp.New(e.AS).Run(p, 100); err != interp.ErrBudget {
		t.Fatalf("err = %v, want ErrBudget", err)
	}
}
