package kernel

import (
	"testing"

	"whisper/internal/cpu"
)

func TestMechanicalEvictionRemovesDTLBEntries(t *testing.T) {
	k := boot(t, Config{KASLR: true, KPTI: true}, 20)
	m := k.Machine()
	// Plant a 4K DTLB entry, as a faulting trampoline probe would on
	// fill-on-fault hardware.
	tramp := k.KASLRBase() + TrampolineOffset
	m.DTLB.Insert(k.UserAS().WalkVA(tramp))
	if _, ok := m.DTLB.Lookup(tramp); !ok {
		t.Fatal("entry not planted")
	}
	cycles, err := k.EvictTLBMechanically(128, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := m.DTLB.Lookup(tramp); ok {
		t.Fatal("capacity sweep did not evict the 4K entry")
	}
	if cycles == 0 {
		t.Fatal("sweep consumed no time")
	}
}

func TestMechanicalSweepSpares2MPartition(t *testing.T) {
	// The FLARE-bypass asymmetry, by construction: an unprivileged 4 KiB
	// working-set sweep cannot touch the kernel image's 2 MiB entries.
	k := boot(t, Config{KASLR: true}, 23)
	m := k.Machine()
	m.DTLB.Insert(k.KernelAS().WalkVA(k.KASLRBase())) // 2M huge entry
	if _, err := k.EvictTLBMechanically(128, 2); err != nil {
		t.Fatal(err)
	}
	if _, ok := m.DTLB.Lookup(k.KASLRBase()); !ok {
		t.Fatal("4K sweep evicted a 2M entry; partitions broken")
	}
}

func TestMechanicalAndAnalyticEvictionAgree(t *testing.T) {
	// EvictDTLB4K (analytic) and the mechanical sweep must agree on the
	// observable that matters: planted 4K entries are gone, 2M entries
	// survive.
	kA := boot(t, Config{KASLR: true}, 21)
	kB := boot(t, Config{KASLR: true}, 21)
	for _, k := range []*Kernel{kA, kB} {
		m := k.Machine()
		m.DTLB.Insert(k.KernelAS().WalkVA(k.KASLRBase())) // 2M
		m.DTLB.Insert(k.UserAS().WalkVA(UserDataBase))    // 4K
	}
	kA.EvictDTLB4K()
	if _, err := kB.EvictTLBMechanically(128, 2); err != nil {
		t.Fatal(err)
	}
	for name, k := range map[string]*Kernel{"analytic": kA, "mechanical": kB} {
		m := k.Machine()
		if _, ok := m.DTLB.Lookup(UserDataBase); ok {
			t.Errorf("%s: 4K entry survived", name)
		}
		if _, ok := m.DTLB.Lookup(k.KASLRBase()); !ok {
			t.Errorf("%s: 2M entry lost", name)
		}
	}
}

func TestEvictionProgramValidation(t *testing.T) {
	if _, err := EvictionProgram(0, 1); err == nil {
		t.Error("zero pages accepted")
	}
	if _, err := EvictionProgram(UserEvictPgs+1, 1); err == nil {
		t.Error("oversized working set accepted")
	}
	if _, err := EvictionProgram(8, 0); err == nil {
		t.Error("zero rounds accepted")
	}
}

func TestEvictionCostSanity(t *testing.T) {
	// The analytic Skip cost should be the same order as (or larger than,
	// since it also models cache eviction) the mechanical sweep's cost.
	k := boot(t, Config{KASLR: true}, 22)
	cycles, err := k.EvictTLBMechanically(128, 2)
	if err != nil {
		t.Fatal(err)
	}
	if cycles > EvictTLBCost {
		t.Fatalf("mechanical sweep (%d cycles) costs more than the analytic model (%d)",
			cycles, EvictTLBCost)
	}
	if cycles < 1000 {
		t.Fatalf("mechanical sweep implausibly cheap: %d cycles", cycles)
	}
}

var _ = cpu.I7_7700 // keep the import stable for helpers
