package kernel

import (
	"testing"

	"whisper/internal/cpu"
	"whisper/internal/isa"
)

func boot(t *testing.T, cfg Config, seed int64) *Kernel {
	t.Helper()
	m := cpu.MustMachine(cpu.I9_10980XE(), seed)
	k, err := Boot(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return k
}

func TestBootMapsUserRegions(t *testing.T) {
	k := boot(t, Config{KASLR: true}, 1)
	for _, va := range []uint64{UserCodeBase, UserDataBase, UserStackBase} {
		if _, ok := k.UserAS().Translate(va); !ok {
			t.Errorf("user region %#x unmapped", va)
		}
	}
}

func TestKASLRRandomisesBase(t *testing.T) {
	bases := map[uint64]bool{}
	for seed := int64(0); seed < 8; seed++ {
		k := boot(t, Config{KASLR: true}, seed)
		b := k.KASLRBase()
		if b < KASLRRegionStart || b >= SlotVA(NumSlots) {
			t.Fatalf("base %#x outside region", b)
		}
		if b%SlotSize != 0 {
			t.Fatalf("base %#x not slot-aligned", b)
		}
		bases[b] = true
	}
	if len(bases) < 4 {
		t.Fatalf("only %d distinct bases over 8 seeds", len(bases))
	}
	if k := boot(t, Config{}, 3); k.KASLRBase() != KASLRRegionStart {
		t.Error("KASLR off should pin base to region start")
	}
}

func TestKernelImageSupervisorOnly(t *testing.T) {
	k := boot(t, Config{KASLR: true}, 2)
	w := k.KernelAS().WalkVA(k.KASLRBase())
	if !w.Present || !w.Huge {
		t.Fatalf("image walk = %+v", w)
	}
	if w.User() {
		t.Fatal("kernel image user-accessible")
	}
}

func TestKPTIHidesKernelButKeepsTrampoline(t *testing.T) {
	k := boot(t, Config{KASLR: true, KPTI: true}, 3)
	if _, ok := k.UserAS().Translate(k.KASLRBase()); ok {
		t.Fatal("kernel base visible under KPTI")
	}
	if _, ok := k.UserAS().Translate(k.SecretVA()); ok {
		t.Fatal("direct map visible under KPTI")
	}
	if _, ok := k.UserAS().Translate(k.KASLRBase() + TrampolineOffset); !ok {
		t.Fatal("trampoline missing under KPTI")
	}
	// The probe target for the true slot is exactly the trampoline.
	if got := k.ProbeTarget(k.BaseSlot()); got != k.KASLRBase()+TrampolineOffset {
		t.Fatalf("ProbeTarget = %#x", got)
	}
}

func TestNoKPTIKernelMappedSupervisor(t *testing.T) {
	k := boot(t, Config{KASLR: true}, 4)
	if k.UserAS() != k.KernelAS() {
		t.Fatal("without KPTI user and kernel AS should be shared")
	}
	if _, ok := k.UserAS().Translate(k.SecretVA()); !ok {
		t.Fatal("direct map should be present (supervisor) without KPTI")
	}
}

func TestFLAREMapsAllProbeTargets(t *testing.T) {
	for _, kpti := range []bool{false, true} {
		k := boot(t, Config{KASLR: true, KPTI: kpti, FLARE: true}, 5)
		for s := 0; s < NumSlots; s++ {
			if _, ok := k.UserAS().Translate(k.ProbeTarget(s)); !ok {
				t.Fatalf("kpti=%v: probe target of slot %d unmapped under FLARE", kpti, s)
			}
		}
		// FLARE dummies are 4K; the real image (no KPTI) is 2M.
		if !kpti {
			real := k.UserAS().WalkVA(k.ProbeTarget(k.BaseSlot()))
			miss := k.UserAS().WalkVA(k.ProbeTarget((k.BaseSlot() + ImageSlots + 3) % NumSlots))
			if !real.Huge || miss.Huge {
				t.Fatalf("kpti=%v: FLARE page sizes wrong: real.Huge=%v dummy.Huge=%v",
					kpti, real.Huge, miss.Huge)
			}
		}
	}
}

func TestFGKASLRShufflesFunctions(t *testing.T) {
	plain := boot(t, Config{KASLR: true}, 6)
	shuffled := boot(t, Config{KASLR: true, FGKASLR: true}, 6)
	// Same seed → same base; FGKASLR must still move functions.
	if plain.KASLRBase() != shuffled.KASLRBase() {
		t.Skip("seeds diverged; cannot compare")
	}
	moved := 0
	for name := range KernelFunctions {
		a, err := plain.FunctionVA(name)
		if err != nil {
			t.Fatal(err)
		}
		b, err := shuffled.FunctionVA(name)
		if err != nil {
			t.Fatal(err)
		}
		if a != b {
			moved++
		}
	}
	if moved < 2 {
		t.Fatalf("FGKASLR moved only %d functions", moved)
	}
	if _, err := plain.FunctionVA("no_such_symbol"); err == nil {
		t.Fatal("unknown symbol resolved")
	}
}

func TestSecretWriteAndVictimTouch(t *testing.T) {
	k := boot(t, Config{KASLR: true}, 7)
	k.WriteSecret([]byte("TOPSECRET"))
	pa, ok := k.KernelAS().Translate(k.SecretVA())
	if !ok {
		t.Fatal("secret unmapped in kernel AS")
	}
	if got := string(k.Machine().Phys.LoadBytes(pa, 9)); got != "TOPSECRET" {
		t.Fatalf("secret = %q", got)
	}
	k.VictimTouch(3)
	stale, okLFB := k.Machine().LFB.StaleData()
	if !okLFB || stale != 'S' {
		t.Fatalf("LFB stale = (%c, %v), want S", rune(stale), okLFB)
	}
}

func TestEvictionPrimitives(t *testing.T) {
	k := boot(t, Config{KASLR: true}, 8)
	m := k.Machine()

	// Warm a TLB entry via a pipeline load.
	p := isa.NewBuilder(UserCodeBase).
		MovImm(isa.RBX, UserDataBase).
		LoadQ(isa.RAX, isa.RBX, 0).
		Halt().
		MustAssemble()
	if _, err := m.Pipe.Exec(p, 100000); err != nil {
		t.Fatal(err)
	}
	if m.DTLB.ValidEntries() == 0 {
		t.Fatal("no DTLB entries after load")
	}
	c0 := m.Pipe.Cycle()
	k.EvictTLB()
	if m.DTLB.ValidEntries() != 0 {
		t.Fatal("EvictTLB left entries")
	}
	if m.Pipe.Cycle()-c0 != EvictTLBCost {
		t.Fatalf("EvictTLB cost = %d", m.Pipe.Cycle()-c0)
	}
}

func TestEvict4KSpares2M(t *testing.T) {
	k := boot(t, Config{KASLR: true}, 9)
	m := k.Machine()
	// Insert a 2M and a 4K entry directly.
	m.DTLB.Insert(k.KernelAS().WalkVA(k.KASLRBase()))
	m.DTLB.Insert(k.UserAS().WalkVA(UserDataBase))
	k.EvictDTLB4K()
	if _, ok := m.DTLB.Lookup(k.KASLRBase()); !ok {
		t.Fatal("2M entry evicted by 4K sweep")
	}
	if _, ok := m.DTLB.Lookup(UserDataBase); ok {
		t.Fatal("4K entry survived 4K sweep")
	}
}

func TestEvictProbePTEs(t *testing.T) {
	k := boot(t, Config{KASLR: true}, 10)
	m := k.Machine()
	s := k.BaseSlot()
	w := k.UserAS().WalkVA(k.ProbeTarget(s))
	for _, pte := range w.PTEReads() {
		m.Hier.AccessData(pte) // warm
	}
	k.EvictProbePTEs(s)
	for _, pte := range w.PTEReads() {
		if m.Hier.L1D.Contains(pte) {
			t.Fatalf("PTE line %#x still cached", pte)
		}
	}
}

func TestProbeTargetsDistinct(t *testing.T) {
	k := boot(t, Config{KASLR: true, KPTI: true}, 11)
	seen := map[uint64]bool{}
	for s := 0; s < NumSlots; s++ {
		va := k.ProbeTarget(s)
		if seen[va] {
			t.Fatalf("duplicate probe target %#x", va)
		}
		seen[va] = true
	}
	// Exactly one probe target translates under KPTI: the true slot's.
	mappedCount := 0
	for s := 0; s < NumSlots; s++ {
		if _, ok := k.UserAS().Translate(k.ProbeTarget(s)); ok {
			mappedCount++
		}
	}
	if mappedCount != 1 {
		t.Fatalf("mapped probe targets = %d, want 1", mappedCount)
	}
}

func TestDockerBootWorks(t *testing.T) {
	k := boot(t, Config{KASLR: true, KPTI: true, Docker: true}, 12)
	if k.KASLRBase() == 0 {
		t.Fatal("docker boot broken")
	}
}
