package kernel

import (
	"fmt"

	"whisper/internal/isa"
)

// This file implements the *mechanical* TLB eviction primitive: an actual
// attacker program that cycles the DTLB's 4 KiB partition by capacity,
// touching one resident page per (set, way). Note what it inherently cannot
// do: 2 MiB-partition entries (kernel image pages) survive a 4 KiB sweep —
// the very asymmetry the FLARE bypass exploits, here demonstrated by
// construction. EvictDTLB4K models this sweep analytically (state change +
// Skip-accounted cycles) because simulating millions of sweep loads across
// a 512-slot KASLR scan adds nothing; the tests in evict_test.go show the
// mechanical and analytic primitives are state-equivalent, which is what
// justifies the accounting.

// evictProgramVA places the eviction loop's code away from the gadgets.
const evictProgramVA = UserCodeBase + 0x70000

// EvictionProgram builds the capacity-eviction loop: `rounds` passes over
// `pages` distinct resident pages (one load each, page stride). 2×64 pages
// covers a 64-entry 4-way DTLB with LRU replacement.
func EvictionProgram(pages, rounds int64) (*isa.Program, error) {
	if pages <= 0 || pages > UserEvictPgs || rounds <= 0 {
		return nil, fmt.Errorf("kernel: bad eviction geometry %d×%d", pages, rounds)
	}
	b := isa.NewBuilder(evictProgramVA)
	b.MovImm(isa.R12, rounds)
	b.Label("round")
	b.MovImm(isa.RBX, UserEvictBase)
	b.MovImm(isa.R11, pages)
	b.Label("page")
	b.LoadQ(isa.RAX, isa.RBX, 0)
	b.AddImm(isa.RBX, isa.RBX, 4096)
	b.SubImm(isa.R11, isa.R11, 1)
	b.CmpImm(isa.R11, 0)
	b.Jcc(isa.CondNE, "page")
	b.SubImm(isa.R12, isa.R12, 1)
	b.CmpImm(isa.R12, 0)
	b.Jcc(isa.CondNE, "round")
	b.Halt()
	return b.Assemble()
}

// EvictTLBMechanically runs the real eviction program on the attacker's
// pipeline (clobbering the scratch registers it uses, like any real sweep
// would) and returns the cycles it consumed.
func (k *Kernel) EvictTLBMechanically(pages, rounds int64) (uint64, error) {
	prog, err := EvictionProgram(pages, rounds)
	if err != nil {
		return 0, err
	}
	res, err := k.m.Pipe.Exec(prog, 10_000_000)
	if err != nil {
		return 0, fmt.Errorf("kernel: eviction sweep: %w", err)
	}
	return res.Cycles, nil
}
