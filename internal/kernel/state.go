package kernel

import "whisper/internal/cpu"

// State is the restorable OS-level residue of a boot: everything a Kernel
// carries beyond the machine itself. The page tables live in the machine's
// physical memory, so the state only needs the two CR3 roots; the KASLR
// slot, secret placement, and (possibly FGKASLR-shuffled) symbol table are
// the boot's random decisions, captured so a restore replays none of them.
type State struct {
	Cfg       Config
	KernRoot  uint64
	UserRoot  uint64
	BaseSlot  int
	KASLRBase uint64
	SecretVA  uint64
	SecretPA  uint64
	// Funcs is shared, not copied: it is immutable after boot, so every
	// kernel restored from the same state may alias it, concurrently.
	Funcs map[string]uint64
}

// CaptureState extracts the kernel's restorable state. The machine state it
// pairs with (page-table frames included) is captured separately via
// cpu.Machine.CopyStateFrom / the snapshot layer.
func (k *Kernel) CaptureState() State {
	return State{
		Cfg:       k.cfg,
		KernRoot:  k.kernAS.Root(),
		UserRoot:  k.userAS.Root(),
		BaseSlot:  k.baseSlot,
		KASLRBase: k.kaslrBase,
		SecretVA:  k.secretVA,
		SecretPA:  k.secretPA,
		Funcs:     k.funcs,
	}
}

// Restore rebuilds a Kernel over a machine whose memory image already matches
// st — i.e. a machine just forked from the snapshot st was captured with. No
// boot work runs and no RNG draw happens: the machine's preallocated
// address-space slots are rebound to the captured roots and the pipeline is
// pointed at the user view flush-free (the TLB contents were copied with the
// machine and must survive).
func Restore(m *cpu.Machine, st State) *Kernel {
	k := &Kernel{
		m:         m,
		cfg:       st.Cfg,
		baseSlot:  st.BaseSlot,
		kaslrBase: st.KASLRBase,
		secretVA:  st.SecretVA,
		secretPA:  st.SecretPA,
		funcs:     st.Funcs,
	}
	k.kernAS = m.BindAddressSpace(0, st.KernRoot)
	if st.UserRoot == st.KernRoot {
		k.userAS = k.kernAS
	} else {
		k.userAS = m.BindAddressSpace(1, st.UserRoot)
	}
	m.Pipe.SetAddressSpace(k.userAS)
	return k
}
