// Package kernel models the operating-system state the attacks interact
// with: user/kernel address spaces, KASLR randomisation of the kernel image,
// KPTI's user-visible trampoline, the FLARE dummy-mapping defense, FGKASLR
// function shuffling, a victim with a secret, and the TLB/cache eviction
// primitives an unprivileged attacker uses between probes.
package kernel

import (
	"errors"
	"fmt"

	"whisper/internal/cpu"
	"whisper/internal/paging"
)

// Fixed virtual-memory layout (Linux-flavoured).
const (
	UserCodeBase  = 0x400000
	UserDataBase  = 0x600000
	UserStackBase = 0x7ff000
	UserEvictBase = 0x900000 // attacker's TLB-eviction working set
	UserCodePages = 128
	UserDataPages = 32
	UserStackPgs  = 4
	UserEvictPgs  = 128

	// The kernel image is randomised within this region with 2 MiB
	// alignment (§4.5): 512 candidate slots.
	KASLRRegionStart = 0xffffffff80000000
	SlotSize         = 2 << 20
	NumSlots         = 512
	ImageSlots       = 16 // 32 MiB kernel image, 2 MiB huge pages

	// KPTI keeps a trampoline mapped at this fixed offset from the kernel
	// base in the user page tables (§4.5).
	TrampolineOffset = 0xe00000

	// Victim secrets live in the direct map (address known per threat model).
	DirectMapBase = 0xffff888000000000
	SecretPages   = 2
)

// Eviction costs (cycles) charged analytically via Machine.Skip; see
// DESIGN.md §4. They model the large-buffer sweeps an unprivileged attacker
// performs between probes.
const (
	EvictTLBCost  = 300_000
	Evict4KCost   = 30_000
	EvictPTECost  = 2_000
	ContextSwitch = 3_000
)

// Config selects the deployed defenses.
type Config struct {
	KASLR   bool
	KPTI    bool
	FLARE   bool
	FGKASLR bool
	Docker  bool // run the attacker inside a container namespace
	// VERW enables the MDS software mitigation: microarchitectural buffers
	// (the LFB) are scrubbed on every context switch back to the attacker,
	// so stale victim data never survives to be sampled (§6.2).
	VERW bool
}

// Kernel is one booted OS instance on a machine.
type Kernel struct {
	m   *cpu.Machine
	cfg Config

	kernAS *paging.AddressSpace // full kernel view
	userAS *paging.AddressSpace // what the attacker's CR3 points at

	baseSlot  int
	kaslrBase uint64
	secretVA  uint64
	secretPA  uint64
	funcs     map[string]uint64
}

// KernelFunctions are the image symbols FGKASLR shuffles; offsets are from
// the (non-FGKASLR) image base.
var KernelFunctions = map[string]uint64{
	"startup_64":          0x000000,
	"entry_SYSCALL_64":    0xe00040,
	"commit_creds":        0x0b71a0,
	"prepare_kernel_cred": 0x0b7560,
	"native_write_cr4":    0x03a980,
	"do_syscall_64":       0xc00120,
}

// Boot installs the OS view on a machine and switches the attacker's
// pipeline into the (possibly KPTI-restricted) user address space.
func Boot(m *cpu.Machine, cfg Config) (*Kernel, error) {
	sp := m.Obs.StartSpan("kernel.boot", m.Pipe.Cycle())
	sp.Attr("cpu", m.Model.Name)
	sp.AttrBool("kaslr", cfg.KASLR)
	sp.AttrBool("kpti", cfg.KPTI)
	sp.AttrBool("flare", cfg.FLARE)
	sp.AttrBool("fgkaslr", cfg.FGKASLR)
	sp.AttrBool("docker", cfg.Docker)
	k, err := bootKernel(m, cfg)
	if err != nil {
		sp.Attr("error", err.Error())
	}
	sp.End(m.Pipe.Cycle())
	return k, err
}

// Reboot resets the machine to the state NewMachine(m.Model, seed) would
// produce and boots a fresh kernel on it. A rebooted machine is bit-identical
// to a freshly constructed and booted one — the Reset rewinds physical
// memory, the frame allocator, caches, TLBs, the predictor, the PMU, and the
// RNG — but reuses the machine's backing storage, which is what makes pooled
// machine reuse (cpu.Pool) observationally safe.
func Reboot(m *cpu.Machine, cfg Config, seed int64) (*Kernel, error) {
	m.Reset(seed)
	return Boot(m, cfg)
}

// bootKernel is Boot's uninstrumented body.
func bootKernel(m *cpu.Machine, cfg Config) (*Kernel, error) {
	k := &Kernel{m: m, cfg: cfg, funcs: make(map[string]uint64)}

	k.kernAS = paging.NewAddressSpace(m.Phys, m.Alloc)
	if err := k.mapUser(k.kernAS); err != nil {
		return nil, err
	}

	// Pick the KASLR slot. Without KASLR the image sits at slot 0.
	k.baseSlot = 0
	if cfg.KASLR {
		k.baseSlot = m.Rand.Intn(NumSlots - ImageSlots)
	}
	k.kaslrBase = SlotVA(k.baseSlot)
	for i := 0; i < ImageSlots; i++ {
		pa := m.Alloc.Alloc2M()
		if err := k.kernAS.MapHuge(k.kaslrBase+uint64(i)*SlotSize, pa, paging.FlagG); err != nil {
			return nil, fmt.Errorf("kernel: map image: %w", err)
		}
	}

	// Victim secret in the direct map (supervisor-only).
	var err error
	k.secretPA, err = k.kernAS.MapRange(DirectMapBase, SecretPages, paging.FlagW)
	if err != nil {
		return nil, fmt.Errorf("kernel: map secret: %w", err)
	}
	k.secretVA = DirectMapBase

	// FGKASLR: shuffle function offsets within the image.
	offsets := make([]uint64, 0, len(KernelFunctions))
	names := make([]string, 0, len(KernelFunctions))
	for n, off := range KernelFunctions {
		names = append(names, n)
		offsets = append(offsets, off)
	}
	if cfg.FGKASLR {
		// Reshuffle until no function keeps its link-time offset: FGKASLR's
		// whole point is that no address survives.
		orig := append([]uint64(nil), offsets...)
		for {
			m.Rand.Shuffle(len(offsets), func(i, j int) {
				offsets[i], offsets[j] = offsets[j], offsets[i]
			})
			fixed := false
			for i := range offsets {
				if offsets[i] == orig[i] {
					fixed = true
					break
				}
			}
			if !fixed {
				break
			}
		}
	}
	for i, n := range names {
		k.funcs[n] = k.kaslrBase + offsets[i]
	}

	// KPTI: the attacker-visible address space drops kernel mappings except
	// the trampoline page.
	if cfg.KPTI {
		k.userAS = paging.NewAddressSpace(m.Phys, m.Alloc)
		if err := k.mapUser(k.userAS); err != nil {
			return nil, err
		}
		trampPA := m.Alloc.Alloc4K()
		if err := k.userAS.Map(k.kaslrBase+TrampolineOffset, trampPA, paging.FlagG); err != nil {
			return nil, fmt.Errorf("kernel: map trampoline: %w", err)
		}
	} else {
		k.userAS = k.kernAS
	}

	// FLARE: back every otherwise-unmapped probe target in the KASLR region
	// with a dummy 4 KiB page so mapping-detection probes see "mapped"
	// everywhere (the state-of-the-art defense of §4.5). The dummies are
	// ordinary (non-global) mappings — unlike the trampoline and the kernel
	// image, which must be global to survive KPTI's CR3 switches. That
	// asymmetry is what the TET FLARE-bypass probes (DESIGN.md §1).
	if cfg.FLARE {
		dummyPA := m.Alloc.Alloc4K()
		for s := 0; s < NumSlots; s++ {
			va := k.ProbeTarget(s)
			if _, mapped := k.userAS.Translate(va); mapped {
				continue
			}
			if err := k.userAS.Map(va&^uint64(paging.PageSize4K-1), dummyPA, 0); err != nil {
				return nil, fmt.Errorf("kernel: FLARE dummy: %w", err)
			}
		}
	}

	m.Pipe.SwitchAddressSpace(k.userAS)
	if cfg.Docker {
		// Container entry: namespace setup costs time but changes nothing
		// the probes can observe (§4.5, Docker experiment).
		m.Pipe.Skip(ContextSwitch * 10)
	}
	return k, nil
}

func (k *Kernel) mapUser(as *paging.AddressSpace) error {
	if _, err := as.MapRange(UserCodeBase, UserCodePages, paging.FlagU); err != nil {
		return fmt.Errorf("kernel: map code: %w", err)
	}
	if _, err := as.MapRange(UserDataBase, UserDataPages, paging.FlagU|paging.FlagW); err != nil {
		return fmt.Errorf("kernel: map data: %w", err)
	}
	if _, err := as.MapRange(UserStackBase, UserStackPgs, paging.FlagU|paging.FlagW); err != nil {
		return fmt.Errorf("kernel: map stack: %w", err)
	}
	if _, err := as.MapRange(UserEvictBase, UserEvictPgs, paging.FlagU|paging.FlagW); err != nil {
		return fmt.Errorf("kernel: map eviction buffer: %w", err)
	}
	return nil
}

// SlotVA returns the virtual address of KASLR candidate slot s.
func SlotVA(s int) uint64 { return KASLRRegionStart + uint64(s)*SlotSize }

// Config returns the boot configuration.
func (k *Kernel) Config() Config { return k.cfg }

// Machine returns the underlying machine.
func (k *Kernel) Machine() *cpu.Machine { return k.m }

// KASLRBase returns the true randomised kernel base (ground truth for
// evaluating the attack, never given to it).
func (k *Kernel) KASLRBase() uint64 { return k.kaslrBase }

// BaseSlot returns the true randomised slot index.
func (k *Kernel) BaseSlot() int { return k.baseSlot }

// ProbeTarget returns the address an attacker probes to test candidate slot
// s: the slot base, or the KPTI trampoline offset within it when KPTI is on.
func (k *Kernel) ProbeTarget(s int) uint64 {
	if k.cfg.KPTI {
		return SlotVA(s) + TrampolineOffset
	}
	return SlotVA(s)
}

// FunctionVA returns the runtime address of a kernel function, honouring
// FGKASLR shuffling. It errors on unknown symbols.
func (k *Kernel) FunctionVA(name string) (uint64, error) {
	va, ok := k.funcs[name]
	if !ok {
		return 0, errors.New("kernel: unknown function " + name)
	}
	return va, nil
}

// SecretVA returns the victim secret's (kernel) virtual address; the threat
// model (§4.2) grants the attacker knowledge of victim addresses.
func (k *Kernel) SecretVA() uint64 { return k.secretVA }

// WriteSecret places the victim's secret bytes.
func (k *Kernel) WriteSecret(data []byte) {
	if len(data) > SecretPages*paging.PageSize4K {
		panic("kernel: secret too large")
	}
	k.m.Phys.StoreBytes(k.secretPA, data)
}

// VictimTouch models one quantum of victim activity: the victim (running on
// the sibling context) loads its secret byte at offset i, moving the value
// through the line fill buffer — the state TET-ZBL samples.
func (k *Kernel) VictimTouch(i int) {
	pa := k.secretPA + uint64(i)
	val := uint64(k.m.Phys.LoadByte(pa))
	k.m.Hier.Flush(pa) // victim working set thrashes in and out of cache
	k.m.Hier.AccessData(pa)
	k.m.LFB.Record(pa, val)
	if k.cfg.VERW {
		// Context switch back to the attacker scrubs the fill buffers.
		k.m.LFB.Scrub()
	}
	k.m.Pipe.Skip(ContextSwitch)
}

// EvictTLB models the attacker's full TLB (and page-structure cache)
// eviction sweep between KASLR probes.
func (k *Kernel) EvictTLB() {
	k.m.DTLB.Flush(false)
	k.m.ITLB.Flush(false)
	k.m.Pipe.Skip(EvictTLBCost)
}

// EvictDTLB4K models a cheaper sweep that only cycles the 4 KiB DTLB
// partition (one touch per set), leaving 2 MiB entries resident — the
// FLARE-bypass primitive.
func (k *Kernel) EvictDTLB4K() {
	k.m.DTLB.Flush4K()
	k.m.Pipe.Skip(Evict4KCost)
}

// SyscallRoundTrip models a minimal syscall (e.g. getpid): under KPTI the
// entry and exit each write CR3, flushing non-global TLB entries while
// global ones (kernel image, trampoline — and notably *not* FLARE's dummy
// pages) survive. Without KPTI there is no CR3 write, only time.
func (k *Kernel) SyscallRoundTrip() {
	if k.cfg.KPTI {
		k.m.Pipe.SwitchAddressSpace(k.kernAS)
		k.m.Pipe.SwitchAddressSpace(k.userAS)
	}
	k.m.Pipe.Skip(ContextSwitch)
}

// EvictProbePTEs flushes the cached page-table lines feeding the probe
// target of slot s, forcing the next walk to DRAM.
func (k *Kernel) EvictProbePTEs(s int) {
	w := k.userAS.WalkVA(k.ProbeTarget(s))
	for _, pte := range w.PTEReads() {
		k.m.Hier.Flush(pte)
	}
	k.m.Pipe.Skip(EvictPTECost)
}

// UserAS returns the attacker-visible address space.
func (k *Kernel) UserAS() *paging.AddressSpace { return k.userAS }

// KernelAS returns the full kernel address space.
func (k *Kernel) KernelAS() *paging.AddressSpace { return k.kernAS }
