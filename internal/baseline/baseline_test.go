package baseline

import (
	"testing"

	"whisper/internal/cpu"
	"whisper/internal/kernel"
	"whisper/internal/stats"
)

func boot(t *testing.T, model cpu.Model, cfg kernel.Config, seed int64) *kernel.Kernel {
	t.Helper()
	m := cpu.MustMachine(model, seed)
	k, err := kernel.Boot(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return k
}

func TestFlushReloadTransfer(t *testing.T) {
	k := boot(t, cpu.I7_7700(), kernel.Config{KASLR: true}, 301)
	c, err := NewFlushReload(k)
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte{0xDE, 0xAD, 0xBE, 0xEF}
	res, err := c.Transfer(payload)
	if err != nil {
		t.Fatal(err)
	}
	if er := stats.ByteErrorRate(res.Data, payload); er > 0.05 {
		t.Fatalf("F+R error rate %.2f (got %x)", er, res.Data)
	}
	if res.Bps <= 0 {
		t.Fatal("no throughput")
	}
}

func TestMeltdownFRLeaksSecret(t *testing.T) {
	k := boot(t, cpu.I7_7700(), kernel.Config{KASLR: true}, 302)
	secret := []byte("CLASSIC")
	k.WriteSecret(secret)
	a, err := NewMeltdownFR(k)
	if err != nil {
		t.Fatal(err)
	}
	res, err := a.Leak(k.SecretVA(), len(secret))
	if err != nil {
		t.Fatal(err)
	}
	if er := stats.ByteErrorRate(res.Data, secret); er > 0.15 {
		t.Fatalf("Meltdown-F+R error %.2f: %q want %q", er, res.Data, secret)
	}
}

func TestMeltdownFRFailsOnPatched(t *testing.T) {
	k := boot(t, cpu.I9_10980XE(), kernel.Config{KASLR: true}, 303)
	secret := []byte("XY")
	k.WriteSecret(secret)
	a, err := NewMeltdownFR(k)
	if err != nil {
		t.Fatal(err)
	}
	res, err := a.Leak(k.SecretVA(), len(secret))
	if err != nil {
		t.Fatal(err)
	}
	if er := stats.ByteErrorRate(res.Data, secret); er < 0.5 {
		t.Fatalf("Meltdown-F+R should fail on patched CPU (err %.2f, %q)", er, res.Data)
	}
}

func TestPrefetchKASLRWorksWithoutFLARE(t *testing.T) {
	for _, kpti := range []bool{false, true} {
		k := boot(t, cpu.I9_10980XE(), kernel.Config{KASLR: true, KPTI: kpti}, 304)
		a, err := NewPrefetchKASLR(k)
		if err != nil {
			t.Fatal(err)
		}
		a.Reps = 3
		res, err := a.Locate()
		if err != nil {
			t.Fatal(err)
		}
		if res.Slot != k.BaseSlot() {
			t.Fatalf("kpti=%v: prefetch-KASLR slot %d, want %d", kpti, res.Slot, k.BaseSlot())
		}
	}
}

func TestPrefetchKASLRDefeatedByFLARE(t *testing.T) {
	// The comparison the paper's §6.1 makes: FLARE stops prefetch-style
	// probes (everything appears mapped) while TET-KASLR still works.
	k := boot(t, cpu.I9_10980XE(), kernel.Config{KASLR: true, KPTI: true, FLARE: true}, 305)
	a, err := NewPrefetchKASLR(k)
	if err != nil {
		t.Fatal(err)
	}
	a.Reps = 3
	res, err := a.Locate()
	if err != nil {
		t.Fatal(err)
	}
	if res.Slot == k.BaseSlot() {
		t.Fatalf("prefetch-KASLR should be defeated by FLARE but found slot %d", res.Slot)
	}
}

func TestConstructorsRejectNil(t *testing.T) {
	if _, err := NewFlushReload(nil); err == nil {
		t.Error("F+R nil accepted")
	}
	if _, err := NewMeltdownFR(nil); err == nil {
		t.Error("MD-F+R nil accepted")
	}
	if _, err := NewPrefetchKASLR(nil); err == nil {
		t.Error("prefetch nil accepted")
	}
}
