// Package baseline implements the comparison attacks the paper positions
// Whisper against: the Flush+Reload cache covert channel [26], classic
// Meltdown with a Flush+Reload probe array [17], and a prefetch-timing KASLR
// probe in the EntryBleed family [18] — the attack class FLARE defeats,
// while TET-KASLR survives.
package baseline

import (
	"errors"
	"fmt"

	"whisper/internal/core"
	"whisper/internal/cpu"
	"whisper/internal/isa"
	"whisper/internal/kernel"
	"whisper/internal/stats"
)

// Shared-memory layout within the user data region.
const (
	sharedLineVA = kernel.UserDataBase + 0x2000 // F+R channel line
	probeArrayVA = kernel.UserDataBase + 0x4000 // Meltdown-F+R probe array
	probeStride  = 256                          // one cache line (plus slack) per value
	frCodeBase   = kernel.UserCodeBase + 0x18000
	mdCodeBase   = kernel.UserCodeBase + 0x20000
	pfCodeBase   = kernel.UserCodeBase + 0x28000
	maxCycles    = 500_000
)

// FlushReload is the classic cache-timing covert channel: the sender touches
// (or not) a shared line; the receiver times a reload and flushes the line
// for the next round.
type FlushReload struct {
	m         *cpu.Machine
	touch     *isa.Program
	timedLoad *isa.Program
	threshold uint64
}

// NewFlushReload builds the channel on a booted kernel.
func NewFlushReload(k *kernel.Kernel) (*FlushReload, error) {
	if k == nil {
		return nil, errors.New("baseline: nil kernel")
	}
	touch := isa.NewBuilder(frCodeBase).
		MovImm(isa.RBX, sharedLineVA).
		LoadQ(isa.RAX, isa.RBX, 0).
		Halt().
		MustAssemble()
	timed := isa.NewBuilder(frCodeBase+0x1000).
		MovImm(isa.RBX, sharedLineVA).
		Mfence().
		Rdtsc(isa.RSI).
		Lfence().
		LoadQ(isa.RAX, isa.RBX, 0).
		Lfence().
		Rdtsc(isa.RDI).
		Clflush(isa.RBX, 0). // reset for the next round
		Mfence().
		Halt().
		MustAssemble()
	c := &FlushReload{m: k.Machine(), touch: touch, timedLoad: timed}
	if err := c.calibrate(); err != nil {
		return nil, err
	}
	return c, nil
}

func (c *FlushReload) reload() (uint64, error) {
	p := c.m.Pipe
	if _, err := p.Exec(c.timedLoad, maxCycles); err != nil {
		return 0, fmt.Errorf("baseline: F+R reload: %w", err)
	}
	return p.Reg(isa.RDI) - p.Reg(isa.RSI), nil
}

func (c *FlushReload) send(bit bool) error {
	if !bit {
		return nil
	}
	_, err := c.m.Pipe.Exec(c.touch, maxCycles)
	return err
}

func (c *FlushReload) calibrate() error {
	var hit, miss []uint64
	for i := 0; i < 8; i++ {
		if err := c.send(true); err != nil {
			return err
		}
		t, err := c.reload()
		if err != nil {
			return err
		}
		hit = append(hit, t)
		t, err = c.reload() // line was flushed by the previous reload
		if err != nil {
			return err
		}
		miss = append(miss, t)
	}
	h, m := stats.MedianU64(hit), stats.MedianU64(miss)
	if h >= m {
		return errors.New("baseline: no flush+reload signal")
	}
	c.threshold = (h + m) / 2
	return nil
}

// Transfer sends data through the cache channel.
func (c *FlushReload) Transfer(data []byte) (core.LeakResult, error) {
	start := c.m.Pipe.Cycle()
	out := make([]byte, len(data))
	for i, by := range data {
		var got byte
		for bit := 7; bit >= 0; bit-- {
			if err := c.send(by>>uint(bit)&1 == 1); err != nil {
				return core.LeakResult{}, err
			}
			t, err := c.reload()
			if err != nil {
				return core.LeakResult{}, err
			}
			if t < c.threshold {
				got |= 1 << uint(bit)
			}
		}
		out[i] = got
	}
	cycles := c.m.Pipe.Cycle() - start
	return core.LeakResult{Data: out, Cycles: cycles, Bps: c.m.Bps(len(data), cycles)}, nil
}

// MeltdownFR is the original Meltdown attack with a 256-entry Flush+Reload
// probe array as the covert channel, for head-to-head comparison with
// TET-MD.
type MeltdownFR struct {
	k         *kernel.Kernel
	m         *cpu.Machine
	transient *isa.Program
	timed     *isa.Program
	Reps      int
}

// NewMeltdownFR builds the attack.
func NewMeltdownFR(k *kernel.Kernel) (*MeltdownFR, error) {
	if k == nil {
		return nil, errors.New("baseline: nil kernel")
	}
	// Transient gadget: secret byte indexes the probe array.
	b := isa.NewBuilder(mdCodeBase)
	b.MovImm(isa.R10, probeArrayVA)
	b.LoadB(isa.RAX, isa.RBX, 0) // faulting kernel load
	b.ShlImm(isa.RAX, isa.RAX, 8)
	b.Add(isa.RAX, isa.RAX, isa.R10)
	b.LoadB(isa.RCX, isa.RAX, 0) // transient probe-array fill
	b.Halt()
	b.Label("handler")
	b.Halt()
	transient := b.MustAssemble()

	timed := isa.NewBuilder(mdCodeBase+0x1000).
		Mfence().
		Rdtsc(isa.RSI).
		Lfence().
		LoadB(isa.RAX, isa.RBX, 0). // RBX = probe slot address
		Lfence().
		Rdtsc(isa.RDI).
		Halt().
		MustAssemble()
	return &MeltdownFR{k: k, m: k.Machine(), transient: transient, timed: timed, Reps: 3}, nil
}

// flushProbeArray evicts all 256 probe lines (the attacker's clflush loop,
// charged analytically).
func (a *MeltdownFR) flushProbeArray() {
	for v := 0; v < 256; v++ {
		va := uint64(probeArrayVA + v*probeStride)
		if pa, ok := a.k.UserAS().Translate(va); ok {
			a.m.Hier.Flush(pa)
		}
	}
	a.m.Pipe.Skip(256 * 12)
}

// LeakByte recovers one byte at kernel VA va.
func (a *MeltdownFR) LeakByte(va uint64) (byte, error) {
	votes := make([]int, 256)
	times := make([]uint64, 256)
	p := a.m.Pipe
	for rep := 0; rep < a.Reps; rep++ {
		a.flushProbeArray()
		p.SetSignalHandler(a.transient.Len() - 1)
		p.SetReg(isa.RBX, va)
		_, err := p.Exec(a.transient, maxCycles)
		p.SetSignalHandler(-1)
		if err != nil {
			return 0, fmt.Errorf("baseline: meltdown transient: %w", err)
		}
		for v := 0; v < 256; v++ {
			p.SetReg(isa.RBX, uint64(probeArrayVA+v*probeStride))
			if _, err := p.Exec(a.timed, maxCycles); err != nil {
				return 0, err
			}
			times[v] = p.Reg(isa.RDI) - p.Reg(isa.RSI)
		}
		votes[stats.Argmin(times)]++
	}
	return byte(stats.ArgmaxInt(votes)), nil
}

// Leak recovers n bytes starting at va.
func (a *MeltdownFR) Leak(va uint64, n int) (core.LeakResult, error) {
	start := a.m.Pipe.Cycle()
	out := make([]byte, n)
	for i := 0; i < n; i++ {
		b, err := a.LeakByte(va + uint64(i))
		if err != nil {
			return core.LeakResult{}, err
		}
		out[i] = b
	}
	cycles := a.m.Pipe.Cycle() - start
	return core.LeakResult{Data: out, Cycles: cycles, Bps: a.m.Bps(n, cycles)}, nil
}

// PrefetchKASLR is the EntryBleed-style baseline: time a software prefetch
// of each candidate address after a TLB eviction plus a priming prefetch.
// Mapped targets hit the primed TLB entry; unmapped ones page-walk. FLARE
// defeats exactly this probe (every target becomes mapped), which the
// Table 2 / §6.1 comparison demonstrates.
type PrefetchKASLR struct {
	k    *kernel.Kernel
	m    *cpu.Machine
	prog *isa.Program
	Reps int
}

// NewPrefetchKASLR builds the baseline probe.
func NewPrefetchKASLR(k *kernel.Kernel) (*PrefetchKASLR, error) {
	if k == nil {
		return nil, errors.New("baseline: nil kernel")
	}
	prog := isa.NewBuilder(pfCodeBase).
		Mfence().
		Rdtsc(isa.RSI).
		Lfence().
		Prefetch(isa.RBX, 0).
		Lfence().
		Rdtsc(isa.RDI).
		Halt().
		MustAssemble()
	return &PrefetchKASLR{k: k, m: k.Machine(), prog: prog, Reps: 8}, nil
}

func (a *PrefetchKASLR) probe(target uint64) (uint64, error) {
	p := a.m.Pipe
	p.SetReg(isa.RBX, target)
	for attempt := 0; attempt < 4; attempt++ {
		if _, err := p.Exec(a.prog, maxCycles); err != nil {
			return 0, fmt.Errorf("baseline: prefetch probe: %w", err)
		}
		if t1, t2 := p.Reg(isa.RSI), p.Reg(isa.RDI); t2 >= t1 {
			return t2 - t1, nil
		}
	}
	return 0, errors.New("baseline: prefetch timer unusable")
}

// Locate scans all slots and returns the recovered base.
func (a *PrefetchKASLR) Locate() (core.KASLRResult, error) {
	start := a.m.Pipe.Cycle()
	times := make([]uint64, kernel.NumSlots)
	for s := 0; s < kernel.NumSlots; s++ {
		target := a.k.ProbeTarget(s)
		samples := make([]uint64, 0, a.Reps)
		for rep := 0; rep < a.Reps; rep++ {
			a.k.EvictTLB()
			if _, err := a.probe(target); err != nil { // prime: fills TLB iff mapped
				return core.KASLRResult{}, err
			}
			t, err := a.probe(target)
			if err != nil {
				return core.KASLRResult{}, err
			}
			samples = append(samples, t)
		}
		times[s] = stats.MedianU64(samples)
	}
	slot := firstFast(times)
	cycles := a.m.Pipe.Cycle() - start
	res := core.KASLRResult{Slot: slot, Cycles: cycles, Seconds: a.m.Seconds(cycles)}
	if slot >= 0 {
		res.Base = kernel.SlotVA(slot)
	}
	return res, nil
}

// noSignalGap mirrors core's detection floor: a fastest-vs-majority gap
// tighter than this is noise, not a mapping signal.
const noSignalGap = 15

// firstFast mirrors core's threshold decode, returning -1 when the scan
// carries no signal (the FLARE-defended case).
func firstFast(times []uint64) int {
	min := times[stats.Argmin(times)]
	med := stats.MedianU64(times)
	if med-min < noSignalGap {
		return -1
	}
	threshold := (min + med) / 2
	for s, t := range times {
		if t <= threshold {
			return s
		}
	}
	return stats.Argmin(times)
}
