// Package logging is the structured-logging layer of internal/obs: leveled
// JSON (or text) log/slog output for the serving path, and context plumbing
// so any layer — HTTP handler, experiments, sched workers, the client — logs
// through the request-scoped logger without new parameters.
//
// Like the rest of internal/obs, disabled logging is free: From on a bare
// context returns a process-wide discard logger whose handler reports every
// level disabled, so the hot-path idiom
//
//	if log := logging.From(ctx); log.Enabled(ctx, slog.LevelDebug) {
//		log.LogAttrs(ctx, slog.LevelDebug, "...", ...)
//	}
//
// costs one context lookup and one boolean check, and allocates nothing
// (pinned by TestServeLogDisabledZeroAlloc in the repository speedguard).
package logging

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"strings"

	"whisper/internal/obs"
)

// Format names for Options.Format / the cmds' -log-format flag.
const (
	FormatJSON = "json"
	FormatText = "text"
)

// Options configures one logger.
type Options struct {
	// Level is the minimum level: "debug", "info", "warn" or "error"
	// (case-insensitive; empty means "info").
	Level string
	// Format is FormatJSON (default) or FormatText.
	Format string
	// Output receives the log stream; nil discards it.
	Output io.Writer
}

// ParseLevel resolves a level name to its slog.Level.
func ParseLevel(name string) (slog.Level, error) {
	switch strings.ToLower(strings.TrimSpace(name)) {
	case "", "info":
		return slog.LevelInfo, nil
	case "debug":
		return slog.LevelDebug, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, fmt.Errorf("logging: unknown level %q (have debug, info, warn, error)", name)
}

// New builds a leveled structured logger. An error means an unknown level or
// format name — the flag-validation surface of the cmds.
func New(opts Options) (*slog.Logger, error) {
	if opts.Output == nil {
		return Discard(), nil
	}
	level, err := ParseLevel(opts.Level)
	if err != nil {
		return nil, err
	}
	hopts := &slog.HandlerOptions{Level: level}
	switch strings.ToLower(strings.TrimSpace(opts.Format)) {
	case "", FormatJSON:
		return slog.New(slog.NewJSONHandler(opts.Output, hopts)), nil
	case FormatText:
		return slog.New(slog.NewTextHandler(opts.Output, hopts)), nil
	}
	return nil, fmt.Errorf("logging: unknown format %q (have %s, %s)", opts.Format, FormatJSON, FormatText)
}

// discardHandler reports every level disabled; Handle is unreachable
// through slog's front door but still a safe no-op.
type discardHandler struct{}

func (discardHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (discardHandler) Handle(context.Context, slog.Record) error { return nil }
func (d discardHandler) WithAttrs([]slog.Attr) slog.Handler      { return d }
func (d discardHandler) WithGroup(string) slog.Handler           { return d }

// discard is the shared no-op logger; a single instance so From never
// allocates.
var discard = slog.New(discardHandler{})

// Discard returns the process-wide no-op logger (never nil).
func Discard() *slog.Logger { return discard }

// logCtxKey carries the request-scoped logger on a context.
type logCtxKey struct{}

// With returns a context carrying log; From recovers it anywhere downstream.
func With(ctx context.Context, log *slog.Logger) context.Context {
	if log == nil {
		return ctx
	}
	return context.WithValue(ctx, logCtxKey{}, log)
}

// From returns the context's logger, or the discard logger when none (or a
// nil context) was supplied. The result is never nil, so call sites need no
// guard beyond the usual Enabled check.
func From(ctx context.Context) *slog.Logger {
	if ctx == nil {
		return discard
	}
	if log, ok := ctx.Value(logCtxKey{}).(*slog.Logger); ok && log != nil {
		return log
	}
	return discard
}

// WithRequestID stamps both observability carriers at once: the request ID
// itself (obs.WithRequestID) and a child logger pre-bound with the matching
// request_id field, so every downstream log line and span carries the same
// correlation key.
func WithRequestID(ctx context.Context, log *slog.Logger, id string) context.Context {
	ctx = obs.WithRequestID(ctx, id)
	if log == nil {
		log = discard
	}
	if id != "" && log != discard {
		log = log.With(slog.String(obs.RequestIDAttr, id))
	}
	return With(ctx, log)
}
