package logging_test

import (
	"bytes"
	"context"
	"encoding/json"
	"log/slog"
	"strings"
	"testing"

	"whisper/internal/obs"
	"whisper/internal/obs/logging"
)

func TestParseLevel(t *testing.T) {
	cases := map[string]slog.Level{
		"":        slog.LevelInfo,
		"info":    slog.LevelInfo,
		"DEBUG":   slog.LevelDebug,
		" warn ":  slog.LevelWarn,
		"warning": slog.LevelWarn,
		"error":   slog.LevelError,
	}
	for in, want := range cases {
		got, err := logging.ParseLevel(in)
		if err != nil || got != want {
			t.Errorf("ParseLevel(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := logging.ParseLevel("loud"); err == nil {
		t.Error("unknown level accepted")
	}
}

func TestNewFormatsAndErrors(t *testing.T) {
	var buf bytes.Buffer
	log, err := logging.New(logging.Options{Level: "info", Format: "json", Output: &buf})
	if err != nil {
		t.Fatal(err)
	}
	log.Info("hello", slog.String("k", "v"))
	var line map[string]any
	if err := json.Unmarshal(buf.Bytes(), &line); err != nil {
		t.Fatalf("JSON logger wrote non-JSON: %q", buf.String())
	}
	if line["msg"] != "hello" || line["k"] != "v" {
		t.Fatalf("line = %v", line)
	}

	buf.Reset()
	log, err = logging.New(logging.Options{Format: "text", Output: &buf})
	if err != nil {
		t.Fatal(err)
	}
	log.Info("hello")
	if !strings.Contains(buf.String(), "msg=hello") {
		t.Fatalf("text logger output: %q", buf.String())
	}

	if _, err := logging.New(logging.Options{Format: "xml", Output: &buf}); err == nil {
		t.Error("unknown format accepted")
	}
	if _, err := logging.New(logging.Options{Level: "loud", Output: &buf}); err == nil {
		t.Error("unknown level accepted")
	}
	// nil Output means discard, regardless of the other options.
	log, err = logging.New(logging.Options{Level: "loud", Format: "xml"})
	if err != nil || log == nil {
		t.Fatalf("nil-output logger: %v, %v", log, err)
	}
	if log.Enabled(context.Background(), slog.LevelError) {
		t.Error("discard logger reports a level enabled")
	}
}

func TestFromNeverNilAndDisabled(t *testing.T) {
	ctx := context.Background()
	log := logging.From(ctx)
	if log == nil {
		t.Fatal("From returned nil")
	}
	if log.Enabled(ctx, slog.LevelError) {
		t.Fatal("default logger must be disabled at every level")
	}
	if got := logging.From(nil); got == nil { //nolint:staticcheck // nil-safety is the contract under test
		t.Fatal("From(nil) returned nil")
	}

	var buf bytes.Buffer
	real := slog.New(slog.NewJSONHandler(&buf, nil))
	ctx = logging.With(ctx, real)
	if logging.From(ctx) != real {
		t.Fatal("With/From round trip lost the logger")
	}
}

func TestWithRequestIDBindsBothCarriers(t *testing.T) {
	var buf bytes.Buffer
	log := slog.New(slog.NewJSONHandler(&buf, nil))
	ctx := logging.WithRequestID(context.Background(), log, "req-42")

	if got := obs.RequestIDFrom(ctx); got != "req-42" {
		t.Fatalf("obs carrier = %q", got)
	}
	logging.From(ctx).Info("event")
	var line map[string]any
	if err := json.Unmarshal(buf.Bytes(), &line); err != nil {
		t.Fatal(err)
	}
	if line[obs.RequestIDAttr] != "req-42" {
		t.Fatalf("log line missing bound request_id: %v", line)
	}
}
