package obs_test

import (
	"bytes"
	"encoding/json"
	"testing"

	"whisper/internal/core"
	"whisper/internal/cpu"
	"whisper/internal/kernel"
	"whisper/internal/obs"
	"whisper/internal/pmu"
)

// decodedTrace mirrors the Chrome trace-event JSON shape for validation.
type decodedTrace struct {
	TraceEvents []struct {
		Name string         `json:"name"`
		Cat  string         `json:"cat"`
		Ph   string         `json:"ph"`
		TS   float64        `json:"ts"`
		Dur  float64        `json:"dur"`
		PID  int            `json:"pid"`
		TID  int            `json:"tid"`
		Args map[string]any `json:"args"`
	} `json:"traceEvents"`
	DisplayTimeUnit string `json:"displayTimeUnit"`
}

func exportAndDecode(t *testing.T, r *obs.Registry) decodedTrace {
	t.Helper()
	var buf bytes.Buffer
	if err := r.ExportTrace(&buf, nil); err != nil {
		t.Fatal(err)
	}
	var tf decodedTrace
	if err := json.Unmarshal(buf.Bytes(), &tf); err != nil {
		t.Fatalf("exported trace is not valid JSON: %v", err)
	}
	if tf.DisplayTimeUnit == "" {
		t.Fatal("displayTimeUnit missing")
	}
	return tf
}

// validateNesting checks every sim-track span fits inside its parent's
// interval — the invariant Perfetto's flame rendering relies on.
func validateNesting(t *testing.T, tf decodedTrace) int {
	t.Helper()
	type iv struct{ ts, end float64 }
	byID := map[float64]iv{}
	for _, e := range tf.TraceEvents {
		if e.Cat != "span" || e.PID != obs.PIDSim {
			continue
		}
		id, ok := e.Args["id"].(float64)
		if !ok {
			t.Fatalf("span %q has no numeric id arg: %v", e.Name, e.Args)
		}
		byID[id] = iv{e.TS, e.TS + e.Dur}
	}
	nested := 0
	for _, e := range tf.TraceEvents {
		if e.Cat != "span" || e.PID != obs.PIDSim {
			continue
		}
		parent, ok := e.Args["parent"].(float64)
		if !ok || parent < 0 {
			continue
		}
		p, ok := byID[parent]
		if !ok {
			t.Fatalf("span %q references unknown parent %v", e.Name, parent)
		}
		if e.TS < p.ts || e.TS+e.Dur > p.end {
			t.Fatalf("span %q [%v,%v] escapes parent [%v,%v]",
				e.Name, e.TS, e.TS+e.Dur, p.ts, p.end)
		}
		nested++
	}
	return nested
}

// TestExportSyntheticTrace validates the exporter shape on a hand-built
// registry: metadata, wall vs sim placement, counter samples.
func TestExportSyntheticTrace(t *testing.T) {
	r := obs.NewRegistry()
	wall := r.StartWallSpan("stage")
	sim := r.StartSpan("phase", 100)
	sim.Attr("attack", "TET-CC")
	sim.End(200)
	wall.End(0)
	var c pmu.Counts
	c[pmu.UopsIssuedAny] = 5
	r.SamplePMU(150, c)

	tf := exportAndDecode(t, r)
	var sawWall, sawSim, sawCounter, sawMeta bool
	for _, e := range tf.TraceEvents {
		switch {
		case e.Ph == "M":
			sawMeta = true
		case e.Cat == "span" && e.PID == obs.PIDWall:
			sawWall = true
		case e.Cat == "span" && e.PID == obs.PIDSim:
			sawSim = true
			if e.TS != 100 || e.Dur != 100 {
				t.Fatalf("sim span ts/dur = %v/%v, want 100/100", e.TS, e.Dur)
			}
			if e.Args["attack"] != "TET-CC" {
				t.Fatalf("span attrs lost: %v", e.Args)
			}
		case e.Ph == "C":
			sawCounter = true
			if e.Name == "UOPS_ISSUED.ANY" && e.Args["value"] != float64(5) {
				t.Fatalf("counter value = %v", e.Args["value"])
			}
		}
	}
	for name, saw := range map[string]bool{
		"metadata": sawMeta, "wall span": sawWall, "sim span": sawSim, "counter": sawCounter,
	} {
		if !saw {
			t.Fatalf("trace missing %s events", name)
		}
	}
}

// TestKASLRTraceEndToEnd is the acceptance check: a real (reduced-reps)
// TET-KASLR scan with observability enabled exports a Chrome trace
// containing all three track types — phase spans, pipeline uops, PMU
// counters — with valid event nesting, no external tools needed.
func TestKASLRTraceEndToEnd(t *testing.T) {
	m := cpu.MustMachine(cpu.I9_10980XE(), 6)
	reg := m.EnableObs()
	k, err := kernel.Boot(m, kernel.Config{KASLR: true})
	if err != nil {
		t.Fatal(err)
	}
	a, err := core.NewTETKASLR(k)
	if err != nil {
		t.Fatal(err)
	}
	a.Reps = 1
	res, err := a.Locate()
	if err != nil {
		t.Fatal(err)
	}

	tf := exportAndDecode(t, reg)
	spanNames := map[string]int{}
	uops, counters := 0, 0
	counterNames := map[string]bool{}
	for _, e := range tf.TraceEvents {
		switch {
		case e.Cat == "span":
			spanNames[e.Name]++
		case e.Cat == "uop":
			uops++
			if e.Dur <= 0 {
				t.Fatalf("uop event with non-positive dur: %+v", e)
			}
		case e.Ph == "C":
			counters++
			counterNames[e.Name] = true
		}
	}
	for _, want := range []string{"kernel.boot", "core.kaslr.locate", "core.kaslr.slot"} {
		if spanNames[want] == 0 {
			t.Fatalf("missing %q span; spans seen: %v", want, spanNames)
		}
	}
	if spanNames["core.kaslr.slot"] != kernel.NumSlots {
		t.Fatalf("slot spans = %d, want %d", spanNames["core.kaslr.slot"], kernel.NumSlots)
	}
	if uops == 0 {
		t.Fatal("no pipeline uop events on the trace")
	}
	if counters == 0 || !counterNames["UOPS_ISSUED.ANY"] {
		t.Fatalf("PMU counter track missing (got %d events: %v)", counters, counterNames)
	}
	if nested := validateNesting(t, tf); nested < kernel.NumSlots {
		t.Fatalf("only %d nested spans validated", nested)
	}

	// The scan itself must still work under tracing.
	if res.Slot != k.BaseSlot() {
		t.Fatalf("traced scan missed the slot: got %d want %d", res.Slot, k.BaseSlot())
	}

	// And the registry metrics must reflect the campaign.
	snap := reg.Snapshot()
	if snap.Histograms["core.kaslr.slotToTE"].N != kernel.NumSlots {
		t.Fatalf("slotToTE histogram N = %d", snap.Histograms["core.kaslr.slotToTE"].N)
	}
}
