package obs

import (
	"encoding/json"
	"io"
	"os"
	"strings"
	"time"

	"whisper/internal/pmu"
)

// Chrome trace-event track layout. Simulated-time events (1 cycle rendered
// as 1 µs) live under PIDSim; wall-clock phase spans under PIDWall. Within
// PIDSim, spans and per-uop pipeline records get their own threads so
// Perfetto draws them as separate tracks.
const (
	PIDSim  = 1
	PIDWall = 2

	TIDSpans    = 1
	TIDPipeline = 2
)

// Trace-event phase codes (the Chrome trace-event format's "ph" field).
const (
	PhaseComplete = "X" // duration event with explicit dur
	PhaseCounter  = "C" // counter sample
	PhaseMetadata = "M" // process/thread naming
)

// TraceEvent is one Chrome trace-event / Perfetto JSON event.
type TraceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// TraceFile is the exported JSON document, loadable in ui.perfetto.dev or
// chrome://tracing.
type TraceFile struct {
	TraceEvents     []TraceEvent      `json:"traceEvents"`
	DisplayTimeUnit string            `json:"displayTimeUnit"`
	OtherData       map[string]string `json:"otherData,omitempty"`
}

// DefaultCounterEvents are the PMU events exported as counter tracks: the
// speculation/frontend/memory counters the paper's Table 3 analysis turns
// on, plus the global pair.
var DefaultCounterEvents = []pmu.Event{
	pmu.MachineClearsCount,
	pmu.UopsIssuedAny,
	pmu.BrMispExecAllBranches,
	pmu.DtlbLoadMissesMissCausesAWalk,
	pmu.MemLoadRetiredL1Miss,
	pmu.InstRetired,
}

// BuildTrace assembles the merged trace: phase spans, pipeline uop records,
// and PMU counter samples (restricted to counterEvents; nil selects
// DefaultCounterEvents). Nil-safe: a disabled registry yields an empty but
// valid trace.
func (r *Registry) BuildTrace(counterEvents []pmu.Event) *TraceFile {
	tf := &TraceFile{
		DisplayTimeUnit: "ns",
		OtherData:       map[string]string{"generator": "whisper internal/obs"},
	}
	tf.TraceEvents = append(tf.TraceEvents,
		metaEvent("process_name", PIDSim, 0, "whisper sim (1 cycle = 1 us)"),
		metaEvent("thread_name", PIDSim, TIDSpans, "attack phases"),
		metaEvent("thread_name", PIDSim, TIDPipeline, "pipeline uops"),
		metaEvent("process_name", PIDWall, 0, "whisper wall clock"),
		metaEvent("thread_name", PIDWall, TIDSpans, "run stages"),
	)
	if r == nil {
		return tf
	}
	if counterEvents == nil {
		counterEvents = DefaultCounterEvents
	}

	for _, sp := range r.Spans() {
		tf.TraceEvents = append(tf.TraceEvents, r.spanEvent(sp))
	}

	for _, rec := range r.PipelineRecords() {
		dur := float64(1)
		if rec.EndAt > rec.FetchAt {
			dur = float64(rec.EndAt - rec.FetchAt)
		}
		args := map[string]any{
			"seq":     rec.Seq,
			"idx":     rec.Idx,
			"retired": rec.Retired,
			"fromDSB": rec.FromDSB,
		}
		if rec.Fault != "" {
			args["fault"] = rec.Fault
		}
		if rec.StartAt == 0 {
			args["executed"] = false
		}
		tf.TraceEvents = append(tf.TraceEvents, TraceEvent{
			Name: rec.Text,
			Cat:  "uop",
			Ph:   PhaseComplete,
			TS:   float64(rec.FetchAt),
			Dur:  dur,
			PID:  PIDSim,
			TID:  TIDPipeline,
			Args: args,
		})
	}

	for _, s := range r.PMUSamples() {
		for _, e := range counterEvents {
			tf.TraceEvents = append(tf.TraceEvents, TraceEvent{
				Name: e.String(),
				Cat:  "pmu",
				Ph:   PhaseCounter,
				TS:   float64(s.Cycle),
				PID:  PIDSim,
				Args: map[string]any{"value": s.Counts.Get(e)},
			})
		}
	}
	return tf
}

// spanEvent converts one span to its duration event. Open spans export with
// the duration observed so far; zero-length spans are widened to one unit so
// they stay visible.
func (r *Registry) spanEvent(sp *Span) TraceEvent {
	r.mu.Lock()
	args := map[string]any{"id": sp.ID, "parent": sp.Parent}
	for _, a := range sp.Attrs {
		args[a.Key] = a.Value
	}
	name := sp.Name
	wallOnly, ended := sp.wallOnly, sp.ended
	startCycle, endCycle := sp.StartCycle, sp.EndCycle
	startWall, endWall := sp.StartWall, sp.EndWall
	epoch := r.startWall
	r.mu.Unlock()

	if !ended {
		endWall = time.Now()
		endCycle = startCycle
		args["open"] = true
	}
	ev := TraceEvent{Name: name, Cat: "span", Ph: PhaseComplete, TID: TIDSpans, Args: args}
	if wallOnly {
		ev.PID = PIDWall
		ev.TS = float64(startWall.Sub(epoch).Microseconds())
		ev.Dur = float64(endWall.Sub(startWall).Microseconds())
	} else {
		ev.PID = PIDSim
		ev.TS = float64(startCycle)
		ev.Dur = float64(endCycle - startCycle)
		args["wall_us"] = endWall.Sub(startWall).Microseconds()
	}
	if ev.Dur < 1 {
		ev.Dur = 1
	}
	return ev
}

// ExportTrace writes the merged trace as indented JSON.
func (r *Registry) ExportTrace(w io.Writer, counterEvents []pmu.Event) error {
	tf := r.BuildTrace(counterEvents)
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(tf)
}

// WriteTraceFile exports the merged trace to path — the implementation
// behind the cmd tools' -trace-out flag. Nil-safe.
func (r *Registry) WriteTraceFile(path string, counterEvents []pmu.Event) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := r.ExportTrace(f, counterEvents); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// WriteMetricsFile dumps the registry snapshot to path — JSON when the path
// ends in .json, Prometheus text exposition when it ends in .prom, the
// aligned text table otherwise. Nil-safe (a disabled registry writes an
// empty snapshot).
func (r *Registry) WriteMetricsFile(path string) error {
	s := r.Snapshot()
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	var werr error
	switch {
	case strings.HasSuffix(path, ".json"):
		werr = s.WriteJSON(f)
	case strings.HasSuffix(path, ".prom"):
		werr = s.WritePrometheus(f)
	default:
		werr = s.WriteText(f)
	}
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	return werr
}

func metaEvent(name string, pid, tid int, label string) TraceEvent {
	return TraceEvent{
		Name: name,
		Ph:   PhaseMetadata,
		PID:  pid,
		TID:  tid,
		Args: map[string]any{"name": label},
	}
}
