package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Offline run-report builder: joins a -trace-out Perfetto trace with a
// -metrics-out snapshot into one human-readable summary — per-phase
// wall/cycle breakdown, request-ID index, cache hit ratios, queue-wait
// percentiles, machine-pool reuse rates. cmd/obsreport is a thin flag
// wrapper over this; any whisper/tetbench/whisperd artifact pair works.

// ReadTraceFile loads a trace previously written by WriteTraceFile /
// ExportTrace.
func ReadTraceFile(path string) (*TraceFile, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var tf TraceFile
	if err := json.Unmarshal(b, &tf); err != nil {
		return nil, fmt.Errorf("obs: %s is not a trace-event JSON file: %w", path, err)
	}
	return &tf, nil
}

// ReadSnapshotFile loads a metrics snapshot previously written by
// WriteMetricsFile, accepting both the JSON and the aligned-text renderings
// (sniffed from content, not the file name).
func ReadSnapshotFile(path string) (Snapshot, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return Snapshot{}, err
	}
	trimmed := strings.TrimSpace(string(b))
	if strings.HasPrefix(trimmed, "{") {
		var s Snapshot
		if err := json.Unmarshal(b, &s); err != nil {
			return Snapshot{}, fmt.Errorf("obs: %s: %w", path, err)
		}
		return s, nil
	}
	return parseTextSnapshot(strings.NewReader(trimmed))
}

// parseTextSnapshot reverses Snapshot.WriteText.
func parseTextSnapshot(r io.Reader) (Snapshot, error) {
	s := Snapshot{
		Counters:   map[string]uint64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	scan := bufio.NewScanner(r)
	scan.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for scan.Scan() {
		fields := strings.Fields(scan.Text())
		if len(fields) < 3 {
			continue
		}
		kind, key := fields[0], fields[1]
		switch kind {
		case "counter":
			v, err := strconv.ParseUint(fields[2], 10, 64)
			if err != nil {
				return Snapshot{}, fmt.Errorf("obs: bad counter line %q", scan.Text())
			}
			s.Counters[key] = v
		case "gauge":
			v, err := strconv.ParseFloat(fields[2], 64)
			if err != nil {
				return Snapshot{}, fmt.Errorf("obs: bad gauge line %q", scan.Text())
			}
			s.Gauges[key] = v
		case "histogram":
			var h HistogramSnapshot
			for _, kv := range fields[2:] {
				eq := strings.IndexByte(kv, '=')
				if eq < 0 {
					continue
				}
				v, err := strconv.ParseUint(kv[eq+1:], 10, 64)
				if err != nil {
					return Snapshot{}, fmt.Errorf("obs: bad histogram line %q", scan.Text())
				}
				switch kv[:eq] {
				case "n":
					h.N = int(v)
				case "min":
					h.Min = v
				case "p50":
					h.P50 = v
				case "p90":
					h.P90 = v
				case "p95":
					h.P95 = v
				case "p99":
					h.P99 = v
				case "max":
					h.Max = v
				}
			}
			s.Histograms[key] = h
		}
	}
	return s, scan.Err()
}

// PhaseStat aggregates every span event sharing one name.
type PhaseStat struct {
	Name     string
	Count    int
	TotalDur float64 // µs on the wall track, simulated cycles on the sim track
	MaxDur   float64
	Wall     bool // true: wall-clock track (PIDWall), false: simulated cycles
}

// RequestStat summarises one request ID's footprint in the trace.
type RequestStat struct {
	ID     string
	Spans  int
	WallUs float64 // summed duration of its wall-track spans
	Names  []string
}

// RunReport is the joined offline view of one run's artifacts.
type RunReport struct {
	Phases   []PhaseStat
	Requests []RequestStat
	UopCount int
	PMUSamps int

	// Metrics-derived sections; zero-valued when no snapshot was supplied.
	CacheHits      map[string]uint64 // tier → hits
	CacheMisses    uint64
	Coalesced      uint64
	QueueWait      map[string]HistogramSnapshot // pool → sched.queue.latency.us
	RequestLatency map[string]HistogramSnapshot // experiment → server.request.us
	PoolReuse      map[string][2]float64        // pool → {gets, reuses}
	HasMetrics     bool
}

// BuildRunReport joins a trace with an optional metrics snapshot (nil snap
// means trace-only).
func BuildRunReport(tf *TraceFile, snap *Snapshot) *RunReport {
	rep := &RunReport{
		CacheHits:      map[string]uint64{},
		QueueWait:      map[string]HistogramSnapshot{},
		RequestLatency: map[string]HistogramSnapshot{},
		PoolReuse:      map[string][2]float64{},
	}
	phases := map[string]*PhaseStat{}
	requests := map[string]*RequestStat{}
	for _, ev := range tf.TraceEvents {
		switch {
		case ev.Cat == "span":
			key := fmt.Sprintf("%s/%d", ev.Name, ev.PID)
			p, ok := phases[key]
			if !ok {
				p = &PhaseStat{Name: ev.Name, Wall: ev.PID == PIDWall}
				phases[key] = p
			}
			p.Count++
			p.TotalDur += ev.Dur
			if ev.Dur > p.MaxDur {
				p.MaxDur = ev.Dur
			}
			if id, ok := ev.Args[RequestIDAttr].(string); ok && id != "" {
				rq, ok := requests[id]
				if !ok {
					rq = &RequestStat{ID: id}
					requests[id] = rq
				}
				rq.Spans++
				if ev.PID == PIDWall {
					rq.WallUs += ev.Dur
				}
				rq.Names = append(rq.Names, ev.Name)
			}
		case ev.Cat == "uop":
			rep.UopCount++
		case ev.Ph == PhaseCounter:
			rep.PMUSamps++
		}
	}
	for _, p := range phases {
		rep.Phases = append(rep.Phases, *p)
	}
	sort.Slice(rep.Phases, func(i, j int) bool {
		a, b := rep.Phases[i], rep.Phases[j]
		if a.Wall != b.Wall {
			return a.Wall // wall-clock stages first: that's the serving view
		}
		if a.TotalDur != b.TotalDur {
			return a.TotalDur > b.TotalDur
		}
		return a.Name < b.Name
	})
	for _, rq := range requests {
		sort.Strings(rq.Names)
		rq.Names = dedupStrings(rq.Names)
		rep.Requests = append(rep.Requests, *rq)
	}
	sort.Slice(rep.Requests, func(i, j int) bool { return rep.Requests[i].ID < rep.Requests[j].ID })

	if snap != nil {
		rep.HasMetrics = true
		for key, v := range snap.Counters {
			name, labels := parseMetricKey(key)
			switch name {
			case "server.cache.hits":
				rep.CacheHits[labelValue(labels, "tier")] += v
			case "server.cache.misses":
				rep.CacheMisses += v
			case "server.coalesced":
				rep.Coalesced += v
			}
		}
		for key, h := range snap.Histograms {
			name, labels := parseMetricKey(key)
			switch name {
			case "sched.queue.latency.us":
				rep.QueueWait[labelValue(labels, "pool")] = h
			case "server.request.us":
				rep.RequestLatency[labelValue(labels, "experiment")] = h
			}
		}
		for key, v := range snap.Gauges {
			name, labels := parseMetricKey(key)
			pool := labelValue(labels, "pool")
			switch name {
			case "server.machines.gets":
				e := rep.PoolReuse[pool]
				e[0] = v
				rep.PoolReuse[pool] = e
			case "server.machines.reuses":
				e := rep.PoolReuse[pool]
				e[1] = v
				rep.PoolReuse[pool] = e
			}
		}
	}
	return rep
}

func labelValue(labels []Label, key string) string {
	for _, l := range labels {
		if l.Key == key {
			return l.Value
		}
	}
	return ""
}

func dedupStrings(in []string) []string {
	out := in[:0]
	for i, s := range in {
		if i == 0 || s != in[i-1] {
			out = append(out, s)
		}
	}
	return out
}

// WriteText renders the report. Durations on the wall track are
// microseconds; on the sim track, simulated cycles (1 cycle = 1 µs in the
// trace's own time base).
func (rep *RunReport) WriteText(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "whisper run report")
	fmt.Fprintln(bw, "==================")
	fmt.Fprintf(bw, "span phases: %d   uop records: %d   pmu samples: %d   request ids: %d\n\n",
		len(rep.Phases), rep.UopCount, rep.PMUSamps, len(rep.Requests))

	if len(rep.Phases) > 0 {
		fmt.Fprintln(bw, "per-phase breakdown (wall stages in µs, sim phases in cycles)")
		fmt.Fprintf(bw, "  %-40s %6s %14s %14s %14s  %s\n", "phase", "count", "total", "mean", "max", "track")
		for _, p := range rep.Phases {
			track := "sim"
			if p.Wall {
				track = "wall"
			}
			fmt.Fprintf(bw, "  %-40s %6d %14.0f %14.1f %14.0f  %s\n",
				p.Name, p.Count, p.TotalDur, p.TotalDur/float64(p.Count), p.MaxDur, track)
		}
		fmt.Fprintln(bw)
	}

	if len(rep.Requests) > 0 {
		fmt.Fprintln(bw, "requests (by X-Whisper-Request-Id)")
		for _, rq := range rep.Requests {
			fmt.Fprintf(bw, "  %s  spans=%d wall_us=%.0f  %s\n",
				rq.ID, rq.Spans, rq.WallUs, strings.Join(rq.Names, ", "))
		}
		fmt.Fprintln(bw)
	}

	if rep.HasMetrics {
		hits := uint64(0)
		for _, v := range rep.CacheHits {
			hits += v
		}
		if hits+rep.CacheMisses > 0 {
			ratio := float64(hits) / float64(hits+rep.CacheMisses)
			fmt.Fprintf(bw, "cache: %d hits / %d misses (%.1f%% hit ratio", hits, rep.CacheMisses, 100*ratio)
			tiers := make([]string, 0, len(rep.CacheHits))
			for tier := range rep.CacheHits {
				tiers = append(tiers, tier)
			}
			sort.Strings(tiers)
			for _, tier := range tiers {
				fmt.Fprintf(bw, "; %s=%d", tier, rep.CacheHits[tier])
			}
			fmt.Fprintf(bw, "), %d coalesced\n", rep.Coalesced)
		}
		writeHistSection(bw, "queue wait (µs) per pool", rep.QueueWait)
		writeHistSection(bw, "request latency (µs) per experiment", rep.RequestLatency)
		if len(rep.PoolReuse) > 0 {
			pools := make([]string, 0, len(rep.PoolReuse))
			for pool := range rep.PoolReuse {
				pools = append(pools, pool)
			}
			sort.Strings(pools)
			fmt.Fprintln(bw, "machine-pool reuse")
			for _, pool := range pools {
				e := rep.PoolReuse[pool]
				rate := 0.0
				if e[0] > 0 {
					rate = 100 * e[1] / e[0]
				}
				fmt.Fprintf(bw, "  %-8s gets=%.0f reuses=%.0f (%.1f%% reuse)\n", pool, e[0], e[1], rate)
			}
		}
	}
	return bw.Flush()
}

// writeHistSection renders one map of histogram snapshots, sorted by key.
func writeHistSection(w io.Writer, title string, m map[string]HistogramSnapshot) {
	if len(m) == 0 {
		return
	}
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	fmt.Fprintln(w, title)
	for _, k := range keys {
		h := m[k]
		name := k
		if name == "" {
			name = "(unlabelled)"
		}
		fmt.Fprintf(w, "  %-16s n=%d p50=%d p95=%d p99=%d max=%d\n", name, h.N, h.P50, h.P95, h.P99, h.Max)
	}
}
