// Package obs is the unified observability layer: a metrics registry
// (counters, gauges, cycle-histograms with labels), span-based phase tracing
// in simulated cycles and host wall-time, and a Chrome trace-event /
// Perfetto-compatible exporter that merges spans, per-uop pipeline records,
// and periodic PMU counter samples into one trace.
//
// The whole API is nil-safe: every method on a nil *Registry, *Span,
// *Counter, *Gauge, or *Histogram is a no-op, so instrumented code paths
// (core.Prober.Probe and friends) run allocation-free when observability is
// disabled — the default. cpu.Machine carries the registry; enable it with
// Machine.EnableObs.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"whisper/internal/pipeline"
	"whisper/internal/pmu"
	"whisper/internal/stats"
	"whisper/internal/trace"
)

// Label is one key=value metric dimension.
type Label struct {
	Key   string
	Value string
}

// L is shorthand for constructing a Label.
func L(k, v string) Label { return Label{Key: k, Value: v} }

// metricKey builds the canonical identity "name{k=v,k=v}" with sorted keys.
func metricKey(name string, labels []Label) string {
	if len(labels) == 0 {
		return name
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteByte('=')
		b.WriteString(l.Value)
	}
	b.WriteByte('}')
	return b.String()
}

// Counter is a monotonically increasing uint64 metric.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 on nil).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a point-in-time float64 metric.
type Gauge struct {
	mu sync.Mutex
	v  float64
}

// Set replaces the value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.mu.Lock()
	g.v = v
	g.mu.Unlock()
}

// Add shifts the value by d.
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	g.mu.Lock()
	g.v += d
	g.mu.Unlock()
}

// Value returns the current value (0 on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.v
}

// Histogram is a cycle histogram metric (a locked stats.Histogram).
type Histogram struct {
	mu sync.Mutex
	h  *stats.Histogram
}

// Observe records one sample.
func (h *Histogram) Observe(v uint64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	h.h.Add(v)
	h.mu.Unlock()
}

// snapshot summarises the histogram under its lock.
func (h *Histogram) snapshot() HistogramSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	return HistogramSnapshot{
		N:   h.h.N(),
		Min: h.h.Quantile(0),
		P50: h.h.Quantile(0.5),
		P90: h.h.Quantile(0.9),
		P95: h.h.Quantile(0.95),
		P99: h.h.Quantile(0.99),
		Max: h.h.Quantile(1),
	}
}

// PMUSample is one periodic snapshot of every PMU counter, in simulated
// cycles (the counter tracks of the exported trace).
type PMUSample struct {
	Cycle  uint64
	Counts pmu.Counts
}

// DefaultPipelineCap bounds how many per-uop pipeline records the registry
// retains for export (a ring keeping the newest).
const DefaultPipelineCap = 4096

// DefaultPMUSampleCap bounds retained PMU samples; past it the sample set is
// decimated 2:1, preserving the overall shape of long campaigns.
const DefaultPMUSampleCap = 8192

// Registry is the root observability object: metric families, the span
// store, buffered pipeline records, and PMU samples. All methods are safe on
// a nil receiver (no-op) and safe for concurrent use.
type Registry struct {
	mu        sync.Mutex
	startWall time.Time

	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram

	spans      []*Span
	stack      []*Span // open-span stack (nesting)
	nextSpanID int

	pipe *trace.Collector

	pmuSamples []PMUSample
	pmuCap     int
}

// NewRegistry returns an enabled registry with default buffer caps.
func NewRegistry() *Registry {
	return &Registry{
		startWall: time.Now(),
		counters:  make(map[string]*Counter),
		gauges:    make(map[string]*Gauge),
		hists:     make(map[string]*Histogram),
		pipe:      trace.NewCollector(DefaultPipelineCap),
		pmuCap:    DefaultPMUSampleCap,
	}
}

// Counter returns (creating if needed) the named counter. Nil-safe: returns
// a nil *Counter, whose methods no-op, when the registry is disabled.
func (r *Registry) Counter(name string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	k := metricKey(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[k]
	if !ok {
		c = &Counter{}
		r.counters[k] = c
	}
	return c
}

// Gauge returns (creating if needed) the named gauge.
func (r *Registry) Gauge(name string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	k := metricKey(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[k]
	if !ok {
		g = &Gauge{}
		r.gauges[k] = g
	}
	return g
}

// Histogram returns (creating if needed) the named cycle histogram.
func (r *Registry) Histogram(name string, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	k := metricKey(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[k]
	if !ok {
		h = &Histogram{h: stats.NewHistogram()}
		r.hists[k] = h
	}
	return h
}

// AttachPipeline installs the registry's per-uop record collector as the
// pipeline's tracer (replacing any previous tracer).
func (r *Registry) AttachPipeline(p *pipeline.Pipeline) {
	if r == nil {
		return
	}
	r.pipe.Attach(p)
}

// PipelineRecords returns the buffered per-uop records in emission order.
func (r *Registry) PipelineRecords() []pipeline.TraceRecord {
	if r == nil {
		return nil
	}
	return r.pipe.Records()
}

// SamplePMU records one counter snapshot at the given simulated cycle. Past
// the sample cap the buffer is decimated 2:1 rather than truncated, so long
// campaigns keep coverage of their whole time span.
func (r *Registry) SamplePMU(cycle uint64, counts pmu.Counts) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.pmuCap > 0 && len(r.pmuSamples) >= r.pmuCap {
		kept := r.pmuSamples[:0]
		for i := 0; i < len(r.pmuSamples); i += 2 {
			kept = append(kept, r.pmuSamples[i])
		}
		r.pmuSamples = kept
	}
	r.pmuSamples = append(r.pmuSamples, PMUSample{Cycle: cycle, Counts: counts})
}

// PMUSamples returns the retained samples in cycle order.
func (r *Registry) PMUSamples() []PMUSample {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]PMUSample(nil), r.pmuSamples...)
}

// HistogramSnapshot summarises one cycle histogram. The tail quantiles
// (P95/P99) are what the serving path's latency histograms are scraped for.
type HistogramSnapshot struct {
	N   int
	Min uint64
	P50 uint64
	P90 uint64
	P95 uint64
	P99 uint64
	Max uint64
}

// Snapshot is a point-in-time copy of every metric, mirroring pmu.Counts'
// snapshot/delta idiom: take one before and one after a phase, and Delta
// gives the phase's cost.
type Snapshot struct {
	Counters   map[string]uint64            `json:",omitempty"`
	Gauges     map[string]float64           `json:",omitempty"`
	Histograms map[string]HistogramSnapshot `json:",omitempty"`
}

// Snapshot copies all metrics. Nil-safe: returns an empty snapshot.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   make(map[string]uint64),
		Gauges:     make(map[string]float64),
		Histograms: make(map[string]HistogramSnapshot),
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, c := range r.counters {
		counters[k] = c
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, g := range r.gauges {
		gauges[k] = g
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, h := range r.hists {
		hists[k] = h
	}
	r.mu.Unlock()
	for k, c := range counters {
		s.Counters[k] = c.Value()
	}
	for k, g := range gauges {
		s.Gauges[k] = g.Value()
	}
	for k, h := range hists {
		s.Histograms[k] = h.snapshot()
	}
	return s
}

// Delta returns the change from prev to s: counters and histogram sample
// counts subtract element-wise (missing entries count as zero); gauges — a
// point-in-time quantity — keep their current value, as do the histogram
// quantiles.
func (s Snapshot) Delta(prev Snapshot) Snapshot {
	out := Snapshot{
		Counters:   make(map[string]uint64, len(s.Counters)),
		Gauges:     make(map[string]float64, len(s.Gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(s.Histograms)),
	}
	for k, v := range s.Counters {
		out.Counters[k] = v - prev.Counters[k]
	}
	for k, v := range s.Gauges {
		out.Gauges[k] = v
	}
	for k, v := range s.Histograms {
		v.N -= prev.Histograms[k].N
		out.Histograms[k] = v
	}
	return out
}

// sortedKeys returns the union of metric names, sorted.
func (s Snapshot) sortedKeys() (counters, gauges, hists []string) {
	for k := range s.Counters {
		counters = append(counters, k)
	}
	for k := range s.Gauges {
		gauges = append(gauges, k)
	}
	for k := range s.Histograms {
		hists = append(hists, k)
	}
	sort.Strings(counters)
	sort.Strings(gauges)
	sort.Strings(hists)
	return
}

// WriteText renders the snapshot as an aligned text table, one metric per
// line, deterministically ordered.
func (s Snapshot) WriteText(w io.Writer) error {
	counters, gauges, hists := s.sortedKeys()
	for _, k := range counters {
		if _, err := fmt.Fprintf(w, "counter   %-48s %d\n", k, s.Counters[k]); err != nil {
			return err
		}
	}
	for _, k := range gauges {
		if _, err := fmt.Fprintf(w, "gauge     %-48s %g\n", k, s.Gauges[k]); err != nil {
			return err
		}
	}
	for _, k := range hists {
		h := s.Histograms[k]
		if _, err := fmt.Fprintf(w, "histogram %-48s n=%d min=%d p50=%d p90=%d p95=%d p99=%d max=%d\n",
			k, h.N, h.Min, h.P50, h.P90, h.P95, h.P99, h.Max); err != nil {
			return err
		}
	}
	return nil
}

// WriteJSON encodes the snapshot as indented JSON.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// SnapshotFromPMU converts a PMU counter bank into a metrics snapshot whose
// counters are the given events, named "<prefix><event-name>" — the bridge
// cmd/pmutool's -json output rides on.
func SnapshotFromPMU(prefix string, counts pmu.Counts, events []pmu.Event) Snapshot {
	s := Snapshot{Counters: make(map[string]uint64, len(events))}
	for _, e := range events {
		s.Counters[prefix+e.String()] = counts.Get(e)
	}
	return s
}
