package obs

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Prometheus text exposition (version 0.0.4) for Snapshot, so a standard
// scraper can consume whisperd's /metrics directly. The registry's internal
// "name{k=v,...}" keys map onto Prometheus series as:
//
//   - metric and label names: every character outside [a-zA-Z0-9_] becomes
//     '_' ("server.cache.hits" → "server_cache_hits"); a leading digit gains
//     a '_' prefix
//   - label values: quoted with \\, \n and \" escaped per the format spec
//   - counters → counter, gauges → gauge, cycle histograms → summary with
//     quantile series (0.5/0.9/0.95/0.99) plus _count, _min and _max
//
// One family (all series sharing a name) is announced by exactly one
// HELP/TYPE pair immediately before its samples, and families are emitted in
// sorted order, so the output is deterministic — the golden-file test and
// the CI format lint both rely on that.

// PromContentType is the Content-Type of the text exposition format.
const PromContentType = "text/plain; version=0.0.4; charset=utf-8"

// promName sanitizes a registry metric or label name into a legal Prometheus
// identifier.
func promName(name string) string {
	var b strings.Builder
	b.Grow(len(name) + 1)
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
			b.WriteByte(c)
		case c >= '0' && c <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	if b.Len() == 0 {
		return "_"
	}
	return b.String()
}

// promEscape escapes a label value per the exposition format.
func promEscape(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return v
}

// parseMetricKey splits a registry key "name{k=v,k=v}" back into its name
// and labels. Label values in registry keys never contain '{', ',' or '='
// in practice (they are experiment/pool/tier names); a malformed key
// degrades to a label-less metric rather than corrupt output.
func parseMetricKey(key string) (name string, labels []Label) {
	open := strings.IndexByte(key, '{')
	if open < 0 || !strings.HasSuffix(key, "}") {
		return key, nil
	}
	name = key[:open]
	body := key[open+1 : len(key)-1]
	if body == "" {
		return name, nil
	}
	for _, kv := range strings.Split(body, ",") {
		eq := strings.IndexByte(kv, '=')
		if eq < 0 {
			return key, nil
		}
		labels = append(labels, Label{Key: kv[:eq], Value: kv[eq+1:]})
	}
	return name, labels
}

// promSeries renders one sample line: name{labels} value. extra labels (the
// summary's quantile) are appended after the registry labels.
func promSeries(b *strings.Builder, name string, labels []Label, extra []Label, value string) {
	b.WriteString(name)
	if len(labels)+len(extra) > 0 {
		b.WriteByte('{')
		n := 0
		for _, set := range [2][]Label{labels, extra} {
			for _, l := range set {
				if n > 0 {
					b.WriteByte(',')
				}
				n++
				b.WriteString(promName(l.Key))
				b.WriteString(`="`)
				b.WriteString(promEscape(l.Value))
				b.WriteString(`"`)
			}
		}
		b.WriteByte('}')
	}
	b.WriteByte(' ')
	b.WriteString(value)
	b.WriteByte('\n')
}

// promFamily is one exposition family: every series sharing a sanitized
// metric name, with its HELP/TYPE header.
type promFamily struct {
	name  string
	typ   string
	help  string
	lines strings.Builder
}

// WritePrometheus renders the snapshot in the Prometheus text exposition
// format, deterministically ordered.
func (s Snapshot) WritePrometheus(w io.Writer) error {
	families := map[string]*promFamily{}
	family := func(name, typ, help string) *promFamily {
		f, ok := families[name]
		if !ok {
			f = &promFamily{name: name, typ: typ, help: help}
			families[name] = f
		}
		return f
	}

	counters, gauges, hists := s.sortedKeys()
	for _, k := range counters {
		name, labels := parseMetricKey(k)
		pn := promName(name)
		f := family(pn, "counter", "whisper counter "+name)
		promSeries(&f.lines, pn, labels, nil, strconv.FormatUint(s.Counters[k], 10))
	}
	for _, k := range gauges {
		name, labels := parseMetricKey(k)
		pn := promName(name)
		f := family(pn, "gauge", "whisper gauge "+name)
		promSeries(&f.lines, pn, labels, nil, formatPromFloat(s.Gauges[k]))
	}
	for _, k := range hists {
		name, labels := parseMetricKey(k)
		h := s.Histograms[k]
		pn := promName(name)
		f := family(pn, "summary", "whisper cycle histogram "+name)
		for _, q := range [...]struct {
			q string
			v uint64
		}{{"0.5", h.P50}, {"0.9", h.P90}, {"0.95", h.P95}, {"0.99", h.P99}} {
			promSeries(&f.lines, pn, labels, []Label{{Key: "quantile", Value: q.q}}, strconv.FormatUint(q.v, 10))
		}
		promSeries(&f.lines, pn+"_count", labels, nil, strconv.Itoa(h.N))
		fmin := family(pn+"_min", "gauge", "whisper histogram minimum "+name)
		promSeries(&fmin.lines, pn+"_min", labels, nil, strconv.FormatUint(h.Min, 10))
		fmax := family(pn+"_max", "gauge", "whisper histogram maximum "+name)
		promSeries(&fmax.lines, pn+"_max", labels, nil, strconv.FormatUint(h.Max, 10))
	}

	names := make([]string, 0, len(families))
	for name := range families {
		names = append(names, name)
	}
	sort.Strings(names)
	var out strings.Builder
	for _, name := range names {
		f := families[name]
		fmt.Fprintf(&out, "# HELP %s %s\n# TYPE %s %s\n", f.name, f.help, f.name, f.typ)
		out.WriteString(f.lines.String())
	}
	_, err := io.WriteString(w, out.String())
	return err
}

// formatPromFloat renders a gauge value; Prometheus accepts Go's shortest
// float form.
func formatPromFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// LintPrometheus validates a text exposition stream the way the CI format
// gate does: legal metric/label names, parseable sample values, every
// sample's family announced by a preceding HELP+TYPE pair, known TYPE
// values, no duplicate series, and summary families that carry a _count.
// It returns every violation found (nil means the input lints clean).
func LintPrometheus(r io.Reader) []error {
	var errs []error
	scan := bufio.NewScanner(r)
	scan.Buffer(make([]byte, 0, 64*1024), 1024*1024)

	types := map[string]string{} // family → TYPE
	helped := map[string]bool{}
	seen := map[string]bool{} // full series (name+labels) → emitted
	summaryCount := map[string]bool{}
	sampleSeen := false
	lineNo := 0
	for scan.Scan() {
		lineNo++
		line := scan.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			kind, family, rest, ok := parsePromComment(line)
			if !ok {
				continue // free-form comment: legal, ignored
			}
			if !validPromName(family) {
				errs = append(errs, fmt.Errorf("line %d: invalid metric name %q in %s", lineNo, family, kind))
				continue
			}
			switch kind {
			case "HELP":
				helped[family] = true
			case "TYPE":
				if _, dup := types[family]; dup {
					errs = append(errs, fmt.Errorf("line %d: duplicate TYPE for family %q", lineNo, family))
				}
				switch rest {
				case "counter", "gauge", "summary", "histogram", "untyped":
					types[family] = rest
				default:
					errs = append(errs, fmt.Errorf("line %d: unknown TYPE %q for family %q", lineNo, rest, family))
				}
			}
			continue
		}
		sampleSeen = true
		series, name, labels, value, err := parsePromSample(line)
		if err != nil {
			errs = append(errs, fmt.Errorf("line %d: %v", lineNo, err))
			continue
		}
		if !validPromName(name) {
			errs = append(errs, fmt.Errorf("line %d: invalid metric name %q", lineNo, name))
		}
		for _, l := range labels {
			if !validPromLabelName(l.Key) {
				errs = append(errs, fmt.Errorf("line %d: invalid label name %q", lineNo, l.Key))
			}
		}
		if _, err := strconv.ParseFloat(value, 64); err != nil {
			errs = append(errs, fmt.Errorf("line %d: unparseable sample value %q", lineNo, value))
		}
		if seen[series] {
			errs = append(errs, fmt.Errorf("line %d: duplicate series %s", lineNo, series))
		}
		seen[series] = true
		family := promSampleFamily(name, types)
		if _, ok := types[family]; !ok {
			errs = append(errs, fmt.Errorf("line %d: sample %q has no preceding TYPE", lineNo, name))
		} else if !helped[family] {
			errs = append(errs, fmt.Errorf("line %d: family %q has TYPE but no HELP", lineNo, family))
		}
		if types[family] == "summary" && name == family+"_count" {
			summaryCount[family] = true
		}
	}
	if err := scan.Err(); err != nil {
		errs = append(errs, err)
	}
	if !sampleSeen {
		errs = append(errs, fmt.Errorf("no samples in exposition"))
	}
	for family, typ := range types {
		if typ == "summary" && !summaryCount[family] {
			errs = append(errs, fmt.Errorf("summary family %q missing %s_count", family, family))
		}
	}
	return errs
}

// parsePromComment splits "# HELP name text" / "# TYPE name type" lines.
func parsePromComment(line string) (kind, family, rest string, ok bool) {
	fields := strings.Fields(line)
	if len(fields) < 3 || fields[0] != "#" {
		return "", "", "", false
	}
	if fields[1] != "HELP" && fields[1] != "TYPE" {
		return "", "", "", false
	}
	return fields[1], fields[2], strings.Join(fields[3:], " "), true
}

// parsePromSample splits one sample line into its series identity (name plus
// the raw label block), bare name, labels, and value text.
func parsePromSample(line string) (series, name string, labels []Label, value string, err error) {
	rest := line
	brace := strings.IndexByte(rest, '{')
	if brace >= 0 {
		name = rest[:brace]
		end := strings.LastIndexByte(rest, '}')
		if end < brace {
			return "", "", nil, "", fmt.Errorf("unterminated label block in %q", line)
		}
		labels, err = parsePromLabels(rest[brace+1 : end])
		if err != nil {
			return "", "", nil, "", err
		}
		series = rest[:end+1]
		rest = strings.TrimSpace(rest[end+1:])
	} else {
		sp := strings.IndexAny(rest, " \t")
		if sp < 0 {
			return "", "", nil, "", fmt.Errorf("sample without value: %q", line)
		}
		name = rest[:sp]
		series = name
		rest = strings.TrimSpace(rest[sp:])
	}
	// value [timestamp]
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return "", "", nil, "", fmt.Errorf("expected 'value [timestamp]' after series in %q", line)
	}
	return series, name, labels, fields[0], nil
}

// parsePromLabels parses the inside of a label block: k="v",k="v".
func parsePromLabels(body string) ([]Label, error) {
	var labels []Label
	i := 0
	for i < len(body) {
		eq := strings.IndexByte(body[i:], '=')
		if eq < 0 {
			return nil, fmt.Errorf("label without '=' in %q", body)
		}
		key := body[i : i+eq]
		i += eq + 1
		if i >= len(body) || body[i] != '"' {
			return nil, fmt.Errorf("unquoted label value in %q", body)
		}
		i++
		var val strings.Builder
		closed := false
		for i < len(body) {
			c := body[i]
			if c == '\\' && i+1 < len(body) {
				val.WriteByte(body[i+1])
				i += 2
				continue
			}
			if c == '"' {
				closed = true
				i++
				break
			}
			val.WriteByte(c)
			i++
		}
		if !closed {
			return nil, fmt.Errorf("unterminated label value in %q", body)
		}
		labels = append(labels, Label{Key: key, Value: val.String()})
		if i < len(body) && body[i] == ',' {
			i++
		}
	}
	return labels, nil
}

// promSampleFamily maps a sample name back to its announced family: summary
// and histogram component suffixes (_count, _sum, _bucket) fold into the
// base family when that family was TYPEd.
func promSampleFamily(name string, types map[string]string) string {
	for _, suffix := range [...]string{"_count", "_sum", "_bucket"} {
		base := strings.TrimSuffix(name, suffix)
		if base == name {
			continue
		}
		if t, ok := types[base]; ok && (t == "summary" || t == "histogram") {
			return base
		}
	}
	return name
}

// validPromName reports whether name matches [a-zA-Z_:][a-zA-Z0-9_:]*.
func validPromName(name string) bool {
	if name == "" {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// validPromLabelName reports whether name matches [a-zA-Z_][a-zA-Z0-9_]*
// and is not a reserved __ name.
func validPromLabelName(name string) bool {
	if name == "" || strings.HasPrefix(name, "__") {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}
