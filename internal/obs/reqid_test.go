package obs_test

import (
	"context"
	"testing"

	"whisper/internal/obs"
)

func TestRequestIDContextRoundTrip(t *testing.T) {
	if got := obs.RequestIDFrom(context.Background()); got != "" {
		t.Fatalf("bare context carries ID %q", got)
	}
	if got := obs.RequestIDFrom(nil); got != "" { //nolint:staticcheck // nil-safety is the contract under test
		t.Fatalf("nil context carries ID %q", got)
	}
	ctx := obs.WithRequestID(context.Background(), "abc123")
	if got := obs.RequestIDFrom(ctx); got != "abc123" {
		t.Fatalf("round trip = %q", got)
	}
	// Empty IDs do not overwrite an inherited one.
	if got := obs.RequestIDFrom(obs.WithRequestID(ctx, "")); got != "abc123" {
		t.Fatalf("empty ID clobbered inherited one: %q", got)
	}
}

func TestNewRequestID(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 100; i++ {
		id := obs.NewRequestID()
		if !obs.ValidRequestID(id) {
			t.Fatalf("generated ID %q not valid", id)
		}
		if seen[id] {
			t.Fatalf("duplicate generated ID %q", id)
		}
		seen[id] = true
	}
}

func TestValidRequestID(t *testing.T) {
	valid := []string{"a", "deadbeef", "req-1_2.3", "A-Z"}
	for _, id := range valid {
		if !obs.ValidRequestID(id) {
			t.Errorf("rejected valid ID %q", id)
		}
	}
	invalid := []string{
		"",
		"has space",
		"new\nline",
		"header:inject",
		"non-ascii-é",
		string(make([]byte, 65)),
	}
	for _, id := range invalid {
		if obs.ValidRequestID(id) {
			t.Errorf("accepted invalid ID %q", id)
		}
	}
}
