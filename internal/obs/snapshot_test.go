package obs_test

import (
	"bytes"
	"strings"
	"testing"

	"whisper/internal/obs"
)

// TestWriteTextDeterministicOrdering pins that the text rendering sorts keys
// (not map order) and carries the full percentile ladder, so diffs between
// two -metrics-out files are meaningful.
func TestWriteTextDeterministicOrdering(t *testing.T) {
	build := func(order []string) string {
		r := obs.NewRegistry()
		for _, name := range order {
			r.Counter(name).Inc()
		}
		r.Histogram("lat").Observe(7)
		var buf bytes.Buffer
		if err := r.Snapshot().WriteText(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	a := build([]string{"zz", "aa", "mm"})
	b := build([]string{"mm", "zz", "aa"})
	if a != b {
		t.Fatalf("text rendering depends on insertion order:\n%s\n---\n%s", a, b)
	}
	if strings.Index(a, "aa") > strings.Index(a, "zz") {
		t.Fatalf("counters not sorted:\n%s", a)
	}
	for _, q := range []string{"p50=7", "p90=7", "p95=7", "p99=7"} {
		if !strings.Contains(a, q) {
			t.Fatalf("histogram line missing %s:\n%s", q, a)
		}
	}
}

// TestSnapshotDeltaBucketGrowth pins Delta across histograms whose bucket
// sets differ between the two snapshots — the /metrics?since shape where new
// value ranges appear only after the baseline was taken.
func TestSnapshotDeltaBucketGrowth(t *testing.T) {
	r := obs.NewRegistry()
	h := r.Histogram("h")
	h.Observe(10)
	before := r.Snapshot()

	// Larger magnitudes than anything in `before`: these land in buckets the
	// baseline snapshot has never seen.
	for _, v := range []uint64{100000, 200000, 400000} {
		h.Observe(v)
	}
	r.Counter("new.counter").Add(5) // metric born after the baseline
	after := r.Snapshot()

	d := after.Delta(before)
	hd := d.Histograms["h"]
	if hd.N != 3 {
		t.Fatalf("histogram delta N = %d, want 3", hd.N)
	}
	// Percentiles come from the delta'd bucket counts, so they must reflect
	// only the post-baseline observations (min/max stay all-time: extrema
	// cannot be subtracted).
	if hd.P50 < 100000 || hd.P99 < 100000 {
		t.Fatalf("delta percentiles include pre-baseline observations: %+v", hd)
	}
	if hd.Max < 400000 {
		t.Fatalf("delta lost the new maximum: %+v", hd)
	}
	if d.Counters["new.counter"] != 5 {
		t.Fatalf("metric born after baseline lost: %v", d.Counters)
	}
}
