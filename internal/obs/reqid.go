package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"sync/atomic"
)

// Request IDs tie one serving-path request to everything it caused: the
// whisperd access-log line, the X-Whisper-Request-Id response header, the
// span attributes of the Perfetto trace (server.run.* and every sched job
// span the execution sharded into), and the offline obsreport rendering of
// those artifacts. The ID lives on the context.Context the handler threads
// through internal/experiments into internal/sched, so no layer needs a new
// parameter to participate.
//
// The ID is observability-only: it never reaches the simulation or the
// request hash, so it provably cannot change a result byte.

// reqidCtxKey is the context key type for the request ID (unexported so only
// this package can mint the key).
type reqidCtxKey struct{}

// RequestIDAttr is the canonical attribute/field name the ID is recorded
// under — in span attributes, slog lines, and obsreport output alike.
const RequestIDAttr = "request_id"

// WithRequestID returns a context carrying the request ID.
func WithRequestID(ctx context.Context, id string) context.Context {
	if id == "" {
		return ctx
	}
	return context.WithValue(ctx, reqidCtxKey{}, id)
}

// RequestIDFrom returns the context's request ID, or "" when none is set.
// It is allocation-free, so hot paths may call it unconditionally.
func RequestIDFrom(ctx context.Context) string {
	if ctx == nil {
		return ""
	}
	id, _ := ctx.Value(reqidCtxKey{}).(string)
	return id
}

// reqidFallback feeds NewRequestID when the system randomness source fails;
// the counter keeps IDs unique within the process either way.
var reqidFallback atomic.Uint64

// NewRequestID mints a fresh 16-hex-char request ID. IDs only need to be
// unique across the requests one artifact set can contain, not
// cryptographically strong; randomness just makes collisions across daemon
// restarts vanishingly unlikely.
func NewRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return fmt.Sprintf("req-%012x", reqidFallback.Add(1))
	}
	return hex.EncodeToString(b[:])
}

// ValidRequestID reports whether a caller-supplied ID is acceptable to echo
// into headers, logs and traces: non-empty, bounded, and free of control or
// separator characters. Anything else is replaced by a generated ID rather
// than rejected — the ID is a correlation courtesy, not an input contract.
func ValidRequestID(id string) bool {
	if id == "" || len(id) > 64 {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
		case c == '-' || c == '_' || c == '.':
		default:
			return false
		}
	}
	return true
}
