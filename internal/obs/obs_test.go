package obs_test

import (
	"bytes"
	"encoding/json"
	"io"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"whisper/internal/obs"
	"whisper/internal/pmu"
)

func TestCountersGaugesHistograms(t *testing.T) {
	r := obs.NewRegistry()
	r.Counter("probes").Add(3)
	r.Counter("probes").Inc()
	r.Counter("probes", obs.L("cpu", "zen3")).Inc()
	r.Gauge("threshold").Set(120.5)
	h := r.Histogram("tote")
	for _, v := range []uint64{10, 20, 20, 30} {
		h.Observe(v)
	}

	s := r.Snapshot()
	if got := s.Counters["probes"]; got != 4 {
		t.Fatalf("probes = %d, want 4", got)
	}
	if got := s.Counters["probes{cpu=zen3}"]; got != 1 {
		t.Fatalf("labelled counter = %d, want 1", got)
	}
	if got := s.Gauges["threshold"]; got != 120.5 {
		t.Fatalf("gauge = %v", got)
	}
	hs := s.Histograms["tote"]
	if hs.N != 4 || hs.Min != 10 || hs.Max != 30 || hs.P50 != 20 {
		t.Fatalf("histogram snapshot wrong: %+v", hs)
	}
}

func TestSnapshotDelta(t *testing.T) {
	r := obs.NewRegistry()
	r.Counter("c").Add(10)
	r.Gauge("g").Set(1)
	r.Histogram("h").Observe(5)
	before := r.Snapshot()

	r.Counter("c").Add(7)
	r.Gauge("g").Set(9)
	r.Histogram("h").Observe(6)
	r.Histogram("h").Observe(7)
	after := r.Snapshot()

	d := after.Delta(before)
	if d.Counters["c"] != 7 {
		t.Fatalf("counter delta = %d, want 7", d.Counters["c"])
	}
	if d.Gauges["g"] != 9 {
		t.Fatalf("gauge delta keeps current value: got %v", d.Gauges["g"])
	}
	if d.Histograms["h"].N != 2 {
		t.Fatalf("histogram N delta = %d, want 2", d.Histograms["h"].N)
	}
}

func TestSnapshotEncoders(t *testing.T) {
	r := obs.NewRegistry()
	r.Counter("a.count").Add(2)
	r.Gauge("b.level").Set(0.5)
	r.Histogram("c.cycles").Observe(42)
	s := r.Snapshot()

	var text bytes.Buffer
	if err := s.WriteText(&text); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"counter", "a.count", "gauge", "b.level", "histogram", "c.cycles", "p50=42"} {
		if !strings.Contains(text.String(), want) {
			t.Fatalf("text output missing %q:\n%s", want, text.String())
		}
	}

	var buf bytes.Buffer
	if err := s.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back obs.Snapshot
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("JSON round-trip: %v\n%s", err, buf.String())
	}
	if back.Counters["a.count"] != 2 || back.Histograms["c.cycles"].P50 != 42 {
		t.Fatalf("round-trip lost data: %+v", back)
	}
}

func TestSpanNestingAndForceClose(t *testing.T) {
	r := obs.NewRegistry()
	root := r.StartSpan("root", 100)
	child := r.StartSpan("child", 110)
	grand := r.StartSpan("grand", 120)
	grand.AttrU64("k", 7)
	grand.End(130)
	// child left open: root.End must force-close it at the same cycle.
	root.End(200)
	_ = child

	spans := r.Spans()
	if len(spans) != 3 {
		t.Fatalf("span count = %d", len(spans))
	}
	byName := map[string]*obs.Span{}
	for _, sp := range spans {
		byName[sp.Name] = sp
	}
	if byName["child"].Parent != byName["root"].ID {
		t.Fatal("child not parented to root")
	}
	if byName["grand"].Parent != byName["child"].ID {
		t.Fatal("grand not parented to child")
	}
	if byName["child"].EndCycle != 200 {
		t.Fatalf("open child not force-closed with root: end=%d", byName["child"].EndCycle)
	}
	if byName["grand"].EndCycle != 130 {
		t.Fatalf("explicitly-ended span clobbered: end=%d", byName["grand"].EndCycle)
	}
	// After the stack unwound, a new span is a root again.
	next := r.StartSpan("next", 300)
	next.End(301)
	if got := r.Spans()[3].Parent; got != -1 {
		t.Fatalf("post-unwind span has parent %d", got)
	}
}

func TestNilRegistryIsNoop(t *testing.T) {
	var r *obs.Registry
	r.Counter("x").Inc()
	r.Gauge("y").Set(1)
	r.Histogram("z").Observe(1)
	sp := r.StartSpan("s", 1)
	sp.Attr("k", "v")
	sp.AttrU64("n", 2)
	sp.End(2)
	r.SamplePMU(1, pmu.Counts{})
	if got := len(r.Spans()); got != 0 {
		t.Fatalf("nil registry recorded %d spans", got)
	}
	s := r.Snapshot()
	if len(s.Counters) != 0 || len(s.Gauges) != 0 || len(s.Histograms) != 0 {
		t.Fatalf("nil registry snapshot not empty: %+v", s)
	}
	tf := r.BuildTrace(nil)
	if tf == nil || len(tf.TraceEvents) == 0 {
		t.Fatal("nil registry must still build a valid (metadata-only) trace")
	}
}

// TestDisabledInstrumentationZeroAlloc pins the contract the hot path relies
// on: the full per-probe instrumentation sequence — span open, typed attrs,
// span end, metric updates, PMU sample — allocates nothing when the
// registry is nil (observability disabled, the default).
func TestDisabledInstrumentationZeroAlloc(t *testing.T) {
	var r *obs.Registry
	var counts pmu.Counts
	allocs := testing.AllocsPerRun(1000, func() {
		sp := r.StartSpan("core.probe", 123)
		sp.AttrHex("target", 0xffffffff80000000)
		sp.AttrU64("tote", 42)
		sp.AttrBool("hit", true)
		sp.End(456)
		r.Counter("core.probes").Inc()
		r.Histogram("core.probe.tote").Observe(42)
		r.SamplePMU(456, counts)
	})
	if allocs != 0 {
		t.Fatalf("disabled instrumentation allocates %.1f times per probe, want 0", allocs)
	}
}

func TestPMUSampleDecimation(t *testing.T) {
	r := obs.NewRegistry()
	n := obs.DefaultPMUSampleCap + 100
	for i := 0; i < n; i++ {
		var c pmu.Counts
		c[pmu.CyclesTotal] = uint64(i)
		r.SamplePMU(uint64(i), c)
	}
	samples := r.PMUSamples()
	if len(samples) > obs.DefaultPMUSampleCap {
		t.Fatalf("samples not bounded: %d > %d", len(samples), obs.DefaultPMUSampleCap)
	}
	// Decimation must preserve cycle order and keep both ends of the span.
	for i := 1; i < len(samples); i++ {
		if samples[i].Cycle <= samples[i-1].Cycle {
			t.Fatalf("samples out of order at %d: %d after %d", i, samples[i].Cycle, samples[i-1].Cycle)
		}
	}
	if samples[0].Cycle != 0 {
		t.Fatalf("oldest sample dropped: first cycle = %d", samples[0].Cycle)
	}
	if last := samples[len(samples)-1].Cycle; last < uint64(n-1) {
		t.Fatalf("newest sample missing: last cycle = %d, want %d", last, n-1)
	}
}

func TestSnapshotFromPMU(t *testing.T) {
	var c pmu.Counts
	c[pmu.UopsIssuedAny] = 17
	c[pmu.MachineClearsCount] = 3
	s := obs.SnapshotFromPMU("pmu/", c, []pmu.Event{pmu.UopsIssuedAny, pmu.MachineClearsCount})
	if s.Counters["pmu/UOPS_ISSUED.ANY"] != 17 {
		t.Fatalf("snapshot = %+v", s.Counters)
	}
	if s.Counters["pmu/MACHINE_CLEARS.COUNT"] != 3 {
		t.Fatalf("snapshot = %+v", s.Counters)
	}
}

// TestConcurrentScrapeRaceClean hammers the registry with metric and span
// writers while scrapers snapshot and export concurrently — the shape a
// /metrics or /traces request has while a sweep is mid-flight. It asserts
// nothing beyond "no data race / no panic"; run it under -race to get value.
func TestConcurrentScrapeRaceClean(t *testing.T) {
	r := obs.NewRegistry()
	stop := make(chan struct{})
	var wg sync.WaitGroup

	writer := func(id int) {
		defer wg.Done()
		var counts pmu.Counts
		counts[pmu.UopsIssuedAny] = uint64(id)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			r.Counter("scrape.test.hits", obs.L("writer", strconv.Itoa(id))).Inc()
			r.Gauge("scrape.test.depth").Set(float64(i))
			r.Histogram("scrape.test.lat").Observe(uint64(i % 97))
			sp := r.StartDetachedWallSpan("scrape.test.span")
			sp.Attr("iter", strconv.Itoa(i))
			r.SamplePMU(uint64(i), counts)
			sp.End(uint64(i))
		}
	}
	scraper := func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			snap := r.Snapshot()
			if err := snap.WriteText(io.Discard); err != nil {
				t.Errorf("WriteText: %v", err)
				return
			}
			if err := snap.WriteJSON(io.Discard); err != nil {
				t.Errorf("WriteJSON: %v", err)
				return
			}
			if err := r.ExportTrace(io.Discard, nil); err != nil {
				t.Errorf("ExportTrace: %v", err)
				return
			}
			for _, sp := range r.Spans() {
				_ = sp.Name
			}
		}
	}

	for id := 0; id < 4; id++ {
		wg.Add(1)
		go writer(id)
	}
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go scraper()
	}
	time.Sleep(50 * time.Millisecond)
	close(stop)
	wg.Wait()

	if r.Counter("scrape.test.hits", obs.L("writer", "0")).Value() == 0 {
		t.Fatal("writers made no progress")
	}
}
