package obs

import (
	"strconv"
	"time"
)

// Attr is one span attribute, stored stringly for export.
type Attr struct {
	Key   string
	Value string
}

// Span is one traced attack phase: a named interval with begin/end in
// simulated cycles *and* host wall-time, a parent (spans nest via a
// per-registry stack), and free-form attributes. A nil *Span (disabled
// observability) no-ops on every method.
type Span struct {
	r *Registry

	ID     int
	Parent int // parent span ID, -1 at the root
	Name   string

	StartCycle uint64
	EndCycle   uint64
	StartWall  time.Time
	EndWall    time.Time

	// wallOnly marks spans whose cycle fields are meaningless (phases that
	// span several machines, e.g. experiments.RunAll stages); the exporter
	// places them on the wall-clock track.
	wallOnly bool
	// detached marks spans that never joined the nesting stack: concurrent
	// phases (scheduler jobs) whose lifetimes overlap arbitrarily, where
	// stack-based nesting would force-close unrelated siblings.
	detached bool
	ended    bool

	Attrs []Attr
}

// StartSpan opens a span at the given simulated cycle (pipeline.Cycle()) and
// the current wall time, nested under the innermost open span.
func (r *Registry) StartSpan(name string, cycle uint64) *Span {
	return r.startSpan(name, cycle, false)
}

// StartWallSpan opens a wall-time-only span: a phase with no single machine
// cycle domain, such as one experiments.RunAll stage.
func (r *Registry) StartWallSpan(name string) *Span {
	return r.startSpan(name, 0, true)
}

// StartDetachedWallSpan opens a wall-time-only span that does not join the
// registry's nesting stack. Concurrent phases — one scheduler job per worker
// goroutine — need this: stacked spans assume LIFO lifetimes, and ending one
// overlapping sibling would force-close the others. Detached spans always
// have no parent and close independently.
func (r *Registry) StartDetachedWallSpan(name string) *Span {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	sp := &Span{
		r:         r,
		ID:        r.nextSpanID,
		Parent:    -1,
		Name:      name,
		StartWall: time.Now(),
		wallOnly:  true,
		detached:  true,
	}
	r.nextSpanID++
	r.spans = append(r.spans, sp)
	return sp
}

func (r *Registry) startSpan(name string, cycle uint64, wallOnly bool) *Span {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	sp := &Span{
		r:          r,
		ID:         r.nextSpanID,
		Parent:     -1,
		Name:       name,
		StartCycle: cycle,
		StartWall:  time.Now(),
		wallOnly:   wallOnly,
	}
	r.nextSpanID++
	if n := len(r.stack); n > 0 {
		sp.Parent = r.stack[n-1].ID
	}
	r.stack = append(r.stack, sp)
	r.spans = append(r.spans, sp)
	return sp
}

// End closes the span at the given simulated cycle (ignored for wall-only
// spans) and pops it — together with any still-open descendants, which are
// force-closed at the same instant — off the registry's span stack.
func (sp *Span) End(cycle uint64) {
	if sp == nil {
		return
	}
	r := sp.r
	r.mu.Lock()
	defer r.mu.Unlock()
	if sp.ended {
		return
	}
	if sp.detached {
		sp.ended = true
		sp.EndCycle = cycle
		sp.EndWall = time.Now()
		return
	}
	at := -1
	for i := len(r.stack) - 1; i >= 0; i-- {
		if r.stack[i] == sp {
			at = i
			break
		}
	}
	if at < 0 {
		// Not on the stack: already force-closed by an ancestor's End; its
		// fields were set then, so nothing more to do.
		return
	}
	now := time.Now()
	for i := len(r.stack) - 1; i >= at; i-- {
		s := r.stack[i]
		s.ended = true
		s.EndCycle = cycle
		s.EndWall = now
	}
	r.stack = r.stack[:at]
}

// Attr attaches a string attribute (CPU model, attack kind, verdict, ...).
func (sp *Span) Attr(key, value string) {
	if sp == nil {
		return
	}
	sp.r.mu.Lock()
	sp.Attrs = append(sp.Attrs, Attr{Key: key, Value: value})
	sp.r.mu.Unlock()
}

// AttrU64 attaches an unsigned integer attribute. The conversion happens
// only on enabled registries, keeping the disabled path allocation-free.
func (sp *Span) AttrU64(key string, v uint64) {
	if sp == nil {
		return
	}
	sp.Attr(key, strconv.FormatUint(v, 10))
}

// AttrInt attaches an integer attribute.
func (sp *Span) AttrInt(key string, v int) {
	if sp == nil {
		return
	}
	sp.Attr(key, strconv.Itoa(v))
}

// AttrBool attaches a boolean attribute.
func (sp *Span) AttrBool(key string, v bool) {
	if sp == nil {
		return
	}
	sp.Attr(key, strconv.FormatBool(v))
}

// AttrHex attaches an address attribute rendered as 0x-prefixed hex.
func (sp *Span) AttrHex(key string, v uint64) {
	if sp == nil {
		return
	}
	sp.Attr(key, "0x"+strconv.FormatUint(v, 16))
}

// Spans returns every span recorded so far (open spans included), in start
// order.
func (r *Registry) Spans() []*Span {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]*Span(nil), r.spans...)
}
