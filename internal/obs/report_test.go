package obs_test

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"whisper/internal/obs"
)

// reportRegistry simulates one served request's telemetry footprint: a
// request-tagged wall span plus the sched spans its execution sharded into,
// and the cache/queue/pool metrics obsreport summarises.
func reportRegistry(reqID string) *obs.Registry {
	r := obs.NewRegistry()
	sp := r.StartDetachedWallSpan("server.run.table2")
	sp.Attr(obs.RequestIDAttr, reqID)
	sp.End(0)
	for _, key := range []string{"cell/0", "cell/1"} {
		job := r.StartDetachedWallSpan("table2." + key)
		job.Attr(obs.RequestIDAttr, reqID)
		job.End(0)
	}
	orphan := r.StartDetachedWallSpan("table2.cell/other")
	orphan.End(0)

	r.Counter("server.cache.hits", obs.L("tier", "memory")).Add(3)
	r.Counter("server.cache.misses").Add(1)
	r.Counter("server.coalesced").Add(2)
	r.Histogram("sched.queue.latency.us", obs.L("pool", "table2")).Observe(40)
	r.Histogram("server.request.us", obs.L("experiment", "table2")).Observe(900)
	r.Gauge("server.machines.gets", obs.L("pool", "sweep")).Set(8)
	r.Gauge("server.machines.reuses", obs.L("pool", "sweep")).Set(6)
	return r
}

// TestRunReportJoinsTraceAndMetrics writes both artifacts the way the cmds
// do (-trace-out / -metrics-out), reads them back through the report loader,
// and checks the joined report: request-ID rollups from the trace, cache and
// queue and pool sections from the snapshot.
func TestRunReportJoinsTraceAndMetrics(t *testing.T) {
	const reqID = "deadbeef00000001"
	r := reportRegistry(reqID)
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "run.trace.json")
	metricsPath := filepath.Join(dir, "run.metrics.json")
	if err := r.WriteTraceFile(tracePath, nil); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteMetricsFile(metricsPath); err != nil {
		t.Fatal(err)
	}

	tf, err := obs.ReadTraceFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	snap, err := obs.ReadSnapshotFile(metricsPath)
	if err != nil {
		t.Fatal(err)
	}
	rep := obs.BuildRunReport(tf, &snap)

	if len(rep.Requests) != 1 || rep.Requests[0].ID != reqID {
		t.Fatalf("request rollup = %+v, want one entry for %s", rep.Requests, reqID)
	}
	if rep.Requests[0].Spans != 3 {
		t.Fatalf("request %s has %d spans, want 3 (untagged span must not count)", reqID, rep.Requests[0].Spans)
	}
	if rep.CacheHits["memory"] != 3 || rep.CacheMisses != 1 || rep.Coalesced != 2 {
		t.Fatalf("cache section wrong: hits=%v misses=%d coalesced=%d",
			rep.CacheHits, rep.CacheMisses, rep.Coalesced)
	}
	if rep.QueueWait["table2"].N != 1 {
		t.Fatalf("queue-wait section missing: %+v", rep.QueueWait)
	}
	if rep.RequestLatency["table2"].P50 != 900 {
		t.Fatalf("request-latency section wrong: %+v", rep.RequestLatency)
	}
	if got := rep.PoolReuse["sweep"]; got[0] != 8 || got[1] != 6 {
		t.Fatalf("pool-reuse section wrong: %+v", rep.PoolReuse)
	}

	var buf bytes.Buffer
	if err := rep.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{reqID, "server.run.table2", "75.0% hit ratio", "reuse"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report text missing %q:\n%s", want, out)
		}
	}
}

// TestReadSnapshotFileTextRoundTrip pins that the aligned-text rendering a
// -metrics-out run writes by default parses back into the same numbers.
func TestReadSnapshotFileTextRoundTrip(t *testing.T) {
	r := reportRegistry("x")
	path := filepath.Join(t.TempDir(), "metrics.txt")
	if err := r.WriteMetricsFile(path); err != nil {
		t.Fatal(err)
	}
	snap, err := obs.ReadSnapshotFile(path)
	if err != nil {
		t.Fatal(err)
	}
	want := r.Snapshot()
	if snap.Counters[`server.cache.hits{tier=memory}`] != want.Counters[`server.cache.hits{tier=memory}`] {
		t.Fatalf("counter lost in text round-trip: %v", snap.Counters)
	}
	gotH := snap.Histograms[`server.request.us{experiment=table2}`]
	wantH := want.Histograms[`server.request.us{experiment=table2}`]
	if gotH.N != wantH.N || gotH.P50 != wantH.P50 || gotH.P99 != wantH.P99 || gotH.Max != wantH.Max {
		t.Fatalf("histogram lost in text round-trip: got %+v want %+v", gotH, wantH)
	}
}
