package obs_test

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"whisper/internal/obs"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// promRegistry builds a deterministic registry exercising every metric kind
// and the label/name characters the exposition must sanitize.
func promRegistry() *obs.Registry {
	r := obs.NewRegistry()
	r.Counter("server.requests", obs.L("experiment", "table2")).Add(3)
	r.Counter("server.requests", obs.L("experiment", "kaslr")).Add(1)
	r.Counter("server.cache.hits", obs.L("tier", "memory")).Add(2)
	r.Counter("server.cache.misses").Inc()
	r.Gauge("server.queue.inflight").Set(2)
	r.Gauge("core.threshold", obs.L("cpu", `Kaby "Lake"`)).Set(120.5)
	h := r.Histogram("server.request.us", obs.L("experiment", "table2"))
	for _, v := range []uint64{100, 200, 200, 400, 1000} {
		h.Observe(v)
	}
	return r
}

// TestWritePrometheusGolden pins the exposition bytes: deterministic family
// and series ordering, sanitized names, escaped label values, summary
// quantiles. Regenerate with `go test ./internal/obs -run Golden -update`.
func TestWritePrometheusGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := promRegistry().Snapshot().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "snapshot.golden.prom")
	if *updateGolden {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("prometheus exposition drifted from golden:\n--- got ---\n%s\n--- want ---\n%s", buf.Bytes(), want)
	}
}

// TestWritePrometheusDeterministic pins that two snapshots of the same state
// render byte-identically (map iteration must never leak into the output).
func TestWritePrometheusDeterministic(t *testing.T) {
	r := promRegistry()
	var a, b bytes.Buffer
	if err := r.Snapshot().WritePrometheus(&a); err != nil {
		t.Fatal(err)
	}
	if err := r.Snapshot().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("exposition not deterministic:\n%s\n---\n%s", a.Bytes(), b.Bytes())
	}
}

// TestWritePrometheusLintClean feeds the writer's own output to the linter —
// the invariant the CI smoke job checks against a live /metrics scrape.
func TestWritePrometheusLintClean(t *testing.T) {
	var buf bytes.Buffer
	if err := promRegistry().Snapshot().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if errs := obs.LintPrometheus(&buf); len(errs) != 0 {
		t.Fatalf("own exposition fails lint: %v", errs)
	}
	out := func() string {
		var b bytes.Buffer
		promRegistry().Snapshot().WritePrometheus(&b)
		return b.String()
	}()
	for _, want := range []string{
		`server_requests{experiment="table2"} 3`,
		`server_request_us{experiment="table2",quantile="0.99"}`,
		`server_request_us_count{experiment="table2"} 5`,
		`cpu="Kaby \"Lake\""`,
		"# TYPE server_requests counter",
		"# TYPE server_request_us summary",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

// TestLintPrometheusCatches feeds the linter known-bad expositions.
func TestLintPrometheusCatches(t *testing.T) {
	cases := map[string]string{
		"empty":          "",
		"bad name":       "2foo 1\n",
		"bad value":      "foo bar\n",
		"bad label name": `foo{2x="y"} 1` + "\n",
		"type after sample": "foo 1\n" +
			"# TYPE foo counter\nfoo 2\n",
		"duplicate series": `foo{a="b"} 1` + "\n" + `foo{a="b"} 2` + "\n",
		"summary without count": "# TYPE s summary\n" +
			`s{quantile="0.5"} 1` + "\n",
	}
	for name, in := range cases {
		if errs := obs.LintPrometheus(strings.NewReader(in)); len(errs) == 0 {
			t.Errorf("%s: lint accepted %q", name, in)
		}
	}
	good := "# HELP foo help\n# TYPE foo counter\nfoo 1\n"
	if errs := obs.LintPrometheus(strings.NewReader(good)); len(errs) != 0 {
		t.Errorf("lint rejected valid exposition: %v", errs)
	}
}
