package experiments

import (
	"encoding/json"
	"io"

	"whisper/internal/obs"
)

// Report bundles every experiment's results for machine-readable output
// (cmd/tetbench -json).
type Report struct {
	Seed             int64
	Table2           []Table2Row
	Table2Agrees     bool
	Table2Deviations []string `json:",omitempty"`
	Table3           []Table3Scene
	Fig1b            *Fig1bResult
	Fig4             []Fig4Point
	Throughput       []ThroughputRow
	KASLR            []KASLRRow
	Mitigations      []MitigationRow
	MitigationsAgree bool
	Stealth          []StealthRow
	CondFamily       []CondRow
	NoiseSweep       []NoisePoint
}

// ReportParams sizes the full run.
type ReportParams struct {
	Seed            int64
	ThroughputBytes int
	KASLRReps       int
	Fig1bBatches    int

	// Obs, when non-nil, records one wall-time span per experiment stage
	// (the machines booted inside each stage keep their own registries, so
	// stage spans land on the wall-clock track of the exported trace).
	Obs *obs.Registry
}

// DefaultReportParams returns bench-friendly sizes.
func DefaultReportParams() ReportParams {
	return ReportParams{
		Seed:            DefaultSeed,
		ThroughputBytes: 16,
		KASLRReps:       8,
		Fig1bBatches:    5,
	}
}

// RunAll executes every experiment and returns the bundle.
func RunAll(p ReportParams) (*Report, error) {
	r := &Report{Seed: p.Seed}
	stage := func(name string, f func() error) error {
		sp := p.Obs.StartWallSpan(name)
		err := f()
		if err != nil {
			sp.Attr("error", err.Error())
		}
		sp.End(0)
		return err
	}
	var err error
	if err = stage("experiments.table2", func() error {
		if r.Table2, err = Table2(DefaultTable2Params(), p.Seed); err != nil {
			return err
		}
		r.Table2Agrees, r.Table2Deviations = Table2Agrees(r.Table2)
		return nil
	}); err != nil {
		return nil, err
	}
	if err = stage("experiments.table3", func() (err error) {
		r.Table3, err = Table3(p.Seed)
		return
	}); err != nil {
		return nil, err
	}
	if err = stage("experiments.fig1b", func() (err error) {
		r.Fig1b, err = Fig1b(p.Fig1bBatches, p.Seed)
		return
	}); err != nil {
		return nil, err
	}
	if err = stage("experiments.fig4", func() (err error) {
		r.Fig4, err = Fig4(p.Seed)
		return
	}); err != nil {
		return nil, err
	}
	if err = stage("experiments.throughput", func() (err error) {
		r.Throughput, err = Throughput(p.ThroughputBytes, p.Seed)
		return
	}); err != nil {
		return nil, err
	}
	if err = stage("experiments.kaslr", func() (err error) {
		r.KASLR, err = KASLRSuite(p.KASLRReps, p.Seed)
		return
	}); err != nil {
		return nil, err
	}
	if err = stage("experiments.mitigations", func() error {
		var err error
		if r.Mitigations, err = Mitigations(p.Seed); err != nil {
			return err
		}
		r.MitigationsAgree, _ = MitigationsAgree(r.Mitigations)
		return nil
	}); err != nil {
		return nil, err
	}
	if err = stage("experiments.stealth", func() (err error) {
		r.Stealth, err = Stealth(p.Seed)
		return
	}); err != nil {
		return nil, err
	}
	if err = stage("experiments.condfamily", func() (err error) {
		r.CondFamily, err = CondFamily(p.Seed)
		return
	}); err != nil {
		return nil, err
	}
	if err = stage("experiments.noise", func() (err error) {
		r.NoiseSweep, err = NoiseSweep(p.Seed)
		return
	}); err != nil {
		return nil, err
	}
	return r, nil
}

// WriteJSON encodes the report (indented) to w.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
