package experiments

import (
	"encoding/json"
	"io"
)

// Report bundles every experiment's results for machine-readable output
// (cmd/tetbench -json).
type Report struct {
	Seed             int64
	Table2           []Table2Row
	Table2Agrees     bool
	Table2Deviations []string `json:",omitempty"`
	Table3           []Table3Scene
	Fig1b            *Fig1bResult
	Fig4             []Fig4Point
	Throughput       []ThroughputRow
	KASLR            []KASLRRow
	Mitigations      []MitigationRow
	MitigationsAgree bool
	Stealth          []StealthRow
	CondFamily       []CondRow
	NoiseSweep       []NoisePoint
}

// ReportParams sizes the full run.
type ReportParams struct {
	Seed            int64
	ThroughputBytes int
	KASLRReps       int
	Fig1bBatches    int
}

// DefaultReportParams returns bench-friendly sizes.
func DefaultReportParams() ReportParams {
	return ReportParams{
		Seed:            DefaultSeed,
		ThroughputBytes: 16,
		KASLRReps:       8,
		Fig1bBatches:    5,
	}
}

// RunAll executes every experiment and returns the bundle.
func RunAll(p ReportParams) (*Report, error) {
	r := &Report{Seed: p.Seed}
	var err error
	if r.Table2, err = Table2(DefaultTable2Params(), p.Seed); err != nil {
		return nil, err
	}
	r.Table2Agrees, r.Table2Deviations = Table2Agrees(r.Table2)
	if r.Table3, err = Table3(p.Seed); err != nil {
		return nil, err
	}
	if r.Fig1b, err = Fig1b(p.Fig1bBatches, p.Seed); err != nil {
		return nil, err
	}
	if r.Fig4, err = Fig4(p.Seed); err != nil {
		return nil, err
	}
	if r.Throughput, err = Throughput(p.ThroughputBytes, p.Seed); err != nil {
		return nil, err
	}
	if r.KASLR, err = KASLRSuite(p.KASLRReps, p.Seed); err != nil {
		return nil, err
	}
	if r.Mitigations, err = Mitigations(p.Seed); err != nil {
		return nil, err
	}
	r.MitigationsAgree, _ = MitigationsAgree(r.Mitigations)
	if r.Stealth, err = Stealth(p.Seed); err != nil {
		return nil, err
	}
	if r.CondFamily, err = CondFamily(p.Seed); err != nil {
		return nil, err
	}
	if r.NoiseSweep, err = NoiseSweep(p.Seed); err != nil {
		return nil, err
	}
	return r, nil
}

// WriteJSON encodes the report (indented) to w.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
