package experiments

import (
	"context"
	"encoding/json"
	"io"

	"whisper/internal/obs"
	"whisper/internal/sched"
)

// Report bundles every experiment's results for machine-readable output
// (cmd/tetbench -json).
type Report struct {
	Seed             int64
	Table2           []Table2Row
	Table2Agrees     bool
	Table2Deviations []string `json:",omitempty"`
	Table3           []Table3Scene
	Fig1b            *Fig1bResult
	Fig4             []Fig4Point
	Throughput       []ThroughputRow
	KASLR            []KASLRRow
	Mitigations      []MitigationRow
	MitigationsAgree bool
	Stealth          []StealthRow
	CondFamily       []CondRow
	NoiseSweep       []NoisePoint
}

// ReportParams sizes the full run.
type ReportParams struct {
	Seed            int64
	ThroughputBytes int
	KASLRReps       int
	Fig1bBatches    int

	// Parallel is the sched worker count used for the artefact pool and
	// threaded into every sweep's cell pool; <= 0 means GOMAXPROCS. The
	// report is byte-identical at every setting.
	Parallel int
	// Ctx cancels the run early; nil means Background.
	Ctx context.Context

	// Obs, when non-nil, receives one wall-time span per experiment stage
	// plus the scheduler's pool metrics (the machines booted inside each
	// stage keep their own registries, so stage spans land on the wall-clock
	// track of the exported trace).
	Obs *obs.Registry
}

// DefaultReportParams returns bench-friendly sizes.
func DefaultReportParams() ReportParams {
	return ReportParams{
		Seed:            DefaultSeed,
		ThroughputBytes: 16,
		KASLRReps:       8,
		Fig1bBatches:    5,
	}
}

// Exec resolves the execution knobs shared by every stage.
func (p ReportParams) Exec() Exec {
	return Exec{Ctx: p.Ctx, Parallel: p.Parallel, Obs: p.Obs}
}

// RunAll executes every experiment and returns the bundle. The independent
// artefacts are themselves scheduler jobs (pool "experiments"), each writing
// a distinct Report field, so whole stages overlap in addition to the
// per-cell parallelism inside each sweep; results are applied in stage order
// and the report is byte-identical at any ReportParams.Parallel.
func RunAll(p ReportParams) (*Report, error) {
	ex := p.Exec()
	r := &Report{Seed: p.Seed}
	type apply = func(*Report)
	jobs := []sched.Job[apply]{
		{Key: "table2", Run: func(context.Context, int64) (apply, error) {
			rows, err := Table2(ex, DefaultTable2Params(), p.Seed)
			if err != nil {
				return nil, err
			}
			agrees, devs := Table2Agrees(rows)
			return func(r *Report) {
				r.Table2, r.Table2Agrees, r.Table2Deviations = rows, agrees, devs
			}, nil
		}},
		{Key: "table3", Run: func(context.Context, int64) (apply, error) {
			scenes, err := Table3(ex, p.Seed)
			if err != nil {
				return nil, err
			}
			return func(r *Report) { r.Table3 = scenes }, nil
		}},
		{Key: "fig1b", Run: func(context.Context, int64) (apply, error) {
			res, err := Fig1b(ex, p.Fig1bBatches, p.Seed)
			if err != nil {
				return nil, err
			}
			return func(r *Report) { r.Fig1b = res }, nil
		}},
		{Key: "fig4", Run: func(context.Context, int64) (apply, error) {
			pts, err := Fig4(ex, p.Seed)
			if err != nil {
				return nil, err
			}
			return func(r *Report) { r.Fig4 = pts }, nil
		}},
		{Key: "throughput", Run: func(context.Context, int64) (apply, error) {
			rows, err := Throughput(ex, p.ThroughputBytes, p.Seed)
			if err != nil {
				return nil, err
			}
			return func(r *Report) { r.Throughput = rows }, nil
		}},
		{Key: "kaslr", Run: func(context.Context, int64) (apply, error) {
			rows, err := KASLRSuite(ex, p.KASLRReps, p.Seed)
			if err != nil {
				return nil, err
			}
			return func(r *Report) { r.KASLR = rows }, nil
		}},
		{Key: "mitigations", Run: func(context.Context, int64) (apply, error) {
			rows, err := Mitigations(ex, p.Seed)
			if err != nil {
				return nil, err
			}
			agrees, _ := MitigationsAgree(rows)
			return func(r *Report) { r.Mitigations, r.MitigationsAgree = rows, agrees }, nil
		}},
		{Key: "stealth", Run: func(context.Context, int64) (apply, error) {
			rows, err := Stealth(ex, p.Seed)
			if err != nil {
				return nil, err
			}
			return func(r *Report) { r.Stealth = rows }, nil
		}},
		{Key: "condfamily", Run: func(context.Context, int64) (apply, error) {
			rows, err := CondFamily(ex, p.Seed)
			if err != nil {
				return nil, err
			}
			return func(r *Report) { r.CondFamily = rows }, nil
		}},
		{Key: "noise", Run: func(context.Context, int64) (apply, error) {
			pts, err := NoiseSweep(ex, p.Seed)
			if err != nil {
				return nil, err
			}
			return func(r *Report) { r.NoiseSweep = pts }, nil
		}},
	}
	applies, err := sched.Map(ex.ctx(), ex.opts("experiments", p.Seed), jobs)
	if err != nil {
		return nil, err
	}
	for _, f := range applies {
		f(r)
	}
	return r, nil
}

// WriteJSON encodes the report (indented) to w.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
