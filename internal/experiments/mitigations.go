package experiments

import (
	"context"
	"fmt"
	"strings"

	"whisper/internal/baseline"
	"whisper/internal/core"
	"whisper/internal/cpu"
	"whisper/internal/defense"
	"whisper/internal/kernel"
	"whisper/internal/sched"
	"whisper/internal/stats"
)

// MitigationRow is one (defense, attack) cell of the §6 security discussion.
type MitigationRow struct {
	Defense string
	Attack  string
	Works   bool // attack still leaks under the defense
	ErrRate float64
	Note    string
}

// mitSecret is the planted victim secret for the mitigation matrix.
var mitSecret = []byte("MITI")

// Mitigations reproduces the §6 defense discussion as a matrix: which
// defenses stop which attacks. The paper's claims, in order: cache-centric
// defenses (InvisiSpec-style invisible speculation) stop Flush+Reload
// attacks but not TET (§6.1); KPTI and VERW-style buffer scrubbing stop
// TET-MD and TET-ZBL respectively (§6.2); the microcode fix stops both
// (Table 2's patched parts). Every cell boots its own machine from the same
// seed, so the cells are independent scheduler jobs collected in matrix
// order.
func Mitigations(ex Exec, seed int64) ([]MitigationRow, error) {
	runMD := func(defName string, model cpu.Model, cfg kernel.Config, note string) (MitigationRow, error) {
		k, err := boot("mitigations", model, cfg, seed)
		if err != nil {
			return MitigationRow{}, err
		}
		defer recycle(k)
		k.WriteSecret(mitSecret)
		md, err := core.NewTETMeltdown(k)
		if err != nil {
			return MitigationRow{}, err
		}
		md.Batches = 3
		res, err := md.Leak(k.SecretVA(), len(mitSecret))
		if err != nil {
			return MitigationRow{}, err
		}
		er := stats.ByteErrorRate(res.Data, mitSecret)
		return MitigationRow{
			Defense: defName, Attack: "TET-MD", Works: er <= successThreshold,
			ErrRate: er, Note: note,
		}, nil
	}
	runFRMD := func(defName string, model cpu.Model, cfg kernel.Config, note string) (MitigationRow, error) {
		k, err := boot("mitigations", model, cfg, seed)
		if err != nil {
			return MitigationRow{}, err
		}
		defer recycle(k)
		k.WriteSecret(mitSecret)
		fr, err := baseline.NewMeltdownFR(k)
		if err != nil {
			return MitigationRow{}, err
		}
		res, err := fr.Leak(k.SecretVA(), len(mitSecret))
		if err != nil {
			return MitigationRow{}, err
		}
		er := stats.ByteErrorRate(res.Data, mitSecret)
		return MitigationRow{
			Defense: defName, Attack: "Meltdown-F+R", Works: er <= successThreshold,
			ErrRate: er, Note: note,
		}, nil
	}
	runZBL := func(defName string, cfg kernel.Config, note string) (MitigationRow, error) {
		k, err := boot("mitigations", cpu.I7_7700(), cfg, seed)
		if err != nil {
			return MitigationRow{}, err
		}
		defer recycle(k)
		k.WriteSecret(mitSecret)
		z, err := core.NewTETZombieload(k)
		if err != nil {
			return MitigationRow{}, err
		}
		z.Batches = 3
		res, err := z.Leak(len(mitSecret))
		if err != nil {
			return MitigationRow{}, err
		}
		er := stats.ByteErrorRate(res.Data, mitSecret)
		return MitigationRow{
			Defense: defName, Attack: "TET-ZBL", Works: er <= successThreshold,
			ErrRate: er, Note: note,
		}, nil
	}

	vulnerable := cpu.I7_7700()
	invisiSpec := cpu.I7_7700()
	invisiSpec.Pipe.InvisibleSpeculation = true

	md := func(defName string, model cpu.Model, cfg kernel.Config, note string) func(context.Context, int64) (MitigationRow, error) {
		return func(context.Context, int64) (MitigationRow, error) {
			return runMD(defName, model, cfg, note)
		}
	}
	frmd := func(defName string, model cpu.Model, cfg kernel.Config, note string) func(context.Context, int64) (MitigationRow, error) {
		return func(context.Context, int64) (MitigationRow, error) {
			return runFRMD(defName, model, cfg, note)
		}
	}
	zbl := func(defName string, cfg kernel.Config, note string) func(context.Context, int64) (MitigationRow, error) {
		return func(context.Context, int64) (MitigationRow, error) {
			return runZBL(defName, cfg, note)
		}
	}
	jobs := []sched.Job[MitigationRow]{
		// §6.1: cache-centric defenses vs the two Meltdown variants.
		{Key: "none/md", Run: md("none", vulnerable, kernel.Config{KASLR: true}, "")},
		{Key: "none/fr-md", Run: frmd("none", vulnerable, kernel.Config{KASLR: true}, "")},
		{Key: "invisispec/md", Run: md("InvisiSpec", invisiSpec, kernel.Config{KASLR: true},
			"timing channel unaffected by invisible speculation (§6.1)")},
		{Key: "invisispec/fr-md", Run: frmd("InvisiSpec", invisiSpec, kernel.Config{KASLR: true},
			"cache covert channel destroyed: transient fills suppressed")},
		// §6.2: software mitigations.
		{Key: "kpti/md", Run: md("KPTI", vulnerable, kernel.Config{KASLR: true, KPTI: true},
			"secret unmapped in user tables: nothing to forward")},
		{Key: "none/zbl", Run: zbl("none", kernel.Config{KASLR: true}, "")},
		{Key: "verw/zbl", Run: zbl("VERW scrub", kernel.Config{KASLR: true, VERW: true},
			"fill buffers scrubbed on context switch: stale data gone")},
		// Microcode fix (the Table 2 patched parts).
		{Key: "ucode/md", Run: md("microcode fix", cpu.I9_10980XE(), kernel.Config{KASLR: true},
			"faulting loads forward zeros")},
	}
	return sched.Map(ex.ctx(), ex.opts("mitigations", seed), jobs)
}

// PaperMitigations is the expected outcome per the paper's §6 discussion.
var PaperMitigations = map[string]bool{
	"none/TET-MD":             true,
	"none/Meltdown-F+R":       true,
	"InvisiSpec/TET-MD":       true,  // §6.1: TET bypasses cache defenses
	"InvisiSpec/Meltdown-F+R": false, // cache channel gone
	"KPTI/TET-MD":             false, // §6.2
	"none/TET-ZBL":            true,
	"VERW scrub/TET-ZBL":      false, // §6.2 microcode/buffer scrub
	"microcode fix/TET-MD":    false, // Table 2
}

// MitigationsAgree reports whether the measured matrix matches §6.
func MitigationsAgree(rows []MitigationRow) (bool, []string) {
	var diffs []string
	for _, r := range rows {
		key := r.Defense + "/" + r.Attack
		want, known := PaperMitigations[key]
		if !known {
			continue
		}
		if r.Works != want {
			diffs = append(diffs, fmt.Sprintf("%s: measured works=%v, paper %v", key, r.Works, want))
		}
	}
	return len(diffs) == 0, diffs
}

// RenderMitigations formats the §6 matrix.
func RenderMitigations(rows []MitigationRow) string {
	var b strings.Builder
	fmt.Fprintln(&b, "§6 mitigation matrix (works = attack still leaks under the defense)")
	fmt.Fprintf(&b, "%-16s %-16s %6s %8s  %s\n", "Defense", "Attack", "works", "err", "note")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-16s %-16s %6s %7.1f%%  %s\n",
			r.Defense, r.Attack, check(r.Works), r.ErrRate*100, r.Note)
	}
	return b.String()
}

// StealthRow is one attack under the cache-anomaly detector.
type StealthRow struct {
	Attack    string
	AlarmRate float64
	Detected  bool
}

// Stealth reproduces the Table 1 / §3.3 stealth claim: an HPC-based
// Flush+Reload detector ([15]-style) flags the cache-probing Meltdown but
// stays silent on TET-MD, which retires essentially no missing loads. The
// two attacks run as independent scheduler cells on their own machines.
func Stealth(ex Exec, seed int64) ([]StealthRow, error) {
	jobs := []sched.Job[StealthRow]{
		// TET-MD under the detector.
		{Key: "tet-md", Run: func(context.Context, int64) (StealthRow, error) {
			k, err := boot("mitigations", cpu.I7_7700(), kernel.Config{KASLR: true}, seed)
			if err != nil {
				return StealthRow{}, err
			}
			defer recycle(k)
			k.WriteSecret(mitSecret)
			md, err := core.NewTETMeltdown(k)
			if err != nil {
				return StealthRow{}, err
			}
			md.Batches = 3
			det := defense.NewCacheAnomalyDetector(k.Machine().PMU)
			for i := 0; i < len(mitSecret); i++ {
				if _, err := md.LeakByte(k.SecretVA() + uint64(i)); err != nil {
					return StealthRow{}, err
				}
				det.Sample()
			}
			return StealthRow{
				Attack:    "TET-MD",
				AlarmRate: det.AlarmRate(),
				Detected:  det.AlarmRate() > 0.5,
			}, nil
		}},
		// Meltdown-F+R under the detector.
		{Key: "meltdown-fr", Run: func(context.Context, int64) (StealthRow, error) {
			k, err := boot("mitigations", cpu.I7_7700(), kernel.Config{KASLR: true}, seed)
			if err != nil {
				return StealthRow{}, err
			}
			defer recycle(k)
			k.WriteSecret(mitSecret)
			fr, err := baseline.NewMeltdownFR(k)
			if err != nil {
				return StealthRow{}, err
			}
			det := defense.NewCacheAnomalyDetector(k.Machine().PMU)
			for i := 0; i < len(mitSecret); i++ {
				if _, err := fr.LeakByte(k.SecretVA() + uint64(i)); err != nil {
					return StealthRow{}, err
				}
				det.Sample()
			}
			return StealthRow{
				Attack:    "Meltdown-F+R",
				AlarmRate: det.AlarmRate(),
				Detected:  det.AlarmRate() > 0.5,
			}, nil
		}},
	}
	return sched.Map(ex.ctx(), ex.opts("stealth", seed), jobs)
}

// RenderStealth formats the detector comparison.
func RenderStealth(rows []StealthRow) string {
	var b strings.Builder
	fmt.Fprintln(&b, "Stealth vs an HPC cache-attack detector (Table 1 / §3.3)")
	fmt.Fprintf(&b, "%-16s %12s %10s\n", "Attack", "alarm-rate", "detected")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-16s %11.0f%% %10s\n", r.Attack, r.AlarmRate*100, check(r.Detected))
	}
	return b.String()
}
