package experiments

import (
	"context"
	"fmt"
	"strings"

	"whisper/internal/core"
	"whisper/internal/cpu"
	"whisper/internal/kernel"
	"whisper/internal/sched"
	"whisper/internal/stats"
)

// Table2Row is one CPU's attack outcomes (paper Table 2).
type Table2Row struct {
	Model   cpu.Model
	CC      bool
	MD      bool
	ZBL     bool
	RSB     bool
	KASLR   bool
	ErrCC   float64
	ErrMD   float64
	ErrZBL  float64
	ErrRSB  float64
	Seconds float64 // KASLR scan time
}

// Table2Params sizes the per-attack workloads; the defaults favour bench
// speed, Full() the paper's payload sizes.
type Table2Params struct {
	CCBytes   int
	MDBytes   int
	ZBLBytes  int
	RSBBytes  int
	KASLRReps int
}

// DefaultTable2Params returns quick-but-conclusive sizes.
func DefaultTable2Params() Table2Params {
	return Table2Params{CCBytes: 8, MDBytes: 4, ZBLBytes: 4, RSBBytes: 4, KASLRReps: 4}
}

// successThreshold is the byte-error rate below which an attack counts as ✓.
// Working attacks measure ≤ a few percent; broken ones sit near 100 %.
const successThreshold = 0.25

// Table2 runs every attack on every Table 2 model. Each model is one
// scheduler cell: the five machines a row boots are independent of every
// other row's, so rows run concurrently and collect in model order.
func Table2(ex Exec, params Table2Params, seed int64) ([]Table2Row, error) {
	models := cpu.AllModels()
	jobs := make([]sched.Job[Table2Row], len(models))
	for i, model := range models {
		model := model
		jobs[i] = sched.Job[Table2Row]{
			Key: model.Name,
			Run: func(context.Context, int64) (Table2Row, error) {
				return table2Row(model, params, seed)
			},
		}
	}
	return sched.Map(ex.ctx(), ex.opts("table2", seed), jobs)
}

// table2Row runs the five attack families on one model. The per-attack seed
// offsets (seed..seed+4) predate the scheduler and are kept verbatim so a
// sweep's output matches the original serial implementation byte for byte.
func table2Row(model cpu.Model, params Table2Params, seed int64) (Table2Row, error) {
	secret := []byte("Whisper: timing the transient execution!")
	row := Table2Row{Model: model}
	fail := func(err error) (Table2Row, error) { return Table2Row{}, err }

	// Fresh machine per attack family so one attack's microarchitectural
	// residue cannot help another.
	{
		k, err := boot("table2", model, kernel.Config{KASLR: true}, seed)
		if err != nil {
			return fail(err)
		}
		defer recycle(k)
		cc, err := core.NewTETCovertChannel(k)
		if err != nil {
			return fail(err)
		}
		payload := secret[:params.CCBytes]
		res, err := cc.Transfer(payload)
		if err != nil {
			return fail(fmt.Errorf("table2 %s CC: %w", model.Name, err))
		}
		row.ErrCC = stats.ByteErrorRate(res.Data, payload)
		row.CC = row.ErrCC <= successThreshold
	}
	{
		k, err := boot("table2", model, kernel.Config{KASLR: true}, seed+1)
		if err != nil {
			return fail(err)
		}
		defer recycle(k)
		k.WriteSecret(secret)
		md, err := NewQuickMD(k)
		if err != nil {
			return fail(err)
		}
		res, err := md.Leak(k.SecretVA(), params.MDBytes)
		if err != nil {
			return fail(fmt.Errorf("table2 %s MD: %w", model.Name, err))
		}
		row.ErrMD = stats.ByteErrorRate(res.Data, secret[:params.MDBytes])
		row.MD = row.ErrMD <= successThreshold
	}
	{
		k, err := boot("table2", model, kernel.Config{KASLR: true}, seed+2)
		if err != nil {
			return fail(err)
		}
		defer recycle(k)
		k.WriteSecret(secret)
		z, err := core.NewTETZombieload(k)
		if err != nil {
			return fail(err)
		}
		z.Batches = 3
		res, err := z.Leak(params.ZBLBytes)
		if err != nil {
			return fail(fmt.Errorf("table2 %s ZBL: %w", model.Name, err))
		}
		row.ErrZBL = stats.ByteErrorRate(res.Data, secret[:params.ZBLBytes])
		row.ZBL = row.ErrZBL <= successThreshold
	}
	{
		k, err := boot("table2", model, kernel.Config{KASLR: true}, seed+3)
		if err != nil {
			return fail(err)
		}
		defer recycle(k)
		m := k.Machine()
		secretVA := uint64(kernel.UserDataBase + 0x300)
		pa, _ := k.UserAS().Translate(secretVA)
		m.Phys.StoreBytes(pa, secret)
		rsb, err := core.NewTETRSB(k)
		if err != nil {
			return fail(err)
		}
		rsb.Batches = 2
		res, err := rsb.Leak(secretVA, params.RSBBytes)
		if err != nil {
			return fail(fmt.Errorf("table2 %s RSB: %w", model.Name, err))
		}
		row.ErrRSB = stats.ByteErrorRate(res.Data, secret[:params.RSBBytes])
		row.RSB = row.ErrRSB <= successThreshold
	}
	{
		k, err := boot("table2", model, kernel.Config{KASLR: true}, seed+4)
		if err != nil {
			return fail(err)
		}
		defer recycle(k)
		ka, err := core.NewTETKASLR(k)
		if err != nil {
			return fail(err)
		}
		ka.Reps = params.KASLRReps
		res, err := ka.Locate()
		if err != nil {
			return fail(fmt.Errorf("table2 %s KASLR: %w", model.Name, err))
		}
		row.KASLR = res.Slot == k.BaseSlot()
		row.Seconds = res.Seconds
	}
	return row, nil
}

// NewQuickMD builds a TET-Meltdown with bench-friendly batch count.
func NewQuickMD(k *kernel.Kernel) (*core.Meltdown, error) {
	md, err := core.NewTETMeltdown(k)
	if err != nil {
		return nil, err
	}
	md.Batches = 3
	return md, nil
}

// PaperTable2 is the published ✓/✗ matrix ("?" cells are recorded as the
// value our reproduction measures, per EXPERIMENTS.md).
var PaperTable2 = map[string]map[string]string{
	"Intel Core i7-6700":    {"CC": "✓", "MD": "✓", "ZBL": "✓", "RSB": "✓", "KASLR": "✓"},
	"Intel Core i7-7700":    {"CC": "✓", "MD": "✓", "ZBL": "✓", "RSB": "✓", "KASLR": "✓"},
	"Intel Core i9-10980XE": {"CC": "✓", "MD": "✗", "ZBL": "✗", "RSB": "?", "KASLR": "✓"},
	"Intel Core i9-13900K":  {"CC": "✓", "MD": "✗", "ZBL": "✗", "RSB": "✓", "KASLR": "?"},
	"AMD Ryzen 5 5600G":     {"CC": "✓", "MD": "✗", "ZBL": "✗", "RSB": "?", "KASLR": "✗"},
}

// RenderTable2 formats the measured matrix side by side with the paper's.
func RenderTable2(rows []Table2Row) string {
	var b strings.Builder
	fmt.Fprintln(&b, "Table 2: Environment and experiments (measured | paper)")
	fmt.Fprintf(&b, "%-24s %-12s %-11s %-11s %-8s %-8s %-8s %-8s %-10s\n",
		"CPU", "uarch", "ucode", "kernel", "CC", "MD", "ZBL", "RSB", "KASLR")
	for _, r := range rows {
		p := PaperTable2[r.Model.Name]
		cell := func(got bool, key string) string {
			return fmt.Sprintf("%s|%s", check(got), p[key])
		}
		fmt.Fprintf(&b, "%-24s %-12s %-11s %-11s %-8s %-8s %-8s %-8s %-10s\n",
			r.Model.Name, r.Model.Microarch, r.Model.Microcode, r.Model.Kernel,
			cell(r.CC, "CC"), cell(r.MD, "MD"), cell(r.ZBL, "ZBL"),
			cell(r.RSB, "RSB"), cell(r.KASLR, "KASLR"))
	}
	return b.String()
}

// Table2Agrees reports whether the measured matrix matches the paper on
// every non-"?" cell.
func Table2Agrees(rows []Table2Row) (bool, []string) {
	var diffs []string
	for _, r := range rows {
		p := PaperTable2[r.Model.Name]
		for key, got := range map[string]bool{
			"CC": r.CC, "MD": r.MD, "ZBL": r.ZBL, "RSB": r.RSB, "KASLR": r.KASLR,
		} {
			want := p[key]
			if want == "?" {
				continue
			}
			if check(got) != want {
				diffs = append(diffs, fmt.Sprintf("%s %s: measured %s, paper %s",
					r.Model.Name, key, check(got), want))
			}
		}
	}
	return len(diffs) == 0, diffs
}
