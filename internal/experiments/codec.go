package experiments

import (
	"fmt"
	"log/slog"
	"sort"
	"time"

	"whisper/internal/obs/logging"
)

// SweepParams sizes one sweep invocation. It is the serializable subset of
// ReportParams: everything that changes a sweep's *result* lives here, while
// execution knobs that provably do not (worker count, context, telemetry)
// stay on Exec. That split is what makes sweep results content-addressable —
// internal/server hashes (sweep name, SweepParams) and nothing else.
type SweepParams struct {
	Seed            int64 `json:"seed"`
	ThroughputBytes int   `json:"throughput_bytes,omitempty"`
	KASLRReps       int   `json:"kaslr_reps,omitempty"`
	Fig1bBatches    int   `json:"fig1b_batches,omitempty"`
}

// DefaultSweepParams mirrors DefaultReportParams' sizes.
func DefaultSweepParams() SweepParams {
	p := DefaultReportParams()
	return SweepParams{
		Seed:            p.Seed,
		ThroughputBytes: p.ThroughputBytes,
		KASLRReps:       p.KASLRReps,
		Fig1bBatches:    p.Fig1bBatches,
	}
}

// Normalize fills zero fields with the defaults, returning the canonical
// form: two requests that mean the same sweep normalize to equal structs.
func (p SweepParams) Normalize() SweepParams {
	d := DefaultSweepParams()
	if p.Seed == 0 {
		p.Seed = d.Seed
	}
	if p.ThroughputBytes <= 0 {
		p.ThroughputBytes = d.ThroughputBytes
	}
	if p.KASLRReps <= 0 {
		p.KASLRReps = d.KASLRReps
	}
	if p.Fig1bBatches <= 0 {
		p.Fig1bBatches = d.Fig1bBatches
	}
	return p
}

// SweepResult is one sweep's output in both machine and human form. Result
// holds the structured rows/points/scenes (JSON-encodable, deterministic),
// Rendered the same text table the CLI prints.
type SweepResult struct {
	Name     string
	Result   any
	Rendered string
}

// sweepRunner executes one named sweep.
type sweepRunner func(ex Exec, p SweepParams) (any, string, error)

// sweepRegistry maps every servable sweep to its runner. Each entry returns
// exactly what the corresponding cmd/tetbench -exp branch computes, so a
// result fetched by name is the same artefact the CLI regenerates.
var sweepRegistry = map[string]sweepRunner{
	"table1": func(Exec, SweepParams) (any, string, error) {
		t := Table1()
		return t, t, nil
	},
	"table2": func(ex Exec, p SweepParams) (any, string, error) {
		rows, err := Table2(ex, DefaultTable2Params(), p.Seed)
		if err != nil {
			return nil, "", err
		}
		return rows, RenderTable2(rows), nil
	},
	"table3": func(ex Exec, p SweepParams) (any, string, error) {
		scenes, err := Table3(ex, p.Seed)
		if err != nil {
			return nil, "", err
		}
		return scenes, RenderTable3(scenes), nil
	},
	"fig1b": func(ex Exec, p SweepParams) (any, string, error) {
		r, err := Fig1b(ex, p.Fig1bBatches, p.Seed)
		if err != nil {
			return nil, "", err
		}
		return r, r.Render(), nil
	},
	"fig4": func(ex Exec, p SweepParams) (any, string, error) {
		pts, err := Fig4(ex, p.Seed)
		if err != nil {
			return nil, "", err
		}
		return pts, RenderFig4(pts), nil
	},
	"throughput": func(ex Exec, p SweepParams) (any, string, error) {
		rows, err := Throughput(ex, p.ThroughputBytes, p.Seed)
		if err != nil {
			return nil, "", err
		}
		return rows, RenderThroughput(rows), nil
	},
	"kaslr": func(ex Exec, p SweepParams) (any, string, error) {
		rows, err := KASLRSuite(ex, p.KASLRReps, p.Seed)
		if err != nil {
			return nil, "", err
		}
		return rows, RenderKASLRSuite(rows), nil
	},
	"mitigations": func(ex Exec, p SweepParams) (any, string, error) {
		rows, err := Mitigations(ex, p.Seed)
		if err != nil {
			return nil, "", err
		}
		return rows, RenderMitigations(rows), nil
	},
	"stealth": func(ex Exec, p SweepParams) (any, string, error) {
		rows, err := Stealth(ex, p.Seed)
		if err != nil {
			return nil, "", err
		}
		return rows, RenderStealth(rows), nil
	},
	"condfamily": func(ex Exec, p SweepParams) (any, string, error) {
		rows, err := CondFamily(ex, p.Seed)
		if err != nil {
			return nil, "", err
		}
		return rows, RenderCondFamily(rows), nil
	},
	"noise": func(ex Exec, p SweepParams) (any, string, error) {
		pts, err := NoiseSweep(ex, p.Seed)
		if err != nil {
			return nil, "", err
		}
		return pts, RenderNoiseSweep(pts), nil
	},
	"report": func(ex Exec, p SweepParams) (any, string, error) {
		r, err := RunAll(ReportParams{
			Seed:            p.Seed,
			ThroughputBytes: p.ThroughputBytes,
			KASLRReps:       p.KASLRReps,
			Fig1bBatches:    p.Fig1bBatches,
			Parallel:        ex.Parallel,
			Ctx:             ex.Ctx,
			Obs:             ex.Obs,
		})
		if err != nil {
			return nil, "", err
		}
		return r, "", nil
	},
}

// Sweeps returns every servable sweep name, sorted.
func Sweeps() []string {
	names := make([]string, 0, len(sweepRegistry))
	for name := range sweepRegistry {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// RunSweep executes the named sweep with normalized params. The result is a
// pure function of (name, p.Normalize()): Exec only changes wall-clock.
func RunSweep(ex Exec, name string, p SweepParams) (SweepResult, error) {
	run, ok := sweepRegistry[name]
	if !ok {
		return SweepResult{}, fmt.Errorf("experiments: unknown sweep %q (have %v)", name, Sweeps())
	}
	p = p.Normalize()
	ctx := ex.ctx()
	if log := logging.From(ctx); log.Enabled(ctx, slog.LevelDebug) {
		log.LogAttrs(ctx, slog.LevelDebug, "sweep started",
			slog.String("sweep", name), slog.Int64("seed", p.Seed),
			slog.Int("parallel", ex.Parallel))
	}
	start := time.Now()
	res, rendered, err := run(ex, p)
	if err != nil {
		logging.From(ctx).LogAttrs(ctx, slog.LevelError, "sweep failed",
			slog.String("sweep", name), slog.Int64("seed", p.Seed),
			slog.Duration("dur", time.Since(start)), slog.String("error", err.Error()))
		return SweepResult{}, err
	}
	if log := logging.From(ctx); log.Enabled(ctx, slog.LevelDebug) {
		log.LogAttrs(ctx, slog.LevelDebug, "sweep finished",
			slog.String("sweep", name), slog.Int64("seed", p.Seed),
			slog.Duration("dur", time.Since(start)))
	}
	return SweepResult{Name: name, Result: res, Rendered: rendered}, nil
}
