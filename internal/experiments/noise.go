package experiments

import (
	"context"
	"fmt"
	"strings"

	"whisper/internal/core"
	"whisper/internal/cpu"
	"whisper/internal/kernel"
	"whisper/internal/sched"
	"whisper/internal/stats"
)

// NoisePoint is one operating point of the noise-sensitivity sweep.
type NoisePoint struct {
	Sigma     float64 // RDTSC jitter stddev, cycles
	Batches   int     // vote batches the attack used
	Decoder   string  // "vote" (the paper's) or "mean"
	ErrRate   float64
	Recovered bool
}

// NoiseSweep measures TET-MD's error rate as measurement noise grows, with
// and without extra vote batches — the robustness dimension behind the
// paper's "<3 % error in a real (noisy) environment" claim. The TET signal
// is only a handful of cycles, so the argmax vote across batches is what
// carries the attack once jitter rivals the signal.
func NoiseSweep(ex Exec, seed int64) ([]NoisePoint, error) {
	points := []struct {
		sigma   float64
		batches int
		mean    bool
	}{
		{0, 3, false},
		{1.2, 3, false},
		{3, 3, false},
		{3, 9, false},
		{3, 21, true},
		{6, 21, true},
	}
	jobs := make([]sched.Job[NoisePoint], len(points))
	for i, pt := range points {
		pt := pt
		jobs[i] = sched.Job[NoisePoint]{
			Key: fmt.Sprintf("sigma/%.1f/batches/%d", pt.sigma, pt.batches),
			Run: func(context.Context, int64) (NoisePoint, error) {
				return noisePoint(pt.sigma, pt.batches, pt.mean, seed)
			},
		}
	}
	return sched.Map(ex.ctx(), ex.opts("noise", seed), jobs)
}

// noisePoint measures one (sigma, batches, decoder) operating point on a
// fresh machine.
func noisePoint(sigma float64, batches int, mean bool, seed int64) (NoisePoint, error) {
	secret := []byte("NZ")
	model := cpu.I7_7700()
	model.Pipe.NoiseSigma = sigma
	k, err := boot("noise", model, kernel.Config{KASLR: true}, seed)
	if err != nil {
		return NoisePoint{}, err
	}
	defer recycle(k)
	k.WriteSecret(secret)
	md, err := core.NewTETMeltdown(k)
	if err != nil {
		return NoisePoint{}, err
	}
	md.Batches = batches
	md.MedianDecode = mean
	res, err := md.Leak(k.SecretVA(), len(secret))
	if err != nil {
		return NoisePoint{}, err
	}
	decoder := "vote"
	if mean {
		decoder = "median"
	}
	er := stats.ByteErrorRate(res.Data, secret)
	return NoisePoint{
		Sigma:     sigma,
		Batches:   batches,
		Decoder:   decoder,
		ErrRate:   er,
		Recovered: er <= successThreshold,
	}, nil
}

// RenderNoiseSweep formats the sweep.
func RenderNoiseSweep(points []NoisePoint) string {
	var b strings.Builder
	fmt.Fprintln(&b, "Noise sensitivity: TET-MD error rate vs RDTSC jitter (i7-7700)")
	fmt.Fprintf(&b, "%10s %9s %8s %9s %10s\n", "sigma", "batches", "decoder", "err", "recovered")
	for _, p := range points {
		fmt.Fprintf(&b, "%10.1f %9d %8s %8.1f%% %10s\n",
			p.Sigma, p.Batches, p.Decoder, p.ErrRate*100, check(p.Recovered))
	}
	return b.String()
}
