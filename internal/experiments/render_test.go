package experiments

import (
	"strings"
	"testing"

	"whisper/internal/isa"
)

// Render functions are exercised against hand-built rows so the formatting
// paths are covered without re-running the simulations.

func TestRenderKASLRSuiteFormatting(t *testing.T) {
	rows := []KASLRRow{
		{Name: "TET-KASLR", CPU: "cpuA", Found: true, Seconds: 0.82, PaperSeconds: 0.8829, Note: "n"},
		{Name: "TET-KASLR", CPU: "cpuB", Found: false, Seconds: 0.5},
	}
	out := RenderKASLRSuite(rows)
	for _, want := range []string{"cpuA", "0.8829", "✓", "✗", "0.8200"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestRenderMitigationsFormatting(t *testing.T) {
	out := RenderMitigations([]MitigationRow{
		{Defense: "KPTI", Attack: "TET-MD", Works: false, ErrRate: 1, Note: "gone"},
	})
	for _, want := range []string{"KPTI", "TET-MD", "✗", "100.0%", "gone"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q", want)
		}
	}
}

func TestRenderStealthFormatting(t *testing.T) {
	out := RenderStealth([]StealthRow{
		{Attack: "TET-MD", AlarmRate: 0, Detected: false},
		{Attack: "Meltdown-F+R", AlarmRate: 1, Detected: true},
	})
	if !strings.Contains(out, "TET-MD") || !strings.Contains(out, "100%") {
		t.Errorf("render wrong:\n%s", out)
	}
}

func TestRenderNoiseSweepFormatting(t *testing.T) {
	out := RenderNoiseSweep([]NoisePoint{
		{Sigma: 6, Batches: 21, Decoder: "median", ErrRate: 0, Recovered: true},
	})
	for _, want := range []string{"median", "6.0", "21", "✓"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q", want)
		}
	}
}

func TestRenderCondFamilyFormatting(t *testing.T) {
	out := RenderCondFamily([]CondRow{
		{Cond: isa.CondC, Name: "JC/JB", QuietToTE: 265, TrigToTE: 271, Delta: 6},
	})
	if !strings.Contains(out, "JC/JB") || !strings.Contains(out, "+6") {
		t.Errorf("render wrong:\n%s", out)
	}
}

func TestRenderFig4Formatting(t *testing.T) {
	out := RenderFig4([]Fig4Point{
		{NopsBeforeFence: 0, UopsNoTrigger: 12, UopsTrigger: 19, Delta: 7},
		{NopsBeforeFence: 48, UopsNoTrigger: 60, UopsTrigger: 26, Delta: -34},
	})
	for _, want := range []string{"+7.0", "-34.0", "fence"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q", want)
		}
	}
}

func TestRenderTable3Formatting(t *testing.T) {
	out := RenderTable3([]Table3Scene{{
		Name: "TET-MD", CPU: "x", LabelA: "a", LabelB: "b",
		KeyEvents: []KeyEvent{{
			Event: "RESOURCE_STALLS.ANY", PaperA: 15, PaperB: 21,
			GotA: 0, GotB: 3, GotDir: 1, WantDir: 1, Match: true,
		}},
	}})
	for _, want := range []string{"RESOURCE_STALLS.ANY", "15", "21", "✓"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q", want)
		}
	}
}

func TestDefaultReportParams(t *testing.T) {
	p := DefaultReportParams()
	if p.Seed != DefaultSeed || p.KASLRReps <= 0 || p.ThroughputBytes <= 0 || p.Fig1bBatches <= 0 {
		t.Fatalf("bad defaults: %+v", p)
	}
}

func TestDirOf(t *testing.T) {
	if dirOf(1, 5) != 1 || dirOf(5, 1) != -1 || dirOf(3, 3.2) != 0 {
		t.Fatal("dirOf thresholds wrong")
	}
}

func TestCondOperandsAllDefined(t *testing.T) {
	for c := isa.CondE; c <= isa.CondG; c++ {
		tc, td, qc, qd, ok := condOperands(c)
		if !ok {
			t.Fatalf("cond %v missing operands", c)
		}
		// Trigger pair must evaluate taken, quiet pair not-taken, under the
		// flags cmp(tc, td) produces.
		eval := func(a, b uint64) bool {
			_, f := cmpFlags(a, b)
			return c.Eval(f)
		}
		if !eval(tc, td) {
			t.Errorf("cond %v: trigger pair does not trigger", c)
		}
		if eval(qc, qd) {
			t.Errorf("cond %v: quiet pair triggers", c)
		}
	}
}

// cmpFlags mirrors the ALU's cmp semantics for the operand check above.
func cmpFlags(a, b uint64) (uint64, isa.Flags) {
	r := a - b
	return a, isa.Flags{ZF: r == 0, CF: a < b, SF: r>>63 != 0}
}
