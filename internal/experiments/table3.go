package experiments

import (
	"context"
	"fmt"
	"strings"

	"whisper/internal/core"
	"whisper/internal/cpu"
	"whisper/internal/kernel"
	"whisper/internal/pmu"
	"whisper/internal/sched"
)

// Table3Scene is one (CPU, workload) block of the paper's Table 3: the same
// probe run under two conditions, with the PMU toolset's differential
// analysis between them.
type Table3Scene struct {
	Name   string
	CPU    string
	LabelA string // e.g. "Jcc not trigger" / "unmapped"
	LabelB string // e.g. "Jcc trigger" / "mapped"
	Diffs  []pmu.Diff
	// KeyEvents are the paper's rows for this scene with expected
	// directions: +1 (B larger), -1 (B smaller), 0 (unchanged).
	KeyEvents []KeyEvent
}

// KeyEvent is one paper row: expected direction and whether we matched it.
type KeyEvent struct {
	Event   string
	PaperA  float64
	PaperB  float64
	WantDir int
	GotA    float64
	GotB    float64
	GotDir  int
	Match   bool
}

const table3Runs = 24

func dirOf(a, b float64) int {
	const eps = 0.5
	switch {
	case b > a+eps:
		return 1
	case b < a-eps:
		return -1
	}
	return 0
}

// evaluateKeys fills measured values and direction matches from raw runs.
func evaluateKeys(keys []KeyEvent, a, b []pmu.Run) []KeyEvent {
	mean := func(runs []pmu.Run, e pmu.Event) float64 {
		var s float64
		for _, r := range runs {
			s += float64(r.Get(e))
		}
		return s / float64(len(runs))
	}
	out := make([]KeyEvent, len(keys))
	for i, k := range keys {
		e, ok := pmu.ByName(k.Event)
		if !ok {
			k.Match = false
			out[i] = k
			continue
		}
		k.GotA = mean(a, e)
		k.GotB = mean(b, e)
		k.GotDir = dirOf(k.GotA, k.GotB)
		k.Match = k.GotDir == k.WantDir
		out[i] = k
	}
	return out
}

// Table3 runs all four Table 3 scenes and the KASLR DTLB scene. Each scene
// boots its own machine, so the five scenes are independent scheduler cells;
// the per-scene seed offsets (seed..seed+4) are the original serial sweep's.
func Table3(ex Exec, seed int64) ([]Table3Scene, error) {
	jobs := []sched.Job[Table3Scene]{
		// Scene: TET-CC on i7-6700 (branch/stall events).
		{Key: "cc-i7-6700", Run: func(context.Context, int64) (Table3Scene, error) {
			return sceneCC(cpu.I7_6700(), seed, []KeyEvent{
				{Event: "BR_MISP_EXEC.INDIRECT", PaperA: 0, PaperB: 1, WantDir: 1},
				{Event: "BR_MISP_EXEC.ALL_BRANCHES", PaperA: 0, PaperB: 2, WantDir: 1},
				{Event: "RESOURCE_STALLS.ANY", PaperA: 15, PaperB: 21, WantDir: 1},
			})
		}},
		// Scene: TET-CC on i7-7700 (frontend DSB/MITE shift — also Fig. 3).
		{Key: "cc-i7-7700", Run: func(context.Context, int64) (Table3Scene, error) {
			return sceneCC(cpu.I7_7700(), seed+1, []KeyEvent{
				{Event: "IDQ.DSB_UOPS", PaperA: 119, PaperB: 115, WantDir: -1},
				{Event: "IDQ.MS_MITE_UOPS", PaperA: 77, PaperB: 97, WantDir: 1},
				{Event: "IDQ.ALL_MITE_CYCLES_ANY_UOPS", PaperA: 35, PaperB: 45, WantDir: 1},
				{Event: "UOPS_EXECUTED.CORE_CYCLES_NONE", PaperA: 110, PaperB: 116, WantDir: 1},
			})
		}},
		// Scene: TET-MD on i7-7700 (backend stalls and recovery).
		{Key: "md-i7-7700", Run: func(context.Context, int64) (Table3Scene, error) {
			return sceneMD(seed + 2)
		}},
		// Scene: TET-CC on Ryzen 5 5600G (AMD events).
		{Key: "cc-ryzen-5600g", Run: func(context.Context, int64) (Table3Scene, error) {
			return sceneCC(cpu.Ryzen5600G(), seed+3, []KeyEvent{
				{Event: "de_dis_dispatch_token_stalls2.retire_token_stall", PaperA: 4, PaperB: 84, WantDir: 1},
				{Event: "de_dis_uop_queue_empty_di0", PaperA: 182, PaperB: 195, WantDir: 1},
				{Event: "ic_fw32", PaperA: 661, PaperB: 690, WantDir: 1},
			})
		}},
		// Scene: TET-KASLR on i9-10980XE (memory-subsystem events,
		// unmapped vs mapped).
		{Key: "kaslr-i9-10980xe", Run: func(context.Context, int64) (Table3Scene, error) {
			return sceneKASLR(seed + 4)
		}},
	}
	return sched.Map(ex.ctx(), ex.opts("table3", seed), jobs)
}

// sceneCC measures the covert-channel probe with the transient Jcc not
// triggered (A) vs triggered (B).
func sceneCC(model cpu.Model, seed int64, keys []KeyEvent) (Table3Scene, error) {
	k, err := boot("table3", model, kernel.Config{KASLR: true}, seed)
	if err != nil {
		return Table3Scene{}, err
	}
	defer recycle(k)
	m := k.Machine()
	pr, err := core.NewProber(m, core.SuppressTSX, false)
	if err != nil {
		return Table3Scene{}, err
	}
	// Warm up.
	for i := 0; i < 16; i++ {
		if _, err := pr.ProbeStable(core.UnmappedVA, false); err != nil {
			return Table3Scene{}, err
		}
	}
	var probeErr error
	runA := pmu.Collect(m.PMU, table3Runs, func() {
		if _, err := pr.ProbeStable(core.UnmappedVA, false); err != nil {
			probeErr = err
		}
	})
	runB := pmu.Collect(m.PMU, table3Runs, func() {
		if _, err := pr.ProbeStable(core.UnmappedVA, true); err != nil {
			probeErr = err
		}
	})
	if probeErr != nil {
		return Table3Scene{}, probeErr
	}
	events := pmu.EventsForVendor(model.Vendor)
	return Table3Scene{
		Name:      "TET-CC",
		CPU:       model.Name,
		LabelA:    "Jcc not trigger",
		LabelB:    "Jcc trigger",
		Diffs:     pmu.Differential(runA, runB, events, 3.0),
		KeyEvents: evaluateKeys(keys, runA, runB),
	}, nil
}

// sceneMD measures the TET-MD probe with a non-matching (A) vs matching (B)
// test value on the i7-7700.
func sceneMD(seed int64) (Table3Scene, error) {
	model := cpu.I7_7700()
	k, err := boot("table3", model, kernel.Config{KASLR: true}, seed)
	if err != nil {
		return Table3Scene{}, err
	}
	defer recycle(k)
	secret := byte('S')
	k.WriteSecret([]byte{secret})
	m := k.Machine()
	pr, err := core.NewProber(m, core.SuppressTSX, true)
	if err != nil {
		return Table3Scene{}, err
	}
	probe := func(test uint64) error {
		// De-train, then measure — the sweep's steady state.
		for i := 0; i < 2; i++ {
			if _, err := pr.Probe(k.SecretVA(), 256, 0); err != nil {
				return err
			}
		}
		_, err := pr.Probe(k.SecretVA(), test, 0)
		return err
	}
	for i := 0; i < 16; i++ {
		if err := probe(0); err != nil {
			return Table3Scene{}, err
		}
	}
	var probeErr error
	runA := pmu.Collect(m.PMU, table3Runs, func() {
		if err := probe(uint64(secret) + 1); err != nil {
			probeErr = err
		}
	})
	runB := pmu.Collect(m.PMU, table3Runs, func() {
		if err := probe(uint64(secret)); err != nil {
			probeErr = err
		}
	})
	if probeErr != nil {
		return Table3Scene{}, probeErr
	}
	keys := []KeyEvent{
		{Event: "RESOURCE_STALLS.ANY", PaperA: 15, PaperB: 21, WantDir: 1},
		{Event: "CYCLE_ACTIVITY.STALLS_TOTAL", PaperA: 320, PaperB: 331, WantDir: 1},
		{Event: "UOPS_EXECUTED.STALL_CYCLES", PaperA: 325, PaperB: 332, WantDir: 1},
		{Event: "INT_MISC.RECOVERY_CYCLES_ANY", PaperA: 24, PaperB: 29, WantDir: 1},
		{Event: "INT_MISC.CLEAR_RESTEER_CYCLES", PaperA: 27, PaperB: 39, WantDir: 1},
		{Event: "RS_EVENTS.EMPTY_CYCLES", PaperA: 202, PaperB: 218, WantDir: 1},
	}
	return Table3Scene{
		Name:      "TET-MD",
		CPU:       model.Name,
		LabelA:    "Jcc not trigger",
		LabelB:    "Jcc trigger",
		Diffs:     pmu.Differential(runA, runB, pmu.EventsForVendor(model.Vendor), 3.0),
		KeyEvents: evaluateKeys(keys, runA, runB),
	}, nil
}

// sceneKASLR measures the KASLR probe's DTLB behaviour: unmapped (A) vs
// mapped (B) targets on the i9-10980XE, each probe preceded by a TLB
// eviction and a warm probe (the attack's steady state).
func sceneKASLR(seed int64) (Table3Scene, error) {
	model := cpu.I9_10980XE()
	k, err := boot("table3", model, kernel.Config{KASLR: true}, seed)
	if err != nil {
		return Table3Scene{}, err
	}
	defer recycle(k)
	m := k.Machine()
	pr, err := core.NewProber(m, core.SuppressTSX, true)
	if err != nil {
		return Table3Scene{}, err
	}
	mapped := k.KASLRBase()
	unmapped := k.ProbeTarget((k.BaseSlot() + kernel.ImageSlots + 7) % kernel.NumSlots)
	probe := func(target uint64) error {
		_, err := pr.Probe(target, 256, 0)
		return err
	}
	measure := func(target uint64) []pmu.Run {
		return pmu.Collect(m.PMU, table3Runs, func() {
			k.EvictTLB()
			if err := probe(target); err != nil { // warm: fills TLB iff mapped
				return
			}
			_ = probe(target) // measured probe
		})
	}
	runA := measure(unmapped)
	runB := measure(mapped)
	keys := []KeyEvent{
		{Event: "DTLB_LOAD_MISSES.MISS_CAUSES_A_WALK", PaperA: 2, PaperB: 0, WantDir: -1},
		{Event: "DTLB_LOAD_MISSES.WALK_ACTIVE", PaperA: 62, PaperB: 0, WantDir: -1},
	}
	return Table3Scene{
		Name:      "TET-KASLR",
		CPU:       model.Name,
		LabelA:    "unmapped",
		LabelB:    "mapped",
		Diffs:     pmu.Differential(runA, runB, pmu.EventsForVendor(model.Vendor), 3.0),
		KeyEvents: evaluateKeys(keys, runA, runB),
	}, nil
}

// RenderTable3 formats the scenes with paper-vs-measured key rows.
func RenderTable3(scenes []Table3Scene) string {
	var b strings.Builder
	fmt.Fprintln(&b, "Table 3: Key performance monitor counter values (paper vs measured means)")
	for _, s := range scenes {
		fmt.Fprintf(&b, "\n%s — %s  (%s vs %s)\n", s.CPU, s.Name, s.LabelA, s.LabelB)
		fmt.Fprintf(&b, "  %-50s %10s %10s | %10s %10s %6s\n",
			"Event", "paper A", "paper B", "meas A", "meas B", "dir")
		for _, kv := range s.KeyEvents {
			fmt.Fprintf(&b, "  %-50s %10.0f %10.0f | %10.1f %10.1f %6s\n",
				kv.Event, kv.PaperA, kv.PaperB, kv.GotA, kv.GotB, check(kv.Match))
		}
	}
	return b.String()
}
