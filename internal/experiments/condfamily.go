package experiments

import (
	"context"
	"fmt"
	"strings"

	"whisper/internal/core"
	"whisper/internal/cpu"
	"whisper/internal/isa"
	"whisper/internal/kernel"
	"whisper/internal/sched"
	"whisper/internal/stats"
)

// CondRow is one conditional-jump flavour's TET signal (§5: "at least 3
// types of Jcc instructions can be used ... we believe that all the
// conditional jump instructions of x86 chips could be exploited").
type CondRow struct {
	Cond      isa.Cond
	Name      string
	QuietToTE uint64
	TrigToTE  uint64
	Delta     int64
}

// condOperands returns RCX/RDX pairs that make the condition evaluate taken
// (trigger) and not-taken (quiet) after `cmp rcx, rdx`.
func condOperands(c isa.Cond) (trigCx, trigDx, quietCx, quietDx uint64, ok bool) {
	switch c {
	case isa.CondE: // ZF=1
		return 5, 5, 5, 6, true
	case isa.CondNE:
		return 5, 6, 5, 5, true
	case isa.CondC: // CF=1: rcx < rdx
		return 3, 9, 9, 3, true
	case isa.CondNC:
		return 9, 3, 3, 9, true
	case isa.CondS: // SF=1: negative difference
		return 3, 9, 9, 3, true
	case isa.CondNS:
		return 9, 3, 3, 9, true
	case isa.CondLE: // ZF=1 or SF!=OF
		return 3, 9, 9, 3, true
	case isa.CondG:
		return 9, 3, 3, 9, true
	}
	return 0, 0, 0, 0, false
}

var condNames = map[isa.Cond]string{
	isa.CondE:  "JE/JZ",
	isa.CondNE: "JNE/JNZ",
	isa.CondC:  "JC/JB",
	isa.CondNC: "JNC/JAE",
	isa.CondS:  "JS",
	isa.CondNS: "JNS",
	isa.CondLE: "JLE",
	isa.CondG:  "JG",
}

// CondFamily measures the TET signal for every conditional-jump flavour the
// ISA implements, on the i7-7700. The paper verifies JE/JZ, JNE/JNZ and JC;
// this sweep covers the whole family. Each flavour boots its own machine
// from the same seed, so the flavours are independent scheduler cells.
func CondFamily(ex Exec, seed int64) ([]CondRow, error) {
	var jobs []sched.Job[CondRow]
	for c := isa.CondE; c <= isa.CondG; c++ {
		c := c
		if _, _, _, _, ok := condOperands(c); !ok {
			continue
		}
		jobs = append(jobs, sched.Job[CondRow]{
			Key: condNames[c],
			Run: func(context.Context, int64) (CondRow, error) {
				return condRow(c, seed)
			},
		})
	}
	return sched.Map(ex.ctx(), ex.opts("condfamily", seed), jobs)
}

// condRow measures one conditional-jump flavour on a fresh machine.
func condRow(c isa.Cond, seed int64) (CondRow, error) {
	trigCx, trigDx, quietCx, quietDx, ok := condOperands(c)
	if !ok {
		return CondRow{}, fmt.Errorf("condfamily: no operands for cond %d", c)
	}
	k, err := boot("condfamily", cpu.I7_7700(), kernel.Config{KASLR: true}, seed)
	if err != nil {
		return CondRow{}, err
	}
	defer recycle(k)
	prog, err := condGadget(c)
	if err != nil {
		return CondRow{}, err
	}
	p := k.Machine().Pipe
	probe := func(cx, dx uint64) (uint64, error) {
		p.SetReg(isa.RBX, core.UnmappedVA)
		p.SetReg(isa.RCX, cx)
		p.SetReg(isa.RDX, dx)
		for attempt := 0; attempt < 4; attempt++ {
			if _, err := p.Exec(prog, 500_000); err != nil {
				return 0, err
			}
			if t1, t2 := p.Reg(isa.RSI), p.Reg(isa.RDI); t2 >= t1 {
				return t2 - t1, nil
			}
		}
		return 0, fmt.Errorf("condfamily: timer unusable")
	}
	measure := func(cx, dx uint64) (uint64, error) {
		// De-train with quiet probes, then measure; median of 9.
		var samples []uint64
		for i := 0; i < 9; i++ {
			for j := 0; j < 2; j++ {
				if _, err := probe(quietCx, quietDx); err != nil {
					return 0, err
				}
			}
			t, err := probe(cx, dx)
			if err != nil {
				return 0, err
			}
			samples = append(samples, t)
		}
		return stats.MedianU64(samples), nil
	}
	// Warm up.
	for i := 0; i < 12; i++ {
		if _, err := probe(quietCx, quietDx); err != nil {
			return CondRow{}, err
		}
	}
	quiet, err := measure(quietCx, quietDx)
	if err != nil {
		return CondRow{}, err
	}
	trig, err := measure(trigCx, trigDx)
	if err != nil {
		return CondRow{}, err
	}
	return CondRow{
		Cond:      c,
		Name:      condNames[c],
		QuietToTE: quiet,
		TrigToTE:  trig,
		Delta:     int64(trig) - int64(quiet),
	}, nil
}

// condGadget is the Fig. 1a gadget with a parameterised condition code.
func condGadget(c isa.Cond) (*isa.Program, error) {
	b := isa.NewBuilder(kernel.UserCodeBase + 0x38000)
	b.Rdtsc(isa.RSI)
	b.Lfence()
	b.Xbegin("abort")
	b.LoadB(isa.RAX, isa.RBX, 0)
	b.Cmp(isa.RCX, isa.RDX)
	b.Jcc(c, "taken")
	b.Lfence()
	b.Jmp("end")
	b.Label("taken")
	b.Nop()
	b.Label("end")
	b.Xend()
	b.Halt()
	b.Label("abort")
	b.Rdtsc(isa.RDI)
	b.Halt()
	return b.Assemble()
}

// RenderCondFamily formats the sweep.
func RenderCondFamily(rows []CondRow) string {
	var b strings.Builder
	fmt.Fprintln(&b, "§5: TET signal across the conditional-jump family (i7-7700)")
	fmt.Fprintf(&b, "%-10s %12s %12s %8s\n", "Jcc", "quiet ToTE", "trig ToTE", "delta")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s %12d %12d %+8d\n", r.Name, r.QuietToTE, r.TrigToTE, r.Delta)
	}
	return b.String()
}
