package experiments

import (
	"context"
	"fmt"
	"strings"

	"whisper/internal/core"
	"whisper/internal/cpu"
	"whisper/internal/kernel"
	"whisper/internal/sched"
	"whisper/internal/smt"
	"whisper/internal/stats"
)

// attackOrder is the canonical family order: the blocks always print in this
// sequence, so the suite's output is byte-identical at any Exec.Parallel.
var attackOrder = []string{"cc", "md", "zbl", "rsb", "v1", "kaslr", "smt"}

// AttackNames returns every attack family AttackSuite can run, in the order
// their blocks print.
func AttackNames() []string {
	return append([]string(nil), attackOrder...)
}

// AttackSuite runs the selected attack families (nil or empty only = all) on
// the given model and kernel config, planting secret as the victim data, and
// returns the concatenated per-attack report blocks — the body of
// `whisper -all`. Each family is one scheduler job booting its own machine
// from sched.DeriveSeed(rootSeed, family), so a block's bytes depend only on
// (model, cfg, secret, rootSeed, family): filtering families or changing
// Exec.Parallel never changes any block that is produced.
func AttackSuite(ex Exec, model cpu.Model, cfg kernel.Config, secret []byte, rootSeed int64, only []string) (string, error) {
	selected, err := selectAttacks(only)
	if err != nil {
		return "", err
	}
	want := secret
	report := func(b *strings.Builder, m *cpu.Machine, name string, res core.LeakResult) {
		fmt.Fprintf(b, "%s leaked %q\n", name, res.Data)
		fmt.Fprintf(b, "  throughput %.1f B/s, byte error rate %.1f%%, %d simulated cycles (%.4fs at %.1f GHz)\n",
			res.Bps, stats.ByteErrorRate(res.Data, want)*100, res.Cycles,
			m.Seconds(res.Cycles), model.ClockHz/1e9)
	}
	runners := map[string]func(ctx context.Context, seed int64) (string, error){
		"cc": func(_ context.Context, seed int64) (string, error) {
			k, err := boot("attacks", model, cfg, seed)
			if err != nil {
				return "", err
			}
			defer recycle(k)
			a, err := core.NewTETCovertChannel(k)
			if err != nil {
				return "", err
			}
			res, err := a.Transfer(want)
			if err != nil {
				return "", err
			}
			var b strings.Builder
			report(&b, k.Machine(), "TET covert channel", res)
			return b.String(), nil
		},
		"md": func(jctx context.Context, seed int64) (string, error) {
			// The multi-byte Meltdown leak shards across per-byte machine
			// replicas (core.Farm); its inner pool shares the run's
			// parallelism budget.
			f := &core.Farm{
				Model: model, Config: cfg, RootSeed: seed,
				Parallel: ex.Parallel, Ctx: jctx, Obs: ex.Obs,
			}
			res, err := f.LeakSecret(want)
			if err != nil {
				return "", err
			}
			var b strings.Builder
			fmt.Fprintf(&b, "TET-Meltdown (replica farm) leaked %q\n", res.Data)
			fmt.Fprintf(&b, "  critical path %d simulated cycles (%.1f B/s at %.1f GHz), byte error rate %.1f%%\n",
				res.Cycles, res.Bps, model.ClockHz/1e9, stats.ByteErrorRate(res.Data, want)*100)
			return b.String(), nil
		},
		"zbl": func(_ context.Context, seed int64) (string, error) {
			k, err := boot("attacks", model, cfg, seed)
			if err != nil {
				return "", err
			}
			defer recycle(k)
			k.WriteSecret(want)
			a, err := core.NewTETZombieload(k)
			if err != nil {
				return "", err
			}
			res, err := a.Leak(len(want))
			if err != nil {
				return "", err
			}
			var b strings.Builder
			report(&b, k.Machine(), "TET-Zombieload", res)
			return b.String(), nil
		},
		"rsb": func(_ context.Context, seed int64) (string, error) {
			k, err := boot("attacks", model, cfg, seed)
			if err != nil {
				return "", err
			}
			defer recycle(k)
			secretVA := uint64(kernel.UserDataBase + 0x500)
			pa, ok := k.UserAS().Translate(secretVA)
			if !ok {
				return "", fmt.Errorf("secret VA unmapped")
			}
			k.Machine().Phys.StoreBytes(pa, want)
			a, err := core.NewTETRSB(k)
			if err != nil {
				return "", err
			}
			res, err := a.Leak(secretVA, len(want))
			if err != nil {
				return "", err
			}
			var b strings.Builder
			report(&b, k.Machine(), "TET-Spectre-RSB", res)
			return b.String(), nil
		},
		"v1": func(_ context.Context, seed int64) (string, error) {
			k, err := boot("attacks", model, cfg, seed)
			if err != nil {
				return "", err
			}
			defer recycle(k)
			v1, err := core.NewTETSpectreV1(k)
			if err != nil {
				return "", err
			}
			pa, ok := k.UserAS().Translate(v1.ArrayVA() + v1.ArrayLen())
			if !ok {
				return "", fmt.Errorf("V1 secret region unmapped")
			}
			k.Machine().Phys.StoreBytes(pa, want)
			res, err := v1.Leak(v1.ArrayLen(), len(want))
			if err != nil {
				return "", err
			}
			var b strings.Builder
			report(&b, k.Machine(), "TET-Spectre-V1 (extension)", res)
			return b.String(), nil
		},
		"kaslr": func(_ context.Context, seed int64) (string, error) {
			k, err := boot("attacks", model, cfg, seed)
			if err != nil {
				return "", err
			}
			defer recycle(k)
			a, err := core.NewTETKASLR(k)
			if err != nil {
				return "", err
			}
			res, err := a.Locate()
			if err != nil {
				return "", err
			}
			verdict := "WRONG"
			if res.Base == k.KASLRBase() {
				verdict = "correct"
			}
			return fmt.Sprintf("TET-KASLR recovered base %#x (slot %d) in %.4f s — %s\n",
				res.Base, res.Slot, res.Seconds, verdict), nil
		},
		"smt": func(_ context.Context, seed int64) (string, error) {
			k, err := boot("attacks", model, cfg, seed)
			if err != nil {
				return "", err
			}
			defer recycle(k)
			a, err := smt.NewChannel(k, smt.ModeReliable)
			if err != nil {
				return "", err
			}
			payload := want
			if len(payload) > 4 {
				payload = payload[:4]
			}
			res, err := a.Transfer(payload)
			if err != nil {
				return "", err
			}
			return fmt.Sprintf("SMT covert channel received %q (%.2f B/s, bit error %.1f%%)\n",
				res.Data, res.Bps, stats.BitErrorRate(res.Data, payload)*100), nil
		},
	}
	jobs := make([]sched.Job[string], 0, len(selected))
	for _, name := range selected {
		jobs = append(jobs, sched.Job[string]{Key: name, Run: runners[name]})
	}
	outs, err := sched.Map(ex.ctx(), sched.Options{
		Name: "attacks", Parallel: ex.Parallel, RootSeed: rootSeed, Obs: ex.Obs,
	}, jobs)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	for _, o := range outs {
		b.WriteString(o)
	}
	return b.String(), nil
}

// selectAttacks validates the filter and returns it in canonical block order.
func selectAttacks(only []string) ([]string, error) {
	if len(only) == 0 {
		return attackOrder, nil
	}
	asked := make(map[string]bool, len(only))
	for _, name := range only {
		found := false
		for _, known := range attackOrder {
			if name == known {
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("experiments: unknown attack %q (have %v)", name, attackOrder)
		}
		asked[name] = true
	}
	var sel []string
	for _, name := range attackOrder {
		if asked[name] {
			sel = append(sel, name)
		}
	}
	return sel, nil
}
