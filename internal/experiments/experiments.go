// Package experiments regenerates every table and figure of the paper's
// evaluation on the simulated machines: Fig. 1b (ToTE frequency plot),
// Table 1 (taxonomy), Table 2 (attack matrix), Table 3 (PMU counters),
// Fig. 3/4 (frontend and transient-flow analyses), the §4.1 throughput
// numbers, and the §4.5 KASLR suite. The cmd/ tools and the repository's
// benchmarks are thin wrappers over this package; EXPERIMENTS.md records
// paper-vs-measured for each artefact.
package experiments

import (
	"context"
	"fmt"
	"strings"

	"whisper/internal/cpu"
	"whisper/internal/kernel"
	"whisper/internal/obs"
	"whisper/internal/sched"
)

// DefaultSeed makes every experiment reproducible by default.
const DefaultSeed = 7

// Exec carries the cross-cutting execution knobs every sweep shares: the
// cancellation context, the worker count for the internal/sched pool the
// sweep shards its independent cells over, and the telemetry registry.
//
// The zero value is valid and means: background context, GOMAXPROCS
// workers, no telemetry. Every sweep's output is byte-identical at every
// Parallel setting — each cell's machine boots from a seed fixed by the
// cell's identity, and the scheduler collects results in cell order — so
// Parallel only trades wall-clock for CPU.
type Exec struct {
	Ctx      context.Context
	Parallel int
	Obs      *obs.Registry
}

// Serial returns an Exec that runs every cell on one worker — the reference
// ordering the parallel runs are measured against.
func Serial() Exec { return Exec{Parallel: 1} }

// ctx resolves the context, defaulting to Background.
func (ex Exec) ctx() context.Context {
	if ex.Ctx == nil {
		return context.Background()
	}
	return ex.Ctx
}

// opts builds the scheduler options for one sweep's pool.
func (ex Exec) opts(name string, seed int64) sched.Options {
	return sched.Options{Name: name, Parallel: ex.Parallel, RootSeed: seed, Obs: ex.Obs}
}

// machinePool recycles machines across sweep cells and repetitions. A pooled
// machine is Reset to the cell's seed before reuse, which is bit-identical to
// building it fresh, so cell results are independent of which (if any)
// machine is recycled — the property the determinism gate and the golden
// trace tests pin.
var machinePool = cpu.NewPool()

// MachinePoolStats reports the sweep machine pool's reuse counters. whisperd
// publishes them on /metrics, making cross-request machine reuse observable.
func MachinePoolStats() cpu.PoolStats { return machinePool.Stats() }

// boot builds a machine+kernel pair, drawing the machine from the pool.
func boot(model cpu.Model, cfg kernel.Config, seed int64) (*kernel.Kernel, error) {
	m, err := machinePool.Get(model, seed)
	if err != nil {
		return nil, err
	}
	return kernel.Boot(m, cfg)
}

// recycle returns a booted kernel's machine to the pool. Callers must have
// reduced the cell's results to plain values first: after recycle, nothing
// may touch k, its machine, or probers built on them.
func recycle(k *kernel.Kernel) {
	if k != nil {
		machinePool.Put(k.Machine())
	}
}

// check marks an outcome with the paper's ✓/✗ glyphs.
func check(ok bool) string {
	if ok {
		return "✓"
	}
	return "✗"
}

// Table1 returns the static side-channel taxonomy of the paper's Table 1.
// It is a positioning table, not a measurement; it is included so every
// numbered artefact of the paper has a generator.
func Table1() string {
	var b strings.Builder
	fmt.Fprintln(&b, "Table 1: Comparison of Side Channel Attacks")
	fmt.Fprintf(&b, "%-10s %-34s %-34s %-22s\n", "Type", "Stateful", "Stateless", "Transient-Only")
	fmt.Fprintf(&b, "%-10s %-34s %-34s %-22s\n", "Direct",
		"Cache (Flush+Reload), BPU", "Port contention, AVX, EntryBleed", "TET-MD, TET-ZBL, TET-RSB")
	fmt.Fprintf(&b, "%-10s %-34s %-34s %-22s\n", "Indirect",
		"TLB (TLBleed, AnC)", "Binoculars", "TET-KASLR")
	return b.String()
}
