// Package experiments regenerates every table and figure of the paper's
// evaluation on the simulated machines: Fig. 1b (ToTE frequency plot),
// Table 1 (taxonomy), Table 2 (attack matrix), Table 3 (PMU counters),
// Fig. 3/4 (frontend and transient-flow analyses), the §4.1 throughput
// numbers, and the §4.5 KASLR suite. The cmd/ tools and the repository's
// benchmarks are thin wrappers over this package; EXPERIMENTS.md records
// paper-vs-measured for each artefact.
package experiments

import (
	"context"
	"fmt"
	"os"
	"strings"
	"sync/atomic"

	"whisper/internal/cpu"
	"whisper/internal/kernel"
	"whisper/internal/obs"
	"whisper/internal/sched"
	"whisper/internal/snapshot"
)

// DefaultSeed makes every experiment reproducible by default.
const DefaultSeed = 7

// Exec carries the cross-cutting execution knobs every sweep shares: the
// cancellation context, the worker count for the internal/sched pool the
// sweep shards its independent cells over, and the telemetry registry.
//
// The zero value is valid and means: background context, GOMAXPROCS
// workers, no telemetry. Every sweep's output is byte-identical at every
// Parallel setting — each cell's machine boots from a seed fixed by the
// cell's identity, and the scheduler collects results in cell order — so
// Parallel only trades wall-clock for CPU.
type Exec struct {
	Ctx      context.Context
	Parallel int
	Obs      *obs.Registry
}

// Serial returns an Exec that runs every cell on one worker — the reference
// ordering the parallel runs are measured against.
func Serial() Exec { return Exec{Parallel: 1} }

// ctx resolves the context, defaulting to Background.
func (ex Exec) ctx() context.Context {
	if ex.Ctx == nil {
		return context.Background()
	}
	return ex.Ctx
}

// opts builds the scheduler options for one sweep's pool.
func (ex Exec) opts(name string, seed int64) sched.Options {
	return sched.Options{Name: name, Parallel: ex.Parallel, RootSeed: seed, Obs: ex.Obs}
}

// machinePool recycles machines across sweep cells and repetitions. A pooled
// machine is Reset to the cell's seed before reuse, which is bit-identical to
// building it fresh, so cell results are independent of which (if any)
// machine is recycled — the property the determinism gate and the golden
// trace tests pin.
var machinePool = cpu.NewPool()

// MachinePoolStats reports the sweep machine pool's reuse counters. whisperd
// publishes them on /metrics, making cross-request machine reuse observable.
func MachinePoolStats() cpu.PoolStats { return machinePool.Stats() }

// snapMemo caches one warm-state checkpoint per distinct boot tuple
// (model, kernel config, seed). Sweep cells, parallel workers, and repeated
// serving requests that boot the same tuple fork from the shared immutable
// snapshot instead of re-simulating the boot; the fork is bit-identical to
// the reboot (internal/snapshot's tests and FuzzSnapshotRestore pin it), so
// results are independent of hit/miss history and of which worker captured.
var snapMemo = snapshot.NewMemo(0)

// snapshotForking gates fork-per-cell; on by default, disabled with
// SetSnapshotForking(false) or WHISPER_SNAPSHOTS=0/off in the environment.
var snapshotForking atomic.Bool

func init() {
	v := strings.ToLower(os.Getenv("WHISPER_SNAPSHOTS"))
	snapshotForking.Store(v != "0" && v != "off" && v != "false")
}

// SetSnapshotForking toggles warm-state snapshot reuse across boots. Both
// settings produce byte-identical experiment output (the determinism tests
// compare them); off exists as a bisection aid and for benchmarking the
// reboot-per-cell baseline.
func SetSnapshotForking(on bool) { snapshotForking.Store(on) }

// SnapshotForking reports whether warm-state snapshot reuse is enabled.
func SnapshotForking() bool { return snapshotForking.Load() }

// SnapshotMemoStats reports the warm-state memo's hit/miss/eviction traffic
// and resident footprint. whisperd publishes them on /metrics alongside the
// machine pool gauges.
func SnapshotMemoStats() snapshot.Stats { return snapMemo.Stats() }

// boot builds a machine+kernel pair for one sweep cell, forking from the
// warm-state memo when a snapshot of this exact boot tuple exists and
// booting (then capturing for the next caller) otherwise. family labels the
// experiment family for the memo's pinning, keeping each family's hot
// snapshot resident across unrelated sweeps.
func boot(family string, model cpu.Model, cfg kernel.Config, seed int64) (*kernel.Kernel, error) {
	if !snapshotForking.Load() {
		m, err := machinePool.Get(model, seed)
		if err != nil {
			return nil, err
		}
		return kernel.Boot(m, cfg)
	}
	key := snapshot.Key{Model: model, Kernel: cfg, Seed: seed}
	s, capture := snapMemo.Get(key, family)
	if s != nil {
		return s.ForkKernel(machinePool)
	}
	m, err := machinePool.Get(model, seed)
	if err != nil {
		return nil, err
	}
	k, err := kernel.Boot(m, cfg)
	if err != nil {
		return nil, err
	}
	// Capture only boot tuples the memo has seen miss before: one-shot cells
	// would pay the checkpoint without ever forking from it.
	if capture {
		if s, err := snapshot.CaptureKernel(k); err == nil {
			snapMemo.Put(key, s, family)
		}
	}
	return k, nil
}

// recycle returns a booted kernel's machine to the pool. Callers must have
// reduced the cell's results to plain values first: after recycle, nothing
// may touch k, its machine, or probers built on them.
func recycle(k *kernel.Kernel) {
	if k != nil {
		machinePool.Put(k.Machine())
	}
}

// check marks an outcome with the paper's ✓/✗ glyphs.
func check(ok bool) string {
	if ok {
		return "✓"
	}
	return "✗"
}

// Table1 returns the static side-channel taxonomy of the paper's Table 1.
// It is a positioning table, not a measurement; it is included so every
// numbered artefact of the paper has a generator.
func Table1() string {
	var b strings.Builder
	fmt.Fprintln(&b, "Table 1: Comparison of Side Channel Attacks")
	fmt.Fprintf(&b, "%-10s %-34s %-34s %-22s\n", "Type", "Stateful", "Stateless", "Transient-Only")
	fmt.Fprintf(&b, "%-10s %-34s %-34s %-22s\n", "Direct",
		"Cache (Flush+Reload), BPU", "Port contention, AVX, EntryBleed", "TET-MD, TET-ZBL, TET-RSB")
	fmt.Fprintf(&b, "%-10s %-34s %-34s %-22s\n", "Indirect",
		"TLB (TLBleed, AnC)", "Binoculars", "TET-KASLR")
	return b.String()
}
