package experiments

import (
	"context"
	"fmt"
	"strings"

	"whisper/internal/core"
	"whisper/internal/cpu"
	"whisper/internal/isa"
	"whisper/internal/kernel"
	"whisper/internal/pmu"
	"whisper/internal/sched"
	"whisper/internal/stats"
)

// Fig1bResult reproduces Figure 1b: the ToTE frequency data for a sweep of
// test values over a transient block whose Jcc triggers at the secret value.
type Fig1bResult struct {
	Secret      byte
	Samples     [256][]uint64 `json:"-"` // ToTE samples per test value
	ArgmaxVotes [256]int      // per-batch argmax votes
	Decoded     byte
}

// fig1bBatch is one batch's full test-value sweep and its argmax vote.
type fig1bBatch struct {
	totes [256]uint64
	vote  int
}

// Fig1b runs the Figure 1b experiment on the i7-7700. Each batch is an
// independent scheduler cell on its own machine, seeded by
// sched.DeriveSeed(seed, "batch/<i>") — the job key, never the worker — so
// the frequency plot is byte-identical at any Exec.Parallel.
func Fig1b(ex Exec, batches int, seed int64) (*Fig1bResult, error) {
	const secret = 'S'
	jobs := make([]sched.Job[fig1bBatch], batches)
	for batch := 0; batch < batches; batch++ {
		jobs[batch] = sched.Job[fig1bBatch]{
			Key: fmt.Sprintf("batch/%d", batch),
			Run: func(_ context.Context, bseed int64) (fig1bBatch, error) {
				k, err := boot("figures", cpu.I7_7700(), kernel.Config{KASLR: true}, bseed)
				if err != nil {
					return fig1bBatch{}, err
				}
				defer recycle(k)
				k.WriteSecret([]byte{secret})
				pr, err := core.NewProber(k.Machine(), core.SuppressTSX, true)
				if err != nil {
					return fig1bBatch{}, err
				}
				// Warm up the fresh machine's predictor/DSB state.
				for i := 0; i < 16; i++ {
					if _, err := pr.Probe(k.SecretVA(), 256, 0); err != nil {
						return fig1bBatch{}, err
					}
				}
				var out fig1bBatch
				for tv := 0; tv < 256; tv++ {
					t, err := pr.Probe(k.SecretVA(), uint64(tv), 0)
					if err != nil {
						return fig1bBatch{}, err
					}
					out.totes[tv] = t
				}
				out.vote = stats.Argmax(out.totes[:])
				return out, nil
			},
		}
	}
	results, err := sched.Map(ex.ctx(), ex.opts("fig1b", seed), jobs)
	if err != nil {
		return nil, err
	}
	res := &Fig1bResult{Secret: secret}
	for _, b := range results { // batch order, regardless of completion order
		for tv := 0; tv < 256; tv++ {
			res.Samples[tv] = append(res.Samples[tv], b.totes[tv])
		}
		res.ArgmaxVotes[b.vote]++
	}
	res.Decoded = byte(stats.ArgmaxInt(res.ArgmaxVotes[:]))
	return res, nil
}

// Render formats the frequency plot region around the secret plus the
// argmax votes (the two panels of Fig. 1b).
func (r *Fig1bResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 1b: ToTE by test value (secret = %q, decoded = %q)\n",
		r.Secret, r.Decoded)
	fmt.Fprintf(&b, "%8s %10s %10s\n", "value", "medianToTE", "votes")
	lo, hi := int(r.Secret)-4, int(r.Secret)+4
	for tv := lo; tv <= hi; tv++ {
		med := stats.MedianU64(r.Samples[tv])
		marker := ""
		if byte(tv) == r.Secret {
			marker = "  <-- secret (red box)"
		}
		fmt.Fprintf(&b, "%8d %10d %10d%s\n", tv, med, r.ArgmaxVotes[tv], marker)
	}
	return b.String()
}

// Fig3 reproduces Figure 3's frontend-resteer evidence: the DSB→MITE
// delivery shift and resteer cycles when the transient Jcc triggers; it is
// the i7-7700 TET-CC scene of Table 3.
func Fig3(seed int64) (Table3Scene, error) {
	return sceneCC(cpu.I7_7700(), seed, []KeyEvent{
		{Event: "IDQ.DSB_UOPS", PaperA: 119, PaperB: 115, WantDir: -1},
		{Event: "IDQ.MS_MITE_UOPS", PaperA: 77, PaperB: 97, WantDir: 1},
		{Event: "INT_MISC.CLEAR_RESTEER_CYCLES", PaperA: 27, PaperB: 39, WantDir: 1},
	})
}

// Fig4Point is one fence-distance configuration of the §5.2.5 experiment.
type Fig4Point struct {
	NopsBeforeFence int
	UopsNoTrigger   float64
	UopsTrigger     float64
	Delta           float64 // trigger - no-trigger
}

// Fig4 reproduces the Figure 4 / §5.2.5 transient-flow experiment: as the
// mfence moves further down the fall-through path (more nops before it), the
// UOPS_ISSUED.ANY delta between trigger and no-trigger flips sign — close
// fences throttle the fall-through path (trigger issues more), distant
// fences leave it free running until the rollback (trigger issues fewer).
func Fig4(ex Exec, seed int64) ([]Fig4Point, error) {
	sweep := []int{0, 2, 4, 8, 16, 24, 32, 48}
	jobs := make([]sched.Job[Fig4Point], len(sweep))
	for i, nops := range sweep {
		nops := nops
		jobs[i] = sched.Job[Fig4Point]{
			Key: fmt.Sprintf("nops/%d", nops),
			Run: func(context.Context, int64) (Fig4Point, error) {
				return fig4Point(nops, seed)
			},
		}
	}
	return sched.Map(ex.ctx(), ex.opts("fig4", seed), jobs)
}

// fig4Point measures one fence-distance configuration on a fresh machine.
func fig4Point(nops int, seed int64) (Fig4Point, error) {
	k, err := boot("figures", cpu.I7_6700(), kernel.Config{KASLR: true}, seed)
	if err != nil {
		return Fig4Point{}, err
	}
	defer recycle(k)
	m := k.Machine()
	prog, err := fig4Gadget(nops)
	if err != nil {
		return Fig4Point{}, err
	}
	probe := func(trigger bool) error {
		cmp := uint64(0)
		if trigger {
			cmp = 1
		}
		p := m.Pipe
		p.SetReg(isa.RBX, core.UnmappedVA)
		p.SetReg(isa.RDX, 1)
		p.SetReg(isa.RCX, cmp)
		_, err := p.Exec(prog, 500_000)
		return err
	}
	detrain := func() error {
		for i := 0; i < 2; i++ {
			if err := probe(false); err != nil {
				return err
			}
		}
		return nil
	}
	for i := 0; i < 12; i++ {
		if err := probe(false); err != nil {
			return Fig4Point{}, err
		}
	}
	var probeErr error
	const runs = 16
	mean := func(trigger bool) float64 {
		var total float64
		for i := 0; i < runs; i++ {
			if err := detrain(); err != nil {
				probeErr = err
				return 0
			}
			before := m.PMU.Read(pmu.UopsIssuedAny)
			if err := probe(trigger); err != nil {
				probeErr = err
				return 0
			}
			total += float64(m.PMU.Read(pmu.UopsIssuedAny) - before)
		}
		return total / runs
	}
	a := mean(false)
	b := mean(true)
	if probeErr != nil {
		return Fig4Point{}, probeErr
	}
	return Fig4Point{
		NopsBeforeFence: nops,
		UopsNoTrigger:   a,
		UopsTrigger:     b,
		Delta:           b - a,
	}, nil
}

// fig4Gadget is the transient-flow gadget with a parameterised nop sled
// before the fall-through path's mfence.
func fig4Gadget(nopsBeforeFence int) (*isa.Program, error) {
	b := isa.NewBuilder(kernel.UserCodeBase + 0x30000)
	b.Rdtsc(isa.RSI)
	b.Lfence()
	b.Xbegin("abort")
	b.LoadB(isa.RAX, isa.RBX, 0) // faulting load opens the window
	b.Cmp(isa.RCX, isa.RDX)
	b.Jcc(isa.CondE, "taken")
	b.NopSled(nopsBeforeFence) // fall-through: path ① of Fig. 4
	b.Mfence()
	b.Jmp("end")
	b.Label("taken") // path ③ of Fig. 4
	b.NopSled(8)
	b.Label("end")
	b.Xend()
	b.Halt()
	b.Label("abort")
	b.Rdtsc(isa.RDI)
	b.Halt()
	return b.Assemble()
}

// RenderFig4 formats the sweep.
func RenderFig4(points []Fig4Point) string {
	var b strings.Builder
	fmt.Fprintln(&b, "Figure 4 / §5.2.5: UOPS_ISSUED.ANY vs fence distance")
	fmt.Fprintf(&b, "%16s %14s %14s %10s\n", "nops-to-fence", "no-trigger", "trigger", "delta")
	for _, p := range points {
		fmt.Fprintf(&b, "%16d %14.1f %14.1f %+10.1f\n",
			p.NopsBeforeFence, p.UopsNoTrigger, p.UopsTrigger, p.Delta)
	}
	return b.String()
}
