package experiments

import (
	"fmt"
	"strings"

	"whisper/internal/baseline"
	"whisper/internal/core"
	"whisper/internal/cpu"
	"whisper/internal/kernel"
	"whisper/internal/smt"
	"whisper/internal/stats"
)

// ThroughputRow is one channel/attack throughput measurement (§4.1, §4.4).
type ThroughputRow struct {
	Name     string
	CPU      string
	Bytes    int
	Bps      float64
	ErrRate  float64
	ErrKind  string  // "byte" or "bit" (the SMT rates in §4.4 are bit rates)
	PaperBps float64 // 0 when the paper reports none
	PaperErr float64
}

// randomPayload is deterministic pseudo-random data (the paper uses 1k
// random bytes).
func randomPayload(n int, seed byte) []byte {
	out := make([]byte, n)
	x := uint32(seed) | 0x9e3779b9
	for i := range out {
		x ^= x << 13
		x ^= x >> 17
		x ^= x << 5
		out[i] = byte(x)
	}
	return out
}

// Throughput measures every §4.1/§4.4 channel plus the cache-channel
// baselines. bytes sizes the payload (the paper uses 1024).
func Throughput(bytes int, seed int64) ([]ThroughputRow, error) {
	var rows []ThroughputRow
	add := func(name, cpuName string, payload, got []byte, res core.LeakResult, paperBps, paperErr float64) {
		rows = append(rows, ThroughputRow{
			Name:     name,
			CPU:      cpuName,
			Bytes:    len(payload),
			Bps:      res.Bps,
			ErrRate:  stats.ByteErrorRate(got, payload),
			ErrKind:  "byte",
			PaperBps: paperBps,
			PaperErr: paperErr,
		})
	}
	addBits := func(name, cpuName string, payload, got []byte, res core.LeakResult, paperBps, paperErr float64) {
		rows = append(rows, ThroughputRow{
			Name:     name,
			CPU:      cpuName,
			Bytes:    len(payload),
			Bps:      res.Bps,
			ErrRate:  stats.BitErrorRate(got, payload),
			ErrKind:  "bit",
			PaperBps: paperBps,
			PaperErr: paperErr,
		})
	}

	// TET-CC on i7-7700 (paper: 500 B/s, <5 % error).
	{
		k, err := boot(cpu.I7_7700(), kernel.Config{KASLR: true}, seed)
		if err != nil {
			return nil, err
		}
		cc, err := core.NewTETCovertChannel(k)
		if err != nil {
			return nil, err
		}
		payload := randomPayload(bytes, 1)
		res, err := cc.Transfer(payload)
		if err != nil {
			return nil, fmt.Errorf("throughput CC: %w", err)
		}
		add("TET-CC", k.Machine().Model.Name, payload, res.Data, res, 500, 0.05)
	}

	// TET-MD on i7-7700 (paper: 50 B/s, <3 % error).
	{
		k, err := boot(cpu.I7_7700(), kernel.Config{KASLR: true}, seed+1)
		if err != nil {
			return nil, err
		}
		payload := randomPayload(bytes, 2)
		k.WriteSecret(payload)
		md, err := core.NewTETMeltdown(k)
		if err != nil {
			return nil, err
		}
		res, err := md.Leak(k.SecretVA(), len(payload))
		if err != nil {
			return nil, fmt.Errorf("throughput MD: %w", err)
		}
		add("TET-MD", k.Machine().Model.Name, payload, res.Data, res, 50, 0.03)
	}

	// TET-ZBL on i7-7700 (paper reports success but no rate).
	{
		k, err := boot(cpu.I7_7700(), kernel.Config{KASLR: true}, seed+2)
		if err != nil {
			return nil, err
		}
		payload := randomPayload(bytes, 3)
		k.WriteSecret(payload)
		z, err := core.NewTETZombieload(k)
		if err != nil {
			return nil, err
		}
		res, err := z.Leak(len(payload))
		if err != nil {
			return nil, fmt.Errorf("throughput ZBL: %w", err)
		}
		add("TET-ZBL", k.Machine().Model.Name, payload, res.Data, res, 0, 0)
	}

	// TET-RSB on i9-13900K (paper: 21.5 KB/s, <0.1 % error).
	{
		k, err := boot(cpu.I9_13900K(), kernel.Config{KASLR: true}, seed+3)
		if err != nil {
			return nil, err
		}
		m := k.Machine()
		payload := randomPayload(bytes, 4)
		secretVA := uint64(kernel.UserDataBase + 0x400)
		pa, _ := k.UserAS().Translate(secretVA)
		m.Phys.StoreBytes(pa, payload)
		rsb, err := core.NewTETRSB(k)
		if err != nil {
			return nil, err
		}
		res, err := rsb.Leak(secretVA, len(payload))
		if err != nil {
			return nil, fmt.Errorf("throughput RSB: %w", err)
		}
		add("TET-RSB", m.Model.Name, payload, res.Data, res, 21500, 0.001)
	}

	// SMT channel, both operating points, on i7-7700.
	{
		k, err := boot(cpu.I7_7700(), kernel.Config{KASLR: true}, seed+4)
		if err != nil {
			return nil, err
		}
		ch, err := smt.NewChannel(k, smt.ModeReliable)
		if err != nil {
			return nil, err
		}
		payload := randomPayload(minInt(bytes, 4), 5) // second-scale windows
		res, err := ch.Transfer(payload)
		if err != nil {
			return nil, fmt.Errorf("throughput SMT: %w", err)
		}
		addBits("SMT-CC (reliable)", k.Machine().Model.Name, payload, res.Data, res, 1, 0.05)
	}
	{
		k, err := boot(cpu.I7_7700(), kernel.Config{KASLR: true}, seed+5)
		if err != nil {
			return nil, err
		}
		ch, err := smt.NewChannel(k, smt.ModeSecSMT)
		if err != nil {
			return nil, err
		}
		payload := randomPayload(bytes, 6)
		res, err := ch.Transfer(payload)
		if err != nil {
			return nil, fmt.Errorf("throughput SecSMT: %w", err)
		}
		addBits("SMT-CC (SecSMT eval)", k.Machine().Model.Name, payload, res.Data, res, 268_000, 0.28)
	}

	// Baselines for comparison.
	{
		k, err := boot(cpu.I7_7700(), kernel.Config{KASLR: true}, seed+6)
		if err != nil {
			return nil, err
		}
		fr, err := baseline.NewFlushReload(k)
		if err != nil {
			return nil, err
		}
		payload := randomPayload(bytes, 7)
		res, err := fr.Transfer(payload)
		if err != nil {
			return nil, fmt.Errorf("throughput F+R: %w", err)
		}
		add("Flush+Reload CC (baseline)", k.Machine().Model.Name, payload, res.Data, res, 0, 0)
	}
	{
		k, err := boot(cpu.I7_7700(), kernel.Config{KASLR: true}, seed+7)
		if err != nil {
			return nil, err
		}
		payload := randomPayload(bytes, 8)
		k.WriteSecret(payload)
		md, err := baseline.NewMeltdownFR(k)
		if err != nil {
			return nil, err
		}
		res, err := md.Leak(k.SecretVA(), len(payload))
		if err != nil {
			return nil, fmt.Errorf("throughput MD-F+R: %w", err)
		}
		add("Meltdown-F+R (baseline)", k.Machine().Model.Name, payload, res.Data, res, 0, 0)
	}
	return rows, nil
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// RenderThroughput formats the §4.1 comparison.
func RenderThroughput(rows []ThroughputRow) string {
	var b strings.Builder
	fmt.Fprintln(&b, "§4.1/§4.4 channel throughput (measured vs paper)")
	fmt.Fprintf(&b, "%-28s %-22s %7s %14s %8s %-5s %12s %9s\n",
		"Channel", "CPU", "bytes", "B/s", "err", "kind", "paper B/s", "paperErr")
	for _, r := range rows {
		paperBps := "-"
		paperErr := "-"
		if r.PaperBps > 0 {
			paperBps = fmt.Sprintf("%.1f", r.PaperBps)
			paperErr = fmt.Sprintf("%.1f%%", r.PaperErr*100)
		}
		fmt.Fprintf(&b, "%-28s %-22s %7d %14.1f %7.1f%% %-5s %12s %9s\n",
			r.Name, r.CPU, r.Bytes, r.Bps, r.ErrRate*100, r.ErrKind, paperBps, paperErr)
	}
	return b.String()
}
