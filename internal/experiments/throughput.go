package experiments

import (
	"context"
	"fmt"
	"strings"

	"whisper/internal/baseline"
	"whisper/internal/core"
	"whisper/internal/cpu"
	"whisper/internal/kernel"
	"whisper/internal/sched"
	"whisper/internal/smt"
	"whisper/internal/stats"
)

// ThroughputRow is one channel/attack throughput measurement (§4.1, §4.4).
type ThroughputRow struct {
	Name     string
	CPU      string
	Bytes    int
	Bps      float64
	ErrRate  float64
	ErrKind  string  // "byte" or "bit" (the SMT rates in §4.4 are bit rates)
	PaperBps float64 // 0 when the paper reports none
	PaperErr float64
}

// randomPayload is deterministic pseudo-random data (the paper uses 1k
// random bytes).
func randomPayload(n int, seed byte) []byte {
	out := make([]byte, n)
	x := uint32(seed) | 0x9e3779b9
	for i := range out {
		x ^= x << 13
		x ^= x >> 17
		x ^= x << 5
		out[i] = byte(x)
	}
	return out
}

func byteRow(name, cpuName string, payload, got []byte, res core.LeakResult, paperBps, paperErr float64) ThroughputRow {
	return ThroughputRow{
		Name:     name,
		CPU:      cpuName,
		Bytes:    len(payload),
		Bps:      res.Bps,
		ErrRate:  stats.ByteErrorRate(got, payload),
		ErrKind:  "byte",
		PaperBps: paperBps,
		PaperErr: paperErr,
	}
}

func bitRow(name, cpuName string, payload, got []byte, res core.LeakResult, paperBps, paperErr float64) ThroughputRow {
	return ThroughputRow{
		Name:     name,
		CPU:      cpuName,
		Bytes:    len(payload),
		Bps:      res.Bps,
		ErrRate:  stats.BitErrorRate(got, payload),
		ErrKind:  "bit",
		PaperBps: paperBps,
		PaperErr: paperErr,
	}
}

// Throughput measures every §4.1/§4.4 channel plus the cache-channel
// baselines. bytes sizes the payload (the paper uses 1024). Each channel
// boots its own machine with the original serial sweep's per-channel seed
// offset (seed..seed+7), so the eight trials are independent scheduler cells
// and the table reads identically at any Exec.Parallel.
func Throughput(ex Exec, bytes int, seed int64) ([]ThroughputRow, error) {
	jobs := []sched.Job[ThroughputRow]{
		// TET-CC on i7-7700 (paper: 500 B/s, <5 % error).
		{Key: "tet-cc", Run: func(context.Context, int64) (ThroughputRow, error) {
			k, err := boot("throughput", cpu.I7_7700(), kernel.Config{KASLR: true}, seed)
			if err != nil {
				return ThroughputRow{}, err
			}
			defer recycle(k)
			cc, err := core.NewTETCovertChannel(k)
			if err != nil {
				return ThroughputRow{}, err
			}
			payload := randomPayload(bytes, 1)
			res, err := cc.Transfer(payload)
			if err != nil {
				return ThroughputRow{}, fmt.Errorf("throughput CC: %w", err)
			}
			return byteRow("TET-CC", k.Machine().Model.Name, payload, res.Data, res, 500, 0.05), nil
		}},
		// TET-MD on i7-7700 (paper: 50 B/s, <3 % error).
		{Key: "tet-md", Run: func(context.Context, int64) (ThroughputRow, error) {
			k, err := boot("throughput", cpu.I7_7700(), kernel.Config{KASLR: true}, seed+1)
			if err != nil {
				return ThroughputRow{}, err
			}
			defer recycle(k)
			payload := randomPayload(bytes, 2)
			k.WriteSecret(payload)
			md, err := core.NewTETMeltdown(k)
			if err != nil {
				return ThroughputRow{}, err
			}
			res, err := md.Leak(k.SecretVA(), len(payload))
			if err != nil {
				return ThroughputRow{}, fmt.Errorf("throughput MD: %w", err)
			}
			return byteRow("TET-MD", k.Machine().Model.Name, payload, res.Data, res, 50, 0.03), nil
		}},
		// TET-ZBL on i7-7700 (paper reports success but no rate).
		{Key: "tet-zbl", Run: func(context.Context, int64) (ThroughputRow, error) {
			k, err := boot("throughput", cpu.I7_7700(), kernel.Config{KASLR: true}, seed+2)
			if err != nil {
				return ThroughputRow{}, err
			}
			defer recycle(k)
			payload := randomPayload(bytes, 3)
			k.WriteSecret(payload)
			z, err := core.NewTETZombieload(k)
			if err != nil {
				return ThroughputRow{}, err
			}
			res, err := z.Leak(len(payload))
			if err != nil {
				return ThroughputRow{}, fmt.Errorf("throughput ZBL: %w", err)
			}
			return byteRow("TET-ZBL", k.Machine().Model.Name, payload, res.Data, res, 0, 0), nil
		}},
		// TET-RSB on i9-13900K (paper: 21.5 KB/s, <0.1 % error).
		{Key: "tet-rsb", Run: func(context.Context, int64) (ThroughputRow, error) {
			k, err := boot("throughput", cpu.I9_13900K(), kernel.Config{KASLR: true}, seed+3)
			if err != nil {
				return ThroughputRow{}, err
			}
			defer recycle(k)
			m := k.Machine()
			payload := randomPayload(bytes, 4)
			secretVA := uint64(kernel.UserDataBase + 0x400)
			pa, _ := k.UserAS().Translate(secretVA)
			m.Phys.StoreBytes(pa, payload)
			rsb, err := core.NewTETRSB(k)
			if err != nil {
				return ThroughputRow{}, err
			}
			res, err := rsb.Leak(secretVA, len(payload))
			if err != nil {
				return ThroughputRow{}, fmt.Errorf("throughput RSB: %w", err)
			}
			return byteRow("TET-RSB", m.Model.Name, payload, res.Data, res, 21500, 0.001), nil
		}},
		// SMT channel, both operating points, on i7-7700.
		{Key: "smt-reliable", Run: func(context.Context, int64) (ThroughputRow, error) {
			k, err := boot("throughput", cpu.I7_7700(), kernel.Config{KASLR: true}, seed+4)
			if err != nil {
				return ThroughputRow{}, err
			}
			defer recycle(k)
			ch, err := smt.NewChannel(k, smt.ModeReliable)
			if err != nil {
				return ThroughputRow{}, err
			}
			payload := randomPayload(minInt(bytes, 4), 5) // second-scale windows
			res, err := ch.Transfer(payload)
			if err != nil {
				return ThroughputRow{}, fmt.Errorf("throughput SMT: %w", err)
			}
			return bitRow("SMT-CC (reliable)", k.Machine().Model.Name, payload, res.Data, res, 1, 0.05), nil
		}},
		{Key: "smt-secsmt", Run: func(context.Context, int64) (ThroughputRow, error) {
			k, err := boot("throughput", cpu.I7_7700(), kernel.Config{KASLR: true}, seed+5)
			if err != nil {
				return ThroughputRow{}, err
			}
			defer recycle(k)
			ch, err := smt.NewChannel(k, smt.ModeSecSMT)
			if err != nil {
				return ThroughputRow{}, err
			}
			payload := randomPayload(bytes, 6)
			res, err := ch.Transfer(payload)
			if err != nil {
				return ThroughputRow{}, fmt.Errorf("throughput SecSMT: %w", err)
			}
			return bitRow("SMT-CC (SecSMT eval)", k.Machine().Model.Name, payload, res.Data, res, 268_000, 0.28), nil
		}},
		// Baselines for comparison.
		{Key: "baseline-fr", Run: func(context.Context, int64) (ThroughputRow, error) {
			k, err := boot("throughput", cpu.I7_7700(), kernel.Config{KASLR: true}, seed+6)
			if err != nil {
				return ThroughputRow{}, err
			}
			defer recycle(k)
			fr, err := baseline.NewFlushReload(k)
			if err != nil {
				return ThroughputRow{}, err
			}
			payload := randomPayload(bytes, 7)
			res, err := fr.Transfer(payload)
			if err != nil {
				return ThroughputRow{}, fmt.Errorf("throughput F+R: %w", err)
			}
			return byteRow("Flush+Reload CC (baseline)", k.Machine().Model.Name, payload, res.Data, res, 0, 0), nil
		}},
		{Key: "baseline-md-fr", Run: func(context.Context, int64) (ThroughputRow, error) {
			k, err := boot("throughput", cpu.I7_7700(), kernel.Config{KASLR: true}, seed+7)
			if err != nil {
				return ThroughputRow{}, err
			}
			defer recycle(k)
			payload := randomPayload(bytes, 8)
			k.WriteSecret(payload)
			md, err := baseline.NewMeltdownFR(k)
			if err != nil {
				return ThroughputRow{}, err
			}
			res, err := md.Leak(k.SecretVA(), len(payload))
			if err != nil {
				return ThroughputRow{}, fmt.Errorf("throughput MD-F+R: %w", err)
			}
			return byteRow("Meltdown-F+R (baseline)", k.Machine().Model.Name, payload, res.Data, res, 0, 0), nil
		}},
	}
	return sched.Map(ex.ctx(), ex.opts("throughput", seed), jobs)
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// RenderThroughput formats the §4.1 comparison.
func RenderThroughput(rows []ThroughputRow) string {
	var b strings.Builder
	fmt.Fprintln(&b, "§4.1/§4.4 channel throughput (measured vs paper)")
	fmt.Fprintf(&b, "%-28s %-22s %7s %14s %8s %-5s %12s %9s\n",
		"Channel", "CPU", "bytes", "B/s", "err", "kind", "paper B/s", "paperErr")
	for _, r := range rows {
		paperBps := "-"
		paperErr := "-"
		if r.PaperBps > 0 {
			paperBps = fmt.Sprintf("%.1f", r.PaperBps)
			paperErr = fmt.Sprintf("%.1f%%", r.PaperErr*100)
		}
		fmt.Fprintf(&b, "%-28s %-22s %7d %14.1f %7.1f%% %-5s %12s %9s\n",
			r.Name, r.CPU, r.Bytes, r.Bps, r.ErrRate*100, r.ErrKind, paperBps, paperErr)
	}
	return b.String()
}
