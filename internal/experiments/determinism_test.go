package experiments

import (
	"strings"
	"testing"

	"whisper/internal/cpu"
	"whisper/internal/kernel"
)

// smallParams keeps the determinism runs fast; the property being pinned is
// worker-count independence, not workload size.
func smallParams(parallel int) ReportParams {
	p := DefaultReportParams()
	p.ThroughputBytes = 4
	p.KASLRReps = 3
	p.Fig1bBatches = 3
	p.Parallel = parallel
	return p
}

// TestRunAllParallelByteIdentical is the tentpole guarantee: the full JSON
// report — every table, figure and sweep — is byte-for-byte identical at
// -parallel 1, 2 and 8. Cell seeds are positional (cell identity, never
// worker identity) and collection is order-preserving, so the worker count
// can only change wall-clock.
func TestRunAllParallelByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("three full report runs")
	}
	render := func(parallel int) string {
		r, err := RunAll(smallParams(parallel))
		if err != nil {
			t.Fatal(err)
		}
		var b strings.Builder
		if err := r.WriteJSON(&b); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	serial := render(1)
	for _, p := range []int{2, 8} {
		if got := render(p); got != serial {
			i := 0
			for i < len(got) && i < len(serial) && got[i] == serial[i] {
				i++
			}
			lo, hi := i-40, i+40
			if lo < 0 {
				lo = 0
			}
			if hi > len(serial) {
				hi = len(serial)
			}
			t.Fatalf("parallel=%d report diverges from serial near byte %d: ...%s...",
				p, i, serial[lo:hi])
		}
	}
}

// TestSeedChangesMeasurementsNotMatrix is the ReportParams.Seed regression
// test: a non-default seed must actually reach every artefact (different
// KASLR slots, RDTSC jitter and interrupt schedules, hence different
// measured ToTE and PMU values) while the paper-facing ✓/✗ conclusions stay
// put, because the attacks work at any seed.
func TestSeedChangesMeasurementsNotMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("runs several artefacts twice")
	}
	const altSeed = DefaultSeed + 1000

	// Fig1b's raw ToTE samples must depend on the seed.
	base, err := Fig1b(Exec{}, 3, DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}
	alt, err := Fig1b(Exec{}, 3, altSeed)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for tv := 0; tv < 256 && same; tv++ {
		for i := range base.Samples[tv] {
			if base.Samples[tv][i] != alt.Samples[tv][i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("Fig1b ToTE samples identical across seeds: Seed is not reaching the machines")
	}
	if base.Decoded != base.Secret || alt.Decoded != alt.Secret {
		t.Errorf("Fig1b decode broken: seed %d → %q, seed %d → %q (secret %q)",
			DefaultSeed, base.Decoded, altSeed, alt.Decoded, base.Secret)
	}

	// The seed must reach machine boot: two seeds randomise KASLR to
	// different bases (the quantity every KASLR artefact hides and recovers).
	kb, err := boot("determinism", cpu.I9_10980XE(), kernel.Config{KASLR: true}, DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}
	ka, err := boot("determinism", cpu.I9_10980XE(), kernel.Config{KASLR: true}, altSeed)
	if err != nil {
		t.Fatal(err)
	}
	if kb.KASLRBase() == ka.KASLRBase() {
		t.Errorf("KASLR base %#x identical across seeds: Seed is not reaching kernel boot", kb.KASLRBase())
	}

	// Table3's PMU counts are deliberately noise-free (the differential
	// filter needs exact event counts; only the RDTSC timing channel is
	// jittered), so the seed check here is that the paper's direction
	// verdicts hold at a non-default seed too.
	s1, err := Table3(Exec{}, altSeed)
	if err != nil {
		t.Fatal(err)
	}
	for i := range s1 {
		for _, kv := range s1[i].KeyEvents {
			if !kv.Match {
				t.Errorf("%s %s %s: direction verdict broke at seed %d",
					s1[i].CPU, s1[i].Name, kv.Event, int64(altSeed))
			}
		}
	}

	// Table2's ✓/✗ matrix must be seed-stable.
	for _, seed := range []int64{DefaultSeed, altSeed} {
		rows, err := Table2(Exec{}, DefaultTable2Params(), seed)
		if err != nil {
			t.Fatal(err)
		}
		if ok, diffs := Table2Agrees(rows); !ok {
			t.Errorf("seed %d flips the Table 2 matrix: %v", seed, diffs)
		}
	}
}
