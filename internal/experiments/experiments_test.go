package experiments

import (
	"strings"
	"testing"
)

func TestTable1Renders(t *testing.T) {
	out := Table1()
	for _, want := range []string{"TET-MD", "TET-KASLR", "Binoculars", "Flush+Reload"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 1 missing %q", want)
		}
	}
}

func TestTable2MatchesPaper(t *testing.T) {
	rows, err := Table2(Exec{}, DefaultTable2Params(), DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	ok, diffs := Table2Agrees(rows)
	if !ok {
		t.Fatalf("Table 2 deviates from the paper: %v\n%s", diffs, RenderTable2(rows))
	}
	// The render must carry every CPU and the glyphs.
	out := RenderTable2(rows)
	for _, r := range rows {
		if !strings.Contains(out, r.Model.Name) {
			t.Errorf("render missing %s", r.Model.Name)
		}
	}
}

func TestTable3DirectionsMatchPaper(t *testing.T) {
	scenes, err := Table3(Exec{}, DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}
	if len(scenes) != 5 {
		t.Fatalf("scenes = %d", len(scenes))
	}
	for _, s := range scenes {
		if len(s.KeyEvents) == 0 {
			t.Errorf("scene %s/%s has no key events", s.CPU, s.Name)
		}
		for _, k := range s.KeyEvents {
			if !k.Match {
				t.Errorf("%s %s: %s direction mismatch (paper %.0f→%.0f, measured %.1f→%.1f)",
					s.CPU, s.Name, k.Event, k.PaperA, k.PaperB, k.GotA, k.GotB)
			}
		}
		// The differential toolset must also surface significant events.
		if len(s.Diffs) == 0 {
			t.Errorf("scene %s/%s: differential analysis found nothing", s.CPU, s.Name)
		}
	}
}

func TestFig1bDecodesSecret(t *testing.T) {
	r, err := Fig1b(Exec{}, 5, DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}
	if r.Decoded != r.Secret {
		t.Fatalf("Fig 1b decoded %q, want %q", r.Decoded, r.Secret)
	}
	if r.ArgmaxVotes[r.Secret] == 0 {
		t.Fatal("no argmax votes at the secret")
	}
	if !strings.Contains(r.Render(), "red box") {
		t.Fatal("render missing the highlighted region")
	}
}

func TestFig3FrontendShift(t *testing.T) {
	s, err := Fig3(DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range s.KeyEvents {
		if !k.Match {
			t.Errorf("Fig 3 %s direction mismatch (measured %.1f→%.1f)", k.Event, k.GotA, k.GotB)
		}
	}
}

func TestFig4SignFlip(t *testing.T) {
	pts, err := Fig4(Exec{}, DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) < 4 {
		t.Fatalf("points = %d", len(pts))
	}
	first, last := pts[0], pts[len(pts)-1]
	if first.Delta <= 0 {
		t.Errorf("near fence: delta = %+.1f, want positive (trigger issues more)", first.Delta)
	}
	if last.Delta >= 0 {
		t.Errorf("far fence: delta = %+.1f, want negative (trigger issues fewer)", last.Delta)
	}
}

func TestThroughputShape(t *testing.T) {
	rows, err := Throughput(Exec{}, 8, DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]ThroughputRow{}
	for _, r := range rows {
		byName[r.Name] = r
	}
	cc, md, rsb := byName["TET-CC"], byName["TET-MD"], byName["TET-RSB"]
	if !(rsb.Bps > cc.Bps && cc.Bps > md.Bps) {
		t.Errorf("ordering RSB > CC > MD violated: %.0f, %.0f, %.0f", rsb.Bps, cc.Bps, md.Bps)
	}
	// Working channels must be accurate at these payloads.
	for _, name := range []string{"TET-CC", "TET-MD", "TET-ZBL", "TET-RSB"} {
		if r := byName[name]; r.ErrRate > 0.15 {
			t.Errorf("%s error rate %.2f", name, r.ErrRate)
		}
	}
	slow, fast := byName["SMT-CC (reliable)"], byName["SMT-CC (SecSMT eval)"]
	if slow.ErrRate >= 0.05 {
		t.Errorf("reliable SMT bit error %.3f, want <5%%", slow.ErrRate)
	}
	if slow.Bps < 0.2 || slow.Bps > 10 {
		t.Errorf("reliable SMT %.2f B/s, want ~1", slow.Bps)
	}
	if fast.Bps < 50_000 {
		t.Errorf("SecSMT %.0f B/s, want ~268 KB/s regime", fast.Bps)
	}
	if fast.ErrRate < 0.05 {
		t.Errorf("SecSMT error %.3f implausibly low for the operating point", fast.ErrRate)
	}
	if !strings.Contains(RenderThroughput(rows), "TET-RSB") {
		t.Error("render missing rows")
	}
}

func TestKASLRSuiteOutcomes(t *testing.T) {
	rows, err := KASLRSuite(Exec{}, 8, DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}
	byKey := map[string]KASLRRow{}
	for _, r := range rows {
		byKey[r.Name+"/"+r.CPU] = r
	}
	mustFind := []string{
		"TET-KASLR/Intel Core i9-10980XE",
		"TET-KASLR + KPTI/Intel Core i9-10980XE",
		"TET-KASLR + KPTI + FLARE/Intel Core i9-10980XE",
		"TET-KASLR + FLARE (no KPTI)/Intel Core i9-10980XE",
		"TET-KASLR in Docker/Intel Core i9-10980XE",
		"TET-KASLR/Intel Core i7-6700",
		"TET-KASLR/Intel Core i7-7700",
		"TET-KASLR vs FGKASLR/Intel Core i9-10980XE",
		"prefetch-KASLR (baseline)/Intel Core i9-10980XE",
	}
	for _, key := range mustFind {
		r, ok := byKey[key]
		if !ok {
			t.Fatalf("missing row %s", key)
		}
		if !r.Found {
			t.Errorf("%s: expected success", key)
		}
	}
	mustFail := []string{
		"TET-KASLR/AMD Ryzen 5 5600G",
		"TET-KASLR vs secure TLB/i9-10980XE + secure TLB",
		"prefetch-KASLR + FLARE (baseline)/Intel Core i9-10980XE",
	}
	for _, key := range mustFail {
		r, ok := byKey[key]
		if !ok {
			t.Fatalf("missing row %s", key)
		}
		if r.Found {
			t.Errorf("%s: expected failure", key)
		}
	}
	// Scan-time shape: sub-second-scale, same order as the paper's 0.8829 s.
	plain := byKey["TET-KASLR/Intel Core i9-10980XE"]
	if plain.Seconds < 0.05 || plain.Seconds > 5 {
		t.Errorf("plain scan %.3f s out of the paper's regime", plain.Seconds)
	}
}

func TestMitigationMatrixMatchesPaper(t *testing.T) {
	rows, err := Mitigations(Exec{}, DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}
	if ok, diffs := MitigationsAgree(rows); !ok {
		t.Fatalf("§6 matrix deviates: %v\n%s", diffs, RenderMitigations(rows))
	}
	if len(rows) != len(PaperMitigations) {
		t.Fatalf("rows = %d, want %d", len(rows), len(PaperMitigations))
	}
}

func TestStealthAgainstCacheDetector(t *testing.T) {
	rows, err := Stealth(Exec{}, DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]StealthRow{}
	for _, r := range rows {
		byName[r.Attack] = r
	}
	if r := byName["TET-MD"]; r.Detected || r.AlarmRate > 0.1 {
		t.Errorf("TET-MD should evade the cache detector (alarm rate %.2f)", r.AlarmRate)
	}
	if r := byName["Meltdown-F+R"]; !r.Detected {
		t.Errorf("Meltdown-F+R should be flagged (alarm rate %.2f)", r.AlarmRate)
	}
}

func TestCondFamilyAllConditionsCarrySignal(t *testing.T) {
	rows, err := CondFamily(Exec{}, DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 {
		t.Fatalf("conditions = %d, want 8", len(rows))
	}
	for _, r := range rows {
		if r.Delta < 3 {
			t.Errorf("%s: TET delta %+d too small — condition family claim broken", r.Name, r.Delta)
		}
	}
}

func TestRunAllReportJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("full report")
	}
	p := DefaultReportParams()
	p.ThroughputBytes = 4
	p.KASLRReps = 3
	p.Fig1bBatches = 3
	r, err := RunAll(p)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Table2Agrees || !r.MitigationsAgree {
		t.Fatalf("report disagrees with the paper: %+v", r.Table2Deviations)
	}
	var sink strings.Builder
	if err := r.WriteJSON(&sink); err != nil {
		t.Fatal(err)
	}
	out := sink.String()
	for _, want := range []string{"TET-RSB", "DTLB_LOAD_MISSES.WALK_ACTIVE", "KASLR", "CondFamily"} {
		if !strings.Contains(out, want) {
			t.Errorf("JSON report missing %q", want)
		}
	}
}

func TestNoiseSweepShape(t *testing.T) {
	pts, err := NoiseSweep(Exec{}, DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}
	find := func(sigma float64, batches int, dec string) NoisePoint {
		for _, p := range pts {
			if p.Sigma == sigma && p.Batches == batches && p.Decoder == dec {
				return p
			}
		}
		t.Fatalf("point sigma=%v batches=%d %s missing", sigma, batches, dec)
		return NoisePoint{}
	}
	if !find(1.2, 3, "vote").Recovered {
		t.Error("vote decoder should work at realistic jitter")
	}
	if find(3, 9, "vote").Recovered {
		t.Error("vote decoder should die once jitter rivals the signal")
	}
	if !find(6, 21, "median").Recovered {
		t.Error("median decoder should recover the attack at high jitter")
	}
}
