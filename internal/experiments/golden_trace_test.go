package experiments

import (
	"fmt"
	"os"
	"strings"
	"testing"

	"whisper/internal/core"
	"whisper/internal/cpu"
	"whisper/internal/kernel"
	"whisper/internal/pmu"
	"whisper/internal/sched"
)

// Golden-trace regression pins the cycle-exact observable behaviour of the
// simulator — ToTE samples, ClearEvent sequences, phase cycle counts, and PMU
// counters — for one Fig. 1b cell and one KASLR probe pair. The golden
// strings below were captured on the pre-optimization pipeline (the seed of
// the hot-path overhaul); the arena/skip-ahead/decode-cache/machine-reuse
// paths must reproduce them bit for bit. Re-capture (only when an intended
// model change occurs) with:
//
//	GOLDEN_TRACE_CAPTURE=1 go test -run TestGoldenTraces -v ./internal/experiments
func clearTrace(b *strings.Builder, m *cpu.Machine) {
	for _, c := range m.Pipe.Clears() {
		fmt.Fprintf(b, " clear{%d %v %d}", c.Cycle, c.Kind, c.Cost)
	}
}

// goldenFig1bCell replays the first probes of Fig. 1b's batch/0 cell and
// formats every observable: per-test-value ToTE, the pipeline-clear sequence
// of each probe, per-phase cycle counts, and the headline PMU counters.
func goldenFig1bCell() (string, error) {
	var b strings.Builder
	seed := sched.DeriveSeed(DefaultSeed, "batch/0")
	k, err := boot("golden", cpu.I7_7700(), kernel.Config{KASLR: true}, seed)
	if err != nil {
		return "", err
	}
	m := k.Machine()
	k.WriteSecret([]byte{'S'})
	pr, err := core.NewProber(m, core.SuppressTSX, true)
	if err != nil {
		return "", err
	}
	for i := 0; i < 16; i++ {
		if _, err := pr.Probe(k.SecretVA(), 256, 0); err != nil {
			return "", err
		}
	}
	fmt.Fprintf(&b, "warmup-end-cycle=%d\n", m.Pipe.Cycle())
	for tv := 0; tv < 16; tv++ {
		tote, err := pr.Probe(k.SecretVA(), uint64(tv), 0)
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&b, "tv=%d tote=%d", tv, tote)
		clearTrace(&b, m)
		fmt.Fprintln(&b)
	}
	// The secret value's probe is the one that triggers the transient Jcc.
	tote, err := pr.Probe(k.SecretVA(), uint64('S'), 0)
	if err != nil {
		return "", err
	}
	fmt.Fprintf(&b, "tv=secret tote=%d", tote)
	clearTrace(&b, m)
	fmt.Fprintln(&b)
	fmt.Fprintf(&b, "sweep-end-cycle=%d\n", m.Pipe.Cycle())
	writePMULine(&b, m)
	return b.String(), nil
}

// goldenKASLRProbes replays a mapped-vs-unmapped KASLR probe pair on the
// paper's KASLR testbed part, using the signal-suppression path (whose
// 12k-cycle delivery stall exercises the skip-ahead machinery hardest).
func goldenKASLRProbes() (string, error) {
	var b strings.Builder
	seed := sched.DeriveSeed(DefaultSeed, "kaslr/golden")
	k, err := boot("golden", cpu.I9_10980XE(), kernel.Config{KASLR: true}, seed)
	if err != nil {
		return "", err
	}
	m := k.Machine()
	pr, err := core.NewProber(m, core.SuppressSignal, true)
	if err != nil {
		return "", err
	}
	mapped := k.ProbeTarget(k.BaseSlot())
	unmapped := k.ProbeTarget((k.BaseSlot() + kernel.ImageSlots + 7) % kernel.NumSlots)
	for _, pc := range []struct {
		name   string
		target uint64
	}{{"mapped", mapped}, {"unmapped", unmapped}} {
		for rep := 0; rep < 4; rep++ {
			k.EvictTLB()
			if _, err := pr.Probe(pc.target, 1, 0); err != nil { // warm: fills TLB iff mapped
				return "", err
			}
			tote, err := pr.Probe(pc.target, 1, 0)
			if err != nil {
				return "", err
			}
			fmt.Fprintf(&b, "%s rep=%d tote=%d", pc.name, rep, tote)
			clearTrace(&b, m)
			fmt.Fprintln(&b)
		}
		fmt.Fprintf(&b, "%s-end-cycle=%d\n", pc.name, m.Pipe.Cycle())
	}
	writePMULine(&b, m)
	return b.String(), nil
}

func writePMULine(b *strings.Builder, m *cpu.Machine) {
	for _, ev := range []pmu.Event{
		pmu.CyclesTotal, pmu.InstRetired, pmu.UopsIssuedAny, pmu.MachineClearsCount,
		pmu.IntMiscRecoveryCycles, pmu.IntMiscClearResteerCycles,
		pmu.UopsIssuedStallCycles, pmu.UopsExecutedStallCycles,
		pmu.CycleActivityStallsTotal, pmu.RsEventsEmptyCycles,
		pmu.DeDisUopQueueEmptyDi0, pmu.DeDisDispatchTokenStalls2Retire,
		pmu.ResourceStallsAny, pmu.DtlbLoadMissesMissCausesAWalk,
		pmu.ItlbMissesWalkActive, pmu.IdqDsbUops, pmu.IdqMsMiteUops,
		pmu.BrMispExecAllBranches, pmu.MemLoadRetiredL1Miss,
	} {
		fmt.Fprintf(b, "pmu[%d]=%d\n", ev, m.PMU.Read(ev))
	}
}

func TestGoldenTraces(t *testing.T) {
	fig1b, err := goldenFig1bCell()
	if err != nil {
		t.Fatal(err)
	}
	kaslr, err := goldenKASLRProbes()
	if err != nil {
		t.Fatal(err)
	}
	if os.Getenv("GOLDEN_TRACE_CAPTURE") != "" {
		t.Logf("fig1b golden:\n%s", fig1b)
		t.Logf("kaslr golden:\n%s", kaslr)
		return
	}
	if fig1b != goldenFig1b {
		t.Errorf("Fig1b cell trace diverged from the seed capture:\n--- got ---\n%s--- want ---\n%s", fig1b, goldenFig1b)
	}
	if kaslr != goldenKASLR {
		t.Errorf("KASLR probe trace diverged from the seed capture:\n--- got ---\n%s--- want ---\n%s", kaslr, goldenKASLR)
	}
}

// TestGoldenTracesUnderSnapshotFork pins the same cycle-exact traces —
// warmup-end-cycle included — when the cell's machine comes from a snapshot
// fork instead of a boot. The forked-enabled passes walk the memo's whole
// state machine (first miss unseen, second miss capturing, third forking,
// unless earlier tests advanced it already); the reboot-per-cell pass with
// forking disabled must match too. Every pass must equal the seed capture,
// which is what makes memo hit/miss history unobservable in results.
func TestGoldenTracesUnderSnapshotFork(t *testing.T) {
	defer SetSnapshotForking(SnapshotForking())
	for pass, on := range []bool{true, true, true, false} {
		SetSnapshotForking(on)
		fig1b, err := goldenFig1bCell()
		if err != nil {
			t.Fatal(err)
		}
		if fig1b != goldenFig1b {
			t.Errorf("pass %d (forking=%v): Fig1b trace diverged:\n--- got ---\n%s--- want ---\n%s",
				pass, on, fig1b, goldenFig1b)
		}
		kaslr, err := goldenKASLRProbes()
		if err != nil {
			t.Fatal(err)
		}
		if kaslr != goldenKASLR {
			t.Errorf("pass %d (forking=%v): KASLR trace diverged:\n--- got ---\n%s--- want ---\n%s",
				pass, on, kaslr, goldenKASLR)
		}
	}
	if st := SnapshotMemoStats(); st.Hits == 0 {
		t.Error("snapshot memo never hit across the forked passes")
	}
}

const goldenFig1b = `warmup-end-cycle=5307
tv=0 tote=190 clear{5423 1 34}
tv=1 tote=191 clear{5629 1 34}
tv=2 tote=190 clear{5835 1 34}
tv=3 tote=189 clear{6041 1 34}
tv=4 tote=189 clear{6247 1 34}
tv=5 tote=190 clear{6453 1 34}
tv=6 tote=189 clear{6659 1 34}
tv=7 tote=191 clear{6865 1 34}
tv=8 tote=191 clear{7071 1 34}
tv=9 tote=188 clear{7277 1 34}
tv=10 tote=187 clear{7483 1 34}
tv=11 tote=189 clear{7689 1 34}
tv=12 tote=191 clear{7895 1 34}
tv=13 tote=190 clear{8101 1 34}
tv=14 tote=190 clear{8307 1 34}
tv=15 tote=190 clear{8513 1 34}
tv=secret tote=194 clear{8630 0 14} clear{8719 1 40}
sweep-end-cycle=8815
pmu[35]=8815
pmu[36]=165
pmu[7]=396
pmu[3]=33
pmu[4]=2462
pmu[6]=10
pmu[8]=8617
pmu[9]=6699
pmu[14]=8552
pmu[13]=6567
pmu[32]=6992
pmu[33]=2462
pmu[12]=3
pmu[24]=1
pmu[26]=896
pmu[16]=133
pmu[20]=263
pmu[1]=2
pmu[27]=0
`

const goldenKASLR = `mapped rep=0 tote=12147 clear{314068 1 33}
mapped rep=1 tote=12148 clear{638453 1 33}
mapped rep=2 tote=12150 clear{962838 1 33}
mapped rep=3 tote=12150 clear{1287223 1 33}
mapped-end-cycle=1299272
unmapped rep=0 tote=12171 clear{1611847 1 33}
unmapped rep=1 tote=12173 clear{1936255 1 33}
unmapped rep=2 tote=12172 clear{2260663 1 33}
unmapped rep=3 tote=12171 clear{2585071 1 33}
unmapped-end-cycle=2597120
pmu[35]=2597120
pmu[36]=64
pmu[7]=160
pmu[3]=16
pmu[4]=192528
pmu[6]=0
pmu[8]=197040
pmu[9]=195388
pmu[14]=196992
pmu[13]=195324
pmu[32]=195532
pmu[33]=192528
pmu[12]=0
pmu[24]=12
pmu[26]=1120
pmu[16]=36
pmu[20]=124
pmu[1]=0
pmu[27]=0
`
