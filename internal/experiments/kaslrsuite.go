package experiments

import (
	"context"
	"fmt"
	"strings"

	"whisper/internal/baseline"
	"whisper/internal/core"
	"whisper/internal/cpu"
	"whisper/internal/kernel"
	"whisper/internal/sched"
)

// KASLRRow is one configuration of the §4.5 evaluation.
type KASLRRow struct {
	Name         string
	CPU          string
	Found        bool
	Seconds      float64
	PaperSeconds float64 // 0 when the paper gives no number
	Note         string
}

// KASLRSuite runs the full §4.5 matrix: TET-KASLR plain/KPTI/FLARE/Docker,
// the cross-CPU rows, the secure-TLB and FGKASLR ablations, and the
// prefetch-timing baseline with and without FLARE. Every row boots its own
// machine from the same seed (as the original serial sweep did), so the rows
// are independent scheduler cells collected in matrix order.
func KASLRSuite(ex Exec, reps int, seed int64) ([]KASLRRow, error) {
	runTET := func(name string, model cpu.Model, cfg kernel.Config, paperSec float64, note string) (KASLRRow, error) {
		k, err := boot("kaslr", model, cfg, seed)
		if err != nil {
			return KASLRRow{}, err
		}
		defer recycle(k)
		a, err := core.NewTETKASLR(k)
		if err != nil {
			return KASLRRow{}, err
		}
		a.Reps = reps
		res, err := a.Locate()
		if err != nil {
			return KASLRRow{}, err
		}
		return KASLRRow{
			Name:         name,
			CPU:          model.Name,
			Found:        res.Slot == k.BaseSlot(),
			Seconds:      res.Seconds,
			PaperSeconds: paperSec,
			Note:         note,
		}, nil
	}

	// §6.2 software mitigation: FGKASLR. The base is still found; the
	// code-reuse step (deriving a function from the base) breaks.
	runFGKASLR := func() (KASLRRow, error) {
		k, err := boot("kaslr", cpu.I9_10980XE(), kernel.Config{KASLR: true, FGKASLR: true}, seed)
		if err != nil {
			return KASLRRow{}, err
		}
		defer recycle(k)
		a, err := core.NewTETKASLR(k)
		if err != nil {
			return KASLRRow{}, err
		}
		a.Reps = reps
		res, err := a.Locate()
		if err != nil {
			return KASLRRow{}, err
		}
		derived := res.Base + kernel.KernelFunctions["commit_creds"]
		actual, err := k.FunctionVA("commit_creds")
		if err != nil {
			return KASLRRow{}, err
		}
		note := "base found but derived commit_creds wrong (mitigation works)"
		if derived == actual {
			note = "MITIGATION FAILED: derived function address still valid"
		}
		return KASLRRow{
			Name:    "TET-KASLR vs FGKASLR",
			CPU:     k.Machine().Model.Name,
			Found:   res.Slot == k.BaseSlot() && derived != actual,
			Seconds: res.Seconds,
			Note:    note,
		}, nil
	}

	// Prefetch-timing baseline (the family FLARE was designed against).
	runPrefetch := func(name string, cfg kernel.Config, wantDefeated bool) (KASLRRow, error) {
		k, err := boot("kaslr", cpu.I9_10980XE(), cfg, seed)
		if err != nil {
			return KASLRRow{}, err
		}
		defer recycle(k)
		a, err := baseline.NewPrefetchKASLR(k)
		if err != nil {
			return KASLRRow{}, err
		}
		a.Reps = reps
		res, err := a.Locate()
		if err != nil {
			return KASLRRow{}, err
		}
		note := ""
		if wantDefeated {
			note = "FLARE defeats prefetch probes; TET survives (§6.1)"
		}
		return KASLRRow{
			Name:    name,
			CPU:     k.Machine().Model.Name,
			Found:   res.Slot == k.BaseSlot(),
			Seconds: res.Seconds,
			Note:    note,
		}, nil
	}

	// §6.3 hardware mitigation ablation: an Intel part whose TLB only fills
	// when the permission check passes (secure TLB).
	secure := cpu.I9_10980XE()
	secure.Name = "i9-10980XE + secure TLB"
	secure.Pipe.TLBFillOnFault = false

	tet := func(name string, model cpu.Model, cfg kernel.Config, paperSec float64, note string) func(context.Context, int64) (KASLRRow, error) {
		return func(context.Context, int64) (KASLRRow, error) {
			return runTET(name, model, cfg, paperSec, note)
		}
	}
	jobs := []sched.Job[KASLRRow]{
		{Key: "tet/i9-10980xe", Run: tet("TET-KASLR", cpu.I9_10980XE(),
			kernel.Config{KASLR: true}, 0.8829, "paper: 0.8829 s (n=3, sigma=0.0036)")},
		{Key: "tet/i9-10980xe/kpti", Run: tet("TET-KASLR + KPTI", cpu.I9_10980XE(),
			kernel.Config{KASLR: true, KPTI: true}, 1.0, "paper: trampoline found within 1 s")},
		{Key: "tet/i9-10980xe/kpti+flare", Run: tet("TET-KASLR + KPTI + FLARE", cpu.I9_10980XE(),
			kernel.Config{KASLR: true, KPTI: true, FLARE: true}, 0, "bypasses the state-of-the-art defense")},
		{Key: "tet/i9-10980xe/flare", Run: tet("TET-KASLR + FLARE (no KPTI)", cpu.I9_10980XE(),
			kernel.Config{KASLR: true, FLARE: true}, 0, "4K-partition eviction spares 2M image entries")},
		{Key: "tet/i9-10980xe/docker", Run: tet("TET-KASLR in Docker", cpu.I9_10980XE(),
			kernel.Config{KASLR: true, KPTI: true, Docker: true}, 0, "container namespaces do not help")},
		{Key: "tet/i7-6700", Run: tet("TET-KASLR", cpu.I7_6700(), kernel.Config{KASLR: true}, 0, "")},
		{Key: "tet/i7-7700", Run: tet("TET-KASLR", cpu.I7_7700(), kernel.Config{KASLR: true}, 0, "")},
		{Key: "tet/ryzen-5600g", Run: tet("TET-KASLR", cpu.Ryzen5600G(), kernel.Config{KASLR: true}, 0,
			"fails: Zen 3 does not fill the TLB on a faulting access")},
		{Key: "tet/secure-tlb", Run: tet("TET-KASLR vs secure TLB", secure, kernel.Config{KASLR: true}, 0,
			"fails: fill-on-fault removed (proposed hardware fix)")},
		{Key: "tet/fgkaslr", Run: func(context.Context, int64) (KASLRRow, error) {
			return runFGKASLR()
		}},
		{Key: "prefetch/kpti", Run: func(context.Context, int64) (KASLRRow, error) {
			return runPrefetch("prefetch-KASLR (baseline)", kernel.Config{KASLR: true, KPTI: true}, false)
		}},
		{Key: "prefetch/kpti+flare", Run: func(context.Context, int64) (KASLRRow, error) {
			return runPrefetch("prefetch-KASLR + FLARE (baseline)",
				kernel.Config{KASLR: true, KPTI: true, FLARE: true}, true)
		}},
	}
	return sched.Map(ex.ctx(), ex.opts("kaslr", seed), jobs)
}

// RenderKASLRSuite formats the §4.5 matrix.
func RenderKASLRSuite(rows []KASLRRow) string {
	var b strings.Builder
	fmt.Fprintln(&b, "§4.5 KASLR suite (found = attack recovered the true base)")
	fmt.Fprintf(&b, "%-34s %-26s %6s %9s %10s  %s\n",
		"Attack", "CPU", "found", "seconds", "paper s", "note")
	for _, r := range rows {
		paper := "-"
		if r.PaperSeconds > 0 {
			paper = fmt.Sprintf("%.4f", r.PaperSeconds)
		}
		fmt.Fprintf(&b, "%-34s %-26s %6s %9.4f %10s  %s\n",
			r.Name, r.CPU, check(r.Found), r.Seconds, paper, r.Note)
	}
	return b.String()
}
