// Package snapshot implements versioned, content-addressed checkpoints of
// full machine state — pipeline, predictors, caches, TLBs, PMU, physical
// memory, page tables, and the RNG cursor — with cheap forking into pooled
// machines.
//
// The mechanism is capture-once / fork-many: Capture clones a quiescent
// machine into a frozen replica that is never executed again, and every Fork
// copies the frozen state into a (preferably pooled) target machine. Because
// cpu.Machine.CopyStateFrom restores each structure into the target's
// existing backing storage, a steady-state Fork allocates nothing, and the
// forked machine is bit-identical to the captured one: running any program on
// a fork produces exactly the cycles, PMU counts, and architectural results
// the source machine would have produced. That equivalence is what lets the
// sweep driver replace reboot-per-cell with fork-per-cell without moving a
// single golden trace (internal/fuzzgen's FuzzSnapshotRestore and the
// experiments golden tests pin it).
package snapshot

import (
	"errors"
	"fmt"
	"sync"

	"whisper/internal/cpu"
	"whisper/internal/isa"
	"whisper/internal/kernel"
	"whisper/internal/mem"
)

// Version identifies the checkpoint layout. It participates in every
// snapshot ID, so a layout change can never collide with checkpoints taken
// by earlier code.
const Version = 1

// Snapshot is one immutable checkpoint. It may be forked concurrently; the
// frozen replica inside is never mutated after Capture returns.
type Snapshot struct {
	model    cpu.Model
	frozen   *cpu.Machine
	hierImg  *mem.HierImage // frozen.Hier's valid lines, replayed per fork
	userRoot uint64         // page-table root the captured pipeline was walking
	kern     kernel.State
	hasKern  bool
	bytes    int64

	idOnce sync.Once
	id     string
}

// ID returns the snapshot's content address: a digest of the captured
// physical image, architectural state, cycle/RNG cursors, and layout
// Version. Two snapshots of bit-identical machines get equal IDs. The digest
// walks the full physical image, so it is computed lazily on first call —
// capture-heavy paths that never ask for the ID (the warm-state memo keys by
// boot tuple) never pay for it.
func (s *Snapshot) ID() string {
	s.idOnce.Do(s.seal)
	return s.id
}

// Model returns the CPU model the snapshot was captured on.
func (s *Snapshot) Model() cpu.Model { return s.model }

// Bytes returns an estimate of the snapshot's resident size: backed physical
// pages plus the cache-metadata arrays, the dominant terms.
func (s *Snapshot) Bytes() int64 { return s.bytes }

// Kernel reports whether the snapshot carries kernel state (CaptureKernel)
// and, if so, a copy of it.
func (s *Snapshot) Kernel() (kernel.State, bool) { return s.kern, s.hasKern }

// Capture checkpoints a quiescent machine (between Execs). The machine is
// not modified and can keep running; the snapshot holds a frozen replica —
// a minimal machine (cpu.NewFrozenMachine) that is never executed — plus a
// compact valid-line image of the cache hierarchy, both retained for the
// snapshot's lifetime.
func Capture(m *cpu.Machine) (*Snapshot, error) {
	frozen, err := cpu.NewFrozenMachine(m.Model)
	if err != nil {
		return nil, err
	}
	if err := frozen.CaptureStateFrom(m); err != nil {
		return nil, err
	}
	root := m.Pipe.AddressSpace().Root()
	frozen.Pipe.SetAddressSpace(frozen.BindAddressSpace(0, root))
	s := &Snapshot{model: m.Model, frozen: frozen, userRoot: root,
		hierImg: m.Hier.Image()}
	s.measure()
	return s, nil
}

// CaptureKernel checkpoints a booted kernel and its machine together, so
// forks come back as ready-to-use kernels (ForkKernel).
func CaptureKernel(k *kernel.Kernel) (*Snapshot, error) {
	s, err := Capture(k.Machine())
	if err != nil {
		return nil, err
	}
	s.kern = k.CaptureState()
	s.hasKern = true
	return s, nil
}

// frozenFixedBytes approximates the frozen replica's fixed-state footprint —
// registers, TLB and BPU tables, PMU counters, the pipeline record — which is
// resident regardless of how many pages or cache lines the capture carries.
const frozenFixedBytes = 8 << 10

// measure computes the snapshot's resident size: backed physical pages plus
// the hierarchy image's valid lines, the dominant terms, plus the replica's
// fixed-state footprint.
func (s *Snapshot) measure() {
	s.bytes = frozenFixedBytes +
		int64(s.frozen.Phys.PageCount())*mem.PageSize +
		int64(s.hierImg.Lines())*24
}

// seal computes the content address (via ID's once).
func (s *Snapshot) seal() {
	const prime = 1099511628211
	h := uint64(14695981039346656037) // FNV-1a offset basis
	mix := func(v uint64) {
		for sh := 0; sh < 64; sh += 8 {
			h = (h ^ (v >> sh & 0xff)) * prime
		}
	}
	mix(Version)
	for _, b := range []byte(s.model.Name) {
		h = (h ^ uint64(b)) * prime
	}
	m := s.frozen
	h = m.Phys.DigestFNV(h)
	mix(m.Pipe.Cycle())
	for r := isa.Reg(0); r < isa.NumRegs; r++ {
		mix(m.Pipe.Reg(r))
	}
	for _, c := range m.PMU.Snapshot() {
		mix(c)
	}
	seed, draws := m.RandCursor()
	mix(uint64(seed))
	mix(draws)
	mix(m.Alloc.Next())
	mix(s.userRoot)
	if s.hasKern {
		mix(s.kern.KernRoot)
		mix(uint64(s.kern.BaseSlot))
		mix(s.kern.KASLRBase)
	}
	s.id = fmt.Sprintf("ws%d-%016x", Version, h)
}

// Fork restores the snapshot into a machine drawn from pool (or freshly
// built when the pool has none parked for the model). In steady state —
// pool hit, target freelist warm — the fork performs no allocations. The
// returned machine behaves bit-identically to the captured one.
func (s *Snapshot) Fork(pool *cpu.Pool) (*cpu.Machine, error) {
	var mc *cpu.Machine
	if pool != nil {
		mc = pool.GetRaw(s.model)
	}
	if mc == nil {
		var err error
		mc, err = cpu.NewMachine(s.model, 0)
		if err != nil {
			return nil, err
		}
	}
	if err := mc.ForkStateFrom(s.frozen, s.hierImg); err != nil {
		if pool != nil {
			pool.Put(mc)
		}
		return nil, err
	}
	mc.Pipe.SetAddressSpace(mc.BindAddressSpace(0, s.userRoot))
	return mc, nil
}

// ForkKernel forks the machine and rebuilds the captured kernel view on it.
// Only valid for snapshots taken with CaptureKernel.
func (s *Snapshot) ForkKernel(pool *cpu.Pool) (*kernel.Kernel, error) {
	if !s.hasKern {
		return nil, errors.New("snapshot: no kernel state captured")
	}
	mc, err := s.Fork(pool)
	if err != nil {
		return nil, err
	}
	return kernel.Restore(mc, s.kern), nil
}
