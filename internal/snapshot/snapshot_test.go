package snapshot_test

import (
	"fmt"
	"testing"

	"whisper/internal/core"
	"whisper/internal/cpu"
	"whisper/internal/kernel"
	"whisper/internal/snapshot"
)

// bootFresh builds a machine and boots a kernel on it outside any pool, the
// reference path every fork must be bit-identical to.
func bootFresh(t *testing.T, model cpu.Model, cfg kernel.Config, seed int64) *kernel.Kernel {
	t.Helper()
	m, err := cpu.NewMachine(model, seed)
	if err != nil {
		t.Fatal(err)
	}
	k, err := kernel.Boot(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return k
}

// runWorkload runs a real attack (the TET covert channel) on a kernel and
// digests everything observable: leaked data, final cycle, and the full PMU
// bank. Equal digests mean bit-identical executions.
func runWorkload(t *testing.T, k *kernel.Kernel) string {
	t.Helper()
	cc, err := core.NewTETCovertChannel(k)
	if err != nil {
		t.Fatal(err)
	}
	res, err := cc.Transfer([]byte("whisper!"))
	if err != nil {
		t.Fatal(err)
	}
	m := k.Machine()
	return fmt.Sprintf("%x c=%d pmu=%v", res.Data, m.Pipe.Cycle(), m.PMU.Snapshot())
}

func TestForkIsBitIdenticalToReboot(t *testing.T) {
	model, cfg, seed := cpu.I7_7700(), kernel.Config{KASLR: true}, int64(11)

	ref := runWorkload(t, bootFresh(t, model, cfg, seed))

	src := bootFresh(t, model, cfg, seed)
	snap, err := snapshot.CaptureKernel(src)
	if err != nil {
		t.Fatal(err)
	}

	// Capture must not perturb the source: it still runs to the reference.
	if got := runWorkload(t, src); got != ref {
		t.Fatalf("capture perturbed source machine:\n got %s\nwant %s", got, ref)
	}

	pool := cpu.NewPool()
	fk, err := snap.ForkKernel(pool)
	if err != nil {
		t.Fatal(err)
	}
	if got := runWorkload(t, fk); got != ref {
		t.Fatalf("fork diverged from fresh boot:\n got %s\nwant %s", got, ref)
	}

	// A second fork into the recycled (dirty, un-Reset) machine must also
	// match: CopyStateFrom owes nothing to the target's prior state.
	pool.Put(fk.Machine())
	fk2, err := snap.ForkKernel(pool)
	if err != nil {
		t.Fatal(err)
	}
	if got := runWorkload(t, fk2); got != ref {
		t.Fatalf("pooled fork diverged from fresh boot:\n got %s\nwant %s", got, ref)
	}
	if st := pool.Stats(); st.Reuses != 1 {
		t.Fatalf("second fork should reuse the pooled machine, stats %+v", st)
	}
}

func TestSnapshotIDIsContentAddressed(t *testing.T) {
	model, cfg := cpu.I9_10980XE(), kernel.Config{KASLR: true}
	a, err := snapshot.CaptureKernel(bootFresh(t, model, cfg, 5))
	if err != nil {
		t.Fatal(err)
	}
	b, err := snapshot.CaptureKernel(bootFresh(t, model, cfg, 5))
	if err != nil {
		t.Fatal(err)
	}
	if a.ID() != b.ID() {
		t.Fatalf("identical boots, different IDs: %s vs %s", a.ID(), b.ID())
	}
	c, err := snapshot.CaptureKernel(bootFresh(t, model, cfg, 6))
	if err != nil {
		t.Fatal(err)
	}
	if a.ID() == c.ID() {
		t.Fatalf("different seeds, same ID %s", a.ID())
	}
	if a.Bytes() <= 0 {
		t.Fatalf("Bytes() = %d", a.Bytes())
	}
}

func TestMemoLRUEvictionAndFamilyPinning(t *testing.T) {
	mo := snapshot.NewMemo(2)
	capture := func(seed int64) *snapshot.Snapshot {
		m, err := cpu.NewMachine(cpu.I7_6700(), seed)
		if err != nil {
			t.Fatal(err)
		}
		s, err := snapshot.Capture(m)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	key := func(seed int64) snapshot.Key {
		return snapshot.Key{Model: cpu.I7_6700(), Seed: seed}
	}

	mo.Put(key(1), capture(1), "table2")
	mo.Put(key(2), capture(2), "") // unpinned
	if s, _ := mo.Get(key(1), "table2"); s == nil {
		t.Fatal("miss on resident key")
	}
	// Third insert overflows the bound; the unpinned key(2) is the LRU
	// victim even though key(1) is older by insertion.
	mo.Put(key(3), capture(3), "table3")
	if s, _ := mo.Get(key(2), ""); s != nil {
		t.Fatal("unpinned LRU entry survived eviction")
	}
	if s1, _ := mo.Get(key(1), "table2"); s1 == nil {
		t.Fatal("pinned entry evicted")
	}
	if s3, _ := mo.Get(key(3), "table3"); s3 == nil {
		t.Fatal("pinned entry evicted")
	}

	st := mo.Stats()
	if st.Evictions != 1 || st.Entries != 2 {
		t.Fatalf("stats %+v", st)
	}
	if st.Hits != 3 || st.Misses != 1 {
		t.Fatalf("hit/miss accounting %+v", st)
	}
	if st.ResidentBytes <= 0 {
		t.Fatalf("resident bytes %d", st.ResidentBytes)
	}
}

func TestMemoPromotesCaptureOnSecondMiss(t *testing.T) {
	mo := snapshot.NewMemo(2)
	k := snapshot.Key{Model: cpu.I7_6700(), Seed: 9}
	if _, capture := mo.Get(k, "f"); capture {
		t.Fatal("first miss should not ask for a capture")
	}
	if _, capture := mo.Get(k, "f"); !capture {
		t.Fatal("second miss of the same key should promote to capture")
	}
	if _, capture := mo.Get(snapshot.Key{Model: cpu.I7_6700(), Seed: 10}, "f"); capture {
		t.Fatal("a different key must start unpromoted")
	}
}
