package snapshot

import (
	"sync"

	"whisper/internal/cpu"
	"whisper/internal/kernel"
)

// Key identifies one warm-state equivalence class: machines booted with the
// same model, kernel configuration, and seed — and optionally warmed with the
// same program (WarmFP is the warm-up program's isa fingerprint, zero for
// boot-only snapshots) — are bit-identical, so one capture serves them all.
type Key struct {
	Model  cpu.Model
	Kernel kernel.Config
	Seed   int64
	WarmFP uint64
}

// DefaultMemoEntries bounds a memo's resident snapshots. Each snapshot holds
// a frozen machine (dominated by cache metadata, a few MB on 8 MB-LLC
// models), so the bound is a memory budget, not a tuning knob.
const DefaultMemoEntries = 16

// Memo is a concurrency-safe warm-state checkpoint table. Sweeps consult it
// before booting: a hit forks, a miss boots, captures, and publishes. Least
// recently used entries are evicted past the bound, except that the most
// recently used entry of each experiment family stays pinned — the serving
// path replays the same family repeatedly, and its hot snapshot must not be
// evicted by an unrelated sweep walking many one-shot keys.
type Memo struct {
	mu      sync.Mutex
	max     int
	entries map[Key]*memoEntry
	pins    map[string]*memoEntry // family -> most recently used entry
	seen    map[Key]struct{}      // keys that have missed at least once
	clock   uint64

	hits      uint64
	misses    uint64
	evictions uint64
	resident  int64
}

// seenMax bounds the missed-key ledger; overflowing clears it, which only
// delays promotion of recurring keys by one extra miss.
const seenMax = 4096

type memoEntry struct {
	key     Key
	snap    *Snapshot
	family  string
	lastUse uint64
}

// NewMemo returns an empty memo bounded to max resident snapshots
// (DefaultMemoEntries when max <= 0).
func NewMemo(max int) *Memo {
	if max <= 0 {
		max = DefaultMemoEntries
	}
	return &Memo{
		max:     max,
		entries: make(map[Key]*memoEntry),
		pins:    make(map[string]*memoEntry),
		seen:    make(map[Key]struct{}),
	}
}

// Get returns the snapshot for key, or nil on a miss. A hit refreshes the
// entry's recency and pins it for family (when non-empty).
//
// The second result is the capture-promotion verdict for misses: true means
// the key has missed before, so the boot tuple demonstrably recurs and the
// caller should capture a snapshot after booting (Put). A first miss returns
// false — capturing costs a frozen-machine copy plus a content digest, which
// one-shot tuples (most sweep cells, whose seed is derived from the cell's
// identity) would pay without ever forking.
func (mo *Memo) Get(key Key, family string) (*Snapshot, bool) {
	mo.mu.Lock()
	defer mo.mu.Unlock()
	e := mo.entries[key]
	if e == nil {
		mo.misses++
		if _, recurring := mo.seen[key]; recurring {
			return nil, true
		}
		if len(mo.seen) >= seenMax {
			clear(mo.seen)
		}
		mo.seen[key] = struct{}{}
		return nil, false
	}
	mo.hits++
	mo.touch(e, family)
	return e.snap, false
}

// Put publishes a snapshot under key, pinned for family (when non-empty),
// evicting the least recently used unpinned entry if the memo is over its
// bound. Re-publishing an existing key refreshes it in place.
func (mo *Memo) Put(key Key, s *Snapshot, family string) {
	mo.mu.Lock()
	defer mo.mu.Unlock()
	if e := mo.entries[key]; e != nil {
		mo.resident += s.Bytes() - e.snap.Bytes()
		e.snap = s
		mo.touch(e, family)
		return
	}
	e := &memoEntry{key: key, snap: s, family: family}
	mo.entries[key] = e
	mo.resident += s.Bytes()
	mo.touch(e, family)
	for len(mo.entries) > mo.max {
		if !mo.evictLRU() {
			break // everything left is pinned
		}
	}
}

// touch bumps recency and family pinning; callers hold mo.mu.
func (mo *Memo) touch(e *memoEntry, family string) {
	mo.clock++
	e.lastUse = mo.clock
	if family != "" {
		e.family = family
		mo.pins[family] = e
	}
}

// evictLRU drops the least recently used entry that is not a family pin,
// reporting whether anything was evicted; callers hold mo.mu.
func (mo *Memo) evictLRU() bool {
	var victim *memoEntry
	for _, e := range mo.entries {
		if mo.pins[e.family] == e {
			continue
		}
		if victim == nil || e.lastUse < victim.lastUse {
			victim = e
		}
	}
	if victim == nil {
		return false
	}
	delete(mo.entries, victim.key)
	mo.resident -= victim.snap.Bytes()
	mo.evictions++
	return true
}

// Stats is one memo's traffic and occupancy, in the same gauge style as
// cpu.PoolStats so the serving layer can publish both side by side.
type Stats struct {
	Hits          uint64
	Misses        uint64
	Evictions     uint64
	Entries       int
	ResidentBytes int64
}

// Stats returns the memo's lifetime counters and current occupancy.
func (mo *Memo) Stats() Stats {
	mo.mu.Lock()
	defer mo.mu.Unlock()
	return Stats{
		Hits:          mo.hits,
		Misses:        mo.misses,
		Evictions:     mo.evictions,
		Entries:       len(mo.entries),
		ResidentBytes: mo.resident,
	}
}
