package fuzzgen

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"reflect"

	"whisper/internal/core"
	"whisper/internal/cpu"
	"whisper/internal/experiments"
	"whisper/internal/interp"
	"whisper/internal/kernel"
	"whisper/internal/pipeline"
	"whisper/internal/server"
	"whisper/internal/snapshot"
)

// Execution budgets. Generated programs run a few hundred dynamic
// instructions; these bounds only trip when a generator bug lets a program
// run away, which the fuzzer should then report.
const (
	interpBudget = 2_000_000  // instructions
	pipeBudget   = 50_000_000 // cycles, with skip-ahead
	smtBudget    = 5_000_000  // cycles per thread, lockstep (no skip-ahead)
)

// Target is one fuzzable property: a name for the CLI, the native go-fuzz
// target it corresponds to, and the check an input must pass. Sig, when set,
// maps an input to a content signature cmd/whisperfuzz uses to keep only
// corpus entries that exercise a new shape.
type Target struct {
	Name     string
	FuzzName string
	Doc      string
	Check    func(data []byte) error
	Sig      func(data []byte) uint64
}

// Targets returns the registered fuzz targets.
func Targets() []Target {
	return []Target{
		{
			Name:     "difftest",
			FuzzName: "FuzzInterpVsPipeline",
			Doc:      "interp-vs-pipeline architectural equivalence (registers, memory, fault ordering)",
			Check:    CheckInterpVsPipeline,
			Sig:      Signature,
		},
		{
			Name:     "invariants",
			FuzzName: "FuzzPipelineInvariants",
			Doc:      "pipeline self-invariants under Reset reuse, SMT lockstep, and kernel probe campaigns",
			Check:    CheckPipelineInvariants,
			Sig:      Signature,
		},
		{
			Name:     "canon",
			FuzzName: "FuzzServerCanonicalization",
			Doc:      "server request canonicalization: normalize idempotence, hash stability, no collisions",
			Check:    CheckServerCanonicalization,
			Sig:      canonSignature,
		},
		{
			Name:     "snapshot",
			FuzzName: "FuzzSnapshotRestore",
			Doc:      "snapshot capture/fork bit-identity: forks replay the remainder exactly as the capture source",
			Check:    CheckSnapshotRestore,
			Sig:      Signature,
		},
		{
			Name:     "ring",
			FuzzName: "FuzzRingAssignment",
			Doc:      "cluster consistent-hash ring: total, in-range, deterministic assignment; minimal remap",
			Check:    CheckRingAssignment,
			Sig:      ringSignature,
		},
	}
}

// TargetByName resolves a target by CLI name or fuzz-target name.
func TargetByName(name string) (Target, bool) {
	for _, t := range Targets() {
		if t.Name == name || t.FuzzName == name {
			return t, true
		}
	}
	return Target{}, false
}

// CheckInterpVsPipeline generates a program from the input and runs it on
// both engines over identical initial memory. Architectural state — every
// compared register and the whole data region — must match, and the engines
// must agree on whether the program completes (fault ordering: a fault one
// engine suppresses and the other doesn't is a divergence).
func CheckInterpVsPipeline(data []byte) error {
	spec := GenerateSpec(data)

	ei := MustEnv()
	ei.SeedData(spec.MemSeed)
	im := interp.New(ei.AS)
	im.SetSignalHandler(spec.Handler)
	ierr := im.Run(spec.Prog, interpBudget)

	ep := MustEnv()
	ep.SeedData(spec.MemSeed)
	pp, err := ep.NewPipeline()
	if err != nil {
		return err
	}
	pp.SetSignalHandler(spec.Handler)
	_, perr := pp.Exec(spec.Prog, pipeBudget)

	if (ierr != nil) != (perr != nil) {
		return fmt.Errorf("fault-ordering divergence: interp err %v, pipeline err %v", ierr, perr)
	}
	if ierr != nil {
		// Both engines rejected the program identically; the generator's
		// contract says this should not happen, so surface it as a finding.
		return fmt.Errorf("generated program fails on both engines: interp %v, pipeline %v", ierr, perr)
	}

	for _, r := range CompareRegs() {
		if got, want := pp.Reg(r), im.Regs[r]; got != want {
			return fmt.Errorf("reg %v diverges: pipeline %#x, interp %#x", r, got, want)
		}
	}
	gotMem, wantMem := ep.DataBytes(), ei.DataBytes()
	if !bytes.Equal(gotMem, wantMem) {
		for j := range wantMem {
			if gotMem[j] != wantMem[j] {
				return fmt.Errorf("memory diverges at +%#x: pipeline %#x, interp %#x", j, gotMem[j], wantMem[j])
			}
		}
	}
	return nil
}

// CheckPipelineInvariants runs a generated workload with an attached
// pipeline.InvariantChecker and fails on any breach. The first input byte
// picks the harness: machine reuse across Reset, an SMT lockstep pair, or a
// kernel-boot probe campaign.
func CheckPipelineInvariants(data []byte) error {
	s := &src{data: data}
	mode := s.intn(4)
	rest := data[min(s.pos, len(data)):]
	switch mode {
	case 0, 1:
		return checkInvariantsResetReuse(rest)
	case 2:
		return checkInvariantsSMT(rest)
	default:
		return checkInvariantsKernelProbe(rest)
	}
}

// checkInvariantsResetReuse audits the cpu.Machine reuse path: the same
// program twice across Machine.Reset, then a final Reset to catch uop leaks.
func checkInvariantsResetReuse(data []byte) error {
	spec := GenerateSpec(data)
	m, err := cpu.NewMachine(Model(), 1)
	if err != nil {
		return err
	}
	inv := pipeline.NewInvariantChecker()
	m.Pipe.SetInvariantChecker(inv)
	for round := 0; round < 2; round++ {
		m.Reset(1)
		if err := InstallEnv(m, spec.MemSeed); err != nil {
			return err
		}
		m.Pipe.SetSignalHandler(spec.Handler)
		if _, err := m.Pipe.Exec(spec.Prog, pipeBudget); err != nil {
			return fmt.Errorf("reset round %d: %w", round, err)
		}
	}
	m.Reset(1)
	return inv.Err()
}

// checkInvariantsSMT audits two sibling cores in cycle lockstep with shared
// hierarchy/LFB and the §4.4 fault-flush propagation between them.
func checkInvariantsSMT(data []byte) error {
	s0, s1 := GeneratePair(data)
	e := MustEnv()
	e.SeedData(s0.MemSeed)
	p0, p1, err := e.NewSMTPair()
	if err != nil {
		return err
	}
	inv0, inv1 := pipeline.NewInvariantChecker(), pipeline.NewInvariantChecker()
	p0.SetInvariantChecker(inv0)
	p1.SetInvariantChecker(inv1)
	p0.SetSignalHandler(s0.Handler)
	p1.SetSignalHandler(s1.Handler)
	p0.BeginExec(s0.Prog, smtBudget)
	p1.BeginExec(s1.Prog, smtBudget)
	done0, done1 := false, false
	seen0, seen1 := 0, 0
	for !done0 || !done1 {
		if !done0 {
			if done0, err = p0.StepCycle(); err != nil {
				return fmt.Errorf("smt thread 0: %w", err)
			}
		}
		if !done1 {
			if done1, err = p1.StepCycle(); err != nil {
				return fmt.Errorf("smt thread 1: %w", err)
			}
		}
		c0 := p0.Clears()
		for _, ev := range c0[seen0:] {
			if ev.Kind == pipeline.ClearFault {
				p1.InjectStall(ev.Cost)
			}
		}
		seen0 = len(c0)
		c1 := p1.Clears()
		for _, ev := range c1[seen1:] {
			if ev.Kind == pipeline.ClearFault {
				p0.InjectStall(ev.Cost)
			}
		}
		seen1 = len(c1)
	}
	if err := inv0.Err(); err != nil {
		return fmt.Errorf("smt thread 0: %w", err)
	}
	if err := inv1.Err(); err != nil {
		return fmt.Errorf("smt thread 1: %w", err)
	}
	return nil
}

// checkInvariantsKernelProbe audits the production attack path: a booted
// kernel, a transient prober, and an input-driven campaign of probes, TLB
// evictions and syscalls, ending in a Reset leak check.
func checkInvariantsKernelProbe(data []byte) error {
	s := &src{data: data}
	m, err := cpu.NewMachine(Model(), int64(1+s.intn(16)))
	if err != nil {
		return err
	}
	inv := pipeline.NewInvariantChecker()
	m.Pipe.SetInvariantChecker(inv)
	k, err := kernel.Boot(m, kernel.Config{KASLR: true, KPTI: s.coin()})
	if err != nil {
		return err
	}
	supp := core.SuppressTSX
	if s.coin() {
		supp = core.SuppressSignal
	}
	pr, err := core.NewProber(k.Machine(), supp, s.coin())
	if err != nil {
		return err
	}
	probes := 8 + s.intn(24)
	for i := 0; i < probes; i++ {
		var target uint64
		switch s.intn(3) {
		case 0:
			target = core.UnmappedVA
		case 1:
			target = k.ProbeTarget(s.intn(kernel.NumSlots))
		default:
			target = k.SecretVA()
		}
		if _, err := pr.Probe(target, uint64(s.byte()), uint64(s.byte())); err != nil {
			return fmt.Errorf("probe %d: %w", i, err)
		}
		if s.intn(4) == 0 {
			k.EvictTLB()
		}
		if s.intn(4) == 0 {
			k.SyscallRoundTrip()
		}
	}
	m.Reset(1)
	return inv.Err()
}

// snapDigest folds everything observable about a machine into one comparable
// string: the cycle count, the compared architectural registers, the PMU
// bank, the RNG cursor, and a digest of all of physical memory. Machines with
// equal digests after the same workload executed bit-identically.
func snapDigest(m *cpu.Machine) string {
	regs := make([]uint64, 0, 8)
	for _, r := range CompareRegs() {
		regs = append(regs, m.Pipe.Reg(r))
	}
	seed, draws := m.RandCursor()
	return fmt.Sprintf("c=%d regs=%x pmu=%v rng=%d/%d phys=%016x",
		m.Pipe.Cycle(), regs, m.PMU.Snapshot(), seed, draws,
		m.Phys.DigestFNV(14695981039346656037))
}

// CheckSnapshotRestore pins the snapshot layer's bit-identity contract on
// generated workloads: capture a machine mid-stream, then run the identical
// remainder on the capture source and on two forks (one into a fresh machine,
// one into a dirty pooled machine). Cycle counts, registers, the PMU bank,
// the RNG cursor, and physical memory must all match exactly. The first input
// bit picks the harness: a generated program across Machine-level Capture, or
// a booted kernel with a probe campaign across CaptureKernel/ForkKernel.
func CheckSnapshotRestore(data []byte) error {
	s := &src{data: data}
	mode := s.intn(2)
	rest := data[min(s.pos, len(data)):]
	if mode == 0 {
		return checkSnapshotProgram(rest)
	}
	return checkSnapshotKernel(rest)
}

// checkSnapshotProgram runs a generated program once to dirty the machine
// (caches, predictors, PMU, cycle), captures, then reruns the program as the
// "remainder" on source and forks, comparing full digests.
func checkSnapshotProgram(data []byte) error {
	spec := GenerateSpec(data)
	m, err := cpu.NewMachine(Model(), 1)
	if err != nil {
		return err
	}
	if err := InstallEnv(m, spec.MemSeed); err != nil {
		return err
	}
	m.Pipe.SetSignalHandler(spec.Handler)
	if _, err := m.Pipe.Exec(spec.Prog, pipeBudget); err != nil {
		return fmt.Errorf("snapshot warm-up: %w", err)
	}
	snap, err := snapshot.Capture(m)
	if err != nil {
		return err
	}

	rerun := func(mc *cpu.Machine, who string) (string, error) {
		mc.Pipe.SetSignalHandler(spec.Handler)
		if _, err := mc.Pipe.Exec(spec.Prog, pipeBudget); err != nil {
			return "", fmt.Errorf("%s remainder: %w", who, err)
		}
		return snapDigest(mc), nil
	}
	want, err := rerun(m, "source")
	if err != nil {
		return err
	}

	pool := cpu.NewPool()
	fork, err := snap.Fork(pool)
	if err != nil {
		return err
	}
	got, err := rerun(fork, "fork")
	if err != nil {
		return err
	}
	if got != want {
		return fmt.Errorf("fork diverged from capture source:\n got %s\nwant %s", got, want)
	}
	pool.Put(fork)
	fork2, err := snap.Fork(pool) // restores into the dirty recycled machine
	if err != nil {
		return err
	}
	got2, err := rerun(fork2, "pooled fork")
	if err != nil {
		return err
	}
	if got2 != want {
		return fmt.Errorf("pooled fork diverged:\n got %s\nwant %s", got2, want)
	}
	return nil
}

// checkSnapshotKernel boots a kernel, warms it with syscall/TLB traffic,
// captures with CaptureKernel, then runs an input-driven probe campaign on
// the source and on two ForkKernel machines, comparing ToTE sequences and
// full machine digests.
func checkSnapshotKernel(data []byte) error {
	s := &src{data: data}
	cfg := kernel.Config{KASLR: true, KPTI: s.coin()}
	seed := int64(1 + s.intn(16))
	supp := core.SuppressTSX
	if s.coin() {
		supp = core.SuppressSignal
	}
	cmpLoaded := s.coin()
	warm := 1 + s.intn(6)
	type act struct {
		kind       int
		slot       int
		test, cmp  uint64
		evict, sys bool
	}
	acts := make([]act, 4+s.intn(12))
	for i := range acts {
		acts[i] = act{kind: s.intn(3), slot: s.intn(kernel.NumSlots),
			test: uint64(s.byte()), cmp: uint64(s.byte()),
			evict: s.intn(4) == 0, sys: s.intn(4) == 0}
	}

	m, err := cpu.NewMachine(Model(), seed)
	if err != nil {
		return err
	}
	k, err := kernel.Boot(m, cfg)
	if err != nil {
		return err
	}
	for i := 0; i < warm; i++ { // warm prefix: kernel-only traffic
		k.SyscallRoundTrip()
		if i%2 == 0 {
			k.EvictTLB()
		}
	}
	snap, err := snapshot.CaptureKernel(k)
	if err != nil {
		return err
	}

	campaign := func(kk *kernel.Kernel, who string) (string, error) {
		pr, err := core.NewProber(kk.Machine(), supp, cmpLoaded)
		if err != nil {
			return "", err
		}
		totes := make([]uint64, 0, len(acts))
		for i, a := range acts {
			var target uint64
			switch a.kind {
			case 0:
				target = core.UnmappedVA
			case 1:
				target = kk.ProbeTarget(a.slot)
			default:
				target = kk.SecretVA()
			}
			tote, err := pr.Probe(target, a.test, a.cmp)
			if err != nil {
				return "", fmt.Errorf("%s probe %d: %w", who, i, err)
			}
			totes = append(totes, tote)
			if a.evict {
				kk.EvictTLB()
			}
			if a.sys {
				kk.SyscallRoundTrip()
			}
		}
		return fmt.Sprintf("totes=%v %s", totes, snapDigest(kk.Machine())), nil
	}
	want, err := campaign(k, "source")
	if err != nil {
		return err
	}
	pool := cpu.NewPool()
	fk, err := snap.ForkKernel(pool)
	if err != nil {
		return err
	}
	got, err := campaign(fk, "fork")
	if err != nil {
		return err
	}
	if got != want {
		return fmt.Errorf("kernel fork diverged from capture source:\n got %s\nwant %s", got, want)
	}
	pool.Put(fk.Machine())
	fk2, err := snap.ForkKernel(pool)
	if err != nil {
		return err
	}
	got2, err := campaign(fk2, "pooled kernel fork")
	if err != nil {
		return err
	}
	if got2 != want {
		return fmt.Errorf("pooled kernel fork diverged:\n got %s\nwant %s", got2, want)
	}
	return nil
}

// CheckServerCanonicalization derives two requests from the input and checks
// the canonicalization contract the serving cache rests on: Normalize is
// idempotent, Hash is stable, and two requests with distinct canonical forms
// never share a hash.
func CheckServerCanonicalization(data []byte) error {
	s := &src{data: data}
	r1 := requestFromBytes(s)
	r2 := requestFromBytes(s)
	n1, err := checkCanonOne(r1)
	if err != nil {
		return err
	}
	n2, err := checkCanonOne(r2)
	if err != nil {
		return err
	}
	if n1 != nil && n2 != nil && !reflect.DeepEqual(*n1, *n2) && n1.Hash() == n2.Hash() {
		return fmt.Errorf("hash collision across distinct canonical requests: %+v vs %+v", *n1, *n2)
	}
	return nil
}

// checkCanonOne validates one request's canonicalization; a rejected request
// is fine (nothing to hold), a canonical one must be a normalize fixpoint
// with a stable hash.
func checkCanonOne(r server.Request) (*server.Request, error) {
	n1, err := r.Normalize()
	if err != nil {
		return nil, nil
	}
	n2, err := n1.Normalize()
	if err != nil {
		return nil, fmt.Errorf("canonical request rejected on re-normalize: %+v: %v", n1, err)
	}
	if !reflect.DeepEqual(n1, n2) {
		return nil, fmt.Errorf("normalize not idempotent: %+v -> %+v", n1, n2)
	}
	if h1, h2 := n1.Hash(), n2.Hash(); h1 != h2 {
		return nil, fmt.Errorf("hash unstable across calls: %s vs %s", h1, h2)
	}
	return &n1, nil
}

// requestFromBytes derives a server.Request from fuzz input: either raw JSON
// through the same decoder the daemon uses, or a structural mix of known and
// junk field values.
func requestFromBytes(s *src) server.Request {
	if s.coin() {
		raw := s.take(s.intn(256))
		var r server.Request
		if len(raw) > 0 && json.Unmarshal(raw, &r) == nil {
			return r
		}
	}
	var r server.Request
	exps := server.Experiments()
	switch pick := s.intn(len(exps) + 2); {
	case pick < len(exps):
		r.Experiment = exps[pick]
	case pick == len(exps):
		r.Experiment = "attacks"
	default:
		r.Experiment = string(s.take(1 + s.intn(8)))
	}
	r.Seed = int64(int8(s.byte()))
	r.ThroughputBytes = int(int8(s.byte()))
	r.KASLRReps = int(int8(s.byte()))
	r.Fig1bBatches = int(int8(s.byte()))
	cpus := []string{"", "skylake", "Kaby Lake", "KABY LAKE", "Zen 3", "amd ryzen 5 5600g", "bogus"}
	r.CPU = cpus[s.intn(len(cpus))]
	if s.coin() {
		r.Secret = string(s.take(s.intn(16)))
	}
	if s.coin() {
		for _, name := range experiments.AttackNames() {
			if s.coin() {
				r.Attacks = append(r.Attacks, name)
			}
		}
		if s.intn(4) == 0 {
			r.Attacks = append(r.Attacks, string(s.take(3)))
		}
	}
	r.KPTI, r.FLARE, r.Docker = s.coin(), s.coin(), s.coin()
	return r
}

// canonSignature identifies an input by the canonical forms (or rejections)
// it produces, so whisperfuzz keeps only inputs reaching new canon shapes.
func canonSignature(data []byte) uint64 {
	s := &src{data: data}
	h := fnv.New64a()
	for i := 0; i < 2; i++ {
		r := requestFromBytes(s)
		if n, err := r.Normalize(); err != nil {
			_, _ = io.WriteString(h, "rejected\n")
		} else {
			b, _ := json.Marshal(n)
			_, _ = h.Write(b)
			_, _ = h.Write([]byte{'\n'})
		}
	}
	return h.Sum64()
}
