package fuzzgen_test

import (
	"testing"

	"whisper/internal/fuzzgen"
)

// baselineSeeds are inputs added to every fuzz target in addition to the
// committed corpus: the degenerate empties plus a small deterministic stream,
// so a corpus-less checkout still exercises each target's main path.
func baselineSeeds() [][]byte {
	long := make([]byte, 64)
	for i := range long {
		long[i] = byte(i * 7)
	}
	return [][]byte{{}, {0}, long}
}

func fuzzTarget(f *testing.F, name string) {
	t, ok := fuzzgen.TargetByName(name)
	if !ok {
		f.Fatalf("unknown fuzz target %q", name)
	}
	for _, seed := range baselineSeeds() {
		f.Add(seed)
	}
	f.Fuzz(func(tt *testing.T, data []byte) {
		if err := t.Check(data); err != nil {
			tt.Fatalf("%s: %v", t.Name, err)
		}
	})
}

// FuzzInterpVsPipeline is the differential target: the sequential
// architectural interpreter and the out-of-order pipeline must leave
// identical architectural state on every generated program, including ones
// with faulting transient windows.
func FuzzInterpVsPipeline(f *testing.F) { fuzzTarget(f, "FuzzInterpVsPipeline") }

// FuzzPipelineInvariants drives machine-reuse, SMT-lockstep and kernel-probe
// harnesses with a pipeline.InvariantChecker attached, failing on any
// structural breach (occupancy bounds, retire order, uop leaks across Reset).
func FuzzPipelineInvariants(f *testing.F) { fuzzTarget(f, "FuzzPipelineInvariants") }

// FuzzServerCanonicalization checks the serving cache's contract: Normalize
// is an idempotent fixpoint, Hash is stable, and distinct canonical requests
// never collide.
func FuzzServerCanonicalization(f *testing.F) { fuzzTarget(f, "FuzzServerCanonicalization") }

// FuzzSnapshotRestore captures machines and booted kernels mid-workload and
// replays the identical remainder on the capture source and on forks (fresh
// and dirty-pooled), asserting cycle counts, registers, PMU bank, RNG cursor,
// and physical memory are bit-identical.
func FuzzSnapshotRestore(f *testing.F) { fuzzTarget(f, "FuzzSnapshotRestore") }

// FuzzRingAssignment feeds arbitrary backend sets and request keys into the
// cluster's consistent-hash ring, asserting total, panic-free, in-range,
// deterministic assignment and the minimal-remap property.
func FuzzRingAssignment(f *testing.F) { fuzzTarget(f, "FuzzRingAssignment") }
