package fuzzgen

import (
	"fmt"
	"math/rand"

	"whisper/internal/bpu"
	"whisper/internal/cpu"
	"whisper/internal/mem"
	"whisper/internal/paging"
	"whisper/internal/pipeline"
	"whisper/internal/pmu"
	"whisper/internal/tlb"
)

// Env is the memory world generated programs run in: code, data and stack
// mapped user-visible at the fixed layout the generator emits addresses for.
// The same layout is installed on a fresh address space (NewEnv, for
// standalone interpreters and pipelines) or onto a reused cpu.Machine
// (InstallEnv, for the Reset/Pool paths).
type Env struct {
	AS   *paging.AddressSpace
	Phys *mem.Physical
}

// NewEnv builds a fresh environment with the difftest layout mapped.
func NewEnv() (Env, error) {
	phys := mem.NewPhysical()
	as := paging.NewAddressSpace(phys, paging.NewFrameAllocator(0x100000))
	if err := mapLayout(as); err != nil {
		return Env{}, err
	}
	return Env{AS: as, Phys: phys}, nil
}

// MustEnv is NewEnv that panics on error; the fixed layout cannot fail to map
// on a fresh address space.
func MustEnv() Env {
	e, err := NewEnv()
	if err != nil {
		panic(err)
	}
	return e
}

func mapLayout(as *paging.AddressSpace) error {
	for _, m := range []struct {
		va    uint64
		n     int
		flags uint64
	}{
		{CodeBase, CodePages, paging.FlagU},
		{DataBase, DataPages, paging.FlagU | paging.FlagW},
		{StackBase, StackPages, paging.FlagU | paging.FlagW},
	} {
		if _, err := as.MapRange(m.va, m.n, m.flags); err != nil {
			return fmt.Errorf("fuzzgen: map %#x: %w", m.va, err)
		}
	}
	return nil
}

// SeedData fills the data region from a deterministic stream.
func (e Env) SeedData(seed int64) {
	seedDataInto(e.AS, e.Phys, seed)
}

func seedDataInto(as *paging.AddressSpace, phys *mem.Physical, seed int64) {
	buf := make([]byte, DataRegionSize)
	rand.New(rand.NewSource(seed)).Read(buf)
	pa, _ := as.Translate(DataBase)
	phys.StoreBytes(pa, buf)
}

// DataBytes returns the data region's current contents.
func (e Env) DataBytes() []byte {
	pa, _ := e.AS.Translate(DataBase)
	return e.Phys.LoadBytes(pa, DataRegionSize)
}

// Model is the difftest CPU model: the paper's Kaby Lake part with
// measurement noise pinned off, so timing is a pure function of the program.
func Model() cpu.Model {
	m := cpu.I7_7700()
	m.Pipe.NoiseSigma = 0
	m.Pipe.InterruptProb = 0
	return m
}

// NewPipeline builds a deterministic out-of-order core over the environment,
// resourced exactly as a Machine built from Model() would be.
func (e Env) NewPipeline() (*pipeline.Pipeline, error) {
	hier := mem.NewHierarchy(e.Phys, Model().Hier)
	return e.newPipeline(hier, mem.NewLFB(10), 1)
}

// NewSMTPair builds two sibling cores sharing the cache hierarchy and fill
// buffers (the SMT surface) with private TLBs, predictors and PMUs — the
// smt.DualCore resource split, over this environment.
func (e Env) NewSMTPair() (*pipeline.Pipeline, *pipeline.Pipeline, error) {
	hier := mem.NewHierarchy(e.Phys, Model().Hier)
	lfb := mem.NewLFB(10)
	p0, err := e.newPipeline(hier, lfb, 1)
	if err != nil {
		return nil, nil, err
	}
	p1, err := e.newPipeline(hier, lfb, 2)
	if err != nil {
		return nil, nil, err
	}
	return p0, p1, nil
}

func (e Env) newPipeline(hier *mem.Hierarchy, lfb *mem.LFB, seed int64) (*pipeline.Pipeline, error) {
	m := Model()
	return pipeline.New(m.Pipe, pipeline.Resources{
		Hier: hier,
		LFB:  lfb,
		AS:   e.AS,
		DTLB: tlb.New("dtlb", m.DTLB),
		ITLB: tlb.New("itlb", m.ITLB),
		BPU:  bpu.New(m.BPU),
		PMU:  pmu.New(),
		Rand: rand.New(rand.NewSource(seed)),
	})
}

// InstallEnv maps the difftest layout into a (freshly Reset) machine's
// address space and seeds its data region — Env's world on a cpu.Machine.
func InstallEnv(m *cpu.Machine, memSeed int64) error {
	as := m.Pipe.AddressSpace()
	if err := mapLayout(as); err != nil {
		return err
	}
	seedDataInto(as, m.Phys, memSeed)
	return nil
}

// MachineDataBytes returns the data region's contents on a machine the
// layout was installed on.
func MachineDataBytes(m *cpu.Machine) []byte {
	as := m.Pipe.AddressSpace()
	pa, _ := as.Translate(DataBase)
	return m.Phys.LoadBytes(pa, DataRegionSize)
}
