package fuzzgen

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// The on-disk corpus format is the Go toolchain's native one, so the same
// files seed `go test -fuzz` runs and cmd/whisperfuzz campaigns, and a crash
// artifact written by either tool replays in the other.
const corpusHeader = "go test fuzz v1"

// MarshalCorpus encodes raw fuzz input in the Go corpus-file format.
func MarshalCorpus(data []byte) []byte {
	return []byte(fmt.Sprintf("%s\n[]byte(%q)\n", corpusHeader, data))
}

// UnmarshalCorpus decodes a Go corpus file holding a single []byte value.
func UnmarshalCorpus(b []byte) ([]byte, error) {
	lines := strings.SplitN(strings.ReplaceAll(string(b), "\r\n", "\n"), "\n", 3)
	if len(lines) < 2 || strings.TrimSpace(lines[0]) != corpusHeader {
		return nil, fmt.Errorf("fuzzgen: not a %q corpus file", corpusHeader)
	}
	body := strings.TrimSpace(lines[1])
	const prefix, suffix = "[]byte(", ")"
	if !strings.HasPrefix(body, prefix) || !strings.HasSuffix(body, suffix) {
		return nil, fmt.Errorf("fuzzgen: corpus value %q is not a []byte literal", body)
	}
	q := strings.TrimSuffix(strings.TrimPrefix(body, prefix), suffix)
	s, err := strconv.Unquote(q)
	if err != nil {
		return nil, fmt.Errorf("fuzzgen: corpus value: %w", err)
	}
	return []byte(s), nil
}

// CorpusEntry is one named seed or crash input.
type CorpusEntry struct {
	Name string
	Data []byte
}

// ReadCorpusFile loads one corpus file.
func ReadCorpusFile(path string) ([]byte, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	data, err := UnmarshalCorpus(b)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return data, nil
}

// WriteCorpusFile writes data as a corpus file, creating parent directories.
func WriteCorpusFile(path string, data []byte) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	return os.WriteFile(path, MarshalCorpus(data), 0o644)
}

// ReadCorpusDir loads every corpus file in dir, sorted by name. A missing
// directory is an empty corpus, not an error.
func ReadCorpusDir(dir string) ([]CorpusEntry, error) {
	des, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var entries []CorpusEntry
	for _, de := range des {
		if de.IsDir() {
			continue
		}
		data, err := ReadCorpusFile(filepath.Join(dir, de.Name()))
		if err != nil {
			return nil, err
		}
		entries = append(entries, CorpusEntry{Name: de.Name(), Data: data})
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].Name < entries[j].Name })
	return entries, nil
}
