// Package fuzzgen is the structured program generator behind the simulator's
// differential-fuzzing subsystem. It turns an arbitrary byte string — a fuzz
// engine's mutated input — into a valid, always-terminating ISA program
// exercising the corners the transient-execution attacks live in: loads and
// stores of every size, faulting accesses, TSX and signal-suppressed
// transient blocks, dependent and independent conditional branches, bounded
// loops, calls, fences and cache maintenance. The same generator drives the
// native fuzz targets (go test -fuzz ./internal/fuzzgen), the pinned
// differential tests in internal/interp, and cmd/whisperfuzz campaigns.
//
// Generation is total and deterministic: every byte string (including the
// empty one) produces an assemblable program, and equal bytes produce
// byte-identical programs — the property that makes corpus entries
// replayable crash artifacts.
package fuzzgen

import (
	"fmt"
	"hash/fnv"

	"whisper/internal/isa"
)

// The fixed memory layout generated programs address. Code, data and stack
// are user pages; everything else faults (the transient-access surface).
const (
	CodeBase   = 0x400000
	CodePages  = 16
	DataBase   = 0x500000
	DataPages  = 8
	StackBase  = 0x7f0000
	StackPages = 4

	pageSize = 4096
	// DataRegionSize is the span of the generated programs' read-write data.
	DataRegionSize = DataPages * pageSize
)

// GenRegs are the registers generated code computes with. RSP carries the
// stack discipline; R13/R14 are transient-block markers; R15 is the loop
// counter — all compared, none clobbered by generated blocks.
var GenRegs = []isa.Reg{isa.RAX, isa.RBX, isa.RCX, isa.RDX, isa.RSI, isa.RDI, isa.R8, isa.R9}

// CompareRegs returns every register a differential check must compare:
// the generated-code registers plus the structural ones.
func CompareRegs() []isa.Reg {
	return append(append([]isa.Reg{}, GenRegs...), isa.RSP, isa.R13, isa.R14, isa.R15)
}

// Spec is one generated test case: the program, the signal-handler
// instruction index to install (-1 for none), and the seed for the data
// region's initial contents.
type Spec struct {
	Prog    *isa.Program
	Handler int
	MemSeed int64
}

// src is a deterministic byte cursor over the fuzz input. Reads past the end
// return zeros, which makes generation total: any input yields a program.
type src struct {
	data []byte
	pos  int
}

func (s *src) byte() byte {
	if s.pos >= len(s.data) {
		return 0
	}
	b := s.data[s.pos]
	s.pos++
	return b
}

// intn returns a value in [0, n), consuming as many bytes as n's range needs
// so large ranges (page offsets, wild addresses) are not biased to one byte.
func (s *src) intn(n int) int {
	switch {
	case n <= 1:
		return 0
	case n <= 1<<8:
		return int(s.byte()) % n
	case n <= 1<<16:
		return (int(s.byte())<<8 | int(s.byte())) % n
	default:
		return int(s.uint32()&0x7fffffff) % n
	}
}

func (s *src) coin() bool { return s.byte()&1 == 1 }

func (s *src) uint32() uint32 {
	return uint32(s.byte()) | uint32(s.byte())<<8 | uint32(s.byte())<<16 | uint32(s.byte())<<24
}

func (s *src) uint64() uint64 {
	return uint64(s.uint32()) | uint64(s.uint32())<<32
}

// take returns the next n input bytes (short when the input runs out).
func (s *src) take(n int) []byte {
	if s.pos >= len(s.data) || n <= 0 {
		return nil
	}
	end := s.pos + n
	if end > len(s.data) {
		end = len(s.data)
	}
	b := s.data[s.pos:end]
	s.pos = end
	return b
}

// gen carries the builder state for one program.
type gen struct {
	s      *src
	b      *isa.Builder
	labels int
}

func (g *gen) label() string {
	g.labels++
	return fmt.Sprintf("l%d", g.labels)
}

func (g *gen) reg() isa.Reg { return GenRegs[g.s.intn(len(GenRegs))] }

// dataAddr materialises a valid data-region address in dst.
func (g *gen) dataAddr(dst isa.Reg) {
	off := int64(g.s.intn(DataRegionSize/8)) * 8
	g.b.MovImm(dst, DataBase+off)
}

// wildAddr materialises an address with no translation — the transient-fault
// surface the KASLR probes and MDS assists run on.
func (g *gen) wildAddr(dst isa.Reg) {
	bases := [...]int64{0x40000000, 0x50000000, 0x70000000}
	g.b.MovImm(dst, bases[g.s.intn(len(bases))]+int64(g.s.intn(1<<20))*pageSize)
}

var accessSizes = [...]int{1, 2, 4, 8}

// block emits n straight-line-ish instructions: ALU work, loads/stores of
// every size, cache maintenance, fences, and forward conditional branches
// whose conditions are either dependent on the block's dataflow or pinned by
// immediates (the paper's §5 dependent-vs-independent Jcc distinction).
// Blocks never fault and never jump backwards.
func (g *gen) block(n int) {
	b, s := g.b, g.s
	for i := 0; i < n; i++ {
		switch s.intn(16) {
		case 0:
			b.MovImm(g.reg(), int64(int32(s.uint32())))
		case 1:
			b.Mov(g.reg(), g.reg())
		case 2:
			b.Add(g.reg(), g.reg(), g.reg())
		case 3:
			b.Sub(g.reg(), g.reg(), g.reg())
		case 4:
			b.Xor(g.reg(), g.reg(), g.reg())
		case 5:
			b.Imul(g.reg(), g.reg(), g.reg())
		case 6:
			b.AndImm(g.reg(), g.reg(), int64(s.uint32()))
		case 7:
			b.ShlImm(g.reg(), g.reg(), int64(s.intn(63)))
		case 8:
			b.ShrImm(g.reg(), g.reg(), int64(s.intn(63)))
		case 9:
			a := g.reg()
			g.dataAddr(a)
			d := g.reg()
			if d == a {
				d = isa.RAX
			}
			b.Load(d, a, 0, accessSizes[s.intn(len(accessSizes))])
		case 10:
			a := g.reg()
			g.dataAddr(a)
			b.Store(a, 0, g.reg(), accessSizes[s.intn(len(accessSizes))])
		case 11:
			// Independent Jcc: the condition comes from immediates, not from
			// any value the surrounding code computed.
			skip := g.label()
			t := g.reg()
			b.MovImm(t, int64(s.intn(8)))
			b.CmpImm(t, int64(s.intn(8)))
			b.Jcc(isa.Cond(s.intn(8)), skip)
			b.Add(g.reg(), g.reg(), g.reg())
			b.Label(skip)
		case 12:
			// Dependent Jcc: the condition hangs off live dataflow.
			skip := g.label()
			if s.coin() {
				b.Cmp(g.reg(), g.reg())
			} else {
				b.CmpImm(g.reg(), int64(s.intn(16)))
			}
			b.Jcc(isa.Cond(s.intn(8)), skip)
			b.Xor(g.reg(), g.reg(), g.reg())
			b.Add(g.reg(), g.reg(), g.reg())
			b.Label(skip)
		case 13:
			a := g.reg()
			g.dataAddr(a)
			if s.coin() {
				b.Clflush(a, 0)
			} else {
				b.Prefetch(a, 0)
			}
		case 14:
			switch s.intn(3) {
			case 0:
				b.Lfence()
			case 1:
				b.Mfence()
			default:
				b.Sfence()
			}
		default:
			b.Or(g.reg(), g.reg(), g.reg())
		}
	}
}

// loop emits a bounded countdown loop over a block; R15 carries the counter.
func (g *gen) loop() {
	top := g.label()
	g.b.MovImm(isa.R15, int64(2+g.s.intn(6)))
	g.b.Label(top)
	g.block(2 + g.s.intn(6))
	g.b.SubImm(isa.R15, isa.R15, 1)
	g.b.CmpImm(isa.R15, 0)
	g.b.Jcc(isa.CondNE, top)
}

// transientAccess emits one access guaranteed to fault: a load or store with
// no translation, or a store into the read-only code region (the permission
// path). Only called inside suppressed (TSX or signal-handled) sections.
func (g *gen) transientAccess() {
	b, s := g.b, g.s
	a := g.reg()
	switch s.intn(4) {
	case 0: // wild load: not-present fault, MDS-style transient forward
		g.wildAddr(a)
		d := g.reg()
		if d == a {
			d = isa.RAX
		}
		b.Load(d, a, 0, accessSizes[s.intn(len(accessSizes))])
	case 1: // wild store: not-present fault at retire
		g.wildAddr(a)
		b.Store(a, 0, g.reg(), 8)
	case 2: // store to read-only code: permission fault
		b.MovImm(a, CodeBase+int64(s.intn(CodePages*pageSize/8))*8)
		b.Store(a, 0, g.reg(), 8)
	default: // wild load feeding dependent transient work
		g.wildAddr(a)
		d := g.reg()
		if d == a {
			d = isa.RBX
		}
		b.LoadB(d, a, 0)
		b.Add(d, d, d)
	}
}

// tsxBlock emits a transaction. Most abort (a transient access inside plants
// a marker-visible rollback); some commit cleanly, pinning that Xbegin/Xend
// without a fault leaves no trace.
func (g *gen) tsxBlock() {
	b, s := g.b, g.s
	abort, end := g.label(), g.label()
	b.Xbegin(abort)
	g.block(1 + s.intn(3))
	if s.intn(4) != 0 {
		g.transientAccess()
		g.block(1 + s.intn(3)) // transient-only work, must never retire
	}
	b.Xend()
	b.Jmp(end)
	b.Label(abort)
	b.MovImm(isa.R14, int64(0xAB00+s.intn(256)))
	b.Label(end)
}

// signalBlock emits one signal-suppressed transient section and returns the
// handler's instruction index. The handler sits past the faulting access with
// only forward control flow after it, so a program holds at most one of
// these — a second would warp execution backwards through the shared handler.
func (g *gen) signalBlock() int {
	b, s := g.b, g.s
	done := g.label()
	g.transientAccess()
	g.block(1 + s.intn(3)) // transient-only
	b.Jmp(done)
	h := b.Pos()
	b.MovImm(isa.R13, int64(0xCD00+s.intn(256)))
	b.Label(done)
	return h
}

// Generate turns fuzz input into a program (the handler-free view; faulting
// sections are all TSX-suppressed). Most callers want GenerateSpec.
func Generate(data []byte) *isa.Program {
	s := GenerateSpec(data)
	return s.Prog
}

// GenerateSpec turns fuzz input into a complete test case. The emitted
// program always terminates within a few hundred dynamic instructions: loops
// are bounded countdowns, calls target one leaf function, and every faulting
// access is suppressed by TSX or the (single, forward) signal handler.
func GenerateSpec(data []byte) Spec {
	s := &src{data: data}
	b := isa.NewBuilder(CodeBase)
	g := &gen{s: s, b: b}
	spec := Spec{Handler: -1}

	// Prologue: stack discipline and seeded register file.
	b.MovImm(isa.RSP, StackBase+0x2000)
	for _, r := range GenRegs {
		b.MovImm(r, int64(s.uint64()>>16))
	}
	spec.MemSeed = int64(s.uint64()%1_000_003) + 1

	useFn := s.coin()
	nsec := 2 + s.intn(5)
	for i := 0; i < nsec; i++ {
		switch s.intn(6) {
		case 0, 1:
			g.block(3 + s.intn(10))
		case 2:
			g.loop()
		case 3:
			if useFn {
				b.Call("fn")
			} else {
				g.block(2 + s.intn(4))
			}
		case 4:
			g.tsxBlock()
		default:
			g.block(1 + s.intn(4))
			g.loop()
		}
	}
	if s.coin() {
		spec.Handler = g.signalBlock()
	}
	g.block(2 + s.intn(4))
	b.Jmp("end")
	if useFn {
		b.Label("fn")
		g.block(3 + s.intn(6))
		b.Ret()
	}
	b.Label("end")
	b.Halt()
	spec.Prog = b.MustAssemble()
	return spec
}

// GeneratePair splits the input and generates one Spec per half — the
// SMT-pair shape: two independent programs co-scheduled on sibling threads.
func GeneratePair(data []byte) (Spec, Spec) {
	half := len(data) / 2
	return GenerateSpec(data[:half]), GenerateSpec(data[half:])
}

// Signature is a content identity for the program an input generates, used
// by cmd/whisperfuzz to recognise inputs that add no new program shape.
func Signature(data []byte) uint64 {
	spec := GenerateSpec(data)
	h := fnv.New64a()
	fmt.Fprintf(h, "handler=%d memseed=%d\n", spec.Handler, spec.MemSeed)
	_, _ = h.Write([]byte(spec.Prog.Dump()))
	return h.Sum64()
}
