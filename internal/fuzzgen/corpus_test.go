package fuzzgen_test

import (
	"bytes"
	"path/filepath"
	"testing"

	"whisper/internal/fuzzgen"
)

// TestCorpusRoundTrip: the corpus codec must reproduce the Go toolchain's
// single-[]byte corpus format exactly, byte streams surviving both directions.
func TestCorpusRoundTrip(t *testing.T) {
	cases := [][]byte{{}, {0}, []byte("hello\nworld\x00\xff"), seedStream(3, 300)}
	for i, data := range cases {
		enc := fuzzgen.MarshalCorpus(data)
		dec, err := fuzzgen.UnmarshalCorpus(enc)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if !bytes.Equal(dec, data) {
			t.Fatalf("case %d: round trip lost data: %q vs %q", i, dec, data)
		}
	}
	if _, err := fuzzgen.UnmarshalCorpus([]byte("not a corpus file")); err == nil {
		t.Fatal("garbage accepted as corpus file")
	}
}

// TestCommittedCorpus pins every committed seed-corpus entry as a named
// regression test: each input that once found (or nearly found) a divergence
// must keep passing its target's check forever, with or without -fuzz.
func TestCommittedCorpus(t *testing.T) {
	for _, target := range fuzzgen.Targets() {
		target := target
		t.Run(target.FuzzName, func(t *testing.T) {
			dir := filepath.Join("testdata", "fuzz", target.FuzzName)
			entries, err := fuzzgen.ReadCorpusDir(dir)
			if err != nil {
				t.Fatal(err)
			}
			if len(entries) == 0 {
				t.Fatalf("no committed seed corpus in %s", dir)
			}
			for _, e := range entries {
				e := e
				t.Run(e.Name, func(t *testing.T) {
					t.Parallel()
					if err := target.Check(e.Data); err != nil {
						t.Fatalf("committed corpus entry regressed: %v", err)
					}
				})
			}
		})
	}
}
