package fuzzgen_test

import (
	"fmt"
	"math/rand"
	"testing"

	"whisper/internal/fuzzgen"
	"whisper/internal/interp"
)

func seedStream(seed int64, n int) []byte {
	buf := make([]byte, n)
	rand.New(rand.NewSource(seed)).Read(buf)
	return buf
}

// TestGenerateDeterministic: the generator is a pure function of its input
// bytes. The same stream must yield a byte-identical program (and handler and
// memory seed) no matter how many times, or on how many goroutines, it runs —
// corpus replay and crash minimization depend on it.
func TestGenerateDeterministic(t *testing.T) {
	for i := 0; i < 8; i++ {
		i := i
		t.Run(fmt.Sprintf("stream%d", i), func(t *testing.T) {
			t.Parallel()
			data := seedStream(int64(100+i), 512)
			ref := fuzzgen.GenerateSpec(data)
			refDump := ref.Prog.Dump()
			refPrint := ref.Prog.Fingerprint()
			for rep := 0; rep < 4; rep++ {
				got := fuzzgen.GenerateSpec(data)
				if d := got.Prog.Dump(); d != refDump {
					t.Fatalf("rep %d: program text diverged:\n%s\nvs\n%s", rep, d, refDump)
				}
				if p := got.Prog.Fingerprint(); p != refPrint {
					t.Fatalf("rep %d: fingerprint %#x, want %#x", rep, p, refPrint)
				}
				if got.Handler != ref.Handler || got.MemSeed != ref.MemSeed {
					t.Fatalf("rep %d: handler/seed diverged: (%d,%d) vs (%d,%d)",
						rep, got.Handler, got.MemSeed, ref.Handler, ref.MemSeed)
				}
			}
			if sig := fuzzgen.Signature(data); sig != fuzzgen.Signature(data) {
				t.Fatalf("signature unstable: %#x", sig)
			}
		})
	}
}

// TestGenerateTotal: every byte stream — including truncated and empty ones —
// yields a program that assembles and runs to completion on the architectural
// interpreter within budget. The generator is total; there are no "invalid"
// fuzz inputs, only different programs.
func TestGenerateTotal(t *testing.T) {
	inputs := [][]byte{nil, {}, {0xff}, seedStream(7, 3), seedStream(8, 17)}
	for i := int64(0); i < 24; i++ {
		inputs = append(inputs, seedStream(200+i, int(32+i*40)))
	}
	for i, data := range inputs {
		spec := fuzzgen.GenerateSpec(data)
		env := fuzzgen.MustEnv()
		env.SeedData(spec.MemSeed)
		m := interp.New(env.AS)
		m.SetSignalHandler(spec.Handler)
		if err := m.Run(spec.Prog, 2_000_000); err != nil {
			t.Fatalf("input %d: generated program does not complete: %v\n%s",
				i, err, spec.Prog.Dump())
		}
	}
}

// TestGeneratePairSplitsInput: the SMT pair generator must derive two
// independent specs deterministically from one stream.
func TestGeneratePairSplitsInput(t *testing.T) {
	data := seedStream(42, 600)
	a1, b1 := fuzzgen.GeneratePair(data)
	a2, b2 := fuzzgen.GeneratePair(data)
	if a1.Prog.Fingerprint() != a2.Prog.Fingerprint() || b1.Prog.Fingerprint() != b2.Prog.Fingerprint() {
		t.Fatal("GeneratePair not deterministic")
	}
	if a1.Prog.Fingerprint() == b1.Prog.Fingerprint() && a1.Prog.Dump() == b1.Prog.Dump() && len(data) > 8 {
		t.Log("pair halves generated identical programs (possible but suspicious for a long stream)")
	}
}
