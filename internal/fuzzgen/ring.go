package fuzzgen

import (
	"fmt"
	"hash/fnv"
	"io"
	"sort"

	"whisper/internal/cluster"
)

// CheckRingAssignment feeds an arbitrary backend set and request keys into
// the cluster's consistent-hash ring and holds its routing contract:
// construction is total (empty and duplicate names collapse, never panic),
// every Order is a complete permutation of the member set, assignment is
// deterministic across calls and agrees with Pick, and removing a member
// only remaps the keys that lived on it (minimal remap — the property that
// makes ejection cheap for the cluster's aggregate cache).
func CheckRingAssignment(data []byte) error {
	s := &src{data: data}
	backends := backendsFromBytes(s)
	ring := cluster.NewRing(backends)

	want := map[string]bool{}
	for _, b := range backends {
		if b != "" {
			want[b] = true
		}
	}
	members := ring.Members()
	if len(members) != len(want) || ring.Len() != len(members) {
		return fmt.Errorf("ring membership wrong: %d members from %d distinct inputs", len(members), len(want))
	}
	if !sort.StringsAreSorted(members) {
		return fmt.Errorf("members not sorted: %q", members)
	}
	for _, m := range members {
		if !want[m] {
			return fmt.Errorf("ring invented member %q", m)
		}
	}

	nKeys := 1 + s.intn(16)
	for i := 0; i < nKeys; i++ {
		key := string(s.take(s.intn(40)))
		order := ring.Order(key)
		if len(members) == 0 {
			if len(order) != 0 {
				return fmt.Errorf("empty ring returned order %q", order)
			}
			if _, ok := ring.Pick(key); ok {
				return fmt.Errorf("empty ring picked a backend for %q", key)
			}
			continue
		}
		if len(order) != len(members) {
			return fmt.Errorf("order for %q has %d entries, want %d", key, len(order), len(members))
		}
		seen := map[string]bool{}
		for _, b := range order {
			if !want[b] {
				return fmt.Errorf("order for %q names unknown backend %q", key, b)
			}
			if seen[b] {
				return fmt.Errorf("order for %q repeats backend %q", key, b)
			}
			seen[b] = true
		}
		again := ring.Order(key)
		for j := range order {
			if order[j] != again[j] {
				return fmt.Errorf("order for %q unstable: %q then %q", key, order, again)
			}
		}
		home, ok := ring.Pick(key)
		if !ok || home != order[0] {
			return fmt.Errorf("Pick(%q) = %q,%v disagrees with Order[0] = %q", key, home, ok, order[0])
		}
	}

	// Minimal remap: drop one member; every key homed elsewhere must keep
	// its home on the smaller ring.
	if len(members) > 1 {
		removed := members[s.intn(len(members))]
		rest := make([]string, 0, len(members)-1)
		for _, m := range members {
			if m != removed {
				rest = append(rest, m)
			}
		}
		smaller := cluster.NewRing(rest)
		for i := 0; i < 8; i++ {
			key := fmt.Sprintf("remap-key-%d-%x", i, s.byte())
			before, _ := ring.Pick(key)
			after, _ := smaller.Pick(key)
			if before != removed && before != after {
				return fmt.Errorf("removing %q remapped key %q: %q -> %q", removed, key, before, after)
			}
		}
	}
	return nil
}

// backendsFromBytes derives a backend list from fuzz input: a mix of
// plausible addresses (with likely duplicates), empty strings, and
// arbitrary bytes.
func backendsFromBytes(s *src) []string {
	n := s.intn(12)
	out := make([]string, 0, n)
	for i := 0; i < n; i++ {
		switch s.intn(4) {
		case 0:
			out = append(out, "")
		case 1, 2:
			out = append(out, fmt.Sprintf("10.0.0.%d:8090", s.intn(8)))
		default:
			out = append(out, string(s.take(s.intn(12))))
		}
	}
	return out
}

// ringSignature identifies an input by the member set and home assignments
// it produces, so whisperfuzz keeps only inputs reaching new ring shapes.
func ringSignature(data []byte) uint64 {
	s := &src{data: data}
	ring := cluster.NewRing(backendsFromBytes(s))
	h := fnv.New64a()
	for _, m := range ring.Members() {
		_, _ = io.WriteString(h, m)
		_, _ = h.Write([]byte{'\n'})
	}
	for i := 0; i < 4; i++ {
		home, _ := ring.Pick(string(s.take(8)))
		_, _ = io.WriteString(h, home)
		_, _ = h.Write([]byte{0})
	}
	return h.Sum64()
}
