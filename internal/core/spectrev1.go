package core

import (
	"fmt"

	"whisper/internal/cpu"
	"whisper/internal/isa"
	"whisper/internal/kernel"
	"whisper/internal/stats"
)

// v1CodeBase isolates the Spectre-V1 gadget's code.
const v1CodeBase = kernel.UserCodeBase + 0x40000

// SpectreV1 is a TET-decoded Spectre variant 1 (bounds-check bypass) — an
// extension beyond the paper's attack list, built from the same channel: the
// window opens on a mispredicted bounds check whose limit load was flushed,
// the transient out-of-bounds read feeds an in-window Jcc, and the secret
// comes back purely as execution time. Like TET-RSB there is no fault, so
// no suppression is needed; the trigger squashes the wrong-path work early,
// so the decode takes the argmin.
type SpectreV1 struct {
	m       *cpu.Machine
	prog    *isa.Program
	lenVA   uint64
	arrVA   uint64
	arrLen  uint64
	Batches int
}

// NewTETSpectreV1 builds the victim-style gadget:
//
//	if (idx < *len) { v = arr[idx]; if (v == test) nop; }
//
// arr and len live in the user data region; the "secret" is whatever sits
// beyond arr (in-process sandbox threat model, as TET-RSB).
func NewTETSpectreV1(k *kernel.Kernel) (*SpectreV1, error) {
	if k == nil {
		return nil, errNotBooted
	}
	a := &SpectreV1{
		m:       k.Machine(),
		lenVA:   kernel.UserDataBase + 0x7000,
		arrVA:   kernel.UserDataBase + 0x7100,
		arrLen:  16,
		Batches: 3,
	}
	pa, ok := k.UserAS().Translate(a.lenVA)
	if !ok {
		return nil, fmt.Errorf("core: TET-V1 length VA unmapped")
	}
	a.m.Phys.Write(pa, 8, a.arrLen)

	b := isa.NewBuilder(v1CodeBase)
	// R9 = idx, RDX = test value, R10 = &len, R11 = arr base.
	b.Rdtsc(isa.RSI)
	b.Lfence()
	b.LoadQ(isa.RAX, isa.R10, 0) // len (flushed before the probe: slow resolve)
	b.Cmp(isa.R9, isa.RAX)
	b.Jcc(isa.CondNC, "oob") // idx >= len: architecturally taken on probes
	// ---- transient in-bounds path ----
	b.Add(isa.RBX, isa.R11, isa.R9)
	b.LoadB(isa.RCX, isa.RBX, 0) // out-of-bounds read under misprediction
	b.Cmp(isa.RCX, isa.RDX)
	b.Jcc(isa.CondE, "taken")
	b.NopSled(gadgetSled) // fall-through keeps issuing wrong-path work
	b.Jmp("oob")
	b.Label("taken")
	b.Lfence() // trigger path stalls issue: cheap final squash
	b.Label("oob")
	b.Lfence()
	b.Rdtsc(isa.RDI)
	b.Halt()
	prog, err := b.Assemble()
	if err != nil {
		return nil, fmt.Errorf("core: assemble V1 gadget: %w", err)
	}
	a.prog = prog
	return a, nil
}

// train runs the gadget with an in-bounds index so the bounds check learns
// "not taken" (speculate into the array access).
func (a *SpectreV1) train() error {
	for i := 0; i < 3; i++ {
		if _, err := a.run(uint64(i%int(a.arrLen)), 256, false); err != nil {
			return err
		}
	}
	return nil
}

// run executes one gadget pass. flushLen evicts the length so the bounds
// check resolves late, opening the transient window.
func (a *SpectreV1) run(idx, test uint64, flushLen bool) (uint64, error) {
	p := a.m.Pipe
	if flushLen {
		if pa, ok := p.AddressSpace().Translate(a.lenVA); ok {
			a.m.Hier.Flush(pa)
		}
	}
	p.SetReg(isa.R9, idx)
	p.SetReg(isa.RDX, test)
	p.SetReg(isa.R10, a.lenVA)
	p.SetReg(isa.R11, a.arrVA)
	for attempt := 0; attempt < 4; attempt++ {
		if _, err := p.Exec(a.prog, maxProbeCycles); err != nil {
			return 0, fmt.Errorf("core: TET-V1 run: %w", err)
		}
		if t1, t2 := p.Reg(isa.RSI), p.Reg(isa.RDI); t2 >= t1 {
			return t2 - t1, nil
		}
	}
	return 0, fmt.Errorf("core: TET-V1 timer unusable")
}

// LeakByte recovers the byte at arr[idx] for an out-of-bounds idx.
func (a *SpectreV1) LeakByte(idx uint64) (byte, error) {
	// Warm up code and predictor state.
	if err := a.train(); err != nil {
		return 0, err
	}
	for i := 0; i < 16; i++ {
		if _, err := a.run(idx, 256, true); err != nil {
			return 0, err
		}
	}
	votes := make([]int, 256)
	totes := make([]uint64, 256)
	for batch := 0; batch < a.Batches; batch++ {
		for tv := 0; tv < 256; tv++ {
			// Re-train the bounds check before every probe: each OOB probe
			// resolves "taken" and would otherwise saturate the predictor
			// and close the speculation window (standard V1 discipline).
			if err := a.train(); err != nil {
				return 0, err
			}
			t, err := a.run(idx, uint64(tv), true)
			if err != nil {
				return 0, err
			}
			totes[tv] = t
		}
		votes[stats.Argmin(totes)]++
	}
	return byte(stats.ArgmaxInt(votes)), nil
}

// Leak reads n bytes starting at the given out-of-bounds offset from the
// array base.
func (a *SpectreV1) Leak(offset uint64, n int) (LeakResult, error) {
	start := a.m.Pipe.Cycle()
	out := make([]byte, n)
	for i := 0; i < n; i++ {
		b, err := a.LeakByte(offset + uint64(i))
		if err != nil {
			return LeakResult{}, fmt.Errorf("core: TET-V1 byte %d: %w", i, err)
		}
		out[i] = b
	}
	cycles := a.m.Pipe.Cycle() - start
	return LeakResult{Data: out, Cycles: cycles, Bps: a.m.Bps(n, cycles)}, nil
}

// ArrayVA returns the bounded array's base address (the secret sits beyond
// ArrayLen bytes from here).
func (a *SpectreV1) ArrayVA() uint64 { return a.arrVA }

// ArrayLen returns the architectural array length.
func (a *SpectreV1) ArrayLen() uint64 { return a.arrLen }
