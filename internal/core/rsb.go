package core

import (
	"fmt"

	"whisper/internal/cpu"
	"whisper/internal/isa"
	"whisper/internal/kernel"
	"whisper/internal/stats"
)

// rsbCodeBase keeps the RSB gadget's code away from the probe gadget so the
// two do not alias in the DSB/PHT.
const rsbCodeBase = kernel.UserCodeBase + 0x8000

// RSB is TET-Spectre-V5-RSB (§4.3.3, Listing 1): a call/ret pair whose
// return address is overwritten and flushed, so the ret speculates through
// the stale RSB entry into a gadget that reads an architecturally
// unreachable in-process secret. The secret is decoded from the ToTE: a
// triggering Jcc inside the speculated path squashes the wrong-path work
// early, so the final recovery is cheaper and the whole window *shorter*
// (argmin decode). No fault is involved, hence no suppression is needed and
// the probe rate is far higher than TET-MD's.
type RSB struct {
	m       *cpu.Machine
	prog    *isa.Program
	Batches int
}

// NewTETRSB assembles the Listing 1 gadget.
func NewTETRSB(k *kernel.Kernel) (*RSB, error) {
	if k == nil {
		return nil, errNotBooted
	}
	b := isa.NewBuilder(rsbCodeBase)
	b.MovImm(isa.RSP, kernel.UserStackBase+0x800)
	b.Rdtsc(isa.RSI)
	b.Lfence()
	b.Call("fn")
	// --- speculative return path (Listing 1 lines 5-6) ---
	b.LoadB(isa.RAX, isa.R9, 0) // R9 = secret VA (sandboxed in-process data)
	b.Cmp(isa.RAX, isa.RDX)
	b.Jcc(isa.CondE, "taken")
	b.NopSled(gadgetSled) // fall-through keeps issuing wrong-path work
	b.Jmp("specEnd")
	b.Label("taken")
	b.Lfence() // trigger path stalls issue: cheap final squash
	b.Label("specEnd")
	b.Lfence()
	// --- called function: overwrite + flush the return address (lines 8-11) ---
	b.Label("fn")
	b.MovImm(isa.RAX, 0) // patched below once the landing VA is known
	landingFix := b.Pos() - 1
	b.StoreQ(isa.RSP, 0, isa.RAX)
	b.Clflush(isa.RSP, 0)
	b.Ret() // RSB predicts the line after the call; memory says "landing"
	landingIdx := b.Pos()
	b.Label("landing")
	b.Lfence()
	b.Rdtsc(isa.RDI)
	b.Halt()
	prog, err := b.Assemble()
	if err != nil {
		return nil, fmt.Errorf("core: assemble RSB gadget: %w", err)
	}
	prog.Insts[landingFix].Imm = int64(prog.VA(landingIdx))
	return &RSB{m: k.Machine(), prog: prog, Batches: 1}, nil
}

// probe runs the gadget once with the given test value and secret address,
// returning the ToTE.
func (a *RSB) probe(secretVA uint64, test uint64) (uint64, error) {
	p := a.m.Pipe
	p.SetReg(isa.R9, secretVA)
	p.SetReg(isa.RDX, test)
	for attempt := 0; attempt < 4; attempt++ {
		if _, err := p.Exec(a.prog, maxProbeCycles); err != nil {
			return 0, fmt.Errorf("core: TET-RSB probe: %w", err)
		}
		if t1, t2 := p.Reg(isa.RSI), p.Reg(isa.RDI); t2 >= t1 {
			return t2 - t1, nil
		}
	}
	return 0, fmt.Errorf("core: TET-RSB timer unusable after retries")
}

// LeakByte recovers the in-process secret byte at secretVA via the Listing 1
// running-extreme scan. A short warm-up with a never-matching test value
// (256 cannot equal a byte) stabilises the icache/DSB/predictor state so
// cold-start probes do not pollute the argmin.
func (a *RSB) LeakByte(secretVA uint64) (byte, error) {
	for i := 0; i < 24; i++ {
		if _, err := a.probe(secretVA, 256); err != nil {
			return 0, err
		}
	}
	votes := make([]int, 256)
	totes := make([]uint64, 256)
	for batch := 0; batch < a.Batches; batch++ {
		for tv := 0; tv < 256; tv++ {
			t, err := a.probe(secretVA, uint64(tv))
			if err != nil {
				return 0, err
			}
			totes[tv] = t
		}
		votes[stats.Argmin(totes)]++
	}
	return byte(stats.ArgmaxInt(votes)), nil
}

// Leak recovers n bytes of the in-process secret starting at secretVA.
func (a *RSB) Leak(secretVA uint64, n int) (LeakResult, error) {
	start := a.m.Pipe.Cycle()
	out := make([]byte, n)
	for i := 0; i < n; i++ {
		b, err := a.LeakByte(secretVA + uint64(i))
		if err != nil {
			return LeakResult{}, fmt.Errorf("core: TET-RSB byte %d: %w", i, err)
		}
		out[i] = b
	}
	cycles := a.m.Pipe.Cycle() - start
	return LeakResult{Data: out, Cycles: cycles, Bps: a.m.Bps(n, cycles)}, nil
}
