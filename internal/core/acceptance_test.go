package core

import (
	"testing"

	"whisper/internal/cpu"
	"whisper/internal/kernel"
	"whisper/internal/stats"
)

// Paper-scale acceptance runs (§4.1 uses 1 KiB random payloads). Gated by
// -short because they simulate hundreds of thousands of probes.

func paperPayload(n int) []byte {
	out := make([]byte, n)
	x := uint32(0x1234567)
	for i := range out {
		x ^= x << 13
		x ^= x >> 17
		x ^= x << 5
		out[i] = byte(x)
	}
	return out
}

func TestPaperScaleCovertChannel(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale payload")
	}
	k := bootOn(t, cpu.I7_7700(), kernel.Config{KASLR: true}, 401)
	cc, err := NewTETCovertChannel(k)
	if err != nil {
		t.Fatal(err)
	}
	payload := paperPayload(1024)
	res, err := cc.Transfer(payload)
	if err != nil {
		t.Fatal(err)
	}
	if er := stats.ByteErrorRate(res.Data, payload); er >= 0.05 {
		t.Fatalf("TET-CC 1 KiB error rate %.3f, paper reports <5%%", er)
	}
}

func TestPaperScaleRSB(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale payload")
	}
	k := bootOn(t, cpu.I9_13900K(), kernel.Config{KASLR: true}, 402)
	m := k.Machine()
	payload := paperPayload(512)
	secretVA := uint64(kernel.UserDataBase + 0x2800)
	pa, ok := k.UserAS().Translate(secretVA)
	if !ok {
		t.Fatal("unmapped")
	}
	m.Phys.StoreBytes(pa, payload)
	rsb, err := NewTETRSB(k)
	if err != nil {
		t.Fatal(err)
	}
	res, err := rsb.Leak(secretVA, len(payload))
	if err != nil {
		t.Fatal(err)
	}
	if er := stats.ByteErrorRate(res.Data, payload); er >= 0.01 {
		t.Fatalf("TET-RSB 512 B error rate %.4f, paper reports <0.1%%", er)
	}
}

func TestPaperScaleMeltdown(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale payload")
	}
	k := bootOn(t, cpu.I7_7700(), kernel.Config{KASLR: true}, 403)
	payload := paperPayload(128)
	k.WriteSecret(payload)
	md, err := NewTETMeltdown(k)
	if err != nil {
		t.Fatal(err)
	}
	res, err := md.Leak(k.SecretVA(), len(payload))
	if err != nil {
		t.Fatal(err)
	}
	if er := stats.ByteErrorRate(res.Data, payload); er >= 0.03 {
		t.Fatalf("TET-MD 128 B error rate %.3f, paper reports <3%%", er)
	}
}

func TestKASLRAcrossSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed sweep")
	}
	for seed := int64(500); seed < 508; seed++ {
		k := bootOn(t, cpu.I9_10980XE(), kernel.Config{KASLR: true, KPTI: true}, seed)
		a, err := NewTETKASLR(k)
		if err != nil {
			t.Fatal(err)
		}
		a.Reps = 4
		res, err := a.Locate()
		if err != nil {
			t.Fatal(err)
		}
		if res.Slot != k.BaseSlot() {
			t.Errorf("seed %d: slot %d, want %d", seed, res.Slot, k.BaseSlot())
		}
	}
}
