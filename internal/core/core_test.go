package core

import (
	"testing"

	"whisper/internal/cpu"
	"whisper/internal/kernel"
	"whisper/internal/stats"
)

func bootOn(t *testing.T, model cpu.Model, cfg kernel.Config, seed int64) *kernel.Kernel {
	t.Helper()
	m := cpu.MustMachine(model, seed)
	k, err := kernel.Boot(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return k
}

func TestTETMeltdownLeaksSecret(t *testing.T) {
	k := bootOn(t, cpu.I7_7700(), kernel.Config{KASLR: true}, 101)
	secret := []byte("WHISPER")
	k.WriteSecret(secret)
	md, err := NewTETMeltdown(k)
	if err != nil {
		t.Fatal(err)
	}
	md.Batches = 3
	res, err := md.Leak(k.SecretVA(), len(secret))
	if err != nil {
		t.Fatal(err)
	}
	if er := stats.ByteErrorRate(res.Data, secret); er > 0.15 {
		t.Fatalf("TET-MD error rate %.2f: got %q want %q", er, res.Data, secret)
	}
	if res.Bps <= 0 {
		t.Fatal("no throughput reported")
	}
}

func TestTETMeltdownFailsOnPatchedCPU(t *testing.T) {
	k := bootOn(t, cpu.I9_10980XE(), kernel.Config{KASLR: true}, 102)
	secret := []byte("WXYZ")
	k.WriteSecret(secret)
	md, err := NewTETMeltdown(k)
	if err != nil {
		t.Fatal(err)
	}
	md.Batches = 2
	res, err := md.Leak(k.SecretVA(), len(secret))
	if err != nil {
		t.Fatal(err)
	}
	if er := stats.ByteErrorRate(res.Data, secret); er < 0.5 {
		t.Fatalf("TET-MD should fail on patched CPU, error rate %.2f (%q)", er, res.Data)
	}
}

func TestTETZombieloadLeaksVictimStream(t *testing.T) {
	k := bootOn(t, cpu.I7_7700(), kernel.Config{KASLR: true}, 103)
	secret := []byte("ZOMBIE")
	k.WriteSecret(secret)
	z, err := NewTETZombieload(k)
	if err != nil {
		t.Fatal(err)
	}
	z.Batches = 3
	res, err := z.Leak(len(secret))
	if err != nil {
		t.Fatal(err)
	}
	if er := stats.ByteErrorRate(res.Data, secret); er > 0.2 {
		t.Fatalf("TET-ZBL error rate %.2f: got %q want %q", er, res.Data, secret)
	}
}

func TestTETZombieloadFailsOnAMD(t *testing.T) {
	k := bootOn(t, cpu.Ryzen5600G(), kernel.Config{KASLR: true}, 104)
	secret := []byte("ZOMB")
	k.WriteSecret(secret)
	z, err := NewTETZombieload(k)
	if err != nil {
		t.Fatal(err)
	}
	z.Batches = 2
	res, err := z.Leak(len(secret))
	if err != nil {
		t.Fatal(err)
	}
	if er := stats.ByteErrorRate(res.Data, secret); er < 0.5 {
		t.Fatalf("TET-ZBL should fail on Zen 3, error rate %.2f (%q)", er, res.Data)
	}
}

func TestTETCovertChannelAllModels(t *testing.T) {
	payload := []byte{0x00, 0xff, 0x5a, 0xa5, 'W', 'h', 'i', 's'}
	for _, model := range cpu.AllModels() {
		model := model
		t.Run(model.Microarch, func(t *testing.T) {
			k := bootOn(t, model, kernel.Config{KASLR: true}, 105)
			cc, err := NewTETCovertChannel(k)
			if err != nil {
				t.Fatal(err)
			}
			res, err := cc.Transfer(payload)
			if err != nil {
				t.Fatal(err)
			}
			if er := stats.ByteErrorRate(res.Data, payload); er > 0.05 {
				t.Fatalf("TET-CC error rate %.2f on %s (got %x)", er, model.Name, res.Data)
			}
		})
	}
}

func TestTETRSBLeaksInProcessSecret(t *testing.T) {
	k := bootOn(t, cpu.I9_13900K(), kernel.Config{KASLR: true}, 106)
	m := k.Machine()
	secret := []byte("RSB!")
	secretVA := uint64(kernel.UserDataBase + 0x100)
	pa, ok := k.UserAS().Translate(secretVA)
	if !ok {
		t.Fatal("secret VA unmapped")
	}
	m.Phys.StoreBytes(pa, secret)
	rsb, err := NewTETRSB(k)
	if err != nil {
		t.Fatal(err)
	}
	rsb.Batches = 2
	res, err := rsb.Leak(secretVA, len(secret))
	if err != nil {
		t.Fatal(err)
	}
	if er := stats.ByteErrorRate(res.Data, secret); er > 0.25 {
		t.Fatalf("TET-RSB error rate %.2f: got %q want %q", er, res.Data, secret)
	}
}

func TestTETRSBOnKabyLake(t *testing.T) {
	k := bootOn(t, cpu.I7_7700(), kernel.Config{KASLR: true}, 107)
	m := k.Machine()
	secret := []byte{0x42}
	secretVA := uint64(kernel.UserDataBase + 0x200)
	pa, _ := k.UserAS().Translate(secretVA)
	m.Phys.StoreBytes(pa, secret)
	rsb, err := NewTETRSB(k)
	if err != nil {
		t.Fatal(err)
	}
	got, err := rsb.LeakByte(secretVA)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0x42 {
		t.Fatalf("TET-RSB byte = %#x, want 0x42", got)
	}
}

func TestTETKASLRPlain(t *testing.T) {
	k := bootOn(t, cpu.I9_10980XE(), kernel.Config{KASLR: true}, 108)
	a, err := NewTETKASLR(k)
	if err != nil {
		t.Fatal(err)
	}
	a.Reps = 3
	res, err := a.Locate()
	if err != nil {
		t.Fatal(err)
	}
	if res.Slot != k.BaseSlot() {
		t.Fatalf("KASLR slot = %d, want %d", res.Slot, k.BaseSlot())
	}
	if res.Base != k.KASLRBase() {
		t.Fatalf("KASLR base = %#x, want %#x", res.Base, k.KASLRBase())
	}
	if res.Seconds <= 0 {
		t.Fatal("no time accounted")
	}
}

func TestTETKASLRUnderKPTI(t *testing.T) {
	k := bootOn(t, cpu.I9_10980XE(), kernel.Config{KASLR: true, KPTI: true}, 109)
	a, err := NewTETKASLR(k)
	if err != nil {
		t.Fatal(err)
	}
	a.Reps = 3
	res, err := a.Locate()
	if err != nil {
		t.Fatal(err)
	}
	if res.Slot != k.BaseSlot() {
		t.Fatalf("KASLR+KPTI slot = %d, want %d", res.Slot, k.BaseSlot())
	}
}

func TestTETKASLRUnderKPTIAndFLARE(t *testing.T) {
	k := bootOn(t, cpu.I9_10980XE(), kernel.Config{KASLR: true, KPTI: true, FLARE: true}, 110)
	a, err := NewTETKASLR(k)
	if err != nil {
		t.Fatal(err)
	}
	a.Reps = 3
	res, err := a.Locate()
	if err != nil {
		t.Fatal(err)
	}
	if res.Slot != k.BaseSlot() {
		t.Fatalf("KASLR+KPTI+FLARE slot = %d, want %d", res.Slot, k.BaseSlot())
	}
}

func TestTETKASLRInDocker(t *testing.T) {
	k := bootOn(t, cpu.I9_10980XE(), kernel.Config{KASLR: true, KPTI: true, Docker: true}, 111)
	a, err := NewTETKASLR(k)
	if err != nil {
		t.Fatal(err)
	}
	a.Reps = 3
	res, err := a.Locate()
	if err != nil {
		t.Fatal(err)
	}
	if res.Slot != k.BaseSlot() {
		t.Fatalf("KASLR in Docker slot = %d, want %d", res.Slot, k.BaseSlot())
	}
}

func TestTETKASLRFailsOnAMD(t *testing.T) {
	k := bootOn(t, cpu.Ryzen5600G(), kernel.Config{KASLR: true}, 112)
	a, err := NewTETKASLR(k)
	if err != nil {
		t.Fatal(err)
	}
	a.Reps = 3
	res, err := a.Locate()
	if err != nil {
		t.Fatal(err)
	}
	if res.Slot == k.BaseSlot() {
		t.Fatalf("TET-KASLR should not locate the base on Zen 3 (no TLB fill on fault), but found slot %d", res.Slot)
	}
}

func TestFGKASLRMitigatesExploitation(t *testing.T) {
	// The attack still finds the base, but function addresses no longer
	// follow from it (§6.2).
	k := bootOn(t, cpu.I9_10980XE(), kernel.Config{KASLR: true, FGKASLR: true}, 113)
	a, err := NewTETKASLR(k)
	if err != nil {
		t.Fatal(err)
	}
	a.Reps = 3
	res, err := a.Locate()
	if err != nil {
		t.Fatal(err)
	}
	if res.Slot != k.BaseSlot() {
		t.Fatalf("base should still be found under FGKASLR; got %d want %d", res.Slot, k.BaseSlot())
	}
	// Code-reuse step: derive commit_creds from the base using the known
	// image offset. Under FGKASLR this must point at the wrong place.
	derived := res.Base + kernel.KernelFunctions["commit_creds"]
	actual, err := k.FunctionVA("commit_creds")
	if err != nil {
		t.Fatal(err)
	}
	if derived == actual {
		t.Fatal("FGKASLR did not move commit_creds; mitigation ineffective")
	}
}

func TestProberRejectsBadInput(t *testing.T) {
	k := bootOn(t, cpu.I7_7700(), kernel.Config{}, 114)
	pr, err := NewProber(k.Machine(), SuppressTSX, true)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pr.SweepByte(UnmappedVA, 0, SignLonger, nil); err == nil {
		t.Fatal("zero batches accepted")
	}
	if _, err := NewTETMeltdown(nil); err == nil {
		t.Fatal("nil kernel accepted")
	}
	if _, err := NewTETKASLR(nil); err == nil {
		t.Fatal("nil kernel accepted")
	}
	if _, err := NewTETRSB(nil); err == nil {
		t.Fatal("nil kernel accepted")
	}
	if _, err := NewTETZombieload(nil); err == nil {
		t.Fatal("nil kernel accepted")
	}
	if _, err := NewTETCovertChannel(nil); err == nil {
		t.Fatal("nil kernel accepted")
	}
}

func TestProberFallsBackToSignalWithoutTSX(t *testing.T) {
	k := bootOn(t, cpu.I9_13900K(), kernel.Config{}, 115) // no TSX
	pr, err := NewProber(k.Machine(), SuppressTSX, true)
	if err != nil {
		t.Fatal(err)
	}
	if pr.suppress != SuppressSignal {
		t.Fatal("prober did not fall back to signal suppression")
	}
	if _, err := pr.Probe(UnmappedVA, 0, 0); err != nil {
		t.Fatalf("signal-suppressed probe failed: %v", err)
	}
}

func TestTETSpectreV1LeaksOutOfBounds(t *testing.T) {
	k := bootOn(t, cpu.I9_13900K(), kernel.Config{KASLR: true}, 120)
	v1, err := NewTETSpectreV1(k)
	if err != nil {
		t.Fatal(err)
	}
	// Plant a secret just past the bounded array.
	secret := []byte("V1!")
	pa, ok := k.UserAS().Translate(v1.ArrayVA() + v1.ArrayLen())
	if !ok {
		t.Fatal("secret region unmapped")
	}
	k.Machine().Phys.StoreBytes(pa, secret)
	res, err := v1.Leak(v1.ArrayLen(), len(secret))
	if err != nil {
		t.Fatal(err)
	}
	if er := stats.ByteErrorRate(res.Data, secret); er > 0.34 {
		t.Fatalf("TET-V1 error rate %.2f: got %q want %q", er, res.Data, secret)
	}
}

func TestTETSpectreV1RejectsNil(t *testing.T) {
	if _, err := NewTETSpectreV1(nil); err == nil {
		t.Fatal("nil kernel accepted")
	}
}
