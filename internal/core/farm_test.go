package core

import (
	"bytes"
	"testing"

	"whisper/internal/cpu"
	"whisper/internal/kernel"
)

// TestFarmRecoversSecret leaks a secret through per-byte replicas and checks
// the bytes come back in position order.
func TestFarmRecoversSecret(t *testing.T) {
	secret := []byte("farm-leak")
	f := &Farm{
		Model:    cpu.I7_7700(),
		Config:   kernel.Config{KASLR: true},
		RootSeed: 7,
		Parallel: 4,
		Batches:  3,
	}
	res, err := f.LeakSecret(secret)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(res.Data, secret) {
		t.Fatalf("leaked %q, want %q", res.Data, secret)
	}
	if res.Cycles == 0 || res.Bps <= 0 {
		t.Fatalf("degenerate cost: cycles=%d bps=%f", res.Cycles, res.Bps)
	}
}

// TestFarmParallelInvariant pins the determinism contract: the full result —
// data, critical-path cycles, throughput — is identical at every worker
// count, because each replica's machine is seeded by byte position alone.
func TestFarmParallelInvariant(t *testing.T) {
	secret := []byte("invariant")
	run := func(parallel int) LeakResult {
		f := &Farm{
			Model:    cpu.I7_7700(),
			Config:   kernel.Config{KASLR: true},
			RootSeed: 7,
			Parallel: parallel,
			Batches:  3,
		}
		res, err := f.LeakSecret(secret)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	serial := run(1)
	for _, p := range []int{2, 8} {
		par := run(p)
		if !bytes.Equal(par.Data, serial.Data) {
			t.Errorf("parallel=%d data %q, serial %q", p, par.Data, serial.Data)
		}
		if par.Cycles != serial.Cycles || par.Bps != serial.Bps {
			t.Errorf("parallel=%d cost (%d, %f), serial (%d, %f)",
				p, par.Cycles, par.Bps, serial.Cycles, serial.Bps)
		}
	}
}
