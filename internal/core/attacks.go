package core

import (
	"errors"
	"fmt"

	"whisper/internal/cpu"
	"whisper/internal/kernel"
	"whisper/internal/obs"
)

// UnmappedVA is a canonical user address no kernel maps; faulting loads from
// it open a transient window on every CPU model (not-present fault), which
// the covert channel and Zombieload probes rely on.
const UnmappedVA = 0x1300000000

// LeakResult reports a finished leak.
type LeakResult struct {
	Data   []byte
	Cycles uint64  // simulated cycles consumed
	Bps    float64 // throughput at the model's clock
}

// Meltdown is TET-Meltdown (§4.3.1): a Meltdown read whose covert channel is
// the transient execution time itself.
type Meltdown struct {
	k       *kernel.Kernel
	pr      *Prober
	Batches int // vote batches per byte
	// MedianDecode replaces the paper's per-batch argmax vote with an
	// argmax-of-per-value-medians decode, which tolerates several times
	// more timer jitter (NoiseSweep experiment).
	MedianDecode bool
}

// NewTETMeltdown builds the attack on a booted kernel. It does not check
// whether the CPU is actually vulnerable — running it on a patched model is
// exactly the Table 2 ✗ experiment.
func NewTETMeltdown(k *kernel.Kernel) (*Meltdown, error) {
	if k == nil {
		return nil, errNotBooted
	}
	pr, err := NewProber(k.Machine(), SuppressSignal, true)
	if err != nil {
		return nil, err
	}
	return &Meltdown{k: k, pr: pr, Batches: 5}, nil
}

// LeakByte recovers the byte at kernel virtual address va.
func (a *Meltdown) LeakByte(va uint64) (byte, error) {
	if a.MedianDecode {
		return a.pr.SweepByteMedian(va, a.Batches, SignLonger, nil)
	}
	return a.pr.SweepByte(va, a.Batches, SignLonger, nil)
}

// Leak recovers n bytes starting at va.
func (a *Meltdown) Leak(va uint64, n int) (LeakResult, error) {
	m := a.k.Machine()
	sp := leakSpan(m, "TET-Meltdown", n)
	start := m.Pipe.Cycle()
	out := make([]byte, n)
	for i := 0; i < n; i++ {
		bsp := byteSpan(m, i)
		b, err := a.LeakByte(va + uint64(i))
		if err != nil {
			sp.End(m.Pipe.Cycle())
			return LeakResult{}, fmt.Errorf("core: TET-MD byte %d: %w", i, err)
		}
		out[i] = b
		bsp.AttrU64("value", uint64(b))
		bsp.End(m.Pipe.Cycle())
	}
	cycles := m.Pipe.Cycle() - start
	sp.End(m.Pipe.Cycle())
	return LeakResult{Data: out, Cycles: cycles, Bps: m.Bps(n, cycles)}, nil
}

// Zombieload is TET-ZBL (§4.3.2): sampling stale line-fill-buffer data
// through an assisted faulting load, decoded through the TET channel. The
// trigger path *shortens* the window (the assist is cut short), so the
// decode takes the argmin.
type Zombieload struct {
	k       *kernel.Kernel
	pr      *Prober
	Batches int
}

// NewTETZombieload builds the attack.
func NewTETZombieload(k *kernel.Kernel) (*Zombieload, error) {
	if k == nil {
		return nil, errNotBooted
	}
	pr, err := NewProber(k.Machine(), SuppressSignal, true)
	if err != nil {
		return nil, err
	}
	return &Zombieload{k: k, pr: pr, Batches: 5}, nil
}

// SampleByte leaks whatever byte the victim currently moves through the
// LFB; victim is invoked before every probe to model the concurrently
// running victim loop.
func (a *Zombieload) SampleByte(victim func()) (byte, error) {
	return a.pr.SweepByte(UnmappedVA, a.Batches, SignShorter, victim)
}

// Leak samples the victim's secret stream: the victim loops over its secret
// (one VictimTouch per byte) while the attacker samples each position.
func (a *Zombieload) Leak(n int) (LeakResult, error) {
	m := a.k.Machine()
	sp := leakSpan(m, "TET-Zombieload", n)
	start := m.Pipe.Cycle()
	out := make([]byte, n)
	for i := 0; i < n; i++ {
		i := i
		bsp := byteSpan(m, i)
		b, err := a.SampleByte(func() { a.k.VictimTouch(i) })
		if err != nil {
			sp.End(m.Pipe.Cycle())
			return LeakResult{}, fmt.Errorf("core: TET-ZBL byte %d: %w", i, err)
		}
		out[i] = b
		bsp.AttrU64("value", uint64(b))
		bsp.End(m.Pipe.Cycle())
	}
	cycles := m.Pipe.Cycle() - start
	sp.End(m.Pipe.Cycle())
	return LeakResult{Data: out, Cycles: cycles, Bps: m.Bps(n, cycles)}, nil
}

// CovertChannel is TET-CC: sender and receiver share the probe gadget; the
// sender encodes a bit in whether the transient Jcc triggers, the receiver
// reads it from the ToTE. Works on every model in Table 2 because it needs
// no data forwarding at all.
type CovertChannel struct {
	m       *cpu.Machine
	pr      *Prober
	RepsBit int // probes per bit (majority vote)
	CalReps int // calibration probes per symbol
	thresh  uint64
	oneLong bool
	trained bool
}

// NewTETCovertChannel builds the channel on a machine.
func NewTETCovertChannel(k *kernel.Kernel) (*CovertChannel, error) {
	if k == nil {
		return nil, errNotBooted
	}
	pr, err := NewProber(k.Machine(), SuppressSignal, false)
	if err != nil {
		return nil, err
	}
	return &CovertChannel{m: k.Machine(), pr: pr, RepsBit: 3, CalReps: 16}, nil
}

// Train runs the calibration preamble.
func (c *CovertChannel) Train() error {
	th, oneLong, err := c.pr.Calibrate(UnmappedVA, c.CalReps)
	if err != nil {
		return err
	}
	c.thresh, c.oneLong, c.trained = th, oneLong, true
	return nil
}

// sendBit transmits one bit and returns the receiver's decision.
func (c *CovertChannel) sendBit(bit bool) (bool, error) {
	votes := 0
	for r := 0; r < c.RepsBit; r++ {
		tote, err := c.pr.ProbeStable(UnmappedVA, bit)
		if err != nil {
			return false, err
		}
		long := tote > c.thresh
		if long == c.oneLong {
			votes++
		}
	}
	return votes*2 > c.RepsBit, nil
}

// Transfer sends data through the channel and returns what the receiver
// decoded, with throughput accounting.
func (c *CovertChannel) Transfer(data []byte) (LeakResult, error) {
	if !c.trained {
		if err := c.Train(); err != nil {
			return LeakResult{}, err
		}
	}
	sp := leakSpan(c.m, "TET-CC", len(data))
	start := c.m.Pipe.Cycle()
	out := make([]byte, len(data))
	for i, by := range data {
		bsp := byteSpan(c.m, i)
		var got byte
		for bit := 7; bit >= 0; bit-- {
			rx, err := c.sendBit(by>>uint(bit)&1 == 1)
			if err != nil {
				sp.End(c.m.Pipe.Cycle())
				return LeakResult{}, fmt.Errorf("core: TET-CC byte %d: %w", i, err)
			}
			if rx {
				got |= 1 << uint(bit)
			}
		}
		out[i] = got
		bsp.AttrU64("value", uint64(got))
		bsp.AttrBool("correct", got == by)
		bsp.End(c.m.Pipe.Cycle())
	}
	cycles := c.m.Pipe.Cycle() - start
	sp.End(c.m.Pipe.Cycle())
	return LeakResult{Data: out, Cycles: cycles, Bps: c.m.Bps(len(data), cycles)}, nil
}

// leakSpan opens the attack-level span: attack kind, CPU model, payload size.
// Nil-safe; ending the span force-closes any stray descendants.
func leakSpan(m *cpu.Machine, attack string, n int) *obs.Span {
	sp := m.Obs.StartSpan("core.leak", m.Pipe.Cycle())
	sp.Attr("attack", attack)
	sp.Attr("cpu", m.Model.Name)
	sp.AttrInt("bytes", n)
	return sp
}

// byteSpan opens the per-byte span under a leakSpan, carrying the batch
// index; callers attach the leaked-byte verdict before End.
func byteSpan(m *cpu.Machine, i int) *obs.Span {
	sp := m.Obs.StartSpan("core.leak.byte", m.Pipe.Cycle())
	sp.AttrInt("index", i)
	return sp
}

// errNotBooted guards attack constructors.
var errNotBooted = errors.New("core: nil kernel")
