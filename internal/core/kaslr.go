package core

import (
	"fmt"

	"whisper/internal/isa"
	"whisper/internal/kernel"
	"whisper/internal/stats"
)

// kaslrCodeBase isolates the KASLR gadget's code from the other gadgets.
const kaslrCodeBase = kernel.UserCodeBase + 0x10000

// KASLR is TET-KASLR (§4.5, Listing 2): mapping detection through the ToTE
// of an illegal kernel access. On the Intel models, a permission-faulting
// access to a *mapped* address fills the DTLB, so repeated probes translate
// instantly, while unmapped addresses page-walk on every probe — a ToTE
// difference the in-window Jcc amplifies. On the AMD model the TLB never
// fills on a faulting access and the attack collapses (Table 2 ✗).
type KASLR struct {
	k    *kernel.Kernel
	prog *isa.Program
	// Reps is the number of eviction+probe rounds per candidate slot.
	Reps int
}

// KASLRResult reports one KASLR break attempt.
type KASLRResult struct {
	Slot    int     // recovered slot index
	Base    uint64  // recovered kernel base address
	Cycles  uint64  // simulated cycles the scan consumed
	Seconds float64 // at the model's clock
}

// NewTETKASLR assembles the Listing 2 probe gadget.
func NewTETKASLR(k *kernel.Kernel) (*KASLR, error) {
	if k == nil {
		return nil, errNotBooted
	}
	m := k.Machine()
	suppressTSX := m.Model.HasTSX
	b := isa.NewBuilder(kaslrCodeBase)
	b.Rdtsc(isa.RSI)
	b.Mfence()
	if suppressTSX {
		b.Xbegin("abort")
	}
	// ---- Listing 2: illegal access + attacker-condition Jcc ----
	b.LoadQ(isa.RAX, isa.RBX, 0) // illegal kernel access opens the window
	b.Cmp(isa.R8, isa.RDX)       // attacker-controlled condition (test_num vs secret)
	b.Jcc(isa.CondE, "taken")
	b.Lfence()
	b.Jmp("end")
	b.Label("taken")
	b.NopSled(gadgetSled)
	b.Label("end")
	if suppressTSX {
		b.Xend()
	}
	b.Halt()
	b.Label("abort")
	b.Mfence()
	b.Rdtsc(isa.RDI)
	b.Halt()
	prog, err := b.Assemble()
	if err != nil {
		return nil, fmt.Errorf("core: assemble KASLR gadget: %w", err)
	}
	a := &KASLR{k: k, prog: prog, Reps: 16}
	return a, nil
}

// probe measures one ToTE of an illegal access to target. The Jcc condition
// is held not-taken: the mapping signal is the window length itself (TLB hit
// vs page walk, amplified by the per-uop flush cost of everything the longer
// window lets the frontend issue). On MDS-vulnerable parts a *triggered* Jcc
// would cut the unmapped probe's abortable assist short and corrupt the
// signal, so the sweep never triggers it.
func (a *KASLR) probe(target uint64, rep int) (uint64, error) {
	m := a.k.Machine()
	p := m.Pipe
	if !m.Model.HasTSX {
		p.SetSignalHandler(a.prog.Len() - 3)
		defer p.SetSignalHandler(-1)
	}
	_ = rep
	p.SetReg(isa.RBX, target)
	p.SetReg(isa.R8, 1)
	p.SetReg(isa.RDX, 0)
	for attempt := 0; attempt < 4; attempt++ {
		if _, err := p.Exec(a.prog, maxProbeCycles); err != nil {
			return 0, fmt.Errorf("core: TET-KASLR probe: %w", err)
		}
		if t1, t2 := p.Reg(isa.RSI), p.Reg(isa.RDI); t2 >= t1 {
			return t2 - t1, nil
		}
	}
	return 0, fmt.Errorf("core: TET-KASLR timer unusable after retries")
}

// slotTime returns the median probe time of candidate slot s under the
// standard procedure: evict the TLB, let the first probe (re)establish
// whatever the hardware caches for this address, then measure.
func (a *KASLR) slotTime(s int) (uint64, error) {
	target := a.k.ProbeTarget(s)
	times := make([]uint64, 0, a.Reps)
	for rep := 0; rep < a.Reps; rep++ {
		a.k.EvictTLB()
		if _, err := a.probe(target, rep); err != nil { // warm: fills TLB iff mapped
			return 0, err
		}
		t, err := a.probe(target, rep+1)
		if err != nil {
			return 0, err
		}
		times = append(times, t)
	}
	return stats.MedianU64(times), nil
}

// slotTimeFLARE measures slot s under FLARE: every probe target is mapped,
// so mapping detection per se is defeated. The bypass primitive: prime the
// TLB with a probe, force a syscall round-trip (KPTI CR3 writes flush
// non-global entries — FLARE dummies — while the global trampoline/image
// entries survive), then measure. Without KPTI the same asymmetry is reached
// by cycling only the 4 KiB DTLB partition, which spares the kernel image's
// 2 MiB entries.
func (a *KASLR) slotTimeFLARE(s int) (uint64, error) {
	target := a.k.ProbeTarget(s)
	times := make([]uint64, 0, a.Reps)
	for rep := 0; rep < a.Reps; rep++ {
		if _, err := a.probe(target, rep); err != nil { // prime the TLB entry
			return 0, err
		}
		if a.k.Config().KPTI {
			a.k.SyscallRoundTrip()
		} else {
			a.k.EvictDTLB4K()
		}
		a.k.EvictProbePTEs(s) // force any re-walk to DRAM
		t, err := a.probe(target, rep+1)
		if err != nil {
			return 0, err
		}
		times = append(times, t)
	}
	return stats.MedianU64(times), nil
}

// Locate scans all 512 candidate slots and returns the recovered kernel
// base: the first slot whose probe time falls on the mapped side of the
// threshold between the fastest observation and the unmapped majority.
func (a *KASLR) Locate() (KASLRResult, error) {
	m := a.k.Machine()
	cfg := a.k.Config()
	sp := m.Obs.StartSpan("core.kaslr.locate", m.Pipe.Cycle())
	sp.Attr("cpu", m.Model.Name)
	sp.Attr("attack", "TET-KASLR")
	sp.AttrBool("kpti", cfg.KPTI)
	sp.AttrBool("flare", cfg.FLARE)
	start := m.Pipe.Cycle()
	times := make([]uint64, kernel.NumSlots)
	flare := cfg.FLARE
	for s := 0; s < kernel.NumSlots; s++ {
		ssp := m.Obs.StartSpan("core.kaslr.slot", m.Pipe.Cycle())
		ssp.AttrInt("slot", s)
		var t uint64
		var err error
		if flare {
			t, err = a.slotTimeFLARE(s)
		} else {
			t, err = a.slotTime(s)
		}
		if err != nil {
			sp.Attr("error", err.Error())
			sp.End(m.Pipe.Cycle())
			return KASLRResult{}, err
		}
		times[s] = t
		ssp.AttrU64("medianToTE", t)
		ssp.End(m.Pipe.Cycle())
		if m.Obs != nil {
			m.Obs.Histogram("core.kaslr.slotToTE").Observe(t)
			m.Obs.SamplePMU(m.Pipe.Cycle(), m.PMU.Snapshot())
		}
	}
	slot := firstMapped(times)
	cycles := m.Pipe.Cycle() - start
	res := KASLRResult{Slot: slot, Cycles: cycles, Seconds: m.Seconds(cycles)}
	if slot >= 0 {
		res.Base = kernel.SlotVA(slot)
	}
	sp.AttrInt("slot", slot)
	sp.AttrHex("base", res.Base)
	sp.AttrBool("hit", slot == a.k.BaseSlot())
	sp.End(m.Pipe.Cycle())
	m.Obs.Histogram("core.kaslr.scanCycles").Observe(cycles)
	return res, nil
}

// noSignalGap is the minimum separation (cycles) between the fastest slot
// and the unmapped majority for the scan to count as a detection; anything
// tighter is measurement noise (the defended/AMD cases).
const noSignalGap = 15

// firstMapped picks the first slot on the fast (mapped) side of a threshold
// placed between the global minimum and the unmapped majority's median. It
// returns -1 when the distribution carries no mapping signal.
func firstMapped(times []uint64) int {
	min := times[stats.Argmin(times)]
	med := stats.MedianU64(times) // almost all slots are unmapped
	if med-min < noSignalGap {
		return -1
	}
	threshold := (min + med) / 2
	for s, t := range times {
		if t <= threshold {
			return s
		}
	}
	return stats.Argmin(times)
}
