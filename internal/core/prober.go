// Package core implements the paper's contribution: the Whisper transient
// execution timing (TET) side channel and the attacks built on it — the
// TET covert channel, TET-Meltdown, TET-Zombieload, TET-Spectre-V5-RSB, and
// TET-KASLR (plain, KPTI, FLARE, Docker). Gadgets are assembled for the
// simulated core; every timing signal is an emergent property of the
// pipeline model, not scripted.
package core

import (
	"errors"
	"fmt"

	"whisper/internal/cpu"
	"whisper/internal/isa"
	"whisper/internal/kernel"
	"whisper/internal/stats"
)

// Sign is the direction of the TET signal: whether triggering the transient
// Jcc makes the window longer or shorter.
type Sign int

// Signal directions. Meltdown-style permission faults serialise the machine
// clear behind the recovery (longer); Zombieload's abortable assist and
// Spectre-RSB's cheaper final squash end the window early (shorter).
const (
	SignLonger Sign = iota
	SignShorter
)

// Suppression selects how the attacker survives the fault.
type Suppression int

// Suppression mechanisms (the paper's transient_begin, after [4]).
const (
	SuppressTSX Suppression = iota
	SuppressSignal
)

// maxProbeCycles bounds one gadget execution; generous but finite.
const maxProbeCycles = 500_000

// Prober measures the ToTE of one TET gadget (Fig. 1a). The gadget is
// parameterised by registers so the predictor sees a single branch PC across
// the whole sweep, exactly like the C original:
//
//	RBX — transient load target (kernel VA, unmapped VA, ...)
//	RDX — test value
//	RCX — comparison source: RAX (the transiently loaded value) for
//	      MD/ZBL-style probes, or a sender-controlled value for the CC.
type Prober struct {
	m        *cpu.Machine
	prog     *isa.Program
	suppress Suppression
}

// gadgetLayout records instruction indices the harness needs.
const gadgetSled = 24

// NewProber assembles the TET probe gadget. cmpLoaded selects whether the
// Jcc compares the transiently loaded value (side-channel read) or two
// attacker registers (covert-channel send). The suppression mechanism falls
// back to signals when the model has no TSX.
func NewProber(m *cpu.Machine, suppress Suppression, cmpLoaded bool) (*Prober, error) {
	if suppress == SuppressTSX && !m.Model.HasTSX {
		suppress = SuppressSignal
	}
	b := isa.NewBuilder(kernel.UserCodeBase)
	b.Rdtsc(isa.RSI)
	b.Lfence()
	if suppress == SuppressTSX {
		b.Xbegin("abort")
	}
	// ---- transient block (Fig. 1a lines 2-3) ----
	b.LoadB(isa.RAX, isa.RBX, 0) // faulting load opens the window
	if cmpLoaded {
		b.Cmp(isa.RAX, isa.RDX)
	} else {
		b.Cmp(isa.RCX, isa.RDX)
	}
	b.Jcc(isa.CondE, "taken")
	b.Lfence() // fall-through path stops issuing (Fig. 4, path ①)
	b.Jmp("end")
	b.Label("taken")
	b.Nop() // the Fig. 1a gadget's "nop" arm; paths reconverge at the fence
	b.Label("end")
	if suppress == SuppressTSX {
		b.Xend()
	}
	b.Halt() // never retires: the fault always rolls the block back
	b.Label("abort")
	b.Rdtsc(isa.RDI)
	b.Halt()
	prog, err := b.Assemble()
	if err != nil {
		return nil, fmt.Errorf("core: assemble probe gadget: %w", err)
	}
	pr := &Prober{m: m, prog: prog, suppress: suppress}
	return pr, nil
}

// abortIndex is the instruction index of the fault handler (the label
// "abort"): the program's penultimate pair.
func (pr *Prober) abortIndex() int { return pr.prog.Len() - 2 }

// Probe runs the gadget and returns the measured ToTE in cycles. target is
// the transient load address; test and cmp load the RDX/RCX registers. A
// sample whose timer pair is inverted (an interrupt spiked the first read)
// is discarded and re-measured, as a real attacker would.
//
// With observability enabled the probe is wrapped in a span carrying the
// measured ToTE, feeds the core.probe.tote cycle histogram, and samples the
// PMU; the nil-registry default adds a single pointer compare.
func (pr *Prober) Probe(target uint64, test, cmp uint64) (uint64, error) {
	r := pr.m.Obs
	if r == nil {
		return pr.probe(target, test, cmp)
	}
	p := pr.m.Pipe
	sp := r.StartSpan("core.probe", p.Cycle())
	sp.AttrHex("target", target)
	tote, err := pr.probe(target, test, cmp)
	if err != nil {
		sp.Attr("error", err.Error())
		r.Counter("core.probe.errors").Inc()
	} else {
		sp.AttrU64("tote", tote)
		r.Histogram("core.probe.tote").Observe(tote)
	}
	r.Counter("core.probes").Inc()
	sp.End(p.Cycle())
	r.SamplePMU(p.Cycle(), pr.m.PMU.Snapshot())
	return tote, err
}

// probe is the uninstrumented measurement path.
func (pr *Prober) probe(target uint64, test, cmp uint64) (uint64, error) {
	p := pr.m.Pipe
	if pr.suppress == SuppressSignal {
		p.SetSignalHandler(pr.abortIndex())
		defer p.SetSignalHandler(-1)
	}
	p.SetReg(isa.RBX, target)
	p.SetReg(isa.RDX, test)
	p.SetReg(isa.RCX, cmp)
	for attempt := 0; attempt < 4; attempt++ {
		if _, err := p.Exec(pr.prog, maxProbeCycles); err != nil {
			return 0, fmt.Errorf("core: probe: %w", err)
		}
		t1, t2 := p.Reg(isa.RSI), p.Reg(isa.RDI)
		if t2 >= t1 {
			return t2 - t1, nil
		}
	}
	return 0, errors.New("core: probe timer unusable after retries")
}

// SweepByte performs the paper's §4.3.1 decoding: traverse test values
// 0..255 in batches, per batch vote for the extreme-ToTE value, and return
// the argmax of the votes. sign selects max- or min-extreme. prep, when
// non-nil, runs before every probe (victim refresh, eviction, ...).
func (pr *Prober) SweepByte(target uint64, batches int, sign Sign, prep func()) (byte, error) {
	sp := pr.m.Obs.StartSpan("core.sweepByte", pr.m.Pipe.Cycle())
	sp.AttrInt("batches", batches)
	sp.AttrBool("signLonger", sign == SignLonger)
	b, err := pr.sweepByte(target, batches, sign, prep)
	if err == nil {
		sp.AttrU64("decoded", uint64(b))
	}
	sp.End(pr.m.Pipe.Cycle())
	return b, err
}

func (pr *Prober) sweepByte(target uint64, batches int, sign Sign, prep func()) (byte, error) {
	if batches <= 0 {
		return 0, errors.New("core: batches must be positive")
	}
	// Warm the gadget's icache/DSB/predictor state with never-matching
	// probes (256 cannot equal a loaded byte) so cold-start timings do not
	// pollute the first batch's extreme.
	for i := 0; i < 16; i++ {
		if prep != nil {
			prep()
		}
		if _, err := pr.Probe(target, 256, 0); err != nil {
			return 0, err
		}
	}
	votes := make([]int, 256)
	totes := make([]uint64, 256)
	for batch := 0; batch < batches; batch++ {
		bsp := pr.m.Obs.StartSpan("core.sweepByte.batch", pr.m.Pipe.Cycle())
		bsp.AttrInt("batch", batch)
		for tv := 0; tv < 256; tv++ {
			if prep != nil {
				prep()
			}
			tote, err := pr.Probe(target, uint64(tv), 0)
			if err != nil {
				return 0, err
			}
			totes[tv] = tote
		}
		var pick int
		if sign == SignLonger {
			pick = stats.Argmax(totes)
		} else {
			pick = stats.Argmin(totes)
		}
		votes[pick]++
		bsp.AttrInt("vote", pick)
		bsp.End(pr.m.Pipe.Cycle())
	}
	return byte(stats.ArgmaxInt(votes)), nil
}

// SweepByteMedian is SweepByte with a per-value median decoder. The paper's
// per-batch argmax vote needs the signal to exceed the largest of 256 noise
// draws within a single batch, which dies once jitter rivals the few-cycle
// signal; taking the extreme of per-value *medians* suppresses jitter by
// ~1/sqrt(batches) while staying immune to the heavy-tailed interrupt
// spikes that break a plain mean (see the NoiseSweep experiment).
func (pr *Prober) SweepByteMedian(target uint64, batches int, sign Sign, prep func()) (byte, error) {
	sp := pr.m.Obs.StartSpan("core.sweepByteMedian", pr.m.Pipe.Cycle())
	sp.AttrInt("batches", batches)
	sp.AttrBool("signLonger", sign == SignLonger)
	b, err := pr.sweepByteMedian(target, batches, sign, prep)
	if err == nil {
		sp.AttrU64("decoded", uint64(b))
	}
	sp.End(pr.m.Pipe.Cycle())
	return b, err
}

func (pr *Prober) sweepByteMedian(target uint64, batches int, sign Sign, prep func()) (byte, error) {
	if batches <= 0 {
		return 0, errors.New("core: batches must be positive")
	}
	for i := 0; i < 16; i++ {
		if prep != nil {
			prep()
		}
		if _, err := pr.Probe(target, 256, 0); err != nil {
			return 0, err
		}
	}
	samples := make([][]uint64, 256)
	for batch := 0; batch < batches; batch++ {
		bsp := pr.m.Obs.StartSpan("core.sweepByteMedian.batch", pr.m.Pipe.Cycle())
		bsp.AttrInt("batch", batch)
		for tv := 0; tv < 256; tv++ {
			if prep != nil {
				prep()
			}
			tote, err := pr.Probe(target, uint64(tv), 0)
			if err != nil {
				return 0, err
			}
			samples[tv] = append(samples[tv], tote)
		}
		bsp.End(pr.m.Pipe.Cycle())
	}
	medians := make([]uint64, 256)
	for tv := range samples {
		medians[tv] = stats.MedianU64(samples[tv])
	}
	if sign == SignLonger {
		return byte(stats.Argmax(medians)), nil
	}
	return byte(stats.Argmin(medians)), nil
}

// ProbeStable measures one trigger/no-trigger probe after two de-training
// probes that hold the gadget's branch at predicted-not-taken. Without the
// resets, a run of identical symbols would train the PHT and erase the
// misprediction the channel is made of.
func (pr *Prober) ProbeStable(target uint64, trigger bool) (uint64, error) {
	for i := 0; i < 2; i++ {
		if _, err := pr.Probe(target, 1, 0); err != nil {
			return 0, err
		}
	}
	cmp := uint64(0)
	if trigger {
		cmp = 1
	}
	return pr.Probe(target, 1, cmp)
}

// Calibrate measures the ToTE distribution of triggered vs untriggered
// probes (the covert channel's training preamble) and returns a decision
// threshold plus the measured polarity.
func (pr *Prober) Calibrate(target uint64, reps int) (threshold uint64, oneIsLonger bool, err error) {
	sp := pr.m.Obs.StartSpan("core.calibrate", pr.m.Pipe.Cycle())
	sp.AttrInt("reps", reps)
	threshold, oneIsLonger, err = pr.calibrate(target, reps)
	if err == nil {
		sp.AttrU64("threshold", threshold)
		sp.AttrBool("oneIsLonger", oneIsLonger)
	}
	sp.End(pr.m.Pipe.Cycle())
	return threshold, oneIsLonger, err
}

func (pr *Prober) calibrate(target uint64, reps int) (threshold uint64, oneIsLonger bool, err error) {
	ones := make([]uint64, 0, reps)
	zeros := make([]uint64, 0, reps)
	for i := 0; i < reps; i++ {
		t1, err := pr.ProbeStable(target, true)
		if err != nil {
			return 0, false, err
		}
		t0, err := pr.ProbeStable(target, false)
		if err != nil {
			return 0, false, err
		}
		ones = append(ones, t1)
		zeros = append(zeros, t0)
	}
	m1 := stats.MedianU64(ones)
	m0 := stats.MedianU64(zeros)
	if m1 == m0 {
		return 0, false, errors.New("core: calibration found no TET signal")
	}
	return (m1 + m0) / 2, m1 > m0, nil
}
