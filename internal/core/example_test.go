package core_test

import (
	"fmt"
	"log"

	"whisper/internal/core"
	"whisper/internal/cpu"
	"whisper/internal/kernel"
)

// Leak a kernel secret with TET-Meltdown on a vulnerable part: the classic
// three-line usage of the library.
func ExampleMeltdown_Leak() {
	machine := cpu.MustMachine(cpu.I7_7700(), 42)
	k, err := kernel.Boot(machine, kernel.Config{KASLR: true})
	if err != nil {
		log.Fatal(err)
	}
	k.WriteSecret([]byte("hunter2"))

	md, err := core.NewTETMeltdown(k)
	if err != nil {
		log.Fatal(err)
	}
	res, err := md.Leak(k.SecretVA(), 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s\n", res.Data)
	// Output: hunter2
}

// Break KASLR on the Meltdown-resistant Comet Lake model.
func ExampleKASLR_Locate() {
	machine := cpu.MustMachine(cpu.I9_10980XE(), 42)
	k, err := kernel.Boot(machine, kernel.Config{KASLR: true, KPTI: true})
	if err != nil {
		log.Fatal(err)
	}
	attack, err := core.NewTETKASLR(k)
	if err != nil {
		log.Fatal(err)
	}
	attack.Reps = 4
	res, err := attack.Locate()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Base == k.KASLRBase())
	// Output: true
}

// Move a message through the TET covert channel on a patched CPU — the
// channel needs no hardware flaw at all.
func ExampleCovertChannel_Transfer() {
	machine := cpu.MustMachine(cpu.I9_13900K(), 42)
	k, err := kernel.Boot(machine, kernel.Config{KASLR: true, KPTI: true})
	if err != nil {
		log.Fatal(err)
	}
	cc, err := core.NewTETCovertChannel(k)
	if err != nil {
		log.Fatal(err)
	}
	res, err := cc.Transfer([]byte("hi"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s\n", res.Data)
	// Output: hi
}
