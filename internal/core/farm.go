package core

import (
	"context"
	"fmt"

	"whisper/internal/cpu"
	"whisper/internal/kernel"
	"whisper/internal/obs"
	"whisper/internal/sched"
)

// Farm is the parallel form of a multi-byte TET-MD leak: instead of one
// prober walking the secret byte by byte on a single machine, the leak is
// sharded across per-byte machine replicas — attacker processes pinned to
// different cores, each timing its own transient windows. Replica i boots
// from sched.DeriveSeed(RootSeed, "replica/<i>"), a function of the byte
// position alone, so the recovered data is byte-identical at any Parallel
// and identical to running the replicas one after another.
type Farm struct {
	Model    cpu.Model
	Config   kernel.Config
	RootSeed int64
	// Parallel is the sched worker count (<= 0: GOMAXPROCS).
	Parallel int
	// Batches overrides the per-byte vote batches when > 0.
	Batches int
	Ctx     context.Context
	Obs     *obs.Registry
}

// farmCell is one replica's recovered byte and its simulated cost.
type farmCell struct {
	b      byte
	cycles uint64
}

// farmPool recycles replica machines across bytes and across LeakSecret
// calls. A pooled machine is Reset to the replica's derived seed before
// reuse, which is bit-identical to building it fresh.
var farmPool = cpu.NewPool()

// FarmPoolStats reports the replica pool's reuse counters. whisperd
// publishes them on /metrics, making cross-request machine reuse observable.
func FarmPoolStats() cpu.PoolStats { return farmPool.Stats() }

// LeakSecret plants secret on every replica's kernel and recovers one byte
// per replica. The result's Cycles is the slowest replica's cost — the
// critical path when the replicas really do run on distinct cores — and Bps
// is derived from it at the model's clock, so every reported number is a
// pure function of (Model, Config, RootSeed, secret).
func (f *Farm) LeakSecret(secret []byte) (LeakResult, error) {
	jobs := make([]sched.Job[farmCell], len(secret))
	for i := range secret {
		i := i
		jobs[i] = sched.Job[farmCell]{
			Key: fmt.Sprintf("replica/%d", i),
			Run: func(_ context.Context, seed int64) (farmCell, error) {
				m, err := farmPool.Get(f.Model, seed)
				if err != nil {
					return farmCell{}, err
				}
				defer farmPool.Put(m)
				k, err := kernel.Boot(m, f.Config)
				if err != nil {
					return farmCell{}, err
				}
				k.WriteSecret(secret)
				md, err := NewTETMeltdown(k)
				if err != nil {
					return farmCell{}, err
				}
				if f.Batches > 0 {
					md.Batches = f.Batches
				}
				start := m.Pipe.Cycle()
				b, err := md.LeakByte(k.SecretVA() + uint64(i))
				if err != nil {
					return farmCell{}, fmt.Errorf("core: farm replica %d: %w", i, err)
				}
				return farmCell{b: b, cycles: m.Pipe.Cycle() - start}, nil
			},
		}
	}
	ctx := f.Ctx
	if ctx == nil {
		ctx = context.Background()
	}
	cells, err := sched.Map(ctx, sched.Options{
		Name: "farm", Parallel: f.Parallel, RootSeed: f.RootSeed, Obs: f.Obs,
	}, jobs)
	if err != nil {
		return LeakResult{}, err
	}
	res := LeakResult{Data: make([]byte, len(cells))}
	for i, c := range cells {
		res.Data[i] = c.b
		if c.cycles > res.Cycles {
			res.Cycles = c.cycles
		}
	}
	if res.Cycles > 0 {
		res.Bps = float64(len(cells)) / (float64(res.Cycles) / f.Model.ClockHz)
	}
	return res, nil
}
