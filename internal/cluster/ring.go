// Package cluster is the horizontal-scaling tier over the serving path: a
// gateway (cmd/whispergate) that spreads canonical experiment requests
// across a pool of whisperd backends while preserving the cache locality
// the single-node daemon earns.
//
// Three ideas carry the design:
//
//   - Routing is by content, not by connection: every request already has a
//     stable whisper-req-v1 hash, and the consistent-hash ring maps that
//     hash to a backend, so repeat requests land where the LRU/disk cache
//     already holds them. The cluster's aggregate cache behaves like one
//     big cache.
//   - Liveness is active, not inferred: the pool probes every backend's
//     /readyz on a jittered interval, ejects after consecutive failures,
//     reinstates with exponential backoff, and stops routing to a draining
//     backend before it starts refusing work.
//   - Forwarding is allowed to be aggressive because execution is
//     deterministic: /v1/run is idempotent by the serving contract (equal
//     hashes denote equal bytes), so the gateway may retry a failed attempt
//     on the next replica and hedge a slow one — the winner's bytes are the
//     bytes, whoever computed them.
package cluster

import (
	"hash/fnv"
	"sort"
	"strconv"
)

// ringVnodes is the number of virtual points each backend contributes.
// 128 keeps the per-backend share within ~±25% of fair at realistic pool
// sizes (the balance test pins this) while the whole ring for 16 backends
// stays ~2k points — binary-search lookup noise.
const ringVnodes = 128

// Ring is an immutable consistent-hash ring over backend names. Assignment
// is a pure function of (member set, key): no clock, no RNG, no connection
// state — the golden-mapping test pins it, and the fuzz target holds it
// total and panic-free on arbitrary inputs.
type Ring struct {
	members []string // sorted, deduplicated
	points  []ringPoint
}

type ringPoint struct {
	hash    uint64
	backend uint32 // index into members
}

// NewRing builds a ring over backends. Empty names are dropped and
// duplicates collapse, so the ring is well-defined on any input list (the
// fuzz target feeds it adversarial ones).
func NewRing(backends []string) *Ring {
	seen := make(map[string]bool, len(backends))
	members := make([]string, 0, len(backends))
	for _, b := range backends {
		if b == "" || seen[b] {
			continue
		}
		seen[b] = true
		members = append(members, b)
	}
	sort.Strings(members)
	r := &Ring{members: members, points: make([]ringPoint, 0, len(members)*ringVnodes)}
	for i, m := range members {
		for v := 0; v < ringVnodes; v++ {
			r.points = append(r.points, ringPoint{
				hash:    ringHash(m + "#" + strconv.Itoa(v)),
				backend: uint32(i),
			})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Colliding points tie-break by member order so the sort — and
		// therefore every Order walk — is deterministic.
		return r.points[i].backend < r.points[j].backend
	})
	return r
}

// ringHash is FNV-64a with a murmur3-style finalizer. Raw FNV clusters
// inputs that share a prefix and differ late (exactly what sequential
// request hashes and "backend#vnode" labels look like), which skews arc
// sizes badly; the avalanche pass spreads them uniformly around the ring.
func ringHash(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	x := h.Sum64()
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// Members returns the ring's distinct backends, sorted.
func (r *Ring) Members() []string {
	return append([]string(nil), r.members...)
}

// Len is the number of distinct backends on the ring.
func (r *Ring) Len() int { return len(r.members) }

// Order returns every member in preference order for key: the clockwise
// walk from the key's point, keeping first occurrences. Order[0] is the
// key's home backend; Order[1:] is the failover sequence. Skipping a dead
// Order[0] and taking Order[1] is exactly the minimal-remap behaviour —
// keys whose home is alive never move.
func (r *Ring) Order(key string) []string {
	if len(r.members) == 0 {
		return nil
	}
	out := make([]string, 0, len(r.members))
	taken := make([]bool, len(r.members))
	h := ringHash(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	for n := 0; n < len(r.points) && len(out) < len(r.members); n++ {
		p := r.points[(start+n)%len(r.points)]
		if !taken[p.backend] {
			taken[p.backend] = true
			out = append(out, r.members[p.backend])
		}
	}
	return out
}

// Pick returns the key's home backend, or false on an empty ring.
func (r *Ring) Pick(key string) (string, bool) {
	if len(r.members) == 0 {
		return "", false
	}
	if len(r.members) == 1 {
		return r.members[0], true
	}
	h := ringHash(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	return r.members[r.points[i%len(r.points)].backend], true
}
