package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sync"
	"time"

	"whisper/internal/obs"
	"whisper/internal/obs/logging"
	"whisper/internal/server"
)

// Config sizes one Gateway.
type Config struct {
	// Backends is the initial whisperd member list.
	Backends []string
	// ProbeInterval / ProbeTimeout / EjectAfter / LoadFactor / BreakAfter /
	// BreakCooldown configure the backend pool; see PoolConfig.
	ProbeInterval time.Duration
	ProbeTimeout  time.Duration
	EjectAfter    int
	LoadFactor    float64
	BreakAfter    int
	BreakCooldown time.Duration
	// Hedge enables hedged requests: once a forward has been in flight
	// longer than the experiment's observed p95 (floored by HedgeMin), a
	// duplicate is fired at the next replica and the loser is cancelled.
	Hedge bool
	// HedgeMin floors the hedge delay (<= 0: defaultHedgeMin).
	HedgeMin time.Duration
	// ForwardTimeout caps one forwarded attempt (<= 0: none; the caller's
	// context still applies).
	ForwardTimeout time.Duration
	// SweepParallel bounds concurrent cells per /v1/sweep request (<= 0:
	// 2× the configured backend count).
	SweepParallel int
	// HTTP is the forwarding and probing transport; nil uses a dedicated
	// client.
	HTTP *http.Client
	// Obs receives gateway telemetry (what /metrics and /traces serve);
	// nil allocates a fresh registry.
	Obs *obs.Registry
	// Log receives structured gateway logs; nil discards.
	Log *slog.Logger
}

// Gateway fronts a pool of whisperd backends with cache-affinity routing,
// health-checked failover, hedging, and a scatter-gather sweep endpoint.
// It speaks the exact whisperd client protocol on /v1/run, so existing
// clients (whisper -remote, internal/server/client) point at it unchanged.
type Gateway struct {
	cfg  Config
	reg  *obs.Registry
	log  *slog.Logger
	pool *Pool
	lat  *latencies
	http *http.Client

	mu       sync.Mutex
	draining bool
	inflight sync.WaitGroup
}

// New builds a Gateway over cfg.Backends. Call Start to begin health
// probing and Shutdown to drain.
func New(cfg Config) (*Gateway, error) {
	if len(cfg.Backends) == 0 {
		return nil, errors.New("cluster: no backends configured")
	}
	reg := cfg.Obs
	if reg == nil {
		reg = obs.NewRegistry()
	}
	log := cfg.Log
	if log == nil {
		log = logging.Discard()
	}
	if cfg.HedgeMin <= 0 {
		cfg.HedgeMin = defaultHedgeMin
	}
	hc := cfg.HTTP
	if hc == nil {
		hc = &http.Client{}
	}
	pool := NewPool(PoolConfig{
		Backends:      cfg.Backends,
		ProbeInterval: cfg.ProbeInterval,
		ProbeTimeout:  cfg.ProbeTimeout,
		EjectAfter:    cfg.EjectAfter,
		LoadFactor:    cfg.LoadFactor,
		BreakAfter:    cfg.BreakAfter,
		BreakCooldown: cfg.BreakCooldown,
		HTTP:          hc,
		Obs:           reg,
		Log:           log,
	})
	return &Gateway{cfg: cfg, reg: reg, log: log, pool: pool, lat: newLatencies(), http: hc}, nil
}

// Obs returns the gateway's telemetry registry.
func (g *Gateway) Obs() *obs.Registry { return g.reg }

// Pool returns the gateway's backend pool (for reload and introspection).
func (g *Gateway) Pool() *Pool { return g.pool }

// Start launches the pool's health-check loop.
func (g *Gateway) Start() { g.pool.Start() }

// Shutdown drains the gateway: new requests get 503, in-flight forwards
// and sweeps finish (or are abandoned when ctx expires), and probing stops.
func (g *Gateway) Shutdown(ctx context.Context) error {
	g.mu.Lock()
	g.draining = true
	g.mu.Unlock()
	g.reg.Gauge("gate.draining").Set(1)
	g.pool.Stop()
	done := make(chan struct{})
	go func() {
		g.inflight.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Draining reports whether Shutdown has begun.
func (g *Gateway) Draining() bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.draining
}

// begin registers one in-flight request unless the gateway is draining.
func (g *Gateway) begin() bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.draining {
		return false
	}
	g.inflight.Add(1)
	return true
}

// BackendHeader names the backend that served a forwarded response — the
// one gateway-added header; everything else passes through untouched so
// gateway bytes are backend bytes.
const BackendHeader = "X-Whisper-Backend"

// Handler returns the gateway's HTTP API: the whisperd-compatible /v1/run
// and /v1/experiments, the scatter-gather /v1/sweep, and the gateway's own
// health/readiness/telemetry endpoints.
func (g *Gateway) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/run", g.handleRun)
	mux.HandleFunc("/v1/sweep", g.handleSweep)
	mux.HandleFunc("/v1/experiments", g.handleExperiments)
	mux.HandleFunc("/healthz", g.handleHealth)
	mux.HandleFunc("/readyz", g.handleReady)
	mux.HandleFunc("/metrics", g.handleMetrics)
	mux.HandleFunc("/traces", g.handleTraces)
	return g.withRequestScope(mux)
}

// withRequestScope is the gateway's request-ID + access-log middleware.
// The ID is adopted from (or minted into) X-Whisper-Request-Id and rides
// every backend hop, so one client exchange correlates across the gateway
// log, each backend's access log, and both Perfetto traces.
func (g *Gateway) withRequestScope(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := r.Header.Get(server.RequestIDHeader)
		if !obs.ValidRequestID(id) {
			id = obs.NewRequestID()
		}
		w.Header().Set(server.RequestIDHeader, id)
		ctx := logging.WithRequestID(r.Context(), g.log, id)
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		start := time.Now()
		h.ServeHTTP(rec, r.WithContext(ctx))
		if log := logging.From(ctx); log.Enabled(ctx, slog.LevelInfo) {
			log.LogAttrs(ctx, slog.LevelInfo, "gateway request",
				slog.String("method", r.Method),
				slog.String("path", r.URL.Path),
				slog.Int("status", rec.status),
				slog.Int64("bytes", rec.bytes),
				slog.Int64("dur_us", time.Since(start).Microseconds()),
				slog.String("backend", rec.Header().Get(BackendHeader)),
				slog.Int("backends_healthy", g.pool.Healthy()),
			)
		}
	})
}

// statusRecorder captures what the inner handler wrote, for access logs.
type statusRecorder struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (r *statusRecorder) WriteHeader(status int) {
	r.status = status
	r.ResponseWriter.WriteHeader(status)
}

func (r *statusRecorder) Write(b []byte) (int, error) {
	n, err := r.ResponseWriter.Write(b)
	r.bytes += int64(n)
	return n, err
}

// writeError mirrors the backend's JSON error envelope so gateway-minted
// errors are shaped like backend-minted ones.
func writeError(w http.ResponseWriter, r *http.Request, status int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(struct {
		Error     string `json:"error"`
		Status    int    `json:"status"`
		RequestID string `json:"request_id,omitempty"`
	}{msg, status, obs.RequestIDFrom(r.Context())})
}

// handleRun is POST /v1/run: normalize and hash locally (a malformed
// request never costs a backend hop), route by hash for cache affinity,
// forward with retry/hedging, and relay the winning backend's response
// verbatim.
func (g *Gateway) handleRun(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, r, http.StatusMethodNotAllowed, "POST only")
		return
	}
	if !g.begin() {
		writeError(w, r, http.StatusServiceUnavailable, "gateway draining")
		return
	}
	defer g.inflight.Done()
	var req server.Request
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, r, http.StatusBadRequest, "bad request: "+err.Error())
		return
	}
	norm, err := req.Normalize()
	if err != nil {
		writeError(w, r, http.StatusBadRequest, err.Error())
		return
	}
	g.reg.Counter("gate.requests", obs.L("experiment", norm.Experiment)).Inc()
	res := g.forwardRun(r.Context(), norm)
	g.relay(w, r, res)
}

// relay writes a forward outcome to the client.
func (g *Gateway) relay(w http.ResponseWriter, r *http.Request, res fwdResult) {
	if res.err != nil {
		status := http.StatusBadGateway
		if errors.Is(res.err, errNoBackends) {
			status = http.StatusServiceUnavailable
		}
		writeError(w, r, status, res.err.Error())
		return
	}
	for _, k := range []string{"Content-Type", "Retry-After",
		server.HashHeader, server.CacheHeader} {
		if v := res.header.Get(k); v != "" {
			w.Header().Set(k, v)
		}
	}
	w.Header().Set(BackendHeader, res.backend)
	w.WriteHeader(res.status)
	w.Write(res.body)
}

// errNoBackends is the routing dead-end: nothing healthy to forward to.
var errNoBackends = errors.New("cluster: no healthy backends")

// fwdResult is one forwarded exchange's outcome. err is a transport-level
// failure after all candidates were tried; otherwise status/header/body
// relay the backend's response verbatim.
type fwdResult struct {
	status  int
	header  http.Header
	body    []byte
	backend string
	hedged  bool // the winning attempt was a hedge
	retry   bool // internal: this attempt may be retried on the next replica
	err     error
}

// forwardRun resolves one normalized request through the cluster: ring
// candidates by hash, sequential retry-on-next-replica for connection
// errors and 5xx, and an optional hedged duplicate once the primary
// outlives the experiment's p95. POST /v1/run is safe to both retry and
// hedge because it is idempotent by the serving contract: equal canonical
// hashes denote equal bytes. Nothing else is ever retried or hedged.
func (g *Gateway) forwardRun(ctx context.Context, norm server.Request) fwdResult {
	hash := norm.Hash()
	payload, err := json.Marshal(norm)
	if err != nil {
		return fwdResult{err: fmt.Errorf("cluster: encoding request: %w", err)}
	}
	cands := g.pool.pick(hash)
	if len(cands) == 0 {
		g.reg.Counter("gate.errors", obs.L("kind", "no_backends")).Inc()
		return fwdResult{err: errNoBackends}
	}
	sp := g.reg.StartDetachedWallSpan("gate.run." + norm.Experiment)
	sp.Attr("hash", hash)
	if id := obs.RequestIDFrom(ctx); id != "" {
		sp.Attr(obs.RequestIDAttr, id)
	}
	res := g.race(ctx, norm.Experiment, cands, payload)
	sp.Attr("backend", res.backend)
	sp.AttrBool("hedged", res.hedged)
	if res.err != nil {
		sp.Attr("error", res.err.Error())
	} else {
		sp.Attr("cache", res.header.Get(server.CacheHeader))
	}
	sp.End(0)
	return res
}

// race runs the attempt ladder over cands: the primary starts immediately;
// a hedge may start after the p95 delay; each retryable failure starts the
// next candidate. The first final (non-retryable) result wins and every
// other attempt is cancelled through its context.
func (g *Gateway) race(ctx context.Context, exp string, cands []*backend, payload []byte) fwdResult {
	actx, cancelAll := context.WithCancel(ctx)
	defer cancelAll()

	results := make(chan fwdResult, len(cands))
	next := 0
	launched := 0
	launch := func(hedged bool) {
		b := cands[next]
		next++
		launched++
		go func() {
			r := g.attempt(actx, b, payload)
			r.hedged = hedged
			results <- r
		}()
	}
	launch(false)

	var hedgeTimer <-chan time.Time
	if g.cfg.Hedge && next < len(cands) {
		if p95, ok := g.lat.p95(exp); ok {
			delay := p95
			if delay < g.cfg.HedgeMin {
				delay = g.cfg.HedgeMin
			}
			hedgeTimer = time.After(delay)
		}
	}

	var last fwdResult
	for launched > 0 {
		select {
		case res := <-results:
			launched--
			if !res.retry {
				if res.err == nil && res.status == http.StatusOK {
					if res.hedged {
						g.reg.Counter("gate.hedges.won").Inc()
					}
				}
				return res
			}
			g.reg.Counter("gate.retries", obs.L("backend", res.backend)).Inc()
			last = res
			if next < len(cands) && actx.Err() == nil {
				launch(false)
			}
		case <-hedgeTimer:
			hedgeTimer = nil
			if next < len(cands) && actx.Err() == nil {
				g.reg.Counter("gate.hedges.fired").Inc()
				logging.From(ctx).LogAttrs(ctx, slog.LevelDebug, "hedging request",
					slog.String("experiment", exp), slog.String("backend", cands[next].name))
				launch(true)
			}
		case <-ctx.Done():
			return fwdResult{err: ctx.Err()}
		}
	}
	if last.err == nil {
		last.err = fmt.Errorf("cluster: all %d candidate backends failed (last: %s %d)",
			len(cands), last.backend, last.status)
	}
	return last
}

// attempt performs one POST /v1/run against one backend and classifies the
// outcome. Connection errors and 5xx are retryable (the backend is dead,
// draining, or broken — a replica can serve the same bytes); 429 and other
// 4xx are final and relayed verbatim, Retry-After included, so the
// backpressure contract survives the extra hop.
func (g *Gateway) attempt(ctx context.Context, b *backend, payload []byte) fwdResult {
	if !b.br.allow(time.Now()) {
		g.reg.Counter("gate.breaker.rejected", obs.L("backend", b.name)).Inc()
		return fwdResult{backend: b.name, retry: true,
			err: fmt.Errorf("cluster: breaker open for %s", b.name)}
	}
	b.inflight.Add(1)
	g.reg.Gauge("gate.backend.inflight", obs.L("backend", b.name)).Set(float64(b.inflight.Load()))
	defer func() {
		b.inflight.Add(-1)
		g.reg.Gauge("gate.backend.inflight", obs.L("backend", b.name)).Set(float64(b.inflight.Load()))
	}()

	actx := ctx
	if g.cfg.ForwardTimeout > 0 {
		var cancel context.CancelFunc
		actx, cancel = context.WithTimeout(ctx, g.cfg.ForwardTimeout)
		defer cancel()
	}
	hreq, err := http.NewRequestWithContext(actx, http.MethodPost, b.base+"/v1/run", bytes.NewReader(payload))
	if err != nil {
		return fwdResult{backend: b.name, err: err}
	}
	hreq.Header.Set("Content-Type", "application/json")
	if id := obs.RequestIDFrom(ctx); id != "" {
		hreq.Header.Set(server.RequestIDHeader, id)
	}
	start := time.Now()
	resp, err := g.http.Do(hreq)
	if err != nil {
		// Retryable only if the parent request is still alive: a cancelled
		// attempt (hedge loser, client gone) is not a backend failure.
		if ctx.Err() == nil {
			b.br.failure(time.Now())
			g.pool.reportFailure(b)
			return fwdResult{backend: b.name, retry: true, err: err}
		}
		return fwdResult{backend: b.name, err: err}
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		if ctx.Err() == nil {
			b.br.failure(time.Now())
			return fwdResult{backend: b.name, retry: true, err: err}
		}
		return fwdResult{backend: b.name, err: err}
	}
	res := fwdResult{status: resp.StatusCode, header: resp.Header, body: body, backend: b.name}
	switch {
	case resp.StatusCode >= 500:
		b.br.failure(time.Now())
		res.retry = true
	case resp.StatusCode == http.StatusOK:
		b.br.success()
		g.pool.reportSuccess(b)
		g.lat.observe(experimentOf(payload), time.Since(start))
		g.reg.Counter("gate.forwarded", obs.L("backend", b.name)).Inc()
		g.reg.Histogram("gate.forward.us", obs.L("backend", b.name)).
			Observe(uint64(time.Since(start).Microseconds()))
	default:
		// 4xx: the backend is fine, the request is not. Final.
		b.br.success()
	}
	return res
}

// experimentOf recovers the experiment name from a canonical payload for
// latency bucketing; best-effort (an undecodable payload buckets as "").
func experimentOf(payload []byte) string {
	var v struct {
		Experiment string `json:"experiment"`
	}
	json.Unmarshal(payload, &v)
	return v.Experiment
}

// handleExperiments proxies GET /v1/experiments to the first healthy
// backend — every backend serves the same index.
func (g *Gateway) handleExperiments(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, r, http.StatusMethodNotAllowed, "GET only")
		return
	}
	for _, b := range g.pool.pick("experiments-index") {
		ctx := r.Context()
		hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, b.base+"/v1/experiments", nil)
		if err != nil {
			continue
		}
		resp, err := g.http.Do(hreq)
		if err != nil {
			g.pool.reportFailure(b)
			continue
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil || resp.StatusCode != http.StatusOK {
			continue
		}
		w.Header().Set("Content-Type", resp.Header.Get("Content-Type"))
		w.Header().Set(BackendHeader, b.name)
		w.Write(body)
		return
	}
	writeError(w, r, http.StatusServiceUnavailable, errNoBackends.Error())
}

func (g *Gateway) handleHealth(w http.ResponseWriter, r *http.Request) {
	if g.Draining() {
		writeError(w, r, http.StatusServiceUnavailable, "draining")
		return
	}
	if g.pool.Healthy() == 0 {
		writeError(w, r, http.StatusServiceUnavailable, errNoBackends.Error())
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// GateReadiness is the gateway's /readyz document.
type GateReadiness struct {
	Status          string `json:"status"` // "ok" | "draining" | "no_backends"
	Draining        bool   `json:"draining"`
	BackendsHealthy int    `json:"backends_healthy"`
	BackendsTotal   int    `json:"backends_total"`
}

func (g *Gateway) handleReady(w http.ResponseWriter, r *http.Request) {
	ready := GateReadiness{
		Status:          "ok",
		Draining:        g.Draining(),
		BackendsHealthy: g.pool.Healthy(),
		BackendsTotal:   g.pool.Size(),
	}
	status := http.StatusOK
	switch {
	case ready.Draining:
		ready.Status = "draining"
		status = http.StatusServiceUnavailable
	case ready.BackendsHealthy == 0:
		ready.Status = "no_backends"
		status = http.StatusServiceUnavailable
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(ready)
}

func (g *Gateway) handleMetrics(w http.ResponseWriter, r *http.Request) {
	g.pool.publishHealthGauges()
	if err := server.ServeMetricsSnapshot(w, r, g.reg); err != nil {
		writeError(w, r, http.StatusBadRequest, err.Error())
	}
}

func (g *Gateway) handleTraces(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	g.reg.ExportTrace(w, nil)
}
