package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"whisper/internal/server"
)

// stubBackend is a scripted whisperd stand-in for routing-behaviour tests
// (the byte-identity tests use real server.Server backends instead). It
// serves a fixed /v1/run body and can be told to delay, fail with a status,
// or report draining.
type stubBackend struct {
	ts   *httptest.Server
	body []byte

	runs       atomic.Int64 // /v1/run requests seen
	delay      atomic.Int64 // ns to stall /v1/run before answering
	status     atomic.Int32 // non-zero: /v1/run replies this status
	retryAfter atomic.Int32 // seconds, sent with a 429 status
	draining   atomic.Bool  // /readyz reports draining
	cancelled  atomic.Bool  // a stalled /v1/run saw its context cancelled
	lastReqID  atomic.Value // X-Whisper-Request-Id of the last /v1/run
}

func newStubBackend(t *testing.T, body string) *stubBackend {
	t.Helper()
	b := &stubBackend{body: []byte(body)}
	b.ts = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/v1/run":
			b.runs.Add(1)
			b.lastReqID.Store(r.Header.Get(server.RequestIDHeader))
			// Drain the body: the net/http server only detects a client
			// abort (the hedge-loser cancellation this stub observes) once
			// the request body has been consumed.
			io.Copy(io.Discard, r.Body)
			if d := time.Duration(b.delay.Load()); d > 0 {
				select {
				case <-time.After(d):
				case <-r.Context().Done():
					b.cancelled.Store(true)
					return
				}
			}
			if s := int(b.status.Load()); s != 0 {
				if ra := b.retryAfter.Load(); ra > 0 {
					w.Header().Set("Retry-After", fmt.Sprint(ra))
				}
				w.Header().Set("Content-Type", "application/json")
				w.WriteHeader(s)
				json.NewEncoder(w).Encode(map[string]any{"error": "scripted failure", "status": s})
				return
			}
			w.Header().Set("Content-Type", "application/json")
			w.Header().Set(server.CacheHeader, "miss")
			w.Write(b.body)
		case "/readyz":
			ready := server.Readiness{Status: "ok"}
			status := http.StatusOK
			if b.draining.Load() {
				ready.Status, ready.Draining, status = "draining", true, http.StatusServiceUnavailable
			}
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(status)
			json.NewEncoder(w).Encode(ready)
		case "/healthz":
			w.Write([]byte("ok\n"))
		default:
			http.NotFound(w, r)
		}
	}))
	t.Cleanup(b.ts.Close)
	return b
}

func (b *stubBackend) addr() string { return strings.TrimPrefix(b.ts.URL, "http://") }

// newTestGateway builds (but does not Start) a gateway over the addrs with
// test-friendly timings, returning it and its HTTP front.
func newTestGateway(t *testing.T, cfg Config) (*Gateway, *httptest.Server) {
	t.Helper()
	if cfg.ProbeInterval == 0 {
		cfg.ProbeInterval = time.Hour // tests drive ProbeAll by hand
	}
	gw, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(gw.Handler())
	t.Cleanup(ts.Close)
	return gw, ts
}

func postRun(t *testing.T, url string, req server.Request) *http.Response {
	t.Helper()
	payload, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/run", "application/json", bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// sweepCells is a fast, hash-diverse workload: tiny throughput sweeps
// across distinct sizes and seeds, each a few milliseconds of simulation.
func sweepCells(n int) []server.Request {
	cells := make([]server.Request, n)
	for i := range cells {
		cells[i] = server.Request{
			Experiment:      "throughput",
			ThroughputBytes: 1 + i%4,
			Seed:            int64(1 + i/4),
		}
	}
	return cells
}

// directBytes computes the single-node reference: each cell executed
// in-process, envelopes concatenated in cell order.
func directBytes(t *testing.T, cells []server.Request) []byte {
	t.Helper()
	var buf bytes.Buffer
	for _, c := range cells {
		norm, err := c.Normalize()
		if err != nil {
			t.Fatal(err)
		}
		body, err := server.Execute(context.Background(), norm, 1, nil)
		if err != nil {
			t.Fatal(err)
		}
		buf.Write(body)
	}
	return buf.Bytes()
}

// countingHandler wraps a real whisperd handler, counting /v1/run hits and
// optionally failing some of them: all runs past killAfter, or any run whose
// body contains failSubstr (a deterministic, content-keyed kill for tests
// that need to know exactly which cells die).
type countingHandler struct {
	h          http.Handler
	runs       atomic.Int64
	killAfter  atomic.Int64 // > 0: /v1/run replies 500 after this many served
	failSubstr string       // non-empty: /v1/run replies 500 when the body matches
}

func (c *countingHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path == "/v1/run" {
		n := c.runs.Add(1)
		if ka := c.killAfter.Load(); ka > 0 && n > ka {
			http.Error(w, "backend killed mid-sweep", http.StatusInternalServerError)
			return
		}
		if c.failSubstr != "" {
			body, err := io.ReadAll(r.Body)
			if err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			if bytes.Contains(body, []byte(c.failSubstr)) {
				http.Error(w, "scripted cell failure", http.StatusInternalServerError)
				return
			}
			r.Body = io.NopCloser(bytes.NewReader(body))
		}
	}
	c.h.ServeHTTP(w, r)
}

// startWhisperd brings up a real serving daemon for cluster tests.
func startWhisperd(t *testing.T, killAfter int64) (*countingHandler, string) {
	t.Helper()
	// MaxInflight/MaxQueue give enough admission headroom that concurrent
	// sweep cells are never 429ed (NumCPU can be 1 on CI runners).
	srv, err := server.New(server.Config{Parallel: 2, MaxInflight: 4, MaxQueue: 64})
	if err != nil {
		t.Fatal(err)
	}
	ch := &countingHandler{h: srv.Handler()}
	ch.killAfter.Store(killAfter)
	ts := httptest.NewServer(ch)
	t.Cleanup(ts.Close)
	return ch, strings.TrimPrefix(ts.URL, "http://")
}

// TestGatewaySweepByteIdenticalAcrossPoolSizes is the cluster soundness
// pin: the bytes /v1/sweep streams through a 3-backend gateway equal the
// bytes through a 1-backend gateway equal the bytes of in-process
// execution, cell for cell — scaling out changes wall-clock, never output.
func TestGatewaySweepByteIdenticalAcrossPoolSizes(t *testing.T) {
	cells := sweepCells(8)
	want := directBytes(t, cells)

	sweep := func(url string) ([]byte, *http.Response) {
		payload, err := json.Marshal(SweepRequest{Cells: cells})
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(url+"/v1/sweep", "application/json", bytes.NewReader(payload))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return body, resp
	}

	// Three real backends.
	counters := make([]*countingHandler, 3)
	addrs := make([]string, 3)
	for i := range addrs {
		counters[i], addrs[i] = startWhisperd(t, 0)
	}
	_, gw3 := newTestGateway(t, Config{Backends: addrs})
	got3, resp := sweep(gw3.URL)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("3-backend sweep: status %d: %s", resp.StatusCode, got3)
	}
	if ct := resp.Header.Get("Content-Type"); ct != sweepContentType {
		t.Fatalf("sweep Content-Type = %q", ct)
	}
	if n := resp.Header.Get(SweepCellsHeader); n != "8" {
		t.Fatalf("%s = %q, want 8", SweepCellsHeader, n)
	}
	if !bytes.Equal(got3, want) {
		t.Fatalf("3-backend sweep diverged from in-process execution:\n%d vs %d bytes", len(got3), len(want))
	}
	spread := 0
	for _, c := range counters {
		if c.runs.Load() > 0 {
			spread++
		}
	}
	if spread < 2 {
		t.Fatalf("sweep used %d of 3 backends; ring routing is not spreading cells", spread)
	}

	// One real backend.
	_, addr1 := startWhisperd(t, 0)
	_, gw1 := newTestGateway(t, Config{Backends: []string{addr1}})
	got1, resp := sweep(gw1.URL)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("1-backend sweep: status %d", resp.StatusCode)
	}
	if !bytes.Equal(got1, want) {
		t.Fatal("1-backend sweep diverged from in-process execution")
	}
}

// TestGatewayRunByteIdenticalAndCached checks /v1/run through the gateway
// relays backend bytes and headers verbatim — including the cache-path
// header on a repeat hit — and adds exactly the backend attribution header.
func TestGatewayRunByteIdenticalAndCached(t *testing.T) {
	req := server.Request{Experiment: "throughput", ThroughputBytes: 4}
	norm, err := req.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	want, err := server.Execute(context.Background(), norm, 1, nil)
	if err != nil {
		t.Fatal(err)
	}

	_, addr := startWhisperd(t, 0)
	_, gwts := newTestGateway(t, Config{Backends: []string{addr}})

	resp := postRun(t, gwts.URL, req)
	cold, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !bytes.Equal(cold, want) {
		t.Fatalf("cold run: status %d, %d bytes (want %d)", resp.StatusCode, len(cold), len(want))
	}
	if resp.Header.Get(BackendHeader) != addr {
		t.Fatalf("%s = %q, want %q", BackendHeader, resp.Header.Get(BackendHeader), addr)
	}
	if resp.Header.Get(server.HashHeader) != norm.Hash() {
		t.Fatalf("hash header %q not relayed", resp.Header.Get(server.HashHeader))
	}

	resp = postRun(t, gwts.URL, req)
	hot, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !bytes.Equal(hot, want) {
		t.Fatal("cached run bytes differ")
	}
	if resp.Header.Get(server.CacheHeader) != "hit" {
		t.Fatalf("repeat run cache header %q, want hit (affinity lost?)", resp.Header.Get(server.CacheHeader))
	}
}

// TestGatewaySweepSurvivesBackendDeathMidSweep kills one of three backends
// after it has served one cell: the remaining cells it owned must fail over
// to their ring successors and the streamed bytes must still match the
// single-node reference exactly.
func TestGatewaySweepSurvivesBackendDeathMidSweep(t *testing.T) {
	cells := sweepCells(12)
	want := directBytes(t, cells)

	handlers := make(map[string]*countingHandler, 3)
	addrs := make([]string, 3)
	for i := range addrs {
		ch, addr := startWhisperd(t, 0)
		handlers[addr] = ch
		addrs[i] = addr
	}
	gw, gwts := newTestGateway(t, Config{Backends: addrs, EjectAfter: 2})

	// Kill the backend that is home to the most cells: ring assignment
	// depends on the ephemeral test ports, so picking by index could land
	// on a backend that owns one cell (or none) and never exercise the
	// death. Pigeonhole guarantees the busiest of 3 owns >= 4 of 12.
	homes := make(map[string]int, 3)
	for _, c := range cells {
		norm, err := c.Normalize()
		if err != nil {
			t.Fatal(err)
		}
		homes[gw.pool.pick(norm.Hash())[0].name]++
	}
	victim := ""
	for addr, n := range homes {
		if victim == "" || n > homes[victim] {
			victim = addr
		}
	}
	killed := handlers[victim]
	killed.killAfter.Store(1)

	payload, err := json.Marshal(SweepRequest{Cells: cells})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(gwts.URL+"/v1/sweep", "application/json", bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	got, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sweep status %d", resp.StatusCode)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("sweep with mid-flight backend death diverged from reference (%d vs %d bytes)",
			len(got), len(want))
	}
	if killed.runs.Load() < 2 {
		t.Fatalf("killed backend saw %d runs; the death was never exercised", killed.runs.Load())
	}
	retries := uint64(0)
	for k, v := range gw.Obs().Snapshot().Counters {
		if strings.HasPrefix(k, "gate.retries{") {
			retries += v
		}
	}
	if retries == 0 {
		t.Fatal("no gate.retries recorded; failover path not taken")
	}
}

// TestGatewaySweepReportsCellFailureInStream checks the committed-stream
// failure contract: when every replica fails a cell, the stream carries the
// envelopes up to that cell followed by a JSON error object naming it.
func TestGatewaySweepReportsCellFailureInStream(t *testing.T) {
	cells := sweepCells(6) // cells 0-3 carry seed 1, cells 4-5 seed 2
	ch, addr := startWhisperd(t, 0)
	ch.failSubstr = `"seed":2` // the sole backend fails exactly cells 4 and 5
	_, gwts := newTestGateway(t, Config{Backends: []string{addr}})

	payload, err := json.Marshal(SweepRequest{Cells: cells})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(gwts.URL+"/v1/sweep", "application/json", bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sweep status %d (the stream is committed before cells run)", resp.StatusCode)
	}
	dec := json.NewDecoder(resp.Body)
	sawEnvelopes, sawError := 0, false
	for dec.More() {
		var probe struct {
			Error string `json:"error"`
			Cell  *int   `json:"cell"`
			Hash  string `json:"hash"`
		}
		if err := dec.Decode(&probe); err != nil {
			t.Fatalf("stream not a sequence of JSON documents: %v", err)
		}
		switch {
		case probe.Error != "":
			sawError = true
			if probe.Cell == nil || *probe.Cell != sawEnvelopes {
				t.Fatalf("error envelope names cell %v, want %d", probe.Cell, sawEnvelopes)
			}
		case sawError:
			t.Fatal("stream continued past the error envelope")
		default:
			sawEnvelopes++
		}
	}
	if sawEnvelopes != 4 || !sawError {
		t.Fatalf("stream had %d envelopes, error=%v; want the 4 seed-1 envelopes then the error", sawEnvelopes, sawError)
	}
	if ch.runs.Load() < 5 {
		t.Fatalf("backend saw %d runs; the failing cell was never attempted", ch.runs.Load())
	}
}

// orderedStubs builds n stub backends and returns them sorted into the
// ring's preference order for key, so tests can script "home" and
// "successor" deterministically.
func orderedStubs(t *testing.T, gw *Gateway, key string, stubs map[string]*stubBackend) []*stubBackend {
	t.Helper()
	cands := gw.pool.pick(key)
	if len(cands) != len(stubs) {
		t.Fatalf("pick returned %d candidates, want %d", len(cands), len(stubs))
	}
	out := make([]*stubBackend, len(cands))
	for i, c := range cands {
		s, ok := stubs[c.name]
		if !ok {
			t.Fatalf("unknown candidate %q", c.name)
		}
		out[i] = s
	}
	return out
}

// TestGatewayRetriesConnectionErrorOnNextReplica checks a dead home
// backend's requests land on the ring successor, and the traffic-path
// failure ejects the dead member without waiting for a probe round.
func TestGatewayRetriesConnectionErrorOnNextReplica(t *testing.T) {
	a := newStubBackend(t, `{"hash":"a"}`)
	b := newStubBackend(t, `{"hash":"b"}`)
	gw, gwts := newTestGateway(t, Config{
		Backends:   []string{a.addr(), b.addr()},
		EjectAfter: 1,
	})
	req := server.Request{Experiment: "throughput", ThroughputBytes: 4}
	norm, _ := req.Normalize()
	order := orderedStubs(t, gw, norm.Hash(), map[string]*stubBackend{a.addr(): a, b.addr(): b})
	home, succ := order[0], order[1]
	home.ts.Close() // connection refused from here on

	resp := postRun(t, gwts.URL, req)
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("run status %d: %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get(BackendHeader); got != succ.addr() {
		t.Fatalf("served by %q, want failover to %q", got, succ.addr())
	}
	if gw.pool.Healthy() != 1 {
		t.Fatal("dead backend not ejected by the traffic-path failure")
	}
	if succ.runs.Load() != 1 {
		t.Fatalf("successor saw %d runs, want 1", succ.runs.Load())
	}

	// Next request: the ejected home is filtered at pick time — no
	// connection attempt, no retry counter growth.
	resp = postRun(t, gwts.URL, req)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || succ.runs.Load() != 2 {
		t.Fatalf("post-ejection run: status %d, successor runs %d", resp.StatusCode, succ.runs.Load())
	}
}

// TestGateway429IsFinalWithRetryAfter checks backpressure passes through
// untouched: a 429 from the home backend is relayed with its Retry-After
// and is never retried on another replica — the home's queue signal must
// not be laundered into a cold run elsewhere.
func TestGateway429IsFinalWithRetryAfter(t *testing.T) {
	a := newStubBackend(t, `{"hash":"a"}`)
	b := newStubBackend(t, `{"hash":"b"}`)
	gw, gwts := newTestGateway(t, Config{Backends: []string{a.addr(), b.addr()}})
	req := server.Request{Experiment: "throughput", ThroughputBytes: 4}
	norm, _ := req.Normalize()
	order := orderedStubs(t, gw, norm.Hash(), map[string]*stubBackend{a.addr(): a, b.addr(): b})
	home, other := order[0], order[1]
	home.status.Store(http.StatusTooManyRequests)
	home.retryAfter.Store(7)

	resp := postRun(t, gwts.URL, req)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429 relayed", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") != "7" {
		t.Fatalf("Retry-After = %q, want 7", resp.Header.Get("Retry-After"))
	}
	if other.runs.Load() != 0 {
		t.Fatal("429 was retried on another replica")
	}
}

// TestGatewayHedgesSlowRequest checks the tail-latency path: once the home
// backend outlives the experiment's p95, a hedge fires at the successor,
// its answer wins, and the loser is cancelled.
func TestGatewayHedgesSlowRequest(t *testing.T) {
	a := newStubBackend(t, `{"hash":"a"}`)
	b := newStubBackend(t, `{"hash":"b"}`)
	gw, gwts := newTestGateway(t, Config{
		Backends: []string{a.addr(), b.addr()},
		Hedge:    true,
		HedgeMin: 10 * time.Millisecond,
	})
	req := server.Request{Experiment: "throughput", ThroughputBytes: 4}
	norm, _ := req.Normalize()
	order := orderedStubs(t, gw, norm.Hash(), map[string]*stubBackend{a.addr(): a, b.addr(): b})
	home, succ := order[0], order[1]
	home.delay.Store(int64(2 * time.Second))

	// Warm the p95 estimate past the sample gate with fast observations.
	for i := 0; i < hedgeMinSamples; i++ {
		gw.lat.observe(norm.Experiment, time.Millisecond)
	}

	start := time.Now()
	resp := postRun(t, gwts.URL, req)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if time.Since(start) > time.Second {
		t.Fatalf("hedge did not rescue the request: took %v", time.Since(start))
	}
	if got := resp.Header.Get(BackendHeader); got != succ.addr() {
		t.Fatalf("winner %q, want the hedged successor %q", got, succ.addr())
	}
	snap := gw.Obs().Snapshot()
	if snap.Counters["gate.hedges.fired"] != 1 || snap.Counters["gate.hedges.won"] != 1 {
		t.Fatalf("hedge counters = fired %v, won %v; want 1, 1",
			snap.Counters["gate.hedges.fired"], snap.Counters["gate.hedges.won"])
	}
	deadline := time.Now().Add(time.Second)
	for !home.cancelled.Load() {
		if time.Now().After(deadline) {
			t.Fatal("losing attempt was never cancelled")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestGatewayDrainingBackendNotRouted checks a backend announcing drain via
// /readyz stops receiving new work after the next probe round.
func TestGatewayDrainingBackendNotRouted(t *testing.T) {
	a := newStubBackend(t, `{"hash":"a"}`)
	b := newStubBackend(t, `{"hash":"b"}`)
	gw, gwts := newTestGateway(t, Config{Backends: []string{a.addr(), b.addr()}})
	a.draining.Store(true)
	gw.pool.ProbeAll()

	for i := 0; i < 8; i++ {
		resp := postRun(t, gwts.URL, server.Request{
			Experiment: "throughput", ThroughputBytes: 1 + i%4, Seed: int64(1 + i/4),
		})
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("run %d: status %d", i, resp.StatusCode)
		}
	}
	if a.runs.Load() != 0 {
		t.Fatalf("draining backend served %d runs, want 0", a.runs.Load())
	}
	if b.runs.Load() != 8 {
		t.Fatalf("surviving backend served %d runs, want 8", b.runs.Load())
	}
}

// TestGatewayBadRequestNeverCostsABackendHop checks malformed and invalid
// requests are rejected at the gateway with the backend untouched.
func TestGatewayBadRequestNeverCostsABackendHop(t *testing.T) {
	a := newStubBackend(t, `{"hash":"a"}`)
	_, gwts := newTestGateway(t, Config{Backends: []string{a.addr()}})

	for _, body := range []string{`{not json`, `{"experiment":"no-such-experiment"}`, `{"unknown_field":1}`} {
		resp, err := http.Post(gwts.URL+"/v1/run", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("body %q: status %d, want 400", body, resp.StatusCode)
		}
	}
	if a.runs.Load() != 0 {
		t.Fatalf("invalid requests reached the backend %d times", a.runs.Load())
	}
}

// TestGatewayRequestIDPropagation checks one correlation key rides the whole
// chain: client → gateway response header → backend request header.
func TestGatewayRequestIDPropagation(t *testing.T) {
	a := newStubBackend(t, `{"hash":"a"}`)
	_, gwts := newTestGateway(t, Config{Backends: []string{a.addr()}})

	payload, _ := json.Marshal(server.Request{Experiment: "throughput", ThroughputBytes: 4})
	hreq, err := http.NewRequest(http.MethodPost, gwts.URL+"/v1/run", bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	const id = "gate-test-req-1"
	hreq.Header.Set(server.RequestIDHeader, id)
	resp, err := http.DefaultClient.Do(hreq)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get(server.RequestIDHeader); got != id {
		t.Fatalf("gateway echoed request ID %q, want %q", got, id)
	}
	if got, _ := a.lastReqID.Load().(string); got != id {
		t.Fatalf("backend received request ID %q, want %q", got, id)
	}
}

// TestGatewayReadinessAndDrain walks the gateway's own lifecycle surface:
// ready with healthy backends, not ready with none, draining after
// Shutdown, and 503 for work submitted mid-drain.
func TestGatewayReadinessAndDrain(t *testing.T) {
	a := newStubBackend(t, `{"hash":"a"}`)
	gw, gwts := newTestGateway(t, Config{Backends: []string{a.addr()}, EjectAfter: 1})
	gw.Start()

	getReady := func() (int, GateReadiness) {
		resp, err := http.Get(gwts.URL + "/readyz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var doc GateReadiness
		if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, doc
	}

	status, doc := getReady()
	if status != http.StatusOK || doc.Status != "ok" || doc.BackendsHealthy != 1 || doc.BackendsTotal != 1 {
		t.Fatalf("ready: %d %+v", status, doc)
	}

	a.ts.Close()
	gw.pool.ProbeAll()
	status, doc = getReady()
	if status != http.StatusServiceUnavailable || doc.Status != "no_backends" {
		t.Fatalf("no backends: %d %+v", status, doc)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := gw.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	status, doc = getReady()
	if status != http.StatusServiceUnavailable || doc.Status != "draining" || !doc.Draining {
		t.Fatalf("draining: %d %+v", status, doc)
	}
	resp := postRun(t, gwts.URL, server.Request{Experiment: "throughput", ThroughputBytes: 4})
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("run during drain: status %d, want 503", resp.StatusCode)
	}
}

// TestGatewayExperimentsProxy checks the index passes through from a
// healthy backend.
func TestGatewayExperimentsProxy(t *testing.T) {
	_, addr := startWhisperd(t, 0)
	_, gwts := newTestGateway(t, Config{Backends: []string{addr}})
	resp, err := http.Get(gwts.URL + "/v1/experiments")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var idx struct {
		Experiments []string `json:"experiments"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&idx); err != nil {
		t.Fatal(err)
	}
	if len(idx.Experiments) == 0 {
		t.Fatal("empty experiment index through the gateway")
	}
}
