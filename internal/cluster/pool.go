package cluster

import (
	"context"
	"encoding/json"
	"log/slog"
	"math/rand"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"whisper/internal/obs"
	"whisper/internal/server"
)

// Pool probe defaults.
const (
	defaultProbeInterval = 2 * time.Second
	defaultProbeTimeout  = time.Second
	defaultEjectAfter    = 3
	maxProbeBackoff      = 30 * time.Second
	defaultLoadFactor    = 1.25
)

// backend is one pool member: its address, its routing state, and the
// request-path trackers (inflight load, circuit breaker) the picker reads.
type backend struct {
	name string // as configured, label-friendly ("127.0.0.1:8090")
	base string // normalized URL ("http://127.0.0.1:8090")

	inflight atomic.Int64
	br       *breaker

	mu         sync.Mutex
	healthy    bool
	draining   bool
	fails      int           // consecutive probe failures
	backoff    time.Duration // current reinstatement probe backoff
	nextProbe  time.Time     // ejected backends probe on the backoff schedule
	queueDepth int           // backend-reported inflight+waiting, from /readyz
}

// routeable reports whether the picker may send this backend new work.
func (b *backend) routeable(now time.Time) bool {
	b.mu.Lock()
	ok := b.healthy && !b.draining
	b.mu.Unlock()
	return ok && !b.br.open(now)
}

// Pool is the health-checked backend set behind a Gateway: the configured
// members (static list, reloadable), the consistent-hash ring over them,
// and an active prober that ejects and reinstates members.
type Pool struct {
	cfg  PoolConfig
	reg  *obs.Registry
	log  *slog.Logger
	http *http.Client

	mu       sync.Mutex
	ring     *Ring
	backends map[string]*backend

	stop chan struct{}
	done chan struct{}
}

// PoolConfig sizes a Pool.
type PoolConfig struct {
	// Backends is the initial member list ("host:port" or full URLs).
	Backends []string
	// ProbeInterval is the health-check cadence (jittered ±25%; <= 0:
	// defaultProbeInterval).
	ProbeInterval time.Duration
	// ProbeTimeout caps one probe round trip (<= 0: defaultProbeTimeout).
	ProbeTimeout time.Duration
	// EjectAfter is the consecutive-failure count that ejects a backend
	// (<= 0: defaultEjectAfter).
	EjectAfter int
	// LoadFactor is the bounded-load ceiling multiplier: a backend is
	// skipped (affinity permitting) once its inflight count exceeds
	// LoadFactor× the fair share (<= 1: defaultLoadFactor).
	LoadFactor float64
	// BreakAfter / BreakCooldown configure each member's circuit breaker
	// (<= 0: breaker defaults).
	BreakAfter    int
	BreakCooldown time.Duration
	// HTTP is the probe (and, via Gateway, forwarding) transport; nil uses
	// a dedicated client.
	HTTP *http.Client
	// Obs receives pool telemetry; nil disables it.
	Obs *obs.Registry
	// Log receives ejection/reinstatement events; nil discards.
	Log *slog.Logger
}

// NewPool builds the pool and marks every backend healthy (optimistic: the
// first probe round corrects that within one interval, and the request
// path's breaker reacts even sooner). Call Start to begin probing and Stop
// to halt it.
func NewPool(cfg PoolConfig) *Pool {
	if cfg.ProbeInterval <= 0 {
		cfg.ProbeInterval = defaultProbeInterval
	}
	if cfg.ProbeTimeout <= 0 {
		cfg.ProbeTimeout = defaultProbeTimeout
	}
	if cfg.EjectAfter <= 0 {
		cfg.EjectAfter = defaultEjectAfter
	}
	if cfg.LoadFactor <= 1 {
		cfg.LoadFactor = defaultLoadFactor
	}
	log := cfg.Log
	if log == nil {
		log = slog.New(discardHandler{})
	}
	hc := cfg.HTTP
	if hc == nil {
		hc = &http.Client{}
	}
	p := &Pool{
		cfg:      cfg,
		reg:      cfg.Obs,
		log:      log,
		http:     hc,
		backends: make(map[string]*backend),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	p.SetBackends(cfg.Backends)
	return p
}

// discardHandler avoids importing logging just for a discard logger.
type discardHandler struct{}

func (discardHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (discardHandler) Handle(context.Context, slog.Record) error { return nil }
func (d discardHandler) WithAttrs([]slog.Attr) slog.Handler      { return d }
func (d discardHandler) WithGroup(string) slog.Handler           { return d }

// normalizeAddr mirrors client.New's address handling.
func normalizeAddr(addr string) (name, base string) {
	name = strings.TrimSpace(addr)
	base = name
	if base != "" && !strings.Contains(base, "://") {
		base = "http://" + base
	}
	base = strings.TrimRight(base, "/")
	name = strings.TrimPrefix(strings.TrimPrefix(name, "http://"), "https://")
	name = strings.TrimRight(name, "/")
	return name, base
}

// SetBackends replaces the member set (the -backends-file reload path).
// Retained members keep their health and breaker state; new members start
// healthy; removed members leave the ring. The ring is rebuilt from the
// configured set — ejection never rebuilds it, which is what makes
// eject/reinstate minimal-remap.
func (p *Pool) SetBackends(addrs []string) {
	p.mu.Lock()
	next := make(map[string]*backend, len(addrs))
	var names []string
	for _, addr := range addrs {
		name, base := normalizeAddr(addr)
		if name == "" {
			continue
		}
		if _, dup := next[name]; dup {
			continue
		}
		if b, ok := p.backends[name]; ok {
			next[name] = b
		} else {
			next[name] = &backend{
				name:    name,
				base:    base,
				healthy: true,
				br:      newBreaker(p.cfg.BreakAfter, p.cfg.BreakCooldown),
			}
		}
		names = append(names, name)
	}
	removed := 0
	for name := range p.backends {
		if _, ok := next[name]; !ok {
			removed++
		}
	}
	p.backends = next
	p.ring = NewRing(names)
	p.mu.Unlock()

	p.reg.Counter("gate.pool.reloads").Inc()
	p.reg.Gauge("gate.backends.configured").Set(float64(len(names)))
	p.log.LogAttrs(context.Background(), slog.LevelInfo, "backend set updated",
		slog.Int("members", len(names)), slog.Int("removed", removed))
	p.publishHealthGauges()
}

// Start launches the probe loop.
func (p *Pool) Start() { go p.loop() }

// Stop halts probing and waits for the loop to exit.
func (p *Pool) Stop() {
	close(p.stop)
	<-p.done
}

func (p *Pool) loop() {
	defer close(p.done)
	for {
		// Jitter ±25% so a fleet of gateways doesn't probe in lockstep.
		d := p.cfg.ProbeInterval/2 + time.Duration(rand.Int63n(int64(p.cfg.ProbeInterval)))/2 +
			p.cfg.ProbeInterval/4
		select {
		case <-p.stop:
			return
		case <-time.After(d):
		}
		p.ProbeAll()
	}
}

// ProbeAll health-checks every due member once, concurrently. Ejected
// members are only probed when their backoff window has elapsed, so a dead
// backend costs one request per backoff period, not per interval.
func (p *Pool) ProbeAll() {
	now := time.Now()
	var wg sync.WaitGroup
	for _, b := range p.members() {
		b.mu.Lock()
		due := b.healthy || !now.Before(b.nextProbe)
		b.mu.Unlock()
		if !due {
			continue
		}
		wg.Add(1)
		go func(b *backend) {
			defer wg.Done()
			p.probe(b)
		}(b)
	}
	wg.Wait()
	p.publishHealthGauges()
}

// probeVerdict classifies one health-check round trip.
type probeVerdict int

const (
	probeUp probeVerdict = iota
	probeDraining
	probeDown
)

// probe checks one backend's /readyz (falling back to /healthz for
// backends predating the readiness endpoint) and applies the verdict.
func (p *Pool) probe(b *backend) {
	ctx, cancel := context.WithTimeout(context.Background(), p.cfg.ProbeTimeout)
	defer cancel()
	verdict, depth := p.check(ctx, b, "/readyz")
	if verdict == probeDown && ctx.Err() == nil {
		// An older whisperd without /readyz 404s; its /healthz still
		// distinguishes serving (200) from draining (503).
		verdict, depth = p.check(ctx, b, "/healthz")
	}
	p.apply(b, verdict, depth)
}

// check performs one GET probe. For /readyz it decodes the JSON readiness
// document, so a 503-but-alive draining backend is distinguished from a
// dead one.
func (p *Pool) check(ctx context.Context, b *backend, path string) (probeVerdict, int) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, b.base+path, nil)
	if err != nil {
		return probeDown, 0
	}
	resp, err := p.http.Do(req)
	if err != nil {
		return probeDown, 0
	}
	defer resp.Body.Close()
	var ready server.Readiness
	decoded := json.NewDecoder(resp.Body).Decode(&ready) == nil && ready.Status != ""
	switch {
	case resp.StatusCode == http.StatusOK:
		if decoded && ready.Draining {
			return probeDraining, ready.QueueInflight + ready.QueueWaiting
		}
		if decoded {
			return probeUp, ready.QueueInflight + ready.QueueWaiting
		}
		return probeUp, 0
	case resp.StatusCode == http.StatusServiceUnavailable && decoded && ready.Draining:
		return probeDraining, ready.QueueInflight + ready.QueueWaiting
	default:
		return probeDown, 0
	}
}

// apply folds a probe verdict into the backend's routing state.
func (p *Pool) apply(b *backend, v probeVerdict, depth int) {
	now := time.Now()
	b.mu.Lock()
	wasHealthy, wasDraining := b.healthy, b.draining
	switch v {
	case probeUp:
		b.healthy = true
		b.draining = false
		b.fails = 0
		b.backoff = 0
		b.queueDepth = depth
	case probeDraining:
		// Alive but winding down: stop routing, don't count failures — a
		// draining backend comes back as itself (restart) or disappears
		// from the config, it is not broken.
		b.draining = true
		b.fails = 0
		b.queueDepth = depth
	case probeDown:
		b.fails++
		if b.healthy && b.fails >= p.cfg.EjectAfter {
			b.healthy = false
			b.backoff = p.cfg.ProbeInterval
		} else if !b.healthy {
			// Already ejected: exponential reinstatement backoff.
			b.backoff *= 2
			if b.backoff > maxProbeBackoff {
				b.backoff = maxProbeBackoff
			}
		}
		b.nextProbe = now.Add(b.backoff)
	}
	nowHealthy, nowDraining := b.healthy, b.draining
	fails := b.fails
	b.mu.Unlock()

	lbl := obs.L("backend", b.name)
	switch {
	case wasHealthy && !nowHealthy:
		p.reg.Counter("gate.ejections", lbl).Inc()
		p.log.LogAttrs(context.Background(), slog.LevelWarn, "backend ejected",
			slog.String("backend", b.name), slog.Int("consecutive_failures", fails))
	case !wasHealthy && nowHealthy:
		p.reg.Counter("gate.reinstatements", lbl).Inc()
		p.log.LogAttrs(context.Background(), slog.LevelInfo, "backend reinstated",
			slog.String("backend", b.name))
	case !wasDraining && nowDraining:
		p.log.LogAttrs(context.Background(), slog.LevelInfo, "backend draining, rerouting",
			slog.String("backend", b.name))
	}
}

// reportFailure folds a forwarding-path failure into health accounting, so
// a backend that died between probes is ejected by the traffic it drops,
// not only by the next probe round.
func (p *Pool) reportFailure(b *backend) {
	p.apply(b, probeDown, 0)
	p.publishHealthGauges()
}

// reportSuccess resets failure accounting from the forwarding path.
func (p *Pool) reportSuccess(b *backend) {
	b.mu.Lock()
	b.fails = 0
	if !b.healthy {
		b.healthy = true
		b.backoff = 0
		b.mu.Unlock()
		p.reg.Counter("gate.reinstatements", obs.L("backend", b.name)).Inc()
		p.publishHealthGauges()
		return
	}
	b.mu.Unlock()
}

// members snapshots the backend set.
func (p *Pool) members() []*backend {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]*backend, 0, len(p.backends))
	for _, b := range p.backends {
		out = append(out, b)
	}
	return out
}

// lookup resolves a member by name.
func (p *Pool) lookup(name string) *backend {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.backends[name]
}

// Healthy returns how many members are currently routeable.
func (p *Pool) Healthy() int {
	now := time.Now()
	n := 0
	for _, b := range p.members() {
		if b.routeable(now) {
			n++
		}
	}
	return n
}

// Size returns the configured member count.
func (p *Pool) Size() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.backends)
}

// pick returns the candidate backends for a request hash: the ring's
// preference order for the key, filtered to routeable members, with the
// bounded-load rule applied — members whose inflight count already exceeds
// LoadFactor× the fair share are moved to the back, so a hot backend sheds
// overflow to its ring successor while cold keys keep full cache affinity.
func (p *Pool) pick(hash string) []*backend {
	p.mu.Lock()
	ring := p.ring
	p.mu.Unlock()
	now := time.Now()
	var cands []*backend
	total := int64(0)
	for _, name := range ring.Order(hash) {
		b := p.lookup(name)
		if b == nil || !b.routeable(now) {
			continue
		}
		cands = append(cands, b)
		total += b.inflight.Load()
	}
	if len(cands) < 2 {
		return cands
	}
	ceiling := int64(float64(total+1)*p.cfg.LoadFactor/float64(len(cands))) + 1
	ordered := make([]*backend, 0, len(cands))
	var overloaded []*backend
	for _, b := range cands {
		if b.inflight.Load()+1 <= ceiling {
			ordered = append(ordered, b)
		} else {
			overloaded = append(overloaded, b)
		}
	}
	return append(ordered, overloaded...)
}

// publishHealthGauges refreshes the per-backend and aggregate health
// gauges /metrics serves.
func (p *Pool) publishHealthGauges() {
	if p.reg == nil {
		return
	}
	now := time.Now()
	healthy := 0
	for _, b := range p.members() {
		lbl := obs.L("backend", b.name)
		up := 0.0
		if b.routeable(now) {
			up = 1
			healthy++
		}
		p.reg.Gauge("gate.backend.healthy", lbl).Set(up)
		b.mu.Lock()
		depth := b.queueDepth
		b.mu.Unlock()
		p.reg.Gauge("gate.backend.queue_depth", lbl).Set(float64(depth))
	}
	p.reg.Gauge("gate.backends.healthy").Set(float64(healthy))
}
