package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"time"

	"whisper/internal/obs"
	"whisper/internal/obs/logging"
	"whisper/internal/server"
)

// SweepRequest is the POST /v1/sweep body: an ordered list of cells, each
// a normal /v1/run request. A suite (Table 2 across seeds, the KASLR slot
// matrix, a noise/mitigation grid) decomposes into exactly such a list —
// every cell is independent, so the gateway fans them out across the ring.
type SweepRequest struct {
	Cells []server.Request `json:"cells"`
}

// maxSweepCells bounds one sweep's fan-out so a single request cannot pin
// the whole cluster.
const maxSweepCells = 4096

// SweepCellsHeader reports how many cells a sweep response streams.
const SweepCellsHeader = "X-Whisper-Sweep-Cells"

// sweepContentType marks the response as a stream of concatenated JSON
// envelopes (decodable with json.Decoder in a loop).
const sweepContentType = "application/x-json-stream"

// handleSweep is POST /v1/sweep: scatter-gather over the ring. Every cell
// routes by its own canonical hash (cache affinity per cell, exactly as if
// each were POSTed to /v1/run individually) under bounded concurrency, and
// the response streams each cell's envelope bytes in request order as soon
// as the cell — and every cell before it — has finished.
//
// Because each envelope is the deterministic canonical encoding, the
// streamed concatenation is byte-identical to a single-node run of the
// same cells in order, at any backend count, any concurrency, and any
// failover schedule — the property the cluster identity test and the CI
// smoke job pin.
func (g *Gateway) handleSweep(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, r, http.StatusMethodNotAllowed, "POST only")
		return
	}
	if !g.begin() {
		writeError(w, r, http.StatusServiceUnavailable, "gateway draining")
		return
	}
	defer g.inflight.Done()
	var sreq SweepRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&sreq); err != nil {
		writeError(w, r, http.StatusBadRequest, "bad request: "+err.Error())
		return
	}
	if len(sreq.Cells) == 0 {
		writeError(w, r, http.StatusBadRequest, "empty sweep: need at least one cell")
		return
	}
	if len(sreq.Cells) > maxSweepCells {
		writeError(w, r, http.StatusBadRequest,
			fmt.Sprintf("sweep too large: %d cells (max %d)", len(sreq.Cells), maxSweepCells))
		return
	}
	// Normalize every cell before any work: a malformed cell fails the
	// whole sweep up front with its index, never half-way into a stream.
	cells := make([]server.Request, len(sreq.Cells))
	for i, c := range sreq.Cells {
		norm, err := c.Normalize()
		if err != nil {
			writeError(w, r, http.StatusBadRequest, fmt.Sprintf("cell %d: %v", i, err))
			return
		}
		cells[i] = norm
	}
	g.reg.Counter("gate.sweeps").Inc()
	sp := g.reg.StartDetachedWallSpan("gate.sweep")
	sp.AttrInt("cells", len(cells))
	if id := obs.RequestIDFrom(r.Context()); id != "" {
		sp.Attr(obs.RequestIDAttr, id)
	}
	defer sp.End(0)

	w.Header().Set("Content-Type", sweepContentType)
	w.Header().Set(SweepCellsHeader, fmt.Sprint(len(cells)))
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)

	// Scatter under bounded concurrency (sched-style: a fixed worker
	// budget over an indexed job list, results collected positionally),
	// gather strictly in cell order. A one-slot buffered channel per cell
	// lets workers run ahead of the writer without unbounded buffering.
	ctx, cancel := context.WithCancel(r.Context())
	defer cancel()
	par := g.sweepParallel()
	sp.AttrInt("parallel", par)
	results := make([]chan fwdResult, len(cells))
	for i := range results {
		results[i] = make(chan fwdResult, 1)
	}
	sem := make(chan struct{}, par)
	for i := range cells {
		i := i
		go func() {
			select {
			case sem <- struct{}{}:
			case <-ctx.Done():
				results[i] <- fwdResult{err: ctx.Err()}
				return
			}
			defer func() { <-sem }()
			results[i] <- g.forwardRun(ctx, cells[i])
		}()
	}

	start := time.Now()
	for i := range cells {
		res := <-results[i]
		if res.err != nil || res.status != http.StatusOK {
			// The stream is already committed (200 + partial body); the
			// best honest signal is an error envelope in-stream, then stop.
			// A cell only gets here after the full retry ladder failed.
			msg := fmt.Sprintf("cell %d (%s): ", i, cells[i].Experiment)
			if res.err != nil {
				msg += res.err.Error()
			} else {
				msg += fmt.Sprintf("backend %s replied %d", res.backend, res.status)
			}
			g.reg.Counter("gate.sweep.cells", obs.L("result", "failed")).Inc()
			logging.From(ctx).LogAttrs(ctx, slog.LevelError, "sweep cell failed",
				slog.Int("cell", i), slog.String("error", msg))
			json.NewEncoder(w).Encode(struct {
				Error string `json:"error"`
				Cell  int    `json:"cell"`
			}{msg, i})
			cancel()
			for j := i + 1; j < len(cells); j++ {
				<-results[j] // unblock remaining workers
			}
			return
		}
		g.reg.Counter("gate.sweep.cells", obs.L("result", "ok")).Inc()
		w.Write(res.body)
		if flusher != nil {
			flusher.Flush()
		}
	}
	g.reg.Histogram("gate.sweep.us").Observe(uint64(time.Since(start).Microseconds()))
}

// sweepParallel resolves the per-sweep concurrency bound.
func (g *Gateway) sweepParallel() int {
	if g.cfg.SweepParallel > 0 {
		return g.cfg.SweepParallel
	}
	par := 2 * g.pool.Size()
	if par < 1 {
		par = 1
	}
	if par > 32 {
		par = 32
	}
	return par
}
