package cluster

import (
	"sync"
	"time"
)

// Breaker defaults; Config can override the threshold and base cooldown.
const (
	defaultBreakAfter    = 3
	defaultBreakCooldown = 500 * time.Millisecond
	maxBreakCooldown     = 15 * time.Second
)

// breaker is a per-backend circuit breaker for the forwarding path. It
// reacts on request timescales — milliseconds — where the pool's active
// prober reacts on probe timescales; together a misbehaving backend stops
// receiving traffic almost immediately and stays ejected until it proves
// itself again.
//
// States: closed (fails < threshold), open (until openUntil), half-open
// (past openUntil: one trial request is let through at a time; success
// closes, failure re-opens with doubled cooldown, capped).
type breaker struct {
	threshold int
	base      time.Duration

	mu        sync.Mutex
	fails     int
	cooldown  time.Duration
	openUntil time.Time
}

func newBreaker(threshold int, cooldown time.Duration) *breaker {
	if threshold <= 0 {
		threshold = defaultBreakAfter
	}
	if cooldown <= 0 {
		cooldown = defaultBreakCooldown
	}
	return &breaker{threshold: threshold, base: cooldown, cooldown: cooldown}
}

// allow reports whether a request may be sent now. In the open state it
// re-arms the trial window, so concurrent callers don't all pile onto a
// half-open backend at once.
func (b *breaker) allow(now time.Time) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.fails < b.threshold {
		return true
	}
	if now.Before(b.openUntil) {
		return false
	}
	// Half-open: admit this caller as the trial and push the window out so
	// the next caller waits for the trial's verdict (or the next window).
	b.openUntil = now.Add(b.cooldown)
	return true
}

// success closes the breaker and resets the cooldown ladder.
func (b *breaker) success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.fails = 0
	b.cooldown = b.base
}

// failure records a failed attempt; crossing the threshold opens the
// breaker, and failing while open doubles the cooldown (capped).
func (b *breaker) failure(now time.Time) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.fails++
	if b.fails < b.threshold {
		return
	}
	b.openUntil = now.Add(b.cooldown)
	if b.cooldown < maxBreakCooldown {
		b.cooldown *= 2
		if b.cooldown > maxBreakCooldown {
			b.cooldown = maxBreakCooldown
		}
	}
}

// open reports whether the breaker is currently refusing traffic.
func (b *breaker) open(now time.Time) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.fails >= b.threshold && now.Before(b.openUntil)
}
