package cluster

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"whisper/internal/obs"
	"whisper/internal/server"
)

// readyBackend is a controllable fake whisperd health surface: its /readyz
// answer flips between serving, draining, and dead without restarting the
// listener.
type readyBackend struct {
	ts *httptest.Server
	// mode: 0 serving, 1 draining, 2 dead (connection-level refusal is
	// simulated with a hijack-close; a plain 500 would also count as down).
	mode atomic.Int32
	// legacy drops /readyz (404) so the prober must fall back to /healthz.
	legacy atomic.Bool
}

func newReadyBackend(t *testing.T) *readyBackend {
	t.Helper()
	b := &readyBackend{}
	b.ts = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if b.mode.Load() == 2 {
			hj, ok := w.(http.Hijacker)
			if !ok {
				t.Error("test server not hijackable")
				return
			}
			conn, _, err := hj.Hijack()
			if err == nil {
				conn.Close()
			}
			return
		}
		draining := b.mode.Load() == 1
		switch r.URL.Path {
		case "/readyz":
			if b.legacy.Load() {
				http.NotFound(w, r)
				return
			}
			ready := server.Readiness{Status: "ok", QueueInflight: 2, QueueWaiting: 1}
			status := http.StatusOK
			if draining {
				ready.Status, ready.Draining, status = "draining", true, http.StatusServiceUnavailable
			}
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(status)
			json.NewEncoder(w).Encode(ready)
		case "/healthz":
			if draining {
				http.Error(w, "draining", http.StatusServiceUnavailable)
				return
			}
			w.Write([]byte("ok\n"))
		default:
			http.NotFound(w, r)
		}
	}))
	t.Cleanup(b.ts.Close)
	return b
}

func (b *readyBackend) addr() string { return strings.TrimPrefix(b.ts.URL, "http://") }

// TestPoolEjectionAndReinstatement drives the probe loop's state machine by
// hand: EjectAfter consecutive down-probes eject a backend, a recovered
// backend is reinstated once its backoff window passes, and both
// transitions surface as counters.
func TestPoolEjectionAndReinstatement(t *testing.T) {
	b := newReadyBackend(t)
	reg := obs.NewRegistry()
	p := NewPool(PoolConfig{
		Backends:      []string{b.addr()},
		ProbeInterval: 5 * time.Millisecond,
		ProbeTimeout:  time.Second,
		EjectAfter:    3,
		Obs:           reg,
	})

	if p.Healthy() != 1 {
		t.Fatalf("Healthy = %d at start (optimistic), want 1", p.Healthy())
	}

	b.mode.Store(2) // dead
	for i := 0; i < 2; i++ {
		p.ProbeAll()
	}
	if p.Healthy() != 1 {
		t.Fatalf("ejected after %d failures, want EjectAfter=3", 2)
	}
	p.ProbeAll()
	if p.Healthy() != 0 {
		t.Fatal("backend not ejected after 3 consecutive probe failures")
	}
	if got := reg.Snapshot().Counters[`gate.ejections{backend=`+b.addr()+`}`]; got != 1 {
		t.Fatalf("gate.ejections = %v, want 1", got)
	}

	// Recovered, but still inside the reinstatement backoff: not yet probed.
	b.mode.Store(0)
	p.ProbeAll()
	if p.Healthy() != 0 {
		t.Fatal("ejected backend probed before its backoff elapsed")
	}
	time.Sleep(10 * time.Millisecond) // backoff = ProbeInterval after first ejection
	p.ProbeAll()
	if p.Healthy() != 1 {
		t.Fatal("backend not reinstated after recovery")
	}
	if got := reg.Snapshot().Counters[`gate.reinstatements{backend=`+b.addr()+`}`]; got != 1 {
		t.Fatalf("gate.reinstatements = %v, want 1", got)
	}
}

// TestPoolDrainingStopsRoutingWithoutEjection checks the third probe
// verdict: a draining backend leaves the candidate set immediately but
// accrues no failures — it is winding down, not broken — and returns the
// moment it reports serving again.
func TestPoolDrainingStopsRoutingWithoutEjection(t *testing.T) {
	b := newReadyBackend(t)
	reg := obs.NewRegistry()
	p := NewPool(PoolConfig{Backends: []string{b.addr()}, Obs: reg})

	b.mode.Store(1) // draining
	for i := 0; i < 5; i++ {
		p.ProbeAll()
	}
	if p.Healthy() != 0 {
		t.Fatal("draining backend still routeable")
	}
	if got := reg.Snapshot().Counters[`gate.ejections{backend=`+b.addr()+`}`]; got != 0 {
		t.Fatalf("draining counted as ejection: gate.ejections = %v", got)
	}

	b.mode.Store(0)
	p.ProbeAll() // no backoff to wait out: draining never ejected it
	if p.Healthy() != 1 {
		t.Fatal("backend not routeable again after drain ended")
	}
}

// TestPoolHealthzFallback checks a backend without /readyz (older whisperd)
// is still probed correctly through /healthz.
func TestPoolHealthzFallback(t *testing.T) {
	b := newReadyBackend(t)
	b.legacy.Store(true)
	p := NewPool(PoolConfig{Backends: []string{b.addr()}, EjectAfter: 1})
	p.ProbeAll()
	if p.Healthy() != 1 {
		t.Fatal("healthy legacy backend (404 /readyz, 200 /healthz) was ejected")
	}
	b.mode.Store(1)
	p.ProbeAll()
	if p.Healthy() != 0 {
		t.Fatal("draining legacy backend still routeable")
	}
}

// TestPoolSetBackendsRetainsState checks the reload path: members kept
// across a SetBackends call keep their health state, new members join
// healthy, and removed members leave the ring.
func TestPoolSetBackendsRetainsState(t *testing.T) {
	dead := newReadyBackend(t)
	dead.mode.Store(2)
	live := newReadyBackend(t)
	p := NewPool(PoolConfig{
		Backends:   []string{dead.addr(), live.addr()},
		EjectAfter: 1,
	})
	p.ProbeAll()
	if p.Healthy() != 1 {
		t.Fatalf("Healthy = %d after probing one dead member, want 1", p.Healthy())
	}

	// Reload keeping both and adding a third: the dead member must stay
	// ejected (state retained), not reset to optimistic-healthy.
	extra := newReadyBackend(t)
	p.SetBackends([]string{dead.addr(), live.addr(), extra.addr()})
	if p.Size() != 3 {
		t.Fatalf("Size = %d after reload, want 3", p.Size())
	}
	if p.Healthy() != 2 {
		t.Fatalf("Healthy = %d after reload, want 2 (ejection retained)", p.Healthy())
	}

	// Reload dropping the dead member entirely.
	p.SetBackends([]string{live.addr(), extra.addr()})
	if p.Size() != 2 || p.Healthy() != 2 {
		t.Fatalf("Size, Healthy = %d, %d after removal, want 2, 2", p.Size(), p.Healthy())
	}
	for _, name := range p.ring.Members() {
		if name == dead.addr() {
			t.Fatal("removed backend still on the ring")
		}
	}
}

// TestPoolPickSkipsUnrouteable checks pick filters ejected members while
// preserving ring order for the rest.
func TestPoolPickSkipsUnrouteable(t *testing.T) {
	a := newReadyBackend(t)
	b := newReadyBackend(t)
	p := NewPool(PoolConfig{Backends: []string{a.addr(), b.addr()}, EjectAfter: 1})

	cands := p.pick("some-request-hash")
	if len(cands) != 2 {
		t.Fatalf("pick returned %d candidates, want 2", len(cands))
	}
	home := cands[0].name

	// Eject the home backend: pick must return only the other.
	var deadBackend *readyBackend
	if home == a.addr() {
		deadBackend = a
	} else {
		deadBackend = b
	}
	deadBackend.mode.Store(2)
	p.ProbeAll()
	cands = p.pick("some-request-hash")
	if len(cands) != 1 || cands[0].name == home {
		t.Fatalf("pick after ejection = %v, want only the surviving backend", names(cands))
	}
}

// TestPoolBoundedLoadDemotesHotBackend checks the bounded-load rule: a
// backend far past its fair share of in-flight work is moved behind its
// ring successors, and returns to the front once the load clears.
func TestPoolBoundedLoadDemotesHotBackend(t *testing.T) {
	a := newReadyBackend(t)
	b := newReadyBackend(t)
	p := NewPool(PoolConfig{Backends: []string{a.addr(), b.addr()}, LoadFactor: 1.25})

	cands := p.pick("hot-key")
	home := cands[0]
	home.inflight.Store(100) // way past 1.25× the fair share of 100 total

	cands = p.pick("hot-key")
	if cands[0] == home {
		t.Fatal("overloaded home backend still first in pick order")
	}
	if len(cands) != 2 || cands[1] != home {
		t.Fatalf("overloaded backend dropped instead of demoted: %v", names(cands))
	}

	home.inflight.Store(0)
	cands = p.pick("hot-key")
	if cands[0] != home {
		t.Fatal("home backend not restored to the front after load cleared")
	}
}

func names(bs []*backend) []string {
	out := make([]string, len(bs))
	for i, b := range bs {
		out[i] = b.name
	}
	return out
}

// TestBreakerStateMachine pins the circuit breaker's closed → open →
// half-open → closed cycle and the doubling cooldown.
func TestBreakerStateMachine(t *testing.T) {
	now := time.Unix(1000, 0)
	br := newBreaker(3, 100*time.Millisecond)

	for i := 0; i < 3; i++ {
		if !br.allow(now) {
			t.Fatalf("breaker open after only %d failures", i)
		}
		br.failure(now)
	}
	if br.allow(now) {
		t.Fatal("breaker closed after reaching the failure threshold")
	}
	if !br.open(now) {
		t.Fatal("open() disagrees with allow()")
	}

	// Past the cooldown: half-open admits exactly one trial, and re-arms the
	// window so a second caller at the same instant is rejected.
	later := now.Add(150 * time.Millisecond)
	if !br.allow(later) {
		t.Fatal("breaker still closed after cooldown elapsed")
	}
	if br.allow(later) {
		t.Fatal("half-open breaker admitted two concurrent trials")
	}

	// Trial fails: cooldown doubles.
	br.failure(later)
	if br.allow(later.Add(150 * time.Millisecond)) {
		t.Fatal("breaker reopened on the base cooldown; failure should have doubled it")
	}
	if !br.allow(later.Add(250 * time.Millisecond)) {
		t.Fatal("breaker not half-open after the doubled cooldown")
	}

	// Trial succeeds: closed, ladder reset.
	br.success()
	if !br.allow(later.Add(300 * time.Millisecond)) {
		t.Fatal("breaker not closed after a successful trial")
	}
	if br.open(time.Unix(0, 0)) {
		t.Fatal("closed breaker reports open")
	}
}
