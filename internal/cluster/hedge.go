package cluster

import (
	"sort"
	"sync"
	"time"
)

// Hedging defaults.
const (
	// hedgeWindow is how many recent successful latencies per experiment
	// feed the p95 estimate.
	hedgeWindow = 64
	// hedgeMinSamples gates hedging until the estimate means something: a
	// p95 off two samples would hedge everything or nothing.
	hedgeMinSamples = 8
	// defaultHedgeMin floors the hedge delay so cache hits (sub-ms) never
	// trigger speculative duplicates.
	defaultHedgeMin = 25 * time.Millisecond
)

// latencies estimates a per-experiment p95 from a sliding window of recent
// successful forward latencies. The gateway hedges a request that has been
// in flight longer than its experiment's p95: at that point the attempt is
// statistically likely stuck (slow backend, GC pause, dying node), and a
// duplicate on the next replica is cheap because execution is deterministic
// and cached.
type latencies struct {
	mu     sync.Mutex
	byName map[string]*latWindow
}

type latWindow struct {
	ring [hedgeWindow]time.Duration
	n    int // total observations (ring index = n % hedgeWindow)
}

func newLatencies() *latencies {
	return &latencies{byName: make(map[string]*latWindow)}
}

// observe records one successful forward's latency.
func (l *latencies) observe(name string, d time.Duration) {
	l.mu.Lock()
	w := l.byName[name]
	if w == nil {
		w = &latWindow{}
		l.byName[name] = w
	}
	w.ring[w.n%hedgeWindow] = d
	w.n++
	l.mu.Unlock()
}

// p95 returns the window's 95th percentile, or false until enough samples
// have accumulated.
func (l *latencies) p95(name string) (time.Duration, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	w := l.byName[name]
	if w == nil || w.n < hedgeMinSamples {
		return 0, false
	}
	n := w.n
	if n > hedgeWindow {
		n = hedgeWindow
	}
	buf := make([]time.Duration, n)
	copy(buf, w.ring[:n])
	sort.Slice(buf, func(i, j int) bool { return buf[i] < buf[j] })
	return buf[(n-1)*95/100], true
}
