package cluster

import (
	"fmt"
	"testing"
)

func backendNames(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("10.0.0.%d:8090", i+1)
	}
	return out
}

// TestRingBalance checks the vnode count keeps key distribution near fair
// at the pool sizes the gateway is designed for: with 10k keys every
// backend's share stays within [0.5, 1.6]× of the mean for 3, 5, and 16
// backends.
func TestRingBalance(t *testing.T) {
	const keys = 10000
	for _, n := range []int{3, 5, 16} {
		n := n
		t.Run(fmt.Sprintf("%d-backends", n), func(t *testing.T) {
			ring := NewRing(backendNames(n))
			counts := map[string]int{}
			for i := 0; i < keys; i++ {
				home, ok := ring.Pick(fmt.Sprintf("request-hash-%d", i))
				if !ok {
					t.Fatal("Pick failed on a populated ring")
				}
				counts[home]++
			}
			if len(counts) != n {
				t.Fatalf("only %d of %d backends received keys", len(counts), n)
			}
			mean := float64(keys) / float64(n)
			for b, c := range counts {
				share := float64(c) / mean
				if share < 0.5 || share > 1.6 {
					t.Errorf("backend %s holds %.2fx the fair share (%d keys)", b, share, c)
				}
			}
		})
	}
}

// TestRingMinimalRemapOnMembershipChange pins the consistent-hashing core
// property: removing one backend from the configured set only remaps the
// keys that lived on it, and adding it back restores the original
// assignment exactly.
func TestRingMinimalRemapOnMembershipChange(t *testing.T) {
	const keys = 2000
	full := NewRing(backendNames(5))
	removed := "10.0.0.3:8090"
	var rest []string
	for _, b := range backendNames(5) {
		if b != removed {
			rest = append(rest, b)
		}
	}
	smaller := NewRing(rest)
	restored := NewRing(backendNames(5))

	moved := 0
	for i := 0; i < keys; i++ {
		key := fmt.Sprintf("request-hash-%d", i)
		before, _ := full.Pick(key)
		after, _ := smaller.Pick(key)
		if before == removed {
			moved++
			if after == removed {
				t.Fatalf("key %q still assigned to removed backend", key)
			}
			continue
		}
		if after != before {
			t.Fatalf("key %q moved %s -> %s though its home stayed in the set", key, before, after)
		}
		back, _ := restored.Pick(key)
		if back != before {
			t.Fatalf("key %q did not return home after reinstatement: %s vs %s", key, back, before)
		}
	}
	if moved == 0 {
		t.Fatal("no key was assigned to the removed backend; test is vacuous")
	}
}

// TestRingEjectionRemapViaOrder pins the runtime flavour of minimal remap:
// ejection does not rebuild the ring — the picker skips the dead member in
// Order — so keys homed on live backends never move, and reinstatement is
// a pure no-op for them.
func TestRingEjectionRemapViaOrder(t *testing.T) {
	ring := NewRing(backendNames(5))
	ejected := "10.0.0.2:8090"
	firstAlive := func(key string) string {
		for _, b := range ring.Order(key) {
			if b != ejected {
				return b
			}
		}
		t.Fatalf("no alive backend for %q", key)
		return ""
	}
	moved := 0
	for i := 0; i < 2000; i++ {
		key := fmt.Sprintf("request-hash-%d", i)
		home, _ := ring.Pick(key)
		routed := firstAlive(key)
		if home != ejected {
			if routed != home {
				t.Fatalf("key %q rerouted %s -> %s though its home is alive", key, home, routed)
			}
			continue
		}
		moved++
		if routed == ejected {
			t.Fatalf("key %q routed to the ejected backend", key)
		}
		// The overflow must land on the key's ring successor, preserving a
		// stable (and therefore cacheable) secondary home.
		if want := ring.Order(key)[1]; routed != want {
			t.Fatalf("key %q overflowed to %s, want ring successor %s", key, routed, want)
		}
	}
	if moved == 0 {
		t.Fatal("no key was homed on the ejected backend; test is vacuous")
	}
}

// TestRingGoldenMapping pins the cell→backend assignment: routing is part
// of the cluster's cache-locality contract (a new gateway build that
// silently remaps keys would cold-start every backend cache), so any
// intentional change to the hash or walk must update these constants
// consciously.
func TestRingGoldenMapping(t *testing.T) {
	ring := NewRing([]string{"a:1", "b:1", "c:1"})
	golden := map[string]string{
		"table2/seed=7":    "a:1",
		"table3/seed=7":    "c:1",
		"kaslr/seed=1":     "c:1",
		"fig1b/seed=7":     "a:1",
		"noise/seed=7":     "a:1",
		"throughput/16":    "a:1",
		"attacks/meltdown": "b:1",
		"leak/seed=1":      "a:1",
	}
	for key, want := range golden {
		got, ok := ring.Pick(key)
		if !ok {
			t.Fatalf("Pick(%q) failed", key)
		}
		if got != want {
			t.Errorf("Pick(%q) = %q, want %q", key, got, want)
		}
	}
}

// TestRingDegenerateInputs checks construction is total on hostile input.
func TestRingDegenerateInputs(t *testing.T) {
	empty := NewRing(nil)
	if got := empty.Order("anything"); got != nil {
		t.Fatalf("empty ring Order = %q", got)
	}
	if _, ok := empty.Pick("anything"); ok {
		t.Fatal("empty ring picked a backend")
	}
	dedup := NewRing([]string{"x:1", "", "x:1", "y:1", ""})
	if dedup.Len() != 2 {
		t.Fatalf("dedup ring has %d members, want 2", dedup.Len())
	}
	solo := NewRing([]string{"only:1"})
	if home, ok := solo.Pick("k"); !ok || home != "only:1" {
		t.Fatalf("solo ring Pick = %q, %v", home, ok)
	}
}
