package server

import (
	"bytes"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"whisper/internal/obs"
)

func TestCacheLRUEviction(t *testing.T) {
	reg := obs.NewRegistry()
	c, err := newCache(2, "", reg)
	if err != nil {
		t.Fatal(err)
	}
	c.put("a", []byte("A"))
	c.put("b", []byte("B"))
	if _, _, ok := c.get("a"); !ok { // touches a: b becomes the LRU entry
		t.Fatal("a missing before capacity was reached")
	}
	c.put("c", []byte("C"))
	if _, _, ok := c.get("b"); ok {
		t.Fatal("LRU entry b survived eviction")
	}
	for _, h := range []string{"a", "c"} {
		if _, _, ok := c.get(h); !ok {
			t.Fatalf("%s evicted although it was not the LRU entry", h)
		}
	}
	if got := reg.Counter("server.cache.evictions").Value(); got != 1 {
		t.Fatalf("evictions counter = %d, want 1", got)
	}
}

// TestCacheDiskSurvivesRestart checks the disk tier serves entries written
// by a previous cache instance — the whisperd -cache-dir restart story — and
// promotes them into memory.
func TestCacheDiskSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	body := []byte(`{"hash":"h1"}` + "\n")

	c1, err := newCache(4, dir, obs.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	c1.put("aa11", body)

	reg := obs.NewRegistry()
	c2, err := newCache(4, dir, reg)
	if err != nil {
		t.Fatal(err)
	}
	got, tier, ok := c2.get("aa11")
	if !ok || !bytes.Equal(got, body) {
		t.Fatalf("disk entry not served after restart: ok=%v body=%q", ok, got)
	}
	if tier != tierDisk {
		t.Fatalf("hit attributed to tier %q, want %q", tier, tierDisk)
	}
	if reg.Counter("server.cache.hits", obs.L("tier", "disk")).Value() != 1 {
		t.Fatal("hit not attributed to the disk tier")
	}
	if _, tier, ok := c2.get("aa11"); !ok || tier != tierMemory {
		t.Fatal("disk hit not promoted to memory")
	}
	if reg.Counter("server.cache.hits", obs.L("tier", "memory")).Value() != 1 {
		t.Fatal("promoted entry not served from the memory tier")
	}
}

// TestFlightCoalesces checks concurrent do() calls for one hash share a
// single execution: exactly one caller runs fn, everyone gets its bytes.
func TestFlightCoalesces(t *testing.T) {
	f := newFlight()
	var runs atomic.Int64
	release := make(chan struct{})
	leaderIn := make(chan struct{})

	const followers = 8
	var wg sync.WaitGroup
	results := make([][]byte, followers+1)
	sharedCount := atomic.Int64{}
	arrived := make(chan struct{}, followers)
	call := func(slot int, follower bool) {
		defer wg.Done()
		if follower {
			arrived <- struct{}{}
		}
		body, shared, err := f.do("h", func() ([]byte, error) {
			runs.Add(1)
			close(leaderIn)
			<-release
			return []byte("R"), nil
		})
		if err != nil {
			t.Errorf("do: %v", err)
		}
		if shared {
			sharedCount.Add(1)
		}
		results[slot] = body
	}
	wg.Add(1)
	go call(0, false)
	<-leaderIn // the leader holds the flight open; followers must join it
	for i := 1; i <= followers; i++ {
		wg.Add(1)
		go call(i, true)
	}
	for i := 0; i < followers; i++ {
		<-arrived
	}
	// Every follower is past its handshake and about to (or already does)
	// block on the leader's call; the leader cannot finish until release, so
	// the flight entry is still registered when each of them reads it.
	time.Sleep(20 * time.Millisecond)
	close(release)
	wg.Wait()

	// The bodies must all be the leader's bytes regardless of scheduling;
	// the coalescing accounting below is the deterministic part the flight
	// guarantees once every follower joined before the leader completed.
	for i, b := range results {
		if !bytes.Equal(b, []byte("R")) {
			t.Fatalf("caller %d got %q", i, b)
		}
	}
	if got := runs.Load(); got != 1 {
		t.Fatalf("fn ran %d times, want exactly 1", got)
	}
	if sharedCount.Load() != followers {
		t.Fatalf("shared reported by %d callers, want %d", sharedCount.Load(), followers)
	}
}
