package server

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

func getReadiness(t *testing.T, url string) (int, Readiness) {
	t.Helper()
	resp, err := http.Get(url + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc Readiness
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatalf("/readyz body is not the readiness document: %v", err)
	}
	return resp.StatusCode, doc
}

// TestReadyzReportsQueueAndDrain pins the /readyz contract the gateway's
// health prober consumes: one JSON shape in every state — 200 with live
// queue depth while serving, 503 with draining=true during drain — so a
// prober can distinguish "winding down" from "dead" without heuristics.
func TestReadyzReportsQueueAndDrain(t *testing.T) {
	started := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	srv, _ := stubServer(t, Config{MaxInflight: 2, MaxQueue: 8},
		func(ctx context.Context, req Request) ([]byte, error) {
			once.Do(func() { close(started) })
			select {
			case <-release:
			case <-ctx.Done():
			}
			return []byte("{}"), nil
		})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	status, doc := getReadiness(t, ts.URL)
	if status != http.StatusOK {
		t.Fatalf("idle /readyz status = %d, want 200", status)
	}
	if doc.Status != "ok" || doc.Draining || doc.QueueInflight != 0 || doc.QueueWaiting != 0 {
		t.Fatalf("idle readiness = %+v", doc)
	}
	if doc.MaxInflight != 2 || doc.MaxQueue != 8 {
		t.Fatalf("readiness does not echo the configured bounds: %+v", doc)
	}

	// With an execution stuck in flight, the document reports it.
	reqDone := make(chan struct{})
	go func() {
		defer close(reqDone)
		post(t, ts.URL, Request{Experiment: "table2"})
	}()
	<-started
	status, doc = getReadiness(t, ts.URL)
	if status != http.StatusOK || doc.QueueInflight != 1 {
		t.Fatalf("busy readiness = %d %+v, want 200 with queue_inflight 1", status, doc)
	}

	// Draining: still the same document, now 503 + draining=true, with the
	// in-flight work still visible while the drain completes it.
	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	shutDone := make(chan struct{})
	go func() {
		defer close(shutDone)
		srv.Shutdown(shutCtx)
	}()
	for !srv.Draining() {
		time.Sleep(time.Millisecond)
	}
	status, doc = getReadiness(t, ts.URL)
	if status != http.StatusServiceUnavailable || doc.Status != "draining" || !doc.Draining {
		t.Fatalf("draining readiness = %d %+v", status, doc)
	}
	if doc.QueueInflight != 1 {
		t.Fatalf("draining readiness lost the in-flight count: %+v", doc)
	}

	close(release)
	<-reqDone
	<-shutDone
}
