package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"whisper/internal/experiments"
	"whisper/internal/obs"
)

// post sends one request to the handler and returns status, body, and the
// X-Whisper-Cache header. It is called from helper goroutines, so failures
// are reported with Error (valid off the test goroutine), not Fatal.
func post(t *testing.T, url string, req Request) (int, []byte, string) {
	t.Helper()
	payload, err := json.Marshal(req)
	if err != nil {
		t.Error(err)
		return -1, nil, ""
	}
	resp, err := http.Post(url+"/v1/run", "application/json", bytes.NewReader(payload))
	if err != nil {
		t.Error(err)
		return -1, nil, ""
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Error(err)
		return -1, nil, ""
	}
	return resp.StatusCode, body, resp.Header.Get("X-Whisper-Cache")
}

// TestServedBytesIdenticalToDirect is the serving soundness pin: the body a
// daemon serves — cold, from cache, and via a coalesced burst — is
// byte-identical to the same experiment run directly through
// internal/experiments, and direct runs agree at every parallelism.
func TestServedBytesIdenticalToDirect(t *testing.T) {
	req := Request{Experiment: "throughput", ThroughputBytes: 4}

	direct1, err := Execute(context.Background(), req, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	direct4, err := Execute(context.Background(), req, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(direct1, direct4) {
		t.Fatal("direct execution differs between -parallel 1 and 4")
	}

	// The envelope's rendered text must be the exact sweep rendering the CLI
	// (cmd/tetbench, via the same registry) prints.
	var env Result
	if err := json.Unmarshal(direct1, &env); err != nil {
		t.Fatal(err)
	}
	sr, err := experiments.RunSweep(experiments.Serial(), "throughput",
		experiments.SweepParams{Seed: env.Request.Seed, ThroughputBytes: 4})
	if err != nil {
		t.Fatal(err)
	}
	if env.Rendered != sr.Rendered {
		t.Fatalf("envelope rendering diverged from direct RunSweep:\n%q\n%q", env.Rendered, sr.Rendered)
	}

	srv, err := New(Config{Parallel: 2})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	status, cold, path := post(t, ts.URL, req)
	if status != http.StatusOK || path != cacheMiss {
		t.Fatalf("cold: status %d, cache %q", status, path)
	}
	if !bytes.Equal(cold, direct1) {
		t.Fatalf("cold body differs from direct execution:\n%s\n---\n%s", cold, direct1)
	}
	status, hot, path := post(t, ts.URL, req)
	if status != http.StatusOK || path != cacheHit {
		t.Fatalf("cached: status %d, cache %q", status, path)
	}
	if !bytes.Equal(hot, direct1) {
		t.Fatal("cached body differs from direct execution")
	}

	// Concurrent burst on a fresh (cold) server: whatever mix of miss /
	// coalesced / hit each caller lands on, every body must be the same
	// canonical bytes.
	srv2, err := New(Config{Parallel: 2})
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()
	const burst = 6
	var wg sync.WaitGroup
	bodies := make([][]byte, burst)
	paths := make([]string, burst)
	for i := 0; i < burst; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			status, body, path := post(t, ts2.URL, req)
			if status != http.StatusOK {
				t.Errorf("burst %d: status %d", i, status)
			}
			bodies[i], paths[i] = body, path
		}()
	}
	wg.Wait()
	for i := range bodies {
		if !bytes.Equal(bodies[i], direct1) {
			t.Fatalf("burst body %d (cache %q) differs from direct execution", i, paths[i])
		}
	}
}

// stubServer builds a Server whose execution is replaced by run, plus the
// registry it reports into.
func stubServer(t *testing.T, cfg Config, run func(ctx context.Context, req Request) ([]byte, error)) (*Server, *obs.Registry) {
	t.Helper()
	reg := obs.NewRegistry()
	cfg.Obs = reg
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv.run = run
	return srv, reg
}

// TestCoalescedBurstExecutesOnce deterministically pins the coalescing
// contract: one execution serves a whole burst of identical requests.
func TestCoalescedBurstExecutesOnce(t *testing.T) {
	var runs atomic.Int64
	started := make(chan struct{})
	release := make(chan struct{})
	srv, reg := stubServer(t, Config{}, func(ctx context.Context, req Request) ([]byte, error) {
		runs.Add(1)
		close(started)
		<-release
		return []byte(`{"stub":true}`), nil
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	req := Request{Experiment: "table2"}
	const followers = 4
	var wg sync.WaitGroup
	statuses := make([]string, followers+1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, _, statuses[0] = post(t, ts.URL, req)
	}()
	<-started // leader is executing; the flight entry is registered
	for i := 1; i <= followers; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, _, statuses[i] = post(t, ts.URL, req)
		}()
	}
	// Wait until every follower's request is counted server-side, then let
	// the leader finish.
	deadline := time.Now().Add(5 * time.Second)
	for reg.Counter("server.requests", obs.L("experiment", "table2")).Value() < followers+1 {
		if time.Now().After(deadline) {
			t.Fatal("followers never arrived")
		}
		time.Sleep(time.Millisecond)
	}
	time.Sleep(20 * time.Millisecond) // let them pass the cache check into the flight
	close(release)
	wg.Wait()

	if got := runs.Load(); got != 1 {
		t.Fatalf("execution ran %d times for one burst, want 1", got)
	}
	var miss, coalesced int
	for _, s := range statuses {
		switch s {
		case cacheMiss:
			miss++
		case cacheCoalesced:
			coalesced++
		}
	}
	if miss != 1 || coalesced != followers {
		t.Fatalf("cache paths = %v, want 1 miss + %d coalesced", statuses, followers)
	}
}

// TestBackpressure429 checks the bounded queue degrades into an honest 429
// with Retry-After once slots and waiting spots are exhausted.
func TestBackpressure429(t *testing.T) {
	started := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	srv, _ := stubServer(t, Config{MaxInflight: 1, MaxQueue: 0}, func(ctx context.Context, req Request) ([]byte, error) {
		once.Do(func() { close(started) })
		<-release
		return []byte("{}"), nil
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	// Release the leader before ts.Close waits on its request.
	leaderDone := make(chan struct{})
	defer func() { close(release); <-leaderDone }()

	go func() {
		defer close(leaderDone)
		post(t, ts.URL, Request{Experiment: "table2"})
	}()
	<-started

	payload, _ := json.Marshal(Request{Experiment: "table3"})
	resp, err := http.Post(ts.URL+"/v1/run", "application/json", bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
}

// TestShutdownDrainsInflight is the graceful-drain acceptance pin: with
// requests in flight, Shutdown completes every one of them, refuses new
// work, leaks no goroutines, and leaves the registry readable for the final
// metrics flush.
func TestShutdownDrainsInflight(t *testing.T) {
	baseline := runtime.NumGoroutine()

	var inflight atomic.Int64
	srv, reg := stubServer(t, Config{MaxInflight: 4}, func(ctx context.Context, req Request) ([]byte, error) {
		inflight.Add(1)
		defer inflight.Add(-1)
		select {
		case <-time.After(150 * time.Millisecond):
			return []byte(fmt.Sprintf(`{"req":%q}`, req.Experiment)), nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	exps := []string{"table2", "table3", "fig4"}
	statuses := make([]int, len(exps))
	bodies := make([][]byte, len(exps))
	var wg sync.WaitGroup
	for i, e := range exps {
		i, e := i, e
		wg.Add(1)
		go func() {
			defer wg.Done()
			statuses[i], bodies[i], _ = post(t, ts.URL, Request{Experiment: e})
		}()
	}
	for inflight.Load() < int64(len(exps)) {
		time.Sleep(time.Millisecond)
	}

	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	wg.Wait()

	for i, status := range statuses {
		if status != http.StatusOK {
			t.Errorf("in-flight request %d finished %d during drain, want 200", i, status)
		}
		if !strings.Contains(string(bodies[i]), exps[i]) {
			t.Errorf("request %d body = %q", i, bodies[i])
		}
	}

	// New work is refused while (and after) draining.
	status, _, _ := post(t, ts.URL, Request{Experiment: "noise"})
	if status != http.StatusServiceUnavailable {
		t.Fatalf("post-drain request got %d, want 503", status)
	}

	// The registry stays readable for the final flush and records the drain.
	snap := reg.Snapshot()
	if snap.Gauges["server.draining"] != 1 {
		t.Fatal("drain not recorded in metrics")
	}
	if snap.Counters[`server.responses{cache=miss,experiment=table2}`] == 0 &&
		snap.Counters[`server.responses{cache=miss,experiment=table3}`] == 0 {
		t.Fatalf("drained executions missing from metrics: %v", snap.Counters)
	}

	// No goroutine may outlive the drain (the HTTP test server keeps a few
	// idle ones; poll until we are back near the baseline).
	ts.Close()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if g := runtime.NumGoroutine(); g <= baseline+2 {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutines leaked: %d baseline, %d after drain\n%s",
				baseline, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestShutdownDeadlineCancelsExecutions checks the other drain arm: when the
// drain context expires, in-flight executions are cancelled through their
// context and Shutdown still waits for them to unwind.
func TestShutdownDeadlineCancelsExecutions(t *testing.T) {
	started := make(chan struct{})
	srv, _ := stubServer(t, Config{}, func(ctx context.Context, req Request) ([]byte, error) {
		close(started)
		<-ctx.Done() // only a drain cancellation can end this execution
		return nil, ctx.Err()
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	done := make(chan int, 1)
	go func() {
		status, _, _ := post(t, ts.URL, Request{Experiment: "table2"})
		done <- status
	}()
	<-started

	shutCtx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err == nil {
		t.Fatal("Shutdown reported success although the drain deadline expired")
	}
	select {
	case status := <-done:
		if status != http.StatusServiceUnavailable {
			t.Fatalf("cancelled request got %d, want 503", status)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled request never completed")
	}
}

// TestRequestTimeout checks the per-request deadline cancels one execution
// without touching the server.
func TestRequestTimeout(t *testing.T) {
	srv, _ := stubServer(t, Config{RequestTimeout: 20 * time.Millisecond}, func(ctx context.Context, req Request) ([]byte, error) {
		<-ctx.Done()
		return nil, ctx.Err()
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	status, _, _ := post(t, ts.URL, Request{Experiment: "table2"})
	if status != http.StatusServiceUnavailable {
		t.Fatalf("timed-out request got %d, want 503", status)
	}
}

// TestBadRequests checks the 4xx surface.
func TestBadRequests(t *testing.T) {
	srv, _ := stubServer(t, Config{}, func(ctx context.Context, req Request) ([]byte, error) {
		return []byte("{}"), nil
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	status, _, _ := post(t, ts.URL, Request{Experiment: "unknown"})
	if status != http.StatusBadRequest {
		t.Fatalf("unknown experiment got %d, want 400", status)
	}
	resp, err := http.Post(ts.URL+"/v1/run", "application/json", strings.NewReader(`{"experiment":"table2","bogus":1}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown field got %d, want 400", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/v1/run")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/run got %d, want 405", resp.StatusCode)
	}
}

// TestIndexMetricsTraces smoke-checks the read-only endpoints.
func TestIndexMetricsTraces(t *testing.T) {
	srv, _ := stubServer(t, Config{}, func(ctx context.Context, req Request) ([]byte, error) {
		return []byte("{}"), nil
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	var idx struct {
		Experiments []string `json:"experiments"`
		Attacks     []string `json:"attacks"`
	}
	resp, err := http.Get(ts.URL + "/v1/experiments")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&idx); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(idx.Experiments) == 0 || len(idx.Attacks) == 0 {
		t.Fatalf("index empty: %+v", idx)
	}

	post(t, ts.URL, Request{Experiment: "table2"})
	resp, err = http.Get(ts.URL + "/metrics?format=json")
	if err != nil {
		t.Fatal(err)
	}
	var snap obs.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if snap.Counters[`server.requests{experiment=table2}`] != 1 {
		t.Fatalf("request not counted: %v", snap.Counters)
	}
	if _, ok := snap.Gauges[`server.machines.gets{pool=sweep}`]; !ok {
		t.Fatalf("machine-pool gauges missing: %v", snap.Gauges)
	}

	resp, err = http.Get(ts.URL + "/traces")
	if err != nil {
		t.Fatal(err)
	}
	tr, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(tr, []byte("server.run.table2")) {
		t.Fatal("request span missing from the exported trace")
	}
}

// TestMetricsSnapshotMemoGauges pins the warm-state memo's /metrics surface
// in both machine renderings: the JSON snapshot carries all five
// server.snapshots.* gauges, and the Prometheus exposition renders each as a
// typed gauge family that passes the linter. A renamed gauge or a rendering
// that drops the family breaks dashboards silently, so both are golden here.
func TestMetricsSnapshotMemoGauges(t *testing.T) {
	srv, _ := stubServer(t, Config{}, func(ctx context.Context, req Request) ([]byte, error) {
		return []byte("{}"), nil
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	gauges := []string{
		"server.snapshots.hits",
		"server.snapshots.misses",
		"server.snapshots.evictions",
		"server.snapshots.entries",
		"server.snapshots.resident_bytes",
	}

	resp, err := http.Get(ts.URL + "/metrics?format=json")
	if err != nil {
		t.Fatal(err)
	}
	var snap obs.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	for _, g := range gauges {
		if _, ok := snap.Gauges[g]; !ok {
			t.Errorf("JSON rendering missing gauge %s: %v", g, snap.Gauges)
		}
	}

	resp, err = http.Get(ts.URL + "/metrics?format=prom")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	for _, fam := range []string{
		"server_snapshots_hits",
		"server_snapshots_misses",
		"server_snapshots_evictions",
		"server_snapshots_entries",
		"server_snapshots_resident_bytes",
	} {
		if !bytes.Contains(body, []byte("# TYPE "+fam+" gauge")) {
			t.Errorf("Prometheus rendering missing gauge family %s", fam)
		}
	}
	if errs := obs.LintPrometheus(bytes.NewReader(body)); len(errs) != 0 {
		t.Fatalf("Prometheus exposition fails lint: %v", errs)
	}
}
