// Package server is the experiment-serving layer behind cmd/whisperd: an
// HTTP/JSON API over every sweep and attack of internal/experiments, with a
// content-addressed result cache, request coalescing, a bounded admission
// queue with backpressure, and graceful drain.
//
// The soundness of serving cached results rests on the determinism pinned in
// the scheduler and simulator layers: every sweep is a pure function of its
// normalized request — worker count, machine reuse, and completion order
// provably never change a byte — so two requests with equal canonical hashes
// denote the same result, and one execution can serve them all.
package server

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"whisper/internal/core"
	"whisper/internal/cpu"
	"whisper/internal/experiments"
	"whisper/internal/kernel"
	"whisper/internal/obs"
)

// hashVersion is the cache-format epoch. Bump it whenever the envelope
// layout, a sweep's output format, or the simulator's numbers change: old
// disk-store entries then miss instead of serving stale bytes.
const hashVersion = "whisper-req-v1"

// Request names one servable computation. Experiment is a sweep name from
// experiments.Sweeps(), "attacks" (the whisper -all suite), or "leak" (the
// per-byte core.Farm Meltdown leak). The zero value of every other field
// means "default"; Normalize resolves them so equal computations hash equal.
type Request struct {
	Experiment string `json:"experiment"`

	// Seed is the deterministic root seed; 0 means the experiment default.
	Seed int64 `json:"seed,omitempty"`

	// Sweep sizing (sweeps only; ignored elsewhere).
	ThroughputBytes int `json:"throughput_bytes,omitempty"`
	KASLRReps       int `json:"kaslr_reps,omitempty"`
	Fig1bBatches    int `json:"fig1b_batches,omitempty"`

	// Attack/leak shaping (attacks and leak only).
	CPU     string   `json:"cpu,omitempty"`     // model microarch or full name
	Secret  string   `json:"secret,omitempty"`  // victim payload to plant
	Attacks []string `json:"attacks,omitempty"` // nil = every family
	KPTI    bool     `json:"kpti,omitempty"`
	FLARE   bool     `json:"flare,omitempty"`
	Docker  bool     `json:"docker,omitempty"`
}

// Default values for the attack-shaped experiments, matching cmd/whisper's
// flag defaults.
const (
	DefaultCPU    = "Kaby Lake"
	DefaultSecret = "squeamish ossifrage"
	// DefaultAttackSeed matches cmd/whisper's -seed default.
	DefaultAttackSeed = 1
)

// isAttackShaped reports whether the experiment takes CPU/secret/kernel
// options instead of sweep sizing.
func isAttackShaped(name string) bool { return name == "attacks" || name == "leak" }

// Experiments returns every experiment name the server can run, sorted.
func Experiments() []string {
	names := append(experiments.Sweeps(), "attacks", "leak")
	sort.Strings(names)
	return names
}

// Normalize resolves defaults and drops fields foreign to the experiment,
// returning the canonical request two different spellings of the same
// computation collapse to. It errors on an unknown experiment, attack
// family, or CPU model, so a hash is only ever minted for a runnable
// request.
func (r Request) Normalize() (Request, error) {
	known := false
	for _, name := range Experiments() {
		if r.Experiment == name {
			known = true
			break
		}
	}
	if !known {
		return Request{}, fmt.Errorf("server: unknown experiment %q (have %v)", r.Experiment, Experiments())
	}
	if isAttackShaped(r.Experiment) {
		if r.Seed == 0 {
			r.Seed = DefaultAttackSeed
		}
		if r.CPU == "" {
			r.CPU = DefaultCPU
		}
		model, ok := ModelByName(r.CPU)
		if !ok {
			return Request{}, fmt.Errorf("server: unknown CPU %q", r.CPU)
		}
		r.CPU = model.Name // canonical spelling: microarch alias → full name
		if r.Secret == "" {
			r.Secret = DefaultSecret
		}
		if r.Experiment == "leak" {
			r.Attacks = nil // the leak is one fixed attack
		} else if len(r.Attacks) > 0 {
			sel, err := canonicalAttacks(r.Attacks)
			if err != nil {
				return Request{}, err
			}
			r.Attacks = sel
		} else {
			r.Attacks = nil
		}
		r.ThroughputBytes, r.KASLRReps, r.Fig1bBatches = 0, 0, 0
	} else {
		p := experiments.SweepParams{
			Seed:            r.Seed,
			ThroughputBytes: r.ThroughputBytes,
			KASLRReps:       r.KASLRReps,
			Fig1bBatches:    r.Fig1bBatches,
		}.Normalize()
		r.Seed = p.Seed
		r.ThroughputBytes = p.ThroughputBytes
		r.KASLRReps = p.KASLRReps
		r.Fig1bBatches = p.Fig1bBatches
		r.CPU, r.Secret, r.Attacks = "", "", nil
		r.KPTI, r.FLARE, r.Docker = false, false, false
	}
	return r, nil
}

// canonicalAttacks validates and orders an attack filter; a filter naming
// every family canonicalizes to nil (the "all" spelling).
func canonicalAttacks(names []string) ([]string, error) {
	all := experiments.AttackNames()
	asked := make(map[string]bool, len(names))
	for _, name := range names {
		ok := false
		for _, known := range all {
			if name == known {
				ok = true
				break
			}
		}
		if !ok {
			return nil, fmt.Errorf("server: unknown attack %q (have %v)", name, all)
		}
		asked[name] = true
	}
	if len(asked) == len(all) {
		return nil, nil
	}
	sel := make([]string, 0, len(asked))
	for _, name := range all {
		if asked[name] {
			sel = append(sel, name)
		}
	}
	return sel, nil
}

// ModelByName resolves a CPU model by microarchitecture or full name,
// case-insensitively — the same lookup cmd/whisper's -cpu flag does.
func ModelByName(name string) (cpu.Model, bool) {
	for _, m := range cpu.AllModels() {
		if strings.EqualFold(m.Microarch, name) || strings.EqualFold(m.Name, name) {
			return m, true
		}
	}
	return cpu.Model{}, false
}

// Hash returns the canonical content address of a normalized request:
// SHA-256 over the versioned canonical JSON. Two requests hash equal iff
// they denote the same computation; execution knobs (worker count, cache
// placement, telemetry) are deliberately absent.
func (r Request) Hash() string {
	b, err := json.Marshal(r)
	if err != nil {
		// Request is a plain struct of scalars and strings; Marshal cannot
		// fail on it.
		panic(fmt.Sprintf("server: hashing request: %v", err))
	}
	sum := sha256.Sum256(append([]byte(hashVersion+"\n"), b...))
	return hex.EncodeToString(sum[:])
}

// LeakOutcome is the structured result of the "leak" experiment: the
// core.Farm per-byte Meltdown leak.
type LeakOutcome struct {
	Data   string  `json:"data"`
	Cycles uint64  `json:"cycles"`
	Bps    float64 `json:"bps"`
	CPU    string  `json:"cpu"`
}

// Result is the served envelope: the canonical request, its hash, the
// rendered text (when the experiment has a CLI rendering), and the
// structured result. Its JSON encoding is the byte sequence the cache
// stores and every path — cold, cached, coalesced, remote CLI — returns.
type Result struct {
	Hash     string          `json:"hash"`
	Request  Request         `json:"request"`
	Rendered string          `json:"rendered,omitempty"`
	Result   json.RawMessage `json:"result,omitempty"`
}

// Execute runs a request directly — no cache, no queue — and returns the
// canonical envelope bytes. This is the reference implementation the daemon's
// cached and coalesced paths must be byte-identical to (the identity test
// pins it), and the engine behind `whisperd -oneshot`.
func Execute(ctx context.Context, req Request, parallel int, reg *obs.Registry) ([]byte, error) {
	norm, err := req.Normalize()
	if err != nil {
		return nil, err
	}
	ex := experiments.Exec{Ctx: ctx, Parallel: parallel, Obs: reg}
	env := Result{Hash: norm.Hash(), Request: norm}
	switch {
	case norm.Experiment == "attacks":
		model, _ := ModelByName(norm.CPU)
		cfg := kernel.Config{KASLR: true, KPTI: norm.KPTI, FLARE: norm.FLARE, Docker: norm.Docker}
		rendered, err := experiments.AttackSuite(ex, model, cfg, []byte(norm.Secret), norm.Seed, norm.Attacks)
		if err != nil {
			return nil, err
		}
		env.Rendered = rendered
	case norm.Experiment == "leak":
		model, _ := ModelByName(norm.CPU)
		cfg := kernel.Config{KASLR: true, KPTI: norm.KPTI, FLARE: norm.FLARE, Docker: norm.Docker}
		f := &core.Farm{
			Model: model, Config: cfg, RootSeed: norm.Seed,
			Parallel: parallel, Ctx: ctx, Obs: reg,
		}
		res, err := f.LeakSecret([]byte(norm.Secret))
		if err != nil {
			return nil, err
		}
		out, err := json.Marshal(LeakOutcome{
			Data: string(res.Data), Cycles: res.Cycles, Bps: res.Bps, CPU: model.Name,
		})
		if err != nil {
			return nil, err
		}
		env.Result = out
		env.Rendered = fmt.Sprintf("TET-Meltdown (replica farm) leaked %q\n  critical path %d simulated cycles (%.1f B/s at %.1f GHz)\n",
			res.Data, res.Cycles, res.Bps, model.ClockHz/1e9)
	default:
		sr, err := experiments.RunSweep(ex, norm.Experiment, experiments.SweepParams{
			Seed:            norm.Seed,
			ThroughputBytes: norm.ThroughputBytes,
			KASLRReps:       norm.KASLRReps,
			Fig1bBatches:    norm.Fig1bBatches,
		})
		if err != nil {
			return nil, err
		}
		env.Rendered = sr.Rendered
		if sr.Result != nil {
			out, err := json.Marshal(sr.Result)
			if err != nil {
				return nil, err
			}
			env.Result = out
		}
	}
	body, err := json.MarshalIndent(env, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(body, '\n'), nil
}
