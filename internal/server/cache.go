package server

import (
	"container/list"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"whisper/internal/obs"
)

// cache is the content-addressed result store: an in-memory LRU over the
// envelope bytes, optionally backed by an on-disk store that survives daemon
// restarts. Keys are canonical request hashes (Request.Hash), so a hit is
// sound by construction — the determinism contract says equal hashes mean
// byte-equal results.
type cache struct {
	mu      sync.Mutex
	entries map[string]*list.Element
	order   *list.List // front = most recent
	maxN    int
	bytes   int64

	disk *diskStore // nil when no -cache-dir

	reg *obs.Registry
}

// cacheEntry is one resident result.
type cacheEntry struct {
	hash string
	body []byte
}

// newCache builds a cache holding up to maxEntries results in memory
// (<= 0 disables the memory tier) and, when dir is non-empty, mirroring
// every result into dir.
func newCache(maxEntries int, dir string, reg *obs.Registry) (*cache, error) {
	c := &cache{
		entries: make(map[string]*list.Element),
		order:   list.New(),
		maxN:    maxEntries,
		reg:     reg,
	}
	if dir != "" {
		ds, err := newDiskStore(dir)
		if err != nil {
			return nil, err
		}
		c.disk = ds
	}
	return c, nil
}

// Cache tier names, reported in metrics labels and cache-hit log events.
const (
	tierMemory = "memory"
	tierDisk   = "disk"
)

// get returns the cached body for hash and the tier that served it,
// consulting memory then disk. A disk hit is promoted into the memory tier.
func (c *cache) get(hash string) (body []byte, tier string, ok bool) {
	c.mu.Lock()
	if el, ok := c.entries[hash]; ok {
		c.order.MoveToFront(el)
		body := el.Value.(*cacheEntry).body
		c.mu.Unlock()
		c.reg.Counter("server.cache.hits", obs.L("tier", tierMemory)).Inc()
		return body, tierMemory, true
	}
	c.mu.Unlock()
	if c.disk != nil {
		if body, ok := c.disk.get(hash); ok {
			c.reg.Counter("server.cache.hits", obs.L("tier", tierDisk)).Inc()
			c.putMemory(hash, body)
			return body, tierDisk, true
		}
	}
	c.reg.Counter("server.cache.misses").Inc()
	return nil, "", false
}

// put stores a freshly computed body in every tier.
func (c *cache) put(hash string, body []byte) {
	c.putMemory(hash, body)
	if c.disk != nil {
		if err := c.disk.put(hash, body); err != nil {
			// The disk tier is an optimisation; a write failure only costs a
			// future cold run.
			c.reg.Counter("server.cache.disk.errors").Inc()
		}
	}
}

// putMemory inserts into the LRU tier, evicting from the back past capacity.
func (c *cache) putMemory(hash string, body []byte) {
	if c.maxN <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[hash]; ok {
		c.order.MoveToFront(el)
		return
	}
	c.entries[hash] = c.order.PushFront(&cacheEntry{hash: hash, body: body})
	c.bytes += int64(len(body))
	for c.order.Len() > c.maxN {
		back := c.order.Back()
		ent := back.Value.(*cacheEntry)
		c.order.Remove(back)
		delete(c.entries, ent.hash)
		c.bytes -= int64(len(ent.body))
		c.reg.Counter("server.cache.evictions").Inc()
	}
	c.reg.Gauge("server.cache.entries").Set(float64(c.order.Len()))
	c.reg.Gauge("server.cache.bytes").Set(float64(c.bytes))
}

// diskStore persists results as <dir>/<hh>/<hash>.json, sharded by the
// first hash byte to keep directories small. Writes go through a temp file
// and rename, so a crashed write never leaves a truncated entry a later get
// could serve.
type diskStore struct {
	dir string
}

func newDiskStore(dir string) (*diskStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("server: cache dir: %w", err)
	}
	return &diskStore{dir: dir}, nil
}

// path maps a hash to its entry file; hashes are hex, so the shard prefix is
// always a safe directory name.
func (d *diskStore) path(hash string) string {
	if len(hash) < 2 || strings.ContainsAny(hash, "/\\.") {
		return filepath.Join(d.dir, "_", hash+".json")
	}
	return filepath.Join(d.dir, hash[:2], hash+".json")
}

func (d *diskStore) get(hash string) ([]byte, bool) {
	body, err := os.ReadFile(d.path(hash))
	if err != nil {
		return nil, false
	}
	return body, true
}

func (d *diskStore) put(hash string, body []byte) error {
	p := d.path(hash)
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(filepath.Dir(p), "."+hash+".tmp*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(body); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), p)
}

// flight coalesces concurrent identical requests: the first caller for a
// hash executes, the rest block on the same call and share its bytes (and
// its error). This is the singleflight pattern; soundness again rides on the
// determinism contract — all callers asked for the same pure computation.
type flight struct {
	mu    sync.Mutex
	calls map[string]*flightCall
}

type flightCall struct {
	done chan struct{}
	body []byte
	err  error
}

func newFlight() *flight {
	return &flight{calls: make(map[string]*flightCall)}
}

// do runs fn once per in-flight hash. shared reports whether this caller
// piggybacked on another's execution.
func (f *flight) do(hash string, fn func() ([]byte, error)) (body []byte, shared bool, err error) {
	f.mu.Lock()
	if call, ok := f.calls[hash]; ok {
		f.mu.Unlock()
		<-call.done
		return call.body, true, call.err
	}
	call := &flightCall{done: make(chan struct{})}
	f.calls[hash] = call
	f.mu.Unlock()

	call.body, call.err = fn()
	f.mu.Lock()
	delete(f.calls, hash)
	f.mu.Unlock()
	close(call.done)
	return call.body, false, call.err
}
