package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"time"

	"whisper/internal/core"
	"whisper/internal/cpu"
	"whisper/internal/experiments"
	"whisper/internal/obs"
	"whisper/internal/pmu"
)

// Config sizes one Server.
type Config struct {
	// Parallel is the sched worker count each execution runs with (<= 0:
	// GOMAXPROCS). Results are byte-identical at every setting; this only
	// budgets CPU per request.
	Parallel int
	// MaxInflight bounds concurrently executing requests (<= 0: NumCPU).
	MaxInflight int
	// MaxQueue bounds requests waiting for a slot beyond MaxInflight; a
	// request past both bounds is rejected with 429 (< 0: 0).
	MaxQueue int
	// RequestTimeout caps one execution's wall clock (<= 0: no deadline).
	RequestTimeout time.Duration
	// CacheEntries bounds the in-memory result LRU (<= 0 with no CacheDir:
	// DefaultCacheEntries).
	CacheEntries int
	// CacheDir, when set, persists results on disk (content-addressed by
	// request hash), surviving restarts.
	CacheDir string
	// Obs receives server telemetry and is what /metrics and /traces serve;
	// nil allocates a fresh registry.
	Obs *obs.Registry
}

// DefaultCacheEntries is the memory LRU capacity when none is configured.
const DefaultCacheEntries = 256

// Server serves experiment results over HTTP. Zero or one execution runs
// per distinct request hash at any instant (coalescing); completed results
// are cached content-addressed; admission is bounded with backpressure; and
// Shutdown drains in-flight work before returning.
type Server struct {
	cfg   Config
	reg   *obs.Registry
	cache *cache
	fl    *flight
	queue *queue

	// run executes one normalized request; tests stub it to control timing.
	run func(ctx context.Context, req Request) ([]byte, error)

	baseCtx  context.Context
	baseStop context.CancelFunc
	inflight sync.WaitGroup

	mu       sync.Mutex
	draining bool
}

// New builds a Server from cfg.
func New(cfg Config) (*Server, error) {
	reg := cfg.Obs
	if reg == nil {
		reg = obs.NewRegistry()
	}
	if cfg.MaxInflight <= 0 {
		cfg.MaxInflight = runtime.NumCPU()
	}
	entries := cfg.CacheEntries
	if entries <= 0 {
		entries = DefaultCacheEntries
	}
	c, err := newCache(entries, cfg.CacheDir, reg)
	if err != nil {
		return nil, err
	}
	ctx, stop := context.WithCancel(context.Background())
	s := &Server{
		cfg:      cfg,
		reg:      reg,
		cache:    c,
		fl:       newFlight(),
		queue:    newQueue(cfg.MaxInflight, cfg.MaxQueue, reg),
		baseCtx:  ctx,
		baseStop: stop,
	}
	s.run = func(ctx context.Context, req Request) ([]byte, error) {
		return Execute(ctx, req, cfg.Parallel, reg)
	}
	return s, nil
}

// Obs returns the server's telemetry registry (what /metrics serves).
func (s *Server) Obs() *obs.Registry { return s.reg }

// Handler returns the daemon's HTTP API.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/run", s.handleRun)
	mux.HandleFunc("/v1/experiments", s.handleExperiments)
	mux.HandleFunc("/healthz", s.handleHealth)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/traces", s.handleTraces)
	return mux
}

// Shutdown drains the server: new requests are refused (503), in-flight
// executions run to completion — or, once ctx expires, are cancelled through
// their context — and Shutdown returns when every execution has finished.
// The obs registry stays readable after drain so the caller can flush
// metrics and traces.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	s.reg.Gauge("server.draining").Set(1)

	done := make(chan struct{})
	go func() {
		s.inflight.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		// Deadline passed: cancel the executions' base context and wait for
		// them to unwind — Shutdown's contract is "no execution survives".
		err = ctx.Err()
		s.baseStop()
		<-done
	}
	s.baseStop()
	return err
}

// Draining reports whether Shutdown has begun.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// errDraining refuses an execution that won a queue slot after Shutdown
// began; the handler maps it to 503.
var errDraining = errors.New("server: draining")

// beginExec atomically checks the drain flag and registers an execution, so
// Shutdown's Wait provably covers every execution that was admitted: an
// execution either registered before draining was set (and Wait blocks on
// it) or is refused.
func (s *Server) beginExec() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return false
	}
	s.inflight.Add(1)
	return true
}

// cacheHeader values for X-Whisper-Cache.
const (
	cacheMiss      = "miss"      // this call executed the sweep
	cacheHit       = "hit"       // served from the content-addressed cache
	cacheCoalesced = "coalesced" // shared another in-flight execution
)

// handleRun is POST /v1/run: decode → normalize → hash → cache/coalesce →
// execute. The response body is the canonical envelope — byte-identical
// across all three cache paths and across daemon instances.
func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	if s.Draining() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	var req Request
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return
	}
	norm, err := req.Normalize()
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	hash := norm.Hash()
	lbl := obs.L("experiment", norm.Experiment)
	s.reg.Counter("server.requests", lbl).Inc()
	sp := s.reg.StartDetachedWallSpan("server.run." + norm.Experiment)
	sp.Attr("hash", hash)
	start := time.Now()
	body, status, err := s.result(r.Context(), norm, hash)
	sp.Attr("cache", status)
	s.reg.Histogram("server.request.us", lbl).Observe(uint64(time.Since(start).Microseconds()))
	if err != nil {
		sp.Attr("error", err.Error())
		sp.End(0)
		s.reg.Counter("server.errors", lbl).Inc()
		switch {
		case errors.Is(err, errBusy):
			w.Header().Set("Retry-After", "1")
			http.Error(w, "server at capacity, retry later", http.StatusTooManyRequests)
		case errors.Is(err, errDraining),
			errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
			http.Error(w, err.Error(), http.StatusServiceUnavailable)
		default:
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
		return
	}
	sp.End(0)
	s.reg.Counter("server.responses", lbl, obs.L("cache", status)).Inc()
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Whisper-Hash", hash)
	w.Header().Set("X-Whisper-Cache", status)
	w.Write(body)
}

// result resolves one normalized request through cache → coalescing → queue
// → execution, returning the envelope bytes and which path served them.
func (s *Server) result(ctx context.Context, norm Request, hash string) ([]byte, string, error) {
	if body, ok := s.cache.get(hash); ok {
		return body, cacheHit, nil
	}
	body, shared, err := s.fl.do(hash, func() ([]byte, error) {
		// The leader queues on the caller's context (an abandoning client
		// frees its queue spot) but executes on the server's base context:
		// coalesced followers must not die with the leader's connection, and
		// drain-cancellation flows through baseCtx.
		if err := s.queue.acquire(ctx); err != nil {
			return nil, err
		}
		defer s.queue.release()
		if !s.beginExec() {
			return nil, errDraining
		}
		defer s.inflight.Done()
		if s.baseCtx.Err() != nil {
			return nil, s.baseCtx.Err()
		}
		runCtx := s.baseCtx
		if s.cfg.RequestTimeout > 0 {
			var cancel context.CancelFunc
			runCtx, cancel = context.WithTimeout(runCtx, s.cfg.RequestTimeout)
			defer cancel()
		}
		body, err := s.run(runCtx, norm)
		if err != nil {
			return nil, err
		}
		s.cache.put(hash, body)
		return body, nil
	})
	status := cacheMiss
	if shared {
		status = cacheCoalesced
		s.reg.Counter("server.coalesced").Inc()
	}
	if err != nil {
		return nil, status, err
	}
	return body, status, nil
}

// experimentsIndex is the GET /v1/experiments document.
type experimentsIndex struct {
	Experiments []string `json:"experiments"`
	Attacks     []string `json:"attacks"`
	Defaults    Request  `json:"defaults"`
}

func (s *Server) handleExperiments(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	def, err := Request{Experiment: "table2"}.Normalize()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	idx := experimentsIndex{
		Experiments: Experiments(),
		Attacks:     experiments.AttackNames(),
		Defaults:    def,
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(idx)
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	if s.Draining() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	fmt.Fprintln(w, "ok")
}

// handleMetrics serves the obs registry snapshot: the aligned text table by
// default, JSON with ?format=json — the same two renderings the CLIs'
// -metrics-out flag writes.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	publishPoolGauges(s.reg)
	snap := s.reg.Snapshot()
	if r.URL.Query().Get("format") == "json" || wantsJSON(r) {
		w.Header().Set("Content-Type", "application/json")
		snap.WriteJSON(w)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	snap.WriteText(w)
}

// handleTraces serves the Perfetto/Chrome trace of everything the registry
// has recorded — request spans included — ready for ui.perfetto.dev.
func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	s.reg.ExportTrace(w, []pmu.Event(nil))
}

func wantsJSON(r *http.Request) bool {
	return strings.Contains(r.Header.Get("Accept"), "application/json")
}

// publishPoolGauges refreshes the machine-reuse gauges from the process-wide
// machine pools. Recycling simulator machines across requests — not just
// within one sweep — is a core reason results are served from one daemon, so
// /metrics surfaces how much reuse the pools actually deliver.
func publishPoolGauges(reg *obs.Registry) {
	for _, p := range []struct {
		name  string
		stats cpu.PoolStats
	}{
		{"sweep", experiments.MachinePoolStats()},
		{"farm", core.FarmPoolStats()},
	} {
		lbl := obs.L("pool", p.name)
		reg.Gauge("server.machines.gets", lbl).Set(float64(p.stats.Gets))
		reg.Gauge("server.machines.reuses", lbl).Set(float64(p.stats.Reuses))
		reg.Gauge("server.machines.idle", lbl).Set(float64(p.stats.Idle))
	}
}
