package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"time"

	"whisper/internal/core"
	"whisper/internal/cpu"
	"whisper/internal/experiments"
	"whisper/internal/obs"
	"whisper/internal/obs/logging"
	"whisper/internal/pmu"
)

// Config sizes one Server.
type Config struct {
	// Parallel is the sched worker count each execution runs with (<= 0:
	// GOMAXPROCS). Results are byte-identical at every setting; this only
	// budgets CPU per request.
	Parallel int
	// MaxInflight bounds concurrently executing requests (<= 0: NumCPU).
	MaxInflight int
	// MaxQueue bounds requests waiting for a slot beyond MaxInflight; a
	// request past both bounds is rejected with 429 (< 0: 0).
	MaxQueue int
	// RequestTimeout caps one execution's wall clock (<= 0: no deadline).
	RequestTimeout time.Duration
	// CacheEntries bounds the in-memory result LRU (<= 0 with no CacheDir:
	// DefaultCacheEntries).
	CacheEntries int
	// CacheDir, when set, persists results on disk (content-addressed by
	// request hash), surviving restarts.
	CacheDir string
	// Obs receives server telemetry and is what /metrics and /traces serve;
	// nil allocates a fresh registry.
	Obs *obs.Registry
	// Log receives structured serving-path logs (access lines, admission
	// rejects, cache tier hits, coalesces, drain progress); nil discards.
	Log *slog.Logger
}

// DefaultCacheEntries is the memory LRU capacity when none is configured.
const DefaultCacheEntries = 256

// Response headers the serving path sets on every /v1/run reply; the
// request-ID header additionally rides on every other endpoint and every
// error path.
const (
	RequestIDHeader = "X-Whisper-Request-Id"
	HashHeader      = "X-Whisper-Hash"
	CacheHeader     = "X-Whisper-Cache"
)

// Server serves experiment results over HTTP. Zero or one execution runs
// per distinct request hash at any instant (coalescing); completed results
// are cached content-addressed; admission is bounded with backpressure; and
// Shutdown drains in-flight work before returning.
type Server struct {
	cfg   Config
	reg   *obs.Registry
	log   *slog.Logger
	cache *cache
	fl    *flight
	queue *queue

	// run executes one normalized request; tests stub it to control timing.
	run func(ctx context.Context, req Request) ([]byte, error)

	baseCtx  context.Context
	baseStop context.CancelFunc
	inflight sync.WaitGroup

	mu       sync.Mutex
	draining bool
}

// New builds a Server from cfg.
func New(cfg Config) (*Server, error) {
	reg := cfg.Obs
	if reg == nil {
		reg = obs.NewRegistry()
	}
	log := cfg.Log
	if log == nil {
		log = logging.Discard()
	}
	if cfg.MaxInflight <= 0 {
		cfg.MaxInflight = runtime.NumCPU()
	}
	entries := cfg.CacheEntries
	if entries <= 0 {
		entries = DefaultCacheEntries
	}
	c, err := newCache(entries, cfg.CacheDir, reg)
	if err != nil {
		return nil, err
	}
	ctx, stop := context.WithCancel(context.Background())
	s := &Server{
		cfg:      cfg,
		reg:      reg,
		log:      log,
		cache:    c,
		fl:       newFlight(),
		queue:    newQueue(cfg.MaxInflight, cfg.MaxQueue, reg),
		baseCtx:  ctx,
		baseStop: stop,
	}
	s.run = func(ctx context.Context, req Request) ([]byte, error) {
		return Execute(ctx, req, cfg.Parallel, reg)
	}
	return s, nil
}

// Obs returns the server's telemetry registry (what /metrics serves).
func (s *Server) Obs() *obs.Registry { return s.reg }

// Handler returns the daemon's HTTP API. Every route runs under the
// request-ID middleware: the ID is accepted from (or minted into)
// X-Whisper-Request-Id, echoed on every response — error paths included —
// threaded through the context into execution spans, and closed out with a
// structured access-log line.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/run", s.handleRun)
	mux.HandleFunc("/v1/experiments", s.handleExperiments)
	mux.HandleFunc("/healthz", s.handleHealth)
	mux.HandleFunc("/readyz", s.handleReady)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/traces", s.handleTraces)
	return s.withRequestScope(mux)
}

// statusRecorder captures the status and body size an inner handler wrote,
// for the access-log line.
type statusRecorder struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (r *statusRecorder) WriteHeader(status int) {
	r.status = status
	r.ResponseWriter.WriteHeader(status)
}

func (r *statusRecorder) Write(b []byte) (int, error) {
	n, err := r.ResponseWriter.Write(b)
	r.bytes += int64(n)
	return n, err
}

// withRequestScope is the request-ID + access-log middleware.
func (s *Server) withRequestScope(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := r.Header.Get(RequestIDHeader)
		if !obs.ValidRequestID(id) {
			id = obs.NewRequestID()
		}
		w.Header().Set(RequestIDHeader, id)
		ctx := logging.WithRequestID(r.Context(), s.log, id)
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		start := time.Now()
		h.ServeHTTP(rec, r.WithContext(ctx))
		if log := logging.From(ctx); log.Enabled(ctx, slog.LevelInfo) {
			inflight, waiting := s.queue.depth()
			log.LogAttrs(ctx, slog.LevelInfo, "request",
				slog.String("method", r.Method),
				slog.String("path", r.URL.Path),
				slog.Int("status", rec.status),
				slog.Int64("bytes", rec.bytes),
				slog.Int64("dur_us", time.Since(start).Microseconds()),
				slog.String("cache", rec.Header().Get(CacheHeader)),
				slog.Int("queue_inflight", inflight),
				slog.Int("queue_waiting", waiting),
			)
		}
	})
}

// errorBody is the JSON error envelope every non-200 response carries; the
// request ID rides inside so a failed call is correlatable from the body
// alone (clients echo it into their errors).
type errorBody struct {
	Error     string `json:"error"`
	Status    int    `json:"status"`
	RequestID string `json:"request_id,omitempty"`
}

// writeError replaces http.Error on every serving path: a structured JSON
// body with an explicit Content-Type and the request ID echoed both in the
// (middleware-set) header and the body.
func writeError(w http.ResponseWriter, r *http.Request, status int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.Encode(errorBody{Error: msg, Status: status, RequestID: obs.RequestIDFrom(r.Context())})
}

// Shutdown drains the server: new requests are refused (503), in-flight
// executions run to completion — or, once ctx expires, are cancelled through
// their context — and Shutdown returns when every execution has finished.
// The obs registry stays readable after drain so the caller can flush
// metrics and traces.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	s.reg.Gauge("server.draining").Set(1)
	inflight, waiting := s.queue.depth()
	s.log.LogAttrs(ctx, slog.LevelInfo, "drain started",
		slog.Int("queue_inflight", inflight), slog.Int("queue_waiting", waiting))

	done := make(chan struct{})
	go func() {
		s.inflight.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		// Deadline passed: cancel the executions' base context and wait for
		// them to unwind — Shutdown's contract is "no execution survives".
		err = ctx.Err()
		s.log.LogAttrs(ctx, slog.LevelWarn, "drain deadline expired, cancelling executions",
			slog.String("error", err.Error()))
		s.baseStop()
		<-done
	}
	s.baseStop()
	s.log.LogAttrs(context.Background(), slog.LevelInfo, "drain complete")
	return err
}

// Draining reports whether Shutdown has begun.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// errDraining refuses an execution that won a queue slot after Shutdown
// began; the handler maps it to 503.
var errDraining = errors.New("server: draining")

// beginExec atomically checks the drain flag and registers an execution, so
// Shutdown's Wait provably covers every execution that was admitted: an
// execution either registered before draining was set (and Wait blocks on
// it) or is refused.
func (s *Server) beginExec() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return false
	}
	s.inflight.Add(1)
	return true
}

// cacheHeader values for X-Whisper-Cache.
const (
	cacheMiss      = "miss"      // this call executed the sweep
	cacheHit       = "hit"       // served from the content-addressed cache
	cacheCoalesced = "coalesced" // shared another in-flight execution
)

// handleRun is POST /v1/run: decode → normalize → hash → cache/coalesce →
// execute. The response body is the canonical envelope — byte-identical
// across all three cache paths and across daemon instances.
func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, r, http.StatusMethodNotAllowed, "POST only")
		return
	}
	if s.Draining() {
		writeError(w, r, http.StatusServiceUnavailable, "draining")
		return
	}
	var req Request
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, r, http.StatusBadRequest, "bad request: "+err.Error())
		return
	}
	norm, err := req.Normalize()
	if err != nil {
		writeError(w, r, http.StatusBadRequest, err.Error())
		return
	}
	ctx := r.Context()
	log := logging.From(ctx)
	hash := norm.Hash()
	lbl := obs.L("experiment", norm.Experiment)
	s.reg.Counter("server.requests", lbl).Inc()
	sp := s.reg.StartDetachedWallSpan("server.run." + norm.Experiment)
	sp.Attr("hash", hash)
	if id := obs.RequestIDFrom(ctx); id != "" {
		sp.Attr(obs.RequestIDAttr, id)
	}
	start := time.Now()
	body, status, err := s.result(ctx, norm, hash)
	sp.Attr("cache", status)
	s.reg.Histogram("server.request.us", lbl).Observe(uint64(time.Since(start).Microseconds()))
	if err != nil {
		sp.Attr("error", err.Error())
		sp.End(0)
		s.reg.Counter("server.errors", lbl).Inc()
		switch {
		case errors.Is(err, errBusy):
			log.LogAttrs(ctx, slog.LevelWarn, "admission rejected",
				slog.String("experiment", norm.Experiment), slog.String("hash", hash))
			w.Header().Set("Retry-After", "1")
			writeError(w, r, http.StatusTooManyRequests, "server at capacity, retry later")
		case errors.Is(err, errDraining),
			errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
			writeError(w, r, http.StatusServiceUnavailable, err.Error())
		default:
			log.LogAttrs(ctx, slog.LevelError, "execution failed",
				slog.String("experiment", norm.Experiment), slog.String("error", err.Error()))
			writeError(w, r, http.StatusInternalServerError, err.Error())
		}
		return
	}
	sp.End(0)
	s.reg.Counter("server.responses", lbl, obs.L("cache", status)).Inc()
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set(HashHeader, hash)
	w.Header().Set(CacheHeader, status)
	w.Write(body)
}

// result resolves one normalized request through cache → coalescing → queue
// → execution, returning the envelope bytes and which path served them.
func (s *Server) result(ctx context.Context, norm Request, hash string) ([]byte, string, error) {
	log := logging.From(ctx)
	if body, tier, ok := s.cache.get(hash); ok {
		if log.Enabled(ctx, slog.LevelDebug) {
			log.LogAttrs(ctx, slog.LevelDebug, "cache hit",
				slog.String("tier", tier), slog.String("hash", hash))
		}
		return body, cacheHit, nil
	}
	body, shared, err := s.fl.do(hash, func() ([]byte, error) {
		// The leader queues on the caller's context (an abandoning client
		// frees its queue spot) but executes on the server's base context:
		// coalesced followers must not die with the leader's connection, and
		// drain-cancellation flows through baseCtx.
		if err := s.queue.acquire(ctx); err != nil {
			return nil, err
		}
		defer s.queue.release()
		if !s.beginExec() {
			return nil, errDraining
		}
		defer s.inflight.Done()
		if s.baseCtx.Err() != nil {
			return nil, s.baseCtx.Err()
		}
		// Execution runs on baseCtx for cancellation, but keeps the request's
		// observability scope (ID + logger) so sched spans and worker logs
		// stay correlated with the admitting request.
		runCtx := logging.WithRequestID(s.baseCtx, logging.From(ctx), "")
		runCtx = obs.WithRequestID(runCtx, obs.RequestIDFrom(ctx))
		if s.cfg.RequestTimeout > 0 {
			var cancel context.CancelFunc
			runCtx, cancel = context.WithTimeout(runCtx, s.cfg.RequestTimeout)
			defer cancel()
		}
		body, err := s.run(runCtx, norm)
		if err != nil {
			return nil, err
		}
		s.cache.put(hash, body)
		return body, nil
	})
	status := cacheMiss
	if shared {
		status = cacheCoalesced
		s.reg.Counter("server.coalesced").Inc()
		if log.Enabled(ctx, slog.LevelDebug) {
			log.LogAttrs(ctx, slog.LevelDebug, "coalesced onto in-flight execution",
				slog.String("hash", hash))
		}
	}
	if err != nil {
		return nil, status, err
	}
	return body, status, nil
}

// experimentsIndex is the GET /v1/experiments document.
type experimentsIndex struct {
	Experiments []string `json:"experiments"`
	Attacks     []string `json:"attacks"`
	Defaults    Request  `json:"defaults"`
}

func (s *Server) handleExperiments(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, r, http.StatusMethodNotAllowed, "GET only")
		return
	}
	def, err := Request{Experiment: "table2"}.Normalize()
	if err != nil {
		writeError(w, r, http.StatusInternalServerError, err.Error())
		return
	}
	idx := experimentsIndex{
		Experiments: Experiments(),
		Attacks:     experiments.AttackNames(),
		Defaults:    def,
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(idx)
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	if s.Draining() {
		writeError(w, r, http.StatusServiceUnavailable, "draining")
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// Readiness is the /readyz document: health plus enough admission detail
// for a load balancer to act early. A gateway stops routing to a backend
// whose readiness reports draining before the backend starts answering
// 503, and can weigh queue depth into placement decisions.
type Readiness struct {
	Status        string `json:"status"` // "ok" | "draining"
	Draining      bool   `json:"draining"`
	QueueInflight int    `json:"queue_inflight"`
	QueueWaiting  int    `json:"queue_waiting"`
	MaxInflight   int    `json:"max_inflight"`
	MaxQueue      int    `json:"max_queue"`
}

// Ready reports the server's current readiness document.
func (s *Server) Ready() Readiness {
	inflight, waiting := s.queue.depth()
	ready := Readiness{
		Status:        "ok",
		Draining:      s.Draining(),
		QueueInflight: inflight,
		QueueWaiting:  waiting,
		MaxInflight:   s.cfg.MaxInflight,
		MaxQueue:      s.cfg.MaxQueue,
	}
	if ready.Draining {
		ready.Status = "draining"
	}
	return ready
}

// handleReady is GET /readyz: the JSON readiness document, 200 while
// serving and 503 (same body) once draining — unlike /healthz's bare
// "ok"/error split, the body is identical either way so probers read one
// shape.
func (s *Server) handleReady(w http.ResponseWriter, r *http.Request) {
	ready := s.Ready()
	status := http.StatusOK
	if ready.Draining {
		status = http.StatusServiceUnavailable
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(ready)
}

// Metrics exposition formats /metrics negotiates between.
const (
	metricsText = "text" // the aligned text table (default)
	metricsJSON = "json"
	metricsProm = "prom" // Prometheus text exposition 0.0.4
)

// negotiateMetricsFormat resolves ?format= (authoritative when present) then
// the Accept header into one exposition format. Unknown ?format values are
// an error so typos fail loudly instead of silently serving the default.
func negotiateMetricsFormat(r *http.Request) (string, error) {
	switch f := r.URL.Query().Get("format"); f {
	case "":
	case metricsText:
		return metricsText, nil
	case metricsJSON:
		return metricsJSON, nil
	case metricsProm, "prometheus", "openmetrics":
		return metricsProm, nil
	default:
		return "", fmt.Errorf("unknown metrics format %q (have text, json, prom)", f)
	}
	accept := r.Header.Get("Accept")
	switch {
	case strings.Contains(accept, "application/json"):
		return metricsJSON, nil
	case strings.Contains(accept, "application/openmetrics-text"),
		strings.Contains(accept, "text/plain") && strings.Contains(accept, "version=0.0.4"):
		// The Accept signature Prometheus scrapers send.
		return metricsProm, nil
	default:
		return metricsText, nil
	}
}

// handleMetrics serves the obs registry snapshot through one negotiated
// writer: the aligned text table by default, JSON for JSON clients, and the
// Prometheus text exposition for standard scrapers — always with an explicit
// Content-Type (the CLIs' -metrics-out flag writes the same three renderings
// by file suffix).
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	publishPoolGauges(s.reg)
	publishSnapshotGauges(s.reg)
	if err := ServeMetricsSnapshot(w, r, s.reg); err != nil {
		writeError(w, r, http.StatusBadRequest, err.Error())
	}
}

// ServeMetricsSnapshot writes reg's snapshot in the format negotiated from
// r (?format= then Accept) with an explicit Content-Type. A returned error
// is a negotiation error the caller should map to 400; nothing has been
// written in that case. Shared by whisperd's and whispergate's /metrics so
// both ends of a cluster expose the same three renderings.
func ServeMetricsSnapshot(w http.ResponseWriter, r *http.Request, reg *obs.Registry) error {
	format, err := negotiateMetricsFormat(r)
	if err != nil {
		return err
	}
	snap := reg.Snapshot()
	switch format {
	case metricsJSON:
		w.Header().Set("Content-Type", "application/json")
		snap.WriteJSON(w)
	case metricsProm:
		w.Header().Set("Content-Type", obs.PromContentType)
		snap.WritePrometheus(w)
	default:
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		snap.WriteText(w)
	}
	return nil
}

// handleTraces serves the Perfetto/Chrome trace of everything the registry
// has recorded — request spans included — ready for ui.perfetto.dev.
func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	s.reg.ExportTrace(w, []pmu.Event(nil))
}

// publishPoolGauges refreshes the machine-reuse gauges from the process-wide
// machine pools. Recycling simulator machines across requests — not just
// within one sweep — is a core reason results are served from one daemon, so
// /metrics surfaces how much reuse the pools actually deliver.
func publishPoolGauges(reg *obs.Registry) {
	for _, p := range []struct {
		name  string
		stats cpu.PoolStats
	}{
		{"sweep", experiments.MachinePoolStats()},
		{"farm", core.FarmPoolStats()},
	} {
		lbl := obs.L("pool", p.name)
		reg.Gauge("server.machines.gets", lbl).Set(float64(p.stats.Gets))
		reg.Gauge("server.machines.reuses", lbl).Set(float64(p.stats.Reuses))
		reg.Gauge("server.machines.idle", lbl).Set(float64(p.stats.Idle))
	}
}

// publishSnapshotGauges refreshes the warm-state memo gauges from the
// process-wide snapshot memo. Fork-per-cell only pays off when the memo
// actually serves captures back, so /metrics surfaces its hit/miss traffic,
// eviction pressure, and resident checkpoint bytes alongside the machine-pool
// reuse gauges.
func publishSnapshotGauges(reg *obs.Registry) {
	st := experiments.SnapshotMemoStats()
	reg.Gauge("server.snapshots.hits").Set(float64(st.Hits))
	reg.Gauge("server.snapshots.misses").Set(float64(st.Misses))
	reg.Gauge("server.snapshots.evictions").Set(float64(st.Evictions))
	reg.Gauge("server.snapshots.entries").Set(float64(st.Entries))
	reg.Gauge("server.snapshots.resident_bytes").Set(float64(st.ResidentBytes))
}
