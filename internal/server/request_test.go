package server

import (
	"strings"
	"testing"
)

// TestNormalizeSweepDefaults checks a sweep-shaped request resolves every
// zero field to the experiment default and drops the attack-only fields, so
// equivalent spellings collapse to one canonical request.
func TestNormalizeSweepDefaults(t *testing.T) {
	norm, err := Request{Experiment: "table2", CPU: "bogus", Secret: "x", KPTI: true}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if norm.Seed == 0 || norm.ThroughputBytes == 0 || norm.KASLRReps == 0 || norm.Fig1bBatches == 0 {
		t.Fatalf("defaults not resolved: %+v", norm)
	}
	if norm.CPU != "" || norm.Secret != "" || norm.KPTI {
		t.Fatalf("attack fields not dropped from a sweep request: %+v", norm)
	}
	spelled, err := Request{
		Experiment:      "table2",
		Seed:            norm.Seed,
		ThroughputBytes: norm.ThroughputBytes,
		KASLRReps:       norm.KASLRReps,
		Fig1bBatches:    norm.Fig1bBatches,
	}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if norm.Hash() != spelled.Hash() {
		t.Fatalf("explicit defaults hash differently:\n%+v\n%+v", norm, spelled)
	}
}

// TestNormalizeAttackCanonical checks CPU aliases canonicalize to the full
// model name and attack filters to block order (the full set to nil), so the
// cache never stores the same computation under two hashes.
func TestNormalizeAttackCanonical(t *testing.T) {
	a, err := Request{Experiment: "attacks", CPU: "kaby lake", Attacks: []string{"md", "cc"}}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if a.CPU == "kaby lake" || !strings.Contains(a.CPU, "i7-7700") {
		t.Fatalf("CPU alias not canonicalized: %q", a.CPU)
	}
	if len(a.Attacks) != 2 || a.Attacks[0] != "cc" || a.Attacks[1] != "md" {
		t.Fatalf("attack filter not in block order: %v", a.Attacks)
	}
	if a.Seed != DefaultAttackSeed || a.Secret != DefaultSecret {
		t.Fatalf("attack defaults not resolved: %+v", a)
	}

	b, err := Request{Experiment: "attacks", CPU: "Intel Core i7-7700", Attacks: []string{"cc", "md"}, Seed: DefaultAttackSeed, Secret: DefaultSecret}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if a.Hash() != b.Hash() {
		t.Fatalf("equivalent attack requests hash differently:\n%+v\n%+v", a, b)
	}

	all, err := Request{Experiment: "attacks", Attacks: []string{"cc", "md", "zbl", "rsb", "v1", "kaslr", "smt"}}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if all.Attacks != nil {
		t.Fatalf("full attack set should canonicalize to nil, got %v", all.Attacks)
	}
}

// TestNormalizeRejectsUnknown checks no hash is ever minted for a request
// the server cannot run.
func TestNormalizeRejectsUnknown(t *testing.T) {
	cases := []Request{
		{Experiment: "tableX"},
		{Experiment: "attacks", CPU: "6502"},
		{Experiment: "attacks", Attacks: []string{"rowhammer"}},
	}
	for _, req := range cases {
		if _, err := req.Normalize(); err == nil {
			t.Errorf("Normalize(%+v) accepted an unrunnable request", req)
		}
	}
}

// TestHashDistinguishesComputations checks requests denoting different
// computations never collide on the fields the result depends on.
func TestHashDistinguishesComputations(t *testing.T) {
	base, err := Request{Experiment: "table2"}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	other, err := Request{Experiment: "table2", Seed: base.Seed + 1}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if base.Hash() == other.Hash() {
		t.Fatal("different seeds hash equal")
	}
	sweep, err := Request{Experiment: "table3", Seed: base.Seed}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if base.Hash() == sweep.Hash() {
		t.Fatal("different experiments hash equal")
	}
}

// TestExperimentsIndex checks the servable index contains both shapes.
func TestExperimentsIndex(t *testing.T) {
	names := Experiments()
	for _, want := range []string{"attacks", "leak", "table2", "report"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("Experiments() = %v, missing %q", names, want)
		}
	}
}
