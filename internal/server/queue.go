package server

import (
	"context"
	"errors"
	"sync/atomic"

	"whisper/internal/obs"
)

// errBusy is returned when both the execution slots and the wait queue are
// full — the handler maps it to 429 + Retry-After.
var errBusy = errors.New("server: at capacity")

// queue is the admission controller: maxInflight execution slots plus a
// bounded count of waiters. It exists so a burst of heavy sweeps degrades
// into fast, honest 429s instead of an unbounded goroutine pile-up.
type queue struct {
	slots   chan struct{}
	maxWait int64
	waiting atomic.Int64
	reg     *obs.Registry
}

func newQueue(maxInflight, maxWait int, reg *obs.Registry) *queue {
	if maxInflight < 1 {
		maxInflight = 1
	}
	if maxWait < 0 {
		maxWait = 0
	}
	return &queue{
		slots:   make(chan struct{}, maxInflight),
		maxWait: int64(maxWait),
		reg:     reg,
	}
}

// acquire claims an execution slot, waiting in the bounded queue if all
// slots are busy. It returns errBusy when the queue is full, or ctx.Err()
// when the caller gives up first.
func (q *queue) acquire(ctx context.Context) error {
	select {
	case q.slots <- struct{}{}:
		q.gauges()
		return nil
	default:
	}
	if q.waiting.Add(1) > q.maxWait {
		q.waiting.Add(-1)
		q.reg.Counter("server.queue.rejected").Inc()
		return errBusy
	}
	q.gauges()
	defer func() {
		q.waiting.Add(-1)
		q.gauges()
	}()
	select {
	case q.slots <- struct{}{}:
		return nil
	case <-ctx.Done():
		q.reg.Counter("server.queue.abandoned").Inc()
		return ctx.Err()
	}
}

// release frees an execution slot.
func (q *queue) release() {
	<-q.slots
	q.gauges()
}

// depth reports the current admission state — executing slots and queued
// waiters — for access-log lines and drain progress reporting.
func (q *queue) depth() (inflight, waiting int) {
	return len(q.slots), int(q.waiting.Load())
}

func (q *queue) gauges() {
	q.reg.Gauge("server.queue.inflight").Set(float64(len(q.slots)))
	q.reg.Gauge("server.queue.waiting").Set(float64(q.waiting.Load()))
}
