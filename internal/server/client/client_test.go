package client

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"whisper/internal/server"
)

// TestRunRetries429 checks the client honours backpressure: a 429 with
// Retry-After is retried and the eventual 200 is decoded.
func TestRunRetries429(t *testing.T) {
	var calls atomic.Int64
	body := []byte(`{"hash":"abc","request":{"experiment":"table2"},"rendered":"ok"}`)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.Header().Set("Retry-After", "1")
			http.Error(w, "busy", http.StatusTooManyRequests)
			return
		}
		w.Header().Set("X-Whisper-Cache", "hit")
		w.Write(body)
	}))
	defer ts.Close()

	c := New(ts.URL)
	start := time.Now()
	res, raw, cachePath, err := c.Run(context.Background(), server.Request{Experiment: "table2"})
	if err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 2 {
		t.Fatalf("server saw %d calls, want a retry (2)", calls.Load())
	}
	if time.Since(start) < time.Second {
		t.Fatal("client did not wait the advertised Retry-After")
	}
	if res.Hash != "abc" || res.Rendered != "ok" || cachePath != "hit" || !bytes.Equal(raw, body) {
		t.Fatalf("decoded %+v (cache %q)", res, cachePath)
	}
}

// TestRunRetryHonoursContext checks a context deadline interrupts the
// Retry-After wait instead of sleeping through it.
func TestRunRetryHonoursContext(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "5")
		http.Error(w, "busy", http.StatusTooManyRequests)
	}))
	defer ts.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, _, _, err := New(ts.URL).Run(ctx, server.Request{Experiment: "table2"})
	if err == nil {
		t.Fatal("Run succeeded against a permanently busy server")
	}
	if time.Since(start) > 2*time.Second {
		t.Fatal("Run slept through its context deadline")
	}
}

// TestClientAgainstRealHandler round-trips through the actual server
// handler: run, index, and metrics.
func TestClientAgainstRealHandler(t *testing.T) {
	srv, err := server.New(server.Config{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	c := New(ts.URL)
	names, err := c.Experiments(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(names) == 0 {
		t.Fatal("empty experiment index")
	}

	res, raw, cachePath, err := c.Run(context.Background(), server.Request{Experiment: "throughput", ThroughputBytes: 4})
	if err != nil {
		t.Fatal(err)
	}
	if cachePath != "miss" || res.Rendered == "" {
		t.Fatalf("cold run: cache %q, rendered %d bytes", cachePath, len(res.Rendered))
	}
	var env server.Result
	if err := json.Unmarshal(raw, &env); err != nil || env.Hash != res.Hash {
		t.Fatalf("raw body does not decode to the envelope: %v", err)
	}

	snap, err := c.Metrics(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if snap.Counters[`server.requests{experiment=throughput}`] != 1 {
		t.Fatalf("metrics missing the request: %v", snap.Counters)
	}
}

// TestBaseURLNormalization checks host:port spellings work.
func TestBaseURLNormalization(t *testing.T) {
	c := New("127.0.0.1:8090/")
	if c.Base != "http://127.0.0.1:8090" {
		t.Fatalf("Base = %q", c.Base)
	}
	c = New("https://example.test/")
	if c.Base != "https://example.test" {
		t.Fatalf("Base = %q", c.Base)
	}
}
