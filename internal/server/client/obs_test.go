package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"

	"whisper/internal/obs"
	"whisper/internal/server"
)

// TestRunSendsOneRequestIDAcrossRetries checks the client mints a single
// request ID per Run call and resends it on every retry, so the daemon's
// access log shows one correlation key for the whole exchange — and that the
// backoff waits surface as structured log events carrying that same ID.
func TestRunSendsOneRequestIDAcrossRetries(t *testing.T) {
	var calls atomic.Int64
	var ids []string
	body := []byte(`{"hash":"abc","request":{"experiment":"table2"},"rendered":"ok"}`)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ids = append(ids, r.Header.Get(server.RequestIDHeader))
		if calls.Add(1) == 1 {
			w.Header().Set("Retry-After", "1")
			http.Error(w, "busy", http.StatusTooManyRequests)
			return
		}
		w.Write(body)
	}))
	defer ts.Close()

	var logBuf bytes.Buffer
	c := New(ts.URL)
	c.Log = slog.New(slog.NewJSONHandler(&logBuf, nil))
	if _, _, _, err := c.Run(context.Background(), server.Request{Experiment: "table2"}); err != nil {
		t.Fatal(err)
	}
	if len(ids) != 2 {
		t.Fatalf("server saw %d calls, want 2", len(ids))
	}
	if ids[0] == "" || !obs.ValidRequestID(ids[0]) {
		t.Fatalf("client sent no valid request ID: %q", ids[0])
	}
	if ids[0] != ids[1] {
		t.Fatalf("retry changed the request ID: %q then %q", ids[0], ids[1])
	}

	var backoffSeen bool
	scan := bufio.NewScanner(&logBuf)
	for scan.Scan() {
		var line map[string]any
		if err := json.Unmarshal(scan.Bytes(), &line); err != nil {
			t.Fatalf("client log line is not JSON: %q", scan.Text())
		}
		if line["msg"] == "daemon busy, backing off" {
			backoffSeen = true
			if line[obs.RequestIDAttr] != ids[0] {
				t.Fatalf("backoff event request_id = %v, want %q", line[obs.RequestIDAttr], ids[0])
			}
			if _, ok := line["retry_after"]; !ok {
				t.Fatalf("backoff event missing retry_after: %v", line)
			}
		}
	}
	if !backoffSeen {
		t.Fatalf("no backoff event logged:\n%s", logBuf.String())
	}
}

// TestRunAdoptsContextRequestID checks a caller-scoped ID (obs.WithRequestID)
// wins over minting, so a larger operation spanning several Run calls can
// share one correlation key.
func TestRunAdoptsContextRequestID(t *testing.T) {
	var got string
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		got = r.Header.Get(server.RequestIDHeader)
		w.Write([]byte(`{"hash":"x","request":{"experiment":"table2"},"rendered":"ok"}`))
	}))
	defer ts.Close()

	ctx := obs.WithRequestID(context.Background(), "caller-scope-7")
	if _, _, _, err := New(ts.URL).Run(ctx, server.Request{Experiment: "table2"}); err != nil {
		t.Fatal(err)
	}
	if got != "caller-scope-7" {
		t.Fatalf("sent ID = %q, want the caller's", got)
	}
}

// TestErrorCarriesServerRequestID checks a daemon error decodes into *Error
// with the server-reported message and request ID, from the JSON envelope —
// or, failing that, the response header.
func TestErrorCarriesServerRequestID(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set(server.RequestIDHeader, "srv-assigned-1")
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusInternalServerError)
		json.NewEncoder(w).Encode(map[string]any{
			"error": "sweep exploded", "status": 500, "request_id": "srv-assigned-1",
		})
	}))
	defer ts.Close()

	_, _, _, err := New(ts.URL).Run(context.Background(), server.Request{Experiment: "table2"})
	if err == nil {
		t.Fatal("Run succeeded against a failing daemon")
	}
	var ce *Error
	if !errors.As(err, &ce) {
		t.Fatalf("error is %T, want *client.Error: %v", err, err)
	}
	if ce.Status != 500 || ce.Msg != "sweep exploded" || ce.RequestID != "srv-assigned-1" {
		t.Fatalf("decoded error = %+v", ce)
	}
	for _, want := range []string{"sweep exploded", "srv-assigned-1"} {
		if !bytes.Contains([]byte(err.Error()), []byte(want)) {
			t.Fatalf("error text missing %q: %v", want, err)
		}
	}

	// Plain-text error bodies (a proxy, not whisperd) still produce a usable
	// *Error, with the ID recovered from the header.
	ts2 := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set(server.RequestIDHeader, "hdr-only-2")
		http.Error(w, "bad gateway", http.StatusBadGateway)
	}))
	defer ts2.Close()
	_, _, _, err = New(ts2.URL).Run(context.Background(), server.Request{Experiment: "table2"})
	if !errors.As(err, &ce) {
		t.Fatalf("error is %T: %v", err, err)
	}
	if ce.Status != http.StatusBadGateway || ce.RequestID != "hdr-only-2" {
		t.Fatalf("decoded error = %+v", ce)
	}
}

// TestClientErrorAgainstRealHandler pins the full loop: the real server's
// error envelope decodes into *Error with the ID the daemon echoed.
func TestClientErrorAgainstRealHandler(t *testing.T) {
	srv, err := server.New(server.Config{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	ctx := obs.WithRequestID(context.Background(), "real-err-3")
	_, _, _, err = New(ts.URL).Run(ctx, server.Request{Experiment: "no-such-sweep"})
	var ce *Error
	if !errors.As(err, &ce) {
		t.Fatalf("error is %T: %v", err, err)
	}
	if ce.Status != http.StatusBadRequest || ce.RequestID != "real-err-3" {
		t.Fatalf("decoded error = %+v", ce)
	}
}
