package client

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"whisper/internal/server"
)

// busyServer always answers 429 with a Retry-After and a server-assigned
// request ID in the error envelope.
func busyServer(t *testing.T, retryAfterSec string, reqID string) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", retryAfterSec)
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusTooManyRequests)
		json.NewEncoder(w).Encode(map[string]any{
			"error": "at capacity", "status": 429, "request_id": reqID,
		})
	}))
	t.Cleanup(ts.Close)
	return ts
}

// TestRunBusyBudgetExhaustedIsErrBusy checks a server that never stops
// answering 429 surfaces as the typed busy error: errors.Is(err, ErrBusy)
// matches, the BusyError carries the server's request ID, and the final 429
// is reachable through Unwrap.
func TestRunBusyBudgetExhaustedIsErrBusy(t *testing.T) {
	ts := busyServer(t, "0", "busy-req-42")

	c := New(ts.URL)
	c.MaxRetries = 2
	_, _, _, err := c.Run(context.Background(), server.Request{Experiment: "table2"})
	if err == nil {
		t.Fatal("Run succeeded against a permanently busy server")
	}
	if !errors.Is(err, ErrBusy) {
		t.Fatalf("errors.Is(err, ErrBusy) = false for %v", err)
	}
	var busy *BusyError
	if !errors.As(err, &busy) {
		t.Fatalf("error is not a *BusyError: %T", err)
	}
	if busy.RequestID != "busy-req-42" {
		t.Fatalf("BusyError.RequestID = %q, want the server-assigned ID", busy.RequestID)
	}
	if busy.Attempts != 3 {
		t.Fatalf("BusyError.Attempts = %d, want 3 (initial + 2 retries)", busy.Attempts)
	}
	var se *Error
	if !errors.As(err, &se) || se.Status != http.StatusTooManyRequests {
		t.Fatalf("BusyError does not unwrap to the final 429 *Error: %v", err)
	}
}

// TestRunRetryAfterBeyondDeadlineFailsFast checks the deadline cap: when
// the advertised Retry-After cannot fit inside the context deadline, Run
// returns ErrBusy immediately instead of sleeping into a timeout.
func TestRunRetryAfterBeyondDeadlineFailsFast(t *testing.T) {
	ts := busyServer(t, "30", "busy-req-7")

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	start := time.Now()
	_, _, _, err := New(ts.URL).Run(ctx, server.Request{Experiment: "table2"})
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("Run took %v; it should give up without waiting out Retry-After", elapsed)
	}
	if !errors.Is(err, ErrBusy) {
		t.Fatalf("want ErrBusy when Retry-After exceeds the deadline, got %v", err)
	}
	if ctx.Err() != nil {
		t.Fatal("context expired; the client slept instead of failing fast")
	}
	var busy *BusyError
	if !errors.As(err, &busy) || busy.RequestID != "busy-req-7" {
		t.Fatalf("busy error lost the request ID: %v", err)
	}
}

// TestRunFailsOverAcrossEndpoints checks the multi-endpoint contract: a
// connection-refused primary fails over to the fallback, the choice is
// sticky for later calls, and an HTTP error (any status) never triggers
// failover — that endpoint answered.
func TestRunFailsOverAcrossEndpoints(t *testing.T) {
	var hits atomic.Int64
	body := `{"hash":"abc","request":{"experiment":"table2"},"rendered":"ok"}`
	live := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		w.Write([]byte(body))
	}))
	defer live.Close()
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	dead.Close() // connection refused from here on

	c := New(dead.URL + "," + live.URL)
	if len(c.Fallbacks) != 1 {
		t.Fatalf("Fallbacks = %v, want the second endpoint", c.Fallbacks)
	}
	res, _, _, err := c.Run(context.Background(), server.Request{Experiment: "table2"})
	if err != nil {
		t.Fatalf("Run did not fail over: %v", err)
	}
	if res.Hash != "abc" || hits.Load() != 1 {
		t.Fatalf("fallback served hash %q after %d hits", res.Hash, hits.Load())
	}

	// Sticky: the next call goes straight to the endpoint that answered.
	if _, _, _, err := c.Run(context.Background(), server.Request{Experiment: "table2"}); err != nil {
		t.Fatal(err)
	}
	if c.cur.Load() != 1 {
		t.Fatalf("client did not stick to the working endpoint (cur = %d)", c.cur.Load())
	}

	// An HTTP error from the sticky endpoint is final — no silent hop back.
	failing := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, `{"error":"boom"}`, http.StatusInternalServerError)
	}))
	defer failing.Close()
	c2 := New(failing.URL + "," + live.URL)
	before := hits.Load()
	_, _, _, err = c2.Run(context.Background(), server.Request{Experiment: "table2"})
	var se *Error
	if !errors.As(err, &se) || se.Status != http.StatusInternalServerError {
		t.Fatalf("want the primary's 500 surfaced, got %v", err)
	}
	if hits.Load() != before {
		t.Fatal("client failed over on an HTTP error; only connection errors may move endpoints")
	}
}

// TestNewSplitsEndpointList checks comma-separated endpoint parsing and
// normalization.
func TestNewSplitsEndpointList(t *testing.T) {
	c := New("gate1:8089, 127.0.0.1:8090/,,http://gate3:8089")
	if c.Base != "http://gate1:8089" {
		t.Fatalf("Base = %q", c.Base)
	}
	want := []string{"http://127.0.0.1:8090", "http://gate3:8089"}
	if len(c.Fallbacks) != len(want) {
		t.Fatalf("Fallbacks = %v, want %v", c.Fallbacks, want)
	}
	for i := range want {
		if c.Fallbacks[i] != want[i] {
			t.Fatalf("Fallbacks[%d] = %q, want %q", i, c.Fallbacks[i], want[i])
		}
	}
	if got := strings.Join(c.endpoints(), " "); got != "http://gate1:8089 http://127.0.0.1:8090 http://gate3:8089" {
		t.Fatalf("endpoints() = %q", got)
	}
}
