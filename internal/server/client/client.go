// Package client is the Go client for a whisperd daemon: it posts
// experiment requests, surfaces the cache path each response took, and
// honours the daemon's backpressure by retrying 429s with the advertised
// Retry-After delay. cmd/whisper's -remote mode is a thin wrapper over it.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"whisper/internal/obs"
	"whisper/internal/server"
)

// Client talks to one whisperd instance.
type Client struct {
	// Base is the daemon's root URL, e.g. "http://127.0.0.1:8090".
	Base string
	// HTTP is the transport; nil uses a client with no overall timeout
	// (per-call deadlines come from the caller's context).
	HTTP *http.Client
	// MaxRetries bounds 429 retries per Run call (0: DefaultMaxRetries).
	MaxRetries int
}

// DefaultMaxRetries is the 429-retry budget when none is configured.
const DefaultMaxRetries = 5

// New returns a client for the daemon at base ("host:port" or a full URL).
func New(base string) *Client {
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	return &Client{Base: strings.TrimRight(base, "/")}
}

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return &http.Client{}
}

// Run executes req on the daemon and returns the decoded envelope, the raw
// canonical body bytes, and the cache path ("miss", "hit", "coalesced") the
// daemon reported. 429 responses are retried with the server's Retry-After
// until the context or the retry budget runs out.
func (c *Client) Run(ctx context.Context, req server.Request) (*server.Result, []byte, string, error) {
	payload, err := json.Marshal(req)
	if err != nil {
		return nil, nil, "", err
	}
	retries := c.MaxRetries
	if retries <= 0 {
		retries = DefaultMaxRetries
	}
	for attempt := 0; ; attempt++ {
		body, cachePath, retryAfter, err := c.post(ctx, payload)
		if err == nil {
			var res server.Result
			if err := json.Unmarshal(body, &res); err != nil {
				return nil, nil, "", fmt.Errorf("client: decoding envelope: %w", err)
			}
			return &res, body, cachePath, nil
		}
		if retryAfter < 0 || attempt >= retries {
			return nil, nil, "", err
		}
		select {
		case <-time.After(retryAfter):
		case <-ctx.Done():
			return nil, nil, "", ctx.Err()
		}
	}
}

// post does one POST /v1/run round trip. retryAfter >= 0 marks a retryable
// 429 and carries the server's requested delay.
func (c *Client) post(ctx context.Context, payload []byte) (body []byte, cachePath string, retryAfter time.Duration, err error) {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.Base+"/v1/run", bytes.NewReader(payload))
	if err != nil {
		return nil, "", -1, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	resp, err := c.httpClient().Do(hreq)
	if err != nil {
		return nil, "", -1, err
	}
	defer resp.Body.Close()
	body, err = io.ReadAll(resp.Body)
	if err != nil {
		return nil, "", -1, err
	}
	switch {
	case resp.StatusCode == http.StatusOK:
		return body, resp.Header.Get("X-Whisper-Cache"), -1, nil
	case resp.StatusCode == http.StatusTooManyRequests:
		after := time.Second
		if v, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && v > 0 {
			after = time.Duration(v) * time.Second
		}
		return nil, "", after, fmt.Errorf("client: daemon at capacity (429)")
	default:
		return nil, "", -1, fmt.Errorf("client: %s: %s", resp.Status, strings.TrimSpace(string(body)))
	}
}

// Experiments fetches the daemon's experiment index.
func (c *Client) Experiments(ctx context.Context) ([]string, error) {
	var idx struct {
		Experiments []string `json:"experiments"`
	}
	if err := c.getJSON(ctx, "/v1/experiments", &idx); err != nil {
		return nil, err
	}
	return idx.Experiments, nil
}

// Metrics fetches the daemon's metrics snapshot.
func (c *Client) Metrics(ctx context.Context) (obs.Snapshot, error) {
	var snap obs.Snapshot
	err := c.getJSON(ctx, "/metrics?format=json", &snap)
	return snap, err
}

func (c *Client) getJSON(ctx context.Context, path string, out any) error {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, c.Base+path, nil)
	if err != nil {
		return err
	}
	hreq.Header.Set("Accept", "application/json")
	resp, err := c.httpClient().Do(hreq)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		return fmt.Errorf("client: %s: %s", resp.Status, strings.TrimSpace(string(b)))
	}
	return json.NewDecoder(resp.Body).Decode(out)
}
