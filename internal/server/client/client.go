// Package client is the Go client for a whisperd daemon: it posts
// experiment requests, surfaces the cache path each response took, and
// honours the daemon's backpressure by retrying 429s with the advertised
// Retry-After delay. cmd/whisper's -remote mode is a thin wrapper over it.
//
// Every Run call mints one request ID (or adopts the one riding on ctx via
// obs.WithRequestID) and sends it on each attempt, so all retries of a call
// correlate to a single ID in the daemon's access log; failures carry the
// server-assigned ID back in the returned error. Wire a *slog.Logger into
// Log to see retry waits and final failures as structured events.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strconv"
	"strings"
	"time"

	"whisper/internal/obs"
	"whisper/internal/obs/logging"
	"whisper/internal/server"
)

// Client talks to one whisperd instance.
type Client struct {
	// Base is the daemon's root URL, e.g. "http://127.0.0.1:8090".
	Base string
	// HTTP is the transport; nil uses a client with no overall timeout
	// (per-call deadlines come from the caller's context).
	HTTP *http.Client
	// MaxRetries bounds 429 retries per Run call (0: DefaultMaxRetries).
	MaxRetries int
	// Log receives structured retry/failure events; nil means the logger
	// carried on the call's context (logging.From), which defaults to
	// discard.
	Log *slog.Logger
}

// DefaultMaxRetries is the 429-retry budget when none is configured.
const DefaultMaxRetries = 5

// New returns a client for the daemon at base ("host:port" or a full URL).
func New(base string) *Client {
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	return &Client{Base: strings.TrimRight(base, "/")}
}

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return &http.Client{}
}

// logger resolves the event sink for one call.
func (c *Client) logger(ctx context.Context) *slog.Logger {
	if c.Log != nil {
		return c.Log
	}
	return logging.From(ctx)
}

// Error is a non-200 daemon reply, decoded from the server's JSON error
// envelope when possible. RequestID is the server-assigned correlation key —
// quote it when reporting a daemon-side failure.
type Error struct {
	Status    int    // HTTP status code
	Msg       string // server-reported message (or raw body)
	RequestID string // X-Whisper-Request-Id of the failing exchange
}

func (e *Error) Error() string {
	msg := fmt.Sprintf("client: daemon replied %d: %s", e.Status, e.Msg)
	if e.RequestID != "" {
		msg += " (request " + e.RequestID + ")"
	}
	return msg
}

// Run executes req on the daemon and returns the decoded envelope, the raw
// canonical body bytes, and the cache path ("miss", "hit", "coalesced") the
// daemon reported. 429 responses are retried with the server's Retry-After
// until the context or the retry budget runs out.
func (c *Client) Run(ctx context.Context, req server.Request) (*server.Result, []byte, string, error) {
	payload, err := json.Marshal(req)
	if err != nil {
		return nil, nil, "", err
	}
	retries := c.MaxRetries
	if retries <= 0 {
		retries = DefaultMaxRetries
	}
	reqID := obs.RequestIDFrom(ctx)
	if reqID == "" {
		reqID = obs.NewRequestID()
	}
	log := c.logger(ctx)
	for attempt := 0; ; attempt++ {
		body, cachePath, retryAfter, err := c.post(ctx, payload, reqID)
		if err == nil {
			var res server.Result
			if err := json.Unmarshal(body, &res); err != nil {
				return nil, nil, "", fmt.Errorf("client: decoding envelope: %w", err)
			}
			return &res, body, cachePath, nil
		}
		if retryAfter < 0 || attempt >= retries {
			log.LogAttrs(ctx, slog.LevelWarn, "daemon request failed",
				slog.String(obs.RequestIDAttr, reqID),
				slog.Int("attempts", attempt+1),
				slog.String("error", err.Error()))
			return nil, nil, "", err
		}
		log.LogAttrs(ctx, slog.LevelInfo, "daemon busy, backing off",
			slog.String(obs.RequestIDAttr, reqID),
			slog.Int("attempt", attempt+1),
			slog.Int("budget", retries),
			slog.Duration("retry_after", retryAfter))
		select {
		case <-time.After(retryAfter):
		case <-ctx.Done():
			return nil, nil, "", ctx.Err()
		}
	}
}

// post does one POST /v1/run round trip. retryAfter >= 0 marks a retryable
// 429 and carries the server's requested delay.
func (c *Client) post(ctx context.Context, payload []byte, reqID string) (body []byte, cachePath string, retryAfter time.Duration, err error) {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.Base+"/v1/run", bytes.NewReader(payload))
	if err != nil {
		return nil, "", -1, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	if reqID != "" {
		hreq.Header.Set(server.RequestIDHeader, reqID)
	}
	resp, err := c.httpClient().Do(hreq)
	if err != nil {
		return nil, "", -1, err
	}
	defer resp.Body.Close()
	body, err = io.ReadAll(resp.Body)
	if err != nil {
		return nil, "", -1, err
	}
	switch {
	case resp.StatusCode == http.StatusOK:
		return body, resp.Header.Get(server.CacheHeader), -1, nil
	case resp.StatusCode == http.StatusTooManyRequests:
		after := time.Second
		if v, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && v > 0 {
			after = time.Duration(v) * time.Second
		}
		return nil, "", after, decodeError(resp, body)
	default:
		return nil, "", -1, decodeError(resp, body)
	}
}

// decodeError builds an *Error from a non-200 reply, preferring the JSON
// error envelope and falling back to the raw body; the request ID comes from
// the envelope or, failing that, the response header.
func decodeError(resp *http.Response, body []byte) error {
	e := &Error{Status: resp.StatusCode, Msg: strings.TrimSpace(string(body))}
	var env struct {
		Error     string `json:"error"`
		RequestID string `json:"request_id"`
	}
	if err := json.Unmarshal(body, &env); err == nil && env.Error != "" {
		e.Msg = env.Error
		e.RequestID = env.RequestID
	}
	if e.RequestID == "" {
		e.RequestID = resp.Header.Get(server.RequestIDHeader)
	}
	return e
}

// Experiments fetches the daemon's experiment index.
func (c *Client) Experiments(ctx context.Context) ([]string, error) {
	var idx struct {
		Experiments []string `json:"experiments"`
	}
	if err := c.getJSON(ctx, "/v1/experiments", &idx); err != nil {
		return nil, err
	}
	return idx.Experiments, nil
}

// Metrics fetches the daemon's metrics snapshot.
func (c *Client) Metrics(ctx context.Context) (obs.Snapshot, error) {
	var snap obs.Snapshot
	err := c.getJSON(ctx, "/metrics?format=json", &snap)
	return snap, err
}

func (c *Client) getJSON(ctx context.Context, path string, out any) error {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, c.Base+path, nil)
	if err != nil {
		return err
	}
	hreq.Header.Set("Accept", "application/json")
	resp, err := c.httpClient().Do(hreq)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		return decodeError(resp, b)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}
