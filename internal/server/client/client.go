// Package client is the Go client for a whisperd daemon: it posts
// experiment requests, surfaces the cache path each response took, and
// honours the daemon's backpressure by retrying 429s with the advertised
// Retry-After delay. cmd/whisper's -remote mode is a thin wrapper over it.
//
// Every Run call mints one request ID (or adopts the one riding on ctx via
// obs.WithRequestID) and sends it on each attempt, so all retries of a call
// correlate to a single ID in the daemon's access log; failures carry the
// server-assigned ID back in the returned error. Wire a *slog.Logger into
// Log to see retry waits and final failures as structured events.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"whisper/internal/obs"
	"whisper/internal/obs/logging"
	"whisper/internal/server"
)

// Client talks to one serving endpoint — a whisperd daemon or a
// whispergate gateway (same protocol) — with optional fallback endpoints
// it fails over to on connection errors.
type Client struct {
	// Base is the primary endpoint's root URL, e.g. "http://127.0.0.1:8090".
	Base string
	// Fallbacks are additional endpoints tried, in order, when the current
	// endpoint is unreachable (connection error — never on an HTTP error,
	// which is the endpoint answering). The client sticks to the last
	// endpoint that worked.
	Fallbacks []string
	// HTTP is the transport; nil uses a client with no overall timeout
	// (per-call deadlines come from the caller's context).
	HTTP *http.Client
	// MaxRetries bounds 429 retries per Run call (0: DefaultMaxRetries).
	MaxRetries int
	// Log receives structured retry/failure events; nil means the logger
	// carried on the call's context (logging.From), which defaults to
	// discard.
	Log *slog.Logger

	// cur is the index (into endpoints()) of the last endpoint that
	// answered, so failover is sticky instead of re-probing dead primaries
	// on every call.
	cur atomic.Int32
}

// DefaultMaxRetries is the 429-retry budget when none is configured.
const DefaultMaxRetries = 5

// New returns a client for the endpoint(s) at base: one "host:port" or
// full URL, or a comma-separated list of them — the first is primary, the
// rest are failover targets (so `whisper -remote gate1,gate2` survives a
// gateway going down).
func New(base string) *Client {
	parts := strings.Split(base, ",")
	c := &Client{Base: canonBase(parts[0])}
	for _, p := range parts[1:] {
		if p = canonBase(p); p != "" {
			c.Fallbacks = append(c.Fallbacks, p)
		}
	}
	return c
}

func canonBase(base string) string {
	base = strings.TrimSpace(base)
	if base != "" && !strings.Contains(base, "://") {
		base = "http://" + base
	}
	return strings.TrimRight(base, "/")
}

// endpoints returns every configured endpoint, primary first.
func (c *Client) endpoints() []string {
	return append([]string{c.Base}, c.Fallbacks...)
}

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return &http.Client{}
}

// logger resolves the event sink for one call.
func (c *Client) logger(ctx context.Context) *slog.Logger {
	if c.Log != nil {
		return c.Log
	}
	return logging.From(ctx)
}

// Error is a non-200 daemon reply, decoded from the server's JSON error
// envelope when possible. RequestID is the server-assigned correlation key —
// quote it when reporting a daemon-side failure.
type Error struct {
	Status    int    // HTTP status code
	Msg       string // server-reported message (or raw body)
	RequestID string // X-Whisper-Request-Id of the failing exchange
}

func (e *Error) Error() string {
	msg := fmt.Sprintf("client: daemon replied %d: %s", e.Status, e.Msg)
	if e.RequestID != "" {
		msg += " (request " + e.RequestID + ")"
	}
	return msg
}

// ErrBusy marks exhausted backpressure: the server kept answering 429 past
// the retry budget, or the context deadline cannot cover the advertised
// Retry-After wait. Callers match it with errors.Is(err, client.ErrBusy)
// and decide whether to surface, queue, or shed.
var ErrBusy = errors.New("client: server busy")

// BusyError is the concrete error behind ErrBusy. It carries the
// server-assigned request ID of the last 429 so an operator can find the
// rejection in the daemon's access log, and wraps the underlying *Error.
type BusyError struct {
	// RequestID is the X-Whisper-Request-Id of the final 429 exchange.
	RequestID string
	// Attempts is how many times the request was sent before giving up.
	Attempts int
	last     error // the final 429 *Error (or nil when the deadline cut in)
}

func (e *BusyError) Error() string {
	msg := fmt.Sprintf("client: server busy after %d attempts", e.Attempts)
	if e.RequestID != "" {
		msg += " (request " + e.RequestID + ")"
	}
	if e.last != nil {
		msg += ": " + e.last.Error()
	}
	return msg
}

// Is makes errors.Is(err, ErrBusy) match.
func (e *BusyError) Is(target error) bool { return target == ErrBusy }

// Unwrap exposes the final 429 reply.
func (e *BusyError) Unwrap() error { return e.last }

// busyError builds the BusyError for the final 429, lifting the server
// request ID out of the wrapped *Error.
func busyError(attempts int, last error) *BusyError {
	be := &BusyError{Attempts: attempts, last: last}
	var se *Error
	if errors.As(last, &se) {
		be.RequestID = se.RequestID
	}
	return be
}

// Run executes req on the daemon and returns the decoded envelope, the raw
// canonical body bytes, and the cache path ("miss", "hit", "coalesced") the
// daemon reported. 429 responses are retried with the server's Retry-After
// until the retry budget — or the part of the context deadline the waits
// would overrun — is exhausted, which surfaces as ErrBusy. Connection
// errors fail over to the next configured endpoint.
func (c *Client) Run(ctx context.Context, req server.Request) (*server.Result, []byte, string, error) {
	payload, err := json.Marshal(req)
	if err != nil {
		return nil, nil, "", err
	}
	retries := c.MaxRetries
	if retries <= 0 {
		retries = DefaultMaxRetries
	}
	reqID := obs.RequestIDFrom(ctx)
	if reqID == "" {
		reqID = obs.NewRequestID()
	}
	log := c.logger(ctx)
	for attempt := 0; ; attempt++ {
		body, cachePath, retryAfter, err := c.post(ctx, payload, reqID)
		if err == nil {
			var res server.Result
			if err := json.Unmarshal(body, &res); err != nil {
				return nil, nil, "", fmt.Errorf("client: decoding envelope: %w", err)
			}
			return &res, body, cachePath, nil
		}
		if retryAfter < 0 {
			log.LogAttrs(ctx, slog.LevelWarn, "daemon request failed",
				slog.String(obs.RequestIDAttr, reqID),
				slog.Int("attempts", attempt+1),
				slog.String("error", err.Error()))
			return nil, nil, "", err
		}
		if attempt >= retries {
			busy := busyError(attempt+1, err)
			log.LogAttrs(ctx, slog.LevelWarn, "retry budget exhausted",
				slog.String(obs.RequestIDAttr, reqID),
				slog.Int("attempts", attempt+1),
				slog.String("error", busy.Error()))
			return nil, nil, "", busy
		}
		if deadline, ok := ctx.Deadline(); ok && time.Until(deadline) < retryAfter {
			// The advertised wait overruns the caller's deadline: waiting
			// would only convert the busy signal into a timeout. Give the
			// caller the honest one now.
			busy := busyError(attempt+1, err)
			log.LogAttrs(ctx, slog.LevelWarn, "retry-after exceeds deadline, giving up",
				slog.String(obs.RequestIDAttr, reqID),
				slog.Duration("retry_after", retryAfter),
				slog.Duration("deadline_in", time.Until(deadline)))
			return nil, nil, "", busy
		}
		log.LogAttrs(ctx, slog.LevelInfo, "daemon busy, backing off",
			slog.String(obs.RequestIDAttr, reqID),
			slog.Int("attempt", attempt+1),
			slog.Int("budget", retries),
			slog.Duration("retry_after", retryAfter))
		select {
		case <-time.After(retryAfter):
		case <-ctx.Done():
			return nil, nil, "", ctx.Err()
		}
	}
}

// post does one POST /v1/run round trip against the current endpoint,
// failing over across endpoints() on connection errors. retryAfter >= 0
// marks a retryable 429 and carries the server's requested delay.
func (c *Client) post(ctx context.Context, payload []byte, reqID string) (body []byte, cachePath string, retryAfter time.Duration, err error) {
	resp, err := c.roundTrip(ctx, func(base string) (*http.Request, error) {
		hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/v1/run", bytes.NewReader(payload))
		if err != nil {
			return nil, err
		}
		hreq.Header.Set("Content-Type", "application/json")
		if reqID != "" {
			hreq.Header.Set(server.RequestIDHeader, reqID)
		}
		return hreq, nil
	})
	if err != nil {
		return nil, "", -1, err
	}
	defer resp.Body.Close()
	body, err = io.ReadAll(resp.Body)
	if err != nil {
		return nil, "", -1, err
	}
	switch {
	case resp.StatusCode == http.StatusOK:
		return body, resp.Header.Get(server.CacheHeader), -1, nil
	case resp.StatusCode == http.StatusTooManyRequests:
		after := time.Second
		if v, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && v > 0 {
			after = time.Duration(v) * time.Second
		}
		return nil, "", after, decodeError(resp, body)
	default:
		return nil, "", -1, decodeError(resp, body)
	}
}

// roundTrip sends one request, starting at the sticky current endpoint and
// advancing through the remaining ones on connection errors. An HTTP
// response — any status — is the endpoint answering and ends the failover;
// only transport failures move on. The endpoint that answers becomes the
// new sticky choice.
func (c *Client) roundTrip(ctx context.Context, build func(base string) (*http.Request, error)) (*http.Response, error) {
	eps := c.endpoints()
	start := int(c.cur.Load())
	if start >= len(eps) {
		start = 0
	}
	var lastErr error
	for i := 0; i < len(eps); i++ {
		idx := (start + i) % len(eps)
		hreq, err := build(eps[idx])
		if err != nil {
			return nil, err
		}
		resp, err := c.httpClient().Do(hreq)
		if err == nil {
			c.cur.Store(int32(idx))
			return resp, nil
		}
		lastErr = err
		if ctx.Err() != nil {
			break
		}
		if i+1 < len(eps) {
			c.logger(ctx).LogAttrs(ctx, slog.LevelWarn, "endpoint unreachable, failing over",
				slog.String("endpoint", eps[idx]),
				slog.String("next", eps[(idx+1)%len(eps)]),
				slog.String("error", err.Error()))
		}
	}
	return nil, lastErr
}

// decodeError builds an *Error from a non-200 reply, preferring the JSON
// error envelope and falling back to the raw body; the request ID comes from
// the envelope or, failing that, the response header.
func decodeError(resp *http.Response, body []byte) error {
	e := &Error{Status: resp.StatusCode, Msg: strings.TrimSpace(string(body))}
	var env struct {
		Error     string `json:"error"`
		RequestID string `json:"request_id"`
	}
	if err := json.Unmarshal(body, &env); err == nil && env.Error != "" {
		e.Msg = env.Error
		e.RequestID = env.RequestID
	}
	if e.RequestID == "" {
		e.RequestID = resp.Header.Get(server.RequestIDHeader)
	}
	return e
}

// Experiments fetches the daemon's experiment index.
func (c *Client) Experiments(ctx context.Context) ([]string, error) {
	var idx struct {
		Experiments []string `json:"experiments"`
	}
	if err := c.getJSON(ctx, "/v1/experiments", &idx); err != nil {
		return nil, err
	}
	return idx.Experiments, nil
}

// Metrics fetches the daemon's metrics snapshot.
func (c *Client) Metrics(ctx context.Context) (obs.Snapshot, error) {
	var snap obs.Snapshot
	err := c.getJSON(ctx, "/metrics?format=json", &snap)
	return snap, err
}

func (c *Client) getJSON(ctx context.Context, path string, out any) error {
	resp, err := c.roundTrip(ctx, func(base string) (*http.Request, error) {
		hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, base+path, nil)
		if err != nil {
			return nil, err
		}
		hreq.Header.Set("Accept", "application/json")
		return hreq, nil
	})
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		return decodeError(resp, b)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}
