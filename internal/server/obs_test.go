package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"whisper/internal/obs"
	"whisper/internal/obs/logging"
)

// TestRequestIDEndToEnd is the observability acceptance pin: one request ID,
// supplied by the caller, must be observable at every layer — the response
// header, the access-log line, the trace span attributes (request span and
// the sched job spans the execution sharded into), and the offline obsreport
// rollup built from that trace.
func TestRequestIDEndToEnd(t *testing.T) {
	const reqID = "e2e-test-0001"
	var logBuf bytes.Buffer
	log := slog.New(slog.NewJSONHandler(&logBuf, &slog.HandlerOptions{Level: slog.LevelDebug}))

	reg := obs.NewRegistry()
	srv, err := New(Config{Parallel: 2, Obs: reg, Log: log})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	payload, _ := json.Marshal(Request{Experiment: "table2"})
	hreq, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/run", bytes.NewReader(payload))
	hreq.Header.Set("Content-Type", "application/json")
	hreq.Header.Set(RequestIDHeader, reqID)
	resp, err := http.DefaultClient.Do(hreq)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}

	// 1. The response header echoes the caller's ID.
	if got := resp.Header.Get(RequestIDHeader); got != reqID {
		t.Fatalf("response header = %q, want %q", got, reqID)
	}

	// 2. The access log carries it, as valid JSON lines.
	var accessSeen bool
	scan := bufio.NewScanner(bytes.NewReader(logBuf.Bytes()))
	for scan.Scan() {
		var line map[string]any
		if err := json.Unmarshal(scan.Bytes(), &line); err != nil {
			t.Fatalf("log line is not JSON: %q", scan.Text())
		}
		if line["msg"] == "request" {
			accessSeen = true
			if line[obs.RequestIDAttr] != reqID {
				t.Fatalf("access line request_id = %v, want %q", line[obs.RequestIDAttr], reqID)
			}
			for _, key := range []string{"method", "path", "status", "dur_us", "cache"} {
				if _, ok := line[key]; !ok {
					t.Fatalf("access line missing %q: %v", key, line)
				}
			}
		}
	}
	if !accessSeen {
		t.Fatalf("no access-log line emitted:\n%s", logBuf.String())
	}

	// 3. The trace spans carry it: the request span and every sched job span.
	tf := reg.BuildTrace(nil)
	var reqSpans, jobSpans int
	for _, ev := range tf.TraceEvents {
		if ev.Cat != "span" || ev.Args[obs.RequestIDAttr] != reqID {
			continue
		}
		if strings.HasPrefix(ev.Name, "server.run.") {
			reqSpans++
		}
		if strings.HasPrefix(ev.Name, "table2.") {
			jobSpans++
		}
	}
	if reqSpans != 1 {
		t.Fatalf("request span with ID: %d, want 1", reqSpans)
	}
	if jobSpans == 0 {
		t.Fatal("no sched job span carries the request ID")
	}

	// 4. obsreport's joined view indexes the request.
	snap := reg.Snapshot()
	rep := obs.BuildRunReport(tf, &snap)
	var found bool
	for _, rq := range rep.Requests {
		if rq.ID == reqID {
			found = true
			if rq.Spans < 2 {
				t.Fatalf("report rollup spans = %d, want >= 2 (request + jobs)", rq.Spans)
			}
		}
	}
	if !found {
		t.Fatalf("request ID missing from run report: %+v", rep.Requests)
	}
	var repText bytes.Buffer
	if err := rep.WriteText(&repText); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(repText.String(), reqID) {
		t.Fatalf("report text missing request ID:\n%s", repText.String())
	}
}

// TestRequestIDMintedAndInvalidReplaced checks the middleware mints a valid
// ID when the caller supplies none — or supplies garbage.
func TestRequestIDMintedAndInvalidReplaced(t *testing.T) {
	srv, _ := stubServer(t, Config{}, func(ctx context.Context, req Request) ([]byte, error) {
		return []byte("{}"), nil
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	minted := resp.Header.Get(RequestIDHeader)
	if !obs.ValidRequestID(minted) {
		t.Fatalf("minted ID %q not valid", minted)
	}

	hreq, _ := http.NewRequest(http.MethodGet, ts.URL+"/healthz", nil)
	hreq.Header.Set(RequestIDHeader, "bad id with spaces")
	resp, err = http.DefaultClient.Do(hreq)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	replaced := resp.Header.Get(RequestIDHeader)
	if replaced == "bad id with spaces" || !obs.ValidRequestID(replaced) {
		t.Fatalf("invalid caller ID echoed or replacement invalid: %q", replaced)
	}
}

// TestErrorBodyJSON checks every error path returns the structured JSON
// envelope with the request ID inside, plus the header.
func TestErrorBodyJSON(t *testing.T) {
	srv, _ := stubServer(t, Config{}, func(ctx context.Context, req Request) ([]byte, error) {
		return []byte("{}"), nil
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	payload, _ := json.Marshal(Request{Experiment: "nonsense"})
	hreq, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/run", bytes.NewReader(payload))
	hreq.Header.Set(RequestIDHeader, "err-path-1")
	resp, err := http.DefaultClient.Do(hreq)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Fatalf("error Content-Type = %q", ct)
	}
	if got := resp.Header.Get(RequestIDHeader); got != "err-path-1" {
		t.Fatalf("error response header = %q", got)
	}
	var body struct {
		Error     string `json:"error"`
		Status    int    `json:"status"`
		RequestID string `json:"request_id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatalf("error body is not JSON: %v", err)
	}
	if body.Status != http.StatusBadRequest || body.Error == "" || body.RequestID != "err-path-1" {
		t.Fatalf("error body = %+v", body)
	}
}

// TestMetricsNegotiation pins the /metrics content negotiation: explicit
// ?format wins, Accept headers steer, the default stays the aligned text the
// CI smoke job greps, and the Prometheus rendering passes its own lint.
func TestMetricsNegotiation(t *testing.T) {
	srv, _ := stubServer(t, Config{}, func(ctx context.Context, req Request) ([]byte, error) {
		return []byte("{}"), nil
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	post(t, ts.URL, Request{Experiment: "table2"})

	get := func(path, accept string) (int, string, []byte) {
		t.Helper()
		hreq, _ := http.NewRequest(http.MethodGet, ts.URL+path, nil)
		if accept != "" {
			hreq.Header.Set("Accept", accept)
		}
		resp, err := http.DefaultClient.Do(hreq)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, resp.Header.Get("Content-Type"), body
	}

	status, ct, body := get("/metrics", "")
	if status != http.StatusOK || !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("default: %d %q", status, ct)
	}
	if !bytes.Contains(body, []byte("server.requests{experiment=table2}")) {
		t.Fatalf("default text missing the smoke-job key:\n%s", body)
	}

	status, ct, body = get("/metrics?format=json", "")
	if status != http.StatusOK || !strings.HasPrefix(ct, "application/json") {
		t.Fatalf("json: %d %q", status, ct)
	}
	var snap obs.Snapshot
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatal(err)
	}

	for _, q := range []string{"?format=prom", "?format=prometheus", "?format=openmetrics"} {
		status, ct, body = get("/metrics"+q, "")
		if status != http.StatusOK || ct != obs.PromContentType {
			t.Fatalf("%s: %d %q", q, status, ct)
		}
		if errs := obs.LintPrometheus(bytes.NewReader(body)); len(errs) != 0 {
			t.Fatalf("%s fails lint: %v", q, errs)
		}
		if !bytes.Contains(body, []byte(`server_requests{experiment="table2"}`)) {
			t.Fatalf("%s missing series:\n%s", q, body)
		}
	}

	// Accept-header negotiation: a Prometheus scraper's signature and a JSON
	// client, no query string needed.
	if _, ct, _ = get("/metrics", "text/plain;version=0.0.4;charset=utf-8"); ct != obs.PromContentType {
		t.Fatalf("prometheus Accept → %q", ct)
	}
	if _, ct, _ = get("/metrics", "application/openmetrics-text; version=1.0.0"); ct != obs.PromContentType {
		t.Fatalf("openmetrics Accept → %q", ct)
	}
	if _, ct, _ = get("/metrics", "application/json"); !strings.HasPrefix(ct, "application/json") {
		t.Fatalf("json Accept → %q", ct)
	}

	// Unknown formats are a 400 with the JSON error envelope, not a silent
	// fallback.
	status, ct, body = get("/metrics?format=xml", "")
	if status != http.StatusBadRequest || !strings.HasPrefix(ct, "application/json") {
		t.Fatalf("unknown format: %d %q %s", status, ct, body)
	}
}

// TestExecutionKeepsRequestScopeAcrossDrainContext checks the execution
// context rebase (drain-cancellable base + request-scoped observability):
// the logger and request ID survive into the execution even though the HTTP
// request context is not its parent.
func TestExecutionKeepsRequestScopeAcrossDrainContext(t *testing.T) {
	var gotID string
	var logBuf bytes.Buffer
	log := slog.New(slog.NewJSONHandler(&logBuf, nil))
	srv, _ := stubServer(t, Config{Log: log}, func(ctx context.Context, req Request) ([]byte, error) {
		gotID = obs.RequestIDFrom(ctx)
		logging.From(ctx).Info("inside execution")
		return []byte("{}"), nil
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	payload, _ := json.Marshal(Request{Experiment: "table2"})
	hreq, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/run", bytes.NewReader(payload))
	hreq.Header.Set(RequestIDHeader, "drain-scope-1")
	resp, err := http.DefaultClient.Do(hreq)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	if gotID != "drain-scope-1" {
		t.Fatalf("execution ctx request ID = %q", gotID)
	}
	if !bytes.Contains(logBuf.Bytes(), []byte(`"inside execution"`)) ||
		!bytes.Contains(logBuf.Bytes(), []byte(`"request_id":"drain-scope-1"`)) {
		t.Fatalf("execution log line lost request scope:\n%s", logBuf.String())
	}
}
