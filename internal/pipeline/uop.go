package pipeline

import "whisper/internal/isa"

// FaultKind classifies a memory-access fault discovered at execution and
// raised at retirement.
type FaultKind int

// Fault kinds.
const (
	FaultNone       FaultKind = iota
	FaultPerm                 // translation present, access forbidden (Meltdown window)
	FaultNotPresent           // no translation (KASLR probe, Zombieload assist)
)

func (f FaultKind) String() string {
	switch f {
	case FaultPerm:
		return "permission"
	case FaultNotPresent:
		return "not-present"
	}
	return "none"
}

// uop is one in-flight micro-operation. Its static facts live in the shared
// decInst (d); the uop itself carries only dynamic state, so a recycled uop
// is re-armed by zeroing it and pointing d at the fetched instruction slot.
type uop struct {
	seq uint64
	idx int      // instruction index in the program
	d   *decInst // decoded instruction (shared, read-only)
	pc  uint64   // code virtual address
	dsb bool     // delivered from the DSB (vs MITE)

	// Branch prediction state captured at fetch.
	predTaken  bool
	predTarget uint64 // predicted target VA (ret)

	fetchAt uint64
	issueAt uint64
	started bool
	done    bool
	startAt uint64
	doneAt  uint64 // completion: results visible to dependents

	result   uint64
	flagsOut isa.Flags

	// Memory state.
	memVA      uint64
	memPA      uint64
	translated bool
	hitLevel   int // mem.Level of the access, -1 if none

	// Fault state.
	fault     FaultKind
	assistAt  uint64 // earliest cycle the fault may be raised at retire
	abortable bool   // a branch recovery may cut the assist short

	retActual uint64 // resolved return target (ret uops)
	storeData uint64 // value written to memory at commit (store/call uops)

	waitingFlush bool // load blocked by an older in-flight clflush

	mark uint64 // derivesFrom visit stamp (see Pipeline.markGen)

	// Active-list linkage: every ROB uop with !done is on the pipeline's
	// age-ordered active list, so the per-cycle execute/complete scans touch
	// only uops that can still change state instead of the whole ROB.
	actNext *uop
	actPrev *uop
	robAbs  uint64 // absolute ROB slot number; position = robAbs - robBase
}

func (u *uop) isLoad() bool   { return u.d.load }
func (u *uop) isBranch() bool { return u.d.branch }
func (u *uop) isFence() bool  { return u.d.fence }

// executing reports whether the uop occupies an execution resource at cycle c.
func (u *uop) executing(c uint64) bool {
	return u.started && !u.done && c >= u.startAt
}

// ClearKind classifies a pipeline clear.
type ClearKind int

// Clear kinds.
const (
	ClearBranch ClearKind = iota // branch misprediction recovery
	ClearFault                   // exception machine clear
)

// ClearEvent records one pipeline clear, consumed by the SMT model and the
// PMU toolset.
type ClearEvent struct {
	Cycle uint64
	Kind  ClearKind
	Cost  uint64
}
