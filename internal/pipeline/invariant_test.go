package pipeline

import (
	"strings"
	"testing"

	"whisper/internal/isa"
)

func invProgram() *isa.Program {
	return b().
		MovImm(isa.RAX, 0).
		MovImm(isa.RBX, 10).
		MovImm(isa.RCX, dataBase).
		Label("loop").
		Add(isa.RAX, isa.RAX, isa.RBX).
		StoreQ(isa.RCX, 0, isa.RAX).
		LoadQ(isa.RDX, isa.RCX, 0).
		Lfence().
		SubImm(isa.RBX, isa.RBX, 1).
		Jcc(isa.CondNE, "loop").
		Halt().
		MustAssemble()
}

func TestInvariantCheckerCleanRun(t *testing.T) {
	e := newEnv(t, nil)
	c := NewInvariantChecker()
	e.p.SetInvariantChecker(c)
	e.run(invProgram())
	if err := c.Err(); err != nil {
		t.Fatalf("clean run violates invariants: %v", err)
	}
	if c.Checks() == 0 {
		t.Fatal("checker attached but never ran")
	}
	if c.Retired() == 0 {
		t.Fatal("no commits observed")
	}
}

func TestInvariantCheckerDetectsCorruption(t *testing.T) {
	e := newEnv(t, nil)
	c := NewInvariantChecker()
	c.MaxViolations = 2
	e.p.SetInvariantChecker(c)
	e.run(invProgram())

	// Corrupt an incrementally maintained aggregate behind the checker's back;
	// the next audit must recount and flag it, repeatedly, with the retained
	// list bounded by MaxViolations.
	e.p.rsOcc = 7
	for i := 0; i < 5; i++ {
		c.checkCycle(e.p)
	}
	err := c.Err()
	if err == nil {
		t.Fatal("corrupted rsOcc aggregate not detected")
	}
	if !strings.Contains(err.Error(), "rsOcc") {
		t.Fatalf("unexpected violation: %v", err)
	}
	if got := len(c.Violations()); got != 2 {
		t.Fatalf("retained %d violations, want MaxViolations=2", got)
	}
}

func TestInvariantCheckerReset(t *testing.T) {
	e := newEnv(t, nil)
	c := NewInvariantChecker()
	e.p.SetInvariantChecker(c)
	e.run(invProgram())
	e.p.Reset(e.as)
	if err := c.Err(); err != nil {
		t.Fatalf("clean Reset violates invariants: %v", err)
	}
	if c.Resets() != 1 {
		t.Fatalf("resets = %d, want 1", c.Resets())
	}

	// A uop taken from the arena and never returned is exactly the leak the
	// Reset audit exists to catch.
	_ = e.p.allocUop()
	e.p.Reset(e.as)
	err := c.Err()
	if err == nil || !strings.Contains(err.Error(), "leaked") {
		t.Fatalf("leaked uop not detected across Reset: %v", err)
	}
}
