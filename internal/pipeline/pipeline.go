package pipeline

import (
	"errors"
	"fmt"
	"math/rand"

	"whisper/internal/bpu"
	"whisper/internal/isa"
	"whisper/internal/mem"
	"whisper/internal/paging"
	"whisper/internal/pmu"
	"whisper/internal/tlb"
)

// Resources are the shared microarchitectural structures a core operates on.
// They persist across program executions (caches stay warm, predictors stay
// trained, the cycle counter keeps counting) exactly as on real hardware.
type Resources struct {
	Hier *mem.Hierarchy
	LFB  *mem.LFB
	AS   *paging.AddressSpace
	DTLB *tlb.TLB
	ITLB *tlb.TLB
	BPU  *bpu.BPU
	PMU  *pmu.PMU
	Rand *rand.Rand
}

// ErrUnhandledFault is returned by Exec when a fault occurs with no
// transaction active and no signal handler installed.
var ErrUnhandledFault = errors.New("pipeline: unhandled fault")

// Pipeline is one simulated out-of-order core.
type Pipeline struct {
	cfg Config
	res Resources

	prog  *isa.Program
	regs  [isa.NumRegs]uint64
	flags isa.Flags

	cycle uint64
	seq   uint64

	rob []*uop
	idq []*uop

	// Frontend state.
	fetchIdx        int // next instruction index; -1 = fetch stopped
	fetchStallUntil uint64
	resteerUntil    uint64
	miteLeft        int
	dsb             *dsbCache
	blockedOnRet    *uop
	lastFetchLine   uint64
	haveFetchLine   bool

	// Recovery / transaction state.
	recoveryUntil uint64
	windowDebt    uint64 // squashed-uop debt accumulated by in-window clears
	windowMisp    bool
	inTxn         bool
	txnRegs       [isa.NumRegs]uint64
	txnFlags      isa.Flags
	txnAbortIdx   int
	sigHandler    int // -1 when absent

	halted bool
	faults int

	execStart   uint64
	execBudget  uint64
	frozenUntil uint64 // external (sibling-induced) full-core stall

	clears []ClearEvent
	tracer TraceFunc
}

// New builds a core from a configuration and shared resources. All resource
// fields must be non-nil.
func New(cfg Config, res Resources) (*Pipeline, error) {
	if res.Hier == nil || res.LFB == nil || res.AS == nil || res.DTLB == nil ||
		res.ITLB == nil || res.BPU == nil || res.PMU == nil || res.Rand == nil {
		return nil, errors.New("pipeline: nil resource")
	}
	if cfg.FetchWidth <= 0 || cfg.IssueWidth <= 0 || cfg.RetireWidth <= 0 ||
		cfg.ROBSize <= 0 || cfg.RSSize <= 0 || cfg.IDQSize <= 0 {
		return nil, fmt.Errorf("pipeline: invalid widths in config %+v", cfg)
	}
	return &Pipeline{
		cfg:        cfg,
		res:        res,
		dsb:        newDSBCache(cfg.DSBLines),
		sigHandler: -1,
		fetchIdx:   -1,
	}, nil
}

// Cycle returns the global cycle counter (the simulated TSC).
func (p *Pipeline) Cycle() uint64 { return p.cycle }

// Skip advances the cycle counter analytically, for bulk state operations
// (full TLB/cache eviction sweeps) whose cost is known but whose per-access
// simulation adds nothing. See DESIGN.md §4.
func (p *Pipeline) Skip(cycles uint64) {
	p.cycle += cycles
	p.res.PMU.Add(pmu.CyclesTotal, cycles)
}

// Reg returns an architectural register value.
func (p *Pipeline) Reg(r isa.Reg) uint64 { return p.regs[r] }

// SetReg sets an architectural register value (RZERO writes are ignored).
func (p *Pipeline) SetReg(r isa.Reg, v uint64) {
	if r != isa.RZERO {
		p.regs[r] = v
	}
}

// SetSignalHandler installs the instruction index control resumes at when a
// fault is raised outside a transaction (the signal-suppression model).
// Pass -1 to uninstall.
func (p *Pipeline) SetSignalHandler(idx int) { p.sigHandler = idx }

// SwitchAddressSpace performs a CR3 write: the data/instruction TLBs drop
// non-global entries and subsequent walks use the new tables.
func (p *Pipeline) SwitchAddressSpace(as *paging.AddressSpace) {
	p.res.AS = as
	p.res.DTLB.Flush(true)
	p.res.ITLB.Flush(true)
}

// AddressSpace returns the active address space.
func (p *Pipeline) AddressSpace() *paging.AddressSpace { return p.res.AS }

// Clears returns the pipeline-clear trace accumulated since the last Exec.
func (p *Pipeline) Clears() []ClearEvent { return p.clears }

// Faults returns the number of faults raised during the last Exec.
func (p *Pipeline) Faults() int { return p.faults }

// Result summarises one Exec run.
type Result struct {
	Cycles uint64 // cycles consumed by this run
	Faults int
	Halted bool
}

// BeginExec arms the core to run prog from its first instruction; drive it
// with StepCycle (co-scheduled multi-core use) or let Exec do both.
// Microarchitectural state (caches, TLBs, predictors, cycle counter)
// persists from previous runs; architectural registers are whatever SetReg
// left there.
func (p *Pipeline) BeginExec(prog *isa.Program, maxCycles uint64) {
	p.prog = prog
	p.rob = p.rob[:0]
	p.idq = p.idq[:0]
	p.fetchIdx = 0
	p.blockedOnRet = nil
	p.haveFetchLine = false
	p.halted = false
	p.inTxn = false
	p.faults = 0
	p.windowDebt = 0
	p.windowMisp = false
	p.clears = p.clears[:0]
	p.execStart = p.cycle
	p.execBudget = maxCycles
}

// StepCycle advances an armed core by exactly one cycle (no idle
// fast-forwarding, so co-scheduled cores stay in lockstep). It reports
// whether the program has halted.
func (p *Pipeline) StepCycle() (bool, error) {
	if p.halted {
		return true, nil
	}
	if p.cycle-p.execStart >= p.execBudget {
		return false, fmt.Errorf("pipeline: exceeded %d cycles", p.execBudget)
	}
	if err := p.step(false); err != nil {
		return p.halted, err
	}
	return p.halted, nil
}

// ExecResult summarises the run armed by the last BeginExec.
func (p *Pipeline) ExecResult() Result {
	return Result{Cycles: p.cycle - p.execStart, Faults: p.faults, Halted: p.halted}
}

// InjectStall freezes the whole core (fetch, issue, execute, retire) for the
// given number of cycles, modelling interference from a co-resident context:
// the SMT sibling's pipeline flush (§4.4) or an external throttling event.
func (p *Pipeline) InjectStall(cycles uint64) {
	p.frozenUntil = maxU64(p.frozenUntil, p.cycle+cycles)
}

// Exec runs prog until a Halt retires or maxCycles elapse.
func (p *Pipeline) Exec(prog *isa.Program, maxCycles uint64) (Result, error) {
	p.BeginExec(prog, maxCycles)
	var err error
	for !p.halted {
		if p.cycle-p.execStart >= p.execBudget {
			return p.ExecResult(), fmt.Errorf("pipeline: exceeded %d cycles", p.execBudget)
		}
		if stepErr := p.step(true); stepErr != nil {
			err = stepErr
			break
		}
	}
	return p.ExecResult(), err
}

// step advances the core by one cycle (optionally fast-forwarding through a
// provably idle stall span when the core is not co-scheduled).
func (p *Pipeline) step(allowFF bool) error {
	if p.cycle < p.frozenUntil {
		// Externally stalled (SMT sibling flush): nothing moves.
		p.countCycle()
		p.cycle++
		return nil
	}
	if err := p.retire(); err != nil {
		return err
	}
	if !p.halted {
		if allowFF && len(p.rob) == 0 && len(p.idq) == 0 && p.blockedOnRet == nil &&
			p.cycle < p.fetchStallUntil {
			p.fastForward(p.fetchStallUntil)
			return nil
		}
		p.complete()
		p.execute()
		p.issue()
		p.fetch()
	}
	p.countCycle()
	p.cycle++
	return nil
}

// fastForward advances an empty, fetch-stalled machine to the target cycle
// in one jump, bulk-updating the per-cycle PMU events. With no uops anywhere
// in flight and fetch stalled, no state transition can occur before the
// stall expires, so this is observationally identical to stepping.
func (p *Pipeline) fastForward(until uint64) {
	delta := until - p.cycle
	pm := p.res.PMU
	pm.Add(pmu.CyclesTotal, delta)
	pm.Add(pmu.UopsIssuedStallCycles, delta)
	pm.Add(pmu.UopsExecutedStallCycles, delta)
	pm.Add(pmu.UopsExecutedCoreCyclesNone, delta)
	pm.Add(pmu.CycleActivityStallsTotal, delta)
	pm.Add(pmu.RsEventsEmptyCycles, delta)
	pm.Add(pmu.DeDisUopQueueEmptyDi0, delta)
	if p.recoveryUntil > p.cycle {
		span := minU64(p.recoveryUntil, until) - p.cycle
		pm.Add(pmu.IntMiscRecoveryCycles, span)
		pm.Add(pmu.IntMiscRecoveryCyclesAny, span)
		pm.Add(pmu.DeDisDispatchTokenStalls2Retire, span)
	}
	if p.resteerUntil > p.cycle {
		pm.Add(pmu.IntMiscClearResteerCycles, minU64(p.resteerUntil, until)-p.cycle)
	}
	p.cycle = until
}

func minU64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}

// issue moves uops from the IDQ into the ROB/RS.
func (p *Pipeline) issue() {
	issued := 0
	blocked := false
	for issued < p.cfg.IssueWidth && len(p.idq) > 0 {
		if p.cycle < p.recoveryUntil { // allocator busy recovering
			p.res.PMU.Inc(pmu.ResourceStallsAny)
			blocked = true
			break
		}
		if len(p.rob) >= p.cfg.ROBSize || p.rsOccupancy() >= p.cfg.RSSize {
			p.res.PMU.Inc(pmu.ResourceStallsAny)
			blocked = true
			break
		}
		if p.fenceBlocksIssue() {
			blocked = true
			break
		}
		u := p.idq[0]
		p.idq = p.idq[1:]
		u.issueAt = p.cycle
		p.rob = append(p.rob, u)
		p.res.PMU.Inc(pmu.UopsIssuedAny)
		// Delivery-source events count uops actually handed to the backend;
		// uops discarded from the IDQ by a squash never count.
		if u.dsb {
			p.res.PMU.Inc(pmu.IdqDsbUops)
		} else {
			p.res.PMU.Inc(pmu.IdqMsMiteUops)
		}
		if u.in.IsFence() || u.in.Op == isa.OpXbegin || u.in.Op == isa.OpXend ||
			u.in.Op == isa.OpRdtsc {
			p.res.PMU.Inc(pmu.IdqMsUops) // microcode-sequenced
			if u.dsb {
				p.res.PMU.Inc(pmu.IdqMsDsbCycles)
			}
		}
		issued++
	}
	_ = blocked
	if issued == 0 {
		p.res.PMU.Inc(pmu.UopsIssuedStallCycles)
	}
}

// fenceBlocksIssue reports whether an unfinished fence sits in the ROB
// (LFENCE semantics: younger uops do not issue until it completes).
func (p *Pipeline) fenceBlocksIssue() bool {
	for _, u := range p.rob {
		if u.isFence() && !u.done {
			return true
		}
	}
	return false
}

// rsOccupancy counts uops holding reservation-station entries.
func (p *Pipeline) rsOccupancy() int {
	n := 0
	for _, u := range p.rob {
		if !u.done {
			n++
		}
	}
	return n
}

// retire commits up to RetireWidth uops in order, raising any fault at the
// head.
func (p *Pipeline) retire() error {
	for n := 0; n < p.cfg.RetireWidth && len(p.rob) > 0; n++ {
		u := p.rob[0]
		if u.fault != FaultNone {
			if p.cycle < u.assistAt {
				return nil // fault still processing
			}
			if p.cycle < p.recoveryUntil {
				// A branch recovery is still draining; the machine clear
				// serialises behind it.
				p.res.PMU.Inc(pmu.ResourceStallsAny)
				p.countRetireStall()
				return nil
			}
			return p.raiseFault(u)
		}
		if !u.done || p.cycle < u.doneAt {
			return nil
		}
		p.commit(u)
		p.emitTrace(u, true)
		p.rob = p.rob[1:]
		if p.halted {
			return nil
		}
	}
	return nil
}

func (p *Pipeline) countRetireStall() {
	p.res.PMU.Inc(pmu.DeDisDispatchTokenStalls2Retire)
}

// commit applies a uop's architectural effects.
func (p *Pipeline) commit(u *uop) {
	p.res.PMU.Inc(pmu.InstRetired)
	p.res.PMU.Inc(pmu.UopsRetiredAll)
	if dst := u.in.DstReg(); dst != isa.RZERO {
		p.regs[dst] = u.result
	}
	if u.in.WritesFlags() {
		p.flags = u.flagsOut
	}
	switch u.in.Op {
	case isa.OpStore:
		if u.translated {
			p.res.Hier.Phys.Write(u.memPA, u.in.Size, u.storeData)
			p.res.Hier.AccessData(u.memPA)
		}
	case isa.OpCall:
		if u.translated {
			p.res.Hier.Phys.Write(u.memPA, 8, u.storeData)
			p.res.Hier.AccessData(u.memPA)
		}
	case isa.OpClflush:
		if u.translated {
			p.res.Hier.Flush(u.memPA)
		}
	case isa.OpPrefetch:
		if u.translated {
			p.res.Hier.Prefetch(u.memPA)
		}
	case isa.OpXbegin:
		p.inTxn = true
		p.txnRegs = p.regs
		p.txnFlags = p.flags
		p.txnAbortIdx = u.in.Target
	case isa.OpXend:
		p.inTxn = false
	case isa.OpLoad:
		if u.hitLevel >= int(mem.LevelL2) {
			p.res.PMU.Inc(pmu.MemLoadRetiredL1Miss)
		}
		if u.hitLevel >= int(mem.LevelDRAM) {
			p.res.PMU.Inc(pmu.MemLoadRetiredL3Miss)
		}
	case isa.OpHalt:
		p.halted = true
	}
}

// raiseFault performs the exception machine clear for the faulting uop at
// the ROB head: every in-flight uop is squashed, the frontend is redirected
// to the abort handler (TSX) or signal handler, and the flush cost scales
// with in-flight state plus the recovery debt of clears that happened inside
// the transient window — the mechanism behind the paper's Table 3
// RESOURCE_STALLS / CLEAR_RESTEER deltas and the TET-MD timing signal.
func (p *Pipeline) raiseFault(u *uop) error {
	p.faults++
	p.res.PMU.Inc(pmu.MachineClearsCount)
	occupancy := uint64(len(p.rob)) + uint64(len(p.idq))
	cost := p.cfg.ExcFlushBase + uint64(p.cfg.ExcFlushPerUop*float64(occupancy)) + p.windowDebt
	if p.windowMisp {
		// The clear's frontend redirect replays through stale indirect
		// predictor state; Skylake counts it as a mispredicted indirect.
		p.res.PMU.Inc(pmu.BrMispExecIndirect)
		p.res.PMU.Inc(pmu.BrMispExecAllBranches)
	}
	p.clears = append(p.clears, ClearEvent{Cycle: p.cycle, Kind: ClearFault, Cost: cost})

	var redirect int
	var extra uint64
	switch {
	case p.inTxn:
		redirect = p.txnAbortIdx
		extra = p.cfg.TSXAbortLat
		p.regs = p.txnRegs
		p.flags = p.txnFlags
		p.inTxn = false
	case p.sigHandler >= 0:
		redirect = p.sigHandler
		extra = p.cfg.SignalDeliverLat
	default:
		p.halted = true
		return fmt.Errorf("%w: %s at pc %#x (va %#x)", ErrUnhandledFault, u.fault, u.pc, u.memVA)
	}

	p.emitTrace(u, false)
	if len(p.rob) > 1 {
		p.emitTraceSquashed(p.rob[1:])
	}
	p.emitTraceSquashed(p.idq)
	p.rob = p.rob[:0]
	p.idq = p.idq[:0]
	p.blockedOnRet = nil
	p.fetchIdx = redirect
	p.haveFetchLine = false
	p.miteLeft = p.cfg.MITEResteer
	until := p.cycle + cost + extra
	// The redirect abandons any wrong-path fetch stall (a pending icache
	// fill completes in the background but no longer gates fetch).
	p.fetchStallUntil = until
	p.recoveryUntil = maxU64(p.recoveryUntil, until)
	p.windowDebt = 0
	p.windowMisp = false
	return nil
}

// countCycle updates the per-cycle PMU events.
func (p *Pipeline) countCycle() {
	pm := p.res.PMU
	pm.Inc(pmu.CyclesTotal)

	execBusy := false
	memBusy := false
	startedNow := false
	for _, u := range p.rob {
		if u.executing(p.cycle) {
			execBusy = true
			if u.isLoad() || u.in.Op == isa.OpRet {
				memBusy = true
			}
		}
		if u.started && u.startAt == p.cycle {
			startedNow = true
		}
	}
	if !execBusy {
		pm.Inc(pmu.UopsExecutedStallCycles)
		pm.Inc(pmu.UopsExecutedCoreCyclesNone)
	}
	if !startedNow {
		pm.Inc(pmu.CycleActivityStallsTotal)
	}
	if memBusy {
		pm.Inc(pmu.CycleActivityCyclesMemAny)
	}
	if p.rsOccupancy() == 0 {
		pm.Inc(pmu.RsEventsEmptyCycles)
	}
	if len(p.idq) == 0 {
		pm.Inc(pmu.DeDisUopQueueEmptyDi0)
	}
	if p.cycle < p.recoveryUntil {
		pm.Inc(pmu.IntMiscRecoveryCycles)
		pm.Inc(pmu.IntMiscRecoveryCyclesAny)
		// Zen counts dispatch stalls on retire tokens while the retire
		// queue drains a recovery.
		pm.Inc(pmu.DeDisDispatchTokenStalls2Retire)
	}
	if p.cycle < p.resteerUntil {
		pm.Inc(pmu.IntMiscClearResteerCycles)
	}
}

func maxU64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
