package pipeline

import (
	"errors"
	"fmt"
	"math/rand"

	"whisper/internal/bpu"
	"whisper/internal/isa"
	"whisper/internal/mem"
	"whisper/internal/paging"
	"whisper/internal/pmu"
	"whisper/internal/tlb"
)

// Resources are the shared microarchitectural structures a core operates on.
// They persist across program executions (caches stay warm, predictors stay
// trained, the cycle counter keeps counting) exactly as on real hardware.
type Resources struct {
	Hier *mem.Hierarchy
	LFB  *mem.LFB
	AS   *paging.AddressSpace
	DTLB *tlb.TLB
	ITLB *tlb.TLB
	BPU  *bpu.BPU
	PMU  *pmu.PMU
	Rand *rand.Rand
}

// ErrUnhandledFault is returned by Exec when a fault occurs with no
// transaction active and no signal handler installed.
var ErrUnhandledFault = errors.New("pipeline: unhandled fault")

// Pipeline is one simulated out-of-order core.
type Pipeline struct {
	cfg Config
	res Resources

	prog  *isa.Program
	regs  [isa.NumRegs]uint64
	flags isa.Flags

	cycle uint64
	seq   uint64

	rob uopRing
	idq uopRing

	// Allocation-free machinery: the uop arena, the per-program decode memo
	// (survives Reset), the decode of the armed program, and scratch for the
	// derivesFrom dataflow walk.
	freeUops []*uop
	decoded  map[*isa.Program]*decProgram
	dec      *decProgram
	dfStack  []dfItem
	markGen  uint64

	// Incrementally maintained ROB aggregates, so the per-cycle bookkeeping
	// (issue gating, PMU activity events, completion polling) never rescans
	// the ROB. Invariants: rsOcc = uops with !done; fencesPending = fence
	// uops with !done; execCount = uops with started && !done; memCount =
	// the load/ret subset of execCount; minDoneAt = the earliest doneAt among
	// started && !done uops (stale-low is harmless: the completion scan
	// recomputes it); lastStartAt = the most recent cycle any uop began.
	rsOcc         int
	fencesPending int
	execCount     int
	memCount      int
	minDoneAt     uint64
	lastStartAt   uint64

	// The active list threads every ROB uop with !done in age order, so the
	// per-cycle execute/complete/skip scans are O(active) instead of O(ROB):
	// in a deep transient window the ROB is mostly completed wrong-path uops
	// that no scan needs to revisit. robBase counts ROB head pops, turning a
	// uop's absolute slot number (robAbs) back into its current position.
	actHead *uop
	actTail *uop
	robBase uint64

	// Frontend state.
	fetchIdx        int // next instruction index; -1 = fetch stopped
	fetchStallUntil uint64
	resteerUntil    uint64
	miteLeft        int
	dsb             *dsbCache
	blockedOnRet    *uop
	lastFetchLine   uint64
	haveFetchLine   bool

	// Recovery / transaction state.
	recoveryUntil uint64
	windowDebt    uint64 // squashed-uop debt accumulated by in-window clears
	windowMisp    bool
	inTxn         bool
	txnRegs       [isa.NumRegs]uint64
	txnFlags      isa.Flags
	txnAbortIdx   int
	sigHandler    int // -1 when absent

	halted bool
	faults int

	execStart   uint64
	execBudget  uint64
	frozenUntil uint64 // external (sibling-induced) full-core stall

	clears []ClearEvent
	tracer TraceFunc
	inv    *InvariantChecker // debug-build auditor; nil in production runs
}

// New builds a core from a configuration and shared resources. All resource
// fields must be non-nil.
func New(cfg Config, res Resources) (*Pipeline, error) {
	if res.Hier == nil || res.LFB == nil || res.AS == nil || res.DTLB == nil ||
		res.ITLB == nil || res.BPU == nil || res.PMU == nil || res.Rand == nil {
		return nil, errors.New("pipeline: nil resource")
	}
	if cfg.FetchWidth <= 0 || cfg.IssueWidth <= 0 || cfg.RetireWidth <= 0 ||
		cfg.ROBSize <= 0 || cfg.RSSize <= 0 || cfg.IDQSize <= 0 {
		return nil, fmt.Errorf("pipeline: invalid widths in config %+v", cfg)
	}
	return &Pipeline{
		cfg:         cfg,
		res:         res,
		dsb:         newDSBCache(cfg.DSBLines),
		rob:         newUopRing(cfg.ROBSize),
		idq:         newUopRing(cfg.IDQSize),
		decoded:     make(map[*isa.Program]*decProgram),
		sigHandler:  -1,
		fetchIdx:    -1,
		lastStartAt: ^uint64(0), // no uop has started yet
	}, nil
}

// Cycle returns the global cycle counter (the simulated TSC).
func (p *Pipeline) Cycle() uint64 { return p.cycle }

// Skip advances the cycle counter analytically, for bulk state operations
// (full TLB/cache eviction sweeps) whose cost is known but whose per-access
// simulation adds nothing. See DESIGN.md §4.
func (p *Pipeline) Skip(cycles uint64) {
	p.cycle += cycles
	p.res.PMU.Add(pmu.CyclesTotal, cycles)
}

// Reg returns an architectural register value.
func (p *Pipeline) Reg(r isa.Reg) uint64 { return p.regs[r] }

// SetReg sets an architectural register value (RZERO writes are ignored).
func (p *Pipeline) SetReg(r isa.Reg, v uint64) {
	if r != isa.RZERO {
		p.regs[r] = v
	}
}

// SetInvariantChecker attaches (or, with nil, detaches) a debug-build
// consistency auditor. The checker observes every step, commit, uop
// alloc/recycle, and Reset; it never mutates simulated state. Unlike the
// tracer it survives Reset, so a reused machine stays audited across runs.
func (p *Pipeline) SetInvariantChecker(c *InvariantChecker) {
	p.inv = c
	if c != nil {
		c.live = p.rob.Len() + p.idq.Len()
		c.lastCycle = p.cycle
		c.haveRetire = false
	}
}

// SetSignalHandler installs the instruction index control resumes at when a
// fault is raised outside a transaction (the signal-suppression model).
// Pass -1 to uninstall.
func (p *Pipeline) SetSignalHandler(idx int) { p.sigHandler = idx }

// SwitchAddressSpace performs a CR3 write: the data/instruction TLBs drop
// non-global entries and subsequent walks use the new tables.
func (p *Pipeline) SwitchAddressSpace(as *paging.AddressSpace) {
	p.res.AS = as
	p.res.DTLB.Flush(true)
	p.res.ITLB.Flush(true)
}

// AddressSpace returns the active address space.
func (p *Pipeline) AddressSpace() *paging.AddressSpace { return p.res.AS }

// Clears returns the pipeline-clear trace accumulated since the last Exec.
func (p *Pipeline) Clears() []ClearEvent { return p.clears }

// Faults returns the number of faults raised during the last Exec.
func (p *Pipeline) Faults() int { return p.faults }

// Result summarises one Exec run.
type Result struct {
	Cycles uint64 // cycles consumed by this run
	Faults int
	Halted bool
}

// BeginExec arms the core to run prog from its first instruction; drive it
// with StepCycle (co-scheduled multi-core use) or let Exec do both.
// Microarchitectural state (caches, TLBs, predictors, cycle counter)
// persists from previous runs; architectural registers are whatever SetReg
// left there.
func (p *Pipeline) BeginExec(prog *isa.Program, maxCycles uint64) {
	p.prog = prog
	p.dec = p.decodeProgram(prog)
	p.recycleAll(&p.rob)
	p.recycleAll(&p.idq)
	p.fetchIdx = 0
	p.blockedOnRet = nil
	p.haveFetchLine = false
	p.halted = false
	p.inTxn = false
	p.faults = 0
	p.windowDebt = 0
	p.windowMisp = false
	p.clears = p.clears[:0]
	p.execStart = p.cycle
	p.execBudget = maxCycles
}

// StepCycle advances an armed core by exactly one cycle (no idle
// fast-forwarding, so co-scheduled cores stay in lockstep). It reports
// whether the program has halted.
func (p *Pipeline) StepCycle() (bool, error) {
	if p.halted {
		return true, nil
	}
	if p.cycle-p.execStart >= p.execBudget {
		return false, fmt.Errorf("pipeline: exceeded %d cycles", p.execBudget)
	}
	if err := p.step(false); err != nil {
		return p.halted, err
	}
	if p.inv != nil {
		p.inv.checkCycle(p)
	}
	return p.halted, nil
}

// ExecResult summarises the run armed by the last BeginExec.
func (p *Pipeline) ExecResult() Result {
	return Result{Cycles: p.cycle - p.execStart, Faults: p.faults, Halted: p.halted}
}

// InjectStall freezes the whole core (fetch, issue, execute, retire) for the
// given number of cycles, modelling interference from a co-resident context:
// the SMT sibling's pipeline flush (§4.4) or an external throttling event.
func (p *Pipeline) InjectStall(cycles uint64) {
	p.frozenUntil = maxU64(p.frozenUntil, p.cycle+cycles)
}

// Exec runs prog until a Halt retires or maxCycles elapse.
func (p *Pipeline) Exec(prog *isa.Program, maxCycles uint64) (Result, error) {
	p.BeginExec(prog, maxCycles)
	var err error
	for !p.halted {
		if p.cycle-p.execStart >= p.execBudget {
			return p.ExecResult(), fmt.Errorf("pipeline: exceeded %d cycles", p.execBudget)
		}
		if stepErr := p.step(true); stepErr != nil {
			err = stepErr
			break
		}
		if p.inv != nil {
			p.inv.checkCycle(p)
		}
	}
	return p.ExecResult(), err
}

// step advances the core by one cycle (optionally skipping ahead through a
// provably idle span when the core is not co-scheduled).
func (p *Pipeline) step(allowFF bool) error {
	if p.cycle < p.frozenUntil {
		// Externally stalled (SMT sibling flush): nothing moves.
		if allowFF {
			p.skipFrozen()
		} else {
			p.countCycle()
			p.cycle++
		}
		return nil
	}
	if allowFF && p.skipIdle() {
		return nil
	}
	if err := p.retire(); err != nil {
		return err
	}
	if !p.halted {
		p.complete()
		p.execute()
		p.issue()
		p.fetch()
	}
	p.countCycle()
	p.cycle++
	return nil
}

// skipIdle advances the machine to the next cycle at which any stage can
// change state — the event horizon — in one jump, bulk-applying the per-cycle
// PMU events that per-cycle stepping would have counted. It reports whether
// it advanced; false means the current cycle must be stepped normally.
//
// The horizon is the earliest of: the execution budget's end, the expiry of a
// fetch stall (when fetch is otherwise able to run), a recovery or resteer
// regime boundary (the per-cycle counter predicates flip there), the head
// fault's assist completion, and the completion time of any in-flight uop.
// Within the span the machine provably does nothing: fetch is gated, nothing
// issues, starts, completes, or retires, so every per-cycle counter predicate
// is constant and the bulk update is bit-identical to stepping.
func (p *Pipeline) skipIdle() bool {
	if p.halted {
		return false
	}
	horizon := p.execStart + p.execBudget
	if horizon <= p.cycle {
		return false
	}
	// Fetch runs (with PMU and DSB-LRU side effects) whenever it is armed and
	// unstalled — even into a full IDQ — so an active frontend forces a step.
	if p.fetchIdx >= 0 && p.blockedOnRet == nil && p.fetchIdx < p.prog.Len() {
		if p.cycle >= p.fetchStallUntil {
			return false
		}
		horizon = minU64(horizon, p.fetchStallUntil)
	}
	// Counter regime boundaries.
	if p.recoveryUntil > p.cycle {
		horizon = minU64(horizon, p.recoveryUntil)
	}
	if p.resteerUntil > p.cycle {
		horizon = minU64(horizon, p.resteerUntil)
	}

	// Retirement: a ready head retires now; a faulting head either waits for
	// its assist (horizon event), stalls behind a draining recovery (counted
	// below), or raises its machine clear now.
	retireStall := false
	if p.rob.Len() > 0 {
		u := p.rob.At(0)
		if u.fault != FaultNone {
			switch {
			case p.cycle < u.assistAt:
				horizon = minU64(horizon, u.assistAt)
			case p.cycle < p.recoveryUntil:
				retireStall = true
			default:
				return false
			}
		} else if u.done {
			return false
		}
	}

	// Execution and completion: any uop that can complete or start this cycle
	// forces a step; in-flight completions bound the horizon. Done uops can
	// do neither, so the scan walks only the active list (rsOcc is the
	// incrementally maintained count of the same set).
	execBusy, memBusy, fencePending := false, false, false
	rsOcc := p.rsOcc
	olderAllDone := true
	for u := p.actHead; u != nil; u = u.actNext {
		if u.d.fence {
			if olderAllDone {
				return false
			}
			fencePending = true
			olderAllDone = false
			continue
		}
		if u.started {
			if u.doneAt <= p.cycle {
				return false
			}
			horizon = minU64(horizon, u.doneAt)
			execBusy = true
			if u.d.load || u.d.in.Op == isa.OpRet {
				memBusy = true
			}
			olderAllDone = false
			continue
		}
		// Unstarted: a uop whose operands are ready would start (or, for
		// memory ops, at least re-walk translation) this cycle.
		if p.wouldStart(int(u.robAbs-p.robBase), u) {
			return false
		}
		olderAllDone = false
	}

	// Issue: mirrors issue()'s blocked paths (recovery, ROB/RS full, fence)
	// and their ResourceStallsAny accounting; anything issuable forces a step.
	issueRSA := false
	if p.idq.Len() > 0 {
		if p.cycle < p.recoveryUntil {
			issueRSA = true
		} else if p.rob.Len() >= p.cfg.ROBSize || rsOcc >= p.cfg.RSSize {
			issueRSA = true
		} else if !fencePending {
			return false
		}
	}

	span := horizon - p.cycle
	pm := p.res.PMU
	pm.Add(pmu.CyclesTotal, span)
	pm.Add(pmu.UopsIssuedStallCycles, span)
	if retireStall {
		pm.Add(pmu.ResourceStallsAny, span)
		pm.Add(pmu.DeDisDispatchTokenStalls2Retire, span)
	}
	if issueRSA {
		pm.Add(pmu.ResourceStallsAny, span)
	}
	if !execBusy {
		pm.Add(pmu.UopsExecutedStallCycles, span)
		pm.Add(pmu.UopsExecutedCoreCyclesNone, span)
	}
	pm.Add(pmu.CycleActivityStallsTotal, span)
	if memBusy {
		pm.Add(pmu.CycleActivityCyclesMemAny, span)
	}
	if rsOcc == 0 {
		pm.Add(pmu.RsEventsEmptyCycles, span)
	}
	if p.idq.Len() == 0 {
		pm.Add(pmu.DeDisUopQueueEmptyDi0, span)
	}
	if p.cycle < p.recoveryUntil {
		pm.Add(pmu.IntMiscRecoveryCycles, span)
		pm.Add(pmu.IntMiscRecoveryCyclesAny, span)
		pm.Add(pmu.DeDisDispatchTokenStalls2Retire, span)
	}
	if p.cycle < p.resteerUntil {
		pm.Add(pmu.IntMiscClearResteerCycles, span)
	}
	p.cycle = horizon
	return true
}

// skipFrozen advances an externally frozen core (InjectStall) to the earlier
// of the freeze's end and the budget's end in one jump, bulk-applying the
// per-cycle counters. Nothing moves while frozen, so every countCycle
// predicate except the recovery/resteer regimes is constant.
func (p *Pipeline) skipFrozen() {
	horizon := minU64(p.frozenUntil, p.execStart+p.execBudget)
	if horizon <= p.cycle {
		p.countCycle()
		p.cycle++
		return
	}
	span := horizon - p.cycle
	execBusy, memBusy := false, false
	rsOcc := p.rsOcc
	for u := p.actHead; u != nil; u = u.actNext {
		if u.executing(p.cycle) {
			execBusy = true
			if u.d.load || u.d.in.Op == isa.OpRet {
				memBusy = true
			}
		}
	}
	pm := p.res.PMU
	pm.Add(pmu.CyclesTotal, span)
	if !execBusy {
		pm.Add(pmu.UopsExecutedStallCycles, span)
		pm.Add(pmu.UopsExecutedCoreCyclesNone, span)
	}
	pm.Add(pmu.CycleActivityStallsTotal, span)
	if memBusy {
		pm.Add(pmu.CycleActivityCyclesMemAny, span)
	}
	if rsOcc == 0 {
		pm.Add(pmu.RsEventsEmptyCycles, span)
	}
	if p.idq.Len() == 0 {
		pm.Add(pmu.DeDisUopQueueEmptyDi0, span)
	}
	if p.recoveryUntil > p.cycle {
		rec := minU64(p.recoveryUntil, horizon) - p.cycle
		pm.Add(pmu.IntMiscRecoveryCycles, rec)
		pm.Add(pmu.IntMiscRecoveryCyclesAny, rec)
		pm.Add(pmu.DeDisDispatchTokenStalls2Retire, rec)
	}
	if p.resteerUntil > p.cycle {
		pm.Add(pmu.IntMiscClearResteerCycles, minU64(p.resteerUntil, horizon)-p.cycle)
	}
	p.cycle = horizon
}

func minU64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}

// issue moves uops from the IDQ into the ROB/RS.
func (p *Pipeline) issue() {
	issued := 0
	for issued < p.cfg.IssueWidth && p.idq.Len() > 0 {
		if p.cycle < p.recoveryUntil { // allocator busy recovering
			p.res.PMU.Inc(pmu.ResourceStallsAny)
			break
		}
		if p.rob.Len() >= p.cfg.ROBSize || p.rsOcc >= p.cfg.RSSize {
			p.res.PMU.Inc(pmu.ResourceStallsAny)
			break
		}
		if p.fencesPending > 0 { // LFENCE semantics: issue stalls behind it
			break
		}
		u := p.idq.PopFront()
		u.issueAt = p.cycle
		u.robAbs = p.robBase + uint64(p.rob.Len())
		p.rob.PushBack(u)
		p.activePush(u)
		p.rsOcc++
		if u.d.fence {
			p.fencesPending++
		}
		p.res.PMU.Inc(pmu.UopsIssuedAny)
		// Delivery-source events count uops actually handed to the backend;
		// uops discarded from the IDQ by a squash never count.
		if u.dsb {
			p.res.PMU.Inc(pmu.IdqDsbUops)
		} else {
			p.res.PMU.Inc(pmu.IdqMsMiteUops)
		}
		op := u.d.in.Op
		if u.d.fence || op == isa.OpXbegin || op == isa.OpXend || op == isa.OpRdtsc {
			p.res.PMU.Inc(pmu.IdqMsUops) // microcode-sequenced
			if u.dsb {
				p.res.PMU.Inc(pmu.IdqMsDsbCycles)
			}
		}
		issued++
	}
	if issued == 0 {
		p.res.PMU.Inc(pmu.UopsIssuedStallCycles)
	}
}

// retire commits up to RetireWidth uops in order, raising any fault at the
// head.
func (p *Pipeline) retire() error {
	for n := 0; n < p.cfg.RetireWidth && p.rob.Len() > 0; n++ {
		u := p.rob.At(0)
		if u.fault != FaultNone {
			if p.cycle < u.assistAt {
				return nil // fault still processing
			}
			if p.cycle < p.recoveryUntil {
				// A branch recovery is still draining; the machine clear
				// serialises behind it.
				p.res.PMU.Inc(pmu.ResourceStallsAny)
				p.countRetireStall()
				return nil
			}
			return p.raiseFault(u)
		}
		if !u.done || p.cycle < u.doneAt {
			return nil
		}
		p.commit(u)
		if p.inv != nil {
			p.inv.noteRetire(u)
		}
		p.emitTrace(u, true)
		p.rob.PopFront()
		p.robBase++
		halted := p.halted
		p.recycleUop(u)
		if halted {
			return nil
		}
	}
	return nil
}

func (p *Pipeline) countRetireStall() {
	p.res.PMU.Inc(pmu.DeDisDispatchTokenStalls2Retire)
}

// commit applies a uop's architectural effects.
func (p *Pipeline) commit(u *uop) {
	p.res.PMU.Inc(pmu.InstRetired)
	p.res.PMU.Inc(pmu.UopsRetiredAll)
	if dst := u.d.dst; dst != isa.RZERO {
		p.regs[dst] = u.result
	}
	if u.d.writesFlags {
		p.flags = u.flagsOut
	}
	switch u.d.in.Op {
	case isa.OpStore:
		if u.translated {
			p.res.Hier.Phys.Write(u.memPA, u.d.in.Size, u.storeData)
			p.res.Hier.AccessData(u.memPA)
		}
	case isa.OpCall:
		if u.translated {
			p.res.Hier.Phys.Write(u.memPA, 8, u.storeData)
			p.res.Hier.AccessData(u.memPA)
		}
	case isa.OpClflush:
		if u.translated {
			p.res.Hier.Flush(u.memPA)
		}
	case isa.OpPrefetch:
		if u.translated {
			p.res.Hier.Prefetch(u.memPA)
		}
	case isa.OpXbegin:
		p.inTxn = true
		p.txnRegs = p.regs
		p.txnFlags = p.flags
		p.txnAbortIdx = u.d.in.Target
	case isa.OpXend:
		p.inTxn = false
	case isa.OpLoad:
		if u.hitLevel >= int(mem.LevelL2) {
			p.res.PMU.Inc(pmu.MemLoadRetiredL1Miss)
		}
		if u.hitLevel >= int(mem.LevelDRAM) {
			p.res.PMU.Inc(pmu.MemLoadRetiredL3Miss)
		}
	case isa.OpHalt:
		p.halted = true
	}
}

// raiseFault performs the exception machine clear for the faulting uop at
// the ROB head: every in-flight uop is squashed, the frontend is redirected
// to the abort handler (TSX) or signal handler, and the flush cost scales
// with in-flight state plus the recovery debt of clears that happened inside
// the transient window — the mechanism behind the paper's Table 3
// RESOURCE_STALLS / CLEAR_RESTEER deltas and the TET-MD timing signal.
func (p *Pipeline) raiseFault(u *uop) error {
	p.faults++
	p.res.PMU.Inc(pmu.MachineClearsCount)
	occupancy := uint64(p.rob.Len()) + uint64(p.idq.Len())
	cost := p.cfg.ExcFlushBase + uint64(p.cfg.ExcFlushPerUop*float64(occupancy)) + p.windowDebt
	if p.windowMisp {
		// The clear's frontend redirect replays through stale indirect
		// predictor state; Skylake counts it as a mispredicted indirect.
		p.res.PMU.Inc(pmu.BrMispExecIndirect)
		p.res.PMU.Inc(pmu.BrMispExecAllBranches)
	}
	p.clears = append(p.clears, ClearEvent{Cycle: p.cycle, Kind: ClearFault, Cost: cost})

	var redirect int
	var extra uint64
	switch {
	case p.inTxn:
		redirect = p.txnAbortIdx
		extra = p.cfg.TSXAbortLat
		p.regs = p.txnRegs
		p.flags = p.txnFlags
		p.inTxn = false
	case p.sigHandler >= 0:
		redirect = p.sigHandler
		extra = p.cfg.SignalDeliverLat
	default:
		p.halted = true
		return fmt.Errorf("%w: %s at pc %#x (va %#x)", ErrUnhandledFault, u.fault, u.pc, u.memVA)
	}

	p.emitTrace(u, false)
	p.squashFrom(&p.rob, 1)
	p.squashFrom(&p.idq, 0)
	p.rob.PopFront()
	p.robBase++
	p.noteDrop(u)
	p.recycleUop(u)
	p.blockedOnRet = nil
	p.fetchIdx = redirect
	p.haveFetchLine = false
	p.miteLeft = p.cfg.MITEResteer
	until := p.cycle + cost + extra
	// The redirect abandons any wrong-path fetch stall (a pending icache
	// fill completes in the background but no longer gates fetch).
	p.fetchStallUntil = until
	p.recoveryUntil = maxU64(p.recoveryUntil, until)
	p.windowDebt = 0
	p.windowMisp = false
	return nil
}

// countCycle updates the per-cycle PMU events from the incrementally
// maintained ROB aggregates (every uop started this cycle has
// startAt == cycle, so executing() collapses to started && !done here).
func (p *Pipeline) countCycle() {
	pm := p.res.PMU
	pm.Inc(pmu.CyclesTotal)

	if p.execCount == 0 {
		pm.Inc(pmu.UopsExecutedStallCycles)
		pm.Inc(pmu.UopsExecutedCoreCyclesNone)
	}
	if p.lastStartAt != p.cycle {
		pm.Inc(pmu.CycleActivityStallsTotal)
	}
	if p.memCount > 0 {
		pm.Inc(pmu.CycleActivityCyclesMemAny)
	}
	if p.rsOcc == 0 {
		pm.Inc(pmu.RsEventsEmptyCycles)
	}
	if p.idq.Len() == 0 {
		pm.Inc(pmu.DeDisUopQueueEmptyDi0)
	}
	if p.cycle < p.recoveryUntil {
		pm.Inc(pmu.IntMiscRecoveryCycles)
		pm.Inc(pmu.IntMiscRecoveryCyclesAny)
		// Zen counts dispatch stalls on retire tokens while the retire
		// queue drains a recovery.
		pm.Inc(pmu.DeDisDispatchTokenStalls2Retire)
	}
	if p.cycle < p.resteerUntil {
		pm.Inc(pmu.IntMiscClearResteerCycles)
	}
}

func maxU64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

// Reset returns the core to its power-on state against a fresh address space:
// registers, the cycle counter, the frontend (including the DSB), and all
// recovery/transaction state are cleared exactly as New leaves them. The uop
// arena and the per-program decode memo are retained — they are invisible to
// the simulation — so a reset machine re-runs programs without re-allocating.
// Shared resources (caches, TLBs, BPU, PMU) are reset by their owner.
func (p *Pipeline) Reset(as *paging.AddressSpace) {
	p.recycleAll(&p.rob)
	p.recycleAll(&p.idq)
	p.prog = nil
	p.dec = nil
	p.regs = [isa.NumRegs]uint64{}
	p.flags = isa.Flags{}
	p.cycle = 0
	p.seq = 0
	p.fetchIdx = -1
	p.fetchStallUntil = 0
	p.resteerUntil = 0
	p.miteLeft = 0
	p.dsb.reset()
	p.blockedOnRet = nil
	p.lastFetchLine = 0
	p.haveFetchLine = false
	p.recoveryUntil = 0
	p.windowDebt = 0
	p.windowMisp = false
	p.inTxn = false
	p.txnRegs = [isa.NumRegs]uint64{}
	p.txnFlags = isa.Flags{}
	p.txnAbortIdx = 0
	p.sigHandler = -1
	p.halted = false
	p.faults = 0
	p.execStart = 0
	p.execBudget = 0
	p.frozenUntil = 0
	p.clears = p.clears[:0]
	p.tracer = nil
	p.res.AS = as
	if p.inv != nil {
		p.inv.noteReset(p)
	}
}

// SetAddressSpace rebinds the page-table walker without the CR3 side effects
// of SwitchAddressSpace (no TLB flush). Snapshot restore uses it: the TLB
// contents are copied separately and must survive the rebind.
func (p *Pipeline) SetAddressSpace(as *paging.AddressSpace) { p.res.AS = as }

// CopyStateFrom makes p's simulation-visible state identical to src's, which
// must be quiescent (between Execs, rings drained by retirement or abandoned).
// Both pipelines must share a Config. The rings, arena, decode memo, tracer,
// and invariant checker stay p's own: a quiescent pipeline's leftovers are
// recycled on the next BeginExec without touching a single counter, so
// dropping them here is observationally identical to carrying them. The
// address space is NOT copied — the caller rebinds it (SetAddressSpace) to a
// table tree over p's own physical memory.
func (p *Pipeline) CopyStateFrom(src *Pipeline) {
	p.recycleAll(&p.rob)
	p.recycleAll(&p.idq)
	p.prog = nil
	p.dec = nil
	p.regs = src.regs
	p.flags = src.flags
	p.cycle = src.cycle
	p.seq = src.seq
	p.fetchIdx = -1
	p.fetchStallUntil = src.fetchStallUntil
	p.resteerUntil = src.resteerUntil
	p.miteLeft = src.miteLeft
	p.dsb.copyFrom(src.dsb)
	p.blockedOnRet = nil
	p.lastFetchLine = src.lastFetchLine
	p.haveFetchLine = false
	p.recoveryUntil = src.recoveryUntil
	p.windowDebt = src.windowDebt
	p.windowMisp = src.windowMisp
	p.inTxn = false
	p.txnRegs = src.txnRegs
	p.txnFlags = src.txnFlags
	p.txnAbortIdx = src.txnAbortIdx
	p.sigHandler = src.sigHandler
	p.halted = src.halted
	p.faults = src.faults
	p.execStart = src.execStart
	p.execBudget = src.execBudget
	p.frozenUntil = src.frozenUntil
	p.clears = p.clears[:0]
	p.tracer = nil
}
