package pipeline

import (
	"whisper/internal/isa"
	"whisper/internal/mem"
	"whisper/internal/pmu"
)

// dsbCache models the decoded stream buffer (uop cache) as an LRU set of
// 64-byte code-line addresses whose decoded uops are available at full fetch
// width. A resteer bypasses it for a few instructions (cfg.MITEResteer),
// which is what moves delivery from DSB to MITE in the paper's Table 3 when
// the transient Jcc triggers.
type dsbLine struct {
	va   uint64 // line VA
	tick uint64 // last-use tick
}

// The line set is a small linear-scanned slice rather than a map: fetch
// probes it every cycle, and at DSB capacities (tens of lines) a scan beats
// hashing — with a last-hit memo making the common straight-line case O(1).
// Ticks are unique, so LRU victim choice is deterministic either way.
type dsbCache struct {
	cap   int
	lines []dsbLine
	tick  uint64
	last  int // index of the most recent hit (fast path; verified before use)
}

func newDSBCache(capacity int) *dsbCache {
	if capacity <= 0 {
		capacity = 1
	}
	return &dsbCache{cap: capacity, lines: make([]dsbLine, 0, capacity)}
}

func (d *dsbCache) contains(lineVA uint64) bool {
	if d.last < len(d.lines) && d.lines[d.last].va == lineVA {
		d.tick++
		d.lines[d.last].tick = d.tick
		return true
	}
	for i := range d.lines {
		if d.lines[i].va == lineVA {
			d.tick++
			d.lines[i].tick = d.tick
			d.last = i
			return true
		}
	}
	return false
}

func (d *dsbCache) insert(lineVA uint64) {
	d.tick++
	for i := range d.lines {
		if d.lines[i].va == lineVA {
			d.lines[i].tick = d.tick
			d.last = i
			return
		}
	}
	if len(d.lines) >= d.cap {
		victim := 0
		for i := 1; i < len(d.lines); i++ {
			if d.lines[i].tick < d.lines[victim].tick {
				victim = i
			}
		}
		d.lines[victim] = dsbLine{va: lineVA, tick: d.tick}
		d.last = victim
		return
	}
	d.lines = append(d.lines, dsbLine{va: lineVA, tick: d.tick})
	d.last = len(d.lines) - 1
}

// reset empties the DSB and rewinds its LRU tick (machine reuse).
func (d *dsbCache) reset() {
	d.lines = d.lines[:0]
	d.tick = 0
	d.last = 0
}

// copyFrom makes d identical to src (snapshot restore); no allocations once
// d's backing array has reached src's length.
func (d *dsbCache) copyFrom(src *dsbCache) {
	d.cap = src.cap
	d.lines = append(d.lines[:0], src.lines...)
	d.tick = src.tick
	d.last = src.last
}

// fetch pulls instructions along the predicted path into the IDQ.
func (p *Pipeline) fetch() {
	if p.fetchIdx < 0 || p.blockedOnRet != nil || p.cycle < p.fetchStallUntil {
		return
	}
	if p.fetchIdx >= p.prog.Len() {
		return
	}

	// Per-cycle delivery path: DSB if the current line is cached and we are
	// not in a post-resteer MITE window.
	lineVA := p.prog.VA(p.fetchIdx) &^ (mem.LineSize - 1)
	useDSB := p.miteLeft == 0 && p.dsb.contains(lineVA)
	width := p.cfg.MITEWidth
	if useDSB {
		width = p.cfg.FetchWidth
	} else {
		p.res.PMU.Inc(pmu.IdqAllMiteCyclesAnyUops)
	}
	p.res.PMU.Inc(pmu.IcFw32)

	fetched := 0
	for fetched < width && p.idq.Len() < p.cfg.IDQSize {
		if p.fetchIdx < 0 || p.fetchIdx >= p.prog.Len() {
			break
		}
		d := &p.dec.insts[p.fetchIdx]
		pc := d.pc
		if !p.fetchLineReady(pc) {
			break // ITLB/icache stall installed
		}
		u := p.allocUop()
		u.seq = p.seq
		u.idx = p.fetchIdx
		u.d = d
		u.pc = pc
		u.dsb = useDSB
		u.hitLevel = -1
		u.fetchAt = p.cycle
		p.seq++
		if !useDSB {
			p.dsb.insert(pc &^ (mem.LineSize - 1))
			if p.miteLeft > 0 {
				p.miteLeft--
			}
		}
		p.idq.PushBack(u)
		fetched++
		if !p.predictNext(u) {
			break // fetch redirected or blocked
		}
	}
	if useDSB && fetched > 0 {
		p.res.PMU.Inc(pmu.IdqDsbCyclesAny)
		if fetched == width {
			p.res.PMU.Inc(pmu.IdqDsbCyclesOK)
		}
	}
}

// fetchLineReady charges ITLB and icache latency when fetch crosses into a
// new code line; it reports false (and installs a stall) when the line is
// not immediately deliverable.
func (p *Pipeline) fetchLineReady(pc uint64) bool {
	lineVA := pc &^ (mem.LineSize - 1)
	if p.haveFetchLine && lineVA == p.lastFetchLine {
		return true
	}
	var pa uint64
	if r, ok := p.res.ITLB.Lookup(pc); ok {
		p.res.PMU.Inc(pmu.BpL1TlbFetchHit)
		pa = r.PA
	} else {
		w := p.res.AS.WalkVA(pc)
		var walkLat uint64
		for _, pteAddr := range w.PTEReads() {
			lat, _ := p.res.Hier.AccessData(pteAddr)
			walkLat += lat + p.cfg.WalkLevelLat
			p.res.PMU.Inc(pmu.PageWalkerLoads)
		}
		p.res.PMU.Add(pmu.ItlbMissesWalkActive, walkLat)
		if !w.Present {
			// Fetch from an unmapped page: stop fetching; the harness maps
			// all code it runs, so this only happens on wild speculation.
			p.fetchIdx = -1
			return false
		}
		p.res.ITLB.Insert(w)
		if walkLat > 0 {
			// Stall for the walk; the retry will hit the ITLB and then
			// perform the icache access.
			p.fetchStallUntil = maxU64(p.fetchStallUntil, p.cycle+walkLat)
			return false
		}
		pa = w.PA
	}
	lat, lvl := p.res.Hier.AccessInst(pa)
	p.haveFetchLine = true
	p.lastFetchLine = lineVA
	if lvl != mem.LevelL1 {
		p.res.PMU.Add(pmu.Icache16BIfdataStall, lat)
		p.fetchStallUntil = maxU64(p.fetchStallUntil, p.cycle+lat)
		return false
	}
	return true
}

// predictNext steers fetch after u; it returns false when fetch must stop
// this cycle (taken branch, blocked ret, or halt).
func (p *Pipeline) predictNext(u *uop) bool {
	switch u.d.in.Op {
	case isa.OpJmp:
		p.fetchIdx = u.d.in.Target
		return false
	case isa.OpCall:
		p.res.BPU.PushRSB(p.prog.VA(u.idx + 1))
		p.fetchIdx = u.d.in.Target
		return false
	case isa.OpRet:
		if target, ok := p.res.BPU.PopRSB(); ok {
			if idx := p.prog.Index(target); idx >= 0 {
				u.predTaken = true
				u.predTarget = target
				p.fetchIdx = idx
				return false
			}
		}
		// No usable prediction: fetch blocks until the ret resolves.
		p.blockedOnRet = u
		p.fetchIdx = -1
		return false
	case isa.OpJcc:
		u.predTaken = p.res.BPU.PredictCond(u.pc)
		if u.predTaken {
			p.fetchIdx = u.d.in.Target
			return false
		}
		p.fetchIdx = u.idx + 1
		return true
	case isa.OpHalt:
		p.fetchIdx = -1
		return false
	default:
		p.fetchIdx = u.idx + 1
		return true
	}
}
