package pipeline

import (
	"errors"
	"math/rand"
	"testing"

	"whisper/internal/bpu"
	"whisper/internal/isa"
	"whisper/internal/mem"
	"whisper/internal/paging"
	"whisper/internal/pmu"
	"whisper/internal/tlb"
)

// Test address-space layout.
var kernVA = int64(-1 << 47) // 0xffff800000000000 as a signed immediate

const (
	codeBase   = 0x400000
	dataBase   = 0x500000
	stackBase  = 0x7ff000 // stack page; RSP starts mid-page
	kernBase   = 0xffff800000000000
	unmappedVA = 0x600000000000
)

type env struct {
	t    *testing.T
	p    *Pipeline
	phys *mem.Physical
	as   *paging.AddressSpace
	pm   *pmu.PMU
}

func newEnv(t *testing.T, mutate func(*Config)) *env {
	t.Helper()
	cfg := DefaultConfig()
	cfg.NoiseSigma = 0
	cfg.InterruptProb = 0
	if mutate != nil {
		mutate(&cfg)
	}
	phys := mem.NewPhysical()
	alloc := paging.NewFrameAllocator(0x100000)
	as := paging.NewAddressSpace(phys, alloc)
	mustMapRange := func(va uint64, n int, flags uint64) {
		if _, err := as.MapRange(va, n, flags); err != nil {
			t.Fatal(err)
		}
	}
	mustMapRange(codeBase, 4, paging.FlagU)
	mustMapRange(dataBase, 4, paging.FlagU|paging.FlagW)
	mustMapRange(stackBase, 1, paging.FlagU|paging.FlagW)
	// Kernel page: present, supervisor-only.
	if _, err := as.MapRange(kernBase, 1, paging.FlagW); err != nil {
		t.Fatal(err)
	}
	pm := pmu.New()
	res := Resources{
		Hier: mem.NewHierarchy(phys, mem.DefaultHierarchyConfig()),
		LFB:  mem.NewLFB(10),
		AS:   as,
		DTLB: tlb.New("dtlb", tlb.DefaultDTLBConfig()),
		ITLB: tlb.New("itlb", tlb.DefaultITLBConfig()),
		BPU:  bpu.New(bpu.DefaultConfig()),
		PMU:  pm,
		Rand: rand.New(rand.NewSource(1)),
	}
	p, err := New(cfg, res)
	if err != nil {
		t.Fatal(err)
	}
	return &env{t: t, p: p, phys: phys, as: as, pm: pm}
}

// kpa returns the physical address backing a test VA.
func (e *env) kpa(va uint64) uint64 {
	pa, ok := e.as.Translate(va)
	if !ok {
		e.t.Fatalf("test VA %#x unmapped", va)
	}
	return pa
}

func (e *env) writeData(va uint64, size int, v uint64) {
	e.phys.Write(e.kpa(va), size, v)
}

func (e *env) run(p *isa.Program) Result {
	e.t.Helper()
	res, err := e.p.Exec(p, 2_000_000)
	if err != nil {
		e.t.Fatalf("Exec: %v", err)
	}
	return res
}

func b() *isa.Builder { return isa.NewBuilder(codeBase) }

func TestALULoop(t *testing.T) {
	e := newEnv(t, nil)
	// sum = 1+2+...+10 via a countdown loop.
	p := b().
		MovImm(isa.RAX, 0).
		MovImm(isa.RBX, 10).
		Label("loop").
		Add(isa.RAX, isa.RAX, isa.RBX).
		SubImm(isa.RBX, isa.RBX, 1).
		Jcc(isa.CondNE, "loop").
		Halt().
		MustAssemble()
	e.run(p)
	if got := e.p.Reg(isa.RAX); got != 55 {
		t.Fatalf("sum = %d, want 55", got)
	}
}

func TestLoadStoreRoundTrip(t *testing.T) {
	e := newEnv(t, nil)
	p := b().
		MovImm(isa.RBX, dataBase).
		MovImm(isa.RAX, 0xdeadbeef).
		StoreQ(isa.RBX, 16, isa.RAX).
		LoadQ(isa.RCX, isa.RBX, 16).
		Halt().
		MustAssemble()
	e.run(p)
	if got := e.p.Reg(isa.RCX); got != 0xdeadbeef {
		t.Fatalf("loaded %#x", got)
	}
	if got := e.phys.Read(e.kpa(dataBase+16), 8); got != 0xdeadbeef {
		t.Fatalf("memory holds %#x", got)
	}
}

func TestStoreToLoadForwarding(t *testing.T) {
	e := newEnv(t, nil)
	// The load must see the in-flight store's data even before retire.
	p := b().
		MovImm(isa.RBX, dataBase).
		MovImm(isa.RAX, 42).
		StoreQ(isa.RBX, 0, isa.RAX).
		LoadQ(isa.RCX, isa.RBX, 0).
		Halt().
		MustAssemble()
	e.run(p)
	if got := e.p.Reg(isa.RCX); got != 42 {
		t.Fatalf("forwarded %d", got)
	}
}

func TestByteLoadTruncation(t *testing.T) {
	e := newEnv(t, nil)
	e.writeData(dataBase, 8, 0x1122334455667788)
	p := b().
		MovImm(isa.RBX, dataBase).
		LoadB(isa.RAX, isa.RBX, 0).
		Halt().
		MustAssemble()
	e.run(p)
	if got := e.p.Reg(isa.RAX); got != 0x88 {
		t.Fatalf("byte load = %#x", got)
	}
}

func TestRdtscMonotonic(t *testing.T) {
	e := newEnv(t, nil)
	p := b().
		Rdtsc(isa.RAX).
		NopSled(20).
		Rdtsc(isa.RBX).
		Halt().
		MustAssemble()
	e.run(p)
	t1, t2 := e.p.Reg(isa.RAX), e.p.Reg(isa.RBX)
	if t2 <= t1 {
		t.Fatalf("rdtsc not monotonic: %d then %d", t1, t2)
	}
}

func TestFlushedLoadSlower(t *testing.T) {
	e := newEnv(t, nil)
	timeLoad := func(flush bool) uint64 {
		bb := b().MovImm(isa.RBX, dataBase)
		if flush {
			bb.Clflush(isa.RBX, 0).Mfence()
		} else {
			bb.LoadQ(isa.RAX, isa.RBX, 0).Mfence() // warm it
		}
		bb.Rdtsc(isa.RCX).
			Lfence().
			LoadQ(isa.RAX, isa.RBX, 0).
			Lfence().
			Rdtsc(isa.RDX).
			Halt()
		p := bb.MustAssemble()
		e.run(p)
		return e.p.Reg(isa.RDX) - e.p.Reg(isa.RCX)
	}
	warm := timeLoad(false)
	cold := timeLoad(true)
	if cold <= warm+50 {
		t.Fatalf("flush+reload timing: warm=%d cold=%d", warm, cold)
	}
}

func TestCallRet(t *testing.T) {
	e := newEnv(t, nil)
	p := b().
		MovImm(isa.RSP, stackBase+0x800).
		MovImm(isa.RAX, 0).
		Call("fn").
		AddImm(isa.RAX, isa.RAX, 100). // after return
		Halt().
		Label("fn").
		AddImm(isa.RAX, isa.RAX, 1).
		Ret().
		MustAssemble()
	e.run(p)
	if got := e.p.Reg(isa.RAX); got != 101 {
		t.Fatalf("rax = %d, want 101", got)
	}
	if got := e.p.Reg(isa.RSP); got != stackBase+0x800 {
		t.Fatalf("rsp = %#x, want %#x", got, stackBase+0x800)
	}
}

func TestUnhandledFault(t *testing.T) {
	e := newEnv(t, nil)
	p := b().
		MovImm(isa.RBX, unmappedVA).
		LoadQ(isa.RAX, isa.RBX, 0).
		Halt().
		MustAssemble()
	_, err := e.p.Exec(p, 100000)
	if !errors.Is(err, ErrUnhandledFault) {
		t.Fatalf("err = %v, want ErrUnhandledFault", err)
	}
}

func TestSignalHandlerSuppression(t *testing.T) {
	e := newEnv(t, nil)
	bb := b().
		MovImm(isa.RAX, 1).
		MovImm(isa.RBX, unmappedVA).
		LoadQ(isa.RCX, isa.RBX, 0). // faults
		MovImm(isa.RAX, 2)          // transient only; must not commit
	handler := bb.Pos() + 1
	bb.Halt() // skipped via handler? No: handler points past this halt
	bb.Label("handler").
		MovImm(isa.RDX, 99).
		Halt()
	_ = handler
	p := bb.MustAssemble()
	// Install handler at the "handler" label's index (Halt at handler-1).
	e.p.SetSignalHandler(5)
	defer e.p.SetSignalHandler(-1)
	res := e.run(p)
	if res.Faults != 1 {
		t.Fatalf("faults = %d", res.Faults)
	}
	if got := e.p.Reg(isa.RDX); got != 99 {
		t.Fatalf("handler did not run: rdx = %d", got)
	}
	if got := e.p.Reg(isa.RAX); got != 1 {
		t.Fatalf("transient write committed: rax = %d", got)
	}
}

func TestTSXAbortRestoresRegisters(t *testing.T) {
	e := newEnv(t, nil)
	p := b().
		MovImm(isa.RAX, 7).
		Xbegin("abort").
		MovImm(isa.RAX, 8). // inside txn: retired then rolled back
		MovImm(isa.RBX, unmappedVA).
		LoadQ(isa.RCX, isa.RBX, 0). // faults, aborts txn
		Xend().
		Halt().
		Label("abort").
		MovImm(isa.RDX, 1).
		Halt().
		MustAssemble()
	res := e.run(p)
	if res.Faults != 1 {
		t.Fatalf("faults = %d", res.Faults)
	}
	if got := e.p.Reg(isa.RAX); got != 7 {
		t.Fatalf("txn rollback failed: rax = %d", got)
	}
	if got := e.p.Reg(isa.RDX); got != 1 {
		t.Fatalf("abort handler did not run: rdx = %d", got)
	}
}

func TestMeltdownForwardingGates(t *testing.T) {
	// The transient value of a faulting kernel load must depend on the
	// MeltdownVulnerable knob. Observable via the TET effect itself: compare
	// ToTE when the dependent Jcc matches vs not.
	secret := uint64('S')
	for _, vuln := range []bool{true, false} {
		e := newEnv(t, func(c *Config) { c.MeltdownVulnerable = vuln })
		e.phys.Write(e.kpa(kernBase), 1, secret)
		prog := b().
			MovImm(isa.RBX, kernVA).
			Rdtsc(isa.RSI).
			Xbegin("abort").
			LoadB(isa.RAX, isa.RBX, 0). // faulting kernel load
			Cmp(isa.RAX, isa.RDX).
			Jcc(isa.CondE, "taken").
			Lfence().
			Jmp("end").
			Label("taken").
			NopSled(24).
			Label("end").
			Xend().
			Halt(). // unreachable
			Label("abort").
			Rdtsc(isa.RDI).
			Halt().
			MustAssemble()
		tote := func(test uint64) uint64 {
			// Train not-taken (the sweep's non-matching values), then probe.
			e.p.SetReg(isa.RDX, secret+100)
			for i := 0; i < 3; i++ {
				e.run(prog)
			}
			e.p.SetReg(isa.RDX, test)
			e.run(prog)
			return e.p.Reg(isa.RDI) - e.p.Reg(isa.RSI)
		}
		base := tote(secret + 1)
		hit := tote(secret)
		if vuln && hit <= base {
			t.Errorf("vulnerable: ToTE(match)=%d <= ToTE(miss)=%d", hit, base)
		}
		if !vuln && hit != base {
			// Without forwarding both paths see value 0 and behave
			// identically (cycle-deterministic with zero noise).
			t.Errorf("patched: ToTE(match)=%d != ToTE(miss)=%d", hit, base)
		}
	}
}

func TestBranchMispredictRecovery(t *testing.T) {
	e := newEnv(t, nil)
	// Train not-taken, then flip: the final taken branch must mispredict
	// and still produce correct architectural results.
	p := b().
		MovImm(isa.RAX, 0).
		MovImm(isa.RBX, 8).
		Label("loop").
		SubImm(isa.RBX, isa.RBX, 1).
		CmpImm(isa.RBX, 100).
		Jcc(isa.CondE, "never").
		CmpImm(isa.RBX, 0).
		Jcc(isa.CondNE, "loop").
		MovImm(isa.RCX, 123).
		Halt().
		Label("never").
		MovImm(isa.RCX, 666).
		Halt().
		MustAssemble()
	e.run(p)
	if got := e.p.Reg(isa.RCX); got != 123 {
		t.Fatalf("rcx = %d", got)
	}
	_, mispreds, _, _ := e.p.res.BPU.Stats()
	if mispreds == 0 {
		t.Fatal("expected at least one misprediction")
	}
}

func TestTLBFillOnFaultKnob(t *testing.T) {
	probe := func(fill bool) (walks uint64) {
		e := newEnv(t, func(c *Config) { c.TLBFillOnFault = fill })
		p := b().
			MovImm(isa.RBX, kernVA).
			LoadB(isa.RAX, isa.RBX, 0).
			Halt().
			Label("h").
			Halt().
			MustAssemble()
		e.p.SetSignalHandler(3)
		e.run(p) // first probe: walks and (maybe) fills
		before := e.pm.Read(pmu.DtlbLoadMissesMissCausesAWalk)
		e.run(p) // second probe
		return e.pm.Read(pmu.DtlbLoadMissesMissCausesAWalk) - before
	}
	if w := probe(true); w != 0 {
		t.Errorf("fill-on-fault: second probe walked %d times, want 0", w)
	}
	if w := probe(false); w == 0 {
		t.Errorf("no fill-on-fault: second probe did not walk")
	}
}

func TestUnmappedAlwaysWalks(t *testing.T) {
	e := newEnv(t, nil)
	p := b().
		MovImm(isa.RBX, unmappedVA).
		LoadB(isa.RAX, isa.RBX, 0).
		Halt().
		Label("h").
		Halt().
		MustAssemble()
	e.p.SetSignalHandler(3)
	e.run(p)
	before := e.pm.Read(pmu.DtlbLoadMissesMissCausesAWalk)
	e.run(p)
	if got := e.pm.Read(pmu.DtlbLoadMissesMissCausesAWalk) - before; got == 0 {
		t.Fatal("unmapped probe did not walk")
	}
}

func TestMappedVsUnmappedToTE(t *testing.T) {
	// The TET-KASLR primitive: repeated probes of a mapped (but forbidden)
	// kernel address run faster than probes of an unmapped address.
	e := newEnv(t, nil)
	tote := func(target uint64) uint64 {
		bb := b().
			MovImm(isa.RBX, int64(target)).
			Rdtsc(isa.RSI).
			Lfence().
			Xbegin("abort").
			LoadB(isa.RAX, isa.RBX, 0).
			Xend().
			Halt().
			Label("abort").
			Rdtsc(isa.RDI).
			Halt()
		p := bb.MustAssemble()
		var last uint64
		for i := 0; i < 3; i++ {
			e.run(p)
			last = e.p.Reg(isa.RDI) - e.p.Reg(isa.RSI)
		}
		return last
	}
	mapped := tote(kernBase)
	unmapped := tote(unmappedVA)
	if mapped+20 >= unmapped {
		t.Fatalf("ToTE mapped=%d unmapped=%d; want mapped clearly smaller", mapped, unmapped)
	}
}

func TestRSBMispredictLateResolution(t *testing.T) {
	e := newEnv(t, nil)
	// Call pushes a return address; the code then overwrites the stack slot
	// and flushes it. The ret must (a) speculate to the RSB target and (b)
	// architecturally land on the overwritten target.
	p := b().
		MovImm(isa.RSP, stackBase+0x800).
		Call("fn").
		// Speculative return lands here (RSB target).
		Label("spec").
		MovImm(isa.R10, 1).
		Jmp("spec_end").
		Label("fn").
		// Overwrite the return address with &arch, flush the slot.
		MovImm(isa.RAX, codeBase+100*isa.InstBytes).
		StoreQ(isa.RSP, 0, isa.RAX).
		Clflush(isa.RSP, 0).
		Ret().
		Label("spec_end").
		Halt().
		MustAssemble()
	// Pad program to index 100 and place the architectural landing site.
	for p.Len() < 100 {
		p.Insts = append(p.Insts, isa.Inst{Op: isa.OpNop})
	}
	lbl := isa.NewBuilder(codeBase+100*isa.InstBytes).
		MovImm(isa.R11, 2).
		Halt().
		MustAssemble()
	p.Insts = append(p.Insts, lbl.Insts...)
	e.run(p)
	if got := e.p.Reg(isa.R11); got != 2 {
		t.Fatalf("architectural return target missed: r11 = %d", got)
	}
	if got := e.p.Reg(isa.R10); got != 0 {
		t.Fatalf("speculative path committed: r10 = %d", got)
	}
	_, _, retPredicts, _ := e.p.res.BPU.Stats()
	if retPredicts == 0 {
		t.Fatal("no RSB prediction recorded")
	}
	if e.pm.Read(pmu.BrMispExecIndirect) == 0 {
		t.Fatal("indirect misprediction not counted")
	}
}

func TestLfenceBlocksIssue(t *testing.T) {
	e := newEnv(t, nil)
	// A flushed load followed by lfence then many nops: the nops cannot
	// issue until the load completes, so total time ≈ load latency + nops.
	run := func(withFence bool) uint64 {
		bb := b().
			MovImm(isa.RBX, dataBase).
			Clflush(isa.RBX, 0).
			Mfence().
			Rdtsc(isa.RSI).
			LoadQ(isa.RAX, isa.RBX, 0)
		if withFence {
			bb.Lfence()
		}
		bb.NopSled(40).
			Mfence().
			Rdtsc(isa.RDI).
			Halt()
		p := bb.MustAssemble()
		e.run(p)
		return e.p.Reg(isa.RDI) - e.p.Reg(isa.RSI)
	}
	without := run(false)
	with := run(true)
	if with <= without {
		t.Fatalf("lfence should serialise: with=%d without=%d", with, without)
	}
}

func TestSkipAdvancesCycleAndPMU(t *testing.T) {
	e := newEnv(t, nil)
	c0 := e.p.Cycle()
	pm0 := e.pm.Read(pmu.CyclesTotal)
	e.p.Skip(1000)
	if e.p.Cycle() != c0+1000 {
		t.Fatalf("Cycle = %d", e.p.Cycle())
	}
	if e.pm.Read(pmu.CyclesTotal) != pm0+1000 {
		t.Fatal("PMU cycles not advanced")
	}
}

func TestExecCycleBudget(t *testing.T) {
	e := newEnv(t, nil)
	// Infinite loop must hit the cycle budget, not hang.
	p := b().Label("x").Jmp("x").MustAssemble()
	if _, err := e.p.Exec(p, 5000); err == nil {
		t.Fatal("expected budget error")
	}
}

func TestNewValidatesResources(t *testing.T) {
	if _, err := New(DefaultConfig(), Resources{}); err == nil {
		t.Fatal("nil resources accepted")
	}
	e := newEnv(t, nil)
	bad := DefaultConfig()
	bad.ROBSize = 0
	if _, err := New(bad, e.p.res); err == nil {
		t.Fatal("zero ROB accepted")
	}
}

func TestZombieloadLFBForwarding(t *testing.T) {
	// With MDS vulnerable, a not-present faulting load forwards the stale
	// LFB value; the dependent Jcc therefore behaves differently when the
	// test value matches that stale value.
	e := newEnv(t, nil)
	e.p.res.LFB.Record(0x12340, uint64('Z'))
	// RDX carries the test value so the same program (same branch PC) can be
	// trained and probed with different values, as the real 0..255 sweep does.
	prog := b().
		MovImm(isa.RBX, unmappedVA).
		Rdtsc(isa.RSI).
		Xbegin("abort").
		LoadB(isa.RAX, isa.RBX, 0).
		Cmp(isa.RAX, isa.RDX).
		Jcc(isa.CondE, "taken").
		Lfence().
		Jmp("end").
		Label("taken").
		NopSled(24).
		Label("end").
		Xend().
		Halt().
		Label("abort").
		Rdtsc(isa.RDI).
		Halt().
		MustAssemble()
	tote := func(test int64) uint64 {
		// Train the predictor not-taken with non-matching probes (the 255
		// other test values of the sweep), then measure one probe.
		e.p.SetReg(isa.RDX, uint64('Q'))
		for i := 0; i < 3; i++ {
			e.run(prog)
		}
		e.p.SetReg(isa.RDX, uint64(test))
		e.run(prog)
		return e.p.Reg(isa.RDI) - e.p.Reg(isa.RSI)
	}
	miss := tote('A')
	hit := tote('Z')
	if hit == miss {
		t.Fatalf("ZBL: ToTE(match)=%d == ToTE(miss)=%d", hit, miss)
	}
	// Zombieload's sign: the abortable assist is cut short, so match is
	// *shorter* (§4.3.2).
	if hit >= miss {
		t.Fatalf("ZBL sign wrong: match=%d miss=%d (want match < miss)", hit, miss)
	}
}
