package pipeline

// TraceRecord is the lifetime of one uop, emitted when it leaves the machine
// (retirement or squash). It feeds the trace package's pipeline diagrams and
// is the low-level observability hook for library users.
type TraceRecord struct {
	Seq     uint64
	Idx     int    // instruction index in the program
	PC      uint64 // code virtual address
	Text    string // disassembly
	FetchAt uint64
	IssueAt uint64
	StartAt uint64 // execution start (0 if never started)
	DoneAt  uint64 // completion (0 if never completed)
	EndAt   uint64 // retirement or squash cycle
	Retired bool   // false: squashed (transient)
	Fault   string // fault kind, "" if none
	FromDSB bool
}

// TraceFunc receives uop lifetime records.
type TraceFunc func(TraceRecord)

// SetTracer installs (or, with nil, removes) a uop lifetime tracer. Tracing
// is off the measurement path: it costs one callback per uop leaving the
// machine and perturbs no timing.
func (p *Pipeline) SetTracer(fn TraceFunc) { p.tracer = fn }

// emitTrace reports a uop leaving the machine.
func (p *Pipeline) emitTrace(u *uop, retired bool) {
	if p.tracer == nil {
		return
	}
	rec := TraceRecord{
		Seq:     u.seq,
		Idx:     u.idx,
		PC:      u.pc,
		Text:    u.d.in.String(),
		FetchAt: u.fetchAt,
		IssueAt: u.issueAt,
		EndAt:   p.cycle,
		Retired: retired,
		FromDSB: u.dsb,
	}
	if u.started {
		rec.StartAt = u.startAt
	}
	if u.done {
		rec.DoneAt = u.doneAt
	}
	if u.fault != FaultNone {
		rec.Fault = u.fault.String()
	}
	p.tracer(rec)
}
