package pipeline

import (
	"whisper/internal/isa"
	"whisper/internal/mem"
	"whisper/internal/paging"
	"whisper/internal/pmu"
)

// regValue resolves the value of architectural register r as seen by the
// uop at ROB position pos: the youngest older in-flight producer wins,
// otherwise the architectural register file. It reports whether the value
// is available this cycle. Faulting loads forward their (transient) result
// at doneAt — the Meltdown/MDS forwarding window.
func (p *Pipeline) regValue(pos int, r isa.Reg) (uint64, bool) {
	if r == isa.RZERO {
		return 0, true
	}
	for i := pos - 1; i >= 0; i-- {
		v := p.rob.At(i)
		if v.d.dst != r {
			continue
		}
		if v.done && p.cycle >= v.doneAt {
			return v.result, true
		}
		return 0, false
	}
	return p.regs[r], true
}

// regReady reports whether regValue would succeed for the uop at pos — the
// side-effect-free operand-availability predicate skipIdle scans with.
func (p *Pipeline) regReady(pos int, r isa.Reg) bool {
	if r == isa.RZERO {
		return true
	}
	for i := pos - 1; i >= 0; i-- {
		v := p.rob.At(i)
		if v.d.dst != r {
			continue
		}
		return v.done && p.cycle >= v.doneAt
	}
	return true
}

// flagsValue resolves RFLAGS for the uop at pos.
func (p *Pipeline) flagsValue(pos int) (isa.Flags, bool) {
	for i := pos - 1; i >= 0; i-- {
		v := p.rob.At(i)
		if !v.d.writesFlags {
			continue
		}
		if v.done && p.cycle >= v.doneAt {
			return v.flagsOut, true
		}
		return isa.Flags{}, false
	}
	return p.flags, true
}

// flagsReady is regReady for RFLAGS.
func (p *Pipeline) flagsReady(pos int) bool {
	for i := pos - 1; i >= 0; i-- {
		v := p.rob.At(i)
		if !v.d.writesFlags {
			continue
		}
		return v.done && p.cycle >= v.doneAt
	}
	return true
}

// wouldStart reports whether tryStart could make progress on u this cycle —
// i.e. whether its operands are available. For memory ops this is
// deliberately conservative: operand-ready memory ops re-walk translation
// (with TLB/cache/PMU side effects) every cycle even when ultimately blocked
// by an older store or clflush, so skipIdle must step them.
func (p *Pipeline) wouldStart(pos int, u *uop) bool {
	in := &u.d.in
	switch in.Op {
	case isa.OpNop, isa.OpJmp, isa.OpXend, isa.OpHalt, isa.OpXbegin,
		isa.OpRdtsc, isa.OpMovImm:
		return true
	case isa.OpMov, isa.OpAddImm, isa.OpSubImm, isa.OpAndImm,
		isa.OpShlImm, isa.OpShrImm, isa.OpCmpImm:
		return p.regReady(pos, in.Src1)
	case isa.OpAdd, isa.OpSub, isa.OpAnd, isa.OpOr, isa.OpXor, isa.OpCmp, isa.OpImul:
		return p.regReady(pos, in.Src1) && p.regReady(pos, in.Src2)
	case isa.OpJcc:
		return p.flagsReady(pos)
	case isa.OpLoad, isa.OpClflush, isa.OpPrefetch:
		return p.regReady(pos, in.Src1)
	case isa.OpStore:
		return p.regReady(pos, in.Src1) && p.regReady(pos, in.Src2)
	case isa.OpCall, isa.OpRet:
		return p.regReady(pos, isa.RSP)
	default:
		return true
	}
}

// execute starts ready uops on available ports. Only active (not done) uops
// can start, so the scan walks the active list — age order, like the full ROB
// scan it replaces — skipping the started in-flight ones.
func (p *Pipeline) execute() {
	aluUsed, loadUsed := 0, 0
	for u := p.actHead; u != nil; u = u.actNext {
		if u.started || u.d.fence {
			continue
		}
		if aluUsed >= p.cfg.ALUPorts && loadUsed >= p.cfg.LoadPorts {
			break // every port claimed; nothing further can start
		}
		isMemPort := u.d.load || u.d.in.Op == isa.OpRet
		if isMemPort && loadUsed >= p.cfg.LoadPorts {
			continue
		}
		if !isMemPort && aluUsed >= p.cfg.ALUPorts {
			continue
		}
		if !p.tryStart(int(u.robAbs-p.robBase), u) {
			continue
		}
		if isMemPort {
			loadUsed++
		} else {
			aluUsed++
		}
	}
}

// tryStart begins execution of u if its operands are available; it reports
// whether the uop started.
func (p *Pipeline) tryStart(pos int, u *uop) bool {
	in := &u.d.in
	switch in.Op {
	case isa.OpNop, isa.OpJmp, isa.OpXend, isa.OpHalt:
		p.begin(u, p.cfg.ALULat)
	case isa.OpXbegin:
		p.begin(u, 3)
	case isa.OpRdtsc:
		p.begin(u, 12)
		u.result = p.cycle + p.timerNoise()
	case isa.OpMovImm:
		p.begin(u, p.cfg.ALULat)
		u.result = uint64(in.Imm)
	case isa.OpMov:
		v, ok := p.regValue(pos, in.Src1)
		if !ok {
			return false
		}
		p.begin(u, p.cfg.ALULat)
		u.result = v
	case isa.OpAdd, isa.OpSub, isa.OpAnd, isa.OpOr, isa.OpXor, isa.OpCmp, isa.OpImul:
		a, ok1 := p.regValue(pos, in.Src1)
		b, ok2 := p.regValue(pos, in.Src2)
		if !ok1 || !ok2 {
			return false
		}
		lat := p.cfg.ALULat
		if in.Op == isa.OpImul {
			lat = p.cfg.MulLat
		}
		p.begin(u, lat)
		u.result, u.flagsOut = alu(in.Op, a, b)
	case isa.OpAddImm, isa.OpSubImm, isa.OpAndImm, isa.OpShlImm, isa.OpShrImm, isa.OpCmpImm:
		a, ok := p.regValue(pos, in.Src1)
		if !ok {
			return false
		}
		p.begin(u, p.cfg.ALULat)
		u.result, u.flagsOut = aluImm(in.Op, a, uint64(in.Imm))
	case isa.OpJcc:
		fl, ok := p.flagsValue(pos)
		if !ok {
			return false
		}
		p.begin(u, p.cfg.ALULat)
		u.flagsOut = fl // stash resolved flags for resolution at completion
	case isa.OpLoad:
		return p.startLoad(pos, u)
	case isa.OpStore:
		return p.startStore(pos, u)
	case isa.OpCall:
		return p.startCall(pos, u)
	case isa.OpRet:
		return p.startRet(pos, u)
	case isa.OpClflush, isa.OpPrefetch:
		return p.startFlushOrPrefetch(pos, u)
	default:
		p.begin(u, p.cfg.ALULat)
	}
	return true
}

func (p *Pipeline) begin(u *uop, lat uint64) {
	u.started = true
	u.startAt = p.cycle
	u.doneAt = p.cycle + lat
	p.noteStart(u)
}

// noteStart maintains the ROB aggregates when a uop begins executing.
func (p *Pipeline) noteStart(u *uop) {
	p.execCount++
	if u.d.load || u.d.in.Op == isa.OpRet {
		p.memCount++
	}
	if u.doneAt < p.minDoneAt {
		p.minDoneAt = u.doneAt
	}
	p.lastStartAt = p.cycle
}

// noteDrop maintains the ROB aggregates when a uop leaves the ROB without
// completing (squash or fault pop).
func (p *Pipeline) noteDrop(u *uop) {
	if u.done {
		return
	}
	p.activeUnlink(u)
	p.rsOcc--
	if u.d.fence {
		p.fencesPending--
	}
	if u.started {
		p.execCount--
		if u.d.load || u.d.in.Op == isa.OpRet {
			p.memCount--
		}
	}
}

func alu(op isa.Op, a, b uint64) (uint64, isa.Flags) {
	var r uint64
	var f isa.Flags
	switch op {
	case isa.OpAdd:
		r = a + b
		f.CF = r < a
	case isa.OpSub, isa.OpCmp:
		r = a - b
		f.CF = a < b
	case isa.OpAnd:
		r = a & b
	case isa.OpOr:
		r = a | b
	case isa.OpXor:
		r = a ^ b
	case isa.OpImul:
		r = a * b
	}
	if op == isa.OpCmp {
		f.ZF = r == 0
		f.SF = r>>63 != 0
		return a, f // cmp does not write its destination
	}
	f.ZF = r == 0
	f.SF = r>>63 != 0
	return r, f
}

func aluImm(op isa.Op, a, imm uint64) (uint64, isa.Flags) {
	switch op {
	case isa.OpAddImm:
		return alu(isa.OpAdd, a, imm)
	case isa.OpSubImm:
		return alu(isa.OpSub, a, imm)
	case isa.OpAndImm:
		return alu(isa.OpAnd, a, imm)
	case isa.OpCmpImm:
		return alu(isa.OpCmp, a, imm)
	case isa.OpShlImm:
		return a << (imm & 63), isa.Flags{ZF: a<<(imm&63) == 0}
	case isa.OpShrImm:
		return a >> (imm & 63), isa.Flags{ZF: a>>(imm&63) == 0}
	}
	return 0, isa.Flags{}
}

// translate walks the data TLB and page tables for va, charging PTE reads to
// the cache hierarchy. It returns the physical address, leaf flags, the
// translation latency, and whether a translation exists.
func (p *Pipeline) translate(va uint64) (pa uint64, flags uint64, lat uint64, present bool) {
	if r, ok := p.res.DTLB.Lookup(va); ok {
		return r.PA, r.Flags, 1, true
	}
	p.res.PMU.Inc(pmu.DtlbLoadMissesMissCausesAWalk)
	w := p.res.AS.WalkVA(va)
	for _, pteAddr := range w.PTEReads() {
		l, _ := p.res.Hier.AccessData(pteAddr)
		lat += l + p.cfg.WalkLevelLat
		p.res.PMU.Inc(pmu.PageWalkerLoads)
	}
	p.res.PMU.Add(pmu.DtlbLoadMissesWalkActive, lat)
	if !w.Present {
		return 0, 0, lat, false
	}
	// Intel parts in the paper's Table 2 load TLB entries even when the
	// access will fault on permissions; secure-TLB style hardware (and the
	// AMD models) only fill for genuinely permitted user accesses.
	if w.User() || p.cfg.TLBFillOnFault {
		p.res.DTLB.Insert(w)
	}
	return w.PA, w.Flags, lat, true
}

// blockedByFlush reports whether an older un-retired clflush to the same
// cache line sits between the load at pos and memory; forwarding and access
// must wait for it to retire.
func (p *Pipeline) blockedByFlush(pos int, va uint64) bool {
	line := va &^ (mem.LineSize - 1)
	for i := pos - 1; i >= 0; i-- {
		v := p.rob.At(i)
		if v.d.in.Op != isa.OpClflush {
			continue
		}
		if !v.started {
			return true // address unknown: conservative wait
		}
		if v.memVA&^(mem.LineSize-1) == line {
			return true
		}
	}
	return false
}

// forwardingStore returns the youngest older completed store writing va, if
// any, and whether an older incomplete store to va forces a wait.
func (p *Pipeline) forwardingStore(pos int, va uint64) (*uop, bool) {
	for i := pos - 1; i >= 0; i-- {
		v := p.rob.At(i)
		if v.d.in.Op != isa.OpStore && v.d.in.Op != isa.OpCall {
			continue
		}
		if !v.started {
			return nil, true // address unknown: conservative wait
		}
		if v.memVA != va {
			continue
		}
		if v.done && p.cycle >= v.doneAt {
			return v, false
		}
		return nil, true
	}
	return nil, false
}

// startLoad begins a load, handling translation, faults, transient
// forwarding, store forwarding, and the cache access.
func (p *Pipeline) startLoad(pos int, u *uop) bool {
	base, ok := p.regValue(pos, u.d.in.Src1)
	if !ok {
		return false
	}
	va := base + uint64(u.d.in.Imm)
	pa, flags, transLat, present := p.translate(va)
	u.memVA = va
	switch {
	case !present:
		u.fault = FaultNotPresent
		u.abortable = p.cfg.AbortableAssist
		var fwd uint64
		if p.cfg.MDSVulnerable {
			if stale, ok := p.res.LFB.StaleData(); ok {
				fwd = stale
			}
			u.assistAt = p.cycle + transLat + p.cfg.MDSAssistLat
		} else {
			u.assistAt = p.cycle + transLat + p.cfg.NotPresentLat
			u.abortable = false
		}
		p.beginMem(u, transLat+p.cfg.TransFwdLat)
		u.result = truncate(fwd, u.d.in.Size)
	case flags&pageUser == 0:
		u.fault = FaultPerm
		u.assistAt = p.cycle + transLat + p.cfg.PermFaultLat
		u.memPA = pa
		u.translated = true
		var fwd uint64
		if p.cfg.MeltdownVulnerable {
			fwd = p.res.Hier.Phys.Read(pa, u.d.in.Size)
		}
		p.beginMem(u, transLat+p.cfg.TransFwdLat)
		u.result = truncate(fwd, u.d.in.Size)
	default:
		if p.blockedByFlush(pos, va) {
			u.waitingFlush = true
			return false
		}
		u.waitingFlush = false
		st, wait := p.forwardingStore(pos, va)
		if wait {
			return false
		}
		u.memPA = pa
		u.translated = true
		if st != nil {
			p.beginMem(u, transLat+p.cfg.FwdLat)
			u.result = truncate(st.storeData, u.d.in.Size)
			return true
		}
		var lat uint64
		var lvl mem.Level
		val := p.res.Hier.Phys.Read(pa, u.d.in.Size)
		if p.cfg.InvisibleSpeculation && p.underShadow(pos) {
			// InvisiSpec-style service: data returns, nothing fills.
			lat, lvl = p.res.Hier.AccessDataInvisible(pa)
		} else {
			lat, lvl = p.res.Hier.AccessData(pa)
			if lvl != mem.LevelL1 {
				p.res.LFB.Record(pa, val) // line moves through the fill buffer
			}
		}
		u.hitLevel = int(lvl)
		p.beginMem(u, transLat+lat)
		u.result = val
	}
	return true
}

// underShadow reports whether the uop at pos executes under a speculative
// shadow: an older unresolved branch or an older pending fault.
func (p *Pipeline) underShadow(pos int) bool {
	for i := 0; i < pos; i++ {
		v := p.rob.At(i)
		if v.fault != FaultNone {
			return true
		}
		if v.d.branch && !v.done {
			return true
		}
	}
	return false
}

const (
	pageUser     = uint64(paging.FlagU)
	pageWritable = uint64(paging.FlagW)
)

func truncate(v uint64, size int) uint64 {
	if size <= 0 || size >= 8 {
		return v
	}
	return v & (1<<(8*size) - 1)
}

func (p *Pipeline) beginMem(u *uop, lat uint64) {
	u.started = true
	u.startAt = p.cycle
	u.doneAt = p.cycle + lat
	p.noteStart(u)
}

// startStore computes a store's address and data; memory is written at
// retirement, so transient stores never become visible.
func (p *Pipeline) startStore(pos int, u *uop) bool {
	base, ok1 := p.regValue(pos, u.d.in.Src1)
	data, ok2 := p.regValue(pos, u.d.in.Src2)
	if !ok1 || !ok2 {
		return false
	}
	va := base + uint64(u.d.in.Imm)
	pa, flags, transLat, present := p.translate(va)
	u.memVA = va
	switch {
	case !present:
		u.fault = FaultNotPresent
		u.abortable = false
		u.assistAt = p.cycle + transLat + p.cfg.NotPresentLat
		p.beginMem(u, transLat+p.cfg.StoreLat)
		return true
	case flags&pageUser == 0 || flags&pageWritable == 0:
		u.fault = FaultPerm
		u.abortable = false
		u.assistAt = p.cycle + transLat + p.cfg.PermFaultLat
		p.beginMem(u, transLat+p.cfg.StoreLat)
		return true
	}
	u.memPA = pa
	u.translated = true
	u.storeData = data
	p.beginMem(u, transLat+p.cfg.StoreLat)
	return true
}

// startCall computes the return-address push (the RSB was updated at fetch).
func (p *Pipeline) startCall(pos int, u *uop) bool {
	rsp, ok := p.regValue(pos, isa.RSP)
	if !ok {
		return false
	}
	newRSP := rsp - 8
	pa, _, transLat, present := p.translate(newRSP)
	u.memVA = newRSP
	if present {
		u.memPA = pa
		u.translated = true
	}
	u.result = newRSP // architectural RSP update
	u.storeData = p.prog.VA(u.idx + 1)
	p.beginMem(u, transLat+p.cfg.StoreLat)
	return true
}

// startRet loads the return address from the stack (honouring store
// forwarding and clflush blocking — the Spectre-RSB window machinery) and
// resolves the prediction at completion.
func (p *Pipeline) startRet(pos int, u *uop) bool {
	rsp, ok := p.regValue(pos, isa.RSP)
	if !ok {
		return false
	}
	u.memVA = rsp
	if p.blockedByFlush(pos, rsp) {
		u.waitingFlush = true
		return false
	}
	u.waitingFlush = false
	st, wait := p.forwardingStore(pos, rsp)
	if wait {
		return false
	}
	pa, _, transLat, present := p.translate(rsp)
	if !present {
		u.fault = FaultNotPresent
		u.abortable = false
		u.assistAt = p.cycle + transLat + p.cfg.NotPresentLat
		p.beginMem(u, transLat+p.cfg.TransFwdLat)
		return true
	}
	u.memPA = pa
	u.translated = true
	u.result = rsp + 8 // architectural RSP update
	if st != nil {
		u.retActual = st.storeData
		p.beginMem(u, transLat+p.cfg.FwdLat)
		return true
	}
	lat, lvl := p.res.Hier.AccessData(pa)
	u.hitLevel = int(lvl)
	u.retActual = p.res.Hier.Phys.Read(pa, 8)
	p.beginMem(u, transLat+lat)
	return true
}

func (p *Pipeline) startFlushOrPrefetch(pos int, u *uop) bool {
	base, ok := p.regValue(pos, u.d.in.Src1)
	if !ok {
		return false
	}
	va := base + uint64(u.d.in.Imm)
	pa, _, transLat, present := p.translate(va)
	u.memVA = va
	if present {
		u.memPA = pa
		u.translated = true
	}
	// Neither clflush nor prefetch faults on a bad address; prefetch's
	// latency still exposes the translation time (the EntryBleed-style
	// baseline measures exactly this).
	p.begin(u, transLat+2)
	return true
}

// complete finalises uops whose latency elapsed and resolves branches. The
// scan is skipped outright on cycles where nothing can finish: no in-flight
// uop's latency has elapsed (minDoneAt) and no fence is waiting on older
// completions.
func (p *Pipeline) complete() {
	if p.fencesPending == 0 && p.cycle < p.minDoneAt {
		return
	}
	newMin := ^uint64(0)
	// Walk the active list — completed uops can't finish twice, so visiting
	// only !done uops in age order is exactly the ROB scan this replaces.
	// Completions unlink the current node, so the successor is saved first.
	for u := p.actHead; u != nil; {
		next := u.actNext
		if u.d.fence {
			// A fence completes once every older uop has: with older
			// completions unlinked as the scan reaches them, that is
			// precisely when the fence has become the oldest active uop.
			if u == p.actHead {
				u.started = true
				u.startAt = p.cycle
				u.done = true
				u.doneAt = p.cycle
				p.rsOcc--
				p.fencesPending--
				p.lastStartAt = p.cycle
				p.activeUnlink(u)
			}
			u = next
			continue
		}
		if !u.started {
			u = next
			continue
		}
		if p.cycle < u.doneAt {
			if u.doneAt < newMin {
				newMin = u.doneAt
			}
			u = next
			continue
		}
		u.done = true
		p.rsOcc--
		p.execCount--
		if u.d.load || u.d.in.Op == isa.OpRet {
			p.memCount--
		}
		p.activeUnlink(u)
		switch u.d.in.Op {
		case isa.OpJcc:
			actual := u.d.in.Cond.Eval(u.flagsOut)
			misp := actual != u.predTaken
			p.res.BPU.UpdateCond(u.pc, actual, misp)
			if misp {
				p.res.PMU.Inc(pmu.BrMispExecAllBranches)
				next := u.idx + 1
				if actual {
					next = u.d.in.Target
				}
				p.recoverBranch(int(u.robAbs-p.robBase), next)
				// ROB truncated; stop scanning. Survivors' deadlines were
				// not all observed, so force a rescan next cycle.
				p.minDoneAt = p.cycle
				return
			}
			p.res.PMU.Inc(pmu.BpL1BtbCorrect)
		case isa.OpRet:
			if u.fault != FaultNone {
				u = next
				continue
			}
			actualIdx := p.prog.Index(u.retActual)
			if !u.predTaken {
				// Fetch was blocked waiting for this ret.
				if p.blockedOnRet == u {
					p.blockedOnRet = nil
					p.fetchIdx = actualIdx
					p.haveFetchLine = false
				}
				u = next
				continue
			}
			if u.retActual != u.predTarget {
				p.res.PMU.Inc(pmu.BrMispExecIndirect)
				p.res.PMU.Inc(pmu.BrMispExecAllBranches)
				p.recoverBranch(int(u.robAbs-p.robBase), actualIdx)
				p.minDoneAt = p.cycle
				return
			}
			p.res.PMU.Inc(pmu.BpL1BtbCorrect)
		}
		u = next
	}
	p.minDoneAt = newMin
}

// recoverBranch squashes everything younger than the mispredicted branch at
// pos and resteers the frontend to correctIdx. Recovery cost scales with the
// squashed in-flight work; a fraction of it becomes "debt" charged to a
// later exception flush in the same transient window (see raiseFault).
func (p *Pipeline) recoverBranch(pos int, correctIdx int) {
	squashed := p.rob.Len() - pos - 1 + p.idq.Len()
	p.squashFrom(&p.rob, pos+1)
	p.squashFrom(&p.idq, 0)
	p.blockedOnRet = nil
	p.fetchIdx = correctIdx
	p.haveFetchLine = false
	p.miteLeft = p.cfg.MITEResteer
	if correctIdx < 0 || correctIdx >= p.prog.Len() {
		p.fetchIdx = -1
	}

	cost := p.cfg.RecoveryBase + uint64(p.cfg.RecoveryPerUop*float64(squashed))
	p.recoveryUntil = maxU64(p.recoveryUntil, p.cycle+cost)
	p.resteerUntil = maxU64(p.resteerUntil, p.cycle+p.cfg.ResteerPenalty)
	// The resteer abandons any wrong-path fetch stall.
	p.fetchStallUntil = p.cycle + p.cfg.ResteerPenalty
	p.windowDebt += uint64(p.cfg.DebtFactor * float64(cost))
	p.windowMisp = true
	p.clears = append(p.clears, ClearEvent{Cycle: p.cycle, Kind: ClearBranch, Cost: cost})

	// An in-flight microcode assist is cut short when the mispredicted
	// branch's condition was derived from the assist's forwarded data: the
	// recovery invalidates the value the assist was replaying for (the
	// TET-ZBL mechanism, §4.3.2). A branch independent of the faulting load
	// (the Fig. 1a covert-channel gadget) leaves the assist running, so its
	// window stays full length and the recovery debt makes it *longer*.
	branch := p.rob.At(pos)
	for i := 0; i < p.rob.Len(); i++ {
		v := p.rob.At(i)
		if v.fault != FaultNone && v.abortable && v.assistAt > p.cycle+cost &&
			p.derivesFrom(pos, branch, v) {
			v.assistAt = p.cycle + cost + 4
		}
	}
}

// dfItem is one frame of derivesFrom's explicit dataflow walk.
type dfItem struct {
	pos int
	v   *uop
}

// derivesFrom reports whether u (at ROB position pos) transitively consumed
// target's result through register or flags dataflow. Visited uops are
// stamped with a per-walk generation (markGen) and the worklist reuses the
// pipeline's scratch stack, so the walk allocates nothing in steady state.
func (p *Pipeline) derivesFrom(pos int, u, target *uop) bool {
	if u == target {
		return true
	}
	p.markGen++
	gen := p.markGen
	stack := append(p.dfStack[:0], dfItem{pos, u})
	found := false
	for len(stack) > 0 {
		it := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		v := it.v
		if v == target {
			found = true
			break
		}
		if v.mark == gen {
			continue
		}
		v.mark = gen
		if v.d.readsFlags {
			if i := p.flagsProducerIdx(it.pos); i >= 0 {
				stack = append(stack, dfItem{i, p.rob.At(i)})
			}
		}
		for _, r := range v.d.srcs[:v.d.nsrc] {
			if i := p.producerIdx(it.pos, r); i >= 0 {
				stack = append(stack, dfItem{i, p.rob.At(i)})
			}
		}
	}
	p.dfStack = stack[:0]
	return found
}

// producerIdx returns the ROB index of the youngest older producer of r
// before pos, or -1 if the value comes from the architectural file.
func (p *Pipeline) producerIdx(pos int, r isa.Reg) int {
	if r == isa.RZERO {
		return -1
	}
	for i := pos - 1; i >= 0; i-- {
		if p.rob.At(i).d.dst == r {
			return i
		}
	}
	return -1
}

// flagsProducerIdx is producerIdx for RFLAGS.
func (p *Pipeline) flagsProducerIdx(pos int) int {
	for i := pos - 1; i >= 0; i-- {
		if p.rob.At(i).d.writesFlags {
			return i
		}
	}
	return -1
}

// timerNoise returns the measurement jitter added to an RDTSC read.
func (p *Pipeline) timerNoise() uint64 {
	n := p.res.Rand.NormFloat64() * p.cfg.NoiseSigma
	if n < 0 {
		n = -n
	}
	jitter := uint64(n)
	if p.cfg.InterruptProb > 0 && p.res.Rand.Float64() < p.cfg.InterruptProb {
		jitter += p.cfg.InterruptLat
	}
	return jitter
}
