package pipeline

import "whisper/internal/isa"

// decInst is the decoded form of one instruction: the static per-uop facts
// the frontend and backend would otherwise re-derive — with an allocation, in
// SrcRegs' case — on every fetch and every wakeup scan. One decInst is built
// per program instruction the first time the program runs on a pipeline and
// shared by every uop fetched from that slot afterwards.
type decInst struct {
	in          isa.Inst
	pc          uint64
	dst         isa.Reg
	srcs        [2]isa.Reg
	nsrc        int
	readsFlags  bool
	writesFlags bool
	fence       bool
	branch      bool
	load        bool
}

// decProgram is the decoded image of one isa.Program.
type decProgram struct {
	insts []decInst
}

// decodedCacheMax bounds the per-pipeline decode memo. Reused machines see a
// fresh *isa.Program per boot; without a bound the memo would retain every
// dead program's decode.
const decodedCacheMax = 64

// decodeProgram returns the memoized decode of prog, building it on first
// use. The memo is keyed by program identity and survives Reset, so reused
// machines re-running the same program skip decode entirely.
func (p *Pipeline) decodeProgram(prog *isa.Program) *decProgram {
	if d, ok := p.decoded[prog]; ok {
		return d
	}
	if len(p.decoded) >= decodedCacheMax {
		clear(p.decoded)
	}
	d := &decProgram{insts: make([]decInst, prog.Len())}
	for i := range d.insts {
		in := prog.At(i)
		di := &d.insts[i]
		di.in = in
		di.pc = prog.VA(i)
		di.dst = in.DstReg()
		for _, r := range in.SrcRegs() {
			di.srcs[di.nsrc] = r
			di.nsrc++
		}
		di.readsFlags = in.ReadsFlags()
		di.writesFlags = in.WritesFlags()
		di.fence = in.IsFence()
		di.branch = in.IsBranch()
		di.load = in.Op == isa.OpLoad
	}
	p.decoded[prog] = d
	return d
}

// uopRing is a fixed-capacity FIFO of in-flight uops with positional access
// in age order (ROB order). Capacity is rounded up to a power of two so the
// position-to-slot mapping is a mask, and the ring never grows or allocates
// after construction.
type uopRing struct {
	buf  []*uop
	mask int
	head int
	n    int
}

func newUopRing(capacity int) uopRing {
	c := 1
	for c < capacity {
		c <<= 1
	}
	return uopRing{buf: make([]*uop, c), mask: c - 1}
}

// Len returns the number of uops in the ring.
func (r *uopRing) Len() int { return r.n }

// At returns the uop at age position i (0 = oldest).
func (r *uopRing) At(i int) *uop { return r.buf[(r.head+i)&r.mask] }

// PushBack appends the youngest uop. The caller guarantees capacity (the
// pipeline gates on ROBSize/IDQSize before pushing).
func (r *uopRing) PushBack(u *uop) {
	r.buf[(r.head+r.n)&r.mask] = u
	r.n++
}

// PopFront removes and returns the oldest uop.
func (r *uopRing) PopFront() *uop {
	u := r.buf[r.head]
	r.buf[r.head] = nil
	r.head = (r.head + 1) & r.mask
	r.n--
	return u
}

// TruncateTo drops every uop at position >= keep (a squash). Callers emit
// traces for and recycle the dropped uops first.
func (r *uopRing) TruncateTo(keep int) {
	for i := keep; i < r.n; i++ {
		r.buf[(r.head+i)&r.mask] = nil
	}
	r.n = keep
}

// allocUop takes a zeroed uop from the arena, growing it only when empty.
func (p *Pipeline) allocUop() *uop {
	if p.inv != nil {
		p.inv.live++
	}
	if n := len(p.freeUops) - 1; n >= 0 {
		u := p.freeUops[n]
		p.freeUops = p.freeUops[:n]
		return u
	}
	return new(uop)
}

// recycleUop returns a uop to the arena once no pipeline structure references
// it (after retirement or squash, with its trace record already emitted).
func (p *Pipeline) recycleUop(u *uop) {
	if p.inv != nil {
		p.inv.live--
	}
	*u = uop{}
	p.freeUops = append(p.freeUops, u)
}

// recycleAll drains a ring into the arena without emitting traces (used when
// abandoning the previous run's leftovers and on Reset).
func (p *Pipeline) recycleAll(r *uopRing) {
	for r.n > 0 {
		p.recycleUop(r.PopFront())
	}
	r.head = 0
	if r == &p.rob {
		p.rsOcc, p.fencesPending, p.execCount, p.memCount = 0, 0, 0, 0
		p.minDoneAt = 0
		p.lastStartAt = ^uint64(0)
		p.actHead, p.actTail = nil, nil
		p.robBase = 0
	}
}

// activePush appends u (just issued, necessarily youngest) to the active list.
func (p *Pipeline) activePush(u *uop) {
	u.actPrev = p.actTail
	u.actNext = nil
	if p.actTail != nil {
		p.actTail.actNext = u
	} else {
		p.actHead = u
	}
	p.actTail = u
}

// activeUnlink removes u from the active list (completion, squash, or fault
// pop). Age order of the survivors is preserved.
func (p *Pipeline) activeUnlink(u *uop) {
	if u.actPrev != nil {
		u.actPrev.actNext = u.actNext
	} else {
		p.actHead = u.actNext
	}
	if u.actNext != nil {
		u.actNext.actPrev = u.actPrev
	} else {
		p.actTail = u.actPrev
	}
	u.actNext, u.actPrev = nil, nil
}

// squashFrom emits squash traces for and recycles every uop at position >=
// keep, then truncates the ring.
func (p *Pipeline) squashFrom(r *uopRing, keep int) {
	rob := r == &p.rob
	for i := keep; i < r.n; i++ {
		u := r.At(i)
		if rob {
			p.noteDrop(u)
		}
		p.emitTrace(u, false)
		p.recycleUop(u)
	}
	r.TruncateTo(keep)
}
