package pipeline

import (
	"fmt"

	"whisper/internal/isa"
)

// Violation is one invariant breach observed by an InvariantChecker.
type Violation struct {
	Cycle uint64
	Msg   string
}

// InvariantChecker is a debug-build observer of a pipeline's internal
// consistency, driven by the fuzzing subsystem (internal/fuzzgen). Attached
// via SetInvariantChecker, it audits after every step and across Reset:
//
//   - cycle-counter monotonicity (Skip and skip-ahead included);
//   - ROB/IDQ occupancy within the configured sizes, and RS occupancy within
//     RSSize;
//   - ROB and IDQ age order (fetch sequence numbers strictly increasing);
//   - retire-order monotonicity (commits happen in fetch order);
//   - the incrementally maintained ROB aggregates (rsOcc, fencesPending,
//     execCount, memCount) against a full recount;
//   - uop accounting: every allocated uop is in exactly one ring, and none
//     leak across Machine.Reset (the arena must hold only zeroed uops).
//
// The checker is a pure observer: it never touches simulated state, so an
// attached checker must not change a single cycle of any run — a contract the
// speedguard pins. All hooks are nil-guarded; a pipeline without a checker
// pays one predictable branch per step and per uop alloc/recycle.
type InvariantChecker struct {
	// MaxViolations bounds the retained violation list (default 16); further
	// breaches are counted but not recorded.
	MaxViolations int

	checks     uint64
	total      uint64
	violations []Violation

	live          int // uops taken from the arena and not yet recycled
	lastCycle     uint64
	lastRetireSeq uint64
	haveRetire    bool
	resets        uint64
	retired       uint64
}

// NewInvariantChecker returns a detached checker; attach it with
// (*Pipeline).SetInvariantChecker.
func NewInvariantChecker() *InvariantChecker { return &InvariantChecker{} }

// Checks returns the number of audit passes performed.
func (c *InvariantChecker) Checks() uint64 { return c.checks }

// Retired returns the number of commits observed.
func (c *InvariantChecker) Retired() uint64 { return c.retired }

// Resets returns the number of pipeline resets observed.
func (c *InvariantChecker) Resets() uint64 { return c.resets }

// Violations returns a copy of the recorded breaches.
func (c *InvariantChecker) Violations() []Violation {
	return append([]Violation(nil), c.violations...)
}

// Err summarises the audit: nil when every check passed, otherwise an error
// naming the first breach and the total count.
func (c *InvariantChecker) Err() error {
	if c.total == 0 {
		return nil
	}
	v := c.violations[0]
	return fmt.Errorf("pipeline: %d invariant violation(s); first at cycle %d: %s", c.total, v.Cycle, v.Msg)
}

func (c *InvariantChecker) violatef(cycle uint64, format string, args ...any) {
	c.total++
	max := c.MaxViolations
	if max <= 0 {
		max = 16
	}
	if len(c.violations) < max {
		c.violations = append(c.violations, Violation{Cycle: cycle, Msg: fmt.Sprintf(format, args...)})
	}
}

// checkCycle audits the pipeline after one step (which may span many cycles
// when the skip-ahead fast-forwarded an idle span).
func (c *InvariantChecker) checkCycle(p *Pipeline) {
	c.checks++
	if p.cycle < c.lastCycle {
		c.violatef(p.cycle, "cycle counter moved backwards: %d -> %d", c.lastCycle, p.cycle)
	}
	c.lastCycle = p.cycle

	if n := p.rob.Len(); n > p.cfg.ROBSize {
		c.violatef(p.cycle, "rob occupancy %d exceeds ROBSize %d", n, p.cfg.ROBSize)
	}
	if n := p.idq.Len(); n > p.cfg.IDQSize {
		c.violatef(p.cycle, "idq occupancy %d exceeds IDQSize %d", n, p.cfg.IDQSize)
	}
	if got, want := c.live, p.rob.Len()+p.idq.Len(); got != want {
		c.violatef(p.cycle, "live uop count %d != rob+idq occupancy %d (leak or double recycle)", got, want)
	}
	if p.rsOcc > p.cfg.RSSize {
		c.violatef(p.cycle, "rsOcc %d exceeds RSSize %d", p.rsOcc, p.cfg.RSSize)
	}

	// Recount the incrementally maintained aggregates and check age order.
	rs, fences, execs, mems := 0, 0, 0, 0
	var prev uint64
	for i := 0; i < p.rob.Len(); i++ {
		u := p.rob.At(i)
		if i > 0 && u.seq <= prev {
			c.violatef(p.cycle, "rob age order broken at pos %d: seq %d after %d", i, u.seq, prev)
		}
		prev = u.seq
		if u.done {
			continue
		}
		rs++
		if u.d.fence {
			fences++
		}
		if u.started {
			execs++
			if u.d.load || u.d.in.Op == isa.OpRet {
				mems++
			}
		}
	}
	for i := 1; i < p.idq.Len(); i++ {
		if p.idq.At(i).seq <= p.idq.At(i-1).seq {
			c.violatef(p.cycle, "idq age order broken at pos %d", i)
		}
	}
	// The active list must thread exactly the !done ROB uops in age order,
	// with correct back-links and a robAbs consistent with the current ring
	// position (robBase tracks head pops).
	act := p.actHead
	var prevAct *uop
	for i := 0; i < p.rob.Len(); i++ {
		u := p.rob.At(i)
		if u.done {
			continue
		}
		if act == nil {
			c.violatef(p.cycle, "active list missing uop seq %d at rob pos %d", u.seq, i)
			break
		}
		if act != u {
			c.violatef(p.cycle, "active list order/membership mismatch at rob pos %d", i)
			break
		}
		if got := int(u.robAbs - p.robBase); got != i {
			c.violatef(p.cycle, "robAbs stale for seq %d: position %d, rob pos %d", u.seq, got, i)
		}
		if act.actPrev != prevAct {
			c.violatef(p.cycle, "active list back-link broken at rob pos %d", i)
		}
		prevAct = act
		act = act.actNext
	}
	if act != nil {
		c.violatef(p.cycle, "active list holds uop(s) beyond the !done ROB set (seq %d)", act.seq)
	}
	if p.actTail != prevAct {
		c.violatef(p.cycle, "active list tail %p != last !done uop %p", p.actTail, prevAct)
	}

	if rs != p.rsOcc {
		c.violatef(p.cycle, "rsOcc aggregate %d, recount %d", p.rsOcc, rs)
	}
	if fences != p.fencesPending {
		c.violatef(p.cycle, "fencesPending aggregate %d, recount %d", p.fencesPending, fences)
	}
	if execs != p.execCount {
		c.violatef(p.cycle, "execCount aggregate %d, recount %d", p.execCount, execs)
	}
	if mems != p.memCount {
		c.violatef(p.cycle, "memCount aggregate %d, recount %d", p.memCount, mems)
	}
}

// noteRetire audits one commit: retirement must follow fetch order. Squashed
// and fault-popped uops never reach here, so the observed sequence numbers
// must be strictly increasing until the next Reset.
func (c *InvariantChecker) noteRetire(u *uop) {
	c.retired++
	if c.haveRetire && u.seq <= c.lastRetireSeq {
		c.violatef(0, "retire order broken: seq %d after %d", u.seq, c.lastRetireSeq)
	}
	c.lastRetireSeq = u.seq
	c.haveRetire = true
}

// noteReset audits the power-on contract of Pipeline.Reset: no uop may
// survive outside the arena, the rings must be empty, every arena uop must be
// zeroed, and the cycle counter restarts from zero.
func (c *InvariantChecker) noteReset(p *Pipeline) {
	c.resets++
	c.checks++
	if c.live != 0 {
		c.violatef(p.cycle, "%d uop(s) leaked across Reset", c.live)
	}
	if p.rob.Len() != 0 || p.idq.Len() != 0 {
		c.violatef(p.cycle, "rings not empty after Reset: rob %d, idq %d", p.rob.Len(), p.idq.Len())
	}
	for i, u := range p.freeUops {
		if *u != (uop{}) {
			c.violatef(p.cycle, "arena uop %d not zeroed after Reset", i)
			break
		}
	}
	if p.cycle != 0 {
		c.violatef(p.cycle, "cycle counter %d not cleared by Reset", p.cycle)
	}
	c.lastCycle = 0
	c.haveRetire = false
	c.lastRetireSeq = 0
}
