// Package pipeline implements the cycle-stepped out-of-order core: a fetch
// frontend with DSB/MITE paths and branch prediction, rename/ROB/RS issue,
// port-limited execution with a real TLB + page-walker + cache memory
// pipeline, in-order retirement, transient data forwarding, branch
// misprediction recovery, and exception machine clears. The Whisper timing
// channel is an emergent property of these mechanisms; nothing in this
// package special-cases the attacks.
package pipeline

// Config parameterises one core. Zero values are not usable; start from
// DefaultConfig and override.
type Config struct {
	// Widths and structure sizes.
	FetchWidth  int // uops fetched per cycle from the DSB path
	MITEWidth   int // uops per cycle through the legacy decode path
	IssueWidth  int // uops renamed/issued per cycle
	RetireWidth int // uops retired per cycle
	ROBSize     int
	RSSize      int
	IDQSize     int
	DSBLines    int // capacity of the uop cache, in 64-byte line entries
	MITEResteer int // insts fetched via MITE after any resteer (DSB bypass)

	// Execution resources.
	ALUPorts  int
	LoadPorts int
	ALULat    uint64
	MulLat    uint64
	StoreLat  uint64
	FwdLat    uint64 // store-to-load forwarding latency

	// Page walk.
	WalkLevelLat uint64 // fixed per-level cost added to PTE read latency

	// Speculation recovery.
	ResteerPenalty uint64  // frontend bubble after a branch mispredict
	RecoveryBase   uint64  // fixed allocator recovery cost per clear
	RecoveryPerUop float64 // recovery cost per squashed in-flight uop
	DebtFactor     float64 // fraction of in-window recovery cost added to a
	// subsequent exception flush (rename/RAT cleanup that the machine clear
	// must redo; the TET-MD "triggered => longer" mechanism)

	// Exception / transient-window machinery.
	ExcFlushBase     uint64  // fixed machine-clear cost on a fault
	ExcFlushPerUop   float64 // machine-clear cost per in-flight uop
	PermFaultLat     uint64  // fault-processing latency, present-but-forbidden page
	NotPresentLat    uint64  // fault-processing latency, unmapped page
	MDSAssistLat     uint64  // microcode-assist latency (Zombieload window)
	TransFwdLat      uint64  // latency until a faulting load forwards data
	TSXAbortLat      uint64  // extra cost to redirect into a TSX abort handler
	SignalDeliverLat uint64  // extra cost to deliver a suppressing signal

	// Vulnerability knobs (per-CPU-model, see internal/cpu).
	MeltdownVulnerable bool // faulting loads forward real data
	MDSVulnerable      bool // assisted loads forward stale LFB data
	TLBFillOnFault     bool // permission-faulting access still fills the TLB
	AbortableAssist    bool // a mispredict recovery cuts a pending assist short

	// InvisibleSpeculation enables an InvisiSpec/STT-style defense: loads
	// executing under a speculative shadow (an older unresolved branch or
	// pending fault) leave no cache or fill-buffer state behind. It kills
	// cache-probe covert channels; the TET channel does not care (§6.1).
	InvisibleSpeculation bool

	// Measurement noise (deterministic via the machine's seeded RNG).
	NoiseSigma    float64 // stddev of RDTSC jitter, cycles
	InterruptProb float64 // per-RDTSC probability of a big spike
	InterruptLat  uint64  // size of the spike
}

// DefaultConfig returns a Skylake-class client core configuration.
func DefaultConfig() Config {
	return Config{
		FetchWidth:  6,
		MITEWidth:   2,
		IssueWidth:  4,
		RetireWidth: 4,
		ROBSize:     224,
		RSSize:      97,
		IDQSize:     64,
		DSBLines:    64,
		MITEResteer: 8,

		ALUPorts:  4,
		LoadPorts: 2,
		ALULat:    1,
		MulLat:    3,
		StoreLat:  1,
		FwdLat:    5,

		WalkLevelLat: 4,

		ResteerPenalty: 10,
		RecoveryBase:   12,
		RecoveryPerUop: 0.6,
		DebtFactor:     0.5,

		// Fault processing takes the same time whether the page was mapped
		// or not (§5.2.1 rules out memory-related stall differences); the
		// mapped/unmapped ToTE difference comes from TLB/walk behaviour.
		ExcFlushBase:     28,
		ExcFlushPerUop:   0.9,
		PermFaultLat:     100,
		NotPresentLat:    100,
		MDSAssistLat:     160,
		TransFwdLat:      9,
		TSXAbortLat:      40,
		SignalDeliverLat: 12_000, // kernel entry + handler dispatch + sigreturn

		MeltdownVulnerable: true,
		MDSVulnerable:      true,
		TLBFillOnFault:     true,
		AbortableAssist:    true,

		NoiseSigma:    1.2,
		InterruptProb: 0.0004,
		InterruptLat:  1800,
	}
}
