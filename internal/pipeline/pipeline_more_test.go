package pipeline

import (
	"testing"

	"whisper/internal/isa"
	"whisper/internal/pmu"
)

func TestTSXCommitsWithoutFault(t *testing.T) {
	e := newEnv(t, nil)
	p := b().
		MovImm(isa.RAX, 1).
		Xbegin("abort").
		MovImm(isa.RAX, 2).
		Xend().
		Halt().
		Label("abort").
		MovImm(isa.RAX, 99).
		Halt().
		MustAssemble()
	res := e.run(p)
	if res.Faults != 0 {
		t.Fatalf("faults = %d", res.Faults)
	}
	if got := e.p.Reg(isa.RAX); got != 2 {
		t.Fatalf("rax = %d, want committed 2", got)
	}
}

func TestPrefetchWarmsCache(t *testing.T) {
	e := newEnv(t, nil)
	timeLoad := func(prefetch bool) uint64 {
		bb := b().MovImm(isa.RBX, dataBase+0x800)
		bb.Clflush(isa.RBX, 0).Mfence()
		if prefetch {
			bb.Prefetch(isa.RBX, 0).Mfence()
		}
		bb.Rdtsc(isa.RCX).
			Lfence().
			LoadQ(isa.RAX, isa.RBX, 0).
			Lfence().
			Rdtsc(isa.RDX).
			Halt()
		e.run(bb.MustAssemble())
		return e.p.Reg(isa.RDX) - e.p.Reg(isa.RCX)
	}
	cold := timeLoad(false)
	warm := timeLoad(true)
	if warm+50 >= cold {
		t.Fatalf("prefetch did not warm the line: cold=%d warm=%d", cold, warm)
	}
}

func TestStorePermissionFault(t *testing.T) {
	e := newEnv(t, nil)
	// Store to the supervisor kernel page must fault (suppressed here).
	bb := b().
		MovImm(isa.RBX, kernVA).
		MovImm(isa.RAX, 0x41).
		StoreQ(isa.RBX, 0, isa.RAX).
		Halt().
		Label("handler").
		MovImm(isa.RCX, 7).
		Halt()
	p := bb.MustAssemble()
	e.p.SetSignalHandler(4)
	defer e.p.SetSignalHandler(-1)
	res := e.run(p)
	if res.Faults != 1 {
		t.Fatalf("faults = %d", res.Faults)
	}
	if e.p.Reg(isa.RCX) != 7 {
		t.Fatal("handler did not run")
	}
	// The store must not have reached memory.
	if got := e.phys.Read(e.kpa(kernBase), 8); got == 0x41 {
		t.Fatal("supervisor store committed")
	}
}

func TestStoreToReadOnlyPageFaults(t *testing.T) {
	e := newEnv(t, nil)
	// Code pages are mapped user read-only.
	bb := b().
		MovImm(isa.RBX, codeBase).
		MovImm(isa.RAX, 0x41).
		StoreQ(isa.RBX, 0, isa.RAX).
		Halt().
		Label("handler").
		MovImm(isa.RCX, 7).
		Halt()
	p := bb.MustAssemble()
	e.p.SetSignalHandler(4)
	defer e.p.SetSignalHandler(-1)
	res := e.run(p)
	if res.Faults != 1 || e.p.Reg(isa.RCX) != 7 {
		t.Fatalf("read-only store: faults=%d rcx=%d", res.Faults, e.p.Reg(isa.RCX))
	}
}

func TestInvisibleSpeculationSuppressesTransientFills(t *testing.T) {
	run := func(invisible bool) bool {
		e := newEnv(t, func(c *Config) { c.InvisibleSpeculation = invisible })
		// Transient gadget: faulting load gates a dependent data load whose
		// line should (or should not) persist in the cache.
		probeVA := uint64(dataBase + 0xc00)
		probePA := e.kpa(probeVA)
		e.p.res.Hier.Flush(probePA)
		bb := b().
			MovImm(isa.RBX, unmappedVA).
			MovImm(isa.R10, int64(probeVA)).
			LoadB(isa.RAX, isa.RBX, 0). // opens the shadow
			AndImm(isa.RAX, isa.RAX, 0).
			Add(isa.R10, isa.R10, isa.RAX).
			LoadB(isa.RCX, isa.R10, 0). // transient fill under shadow
			Halt().
			Label("handler").
			Halt()
		p := bb.MustAssemble()
		e.p.SetSignalHandler(7)
		defer e.p.SetSignalHandler(-1)
		if _, err := e.p.Exec(p, 100000); err != nil {
			t.Fatal(err)
		}
		return e.p.res.Hier.L1D.Contains(probePA) ||
			e.p.res.Hier.L2.Contains(probePA) ||
			e.p.res.Hier.L3.Contains(probePA)
	}
	if !run(false) {
		t.Fatal("baseline: transient fill missing (gadget broken)")
	}
	if run(true) {
		t.Fatal("invisible speculation leaked a transient fill")
	}
}

func TestPMUCyclesMatchResultCycles(t *testing.T) {
	// fastForward must keep the PMU cycle counter exact.
	e := newEnv(t, nil)
	bb := b().
		MovImm(isa.RBX, unmappedVA).
		LoadB(isa.RAX, isa.RBX, 0). // fault → signal delivery (fast-forwarded)
		Halt().
		Label("handler").
		NopSled(4).
		Halt()
	p := bb.MustAssemble()
	e.p.SetSignalHandler(3)
	defer e.p.SetSignalHandler(-1)
	before := e.pm.Read(pmu.CyclesTotal)
	res := e.run(p)
	if got := e.pm.Read(pmu.CyclesTotal) - before; got != res.Cycles {
		t.Fatalf("PMU cycles %d != result cycles %d", got, res.Cycles)
	}
	if res.Cycles < 12000 {
		t.Fatalf("signal delivery not charged: %d cycles", res.Cycles)
	}
}

func TestDSBWarmupSpeedsFetch(t *testing.T) {
	e := newEnv(t, nil)
	p := b().NopSled(40).Halt().MustAssemble()
	run := func() (mite uint64) {
		before := e.pm.Read(pmu.IdqMsMiteUops)
		e.run(p)
		return e.pm.Read(pmu.IdqMsMiteUops) - before
	}
	first := run()
	second := run()
	if first == 0 {
		t.Fatal("cold run delivered nothing through MITE")
	}
	if second >= first {
		t.Fatalf("DSB warmup ineffective: MITE uops %d then %d", first, second)
	}
}

func TestSwitchAddressSpaceFlushesNonGlobalTLB(t *testing.T) {
	e := newEnv(t, nil)
	// Warm a (non-global) translation.
	p := b().
		MovImm(isa.RBX, dataBase).
		LoadQ(isa.RAX, isa.RBX, 0).
		Halt().
		MustAssemble()
	e.run(p)
	if _, ok := e.p.res.DTLB.Lookup(dataBase); !ok {
		t.Fatal("translation not cached")
	}
	e.p.SwitchAddressSpace(e.as) // CR3 write to the same tables
	if _, ok := e.p.res.DTLB.Lookup(dataBase); ok {
		t.Fatal("non-global entry survived CR3 write")
	}
}

func TestNestedCallRet(t *testing.T) {
	e := newEnv(t, nil)
	p := b().
		MovImm(isa.RSP, stackBase+0x800).
		MovImm(isa.RAX, 0).
		Call("outer").
		AddImm(isa.RAX, isa.RAX, 100).
		Halt().
		Label("outer").
		AddImm(isa.RAX, isa.RAX, 10).
		Call("inner").
		AddImm(isa.RAX, isa.RAX, 10).
		Ret().
		Label("inner").
		AddImm(isa.RAX, isa.RAX, 1).
		Ret().
		MustAssemble()
	e.run(p)
	if got := e.p.Reg(isa.RAX); got != 121 {
		t.Fatalf("rax = %d, want 121", got)
	}
	if got := e.p.Reg(isa.RSP); got != stackBase+0x800 {
		t.Fatalf("rsp = %#x", got)
	}
}

func TestClflushBlocksStoreForwarding(t *testing.T) {
	e := newEnv(t, nil)
	run := func(withFlush bool) (uint64, uint64) {
		bb := b().
			MovImm(isa.RBX, dataBase+0x40).
			MovImm(isa.RAX, 0x77).
			StoreQ(isa.RBX, 0, isa.RAX)
		if withFlush {
			bb.Clflush(isa.RBX, 0)
		}
		bb.Rdtsc(isa.RCX).
			LoadQ(isa.RDX, isa.RBX, 0).
			Lfence().
			Rdtsc(isa.RSI).
			Halt()
		p := bb.MustAssemble()
		e.run(p) // warm code and translations
		e.run(p)
		return e.p.Reg(isa.RSI) - e.p.Reg(isa.RCX), e.p.Reg(isa.RDX)
	}
	fast, v1 := run(false)
	slow, v2 := run(true)
	if v1 != 0x77 || v2 != 0x77 {
		t.Fatalf("values wrong: %#x %#x", v1, v2)
	}
	if slow <= fast {
		t.Fatalf("clflush did not block forwarding: fast=%d slow=%d", fast, slow)
	}
}

func TestByteStoreDoesNotClobberNeighbours(t *testing.T) {
	e := newEnv(t, nil)
	e.writeData(dataBase+0x100, 8, 0x1111111111111111)
	p := b().
		MovImm(isa.RBX, dataBase+0x100).
		MovImm(isa.RAX, 0xFF).
		Store(isa.RBX, 2, isa.RAX, 1). // single byte at +2
		Halt().
		MustAssemble()
	e.run(p)
	if got := e.phys.Read(e.kpa(dataBase+0x100), 8); got != 0x1111_1111_11FF_1111 {
		t.Fatalf("memory = %#x", got)
	}
}

func TestMultipleFaultsCounted(t *testing.T) {
	e := newEnv(t, nil)
	bb := b().
		MovImm(isa.RBX, unmappedVA).
		MovImm(isa.R10, 0)
	bb.Label("again").
		LoadB(isa.RAX, isa.RBX, 0).
		Halt() // unreachable
	bb.Label("handler").
		AddImm(isa.R10, isa.R10, 1).
		CmpImm(isa.R10, 3).
		Jcc(isa.CondNE, "again").
		Halt()
	p := bb.MustAssemble()
	e.p.SetSignalHandler(4)
	defer e.p.SetSignalHandler(-1)
	res := e.run(p)
	if res.Faults != 3 {
		t.Fatalf("faults = %d, want 3", res.Faults)
	}
	if e.p.Reg(isa.R10) != 3 {
		t.Fatalf("handler count = %d", e.p.Reg(isa.R10))
	}
}

func TestZeroNoiseDeterminism(t *testing.T) {
	e := newEnv(t, nil)
	p := b().
		MovImm(isa.RBX, dataBase).
		Rdtsc(isa.RSI).
		Lfence().
		LoadQ(isa.RAX, isa.RBX, 0).
		Lfence().
		Rdtsc(isa.RDI).
		Halt().
		MustAssemble()
	e.run(p) // warm everything
	var times []uint64
	for i := 0; i < 5; i++ {
		e.run(p)
		times = append(times, e.p.Reg(isa.RDI)-e.p.Reg(isa.RSI))
	}
	for i := 1; i < len(times); i++ {
		if times[i] != times[0] {
			t.Fatalf("non-deterministic timing with zero noise: %v", times)
		}
	}
}

func TestITLBWalkCounted(t *testing.T) {
	e := newEnv(t, nil)
	before := e.pm.Read(pmu.ItlbMissesWalkActive)
	e.run(b().Nop().Halt().MustAssemble())
	if e.pm.Read(pmu.ItlbMissesWalkActive) == before {
		t.Fatal("cold instruction fetch did not charge an ITLB walk")
	}
}

func TestResourceStallOnROBPressure(t *testing.T) {
	e := newEnv(t, func(c *Config) {
		c.ROBSize = 8 // tiny ROB forces allocator stalls
	})
	bb := b().MovImm(isa.RBX, dataBase).Clflush(isa.RBX, 0).Mfence()
	bb.LoadQ(isa.RAX, isa.RBX, 0) // DRAM load blocks retirement
	bb.NopSled(40)
	bb.Halt()
	before := e.pm.Read(pmu.ResourceStallsAny)
	e.run(bb.MustAssemble())
	if e.pm.Read(pmu.ResourceStallsAny) == before {
		t.Fatal("full ROB did not produce resource stalls")
	}
}

func TestMachineClearsCounted(t *testing.T) {
	e := newEnv(t, nil)
	bb := b().
		MovImm(isa.RBX, unmappedVA).
		LoadB(isa.RAX, isa.RBX, 0).
		Halt().
		Label("h").
		Halt()
	p := bb.MustAssemble()
	e.p.SetSignalHandler(3)
	defer e.p.SetSignalHandler(-1)
	before := e.pm.Read(pmu.MachineClearsCount)
	e.run(p)
	if e.pm.Read(pmu.MachineClearsCount) != before+1 {
		t.Fatal("machine clear not counted")
	}
}

func TestAccessorsAndStepAPI(t *testing.T) {
	e := newEnv(t, nil)
	if e.p.AddressSpace() != e.as {
		t.Fatal("AddressSpace accessor wrong")
	}
	p := b().MovImm(isa.RAX, 3).Halt().MustAssemble()
	// Drive via the step API.
	e.p.BeginExec(p, 10_000)
	steps := 0
	for {
		done, err := e.p.StepCycle()
		if err != nil {
			t.Fatal(err)
		}
		steps++
		if done {
			break
		}
	}
	if e.p.Reg(isa.RAX) != 3 {
		t.Fatal("step-driven run wrong result")
	}
	res := e.p.ExecResult()
	if !res.Halted || res.Cycles == 0 || uint64(steps) < res.Cycles {
		t.Fatalf("ExecResult = %+v after %d steps", res, steps)
	}
	if e.p.Faults() != 0 {
		t.Fatal("spurious faults")
	}
	if len(e.p.Clears()) != 0 {
		t.Fatal("spurious clears")
	}
	// StepCycle after halt stays done.
	if done, err := e.p.StepCycle(); err != nil || !done {
		t.Fatalf("post-halt StepCycle = (%v, %v)", done, err)
	}
}

func TestStepCycleBudget(t *testing.T) {
	e := newEnv(t, nil)
	p := b().Label("x").Jmp("x").MustAssemble()
	e.p.BeginExec(p, 50)
	var err error
	for i := 0; i < 200; i++ {
		if _, err = e.p.StepCycle(); err != nil {
			break
		}
	}
	if err == nil {
		t.Fatal("budget never enforced")
	}
}

func TestInjectStallFreezesCore(t *testing.T) {
	e := newEnv(t, nil)
	p := b().MovImm(isa.RAX, 1).Halt().MustAssemble()
	run := func(stall uint64) uint64 {
		e.p.BeginExec(p, 100_000)
		if stall > 0 {
			e.p.InjectStall(stall)
		}
		for {
			done, err := e.p.StepCycle()
			if err != nil {
				t.Fatal(err)
			}
			if done {
				break
			}
		}
		return e.p.ExecResult().Cycles
	}
	run(0) // warm code and translations
	base := run(0)
	stalled := run(500)
	if stalled < base+490 {
		t.Fatalf("InjectStall ineffective: base=%d stalled=%d", base, stalled)
	}
}
