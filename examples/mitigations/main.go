// Mitigations: the paper's §6 argument in one run. An InvisiSpec-style
// "make speculation invisible in the cache" defense kills the classic
// Flush+Reload Meltdown — and does nothing to TET-Meltdown, because the
// secret leaves as execution time, not as cache state. Then the defenses
// that do work: KPTI and VERW scrubbing.
//
//	go run ./examples/mitigations
package main

import (
	"fmt"
	"log"

	"whisper/internal/baseline"
	"whisper/internal/core"
	"whisper/internal/cpu"
	"whisper/internal/kernel"
	"whisper/internal/stats"
)

func verdict(got []byte, want []byte) string {
	if stats.ByteErrorRate(got, want) < 0.25 {
		return fmt.Sprintf("LEAKED %q", got)
	}
	return "blocked"
}

func main() {
	secret := []byte("k3y")

	// A vulnerable Kaby Lake, and the same part with invisible speculation.
	plain := cpu.I7_7700()
	invisi := cpu.I7_7700()
	invisi.Pipe.InvisibleSpeculation = true

	for _, tc := range []struct {
		name  string
		model cpu.Model
	}{
		{"no defense       ", plain},
		{"InvisiSpec-style ", invisi},
	} {
		mach, err := cpu.NewMachine(tc.model, 3)
		if err != nil {
			log.Fatal(err)
		}
		k, err := kernel.Boot(mach, kernel.Config{KASLR: true})
		if err != nil {
			log.Fatal(err)
		}
		k.WriteSecret(secret)

		md, err := core.NewTETMeltdown(k)
		if err != nil {
			log.Fatal(err)
		}
		md.Batches = 3
		tet, err := md.Leak(k.SecretVA(), len(secret))
		if err != nil {
			log.Fatal(err)
		}
		fr, err := baseline.NewMeltdownFR(k)
		if err != nil {
			log.Fatal(err)
		}
		frRes, err := fr.Leak(k.SecretVA(), len(secret))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s  TET-MD: %-16s  Meltdown-F+R: %s\n",
			tc.name, verdict(tet.Data, secret), verdict(frRes.Data, secret))
	}

	// What actually stops TET-MD: KPTI (nothing mapped, nothing forwarded).
	mach, err := cpu.NewMachine(plain, 3)
	if err != nil {
		log.Fatal(err)
	}
	k, err := kernel.Boot(mach, kernel.Config{KASLR: true, KPTI: true})
	if err != nil {
		log.Fatal(err)
	}
	k.WriteSecret(secret)
	md, err := core.NewTETMeltdown(k)
	if err != nil {
		log.Fatal(err)
	}
	md.Batches = 3
	res, err := md.Leak(k.SecretVA(), len(secret))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("KPTI              TET-MD: %s\n", verdict(res.Data, secret))

	// And what stops TET-ZBL: scrubbing the fill buffers on context switch.
	for _, verw := range []bool{false, true} {
		mach, err := cpu.NewMachine(plain, 4)
		if err != nil {
			log.Fatal(err)
		}
		k, err := kernel.Boot(mach, kernel.Config{KASLR: true, VERW: verw})
		if err != nil {
			log.Fatal(err)
		}
		k.WriteSecret(secret)
		z, err := core.NewTETZombieload(k)
		if err != nil {
			log.Fatal(err)
		}
		z.Batches = 3
		res, err := z.Leak(len(secret))
		if err != nil {
			log.Fatal(err)
		}
		label := "no VERW          "
		if verw {
			label = "VERW scrubbing   "
		}
		fmt.Printf("%s  TET-ZBL: %s\n", label, verdict(res.Data, secret))
	}
}
