// Covert channel: move a message through the TET channel and compare it
// with the classic Flush+Reload cache channel on the same machine — the
// point being that TET needs no shared memory and leaves no cache footprint
// a defender could scan for.
//
//	go run ./examples/covertchannel
package main

import (
	"fmt"
	"log"

	"whisper/internal/baseline"
	"whisper/internal/core"
	"whisper/internal/cpu"
	"whisper/internal/kernel"
	"whisper/internal/stats"
)

func main() {
	message := []byte("TET is stateless & transient-only")

	// TET covert channel on a Raptor Lake part (no TSX, Meltdown-patched —
	// the channel still works because it needs neither).
	machine, err := cpu.NewMachine(cpu.I9_13900K(), 7)
	if err != nil {
		log.Fatal(err)
	}
	k, err := kernel.Boot(machine, kernel.Config{KASLR: true, KPTI: true})
	if err != nil {
		log.Fatal(err)
	}
	tet, err := core.NewTETCovertChannel(k)
	if err != nil {
		log.Fatal(err)
	}
	res, err := tet.Transfer(message)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("TET-CC  (i9-13900K): %q\n", res.Data)
	fmt.Printf("  %.0f B/s, byte error %.1f%%\n", res.Bps, stats.ByteErrorRate(res.Data, message)*100)

	// Flush+Reload baseline on a Kaby Lake part for comparison: faster, but
	// stateful (cache lines change) and hence detectable by cache-anomaly
	// monitors — the defense class TET sidesteps (Table 1).
	machine2, err := cpu.NewMachine(cpu.I7_7700(), 7)
	if err != nil {
		log.Fatal(err)
	}
	k2, err := kernel.Boot(machine2, kernel.Config{KASLR: true})
	if err != nil {
		log.Fatal(err)
	}
	fr, err := baseline.NewFlushReload(k2)
	if err != nil {
		log.Fatal(err)
	}
	res2, err := fr.Transfer(message)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("F+R CC  (i7-7700):   %q\n", res2.Data)
	fmt.Printf("  %.0f B/s, byte error %.1f%% — but stateful and detectable\n",
		res2.Bps, stats.ByteErrorRate(res2.Data, message)*100)
}
