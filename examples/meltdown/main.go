// Meltdown through the timing channel: leak a kernel secret with TET-MD on
// a vulnerable part, then watch the same attack collapse on a patched one —
// the Table 2 ✓/✗ pair, live.
//
//	go run ./examples/meltdown
package main

import (
	"fmt"
	"log"

	"whisper/internal/core"
	"whisper/internal/cpu"
	"whisper/internal/kernel"
	"whisper/internal/stats"
)

func leak(model cpu.Model, secret []byte) (core.LeakResult, error) {
	machine, err := cpu.NewMachine(model, 11)
	if err != nil {
		return core.LeakResult{}, err
	}
	k, err := kernel.Boot(machine, kernel.Config{KASLR: true})
	if err != nil {
		return core.LeakResult{}, err
	}
	// The victim: a kernel-space secret at an address the attacker knows
	// (threat model §4.2) but cannot architecturally read.
	k.WriteSecret(secret)
	md, err := core.NewTETMeltdown(k)
	if err != nil {
		return core.LeakResult{}, err
	}
	return md.Leak(k.SecretVA(), len(secret))
}

func main() {
	secret := []byte("root:$6$saltsalt$hash")

	res, err := leak(cpu.I7_7700(), secret)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("i7-7700 (vulnerable):  leaked %q\n", res.Data)
	fmt.Printf("  %.0f B/s, byte error %.1f%% — no cache covert channel involved;\n",
		res.Bps, stats.ByteErrorRate(res.Data, secret)*100)
	fmt.Println("  the secret left the transient window purely as execution time.")

	res, err = leak(cpu.I9_10980XE(), secret)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ni9-10980XE (patched):  leaked %q\n", res.Data)
	fmt.Printf("  byte error %.1f%% — the microcode fix forwards zeros, so the sweep decodes noise.\n",
		stats.ByteErrorRate(res.Data, secret)*100)
}
