// Breaking KASLR under the strongest deployed defenses: KPTI plus FLARE on
// a Meltdown-resistant CPU — and then the one mitigation that still blunts
// the exploit chain, FGKASLR.
//
//	go run ./examples/kaslr
package main

import (
	"fmt"
	"log"

	"whisper/internal/core"
	"whisper/internal/cpu"
	"whisper/internal/kernel"
)

func main() {
	// Meltdown-resistant Comet Lake box, KASLR + KPTI + FLARE all on.
	machine, err := cpu.NewMachine(cpu.I9_10980XE(), 23)
	if err != nil {
		log.Fatal(err)
	}
	k, err := kernel.Boot(machine, kernel.Config{KASLR: true, KPTI: true, FLARE: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("booted %s with KASLR+KPTI+FLARE; true base %#x (the attack never sees this)\n",
		machine.Model.Name, k.KASLRBase())

	attack, err := core.NewTETKASLR(k)
	if err != nil {
		log.Fatal(err)
	}
	res, err := attack.Locate()
	if err != nil {
		log.Fatal(err)
	}
	status := "WRONG"
	if res.Base == k.KASLRBase() {
		status = "correct"
	}
	fmt.Printf("TET-KASLR: base %#x (slot %d/512) in %.4f s — %s\n",
		res.Base, res.Slot, res.Seconds, status)

	// The code-reuse payload step: derive a gadget address from the base.
	derived := res.Base + kernel.KernelFunctions["commit_creds"]
	actual, err := k.FunctionVA("commit_creds")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("derived commit_creds = %#x, actual = %#x — exploit chain %s\n",
		derived, actual, map[bool]string{true: "COMPLETE", false: "broken"}[derived == actual])

	// Now the §6.2 software mitigation: FGKASLR. The base still leaks, but
	// per-function shuffling severs offset reuse.
	machine2, err := cpu.NewMachine(cpu.I9_10980XE(), 23)
	if err != nil {
		log.Fatal(err)
	}
	k2, err := kernel.Boot(machine2, kernel.Config{KASLR: true, KPTI: true, FGKASLR: true})
	if err != nil {
		log.Fatal(err)
	}
	attack2, err := core.NewTETKASLR(k2)
	if err != nil {
		log.Fatal(err)
	}
	res2, err := attack2.Locate()
	if err != nil {
		log.Fatal(err)
	}
	derived2 := res2.Base + kernel.KernelFunctions["commit_creds"]
	actual2, err := k2.FunctionVA("commit_creds")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwith FGKASLR: base %#x still found (%v), but derived commit_creds %#x != actual %#x\n",
		res2.Base, res2.Base == k2.KASLRBase(), derived2, actual2)
	fmt.Println("the offset-reuse step is dead — at the performance cost §6.2 notes.")
}
