// Quickstart: observe the Whisper TET side channel in its rawest form.
//
// We build a Kaby Lake machine, boot a kernel on it, and measure the
// transient execution time (ToTE) of the Fig. 1a gadget with the in-window
// Jcc triggering vs not. The timing difference IS the channel.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"whisper/internal/core"
	"whisper/internal/cpu"
	"whisper/internal/kernel"
	"whisper/internal/stats"
)

func main() {
	// A simulated Intel Core i7-7700 with a deterministic seed.
	machine, err := cpu.NewMachine(cpu.I7_7700(), 42)
	if err != nil {
		log.Fatal(err)
	}
	k, err := kernel.Boot(machine, kernel.Config{KASLR: true})
	if err != nil {
		log.Fatal(err)
	}
	_ = k

	// A TET prober: rdtsc / transient faulting load / conditional Jcc /
	// rdtsc. The Jcc compares two attacker registers, so we can switch the
	// trigger at will.
	prober, err := core.NewProber(machine, core.SuppressTSX, false)
	if err != nil {
		log.Fatal(err)
	}

	histTrigger := stats.NewHistogram()
	histQuiet := stats.NewHistogram()
	for i := 0; i < 400; i++ {
		t, err := prober.ProbeStable(core.UnmappedVA, true)
		if err != nil {
			log.Fatal(err)
		}
		histTrigger.Add(t)
		t, err = prober.ProbeStable(core.UnmappedVA, false)
		if err != nil {
			log.Fatal(err)
		}
		histQuiet.Add(t)
	}

	fmt.Println("ToTE distribution, Jcc NOT triggered:")
	fmt.Print(histQuiet.Render(6))
	fmt.Println("\nToTE distribution, Jcc triggered (misprediction inside the transient window):")
	fmt.Print(histTrigger.Render(6))
	fmt.Printf("\nmedians: quiet=%d cycles, triggered=%d cycles — the gap is the Whisper channel.\n",
		histQuiet.Quantile(0.5), histTrigger.Quantile(0.5))
}
