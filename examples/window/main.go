// Window: render the transient execution window the Whisper channel times.
//
// Two pipeline traces of the same Fig. 1a gadget — one where the in-window
// Jcc does not trigger, one where it does. The rows marked "(transient)"
// never become architectural; their only externally visible effect is the
// distance between the two RDTSC rows, which is exactly what TET measures.
//
//	go run ./examples/window
package main

import (
	"fmt"
	"log"

	"whisper/internal/core"
	"whisper/internal/cpu"
	"whisper/internal/kernel"
	"whisper/internal/trace"
)

func main() {
	m := cpu.MustMachine(cpu.I7_7700(), 5)
	k, err := kernel.Boot(m, kernel.Config{KASLR: true})
	if err != nil {
		log.Fatal(err)
	}
	k.WriteSecret([]byte{'S'})

	pr, err := core.NewProber(m, core.SuppressTSX, true)
	if err != nil {
		log.Fatal(err)
	}
	// Warm code, predictors and translations so the trace shows the steady
	// state the attack measures.
	for i := 0; i < 8; i++ {
		if _, err := pr.Probe(k.SecretVA(), 256, 0); err != nil {
			log.Fatal(err)
		}
	}

	collector := trace.NewCollector(0)
	collector.Attach(m.Pipe)
	defer m.Pipe.SetTracer(nil)

	show := func(label string, test uint64) {
		collector.Reset()
		tote, err := pr.Probe(k.SecretVA(), test, 0)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("=== %s (ToTE = %d cycles) ===\n", label, tote)
		fmt.Print(trace.Render(collector.Records(), 88))
		s := collector.Summarise()
		fmt.Printf("uops: %d retired, %d transient (squashed)\n\n", s.Retired, s.Squashed)
	}

	show("Jcc does not trigger: test value != secret", 'X')
	// De-train, then the matching probe.
	for i := 0; i < 2; i++ {
		if _, err := pr.Probe(k.SecretVA(), 256, 0); err != nil {
			log.Fatal(err)
		}
	}
	collector.Reset()
	show("Jcc triggers: test value == secret 'S'", 'S')

	fmt.Println("the ToTE difference between the two runs is the Whisper side channel.")
}
