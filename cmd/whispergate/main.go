// Command whispergate is the cluster gateway in front of a pool of
// whisperd backends. It speaks the exact whisperd client protocol, so
// `whisper -remote` and internal/server/client point at it unchanged —
// requests route to the backend whose content-addressed cache already
// holds them (consistent hashing on the whisper-req-v1 hash, bounded-load
// variant), dead or draining backends are detected by active /readyz
// probes and routed around, failed forwards retry on the next replica,
// and slow ones are optionally hedged.
//
// API:
//
//	POST /v1/run          → forwarded to the hash-affine backend (whisperd-compatible)
//	POST /v1/sweep        {"cells":[{...},{...}]} → scatter-gather stream,
//	                      per-cell envelopes in request order, byte-identical
//	                      to a single-node run of the same cells
//	GET  /v1/experiments  → proxied index
//	GET  /healthz         → ok | 503 (draining or no healthy backends)
//	GET  /readyz          → gateway readiness JSON (backend counts)
//	GET  /metrics         → gateway telemetry (text | json | prom)
//	GET  /traces          → Perfetto trace of gateway spans
//
// The backend set comes from -backends or -backends-file; SIGHUP re-reads
// the file so members can be added or drained out without a restart. The
// first SIGINT/SIGTERM drains (in-flight forwards finish, new work gets
// 503); a second signal hard-exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"whisper/internal/cli"
	"whisper/internal/cluster"
	"whisper/internal/obs"
	"whisper/internal/obs/logging"
)

func main() {
	var (
		listen        = flag.String("listen", "127.0.0.1:8089", "address to serve on")
		backends      = flag.String("backends", "", "comma-separated whisperd backends (host:port or URLs)")
		backendsFile  = flag.String("backends-file", "", "file with one backend per line (# comments); re-read on SIGHUP")
		probeInterval = flag.Duration("probe-interval", 2*time.Second, "health-check cadence (jittered ±25%)")
		probeTimeout  = flag.Duration("probe-timeout", time.Second, "health-check round-trip cap")
		ejectAfter    = flag.Int("eject-after", 3, "consecutive probe failures before a backend is ejected")
		loadFactor    = flag.Float64("load-factor", 1.25, "bounded-load ceiling multiplier over the fair inflight share")
		hedge         = flag.Bool("hedge", true, "hedge requests to a second replica past the experiment's observed p95")
		hedgeMin      = flag.Duration("hedge-min", 25*time.Millisecond, "minimum in-flight time before a hedge may fire")
		fwdTimeout    = flag.Duration("forward-timeout", 0, "per-attempt forward cap (0: none)")
		sweepParallel = flag.Int("sweep-parallel", 0, "max concurrent cells per /v1/sweep (<=0: 2x backend count)")
		drainTimeout  = flag.Duration("drain-timeout", 30*time.Second, "how long shutdown waits for in-flight forwards")
		traceOut      = flag.String("trace-out", "", "on shutdown, write a Perfetto/Chrome trace to this file")
		metricsOut    = flag.String("metrics-out", "", "on shutdown, write the metrics snapshot to this file (.json JSON, .prom Prometheus, else text)")
		logLevel      = flag.String("log-level", "info", "minimum log level: debug, info, warn, error")
		logFormat     = flag.String("log-format", logging.FormatJSON, "log output format: json or text")
	)
	flag.Parse()

	log, err := logging.New(logging.Options{Level: *logLevel, Format: *logFormat, Output: os.Stderr})
	if err != nil {
		fmt.Fprintln(os.Stderr, "whispergate:", err)
		os.Exit(1)
	}
	fatal := func(err error) {
		if errors.Is(err, http.ErrServerClosed) {
			return
		}
		log.Error("whispergate failed", slog.String("error", err.Error()))
		os.Exit(1)
	}

	members, err := loadBackends(*backends, *backendsFile)
	if err != nil {
		fatal(err)
	}

	reg := obs.NewRegistry()
	gw, err := cluster.New(cluster.Config{
		Backends:       members,
		ProbeInterval:  *probeInterval,
		ProbeTimeout:   *probeTimeout,
		EjectAfter:     *ejectAfter,
		LoadFactor:     *loadFactor,
		Hedge:          *hedge,
		HedgeMin:       *hedgeMin,
		ForwardTimeout: *fwdTimeout,
		SweepParallel:  *sweepParallel,
		Obs:            reg,
		Log:            log,
	})
	if err != nil {
		fatal(err)
	}
	gw.Start()

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fatal(err)
	}
	hs := &http.Server{Handler: gw.Handler()}
	log.Info("whispergate serving",
		slog.String("addr", "http://"+ln.Addr().String()),
		slog.Any("backends", members),
		slog.Bool("hedge", *hedge),
		slog.Float64("load_factor", *loadFactor),
		slog.Duration("probe_interval", *probeInterval))

	// SIGHUP reloads the backend set from -backends-file without touching
	// in-flight work; retained members keep their health state.
	if *backendsFile != "" {
		hup := make(chan os.Signal, 1)
		signal.Notify(hup, syscall.SIGHUP)
		go func() {
			for range hup {
				next, err := loadBackends("", *backendsFile)
				if err != nil {
					log.Error("backend reload failed", slog.String("error", err.Error()))
					continue
				}
				gw.Pool().SetBackends(next)
				log.Info("backends reloaded", slog.Any("backends", next))
			}
		}()
	}

	ctx, stop := cli.SignalContext(context.Background())
	defer stop()
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	select {
	case err := <-serveErr:
		fatal(err)
	case <-ctx.Done():
	}

	log.Info("draining", slog.Duration("timeout", *drainTimeout),
		slog.String("hint", "signal again to exit immediately"))
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := gw.Shutdown(drainCtx); err != nil {
		log.Error("drain failed", slog.String("error", err.Error()))
	}
	if err := hs.Shutdown(drainCtx); err != nil {
		log.Error("http shutdown failed", slog.String("error", err.Error()))
	}
	if *traceOut != "" {
		if err := reg.WriteTraceFile(*traceOut, nil); err != nil {
			fatal(err)
		}
		log.Info("trace written", slog.String("path", *traceOut))
	}
	if *metricsOut != "" {
		if err := reg.WriteMetricsFile(*metricsOut); err != nil {
			fatal(err)
		}
		log.Info("metrics written", slog.String("path", *metricsOut))
	}
	log.Info("drained, bye")
}

// loadBackends resolves the member list from the flag and/or file; both
// may be given (union, flag entries first).
func loadBackends(flagList, file string) ([]string, error) {
	var members []string
	for _, b := range strings.Split(flagList, ",") {
		if b = strings.TrimSpace(b); b != "" {
			members = append(members, b)
		}
	}
	if file != "" {
		data, err := os.ReadFile(file)
		if err != nil {
			return nil, fmt.Errorf("reading -backends-file: %w", err)
		}
		for _, line := range strings.Split(string(data), "\n") {
			line = strings.TrimSpace(line)
			if line == "" || strings.HasPrefix(line, "#") {
				continue
			}
			members = append(members, line)
		}
	}
	if len(members) == 0 {
		return nil, errors.New("no backends: set -backends or -backends-file")
	}
	return members, nil
}
