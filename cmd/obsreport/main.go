// Command obsreport is the offline analyzer for a run's observability
// artefacts: it joins the Perfetto trace (-trace-out) and metrics snapshot
// (-metrics-out) any whisper tool or whisperd writes into one human report —
// per-phase wall/cycle breakdown, per-request span rollups keyed by request
// ID, cache hit ratios, queue-wait percentiles, and machine-pool reuse
// rates. It also lints Prometheus expositions (-lint-metrics), which is what
// the CI smoke job runs against a live /metrics scrape.
//
// Usage:
//
//	obsreport -trace run.trace.json -metrics run.metrics.json
//	obsreport -metrics run.metrics.txt           # metrics only
//	obsreport -lint-metrics scrape.prom          # exit 1 on lint findings
package main

import (
	"flag"
	"fmt"
	"os"

	"whisper/internal/obs"
)

func main() {
	var (
		tracePath   = flag.String("trace", "", "Perfetto/Chrome trace file written by -trace-out")
		metricsPath = flag.String("metrics", "", "metrics snapshot written by -metrics-out (.json, .prom or text)")
		lintPath    = flag.String("lint-metrics", "", "lint a Prometheus text exposition and exit (- for stdin)")
	)
	flag.Parse()

	if *lintPath != "" {
		os.Exit(lint(*lintPath))
	}
	if *tracePath == "" && *metricsPath == "" {
		fmt.Fprintln(os.Stderr, "obsreport: need -trace and/or -metrics (or -lint-metrics); see -h")
		os.Exit(2)
	}

	var tf *obs.TraceFile
	if *tracePath != "" {
		t, err := obs.ReadTraceFile(*tracePath)
		if err != nil {
			fatal(err)
		}
		tf = t
	}
	var snap *obs.Snapshot
	if *metricsPath != "" {
		s, err := obs.ReadSnapshotFile(*metricsPath)
		if err != nil {
			fatal(err)
		}
		snap = &s
	}
	rep := obs.BuildRunReport(tf, snap)
	if err := rep.WriteText(os.Stdout); err != nil {
		fatal(err)
	}
}

// lint validates a Prometheus exposition and reports every finding; the
// exit code makes it usable as a CI gate without promtool.
func lint(path string) int {
	in := os.Stdin
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	}
	errs := obs.LintPrometheus(in)
	if len(errs) == 0 {
		fmt.Println("obsreport: prometheus exposition ok")
		return 0
	}
	for _, err := range errs {
		fmt.Fprintln(os.Stderr, "obsreport: lint:", err)
	}
	return 1
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "obsreport:", err)
	os.Exit(1)
}
