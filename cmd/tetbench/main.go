// Command tetbench regenerates the paper's tables and figures on the
// simulated machines. Each -exp value corresponds to one artefact of the
// evaluation; "all" runs everything (see EXPERIMENTS.md for the index).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"whisper/internal/cli"
	"whisper/internal/experiments"
	"whisper/internal/obs"
)

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment: all|table1|table2|table3|fig1b|fig3|fig4|throughput|kaslr|mitigations|stealth|condfamily|noise")
		seed     = flag.Int64("seed", experiments.DefaultSeed, "deterministic seed")
		bytes    = flag.Int("bytes", 32, "payload size for throughput experiments")
		reps     = flag.Int("reps", 16, "probes per KASLR candidate slot")
		parallel = flag.Int("parallel", 0, "sched workers per sweep (<=0: GOMAXPROCS); output is identical at any setting")
		asJSON   = flag.Bool("json", false, "run everything and emit one JSON report to stdout")

		traceOut   = flag.String("trace-out", "", "write a Perfetto/Chrome trace of the run to this file")
		metricsOut = flag.String("metrics-out", "", "write the metrics snapshot to this file (.json JSON, .prom Prometheus, else text)")
	)
	flag.Parse()

	// Ctrl-C cancels the scheduler pools: pending cells are dropped, running
	// ones drain, and the run exits with the context error. A second Ctrl-C
	// skips the drain and exits immediately.
	ctx, stop := cli.SignalContext(context.Background())
	defer stop()

	// Each experiment crosses several simulated machines, so tetbench records
	// wall-clock stage spans; nil (no flag) keeps the runs uninstrumented.
	var reg *obs.Registry
	if *traceOut != "" || *metricsOut != "" {
		reg = obs.NewRegistry()
	}
	ex := experiments.Exec{Ctx: ctx, Parallel: *parallel, Obs: reg}
	writeOutputs := func() {
		if *traceOut != "" {
			if err := reg.WriteTraceFile(*traceOut, nil); err != nil {
				fmt.Fprintln(os.Stderr, "tetbench:", err)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "trace written to %s\n", *traceOut)
		}
		if *metricsOut != "" {
			if err := reg.WriteMetricsFile(*metricsOut); err != nil {
				fmt.Fprintln(os.Stderr, "tetbench:", err)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "metrics written to %s\n", *metricsOut)
		}
	}

	if *asJSON {
		params := experiments.DefaultReportParams()
		params.Seed = *seed
		params.ThroughputBytes = *bytes
		params.KASLRReps = *reps
		params.Parallel = *parallel
		params.Ctx = ctx
		params.Obs = reg
		report, err := experiments.RunAll(params)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tetbench:", err)
			os.Exit(1)
		}
		if err := report.WriteJSON(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "tetbench:", err)
			os.Exit(1)
		}
		writeOutputs()
		return
	}

	run := func(name string, f func() error) {
		if *exp != "all" && *exp != name {
			return
		}
		sp := reg.StartWallSpan("tetbench." + name)
		err := f()
		if err != nil {
			sp.Attr("error", err.Error())
		}
		sp.End(0)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tetbench: %s: %v\n", name, err)
			os.Exit(1)
		}
		reg.Counter("tetbench.experiments").Inc()
	}

	run("table1", func() error {
		fmt.Println(experiments.Table1())
		return nil
	})
	run("table2", func() error {
		rows, err := experiments.Table2(ex, experiments.DefaultTable2Params(), *seed)
		if err != nil {
			return err
		}
		fmt.Println(experiments.RenderTable2(rows))
		if ok, diffs := experiments.Table2Agrees(rows); ok {
			fmt.Println("all decided cells match the paper")
		} else {
			fmt.Println("DEVIATIONS:", diffs)
		}
		fmt.Println()
		return nil
	})
	// The generic sweeps run through the same registry the whisperd daemon
	// serves (experiments.RunSweep), so the CLI and a daemon response render
	// the same bytes by construction.
	runSweep := func(name string, p experiments.SweepParams) {
		run(name, func() error {
			sr, err := experiments.RunSweep(ex, name, p)
			if err != nil {
				return err
			}
			fmt.Println(sr.Rendered)
			return nil
		})
	}

	runSweep("table3", experiments.SweepParams{Seed: *seed})
	runSweep("fig1b", experiments.SweepParams{Seed: *seed, Fig1bBatches: 8})
	run("fig3", func() error {
		s, err := experiments.Fig3(*seed)
		if err != nil {
			return err
		}
		fmt.Println(experiments.RenderTable3([]experiments.Table3Scene{s}))
		return nil
	})
	runSweep("fig4", experiments.SweepParams{Seed: *seed})
	runSweep("throughput", experiments.SweepParams{Seed: *seed, ThroughputBytes: *bytes})
	runSweep("kaslr", experiments.SweepParams{Seed: *seed, KASLRReps: *reps})
	run("mitigations", func() error {
		rows, err := experiments.Mitigations(ex, *seed)
		if err != nil {
			return err
		}
		fmt.Println(experiments.RenderMitigations(rows))
		if ok, diffs := experiments.MitigationsAgree(rows); ok {
			fmt.Println("all cells match the paper's §6 discussion")
		} else {
			fmt.Println("DEVIATIONS:", diffs)
		}
		fmt.Println()
		return nil
	})
	runSweep("stealth", experiments.SweepParams{Seed: *seed})
	runSweep("condfamily", experiments.SweepParams{Seed: *seed})
	runSweep("noise", experiments.SweepParams{Seed: *seed})
	writeOutputs()
}
