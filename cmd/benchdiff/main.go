// Command benchdiff compares two `go test -bench` output files without
// external dependencies. It parses the standard benchmark line format (the
// same format benchstat consumes, so the inputs remain benchstat-compatible
// artifacts), takes the median of repeated counts per benchmark, and prints
// a markdown delta table per metric.
//
// Usage:
//
//	go test -run '^$' -bench . -benchtime 1x -count 5 . > new.txt
//	benchdiff -base BENCH_baseline.txt -new new.txt [-metric ns/op] [-threshold 25]
//
// With -threshold N the tool exits non-zero when the selected metric's
// median regresses by more than N percent on any benchmark both files
// contain — the CI bench gate. Without it the comparison is informational
// (the committed baseline usually comes from different hardware, so CI uses
// the threshold only for same-machine comparisons).
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// sample is every recorded value for one (benchmark, unit) pair.
type samples map[string]map[string][]float64

// parseBench reads go-test benchmark lines: name, iteration count, then
// value/unit pairs. Non-benchmark lines are ignored.
func parseBench(path string) (samples, []string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	out := samples{}
	var order []string
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		// go test appends "-<GOMAXPROCS>" to every benchmark name; strip it
		// so runs from machines with different core counts still pair up
		// (an unpaired name is a hard error below, not a silent skip).
		name := fields[0]
		if i := strings.LastIndexByte(name, '-'); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		if _, ok := out[name]; !ok {
			out[name] = map[string][]float64{}
			order = append(order, name)
		}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			unit := fields[i+1]
			out[name][unit] = append(out[name][unit], v)
		}
	}
	return out, order, sc.Err()
}

func median(v []float64) float64 {
	s := append([]float64(nil), v...)
	sort.Float64s(s)
	n := len(s)
	if n == 0 {
		return 0
	}
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

func main() {
	basePath := flag.String("base", "BENCH_baseline.txt", "baseline bench output")
	newPath := flag.String("new", "bench.txt", "new bench output")
	metric := flag.String("metric", "ns/op", "metric the -threshold gate applies to")
	threshold := flag.Float64("threshold", 0, "fail when the gate metric regresses by more than this percent (0: report only)")
	flag.Parse()

	base, baseOrder, err := parseBench(*basePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: baseline %s: %v (regenerate with: go test -run '^$' -bench . -benchtime 1x -count 5 . > %s)\n", *basePath, err, *basePath)
		os.Exit(2)
	}
	cur, order, err := parseBench(*newPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: new results %s: %v\n", *newPath, err)
		os.Exit(2)
	}
	if len(base) == 0 {
		fmt.Fprintf(os.Stderr, "benchdiff: baseline %s contains no benchmark lines\n", *basePath)
		os.Exit(2)
	}
	if len(cur) == 0 {
		fmt.Fprintf(os.Stderr, "benchdiff: new results %s contain no benchmark lines\n", *newPath)
		os.Exit(2)
	}
	// A name present on only one side would silently vanish from the diff —
	// exactly how a renamed benchmark escapes the regression gate — so it is
	// an error, not a skip.
	var onlyBase, onlyNew []string
	for _, name := range baseOrder {
		if _, ok := cur[name]; !ok {
			onlyBase = append(onlyBase, name)
		}
	}
	for _, name := range order {
		if _, ok := base[name]; !ok {
			onlyNew = append(onlyNew, name)
		}
	}

	fmt.Printf("| benchmark | metric | base | new | delta |\n")
	fmt.Printf("|---|---|---:|---:|---:|\n")
	failed := false
	for _, name := range order {
		b, ok := base[name]
		if !ok {
			continue
		}
		units := make([]string, 0, len(cur[name]))
		for u := range cur[name] {
			if _, ok := b[u]; ok {
				units = append(units, u)
			}
		}
		sort.Strings(units)
		for _, u := range units {
			mb, mn := median(b[u]), median(cur[name][u])
			delta := "n/a"
			var pct float64
			if mb != 0 {
				pct = (mn - mb) / mb * 100
				delta = fmt.Sprintf("%+.1f%%", pct)
			}
			fmt.Printf("| %s | %s | %.4g | %.4g | %s |\n", name, u, mb, mn, delta)
			if *threshold > 0 && u == *metric && mb != 0 && pct > *threshold {
				failed = true
				fmt.Fprintf(os.Stderr, "benchdiff: %s %s regressed %+.1f%% (limit %.1f%%)\n",
					name, u, pct, *threshold)
			}
		}
	}
	if len(onlyBase) > 0 || len(onlyNew) > 0 {
		fmt.Fprintf(os.Stderr, "benchdiff: benchmark sets differ: only in %s: %v; only in %s: %v (update the baseline)\n",
			*basePath, onlyBase, *newPath, onlyNew)
		failed = true
	}
	if failed {
		os.Exit(1)
	}
}
