// Command whisperd serves the Whisper experiments over HTTP: every sweep
// and attack of internal/experiments behind a content-addressed result
// cache with request coalescing, a bounded admission queue, and graceful
// drain. Because every experiment is a pure function of its normalized
// request (the determinism contract the scheduler and simulator layers pin),
// a cached or coalesced response is byte-identical to a cold run — which
// `whisperd -oneshot` also prints, so the CI smoke job can diff the two.
//
// API:
//
//	POST /v1/run         {"experiment":"table2","seed":7}  → result envelope
//	GET  /v1/experiments                                   → servable index
//	GET  /healthz                                          → ok | 503 draining
//	GET  /metrics[?format=text|json|prom]                  → obs snapshot
//	GET  /traces                                           → Perfetto trace
//
// All operational output is structured logging on stderr (JSON lines by
// default; -log-format=text for humans), keyed by the request ID that also
// rides the X-Whisper-Request-Id header, trace span attributes, and error
// bodies. -debug-addr exposes net/http/pprof and expvar on a second,
// opt-in listener so profiling never shares the serving port.
//
// The first SIGINT/SIGTERM starts the drain: new requests get 503, in-flight
// executions finish (bounded by -drain-timeout), telemetry flushes, and the
// process exits 0. A second signal hard-exits immediately.
package main

import (
	"context"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"time"

	"whisper/internal/cli"
	"whisper/internal/obs"
	"whisper/internal/obs/logging"
	"whisper/internal/server"
)

func main() {
	var (
		listen       = flag.String("listen", "127.0.0.1:8090", "address to serve on")
		parallel     = flag.Int("parallel", 0, "sched workers per execution (<=0: GOMAXPROCS); results are identical at any setting")
		maxInflight  = flag.Int("max-inflight", 0, "max concurrently executing requests (<=0: NumCPU)")
		maxQueue     = flag.Int("max-queue", 8, "max requests waiting beyond -max-inflight before 429s")
		reqTimeout   = flag.Duration("request-timeout", 0, "per-execution wall-clock cap (0: none)")
		cacheEntries = flag.Int("cache-entries", server.DefaultCacheEntries, "in-memory result cache capacity (entries)")
		cacheDir     = flag.String("cache-dir", "", "persist results under this directory (content-addressed; survives restarts)")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "how long shutdown waits for in-flight requests before cancelling them")
		oneshot      = flag.String("oneshot", "", "run one experiment directly (no HTTP), print the canonical envelope to stdout, and exit")
		seed         = flag.Int64("seed", 0, "request seed for -oneshot (0: the experiment default)")
		traceOut     = flag.String("trace-out", "", "on shutdown, write a Perfetto/Chrome trace to this file")
		metricsOut   = flag.String("metrics-out", "", "on shutdown, write the metrics snapshot to this file (.json JSON, .prom Prometheus, else text)")
		logLevel     = flag.String("log-level", "info", "minimum log level: debug, info, warn, error")
		logFormat    = flag.String("log-format", logging.FormatJSON, "log output format: json (one object per line) or text")
		debugAddr    = flag.String("debug-addr", "", "serve net/http/pprof and expvar on this extra address (empty: disabled)")
	)
	flag.Parse()

	log, err := logging.New(logging.Options{Level: *logLevel, Format: *logFormat, Output: os.Stderr})
	if err != nil {
		fmt.Fprintln(os.Stderr, "whisperd:", err)
		os.Exit(1)
	}
	fatal := func(err error) {
		if errors.Is(err, http.ErrServerClosed) {
			return
		}
		log.Error("whisperd failed", slog.String("error", err.Error()))
		os.Exit(1)
	}

	if *oneshot != "" {
		// The reference path: no cache, no queue, no HTTP. A daemon response
		// for the same request is byte-identical to these bytes; logging goes
		// to stderr so stdout stays the canonical envelope alone.
		ctx, stop := cli.SignalContext(context.Background())
		defer stop()
		ctx = logging.With(ctx, log)
		body, err := server.Execute(ctx, server.Request{Experiment: *oneshot, Seed: *seed}, *parallel, nil)
		if err != nil {
			fatal(err)
		}
		os.Stdout.Write(body)
		return
	}

	reg := obs.NewRegistry()
	srv, err := server.New(server.Config{
		Parallel:       *parallel,
		MaxInflight:    *maxInflight,
		MaxQueue:       *maxQueue,
		RequestTimeout: *reqTimeout,
		CacheEntries:   *cacheEntries,
		CacheDir:       *cacheDir,
		Obs:            reg,
		Log:            log,
	})
	if err != nil {
		fatal(err)
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fatal(err)
	}
	hs := &http.Server{Handler: srv.Handler()}
	log.Info("whisperd serving",
		slog.String("addr", "http://"+ln.Addr().String()),
		slog.Any("experiments", server.Experiments()),
		slog.Int("parallel", *parallel),
		slog.Int("max_inflight", *maxInflight),
		slog.Int("max_queue", *maxQueue),
		slog.Int("cache_entries", *cacheEntries),
		slog.String("cache_dir", *cacheDir),
		slog.String("log_level", *logLevel),
		slog.String("log_format", *logFormat))

	var dbg *http.Server
	if *debugAddr != "" {
		dln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			fatal(err)
		}
		dbg = &http.Server{Handler: debugMux()}
		go dbg.Serve(dln)
		log.Info("debug endpoints serving",
			slog.String("addr", "http://"+dln.Addr().String()),
			slog.Any("paths", []string{"/debug/pprof/", "/debug/vars"}))
	}

	ctx, stop := cli.SignalContext(context.Background())
	defer stop()
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	select {
	case err := <-serveErr:
		fatal(err)
	case <-ctx.Done():
	}

	// Drain: refuse new work, let in-flight executions finish (or cancel
	// them at the deadline), then close the HTTP side and flush telemetry.
	log.Info("draining", slog.Duration("timeout", *drainTimeout),
		slog.String("hint", "signal again to exit immediately"))
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Shutdown(drainCtx); err != nil {
		log.Error("drain failed", slog.String("error", err.Error()))
	}
	if err := hs.Shutdown(drainCtx); err != nil {
		log.Error("http shutdown failed", slog.String("error", err.Error()))
	}
	if dbg != nil {
		dbg.Close()
	}
	if *traceOut != "" {
		if err := reg.WriteTraceFile(*traceOut, nil); err != nil {
			fatal(err)
		}
		log.Info("trace written", slog.String("path", *traceOut))
	}
	if *metricsOut != "" {
		if err := reg.WriteMetricsFile(*metricsOut); err != nil {
			fatal(err)
		}
		log.Info("metrics written", slog.String("path", *metricsOut))
	}
	log.Info("drained, bye")
}

// debugMux mounts the stdlib profiling surface on a dedicated mux, so the
// opt-in -debug-addr listener — never the serving one — exposes it.
func debugMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	return mux
}
