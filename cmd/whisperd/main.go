// Command whisperd serves the Whisper experiments over HTTP: every sweep
// and attack of internal/experiments behind a content-addressed result
// cache with request coalescing, a bounded admission queue, and graceful
// drain. Because every experiment is a pure function of its normalized
// request (the determinism contract the scheduler and simulator layers pin),
// a cached or coalesced response is byte-identical to a cold run — which
// `whisperd -oneshot` also prints, so the CI smoke job can diff the two.
//
// API:
//
//	POST /v1/run         {"experiment":"table2","seed":7}  → result envelope
//	GET  /v1/experiments                                   → servable index
//	GET  /healthz                                          → ok | 503 draining
//	GET  /metrics[?format=json]                            → obs snapshot
//	GET  /traces                                           → Perfetto trace
//
// The first SIGINT/SIGTERM starts the drain: new requests get 503, in-flight
// executions finish (bounded by -drain-timeout), telemetry flushes, and the
// process exits 0. A second signal hard-exits immediately.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"time"

	"whisper/internal/cli"
	"whisper/internal/obs"
	"whisper/internal/server"
)

func main() {
	var (
		listen       = flag.String("listen", "127.0.0.1:8090", "address to serve on")
		parallel     = flag.Int("parallel", 0, "sched workers per execution (<=0: GOMAXPROCS); results are identical at any setting")
		maxInflight  = flag.Int("max-inflight", 0, "max concurrently executing requests (<=0: NumCPU)")
		maxQueue     = flag.Int("max-queue", 8, "max requests waiting beyond -max-inflight before 429s")
		reqTimeout   = flag.Duration("request-timeout", 0, "per-execution wall-clock cap (0: none)")
		cacheEntries = flag.Int("cache-entries", server.DefaultCacheEntries, "in-memory result cache capacity (entries)")
		cacheDir     = flag.String("cache-dir", "", "persist results under this directory (content-addressed; survives restarts)")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "how long shutdown waits for in-flight requests before cancelling them")
		oneshot      = flag.String("oneshot", "", "run one experiment directly (no HTTP), print the canonical envelope to stdout, and exit")
		seed         = flag.Int64("seed", 0, "request seed for -oneshot (0: the experiment default)")
		traceOut     = flag.String("trace-out", "", "on shutdown, write a Perfetto/Chrome trace to this file")
		metricsOut   = flag.String("metrics-out", "", "on shutdown, write the metrics snapshot to this file (.json for JSON)")
	)
	flag.Parse()

	if *oneshot != "" {
		// The reference path: no cache, no queue, no HTTP. A daemon response
		// for the same request is byte-identical to these bytes.
		ctx, stop := cli.SignalContext(context.Background())
		defer stop()
		body, err := server.Execute(ctx, server.Request{Experiment: *oneshot, Seed: *seed}, *parallel, nil)
		if err != nil {
			fatal(err)
		}
		os.Stdout.Write(body)
		return
	}

	reg := obs.NewRegistry()
	srv, err := server.New(server.Config{
		Parallel:       *parallel,
		MaxInflight:    *maxInflight,
		MaxQueue:       *maxQueue,
		RequestTimeout: *reqTimeout,
		CacheEntries:   *cacheEntries,
		CacheDir:       *cacheDir,
		Obs:            reg,
	})
	if err != nil {
		fatal(err)
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fatal(err)
	}
	hs := &http.Server{Handler: srv.Handler()}
	fmt.Fprintf(os.Stderr, "whisperd: serving on http://%s (experiments: %v)\n", ln.Addr(), server.Experiments())

	ctx, stop := cli.SignalContext(context.Background())
	defer stop()
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	select {
	case err := <-serveErr:
		fatal(err)
	case <-ctx.Done():
	}

	// Drain: refuse new work, let in-flight executions finish (or cancel
	// them at the deadline), then close the HTTP side and flush telemetry.
	fmt.Fprintln(os.Stderr, "whisperd: draining (signal again to exit immediately)")
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Shutdown(drainCtx); err != nil {
		fmt.Fprintf(os.Stderr, "whisperd: drain: %v\n", err)
	}
	if err := hs.Shutdown(drainCtx); err != nil {
		fmt.Fprintf(os.Stderr, "whisperd: http shutdown: %v\n", err)
	}
	if *traceOut != "" {
		if err := reg.WriteTraceFile(*traceOut, nil); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "whisperd: trace written to %s\n", *traceOut)
	}
	if *metricsOut != "" {
		if err := reg.WriteMetricsFile(*metricsOut); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "whisperd: metrics written to %s\n", *metricsOut)
	}
	fmt.Fprintln(os.Stderr, "whisperd: drained, bye")
}

func fatal(err error) {
	if errors.Is(err, http.ErrServerClosed) {
		return
	}
	fmt.Fprintln(os.Stderr, "whisperd:", err)
	os.Exit(1)
}
