package main

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"time"
)

// Report is the whole campaign's outcome, serializable for CI archival.
type Report struct {
	Started  time.Time      `json:"started"`
	Finished time.Time      `json:"finished"`
	Seed     int64          `json:"seed"`
	Budget   string         `json:"budget_per_target"`
	Targets  []TargetReport `json:"targets"`
}

// TargetReport is one target's campaign outcome.
type TargetReport struct {
	Name       string  `json:"name"`
	FuzzName   string  `json:"fuzz_name"`
	SeedInputs int     `json:"seed_inputs"`
	Execs      int64   `json:"execs"`
	NewCorpus  int     `json:"new_corpus"`
	Crashes    []Crash `json:"crashes,omitempty"`
	Elapsed    string  `json:"elapsed"`
	Error      string  `json:"error,omitempty"`
}

// Crash is one minimized failing input, archived on disk.
type Crash struct {
	Name     string `json:"name"`
	Path     string `json:"path"`
	InputLen int    `json:"input_len"`
	Error    string `json:"error"`
}

func (r Report) CrashCount() int {
	n := 0
	for _, t := range r.Targets {
		n += len(t.Crashes)
	}
	return n
}

// Human renders the report for terminal and CI-log consumption.
func (r Report) Human() string {
	var b strings.Builder
	fmt.Fprintf(&b, "whisperfuzz: %d target(s), %s budget each, seed %d\n",
		len(r.Targets), r.Budget, r.Seed)
	for _, t := range r.Targets {
		status := "ok"
		if len(t.Crashes) > 0 {
			status = fmt.Sprintf("%d CRASH(ES)", len(t.Crashes))
		}
		if t.Error != "" {
			status = "error: " + t.Error
		}
		fmt.Fprintf(&b, "  %-28s %8d execs  %3d seeds  %3d new corpus  %-10s %s\n",
			t.FuzzName, t.Execs, t.SeedInputs, t.NewCorpus, t.Elapsed, status)
		for _, c := range t.Crashes {
			fmt.Fprintf(&b, "    crash %s (%d bytes): %s\n",
				c.Path, c.InputLen, firstLine(c.Error))
		}
	}
	if n := r.CrashCount(); n > 0 {
		fmt.Fprintf(&b, "FAIL: %d crash(es); replay with: go test ./internal/fuzzgen -run TestCommittedCorpus after copying the artifact into testdata/fuzz/<target>/\n", n)
	} else {
		b.WriteString("PASS: no crashes\n")
	}
	return b.String()
}

func (r Report) WriteJSON(path string) error {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}
