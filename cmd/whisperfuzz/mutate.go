package main

import "math/rand"

// mutate derives a new input from base with 1–4 stacked edits drawn from the
// classic byte-fuzzing repertoire. The result is never empty (the generator
// treats missing bytes as zeros, so the empty input is a single fixed
// program) and never exceeds maxLen.
func mutate(rng *rand.Rand, base []byte, maxLen int) []byte {
	out := append([]byte(nil), base...)
	for edits := 1 + rng.Intn(4); edits > 0; edits-- {
		switch rng.Intn(7) {
		case 0: // bit flip
			if len(out) > 0 {
				out[rng.Intn(len(out))] ^= 1 << rng.Intn(8)
			}
		case 1: // set byte
			if len(out) > 0 {
				out[rng.Intn(len(out))] = byte(rng.Intn(256))
			}
		case 2: // insert random bytes
			n := 1 + rng.Intn(16)
			at := rng.Intn(len(out) + 1)
			ins := make([]byte, n)
			rng.Read(ins)
			out = append(out[:at], append(ins, out[at:]...)...)
		case 3: // delete span
			if len(out) > 1 {
				n := 1 + rng.Intn(len(out)/2)
				at := rng.Intn(len(out) - n + 1)
				out = append(out[:at], out[at+n:]...)
			}
		case 4: // duplicate span
			if len(out) > 0 {
				n := 1 + rng.Intn(min(len(out), 32))
				at := rng.Intn(len(out) - n + 1)
				span := append([]byte(nil), out[at:at+n]...)
				out = append(out[:at], append(span, out[at:]...)...)
			}
		case 5: // append random tail
			n := 1 + rng.Intn(64)
			tail := make([]byte, n)
			rng.Read(tail)
			out = append(out, tail...)
		case 6: // truncate
			if len(out) > 1 {
				out = out[:1+rng.Intn(len(out)-1)]
			}
		}
	}
	if len(out) > maxLen {
		out = out[:maxLen]
	}
	if len(out) == 0 {
		out = []byte{byte(rng.Intn(256))}
	}
	return out
}
