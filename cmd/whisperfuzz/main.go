// Command whisperfuzz runs long differential-fuzzing and invariant-
// verification campaigns over the targets registered in internal/fuzzgen.
//
// Each target gets a time budget. A campaign replays the committed seed
// corpus, then mutates it until the deadline, minimizing and archiving any
// input whose check fails (a crash) and archiving inputs that reach a new
// behavior signature (corpus growth). Artifacts use the Go native corpus
// format, so a crash written here replays directly under `go test -run`.
//
// Usage:
//
//	whisperfuzz [-targets all|name,name] [-budget 2m] [-out fuzz-artifacts]
//	            [-corpus internal/fuzzgen/testdata/fuzz] [-seed 1]
//	            [-max-input 4096] [-json report.json] [-list]
package main

import (
	"crypto/sha256"
	"encoding/hex"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"runtime/debug"
	"strings"
	"time"

	"whisper/internal/fuzzgen"
)

func main() {
	var (
		targetsFlag = flag.String("targets", "all", "comma-separated target names (or fuzz names), or 'all'")
		budget      = flag.Duration("budget", 2*time.Minute, "time budget per target")
		corpusDir   = flag.String("corpus", filepath.Join("internal", "fuzzgen", "testdata", "fuzz"), "seed corpus root (Go native layout)")
		outDir      = flag.String("out", "fuzz-artifacts", "artifact output directory")
		jsonPath    = flag.String("json", "", "also write a JSON report to this path")
		seed        = flag.Int64("seed", 1, "mutation PRNG seed")
		maxInput    = flag.Int("max-input", 4096, "maximum mutated input size in bytes")
		list        = flag.Bool("list", false, "list targets and exit")
	)
	flag.Parse()

	if *list {
		for _, t := range fuzzgen.Targets() {
			fmt.Printf("%-12s %-28s %s\n", t.Name, t.FuzzName, t.Doc)
		}
		return
	}

	targets, err := selectTargets(*targetsFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "whisperfuzz:", err)
		os.Exit(2)
	}
	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, "whisperfuzz:", err)
		os.Exit(2)
	}

	rep := Report{Started: time.Now().UTC(), Seed: *seed, Budget: budget.String()}
	for _, t := range targets {
		tr := runCampaign(t, campaignConfig{
			budget:    *budget,
			corpusDir: filepath.Join(*corpusDir, t.FuzzName),
			outDir:    *outDir,
			rng:       rand.New(rand.NewSource(*seed)),
			maxInput:  *maxInput,
		})
		rep.Targets = append(rep.Targets, tr)
	}
	rep.Finished = time.Now().UTC()

	fmt.Print(rep.Human())
	if *jsonPath != "" {
		if err := rep.WriteJSON(*jsonPath); err != nil {
			fmt.Fprintln(os.Stderr, "whisperfuzz:", err)
			os.Exit(2)
		}
	}
	if rep.CrashCount() > 0 {
		os.Exit(1)
	}
}

func selectTargets(spec string) ([]fuzzgen.Target, error) {
	if spec == "all" || spec == "" {
		return fuzzgen.Targets(), nil
	}
	var out []fuzzgen.Target
	for _, name := range strings.Split(spec, ",") {
		name = strings.TrimSpace(name)
		t, ok := fuzzgen.TargetByName(name)
		if !ok {
			return nil, fmt.Errorf("unknown target %q (try -list)", name)
		}
		out = append(out, t)
	}
	return out, nil
}

type campaignConfig struct {
	budget    time.Duration
	corpusDir string
	outDir    string
	rng       *rand.Rand
	maxInput  int
}

func runCampaign(t fuzzgen.Target, cfg campaignConfig) TargetReport {
	tr := TargetReport{Name: t.Name, FuzzName: t.FuzzName}
	start := time.Now()
	deadline := start.Add(cfg.budget)

	// Seed pool: committed corpus plus built-in baselines.
	var pool [][]byte
	seen := map[uint64]bool{}
	entries, err := fuzzgen.ReadCorpusDir(cfg.corpusDir)
	if err != nil {
		tr.Error = err.Error()
		return tr
	}
	for _, e := range entries {
		pool = append(pool, e.Data)
	}
	pool = append(pool, nil, []byte{0}, []byte{1, 2, 3, 4, 5, 6, 7, 8})
	tr.SeedInputs = len(pool)

	try := func(data []byte, fromSeed bool) {
		tr.Execs++
		if err := runOne(t, data); err != nil {
			min := minimize(t, data)
			tr.Crashes = append(tr.Crashes, archiveCrash(cfg.outDir, t, min, err))
			return
		}
		if t.Sig == nil {
			return
		}
		sig := t.Sig(data)
		if !seen[sig] {
			seen[sig] = true
			if !fromSeed {
				pool = append(pool, data)
				tr.NewCorpus++
				archiveCorpus(cfg.outDir, t, data)
			}
		}
	}

	for _, data := range pool {
		if time.Now().After(deadline) {
			break
		}
		try(data, true)
	}
	for time.Now().Before(deadline) && len(tr.Crashes) < 32 {
		base := pool[cfg.rng.Intn(len(pool))]
		try(mutate(cfg.rng, base, cfg.maxInput), false)
	}
	tr.Elapsed = time.Since(start).String()
	return tr
}

// runOne executes one check with panic containment: a panicking engine is as
// much a finding as a failed comparison.
func runOne(t fuzzgen.Target, data []byte) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("panic: %v\n%s", r, debug.Stack())
		}
	}()
	return t.Check(data)
}

// minimize shrinks a failing input while it keeps failing: chunk-halving
// deletion, then byte zeroing. Bounded so a slow target cannot stall the run.
func minimize(t fuzzgen.Target, data []byte) []byte {
	const maxAttempts = 400
	attempts := 0
	fails := func(d []byte) bool {
		if attempts >= maxAttempts {
			return false
		}
		attempts++
		return runOne(t, d) != nil
	}
	cur := append([]byte(nil), data...)
	for chunk := len(cur) / 2; chunk >= 1; chunk /= 2 {
		for off := 0; off+chunk <= len(cur); {
			cand := append(append([]byte(nil), cur[:off]...), cur[off+chunk:]...)
			if fails(cand) {
				cur = cand
			} else {
				off += chunk
			}
		}
	}
	for i := range cur {
		if cur[i] == 0 {
			continue
		}
		cand := append([]byte(nil), cur...)
		cand[i] = 0
		if fails(cand) {
			cur = cand
		}
	}
	return cur
}

func shortHash(data []byte) string {
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:4])
}

func archiveCrash(outDir string, t fuzzgen.Target, data []byte, cause error) Crash {
	name := "crash-" + shortHash(data)
	path := filepath.Join(outDir, "crashes", t.FuzzName, name)
	c := Crash{Name: name, Path: path, InputLen: len(data), Error: cause.Error()}
	if err := fuzzgen.WriteCorpusFile(path, data); err != nil {
		c.Error += "; archive failed: " + err.Error()
	}
	return c
}

func archiveCorpus(outDir string, t fuzzgen.Target, data []byte) {
	path := filepath.Join(outDir, "corpus", t.FuzzName, "seed-"+shortHash(data))
	_ = fuzzgen.WriteCorpusFile(path, data)
}
