// Command whisper runs a single Whisper attack on a chosen CPU model and
// prints what leaked. It is the interactive front door to the library; the
// full evaluation lives in cmd/tetbench. With -all, every attack family runs
// as one scheduler job on its own machine (seeded per attack name), so the
// combined output is byte-identical at any -parallel setting.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"whisper/internal/core"
	"whisper/internal/cpu"
	"whisper/internal/kernel"
	"whisper/internal/obs"
	"whisper/internal/sched"
	"whisper/internal/smt"
	"whisper/internal/stats"
	"whisper/internal/trace"
)

func modelByName(name string) (cpu.Model, bool) {
	for _, m := range cpu.AllModels() {
		if strings.EqualFold(m.Microarch, name) || strings.EqualFold(m.Name, name) {
			return m, true
		}
	}
	return cpu.Model{}, false
}

func main() {
	var (
		attack   = flag.String("attack", "md", "attack: cc|md|zbl|rsb|v1|kaslr|smt")
		all      = flag.Bool("all", false, "run every attack family (ignores -attack)")
		cpuName  = flag.String("cpu", "Kaby Lake", "CPU model (microarchitecture or full name)")
		secret   = flag.String("secret", "squeamish ossifrage", "victim secret to plant and leak")
		seed     = flag.Int64("seed", 1, "deterministic seed")
		parallel = flag.Int("parallel", 0, "sched workers for -all (<=0: GOMAXPROCS); output is identical at any setting")
		kpti     = flag.Bool("kpti", false, "enable KPTI")
		flare    = flag.Bool("flare", false, "enable FLARE")
		docker   = flag.Bool("docker", false, "run the attacker inside a container")
		showWin  = flag.Bool("trace", false, "after the attack, render one probe's pipeline diagram")

		traceOut   = flag.String("trace-out", "", "write a Perfetto/Chrome trace of the run to this file")
		metricsOut = flag.String("metrics-out", "", "write the metrics snapshot to this file (.json for JSON)")
	)
	flag.Parse()

	model, ok := modelByName(*cpuName)
	if !ok {
		fmt.Fprintf(os.Stderr, "whisper: unknown CPU %q; options:\n", *cpuName)
		for _, m := range cpu.AllModels() {
			fmt.Fprintf(os.Stderr, "  %q (%s)\n", m.Microarch, m.Name)
		}
		os.Exit(2)
	}
	cfg := kernel.Config{KASLR: true, KPTI: *kpti, FLARE: *flare, Docker: *docker}

	if *all {
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		defer stop()
		var reg *obs.Registry
		if *traceOut != "" || *metricsOut != "" {
			reg = obs.NewRegistry()
		}
		if err := runAll(ctx, model, cfg, []byte(*secret), *seed, *parallel, reg); err != nil {
			fatal(err)
		}
		if *traceOut != "" {
			if err := reg.WriteTraceFile(*traceOut, nil); err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "trace written to %s\n", *traceOut)
		}
		if *metricsOut != "" {
			if err := reg.WriteMetricsFile(*metricsOut); err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "metrics written to %s\n", *metricsOut)
		}
		return
	}

	m, err := cpu.NewMachine(model, *seed)
	if err != nil {
		fatal(err)
	}
	if *traceOut != "" || *metricsOut != "" {
		// Observability stays nil (zero-overhead) unless an output was asked
		// for. Enable before Boot so the kernel.boot span lands on the trace.
		m.EnableObs()
	}
	k, err := kernel.Boot(m, cfg)
	if err != nil {
		fatal(err)
	}
	want := []byte(*secret)
	fmt.Printf("machine: %s (%s), KASLR base %#x (hidden from the attack)\n",
		model.Name, model.Microarch, k.KASLRBase())

	report := func(name string, res core.LeakResult) {
		fmt.Printf("%s leaked %q\n", name, res.Data)
		fmt.Printf("  throughput %.1f B/s, byte error rate %.1f%%, %d simulated cycles (%.4fs at %.1f GHz)\n",
			res.Bps, stats.ByteErrorRate(res.Data, want)*100, res.Cycles,
			m.Seconds(res.Cycles), model.ClockHz/1e9)
	}

	switch *attack {
	case "md":
		k.WriteSecret(want)
		a, err := core.NewTETMeltdown(k)
		if err != nil {
			fatal(err)
		}
		res, err := a.Leak(k.SecretVA(), len(want))
		if err != nil {
			fatal(err)
		}
		report("TET-Meltdown", res)
	case "zbl":
		k.WriteSecret(want)
		a, err := core.NewTETZombieload(k)
		if err != nil {
			fatal(err)
		}
		res, err := a.Leak(len(want))
		if err != nil {
			fatal(err)
		}
		report("TET-Zombieload", res)
	case "rsb":
		secretVA := uint64(kernel.UserDataBase + 0x500)
		pa, ok := k.UserAS().Translate(secretVA)
		if !ok {
			fatal(fmt.Errorf("secret VA unmapped"))
		}
		m.Phys.StoreBytes(pa, want)
		a, err := core.NewTETRSB(k)
		if err != nil {
			fatal(err)
		}
		res, err := a.Leak(secretVA, len(want))
		if err != nil {
			fatal(err)
		}
		report("TET-Spectre-RSB", res)
	case "v1":
		v1, err := core.NewTETSpectreV1(k)
		if err != nil {
			fatal(err)
		}
		pa, ok := k.UserAS().Translate(v1.ArrayVA() + v1.ArrayLen())
		if !ok {
			fatal(fmt.Errorf("V1 secret region unmapped"))
		}
		m.Phys.StoreBytes(pa, want)
		res, err := v1.Leak(v1.ArrayLen(), len(want))
		if err != nil {
			fatal(err)
		}
		report("TET-Spectre-V1 (extension)", res)
	case "cc":
		a, err := core.NewTETCovertChannel(k)
		if err != nil {
			fatal(err)
		}
		res, err := a.Transfer(want)
		if err != nil {
			fatal(err)
		}
		report("TET covert channel", res)
	case "smt":
		a, err := smt.NewChannel(k, smt.ModeReliable)
		if err != nil {
			fatal(err)
		}
		res, err := a.Transfer(want[:min(len(want), 4)])
		if err != nil {
			fatal(err)
		}
		fmt.Printf("SMT covert channel received %q (%.2f B/s, bit error %.1f%%)\n",
			res.Data, res.Bps, stats.BitErrorRate(res.Data, want[:len(res.Data)])*100)
	case "kaslr":
		a, err := core.NewTETKASLR(k)
		if err != nil {
			fatal(err)
		}
		res, err := a.Locate()
		if err != nil {
			fatal(err)
		}
		verdict := "WRONG"
		if res.Base == k.KASLRBase() {
			verdict = "correct"
		}
		fmt.Printf("TET-KASLR recovered base %#x (slot %d) in %.4f s — %s\n",
			res.Base, res.Slot, res.Seconds, verdict)
	default:
		fmt.Fprintf(os.Stderr, "whisper: unknown attack %q\n", *attack)
		os.Exit(2)
	}

	if *showWin {
		if err := renderWindow(k); err != nil {
			fatal(err)
		}
	}
	if *traceOut != "" {
		if err := m.Obs.WriteTraceFile(*traceOut, nil); err != nil {
			fatal(err)
		}
		fmt.Printf("trace written to %s (open in ui.perfetto.dev or chrome://tracing)\n", *traceOut)
	}
	if *metricsOut != "" {
		if err := m.Obs.WriteMetricsFile(*metricsOut); err != nil {
			fatal(err)
		}
		fmt.Printf("metrics written to %s\n", *metricsOut)
	}
}

// runAll runs every attack family as one scheduler job. Each job boots its
// own machine from the seed sched derives for the attack's name, every
// printed number is simulated (cycles at the model clock, never wall time),
// and the blocks print in fixed attack order — so stdout is byte-identical
// at any -parallel setting, which the CI determinism gate diffs.
func runAll(ctx context.Context, model cpu.Model, cfg kernel.Config, want []byte, rootSeed int64, parallel int, reg *obs.Registry) error {
	boot := func(seed int64) (*kernel.Kernel, error) {
		m, err := cpu.NewMachine(model, seed)
		if err != nil {
			return nil, err
		}
		return kernel.Boot(m, cfg)
	}
	report := func(b *strings.Builder, m *cpu.Machine, name string, res core.LeakResult) {
		fmt.Fprintf(b, "%s leaked %q\n", name, res.Data)
		fmt.Fprintf(b, "  throughput %.1f B/s, byte error rate %.1f%%, %d simulated cycles (%.4fs at %.1f GHz)\n",
			res.Bps, stats.ByteErrorRate(res.Data, want)*100, res.Cycles,
			m.Seconds(res.Cycles), model.ClockHz/1e9)
	}
	jobs := []sched.Job[string]{
		{Key: "cc", Run: func(_ context.Context, seed int64) (string, error) {
			k, err := boot(seed)
			if err != nil {
				return "", err
			}
			a, err := core.NewTETCovertChannel(k)
			if err != nil {
				return "", err
			}
			res, err := a.Transfer(want)
			if err != nil {
				return "", err
			}
			var b strings.Builder
			report(&b, k.Machine(), "TET covert channel", res)
			return b.String(), nil
		}},
		{Key: "md", Run: func(jctx context.Context, seed int64) (string, error) {
			// The multi-byte Meltdown leak itself shards across per-byte
			// machine replicas (core.Farm); its inner pool shares the run's
			// parallelism budget.
			f := &core.Farm{
				Model: model, Config: cfg, RootSeed: seed,
				Parallel: parallel, Ctx: jctx, Obs: reg,
			}
			res, err := f.LeakSecret(want)
			if err != nil {
				return "", err
			}
			var b strings.Builder
			fmt.Fprintf(&b, "TET-Meltdown (replica farm) leaked %q\n", res.Data)
			fmt.Fprintf(&b, "  critical path %d simulated cycles (%.1f B/s at %.1f GHz), byte error rate %.1f%%\n",
				res.Cycles, res.Bps, model.ClockHz/1e9, stats.ByteErrorRate(res.Data, want)*100)
			return b.String(), nil
		}},
		{Key: "zbl", Run: func(_ context.Context, seed int64) (string, error) {
			k, err := boot(seed)
			if err != nil {
				return "", err
			}
			k.WriteSecret(want)
			a, err := core.NewTETZombieload(k)
			if err != nil {
				return "", err
			}
			res, err := a.Leak(len(want))
			if err != nil {
				return "", err
			}
			var b strings.Builder
			report(&b, k.Machine(), "TET-Zombieload", res)
			return b.String(), nil
		}},
		{Key: "rsb", Run: func(_ context.Context, seed int64) (string, error) {
			k, err := boot(seed)
			if err != nil {
				return "", err
			}
			secretVA := uint64(kernel.UserDataBase + 0x500)
			pa, ok := k.UserAS().Translate(secretVA)
			if !ok {
				return "", fmt.Errorf("secret VA unmapped")
			}
			k.Machine().Phys.StoreBytes(pa, want)
			a, err := core.NewTETRSB(k)
			if err != nil {
				return "", err
			}
			res, err := a.Leak(secretVA, len(want))
			if err != nil {
				return "", err
			}
			var b strings.Builder
			report(&b, k.Machine(), "TET-Spectre-RSB", res)
			return b.String(), nil
		}},
		{Key: "v1", Run: func(_ context.Context, seed int64) (string, error) {
			k, err := boot(seed)
			if err != nil {
				return "", err
			}
			v1, err := core.NewTETSpectreV1(k)
			if err != nil {
				return "", err
			}
			pa, ok := k.UserAS().Translate(v1.ArrayVA() + v1.ArrayLen())
			if !ok {
				return "", fmt.Errorf("V1 secret region unmapped")
			}
			k.Machine().Phys.StoreBytes(pa, want)
			res, err := v1.Leak(v1.ArrayLen(), len(want))
			if err != nil {
				return "", err
			}
			var b strings.Builder
			report(&b, k.Machine(), "TET-Spectre-V1 (extension)", res)
			return b.String(), nil
		}},
		{Key: "kaslr", Run: func(_ context.Context, seed int64) (string, error) {
			k, err := boot(seed)
			if err != nil {
				return "", err
			}
			a, err := core.NewTETKASLR(k)
			if err != nil {
				return "", err
			}
			res, err := a.Locate()
			if err != nil {
				return "", err
			}
			verdict := "WRONG"
			if res.Base == k.KASLRBase() {
				verdict = "correct"
			}
			return fmt.Sprintf("TET-KASLR recovered base %#x (slot %d) in %.4f s — %s\n",
				res.Base, res.Slot, res.Seconds, verdict), nil
		}},
		{Key: "smt", Run: func(_ context.Context, seed int64) (string, error) {
			k, err := boot(seed)
			if err != nil {
				return "", err
			}
			a, err := smt.NewChannel(k, smt.ModeReliable)
			if err != nil {
				return "", err
			}
			payload := want[:min(len(want), 4)]
			res, err := a.Transfer(payload)
			if err != nil {
				return "", err
			}
			return fmt.Sprintf("SMT covert channel received %q (%.2f B/s, bit error %.1f%%)\n",
				res.Data, res.Bps, stats.BitErrorRate(res.Data, payload)*100), nil
		}},
	}
	fmt.Printf("machine: %s (%s), all attack families, seed %d\n", model.Name, model.Microarch, rootSeed)
	outs, err := sched.Map(ctx, sched.Options{
		Name: "whisper.all", Parallel: parallel, RootSeed: rootSeed, Obs: reg,
	}, jobs)
	if err != nil {
		return err
	}
	for _, o := range outs {
		fmt.Print(o)
	}
	return nil
}

// renderWindow runs one traced TET probe and prints its pipeline diagram —
// the transient window the attack just timed.
func renderWindow(k *kernel.Kernel) error {
	m := k.Machine()
	pr, err := core.NewProber(m, core.SuppressTSX, true)
	if err != nil {
		return err
	}
	for i := 0; i < 8; i++ { // steady state
		if _, err := pr.Probe(core.UnmappedVA, 256, 0); err != nil {
			return err
		}
	}
	c := trace.NewCollector(0)
	c.Attach(m.Pipe)
	defer func() {
		// Hand the pipeline back to the obs registry's collector if one is
		// live (-trace-out), otherwise detach tracing entirely.
		if m.Obs != nil {
			m.Obs.AttachPipeline(m.Pipe)
		} else {
			m.Pipe.SetTracer(nil)
		}
	}()
	tote, err := pr.Probe(core.UnmappedVA, 1, 1) // triggered probe
	if err != nil {
		return err
	}
	fmt.Printf("\none traced probe (Jcc triggered, ToTE = %d cycles):\n", tote)
	fmt.Print(trace.Render(c.Records(), 88))
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "whisper:", err)
	os.Exit(1)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
